// Workload generator tests: the paper's period-class recipe, scaling,
// Table 2's reconstructed task set.

#include <gtest/gtest.h>

#include "src/workload/workload.h"

namespace emeralds {
namespace {

TEST(WorkloadTest, Table2HasTenTasksAtPointEightEight) {
  TaskSet set = Table2Workload();
  EXPECT_EQ(set.size(), 10);
  EXPECT_NEAR(set.Utilization(), 0.88, 0.01);
  EXPECT_TRUE(set.IsSortedByPeriod());
  // tau_5 is the troublesome task: period 8 ms, preceded by 4..7 ms tasks.
  EXPECT_EQ(set.tasks[4].period.millis(), 8);
  EXPECT_EQ(set.tasks[0].period.millis(), 4);
  // tau_6..tau_10 have "much longer periods".
  EXPECT_GE(set.tasks[5].period.millis(), 100);
}

TEST(WorkloadTest, ScaledByMultipliesWcets) {
  TaskSet set = Table2Workload();
  TaskSet scaled = set.ScaledBy(0.5);
  EXPECT_NEAR(scaled.Utilization(), set.Utilization() * 0.5, 1e-9);
  EXPECT_EQ(scaled.tasks[0].period, set.tasks[0].period);
  EXPECT_EQ(scaled.tasks[0].wcet.micros(), 500);
}

TEST(WorkloadTest, PeriodsDividedKeepsWcets) {
  TaskSet set = Table2Workload();
  TaskSet divided = set.PeriodsDividedBy(2);
  EXPECT_EQ(divided.tasks[0].period.millis(), 2);
  EXPECT_EQ(divided.tasks[0].deadline.millis(), 2);
  EXPECT_EQ(divided.tasks[0].wcet, set.tasks[0].wcet);
  EXPECT_NEAR(divided.Utilization(), set.Utilization() * 2.0, 1e-9);
}

TEST(WorkloadTest, SortByPeriodIsStable) {
  TaskSet set;
  PeriodicTask a{Milliseconds(10), Microseconds(1), Milliseconds(10)};
  PeriodicTask b{Milliseconds(5), Microseconds(2), Milliseconds(5)};
  PeriodicTask c{Milliseconds(10), Microseconds(3), Milliseconds(10)};
  set.tasks = {a, b, c};
  set.SortByPeriod();
  EXPECT_EQ(set.tasks[0].wcet.micros(), 2);
  EXPECT_EQ(set.tasks[1].wcet.micros(), 1);  // a before c (stable)
  EXPECT_EQ(set.tasks[2].wcet.micros(), 3);
}

class WorkloadGenTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadGenTest, GeneratorInvariants) {
  int n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 20; ++trial) {
    TaskSet set = GenerateWorkload(rng, n);
    ASSERT_EQ(set.size(), n);
    EXPECT_TRUE(set.IsSortedByPeriod());
    EXPECT_NEAR(set.Utilization(), 0.5, 0.05);  // normalized (+ rounding)
    for (const PeriodicTask& task : set.tasks) {
      EXPECT_GE(task.period.millis(), 5);
      EXPECT_LE(task.period.millis(), 999);
      EXPECT_TRUE(task.wcet.is_positive());
      EXPECT_LE(task.wcet, task.period);
      EXPECT_EQ(task.deadline, task.period);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorkloadGenTest, ::testing::Values(1, 5, 10, 25, 50));

TEST(WorkloadGenStatsTest, PeriodClassesEquallyLikely) {
  Rng rng(7);
  int single = 0;
  int double_digit = 0;
  int triple = 0;
  for (int trial = 0; trial < 300; ++trial) {
    TaskSet set = GenerateWorkload(rng, 10);
    for (const PeriodicTask& task : set.tasks) {
      int64_t ms = task.period.millis();
      if (ms < 10) {
        ++single;
      } else if (ms < 100) {
        ++double_digit;
      } else {
        ++triple;
      }
    }
  }
  // 3000 samples; each class should get roughly a third.
  EXPECT_NEAR(single / 3000.0, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(double_digit / 3000.0, 1.0 / 3.0, 0.05);
  EXPECT_NEAR(triple / 3000.0, 1.0 / 3.0, 0.05);
}

TEST(WorkloadGenStatsTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  TaskSet sa = GenerateWorkload(a, 20);
  TaskSet sb = GenerateWorkload(b, 20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sa.tasks[i].period, sb.tasks[i].period);
    EXPECT_EQ(sa.tasks[i].wcet, sb.tasks[i].wcet);
  }
}

}  // namespace
}  // namespace emeralds
