// Full-system soak: one node exercising every kernel service at once for 30
// simulated seconds, with per-reschedule invariant validation. Devices raise
// IRQs into user-level drivers, which publish state messages; control tasks
// share locks under PI/CSE; a mailbox pipeline crosses two protection
// domains; application timers pace an aperiodic worker; the workload is
// pre-verified by the analysis so the run must be miss-free.

#include <cstring>

#include <gtest/gtest.h>

#include "src/hal/devices.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

TEST(SoakTest, EverySubsystemThirtySeconds) {
  KernelConfig config = CalibratedConfig(SchedulerSpec::Csd(3));
  config.debug_validate = true;
  config.trace_capacity = 0;
  SimEnv env(config);
  Kernel& k = env.k();

  SensorDevice::Config sensor_config;
  sensor_config.period = Milliseconds(4);
  SensorDevice sensor(env.hw, sensor_config);
  FieldbusDevice::Config bus_config;
  bus_config.rx_period = Milliseconds(25);
  bus_config.rx_jitter = Milliseconds(5);
  FieldbusDevice bus(env.hw, bus_config);

  ProcessId driver_proc = k.CreateProcess("drivers").value();
  ProcessId app_proc = k.CreateProcess("app").value();

  SmsgId sensor_msg = k.CreateStateMessage("sensor", sizeof(double), 4).value();
  SemId object_lock = k.CreateSemaphore("object").value();
  MailboxId frames = k.CreateMailbox("frames", 8).value();
  CondvarId mode_changed = k.CreateCondvar("mode").value();
  SemId mode_lock = k.CreateSemaphore("mode-lock").value();
  SemId pace = k.CreateSemaphore("pace", 0).value();  // counting, timer-fed
  TimerId pacer = k.CreateTimer("pacer", pace).value();
  RegionId page = k.CreateRegion("page", 32).value();
  k.MapRegion(driver_proc, page, true, true);
  k.MapRegion(app_proc, page, true, false);

  int mode = 0;
  double object_state = 0.0;
  uint64_t paced_wakes = 0;
  uint64_t frames_handled = 0;
  uint64_t mode_observations = 0;

  // Sensor driver (driver process): IRQ -> state message + shared page.
  ThreadParams sensor_drv;
  sensor_drv.name = "sensor-drv";
  sensor_drv.process = driver_proc;
  sensor_drv.band = 0;
  sensor_drv.body = [&](ThreadApi api) -> ThreadBody {
    uint64_t count = 0;
    for (;;) {
      co_await api.WaitIrq(kIrqSensor);
      co_await api.Compute(Microseconds(40));
      double value = sensor.latest_sample();
      co_await api.StateWrite(sensor_msg,
                              std::span<const uint8_t>(
                                  reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
      ++count;
      std::memcpy(api.RegionData(page, true).data(), &count, sizeof(count));
    }
  };
  k.BindIrqThread(k.CreateThread(sensor_drv).value(), kIrqSensor);

  // Bus driver (driver process): IRQ -> mailbox.
  ThreadParams bus_drv;
  bus_drv.name = "bus-drv";
  bus_drv.process = driver_proc;
  bus_drv.band = 2;
  bus_drv.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.WaitIrq(kIrqFieldbus);
      while (bus.rx_ready()) {
        FieldbusDevice::Frame frame = bus.ReadFrame();
        co_await api.Compute(Microseconds(60));
        uint8_t payload[8] = {static_cast<uint8_t>(frame.id & 0xff)};
        co_await api.Send(frames, payload);
      }
    }
  };
  k.BindIrqThread(k.CreateThread(bus_drv).value(), kIrqFieldbus);

  // Three periodic control tasks (app process) sharing the object lock, with
  // parser-style CSE hints.
  const int64_t control_periods_ms[3] = {8, 16, 40};
  for (int i = 0; i < 3; ++i) {
    ThreadParams control;
    control.name = "control";
    control.process = app_proc;
    control.period = Milliseconds(control_periods_ms[i]);
    control.band = i < 2 ? 0 : 1;
    Duration work = Microseconds(300 + 150 * i);
    control.body = [&, work](ThreadApi api) -> ThreadBody {
      for (;;) {
        double value = 0.0;
        co_await api.StateRead(sensor_msg,
                               std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value),
                                                  sizeof(value)));
        co_await api.Acquire(object_lock);
        co_await api.Compute(work);
        object_state += value * 1e-6;
        co_await api.Release(object_lock);
        co_await api.WaitNextPeriod(object_lock);
      }
    };
    ASSERT_TRUE(k.CreateThread(control).ok());
  }

  // Frame consumer (app process): mailbox with timeout; toggles the mode and
  // broadcasts.
  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.process = app_proc;
  consumer.band = 2;
  consumer.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      uint8_t buffer[8];
      RecvResult r = co_await api.Recv(frames, buffer, Milliseconds(100));
      if (r.status == Status::kOk) {
        ++frames_handled;
        co_await api.Acquire(mode_lock);
        mode = (mode + 1) % 3;
        co_await api.Broadcast(mode_changed);
        co_await api.Release(mode_lock);
      }
    }
  };
  ASSERT_TRUE(k.CreateThread(consumer).ok());

  // Mode watcher: condvar loop.
  ThreadParams watcher;
  watcher.name = "watcher";
  watcher.process = app_proc;
  watcher.band = 2;
  watcher.body = [&](ThreadApi api) -> ThreadBody {
    int seen = 0;
    for (;;) {
      co_await api.Acquire(mode_lock);
      while (mode == seen) {
        co_await api.Wait(mode_changed, mode_lock);
      }
      seen = mode;
      ++mode_observations;
      co_await api.Release(mode_lock);
    }
  };
  ASSERT_TRUE(k.CreateThread(watcher).ok());

  // Timer-paced aperiodic worker.
  ThreadParams paced;
  paced.name = "paced";
  paced.process = app_proc;
  paced.band = 2;
  paced.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(pace);
      ++paced_wakes;
      co_await api.Compute(Microseconds(200));
    }
  };
  ASSERT_TRUE(k.CreateThread(paced).ok());
  k.StartTimer(pacer, Milliseconds(10), Milliseconds(50));

  sensor.Start();
  bus.Start();
  k.Start();
  k.RunUntil(Instant() + Seconds(30));

  const KernelStats& stats = k.stats();
  // Every subsystem must have been exercised.
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(stats.jobs_completed, 6375u);      // 30s/8ms + 30s/16ms + 30s/40ms
  EXPECT_GT(stats.smsg_writes, 7000u);          // sensor at 4 ms
  EXPECT_GT(stats.smsg_reads, 6000u);
  EXPECT_GT(frames_handled, 900u);              // bus at ~25-30 ms
  EXPECT_GT(mode_observations, 100u);
  EXPECT_EQ(paced_wakes, 600u);                 // 50 ms pacer over 30 s
  EXPECT_GT(stats.sem_acquires, 7000u);
  EXPECT_GT(stats.interrupts, 8000u);
  // Locks fully unwound.
  EXPECT_EQ(k.semaphore(object_lock).owner, nullptr);
  EXPECT_EQ(k.semaphore(mode_lock).owner, nullptr);
  // Shared page saw the driver's counter.
  uint64_t page_count = 0;
  std::memcpy(&page_count, k.RegionDataFor(app_proc, page, false).data(), sizeof(page_count));
  EXPECT_GT(page_count, 7000u);
  env.k().scheduler().Validate();
}

TEST(SoakTest, SlowerCpuProfileDegradesGracefully) {
  // The same kernel on the 16 MHz profile: everything still works, more of
  // the second goes to the kernel.
  auto run = [](CostModel cost) {
    KernelConfig config;
    config.scheduler = SchedulerSpec::Csd(2);
    config.cost_model = cost;
    config.trace_capacity = 0;
    SimEnv env(config);
    SemId lock = env.k().CreateSemaphore("lock").value();
    for (int64_t period_ms : {5, 10, 20, 50}) {
      ThreadParams params;
      params.name = "task";
      params.period = Milliseconds(period_ms);
      params.body = [lock](ThreadApi api) -> ThreadBody {
        for (;;) {
          co_await api.Acquire(lock);
          co_await api.Compute(Microseconds(400));
          co_await api.Release(lock);
          co_await api.WaitNextPeriod(lock);
        }
      };
      env.k().CreateThread(params);
    }
    env.StartAndRunFor(Seconds(5));
    return std::make_pair(env.k().stats().deadline_misses,
                          env.k().stats().total_charged());
  };
  auto [fast_misses, fast_overhead] = run(CostModel::MC68040_25MHz());
  auto [slow_misses, slow_overhead] = run(CostModel::MC68332_16MHz());
  EXPECT_EQ(fast_misses, 0u);
  EXPECT_EQ(slow_misses, 0u);
  // 25/16 clock ratio shows up almost exactly in kernel time.
  double ratio = static_cast<double>(slow_overhead.nanos()) /
                 static_cast<double>(fast_overhead.nanos());
  EXPECT_NEAR(ratio, 25.0 / 16.0, 0.05);
}

}  // namespace
}  // namespace emeralds
