// Calibration regression: the Figure 11 anchors the cost model was tuned to
// (EXPERIMENTS.md). If a cost-model or semaphore-path change moves these,
// the evaluation no longer matches the paper — fail loudly.

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

// The Figure 6 scenario from bench/fig11_semaphore_overhead, one data point.
double PairOverheadUs(SchedulerSpec spec, SemMode mode, int queue_length) {
  KernelConfig config;
  config.scheduler = spec;
  config.cost_model = CostModel::MC68040_25MHz();
  config.default_sem_mode = mode;
  config.trace_capacity = 0;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphoreWithMode("S", 1, mode).value();

  ThreadParams t2;
  t2.name = "T2";
  t2.period = Milliseconds(10);
  t2.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(1));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod(sem);
    }
  };
  env.k().CreateThread(t2);
  ThreadParams t1;
  t1.name = "T1";
  t1.period = Milliseconds(50);
  t1.body = [sem](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(8));
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(3));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(t1);
  for (int i = 0; i < queue_length - 2; ++i) {
    ThreadParams filler;
    filler.name = "filler";
    filler.period = Milliseconds(11 + (i % 38));
    filler.first_release = Seconds(50);
    filler.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(filler);
  }
  env.k().Start();
  env.k().RunUntil(Instant() + Microseconds(9500));
  env.k().ResetChargeAccounting();
  env.k().RunUntil(Instant() + Microseconds(12500));
  return env.k().stats().sem_path_time.micros_f();
}

TEST(CalibrationTest, DpStandardAnchor) {
  // Paper: ~39.3 us at DP queue length 15, slope 0.5 us/task.
  EXPECT_NEAR(PairOverheadUs(SchedulerSpec::Edf(), SemMode::kStandard, 15), 39.0, 0.5);
  double at3 = PairOverheadUs(SchedulerSpec::Edf(), SemMode::kStandard, 3);
  double at27 = PairOverheadUs(SchedulerSpec::Edf(), SemMode::kStandard, 27);
  EXPECT_NEAR((at27 - at3) / 24.0, 0.50, 0.02);
}

TEST(CalibrationTest, DpNewSchemeHalvesTheSlope) {
  double at3 = PairOverheadUs(SchedulerSpec::Edf(), SemMode::kCse, 3);
  double at27 = PairOverheadUs(SchedulerSpec::Edf(), SemMode::kCse, 27);
  EXPECT_NEAR((at27 - at3) / 24.0, 0.25, 0.02);
}

TEST(CalibrationTest, FpNewSchemeConstantAtPaperValue) {
  // Paper: constant 29.4 us regardless of FP queue length.
  for (int n : {3, 15, 30}) {
    EXPECT_NEAR(PairOverheadUs(SchedulerSpec::Rm(), SemMode::kCse, n), 29.4, 0.3) << n;
  }
}

TEST(CalibrationTest, FpSavingsNearPaperPercent) {
  // Paper: ~26% saved at FP queue length 15 (we measure ~28%).
  double standard = PairOverheadUs(SchedulerSpec::Rm(), SemMode::kStandard, 15);
  double cse = PairOverheadUs(SchedulerSpec::Rm(), SemMode::kCse, 15);
  double saving = 100.0 * (standard - cse) / standard;
  EXPECT_GT(saving, 20.0);
  EXPECT_LT(saving, 35.0);
}

}  // namespace
}  // namespace emeralds
