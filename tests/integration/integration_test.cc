// End-to-end integration: the paper's Figure 2 scenario simulated on the
// kernel, and cross-validation of the schedulability analysis against the
// simulator with the calibrated cost model.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/breakdown.h"
#include "src/core/taskset_runner.h"
#include "src/workload/workload.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

std::vector<ThreadId> SpawnTasks(Kernel& kernel, const TaskSet& set,
                                 const std::vector<int>& bands = {}) {
  return SpawnTaskSet(kernel, set, bands);
}

// --- Figure 2: Table 2's workload under RM vs EDF vs CSD ---

TEST(Fig2IntegrationTest, RmStarvesTau5) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Rm()));
  std::vector<ThreadId> ids = SpawnTasks(env.k(), Table2Workload());
  env.StartAndRunFor(Milliseconds(12));
  // tau_1..tau_4 run in [0,4) and again in [4,8); tau_5 misses d_5 = 8ms
  // (it finally completes around t=10, past its deadline).
  EXPECT_GE(env.k().thread(ids[4]).deadline_misses, 1u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(env.k().thread(ids[i]).deadline_misses, 0u) << "tau_" << i + 1;
  }
}

TEST(Fig2IntegrationTest, EdfSchedulesTable2) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  std::vector<ThreadId> ids = SpawnTasks(env.k(), Table2Workload());
  env.StartAndRunFor(Seconds(2));
  EXPECT_EQ(env.k().stats().deadline_misses, 0u);
  EXPECT_GT(env.k().stats().jobs_completed, 500u);
}

TEST(Fig2IntegrationTest, CsdWithTau5InDpQueueSchedulesTable2) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Csd(2)));
  // The paper's CSD fix: tau_1..tau_5 in the DP (EDF) queue, the long-period
  // tasks under RM.
  std::vector<ThreadId> ids =
      SpawnTasks(env.k(), Table2Workload(), BandsFromPartition({5, 5}));
  env.StartAndRunFor(Seconds(2));
  EXPECT_EQ(env.k().stats().deadline_misses, 0u);
}

TEST(Fig2IntegrationTest, CsdWithEmptyDpBehavesLikeRm) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Csd(2)));
  std::vector<ThreadId> ids =
      SpawnTasks(env.k(), Table2Workload(), BandsFromPartition({0, 10}));
  env.StartAndRunFor(Milliseconds(12));
  EXPECT_GE(env.k().thread(ids[4]).deadline_misses, 1u);
}

TEST(Fig2IntegrationTest, TraceShowsTheMiss) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Rm()));
  std::vector<ThreadId> ids = SpawnTasks(env.k(), Table2Workload());
  env.StartAndRunFor(Milliseconds(12));
  bool found = false;
  TraceSink& trace = env.k().trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& event = trace.at(i);
    if (event.type == TraceEventType::kDeadlineMiss && event.arg0 == ids[4].value) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --- Analysis vs simulation cross-validation ---

struct CrossCase {
  int num_tasks;
  int divide;
  PolicySpec::Kind kind;
  int csd_queues;
};

class AnalysisVsSimTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AnalysisVsSimTest, FeasibleWorkloadsMeetDeadlinesInSimulation) {
  auto [num_tasks, divide] = GetParam();
  Rng rng(9000 + num_tasks * 10 + divide);
  CostModel cost = CostModel::MC68040_25MHz();

  for (PolicySpec policy : {PolicySpec::Edf(), PolicySpec::Rm(), PolicySpec::Csd(2)}) {
    Rng trial = rng.Fork(static_cast<uint64_t>(policy.kind) * 7 + 1);
    TaskSet set = GenerateWorkload(trial, num_tasks).PeriodsDividedBy(divide);
    BreakdownResult bd = ComputeBreakdown(set, policy, cost);
    ASSERT_GT(bd.utilization, 0.0);
    // Scale to 95% of the breakdown point: the analysis says feasible; the
    // simulator (whose overheads are at most the analysis's worst case) must
    // not miss deadlines.
    double scale = 0.95 * bd.utilization / set.Utilization();
    TaskSet scaled = set.ScaledBy(scale);

    SchedulerSpec spec;
    switch (policy.kind) {
      case PolicySpec::Kind::kEdf:
        spec = SchedulerSpec::Edf();
        break;
      case PolicySpec::Kind::kRm:
        spec = SchedulerSpec::Rm();
        break;
      default:
        spec = SchedulerSpec::Csd(policy.csd_queues);
        break;
    }
    KernelConfig config;
    config.scheduler = spec;
    config.cost_model = cost;
    config.trace_capacity = 0;
    SimEnv env(config);
    std::vector<int> bands;
    if (policy.kind == PolicySpec::Kind::kCsd) {
      bands = BandsFromPartition(bd.partition);
    }
    SpawnTasks(env.k(), scaled, bands);
    env.StartAndRunFor(Seconds(2));
    EXPECT_EQ(env.k().stats().deadline_misses, 0u)
        << policy.Name() << " n=" << num_tasks << " div=" << divide
        << " breakdown=" << bd.utilization;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AnalysisVsSimTest,
                         ::testing::Combine(::testing::Values(5, 10, 20),
                                            ::testing::Values(1, 3)));

TEST(AnalysisVsSimTest, OverUtilizedEdfMissesInSimulation) {
  Rng rng(777);
  TaskSet set = GenerateWorkload(rng, 10);
  // Scale raw utilization to 1.1: impossible for any scheduler.
  TaskSet scaled = set.ScaledBy(1.1 / set.Utilization());
  KernelConfig config;
  config.scheduler = SchedulerSpec::Edf();
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 0;
  SimEnv env(config);
  SpawnTasks(env.k(), scaled);
  env.StartAndRunFor(Seconds(2));
  EXPECT_GT(env.k().stats().deadline_misses, 0u);
}

// The simulator's measured per-job scheduler overhead stays within the
// analysis model's worst-case bound.
TEST(AnalysisVsSimTest, MeasuredOverheadWithinModelBound) {
  Rng rng(4242);
  TaskSet set = GenerateWorkload(rng, 20);
  CostModel cost = CostModel::MC68040_25MHz();
  KernelConfig config;
  config.scheduler = SchedulerSpec::Edf();
  config.cost_model = cost;
  config.trace_capacity = 0;
  SimEnv env(config);
  SpawnTasks(env.k(), set);
  env.StartAndRunFor(Seconds(5));
  const KernelStats& stats = env.k().stats();
  ASSERT_GT(stats.jobs_completed, 0u);
  Duration scheduling_related = stats.charged[static_cast<int>(ChargeCategory::kScheduling)] +
                                stats.charged[static_cast<int>(ChargeCategory::kContextSwitch)] +
                                stats.charged[static_cast<int>(ChargeCategory::kSyscall)] +
                                stats.charged[static_cast<int>(ChargeCategory::kInterrupt)] +
                                stats.charged[static_cast<int>(ChargeCategory::kTimerSvc)];
  Duration per_job = scheduling_related / static_cast<int64_t>(stats.jobs_completed);
  OverheadModel model(cost);
  // The analysis bound (t = 1.5(t_b + t_u + 2 t_s) at n = 20) plus interrupt
  // and context-switch costs not counted by the paper's t: use 3x headroom.
  EXPECT_LT(per_job.nanos(), model.EdfTaskOverhead(20).nanos() * 3);
}

}  // namespace
}  // namespace emeralds
