// Perf-regression gate tests: an injected scheduler-bucket regression beyond
// tolerance must fail, within-tolerance drift must pass, the user/idle
// buckets and wall-clock throughput must stay ungated, and a candidate that
// violates its own invariants must never pass.

#include <string>

#include <gtest/gtest.h>

#include "bench/bench_compare.h"
#include "src/base/json.h"

namespace emeralds {
namespace bench {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(JsonParse(text, &doc, &error)) << error;
  return doc;
}

// A minimal but conserved emeralds.obs.cycles/1 document. The caller picks
// the scheduler-select, user, and idle buckets; everything else is fixed so
// elapsed always matches across variants (sum = 2'000'000'000 by
// construction when select + user + idle == 1'940'000'000).
std::string CyclesDoc(long long select_ns, long long user_ns, long long idle_ns,
                      bool conserved = true) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"emeralds.obs.cycles/1\",\"cycles\":{"
                "\"epoch_ns\":0,\"elapsed_ns\":2000000000,"
                "\"ledger_total_ns\":2000000000,\"residual_ns\":0,"
                "\"conserved\":%s,\"clock_conserved\":true,"
                "\"clock_unattributed_ns\":0,\"headroom_low_events\":7,"
                "\"buckets_ns\":{\"user\":%lld,\"sched_select\":%lld,"
                "\"sched_block\":20000000,\"context_switch\":30000000,"
                "\"syscall\":10000000,\"idle\":%lld}}}",
                conserved ? "true" : "false", user_ns, select_ns, idle_ns);
  return buf;
}

TEST(BenchCompareCyclesTest, IdenticalReportsPass) {
  JsonValue doc = Parse(CyclesDoc(60000000, 900000000, 980000000));
  CompareResult r = CompareReports(doc, doc, CompareOptions());
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures[0]);
  EXPECT_TRUE(r.failures.empty());
}

TEST(BenchCompareCyclesTest, FivePercentSchedulerRegressionFails) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  // +5% on sched_select, paid for out of idle so the candidate still
  // conserves and elapsed still matches: only the regression should trip.
  JsonValue cand = Parse(CyclesDoc(63000000, 900000000, 977000000));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("sched_select"), std::string::npos) << r.failures[0];
  EXPECT_NE(r.failures[0].find("regressed"), std::string::npos) << r.failures[0];
}

TEST(BenchCompareCyclesTest, WithinToleranceGrowthPasses) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  // +2% on sched_select is inside the 3% gate; it surfaces as a note only.
  JsonValue cand = Parse(CyclesDoc(61200000, 900000000, 978800000));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures[0]);
  EXPECT_FALSE(r.notes.empty());
}

TEST(BenchCompareCyclesTest, UserAndIdleBucketsAreNotGated) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  // The workload itself got 10% more expensive (user up, idle down): not the
  // kernel's regression to gate.
  JsonValue cand = Parse(CyclesDoc(60000000, 990000000, 890000000));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures[0]);
}

TEST(BenchCompareCyclesTest, TighterToleranceCatchesSmallerRegressions) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  JsonValue cand = Parse(CyclesDoc(61200000, 900000000, 978800000));
  CompareOptions strict;
  strict.rel_tolerance = 0.01;
  strict.abs_slack_ns = 0;
  EXPECT_FALSE(CompareReports(base, cand, strict).ok);
}

TEST(BenchCompareCyclesTest, UnconservedCandidateFails) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  JsonValue cand = Parse(CyclesDoc(60000000, 900000000, 980000000, /*conserved=*/false));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("not conserved"), std::string::npos) << r.failures[0];
}

TEST(BenchCompareCyclesTest, ElapsedMismatchFails) {
  JsonValue base = Parse(CyclesDoc(60000000, 900000000, 980000000));
  std::string longer = CyclesDoc(60000000, 900000000, 980000000);
  // A different virtual-time horizon means the runs are not comparable.
  size_t pos = longer.find("\"elapsed_ns\":2000000000");
  ASSERT_NE(pos, std::string::npos);
  longer.replace(pos, 23, "\"elapsed_ns\":2000000001");
  CompareResult r = CompareReports(base, Parse(longer), CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("elapsed_ns differs"), std::string::npos) << r.failures[0];
}

TEST(BenchCompareCyclesTest, SchemaMismatchFails) {
  JsonValue cycles = Parse(CyclesDoc(60000000, 900000000, 980000000));
  JsonValue other = Parse("{\"schema\":\"emeralds.obs.run/1\"}");
  CompareResult r = CompareReports(cycles, other, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("schema mismatch"), std::string::npos) << r.failures[0];
}

// --- emeralds.bench.breakdown/1 ---

std::string BreakdownDoc(long long full_evals, double eval_reduction, double wps,
                         long long mismatches = 0) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"schema\":\"emeralds.bench.breakdown/1\",\"points\":[{"
                "\"n\":10,\"reference_mismatches\":%lld,"
                "\"evals\":{\"full_evals\":%lld},"
                "\"eval_reduction\":%.3f,\"workloads_per_sec\":%.1f}]}",
                mismatches, full_evals, eval_reduction, wps);
  return buf;
}

TEST(BenchCompareBreakdownTest, IdenticalReportsPass) {
  JsonValue doc = Parse(BreakdownDoc(1000, 0.800, 5000));
  EXPECT_TRUE(CompareReports(doc, doc, CompareOptions()).ok);
}

TEST(BenchCompareBreakdownTest, FullEvalsRegressionFails) {
  JsonValue base = Parse(BreakdownDoc(1000, 0.800, 5000));
  JsonValue cand = Parse(BreakdownDoc(1050, 0.800, 5000));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("full_evals regressed"), std::string::npos) << r.failures[0];
}

TEST(BenchCompareBreakdownTest, EvalReductionShrinkFails) {
  JsonValue base = Parse(BreakdownDoc(1000, 0.800, 5000));
  JsonValue cand = Parse(BreakdownDoc(1000, 0.760, 5000));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("eval_reduction regressed"), std::string::npos)
      << r.failures[0];
}

TEST(BenchCompareBreakdownTest, WallClockThroughputIsNotGated) {
  JsonValue base = Parse(BreakdownDoc(1000, 0.800, 5000));
  // Half the throughput (a slower machine) is a note, never a failure.
  JsonValue cand = Parse(BreakdownDoc(1000, 0.800, 2500));
  CompareResult r = CompareReports(base, cand, CompareOptions());
  EXPECT_TRUE(r.ok) << (r.failures.empty() ? "" : r.failures[0]);
  EXPECT_FALSE(r.notes.empty());
}

TEST(BenchCompareBreakdownTest, ReferenceMismatchFailsTheCandidate) {
  JsonValue base = Parse(BreakdownDoc(1000, 0.800, 5000));
  JsonValue cand = Parse(BreakdownDoc(1000, 0.800, 5000, /*mismatches=*/1));
  EXPECT_FALSE(CompareReports(base, cand, CompareOptions()).ok);
}

TEST(BenchCompareFilesTest, MissingFileIsAnIoFailure) {
  CompareResult r = CompareReportFiles("/nonexistent/base.json", "/nonexistent/cand.json",
                                       CompareOptions());
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("cannot open"), std::string::npos) << r.failures[0];
}

}  // namespace
}  // namespace bench
}  // namespace emeralds
