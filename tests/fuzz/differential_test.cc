// Differential fuzzing of the timer-queue implementations.
//
// The hierarchical wheel and the reference sorted list must be semantically
// interchangeable: for any seed, replaying the torture schedule against
// either implementation has to produce the bit-identical run — same trace
// digest, same op count, same virtual time, same oracle verdicts. The wheel
// is only allowed to change *when the queue does work*, never *what fires
// when*, so any divergence here is a firing-order or expiry bug.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/fuzz/torture.h"

namespace emeralds {
namespace fuzz {
namespace {

TortureOptions DifferentialOptions(uint64_t seed, TimerQueueImpl impl) {
  TortureOptions options;
  options.seed = seed;
  // Small budget per seed: breadth (many seeds) finds ordering bugs faster
  // than depth, and keeps 500 x 2 runs inside a few seconds.
  options.ops = 300;
  options.timer_queue = impl;
  return options;
}

TEST(DifferentialFuzzTest, WheelMatchesReferenceListOver500Seeds) {
  constexpr uint64_t kSeeds = 500;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    TortureResult wheel = RunTorture(DifferentialOptions(seed, TimerQueueImpl::kWheel));
    TortureResult list = RunTorture(DifferentialOptions(seed, TimerQueueImpl::kSortedList));
    ASSERT_EQ(wheel.trace_digest, list.trace_digest)
        << "seed " << seed << " diverged: wheel digest " << std::hex
        << wheel.trace_digest << " vs list digest " << list.trace_digest
        << std::dec << "\nrepro: "
        << ReproCommand(DifferentialOptions(seed, TimerQueueImpl::kSortedList));
    ASSERT_EQ(wheel.ops_executed, list.ops_executed) << "seed " << seed;
    ASSERT_EQ(wheel.virtual_time.nanos(), list.virtual_time.nanos()) << "seed " << seed;
    ASSERT_EQ(wheel.trace_retained, list.trace_retained) << "seed " << seed;
    ASSERT_EQ(wheel.trace_dropped, list.trace_dropped) << "seed " << seed;
    ASSERT_EQ(wheel.ok, list.ok) << "seed " << seed << ": " << wheel.failure
                                 << " vs " << list.failure;
    ASSERT_TRUE(wheel.ok) << "seed " << seed << " failed under both impls: "
                          << wheel.failure;
  }
}

TEST(DifferentialFuzzTest, FaultAndStormVariantsStayIdentical) {
  // The torture host injections (IRQ storms, charge resets, timer toggles)
  // stress the queue's Remove/reinsert paths; run a band of seeds with each
  // knob flipped to keep those paths in the differential net.
  struct Variant {
    bool inject_faults;
    bool irq_storms;
    bool charge_resets;
  };
  constexpr Variant kVariants[] = {
      {false, true, true}, {true, false, true}, {true, true, false}};
  for (const Variant& variant : kVariants) {
    for (uint64_t seed = 900; seed < 925; ++seed) {
      TortureOptions wheel_opt = DifferentialOptions(seed, TimerQueueImpl::kWheel);
      TortureOptions list_opt = DifferentialOptions(seed, TimerQueueImpl::kSortedList);
      for (TortureOptions* opt : {&wheel_opt, &list_opt}) {
        opt->inject_faults = variant.inject_faults;
        opt->irq_storms = variant.irq_storms;
        opt->charge_resets = variant.charge_resets;
      }
      TortureResult wheel = RunTorture(wheel_opt);
      TortureResult list = RunTorture(list_opt);
      ASSERT_EQ(wheel.trace_digest, list.trace_digest)
          << "seed " << seed << " (faults=" << variant.inject_faults
          << " storms=" << variant.irq_storms
          << " resets=" << variant.charge_resets << ")\nrepro: "
          << ReproCommand(list_opt);
    }
  }
}

// Satellite: the same differential net at 2 and 4 virtual cores. The timer
// service runs on core 0 but its wakes fan out across cores, so a wheel
// firing-order bug that only matters when the woken thread is remote (the
// IPI pricing path) would diverge here and nowhere else.
TEST(DifferentialFuzzTest, MultiCoreWheelMatchesReferenceList) {
  for (int cores : {2, 4}) {
    for (uint64_t seed = 1; seed <= 100; ++seed) {
      TortureOptions wheel_opt = DifferentialOptions(seed, TimerQueueImpl::kWheel);
      TortureOptions list_opt = DifferentialOptions(seed, TimerQueueImpl::kSortedList);
      wheel_opt.num_cores = cores;
      list_opt.num_cores = cores;
      TortureResult wheel = RunTorture(wheel_opt);
      TortureResult list = RunTorture(list_opt);
      ASSERT_EQ(wheel.trace_digest, list.trace_digest)
          << "cores=" << cores << " seed=" << seed
          << "\nrepro: " << ReproCommand(list_opt);
      ASSERT_EQ(wheel.ops_executed, list.ops_executed) << "cores=" << cores << " seed=" << seed;
      ASSERT_EQ(wheel.virtual_time.nanos(), list.virtual_time.nanos())
          << "cores=" << cores << " seed=" << seed;
      ASSERT_EQ(wheel.ok, list.ok) << "cores=" << cores << " seed=" << seed << ": "
                                   << wheel.failure << " vs " << list.failure;
      ASSERT_TRUE(wheel.ok) << "cores=" << cores << " seed=" << seed
                            << " failed under both impls: " << wheel.failure;
    }
  }
}

TEST(DifferentialFuzzTest, ReproCommandNamesTheNonDefaultImpl) {
  TortureOptions options = DifferentialOptions(7, TimerQueueImpl::kSortedList);
  std::string repro = ReproCommand(options);
  EXPECT_NE(repro.find("--timer-queue=list"), std::string::npos) << repro;
  TortureOptions wheel = DifferentialOptions(7, TimerQueueImpl::kWheel);
  EXPECT_EQ(ReproCommand(wheel).find("--timer-queue"), std::string::npos);
}

}  // namespace
}  // namespace fuzz
}  // namespace emeralds
