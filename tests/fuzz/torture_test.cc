// Fixed-seed regression tests over the torture harness: a small sweep that
// must stay clean, determinism (same seed => same digest), the tiny-ring
// truncation contract, fault-injection coverage, and the shrinking bisector.

#include <gtest/gtest.h>

#include "src/fuzz/torture.h"

namespace emeralds {
namespace fuzz {
namespace {

TEST(TortureTest, FixedSeedSweepIsClean) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TortureOptions options;
    options.seed = seed;
    options.ops = 3000;
    TortureResult result = RunTorture(options);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.failure << "\n  repro: "
                           << ReproCommand(options);
    EXPECT_EQ(result.violations, 0u);
    EXPECT_EQ(result.fault_mismatches, 0u);
    EXPECT_TRUE(result.reconciliation.checked);
    EXPECT_TRUE(result.reconciliation.ok());
    EXPECT_EQ(result.ops_executed, options.ops);
    // Fourth oracle: the cycle ledger must conserve exactly and nothing may
    // have advanced the clock outside a charging path.
    EXPECT_TRUE(result.cycles_conserved) << "seed " << seed << ": residual "
                                         << result.cycle_residual_ns << " ns, unattributed "
                                         << result.cycle_unattributed_ns << " ns";
    EXPECT_EQ(result.cycle_residual_ns, 0);
    EXPECT_EQ(result.cycle_unattributed_ns, 0);
    // Fifth oracle: causal-token conservation. Untruncated runs must have no
    // chain violations and no orphan hops, and the topology's declared
    // chains must actually complete instances.
    EXPECT_EQ(result.chain_violations, 0u) << "seed " << seed;
    EXPECT_EQ(result.chain_orphan_hops, 0u) << "seed " << seed;
    EXPECT_GT(result.chain_origins, 0u) << "seed " << seed;
    EXPECT_GT(result.chain_completed, 0u) << "seed " << seed;
  }
}

// Satellite: the same sweep at 2 and 4 virtual cores. All five oracles stay
// enforced; cycle conservation in particular is checked per core AND
// fleet-summed inside RunTorture, so a single tick leaking between cores
// fails the run.
TEST(TortureTest, MultiCoreSweepIsClean) {
  for (int cores : {2, 4}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      TortureOptions options;
      options.seed = seed;
      options.ops = 2000;
      options.num_cores = cores;
      TortureResult result = RunTorture(options);
      EXPECT_TRUE(result.ok) << "cores=" << cores << " seed=" << seed << ": " << result.failure
                             << "\n  repro: " << ReproCommand(options);
      EXPECT_EQ(result.violations, 0u) << "cores=" << cores << " seed=" << seed;
      EXPECT_EQ(result.fault_mismatches, 0u);
      EXPECT_TRUE(result.cycles_conserved)
          << "cores=" << cores << " seed=" << seed << ": residual "
          << result.cycle_residual_ns << " ns";
      EXPECT_EQ(result.cycle_residual_ns, 0);
      EXPECT_EQ(result.cycle_unattributed_ns, 0);
      EXPECT_EQ(result.chain_violations, 0u) << "cores=" << cores << " seed=" << seed;
    }
  }
}

// Sixth oracle at scale: conservation of lateness over 500 seeds at each of
// 1, 2, and 4 cores. Every deadline miss in every run must carry a ledger
// that telescopes exactly, and because the default ring retains the whole
// run, not one nanosecond may land in the unattributed bucket and not one
// miss may go unmatched. The sweep also proves the oracle is not vacuous:
// these workloads miss deadlines constantly.
TEST(TortureTest, LatenessConservationSweep) {
  for (int cores : {1, 2, 4}) {
    uint64_t misses_total = 0;
    int complete_windows = 0;
    for (uint64_t seed = 1; seed <= 500; ++seed) {
      TortureOptions options;
      options.seed = seed;
      options.ops = 600;
      options.num_cores = cores;
      TortureResult result = RunTorture(options);
      ASSERT_TRUE(result.ok) << "cores=" << cores << " seed=" << seed << ": " << result.failure
                             << "\n  repro: " << ReproCommand(options);
      // Conservation is unconditional; the zero-unattributed / zero-unmatched
      // demands bind on complete windows (RunTorture's oracle 6 enforces them
      // there too — these assertions pin the contract in the test).
      ASSERT_EQ(result.postmortem_conservation_failures, 0u)
          << "cores=" << cores << " seed=" << seed;
      if (result.trace_dropped == 0) {
        ++complete_windows;
        ASSERT_EQ(result.postmortem_unattributed_ns, 0)
            << "cores=" << cores << " seed=" << seed;
        ASSERT_EQ(result.postmortem_unmatched, 0u) << "cores=" << cores << " seed=" << seed;
      }
      misses_total += result.postmortem_misses;
    }
    // The sweep must not be vacuous: nearly every window complete, and the
    // workloads miss deadlines constantly.
    EXPECT_GE(complete_windows, 490) << "cores=" << cores;
    EXPECT_GT(misses_total, 100u) << "cores=" << cores
                                  << ": sweep produced too few misses to exercise the oracle";
  }
}

TEST(TortureTest, MultiCoreSameSeedIsBitDeterministic) {
  TortureOptions options;
  options.seed = 42;
  options.ops = 2000;
  options.num_cores = 2;
  TortureResult a = RunTorture(options);
  TortureResult b = RunTorture(options);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
}

TEST(TortureTest, ReproCommandNamesNumCores) {
  TortureOptions options;
  options.seed = 3;
  options.num_cores = 2;
  EXPECT_NE(ReproCommand(options).find("--num-cores=2"), std::string::npos);
  options.num_cores = 1;
  EXPECT_EQ(ReproCommand(options).find("--num-cores"), std::string::npos);
}

TEST(TortureTest, SameSeedIsBitDeterministic) {
  TortureOptions options;
  options.seed = 42;
  options.ops = 2000;
  TortureResult a = RunTorture(options);
  TortureResult b = RunTorture(options);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.trace_retained, b.trace_retained);
  EXPECT_EQ(a.virtual_time, b.virtual_time);
}

TEST(TortureTest, DifferentSeedsDiverge) {
  TortureOptions a_opt;
  a_opt.seed = 1;
  a_opt.ops = 1000;
  TortureOptions b_opt = a_opt;
  b_opt.seed = 2;
  EXPECT_NE(RunTorture(a_opt).trace_digest, RunTorture(b_opt).trace_digest);
}

TEST(TortureTest, OpLimitPrefixIsStable) {
  // The shrinking contract: a capped run executes exactly the eligible
  // prefix of the same schedule, deterministically.
  TortureOptions options;
  options.seed = 9;
  options.ops = 1500;
  options.op_limit = 300;
  TortureResult a = RunTorture(options);
  TortureResult b = RunTorture(options);
  EXPECT_EQ(a.ops_executed, 300);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

TEST(TortureTest, TinyRingTruncationRefusesReconciliation) {
  TortureOptions options;
  options.seed = 3;
  options.ops = 3000;
  options.tiny_trace_ring = true;
  TortureResult result = RunTorture(options);
  // The deliberately tiny ring must overflow, the analyzer must stay
  // violation-free on the retained window, and reconciliation must refuse
  // to compare against a truncated trace.
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.trace_dropped, 0u);
  EXPECT_FALSE(result.reconciliation.checked);
  // The cycle-conservation oracle reads kernel counters, not the trace, so
  // it stays enforced even when the ring truncated.
  EXPECT_TRUE(result.cycles_conserved);
  EXPECT_EQ(result.cycle_residual_ns, 0);
  EXPECT_EQ(result.cycle_unattributed_ns, 0);
  // Token conservation degrades on truncation: consumes whose emits were
  // overwritten become counted orphan hops, never violations.
  EXPECT_EQ(result.chain_violations, 0u);
}

TEST(TortureTest, FaultInjectionCoversAllFaultKinds) {
  // Across a few seeds, every fault op kind must actually execute and every
  // injected fault must have come back with its contract status (otherwise
  // fault_mismatches would be non-zero and ok would be false).
  uint64_t bad_handle = 0;
  uint64_t permission = 0;
  uint64_t oversized = 0;
  uint64_t truncations = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    TortureOptions options;
    options.seed = seed;
    options.ops = 4000;
    TortureResult result = RunTorture(options);
    ASSERT_TRUE(result.ok) << "seed " << seed << ": " << result.failure;
    bad_handle += result.coverage.op_counts[static_cast<int>(OpKind::kFaultBadHandle)];
    permission += result.coverage.op_counts[static_cast<int>(OpKind::kFaultPermission)];
    oversized += result.coverage.op_counts[static_cast<int>(OpKind::kFaultOversized)];
    truncations += result.stats.mailbox_truncations;
    EXPECT_EQ(result.fault_mismatches, 0u);
  }
  EXPECT_GT(bad_handle, 0u);
  EXPECT_GT(permission, 0u);
  EXPECT_GT(oversized, 0u);
  // Short receive buffers are part of the schedule, so truncations happen.
  EXPECT_GT(truncations, 0u);
}

TEST(TortureTest, CoverageCountsMatchBudget) {
  TortureOptions options;
  options.seed = 5;
  options.ops = 2000;
  TortureResult result = RunTorture(options);
  ASSERT_TRUE(result.ok) << result.failure;
  uint64_t total = 0;
  for (int i = 0; i < kNumOpKinds; ++i) {
    total += result.coverage.op_counts[i];
  }
  EXPECT_EQ(total, static_cast<uint64_t>(result.ops_executed));
}

TEST(TortureTest, BisectFindsSmallestFailingBudget) {
  // Synthetic monotone predicate: fails at >= 137.
  int calls = 0;
  int found = BisectSmallestFailing(10000, [&](int limit) {
    ++calls;
    return limit >= 137;
  });
  EXPECT_EQ(found, 137);
  EXPECT_LE(calls, 16);  // log2(10000) + slack, not a linear scan

  // Degenerate edges: always-failing shrinks to 1; the bisector never
  // probes outside [1, hi].
  EXPECT_EQ(BisectSmallestFailing(50, [](int) { return true; }), 1);
}

TEST(TortureTest, ReproCommandRoundTrips) {
  TortureOptions options;
  options.seed = 77;
  options.ops = 1234;
  options.op_limit = 99;
  options.inject_faults = false;
  options.tiny_trace_ring = true;
  std::string repro = ReproCommand(options);
  EXPECT_NE(repro.find("--seed=77"), std::string::npos);
  EXPECT_NE(repro.find("--ops=1234"), std::string::npos);
  EXPECT_NE(repro.find("--op-limit=99"), std::string::npos);
  EXPECT_NE(repro.find("--no-faults"), std::string::npos);
  EXPECT_NE(repro.find("--tiny-ring"), std::string::npos);
}

TEST(TortureTest, ReportCarriesSchemaAndRuns) {
  TortureOptions options;
  options.seed = 1;
  options.ops = 500;
  TortureResult result = RunTorture(options);
  std::string report = BuildTortureReport({options}, {result});
  EXPECT_NE(report.find("\"schema\": \"emeralds.fuzz.torture/1\""), std::string::npos);
  EXPECT_NE(report.find("\"runs\""), std::string::npos);
  EXPECT_NE(report.find("\"reconciliation\""), std::string::npos);
  EXPECT_NE(report.find("\"totals\""), std::string::npos);
  EXPECT_NE(report.find("\"repro\""), std::string::npos);
  EXPECT_NE(report.find("\"chains\""), std::string::npos);
}

}  // namespace
}  // namespace fuzz
}  // namespace emeralds
