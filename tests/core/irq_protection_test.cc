// User-level device-driver support (IRQ routing to threads) and memory
// protection (processes, shared regions, object ACLs).

#include <vector>

#include <gtest/gtest.h>

#include "src/hal/devices.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

TEST(IrqTest, DriverThreadWokenByInterrupt) {
  SimEnv env(ZeroCostConfig());
  SensorDevice::Config sensor_config;
  sensor_config.period = Milliseconds(5);
  SensorDevice sensor(env.hw, sensor_config);
  std::vector<int64_t> service_times_us;

  ThreadParams driver = Aperiodic("driver", [&](ThreadApi api) -> ThreadBody {
    for (int i = 0; i < 3; ++i) {
      co_await api.WaitIrq(kIrqSensor);
      service_times_us.push_back(api.now().micros());
    }
  });
  ThreadId driver_id = env.k().CreateThread(driver).value();
  ASSERT_EQ(env.k().BindIrqThread(driver_id, kIrqSensor), Status::kOk);
  sensor.Start();
  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(service_times_us, (std::vector<int64_t>{5000, 10000, 15000}));
}

TEST(IrqTest, PendingIrqLatchedWhileDriverBusy) {
  SimEnv env(ZeroCostConfig());
  int serviced = 0;
  ThreadParams driver = Aperiodic("driver", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(10));  // miss some interrupts
    for (int i = 0; i < 3; ++i) {
      co_await api.WaitIrq(kIrqFieldbus);
      ++serviced;
    }
  });
  ThreadId driver_id = env.k().CreateThread(driver).value();
  env.k().BindIrqThread(driver_id, kIrqFieldbus);
  FieldbusDevice::Config bus_config;
  bus_config.rx_period = Milliseconds(3);
  FieldbusDevice bus(env.hw, bus_config);
  bus.Start();
  env.StartAndRunFor(Milliseconds(12));
  // IRQs at 3, 6, 9 were latched; the driver drained them at t=10 without
  // blocking (10/3 -> 3 pending).
  EXPECT_EQ(serviced, 3);
}

TEST(IrqTest, WaitIrqByUnboundThreadDenied) {
  SimEnv env(ZeroCostConfig());
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("rogue", [&](ThreadApi api) -> ThreadBody {
    status = co_await api.WaitIrq(kIrqSensor);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kPermissionDenied);
}

TEST(IrqTest, BindValidation) {
  SimEnv env(ZeroCostConfig());
  ThreadParams t = Aperiodic("d", [](ThreadApi api) -> ThreadBody { co_return; });
  ThreadId id = env.k().CreateThread(t).value();
  EXPECT_EQ(env.k().BindIrqThread(id, kIrqTimer), Status::kInvalidArgument);  // reserved
  EXPECT_EQ(env.k().BindIrqThread(id, 99), Status::kInvalidArgument);
  EXPECT_EQ(env.k().BindIrqThread(ThreadId(55), kIrqSensor), Status::kBadHandle);
  EXPECT_EQ(env.k().BindIrqThread(id, kIrqSensor), Status::kOk);
}

TEST(IrqTest, DriverRespondsAtItsPriority) {
  // The ISR stub only wakes the driver; the driver runs at thread priority,
  // after any higher-priority work (user-level device drivers, Figure 1).
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  SensorDevice::Config sensor_config;
  sensor_config.period = Milliseconds(4);
  SensorDevice sensor(env.hw, sensor_config);
  int64_t serviced_at_us = -1;

  ThreadParams driver;
  driver.name = "driver";
  driver.period = Milliseconds(100);  // low priority (long deadline)
  driver.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.WaitIrq(kIrqSensor);
    serviced_at_us = api.now().micros();
    co_await api.WaitNextPeriod();
  };
  ThreadId driver_id = env.k().CreateThread(driver).value();
  env.k().BindIrqThread(driver_id, kIrqSensor);

  // High-priority periodic busy thread running when the IRQ lands.
  ThreadParams busy;
  busy.name = "busy";
  busy.period = Milliseconds(10);
  busy.first_release = Milliseconds(3);
  busy.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(3));
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(busy);
  sensor.Start();
  env.StartAndRunFor(Milliseconds(10));
  // IRQ at t=4 while `busy` (deadline 13 < driver's 100) runs until t=6.
  EXPECT_EQ(serviced_at_us, 6000);
}

TEST(ProtectionTest, RegionRequiresMapping) {
  SimEnv env(ZeroCostConfig());
  ProcessId app = env.k().CreateProcess("app").value();
  RegionId region = env.k().CreateRegion("shm", 128).value();
  size_t unmapped_size = 99;
  size_t mapped_size = 0;

  ThreadParams t;
  t.name = "t";
  t.process = app;
  t.body = [&](ThreadApi api) -> ThreadBody {
    unmapped_size = api.RegionData(region, /*write=*/false).size();
    co_await api.Sleep(Milliseconds(2));
    mapped_size = api.RegionData(region, false).size();
  };
  env.k().CreateThread(t);
  env.k().MapRegion(app, region, true, false);  // map before Start; the
  // first read below still sees it, so unmap to exercise the deny path.
  env.k().MapRegion(app, region, false, false);
  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(1));
  env.k().MapRegion(app, region, true, true);
  env.k().RunUntil(Instant() + Milliseconds(5));
  EXPECT_EQ(unmapped_size, 0u);
  EXPECT_EQ(mapped_size, 128u);
}

TEST(ProtectionTest, WriteMappingEnforced) {
  SimEnv env(ZeroCostConfig());
  ProcessId app = env.k().CreateProcess("app").value();
  RegionId region = env.k().CreateRegion("shm", 64).value();
  env.k().MapRegion(app, region, true, false);  // read-only
  size_t writable = 99;
  size_t readable = 0;
  ThreadParams t;
  t.name = "t";
  t.process = app;
  t.body = [&](ThreadApi api) -> ThreadBody {
    readable = api.RegionData(region, false).size();
    writable = api.RegionData(region, true).size();
    co_return;
  };
  env.k().CreateThread(t);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(readable, 64u);
  EXPECT_EQ(writable, 0u);
}

TEST(ProtectionTest, SharedRegionVisibleAcrossProcesses) {
  SimEnv env(ZeroCostConfig());
  ProcessId p1 = env.k().CreateProcess("p1").value();
  ProcessId p2 = env.k().CreateProcess("p2").value();
  RegionId region = env.k().CreateRegion("shm", 16).value();
  env.k().MapRegion(p1, region, true, true);
  env.k().MapRegion(p2, region, true, false);
  uint8_t seen = 0;

  ThreadParams writer;
  writer.name = "writer";
  writer.process = p1;
  writer.body = [&](ThreadApi api) -> ThreadBody {
    api.RegionData(region, true)[3] = 0x5a;
    co_return;
  };
  env.k().CreateThread(writer);
  ThreadParams reader;
  reader.name = "reader";
  reader.process = p2;
  reader.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    seen = api.RegionData(region, false)[3];
  };
  env.k().CreateThread(reader);
  env.StartAndRunFor(Milliseconds(3));
  EXPECT_EQ(seen, 0x5a);
}

TEST(ProtectionTest, SemaphoreAclEnforced) {
  SimEnv env(ZeroCostConfig());
  ProcessId trusted = env.k().CreateProcess("trusted").value();
  ProcessId untrusted = env.k().CreateProcess("untrusted").value();
  SemId sem =
      env.k().CreateSemaphore("locked-down", 1, AccessPolicy::Only({trusted})).value();
  Status trusted_status = Status::kPermissionDenied;
  Status untrusted_status = Status::kOk;

  ThreadParams good;
  good.name = "good";
  good.process = trusted;
  good.body = [&](ThreadApi api) -> ThreadBody {
    trusted_status = co_await api.Acquire(sem);
    co_await api.Release(sem);
  };
  env.k().CreateThread(good);
  ThreadParams bad;
  bad.name = "bad";
  bad.process = untrusted;
  bad.body = [&](ThreadApi api) -> ThreadBody {
    untrusted_status = co_await api.Acquire(sem);
  };
  env.k().CreateThread(bad);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(trusted_status, Status::kOk);
  EXPECT_EQ(untrusted_status, Status::kPermissionDenied);
}

TEST(ProtectionTest, MailboxAclEnforced) {
  SimEnv env(ZeroCostConfig());
  ProcessId a = env.k().CreateProcess("a").value();
  ProcessId b = env.k().CreateProcess("b").value();
  MailboxId mbox = env.k().CreateMailbox("private", 2, AccessPolicy::Only({a})).value();
  Status denied = Status::kOk;
  ThreadParams t;
  t.name = "intruder";
  t.process = b;
  t.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t payload[1] = {1};
    denied = co_await api.Send(mbox, payload);
  };
  env.k().CreateThread(t);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(denied, Status::kPermissionDenied);
}

}  // namespace
}  // namespace emeralds
