// Partitioned-SMP executive tests: pinning validation, per-core scheduling
// independence, cross-core wakes priced as virtual IPIs, and the two-level
// cycle-conservation invariant (each core's ledger covers its own elapsed
// window exactly, and the per-core ledgers sum to the fleet ledger).

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

KernelConfig SmpZeroCost(int cores, SchedulerSpec spec = SchedulerSpec::Edf()) {
  KernelConfig config = ZeroCostConfig(spec);
  config.num_cores = cores;
  return config;
}

KernelConfig SmpCalibrated(int cores, SchedulerSpec spec = SchedulerSpec::Edf()) {
  KernelConfig config = CalibratedConfig(spec);
  config.num_cores = cores;
  return config;
}

ThreadParams Pinned(const char* name, int core, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.core = core;
  params.body = std::move(body);
  return params;
}

TEST(KernelSmpTest, PinOutOfRangeRejected) {
  SimEnv env(SmpZeroCost(2));
  ThreadParams params;
  params.name = "stray";
  params.body = [](ThreadApi api) -> ThreadBody { co_await api.Compute(Milliseconds(1)); };
  params.core = 2;
  EXPECT_EQ(env.k().CreateThread(params).status(), Status::kInvalidArgument);
  params.core = -1;
  EXPECT_EQ(env.k().CreateThread(params).status(), Status::kInvalidArgument);
  params.core = 1;
  EXPECT_TRUE(env.k().CreateThread(params).ok());

  // The implicit single-core config only accepts core 0.
  SimEnv uni(ZeroCostConfig());
  params.core = 1;
  EXPECT_EQ(uni.k().CreateThread(params).status(), Status::kInvalidArgument);
  params.core = 0;
  EXPECT_TRUE(uni.k().CreateThread(params).ok());
}

TEST(KernelSmpTest, PinnedThreadsComputeInParallel) {
  SimEnv env(SmpZeroCost(2));
  int64_t done_us[2] = {-1, -1};
  for (int i = 0; i < 2; ++i) {
    env.k().CreateThread(Pinned(i == 0 ? "a" : "b", i, [&, i](ThreadApi api) -> ThreadBody {
      co_await api.Compute(Milliseconds(10));
      done_us[i] = api.now().micros();
    }));
  }
  env.StartAndRunFor(Milliseconds(12));
  EXPECT_EQ(done_us[0], 10000);
  EXPECT_EQ(done_us[1], 10000);  // ran concurrently on its own core
  EXPECT_EQ(env.k().stats().compute_time, Milliseconds(20));
}

TEST(KernelSmpTest, SameCorePinnedThreadsSerialize) {
  SimEnv env(SmpZeroCost(2));
  int64_t done_us[2] = {-1, -1};
  for (int i = 0; i < 2; ++i) {
    env.k().CreateThread(Pinned(i == 0 ? "a" : "b", 0, [&, i](ThreadApi api) -> ThreadBody {
      co_await api.Compute(Milliseconds(10));
      done_us[i] = api.now().micros();
    }));
  }
  env.StartAndRunFor(Milliseconds(25));
  // Both share core 0; core 1 idles. One finishes at 10ms, the other at 20ms.
  EXPECT_EQ(std::min(done_us[0], done_us[1]), 10000);
  EXPECT_EQ(std::max(done_us[0], done_us[1]), 20000);
  EXPECT_EQ(env.k().stats().compute_time, Milliseconds(20));
}

TEST(KernelSmpTest, CrossCoreWakePaysVirtualIpi) {
  SimEnv env(SmpCalibrated(2));
  SemId sem = env.k().CreateSemaphore("xc", 0).value();
  bool woke = false;
  env.k().CreateThread(Pinned("waiter", 1, [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    woke = true;
    co_await api.Compute(Microseconds(100));
  }));
  env.k().CreateThread(Pinned("releaser", 0, [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(1));
    co_await api.Release(sem);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_TRUE(woke);
  const KernelStats& s = env.k().stats();
  EXPECT_GE(s.ipis, 1u);
  // The wake was priced: the virtual IPI landed in its own bucket, and the
  // conservation invariant survives both fleet-summed and per core.
  EXPECT_GT(s.cycles.at(CycleBucket::kIpi).nanos(), 0);
  EXPECT_TRUE(CheckCycleConservation(s, env.k().now()).exact());
  for (int c = 0; c < s.num_cores; ++c) {
    CycleConservation cc = CheckCoreCycleConservation(s, c, env.k().now());
    EXPECT_TRUE(cc.exact()) << "core " << c << " residual " << cc.residual.nanos() << " ns";
  }
}

TEST(KernelSmpTest, SameCoreWakeIsNotAnIpi) {
  SimEnv env(SmpCalibrated(2));
  SemId sem = env.k().CreateSemaphore("local", 0).value();
  bool woke = false;
  // Everything (waiter, releaser, timer service) lives on core 0: no wake
  // ever crosses a core boundary, so no virtual IPI may be charged.
  env.k().CreateThread(Pinned("waiter", 0, [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    woke = true;
  }));
  env.k().CreateThread(Pinned("releaser", 0, [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(1));
    co_await api.Release(sem);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_TRUE(woke);
  EXPECT_EQ(env.k().stats().ipis, 0u);
  EXPECT_EQ(env.k().stats().cycles.at(CycleBucket::kIpi).nanos(), 0);
}

TEST(KernelSmpTest, PerCoreLedgersSumToFleetLedger) {
  SimEnv env(SmpCalibrated(2, SchedulerSpec::Csd(2)));
  for (int i = 0; i < 4; ++i) {
    ThreadParams params;
    params.name = "worker";
    params.period = Milliseconds(5);
    params.core = i % 2;
    params.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(Milliseconds(1));
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(params);
  }
  env.StartAndRunFor(Milliseconds(50));
  const KernelStats& s = env.k().stats();
  // Timer service lives on core 0, so periodic releases of the core-1 workers
  // are cross-core wakes and must have been priced.
  EXPECT_GE(s.ipis, 1u);
  // Bucket by bucket, the per-core ledgers partition the fleet ledger.
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    Duration sum;
    for (int c = 0; c < s.num_cores; ++c) {
      sum += s.core_cycles[c].buckets[b];
    }
    EXPECT_EQ(sum.nanos(), s.cycles.buckets[b].nanos()) << "bucket " << b;
  }
  // Each core's ledger covers its own elapsed window exactly; the fleet
  // ledger covers num_cores * elapsed.
  for (int c = 0; c < s.num_cores; ++c) {
    CycleConservation cc = CheckCoreCycleConservation(s, c, env.k().now());
    EXPECT_TRUE(cc.exact()) << "core " << c << " residual " << cc.residual.nanos() << " ns";
  }
  EXPECT_TRUE(CheckCycleConservation(s, env.k().now()).exact());
}

TEST(KernelSmpTest, TwoCoreThroughputScalesOnSaturation) {
  // Six periodic tasks at 30% each: 180% aggregate demand saturates one core
  // (user time == horizon) and fits two (user time == 1.8x horizon, exactly,
  // since the zero-cost model charges nothing but compute).
  auto user_ns = [](int cores) {
    SimEnv env(SmpZeroCost(cores));
    for (int i = 0; i < 6; ++i) {
      ThreadParams params;
      params.name = "sat";
      params.period = Milliseconds(10);
      params.core = i % cores;
      params.body = [](ThreadApi api) -> ThreadBody {
        for (;;) {
          co_await api.Compute(Milliseconds(3));
          co_await api.WaitNextPeriod();
        }
      };
      env.k().CreateThread(params);
    }
    env.StartAndRunFor(Milliseconds(100));
    return env.k().stats().compute_time.nanos();
  };
  EXPECT_EQ(user_ns(1), Milliseconds(100).nanos());
  EXPECT_EQ(user_ns(2), Milliseconds(180).nanos());
}

}  // namespace
}  // namespace emeralds
