// Scheduler (CSD band framework) unit tests: band ordering, queue parsing,
// boosting, priority comparison.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/scheduler.h"

namespace emeralds {
namespace {

std::vector<std::unique_ptr<Tcb>> MakeTasks(int n, int band) {
  std::vector<std::unique_ptr<Tcb>> tasks;
  for (int i = 0; i < n; ++i) {
    auto t = std::make_unique<Tcb>();
    t->id = ThreadId(band * 100 + i);
    t->base_band = band;
    t->base_rm_rank = band * 100 + i;
    t->effective_rm_rank = t->base_rm_rank;
    t->effective_deadline = Instant() + Milliseconds(10 * (i + 1));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

TEST(SchedulerTest, Csd2HasEdfOverRm) {
  Scheduler sched(SchedulerSpec::Csd(2));
  ASSERT_EQ(sched.num_bands(), 2);
  EXPECT_EQ(sched.band(0).kind(), QueueKind::kEdfList);
  EXPECT_EQ(sched.band(1).kind(), QueueKind::kRmList);
}

TEST(SchedulerTest, Csd4HasThreeEdfQueues) {
  Scheduler sched(SchedulerSpec::Csd(4));
  ASSERT_EQ(sched.num_bands(), 4);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(sched.band(b).kind(), QueueKind::kEdfList);
  }
  EXPECT_EQ(sched.band(3).kind(), QueueKind::kRmList);
}

TEST(SchedulerTest, NegativeBandMapsToLast) {
  Scheduler sched(SchedulerSpec::Csd(3));
  Tcb t;
  t.base_band = -1;
  sched.AddThread(t);
  EXPECT_EQ(t.base_band, 2);
  sched.RemoveThread(t);
}

TEST(SchedulerTest, DpQueueHasPriorityOverFp) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(2, 0);
  auto fp = MakeTasks(2, 1);
  for (auto& t : dp) {
    sched.AddThread(*t);
  }
  for (auto& t : fp) {
    sched.AddThread(*t);
  }
  ChargeList charges;
  sched.Unblock(*fp[0], charges);
  sched.Unblock(*dp[1], charges);
  charges.clear();
  int parsed = 0;
  Tcb* selected = sched.Select(charges, &parsed);
  EXPECT_EQ(selected, dp[1].get());
  EXPECT_EQ(parsed, 1);  // found ready work in the first queue
  for (auto& t : dp) {
    sched.RemoveThread(*t);
  }
  for (auto& t : fp) {
    sched.RemoveThread(*t);
  }
}

TEST(SchedulerTest, EmptyDpQueueIsSkipped) {
  Scheduler sched(SchedulerSpec::Csd(3));
  auto fp = MakeTasks(2, 2);
  for (auto& t : fp) {
    sched.AddThread(*t);
  }
  ChargeList charges;
  sched.Unblock(*fp[1], charges);
  charges.clear();
  int parsed = 0;
  Tcb* selected = sched.Select(charges, &parsed);
  EXPECT_EQ(selected, fp[1].get());
  EXPECT_EQ(parsed, 3);  // walked past two empty DP queues
  // Only the selecting band contributes a select charge.
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_EQ(charges[0].kind, QueueKind::kRmList);
  for (auto& t : fp) {
    sched.RemoveThread(*t);
  }
}

TEST(SchedulerTest, IdleWhenNothingReady) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(1, 0);
  sched.AddThread(*dp[0]);
  ChargeList charges;
  int parsed = 0;
  EXPECT_EQ(sched.Select(charges, &parsed), nullptr);
  EXPECT_EQ(parsed, 2);
  EXPECT_TRUE(charges.empty());
  sched.RemoveThread(*dp[0]);
}

TEST(SchedulerTest, BoostMakesTaskSelectableInHigherBand) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(1, 0);
  auto fp = MakeTasks(1, 1);
  sched.AddThread(*dp[0]);
  sched.AddThread(*fp[0]);
  ChargeList charges;
  sched.Unblock(*fp[0], charges);
  // FP task inherits into the DP band (cross-band PI).
  sched.BoostInto(*fp[0], 0);
  fp[0]->effective_deadline = Instant() + Milliseconds(1);
  charges.clear();
  int parsed = 0;
  Tcb* selected = sched.Select(charges, &parsed);
  EXPECT_EQ(selected, fp[0].get());
  EXPECT_EQ(parsed, 1);
  EXPECT_EQ(fp[0]->effective_band, 0);
  sched.RemoveBoost(*fp[0]);
  EXPECT_EQ(fp[0]->effective_band, 1);
  sched.Validate();
  sched.RemoveThread(*dp[0]);
  sched.RemoveThread(*fp[0]);
}

TEST(SchedulerTest, BoostedTaskCompetesByDeadline) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(1, 0);
  auto fp = MakeTasks(1, 1);
  sched.AddThread(*dp[0]);
  sched.AddThread(*fp[0]);
  ChargeList charges;
  sched.Unblock(*dp[0], charges);
  sched.Unblock(*fp[0], charges);
  sched.BoostInto(*fp[0], 0);
  // DP task's own deadline is earlier: it wins despite the boost.
  dp[0]->effective_deadline = Instant() + Milliseconds(1);
  fp[0]->effective_deadline = Instant() + Milliseconds(5);
  charges.clear();
  int parsed = 0;
  EXPECT_EQ(sched.Select(charges, &parsed), dp[0].get());
  sched.RemoveBoost(*fp[0]);
  sched.RemoveThread(*dp[0]);
  sched.RemoveThread(*fp[0]);
}

TEST(SchedulerTest, BlockedBoostedTaskNotSelected) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto fp = MakeTasks(2, 1);
  sched.AddThread(*fp[0]);
  sched.AddThread(*fp[1]);
  ChargeList charges;
  sched.Unblock(*fp[0], charges);
  sched.BoostInto(*fp[0], 0);
  sched.Block(*fp[0], charges);
  sched.Unblock(*fp[1], charges);
  charges.clear();
  int parsed = 0;
  EXPECT_EQ(sched.Select(charges, &parsed), fp[1].get());
  sched.Validate();
  sched.RemoveThread(*fp[0]);
  sched.RemoveThread(*fp[1]);
}

TEST(SchedulerTest, HigherPriorityBandFirst) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(1, 0);
  auto fp = MakeTasks(1, 1);
  sched.AddThread(*dp[0]);
  sched.AddThread(*fp[0]);
  EXPECT_TRUE(sched.HigherPriority(*dp[0], *fp[0]));
  EXPECT_FALSE(sched.HigherPriority(*fp[0], *dp[0]));
  sched.RemoveThread(*dp[0]);
  sched.RemoveThread(*fp[0]);
}

TEST(SchedulerTest, HigherPriorityWithinEdfBandByDeadline) {
  Scheduler sched(SchedulerSpec::Edf());
  auto tasks = MakeTasks(2, 0);
  sched.AddThread(*tasks[0]);
  sched.AddThread(*tasks[1]);
  tasks[0]->effective_deadline = Instant() + Milliseconds(9);
  tasks[1]->effective_deadline = Instant() + Milliseconds(3);
  EXPECT_TRUE(sched.HigherPriority(*tasks[1], *tasks[0]));
  sched.RemoveThread(*tasks[0]);
  sched.RemoveThread(*tasks[1]);
}

TEST(SchedulerTest, HigherPriorityWithinRmBandByRank) {
  Scheduler sched(SchedulerSpec::Rm());
  auto tasks = MakeTasks(2, 0);
  sched.AddThread(*tasks[0]);
  sched.AddThread(*tasks[1]);
  EXPECT_TRUE(sched.HigherPriority(*tasks[0], *tasks[1]));
  sched.RemoveThread(*tasks[0]);
  sched.RemoveThread(*tasks[1]);
}

TEST(SchedulerTest, CanSwapFpRequiresSameRmBandAndBlockedWaiter) {
  Scheduler sched(SchedulerSpec::Csd(2));
  auto dp = MakeTasks(1, 0);
  auto fp = MakeTasks(2, 1);
  sched.AddThread(*dp[0]);
  sched.AddThread(*fp[0]);
  sched.AddThread(*fp[1]);
  ChargeList charges;
  sched.Unblock(*fp[1], charges);
  // waiter fp[0] blocked, holder fp[1] ready, both in the RM band: OK.
  EXPECT_TRUE(sched.CanSwapFp(*fp[1], *fp[0]));
  // Cross-band pair: not swappable.
  EXPECT_FALSE(sched.CanSwapFp(*fp[1], *dp[0]));
  // Ready waiter: not swappable.
  sched.Unblock(*fp[0], charges);
  EXPECT_FALSE(sched.CanSwapFp(*fp[1], *fp[0]));
  sched.RemoveThread(*dp[0]);
  sched.RemoveThread(*fp[0]);
  sched.RemoveThread(*fp[1]);
}

}  // namespace
}  // namespace emeralds
