// Edge cases across the syscall surface: zero/negative durations, empty
// operations, resource limits, stats printing.

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

TEST(EdgeCaseTest, ComputeZeroIsNoop) {
  SimEnv env(ZeroCostConfig());
  bool done = false;
  env.k().CreateThread(Aperiodic("z", [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Duration());
    co_await api.Compute(-Milliseconds(1));  // negative clamps to nothing
    done = true;
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_TRUE(done);
  EXPECT_TRUE(env.k().stats().compute_time.is_zero());
}

TEST(EdgeCaseTest, SleepZeroReturnsImmediately) {
  SimEnv env(ZeroCostConfig());
  int64_t after_us = -1;
  env.k().CreateThread(Aperiodic("z", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Duration());
    after_us = api.now().micros();
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(after_us, 0);
}

TEST(EdgeCaseTest, SendEmptyMessage) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  size_t got = 99;
  env.k().CreateThread(Aperiodic("z", [&](ThreadApi api) -> ThreadBody {
    co_await api.Send(mbox, std::span<const uint8_t>());
    uint8_t buffer[4];
    RecvResult r = co_await api.Recv(mbox, buffer);
    got = r.length;
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(got, 0u);
}

TEST(EdgeCaseTest, RecvIntoEmptyBufferConsumesMessage) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  env.k().CreateThread(Aperiodic("z", [&](ThreadApi api) -> ThreadBody {
    uint8_t b = 7;
    co_await api.Send(mbox, std::span<const uint8_t>(&b, 1));
    RecvResult r = co_await api.Recv(mbox, std::span<uint8_t>());
    // The message is consumed but its byte did not fit: that is a truncation,
    // reported as such rather than a silent kOk.
    EXPECT_EQ(r.status, Status::kTruncated);
    EXPECT_EQ(r.length, 0u);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_TRUE(env.k().mailbox(mbox).queue->empty());
}

TEST(EdgeCaseTest, ObjectPoolLimitsEnforced) {
  KernelConfig config = ZeroCostConfig();
  config.max_semaphores = 1;
  config.max_mailboxes = 1;
  config.max_condvars = 1;
  config.max_state_messages = 1;
  config.max_regions = 1;
  SimEnv env(config);
  EXPECT_TRUE(env.k().CreateSemaphore("a").ok());
  EXPECT_EQ(env.k().CreateSemaphore("b").status(), Status::kResourceExhausted);
  EXPECT_TRUE(env.k().CreateMailbox("a", 1).ok());
  EXPECT_EQ(env.k().CreateMailbox("b", 1).status(), Status::kResourceExhausted);
  EXPECT_TRUE(env.k().CreateCondvar("a").ok());
  EXPECT_EQ(env.k().CreateCondvar("b").status(), Status::kResourceExhausted);
  EXPECT_TRUE(env.k().CreateStateMessage("a", 4, 2).ok());
  EXPECT_EQ(env.k().CreateStateMessage("b", 4, 2).status(), Status::kResourceExhausted);
  EXPECT_TRUE(env.k().CreateRegion("a", 8).ok());
  EXPECT_EQ(env.k().CreateRegion("b", 8).status(), Status::kResourceExhausted);
}

TEST(EdgeCaseTest, CreateValidation) {
  SimEnv env(ZeroCostConfig());
  EXPECT_EQ(env.k().CreateMailbox("m", 0).status(), Status::kInvalidArgument);
  EXPECT_EQ(env.k().CreateStateMessage("s", 0, 2).status(), Status::kInvalidArgument);
  EXPECT_EQ(env.k().CreateStateMessage("s", 4, 0).status(), Status::kInvalidArgument);
  EXPECT_EQ(env.k().CreateRegion("r", 0).status(), Status::kInvalidArgument);
  EXPECT_EQ(env.k().CreateSemaphore("neg", -1).status(), Status::kInvalidArgument);
  EXPECT_EQ(env.k().MapRegion(ProcessId(9), RegionId(0), true, false), Status::kBadHandle);
}

TEST(EdgeCaseTest, ZeroAvailableCountingSemBlocksUntilSignalled) {
  SimEnv env(ZeroCostConfig());
  SemId gate = env.k().CreateSemaphore("gate", 0).value();
  int64_t passed_us = -1;
  env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(gate);
    passed_us = api.now().micros();
  }));
  env.k().CreateThread(Aperiodic("opener", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(3));
    co_await api.Release(gate);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(passed_us, 3000);
}

TEST(EdgeCaseTest, RunUntilPastEndOfAllWorkIdles) {
  SimEnv env(ZeroCostConfig());
  env.k().CreateThread(Aperiodic("short", [](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(1));
  }));
  env.StartAndRunFor(Seconds(10));
  EXPECT_EQ(env.k().now(), Instant() + Seconds(10));
  EXPECT_EQ(env.k().stats().idle_time.millis(), 9999);
}

TEST(EdgeCaseTest, PrintKernelStatsSmoke) {
  SimEnv env(CalibratedConfig());
  SemId sem = env.k().CreateSemaphore("s").value();
  ThreadParams p;
  p.name = "p";
  p.period = Milliseconds(10);
  p.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(p);
  env.StartAndRunFor(Milliseconds(50));
  // Output formatting only; must not crash and must cover every branch with
  // non-zero numbers available.
  testing::internal::CaptureStdout();
  PrintKernelStats(env.k().stats());
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("kernel time breakdown"), std::string::npos);
  EXPECT_NE(out.find("semaphores:"), std::string::npos);
}

TEST(EdgeCaseTest, TraceDumpSmoke) {
  SimEnv env(ZeroCostConfig());
  env.k().CreateThread(Aperiodic("t", [](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
  }));
  env.StartAndRunFor(Milliseconds(2));
  testing::internal::CaptureStdout();
  env.k().trace().Dump();
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("context_switch"), std::string::npos);
}

TEST(EdgeCaseTest, CondvarAclEnforced) {
  SimEnv env(ZeroCostConfig());
  ProcessId trusted = env.k().CreateProcess("trusted").value();
  ProcessId untrusted = env.k().CreateProcess("untrusted").value();
  CondvarId cv = env.k().CreateCondvar("locked", AccessPolicy::Only({trusted})).value();
  Status denied = Status::kOk;
  ThreadParams bad;
  bad.name = "bad";
  bad.process = untrusted;
  bad.body = [&](ThreadApi api) -> ThreadBody {
    denied = co_await api.Signal(cv);
  };
  env.k().CreateThread(bad);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(denied, Status::kPermissionDenied);
}

TEST(EdgeCaseTest, StateMessageAclEnforced) {
  SimEnv env(ZeroCostConfig());
  ProcessId a = env.k().CreateProcess("a").value();
  ProcessId b = env.k().CreateProcess("b").value();
  SmsgId smsg = env.k().CreateStateMessage("locked", 8, 2, AccessPolicy::Only({a})).value();
  Status write_denied = Status::kOk;
  Status read_denied = Status::kOk;
  ThreadParams bad;
  bad.name = "bad";
  bad.process = b;
  bad.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t payload[8] = {};
    write_denied = co_await api.StateWrite(smsg, payload);
    StateReadResult r = co_await api.StateRead(smsg, payload);
    read_denied = r.status;
  };
  env.k().CreateThread(bad);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(write_denied, Status::kPermissionDenied);
  EXPECT_EQ(read_denied, Status::kPermissionDenied);
}

TEST(EdgeCaseTest, TraceCsvExport) {
  SimEnv env(ZeroCostConfig());
  env.k().CreateThread(Aperiodic("t", [](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
  }));
  env.StartAndRunFor(Milliseconds(2));
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  size_t rows = env.k().trace().ExportCsv(tmp);
  EXPECT_EQ(rows, env.k().trace().size());
  std::rewind(tmp);
  char header[32] = {};
  ASSERT_NE(std::fgets(header, sizeof(header), tmp), nullptr);
  EXPECT_STREQ(header, "time_us,event,arg0,arg1,arg2\n");
  std::fclose(tmp);
}

}  // namespace
}  // namespace emeralds
