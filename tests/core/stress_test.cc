// Randomized stress tests: many threads with random periods, lock patterns,
// and IPC, run for simulated seconds with the scheduler's structural
// invariants validated after every reschedule. These are the property tests
// for the kernel as a whole: whatever interleaving the random workload
// produces, queue order/highestp/boost-counter invariants must hold, locks
// must end up released, and priority inheritance must fully unwind.

#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

struct StressParams {
  uint64_t seed;
  SchedulerSpec spec;
  SemMode mode;
  const char* name;
};

class KernelStressTest : public ::testing::TestWithParam<int> {};

// Locks are always taken in ascending id order, so the random task set is
// deadlock-free by construction.
TEST_P(KernelStressTest, RandomLockingWorkloadKeepsInvariants) {
  int variant = GetParam();
  SchedulerSpec specs[] = {SchedulerSpec::Edf(), SchedulerSpec::Rm(), SchedulerSpec::Csd(2),
                           SchedulerSpec::Csd(3), SchedulerSpec::RmHeap()};
  SemMode modes[] = {SemMode::kStandard, SemMode::kCse};
  SchedulerSpec spec = specs[variant % 5];
  SemMode mode = modes[variant % 2];
  Rng rng(7700 + variant);

  KernelConfig config = CalibratedConfig(spec);
  config.default_sem_mode = mode;
  config.debug_validate = true;  // Scheduler::Validate on every reschedule
  config.trace_capacity = 0;
  SimEnv env(config);

  constexpr int kNumLocks = 4;
  SemId locks[kNumLocks];
  for (int i = 0; i < kNumLocks; ++i) {
    locks[i] = env.k().CreateSemaphoreWithMode("lock", 1, mode).value();
  }

  const int num_threads = 8 + static_cast<int>(rng.UniformInt(0, 8));
  int num_bands = env.k().scheduler().num_bands();
  for (int i = 0; i < num_threads; ++i) {
    ThreadParams params;
    params.name = "stress";
    params.period = Milliseconds(rng.UniformInt(5, 60));
    params.band = static_cast<int>(rng.UniformInt(0, num_bands - 1));
    // One or two locks in ascending order, compute inside and outside.
    int first = static_cast<int>(rng.UniformInt(0, kNumLocks - 1));
    int second = static_cast<int>(rng.UniformInt(first, kNumLocks - 1));
    bool nested = rng.Bernoulli(0.4) && second != first;
    Duration outer = Microseconds(rng.UniformInt(50, 800));
    Duration inner = Microseconds(rng.UniformInt(50, 400));
    SemId lock_a = locks[first];
    SemId lock_b = locks[second];
    bool hint = rng.Bernoulli(0.5);
    params.body = [=](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(outer);
        Status status = co_await api.Acquire(lock_a);
        EM_ASSERT(status == Status::kOk);
        co_await api.Compute(inner);
        if (nested) {
          status = co_await api.Acquire(lock_b);
          EM_ASSERT(status == Status::kOk);
          co_await api.Compute(inner);
          co_await api.Release(lock_b);
        }
        co_await api.Release(lock_a);
        co_await api.WaitNextPeriod(hint ? lock_a : kNoSem);
      }
    };
    ASSERT_TRUE(env.k().CreateThread(params).ok());
  }

  env.StartAndRunFor(Seconds(2));

  // Post-conditions: progress happened; every lock is free or held by a
  // runnable thread mid-section; PI has unwound for every thread that holds
  // nothing.
  const KernelStats& stats = env.k().stats();
  EXPECT_GT(stats.jobs_completed, 100u);
  env.k().scheduler().Validate();
  for (int i = 0; i < kNumLocks; ++i) {
    const Semaphore& sem = env.k().semaphore(locks[i]);
    if (sem.owner != nullptr) {
      EXPECT_TRUE(sem.owner->runnable() || sem.owner->is_blocked());
    } else {
      EXPECT_EQ(sem.count, 1);
      EXPECT_TRUE(sem.waiters.empty());
    }
  }
  for (size_t i = 0; i < env.k().thread_count(); ++i) {
    const Tcb& t = env.k().thread(ThreadId(static_cast<int>(i)));
    if (t.held_head == nullptr) {
      // No held semaphores: no residual boost or borrowed queue slot.
      EXPECT_EQ(t.boosted_into_band, -1) << t.name;
      EXPECT_EQ(t.pi_swap_sem, nullptr) << t.name;
      EXPECT_EQ(t.effective_band, t.base_band) << t.name;
      if (t.blocked_on == nullptr) {
        EXPECT_EQ(t.effective_rm_rank, t.base_rm_rank) << t.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, KernelStressTest, ::testing::Range(0, 10));

class IpcStressTest : public ::testing::TestWithParam<int> {};

// Producer/consumer meshes over mailboxes and state messages with random
// rates; conservation laws must hold (every received message was sent, state
// message sequences are monotone per reader).
TEST_P(IpcStressTest, MessageConservation) {
  Rng rng(9100 + GetParam());
  KernelConfig config = CalibratedConfig(SchedulerSpec::Edf());
  config.debug_validate = true;
  config.trace_capacity = 0;
  SimEnv env(config);

  MailboxId mbox = env.k().CreateMailbox("bus", 1 + rng.UniformInt(0, 7)).value();
  SmsgId smsg = env.k().CreateStateMessage("state", 16, 4).value();

  uint64_t sent = 0;
  uint64_t received = 0;
  bool sequence_regressed = false;

  const int producers = 1 + static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < producers; ++i) {
    ThreadParams producer;
    producer.name = "producer";
    producer.period = Milliseconds(rng.UniformInt(3, 20));
    bool try_send = rng.Bernoulli(0.3);
    producer.body = [&, try_send](ThreadApi api) -> ThreadBody {
      uint8_t payload[16] = {};
      for (;;) {
        Status status = try_send ? co_await api.TrySend(mbox, payload)
                                 : co_await api.Send(mbox, payload);
        if (status == Status::kOk) {
          ++sent;
        }
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(producer);
  }
  const int consumers = 1 + static_cast<int>(rng.UniformInt(0, 2));
  for (int i = 0; i < consumers; ++i) {
    ThreadParams consumer;
    consumer.name = "consumer";
    consumer.period = Milliseconds(rng.UniformInt(3, 25));
    Duration timeout = Milliseconds(rng.UniformInt(1, 10));
    consumer.body = [&, timeout](ThreadApi api) -> ThreadBody {
      uint8_t buffer[16];
      for (;;) {
        RecvResult r = co_await api.Recv(mbox, buffer, timeout);
        if (r.status == Status::kOk) {
          ++received;
        }
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(consumer);
  }
  // One state-message writer plus a reader checking sequence monotonicity.
  ThreadParams writer;
  writer.name = "writer";
  writer.period = Milliseconds(rng.UniformInt(2, 8));
  writer.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t payload[16] = {};
    for (;;) {
      co_await api.StateWrite(smsg, payload);
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(writer);
  ThreadParams reader;
  reader.name = "reader";
  reader.period = Milliseconds(rng.UniformInt(2, 12));
  reader.body = [&](ThreadApi api) -> ThreadBody {
    uint64_t last = 0;
    for (;;) {
      uint8_t buffer[16];
      StateReadResult r = co_await api.StateRead(smsg, buffer);
      if (r.status == Status::kOk) {
        if (r.sequence < last) {
          sequence_regressed = true;
        }
        last = r.sequence;
      }
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(reader);

  env.StartAndRunFor(Seconds(2));

  const Mailbox& box = env.k().mailbox(mbox);
  EXPECT_GT(sent, 50u);
  // Conservation: everything sent is either received or still queued.
  EXPECT_EQ(sent, received + box.queue->size());
  EXPECT_FALSE(sequence_regressed);
  EXPECT_EQ(env.k().stats().mailbox_sends, sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpcStressTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace emeralds
