// Death tests: programming errors the kernel turns into panics rather than
// silent corruption.

#include <cstdio>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

using KernelDeathTest = ::testing::Test;

TEST(KernelDeathTest, RecursiveAcquirePanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    SemId sem = env.k().CreateSemaphore("m").value();
    env.k().CreateThread(Aperiodic("rec", [sem](ThreadApi api) -> ThreadBody {
      co_await api.Acquire(sem);
      co_await api.Acquire(sem);  // recursive: not supported, must panic
    }));
    env.StartAndRunFor(Milliseconds(1));
  };
  EXPECT_DEATH(run(), "recursive acquire");
}

TEST(KernelDeathTest, ExitWhileHoldingSemaphorePanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    SemId sem = env.k().CreateSemaphore("m").value();
    env.k().CreateThread(Aperiodic("leaker", [sem](ThreadApi api) -> ThreadBody {
      co_await api.Acquire(sem);
      // returns without releasing
    }));
    env.StartAndRunFor(Milliseconds(1));
  };
  EXPECT_DEATH(run(), "exited while holding");
}

TEST(KernelDeathTest, WaitNextPeriodOnAperiodicPanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    env.k().CreateThread(Aperiodic("oops", [](ThreadApi api) -> ThreadBody {
      co_await api.WaitNextPeriod();
    }));
    env.StartAndRunFor(Milliseconds(1));
  };
  EXPECT_DEATH(run(), "aperiodic");
}

TEST(KernelDeathTest, StartTwicePanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    env.k().Start();
    env.k().Start();
  };
  EXPECT_DEATH(run(), "Start");
}

TEST(KernelDeathTest, RunBeforeStartPanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    env.k().RunUntil(Instant() + Milliseconds(1));
  };
  EXPECT_DEATH(run(), "before Start");
}

TEST(KernelDeathTest, CreateThreadAfterStartPanics) {
  auto run = [] {
    SimEnv env(ZeroCostConfig());
    env.k().Start();
    ThreadParams params;
    params.name = "late";
    params.body = [](ThreadApi api) -> ThreadBody { co_return; };
    env.k().CreateThread(params);
  };
  EXPECT_DEATH(run(), "before Start");
}

TEST(KernelDeathTest, MixedExplicitAndAutoRanksPanic) {
  auto run = [] {
    SimEnv env(ZeroCostConfig(SchedulerSpec::Rm()));
    ThreadParams a;
    a.name = "explicit";
    a.period = Milliseconds(10);
    a.rm_rank = 0;
    a.body = [](ThreadApi api) -> ThreadBody { co_return; };
    env.k().CreateThread(a);
    ThreadParams b;
    b.name = "auto";
    b.period = Milliseconds(20);
    b.body = [](ThreadApi api) -> ThreadBody { co_return; };
    env.k().CreateThread(b);
    env.k().Start();
  };
  EXPECT_DEATH(run(), "rm_rank");
}

TEST(PanicHookTest, HookRunsBeforeAbort) {
  PanicHook old = SetPanicHook([](const char* file, int line, const char* message) {
    // The hook runs in the death-test child; print so the parent can match.
    std::fprintf(stderr, "hook saw: %s at line %d of %s\n", message, line, file);
  });
  EXPECT_DEATH(EM_PANIC("custom failure %d", 42), "hook saw: custom failure 42");
  SetPanicHook(old);
}

}  // namespace
}  // namespace emeralds
