// Semaphore tests: mutual exclusion, priority inheritance (deadline
// inheritance for DP tasks, place-holder swaps for FP tasks), the
// context-switch-elimination scheme of Section 6.2, and the pre-acquire
// queue of Section 6.3.1. Scenarios mirror the paper's Figures 6-10.

#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Periodic(const char* name, Duration period, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.period = period;
  params.body = std::move(body);
  return params;
}

KernelConfig ModeConfig(SemMode mode, SchedulerSpec spec = SchedulerSpec::Edf()) {
  KernelConfig config = ZeroCostConfig(spec);
  config.default_sem_mode = mode;
  return config;
}

TEST(SemaphoreTest, MutualExclusion) {
  SimEnv env(ZeroCostConfig());
  SemId sem = env.k().CreateSemaphore("m").value();
  int in_section = 0;
  int max_in_section = 0;
  // Staggered releases with overlapping critical sections: higher-priority
  // threads preempt a holder mid-section and must block at acquire.
  Duration periods[3] = {Milliseconds(20), Milliseconds(10), Milliseconds(15)};
  Duration offsets[3] = {Duration(), Milliseconds(1), Milliseconds(2)};
  for (int i = 0; i < 3; ++i) {
    ThreadParams params =
        Periodic("t", periods[i], [&, sem](ThreadApi api) -> ThreadBody {
          for (;;) {
            co_await api.Acquire(sem);
            ++in_section;
            max_in_section = std::max(max_in_section, in_section);
            co_await api.Compute(Milliseconds(3));
            --in_section;
            co_await api.Release(sem);
            co_await api.WaitNextPeriod();
          }
        });
    params.first_release = offsets[i];
    env.k().CreateThread(params);
  }
  env.StartAndRunFor(Milliseconds(100));
  EXPECT_EQ(max_in_section, 1);
  EXPECT_GT(env.k().stats().sem_contended, 0u);
}

TEST(SemaphoreTest, ReleaseByNonOwnerFails) {
  SimEnv env(ZeroCostConfig());
  SemId sem = env.k().CreateSemaphore("m").value();
  Status observed = Status::kOk;
  ThreadParams params;
  params.name = "bad";
  params.body = [&, sem](ThreadApi api) -> ThreadBody {
    observed = co_await api.Release(sem);
  };
  env.k().CreateThread(params);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(observed, Status::kFailedPrecondition);
}

TEST(SemaphoreTest, BadHandleRejected) {
  SimEnv env(ZeroCostConfig());
  Status observed = Status::kOk;
  ThreadParams params;
  params.name = "bad";
  params.body = [&](ThreadApi api) -> ThreadBody {
    observed = co_await api.Acquire(SemId(42));
  };
  env.k().CreateThread(params);
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(observed, Status::kBadHandle);
}

// Classic bounded-inversion scenario: low-priority holder inherits the high
// thread's priority so a medium thread cannot starve it.
TEST(SemaphoreTest, PriorityInheritanceBoundsInversion) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  SemId sem = env.k().CreateSemaphore("m").value();
  int64_t high_acquired_us = -1;
  int64_t medium_started_us = -1;

  // Low (period 100ms): locks at t=0 for 4ms of work.
  env.k().CreateThread(Periodic("low", Milliseconds(100), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(4));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  // Medium (period 50ms, released at 1ms): 10ms of compute.
  ThreadParams medium = Periodic("medium", Milliseconds(50), [&](ThreadApi api) -> ThreadBody {
    medium_started_us = api.now().micros();
    co_await api.Compute(Milliseconds(10));
    co_await api.WaitNextPeriod();
  });
  medium.first_release = Milliseconds(1);
  env.k().CreateThread(medium);
  // High (period 20ms, released at 2ms): needs the lock.
  ThreadParams high = Periodic("high", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    high_acquired_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  high.first_release = Milliseconds(2);
  env.k().CreateThread(high);

  env.StartAndRunFor(Milliseconds(20));
  // Without PI the medium thread would run its 10ms first (high waits ~14ms).
  // With PI, low inherits high's deadline at t=2 and finishes its remaining
  // 3ms by t=5, handing the lock to high.
  EXPECT_EQ(high_acquired_us, 5000);
  EXPECT_EQ(medium_started_us, 1000);  // started, then preempted
  EXPECT_GE(env.k().stats().pi_inherits, 1u);
}

// Transitive inheritance through a chain of two semaphores.
TEST(SemaphoreTest, TransitiveInheritanceChain) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  SemId s1 = env.k().CreateSemaphore("s1").value();
  SemId s2 = env.k().CreateSemaphore("s2").value();
  int64_t high_done_us = -1;

  // C (lowest, period 300): holds s2 for 4ms.
  env.k().CreateThread(Periodic("C", Milliseconds(300), [&, s2](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(s2);
    co_await api.Compute(Milliseconds(4));
    co_await api.Release(s2);
    co_await api.WaitNextPeriod();
  }));
  // B (period 200, at 1ms): holds s1, then needs s2 (blocks on C).
  ThreadParams b = Periodic("B", Milliseconds(200), [&, s1, s2](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(s1);
    co_await api.Acquire(s2);
    co_await api.Compute(Milliseconds(1));
    co_await api.Release(s2);
    co_await api.Release(s1);
    co_await api.WaitNextPeriod();
  });
  b.first_release = Milliseconds(1);
  env.k().CreateThread(b);
  // A (period 20, at 2ms): needs s1 (blocks on B, which is blocked on C).
  ThreadParams a = Periodic("A", Milliseconds(20), [&, s1](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(s1);
    co_await api.Release(s1);
    high_done_us = api.now().micros();
    co_await api.WaitNextPeriod();
  });
  a.first_release = Milliseconds(2);
  env.k().CreateThread(a);
  // Medium interference that would starve C without transitive PI.
  ThreadParams m = Periodic("M", Milliseconds(50), [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(30));
    co_await api.WaitNextPeriod();
  });
  m.first_release = Milliseconds(2);
  env.k().CreateThread(m);

  env.StartAndRunFor(Milliseconds(20));
  // C runs [0,1) and [1,2) (B's zero-cost block at t=1 hands the CPU back),
  // inherits A's deadline through B at t=2 so M cannot preempt, finishes its
  // 4ms section at t=4; B takes s2, computes [4,5), releases both; A
  // completes at 5.
  EXPECT_EQ(high_done_us, 5000);
  EXPECT_GE(env.k().stats().pi_inherits, 2u);
}

// --- The CSE scheme (Sections 6.2-6.3, Figures 6 and 8) ---

struct CseScenarioResult {
  uint64_t context_switches;
  uint64_t cse_early_pi;
  uint64_t cse_grants;
  uint64_t cse_switches_saved;
  int64_t t2_section_start_us;
  int64_t t2_section_end_us;
};

// T1 (low) holds S across T2's (high) periodic release at t=10ms. T2's
// WaitNextPeriod carries the hint, as the code parser would arrange.
CseScenarioResult RunCseScenario(SemMode mode) {
  SimEnv env(ModeConfig(mode));
  SemId sem = env.k().CreateSemaphoreWithMode("S", 1, mode).value();
  CseScenarioResult result{};
  result.t2_section_start_us = -1;
  result.t2_section_end_us = -1;

  // T2: high priority (period 10ms).
  env.k().CreateThread(Periodic("T2", Milliseconds(10), [&, sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      if (api.job_number() == 2) {
        result.t2_section_start_us = api.now().micros();
      }
      co_await api.Compute(Milliseconds(1));
      if (api.job_number() == 2) {
        result.t2_section_end_us = api.now().micros();
      }
      co_await api.Release(sem);
      co_await api.WaitNextPeriod(sem);  // instrumented blocking call
    }
  }));
  // T1: low priority (period 50ms); busy until t=9, then holds S for 3ms.
  env.k().CreateThread(Periodic("T1", Milliseconds(50), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(8));  // [1, 9)
    co_await api.Acquire(sem);              // free at t=9
    co_await api.Compute(Milliseconds(3));  // holds S across T2's release
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));

  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(15));
  const KernelStats& stats = env.k().stats();
  result.context_switches = stats.context_switches;
  result.cse_early_pi = stats.cse_early_pi;
  result.cse_grants = stats.cse_grants;
  result.cse_switches_saved = stats.cse_switches_saved;
  return result;
}

TEST(SemaphoreCseTest, EarlyPiKeepsWokenThreadBlocked) {
  CseScenarioResult cse = RunCseScenario(SemMode::kCse);
  EXPECT_EQ(cse.cse_early_pi, 1u);
  EXPECT_EQ(cse.cse_grants, 1u);
  EXPECT_EQ(cse.cse_switches_saved, 1u);
  // T1 releases at t=12; T2 enters its section immediately after.
  EXPECT_EQ(cse.t2_section_start_us, 12000);
  EXPECT_EQ(cse.t2_section_end_us, 13000);
}

TEST(SemaphoreCseTest, StandardModeTakesExtraSwitches) {
  CseScenarioResult standard = RunCseScenario(SemMode::kStandard);
  CseScenarioResult cse = RunCseScenario(SemMode::kCse);
  EXPECT_EQ(standard.cse_early_pi, 0u);
  EXPECT_EQ(standard.cse_switches_saved, 0u);
  // Identical completion time (Section 6.2.2: "chunks of execution time are
  // swapped between T1 and T2 without affecting the completion time") ...
  EXPECT_EQ(standard.t2_section_start_us, cse.t2_section_start_us);
  EXPECT_EQ(standard.t2_section_end_us, cse.t2_section_end_us);
  // ... but the standard implementation pays more context switches.
  EXPECT_GT(standard.context_switches, cse.context_switches);
}

// Section 6.2.2 concern 1: the thread does not block on the preceding call
// (the release already arrived). The acquire then proceeds normally.
TEST(SemaphoreCseTest, NoBlockOnPrecedingCall) {
  SimEnv env(ModeConfig(SemMode::kCse));
  SemId sem = env.k().CreateSemaphore("S").value();
  int sections = 0;
  env.k().CreateThread(Periodic("T", Milliseconds(10), [&, sem](ThreadApi api) -> ThreadBody {
    for (int i = 0; i < 3; ++i) {
      co_await api.Compute(Milliseconds(12));  // overruns: release pending
      co_await api.WaitNextPeriod(sem);        // returns without blocking
      co_await api.Acquire(sem);
      ++sections;
      co_await api.Release(sem);
    }
  }));
  env.StartAndRunFor(Milliseconds(60));
  EXPECT_EQ(sections, 3);
  EXPECT_EQ(env.k().stats().cse_early_pi, 0u);
}

// A hint naming a semaphore that is never acquired must be tolerated.
TEST(SemaphoreCseTest, WrongHintTolerated) {
  SimEnv env(ModeConfig(SemMode::kCse));
  SemId sem = env.k().CreateSemaphore("S").value();
  int jobs = 0;
  env.k().CreateThread(Periodic("liar", Milliseconds(10), [&, sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      ++jobs;
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod(sem);  // hint, but no acquire follows
    }
  }));
  env.StartAndRunFor(Milliseconds(45));
  EXPECT_EQ(jobs, 5);
  EXPECT_GE(env.k().stats().cse_hint_misses, 1u);
}

// Section 6.3.1: the lock holder blocks while holding the semaphore. The
// would-be acquirer sits in the pre-acquire queue and is frozen so it does
// not burn CPU just to block at acquire_sem().
TEST(SemaphoreCseTest, PreAcquireFreezeWhileHolderBlocked) {
  SimEnv env(ModeConfig(SemMode::kCse));
  SemId sem = env.k().CreateSemaphore("S").value();
  int64_t t2_acquired_us = -1;

  // T2 (period 20ms): compute, acquire, compute, release.
  env.k().CreateThread(Periodic("T2", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.Acquire(sem);
      if (api.job_number() == 2) {
        t2_acquired_us = api.now().micros();
      }
      co_await api.Compute(Milliseconds(1));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod(sem);
    }
  }));
  // T1 (higher priority: shorter relative deadline; released at 20.5ms):
  // locks S then sleeps while holding it (Figure 9's problem case).
  ThreadParams t1 = Periodic("T1", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Sleep(Milliseconds(2));  // blocks holding S
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  t1.relative_deadline = Milliseconds(10);
  t1.first_release = Microseconds(20500);
  env.k().CreateThread(t1);

  env.StartAndRunFor(Milliseconds(30));
  // T2 released at 20 (S free -> pre-acquire queue), ran [20, 20.5); T1
  // preempted, locked S, froze T2, slept until 22.5; released -> thaw; T2
  // finished its remaining 0.5ms compute and acquired at 23.
  EXPECT_EQ(t2_acquired_us, 23000);
  EXPECT_GE(env.k().stats().preacquire_freezes, 1u);
  // The 2ms sleep left the CPU idle: the frozen T2 must NOT have run.
  EXPECT_GE(env.k().stats().idle_time.micros(), 2000);
}

// Figure 10: the holder blocks waiting for an internal event (a signal from
// Ts); letting Ts run instead of T2 releases the semaphore sooner.
TEST(SemaphoreCseTest, HolderBlockedOnInternalEvent) {
  SimEnv env(ModeConfig(SemMode::kCse));
  SemId sem = env.k().CreateSemaphore("S").value();
  SemId guard = env.k().CreateSemaphore("guard").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  int64_t t2_acquired_us = -1;
  bool signalled = false;

  // T1 (period 100): locks S, waits for the signal while holding it.
  env.k().CreateThread(Periodic("T1", Milliseconds(100), [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Acquire(guard);
    while (!signalled) {
      co_await api.Wait(cv, guard);
    }
    co_await api.Release(guard);
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  // T2 (period 20, released at 5ms): wants S.
  ThreadParams t2 = Periodic("T2", Milliseconds(20), [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    t2_acquired_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod(sem);
  });
  t2.first_release = Milliseconds(5);
  env.k().CreateThread(t2);
  // Ts (period 100, low priority, released at 6ms): signals after 2ms work.
  ThreadParams ts = Periodic("Ts", Milliseconds(100), [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(2));
    co_await api.Acquire(guard);
    signalled = true;
    co_await api.Signal(cv);
    co_await api.Release(guard);
    co_await api.WaitNextPeriod();
  });
  ts.first_release = Milliseconds(6);
  env.k().CreateThread(ts);

  env.StartAndRunFor(Milliseconds(20));
  // Ts runs [6, 8), signals; T1 wakes, releases S; T2 acquires at 8.
  EXPECT_EQ(t2_acquired_us, 8000);
}

// --- Place-holder PI on the FP queue (Section 6.2) ---

// FP holder inherits a blocked FP waiter's rank via a position swap (O(1)),
// not a sorted re-insert.
TEST(SemaphoreFpTest, PlaceholderSwapUsedInCseMode) {
  SimEnv env(ModeConfig(SemMode::kCse, SchedulerSpec::Rm()));
  SemId sem = env.k().CreateSemaphore("S").value();
  int64_t high_acquired_us = -1;

  env.k().CreateThread(Periodic("low", Milliseconds(100), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(4));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  ThreadParams mid = Periodic("mid", Milliseconds(50), [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(10));
    co_await api.WaitNextPeriod();
  });
  mid.first_release = Milliseconds(1);
  env.k().CreateThread(mid);
  ThreadParams high = Periodic("high", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    high_acquired_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  high.first_release = Milliseconds(2);
  env.k().CreateThread(high);

  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(high_acquired_us, 5000);  // PI worked
  EXPECT_GE(env.k().stats().pi_swaps, 2u);  // swap + swap-back
  EXPECT_EQ(env.k().stats().pi_reinserts, 0u);
  env.k().scheduler().Validate();
}

TEST(SemaphoreFpTest, StandardModeUsesReinserts) {
  SimEnv env(ModeConfig(SemMode::kStandard, SchedulerSpec::Rm()));
  SemId sem = env.k().CreateSemaphore("S").value();
  int64_t high_acquired_us = -1;

  env.k().CreateThread(Periodic("low", Milliseconds(100), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(4));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  ThreadParams high = Periodic("high", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    high_acquired_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  high.first_release = Milliseconds(2);
  env.k().CreateThread(high);

  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(high_acquired_us, 4000);
  EXPECT_EQ(env.k().stats().pi_swaps, 0u);
  EXPECT_GE(env.k().stats().pi_reinserts, 1u);
  env.k().scheduler().Validate();
}

// The third-thread case: T3 (even higher priority) blocks on the semaphore
// while the holder already occupies T2's slot. T3 becomes the new
// place-holder; T2 returns to its own position. Still O(1).
TEST(SemaphoreFpTest, ThirdWaiterReplacesPlaceholder) {
  SimEnv env(ModeConfig(SemMode::kCse, SchedulerSpec::Rm()));
  SemId sem = env.k().CreateSemaphore("S").value();
  std::vector<int64_t> acquire_order_us;

  env.k().CreateThread(Periodic("low", Milliseconds(200), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(6));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  ThreadParams t2 = Periodic("T2", Milliseconds(50), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    acquire_order_us.push_back(api.now().micros() * 10 + 2);
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  t2.first_release = Milliseconds(1);
  env.k().CreateThread(t2);
  ThreadParams t3 = Periodic("T3", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    acquire_order_us.push_back(api.now().micros() * 10 + 3);
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  t3.first_release = Milliseconds(2);
  env.k().CreateThread(t3);

  env.StartAndRunFor(Milliseconds(30));
  // Low acquires at 0 and computes 6ms (blocking attempts at t=1 and t=2
  // cost zero virtual time); T2 blocks at 1 (swap #1), T3 blocks at 2 (the
  // T3 case: two more swaps). Low releases at 6 having inherited T3's rank.
  // T3 acquires first, then T2.
  ASSERT_EQ(acquire_order_us.size(), 2u);
  EXPECT_EQ(acquire_order_us[0] % 10, 3u);  // T3 first
  EXPECT_EQ(acquire_order_us[0] / 10, 6000u);
  EXPECT_EQ(acquire_order_us[1] % 10, 2u);
  EXPECT_GE(env.k().stats().pi_swaps, 4u);  // initial + 2 (T3 case) + undo
  env.k().scheduler().Validate();
}

// --- Counting semaphores ---

TEST(SemaphoreCountingTest, AllowsMultipleHolders) {
  SimEnv env(ZeroCostConfig());
  SemId sem = env.k().CreateSemaphore("pool", 2).value();
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 3; ++i) {
    ThreadParams params;
    params.name = "worker";
    params.body = [&, sem](ThreadApi api) -> ThreadBody {
      co_await api.Acquire(sem);
      ++concurrent;
      max_concurrent = std::max(max_concurrent, concurrent);
      co_await api.Sleep(Milliseconds(2));
      --concurrent;
      co_await api.Release(sem);
    };
    env.k().CreateThread(params);
  }
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(max_concurrent, 2);
}

TEST(SemaphoreCountingTest, WaiterWokenOnRelease) {
  SimEnv env(ZeroCostConfig());
  SemId sem = env.k().CreateSemaphore("pool", 1).value();
  // Binary=false requires initial >= 2; use initial 1 -> binary. For the
  // counting path use initial 2 drained by two holders.
  SemId pool = env.k().CreateSemaphore("pool2", 2).value();
  (void)sem;
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    ThreadParams params;
    params.name = "w";
    params.body = [&, pool, i](ThreadApi api) -> ThreadBody {
      co_await api.Acquire(pool);
      order.push_back(i);
      co_await api.Sleep(Milliseconds(1 + i));
      co_await api.Release(pool);
    };
    env.k().CreateThread(params);
  }
  env.StartAndRunFor(Milliseconds(10));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 2);  // third worker admitted only after a release
}

// A blocking chain one past kMaxPiChainDepth: T_i holds S_i and blocks on
// S_{i-1}. The acquire that would extend the chain past the cap must fail
// with kResourceExhausted and a kPiChainLimit trace instant — it used to
// hard-assert and kill the whole simulation.
TEST(SemaphoreTest, DeepPiChainFailsGracefully) {
  SimEnv env(ZeroCostConfig());
  const int chain = kMaxPiChainDepth + 1;  // 17 threads, 17 semaphores
  std::vector<SemId> sems;
  for (int i = 0; i < chain; ++i) {
    sems.push_back(env.k().CreateSemaphore("s").value());
  }
  std::vector<Status> nested(chain, Status::kCancelled);

  ThreadParams head;
  head.name = "t0";
  head.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sems[0]);
    co_await api.Sleep(Milliseconds(100));  // runnable end of the chain
    co_await api.Release(sems[0]);
  };
  env.k().CreateThread(head);
  for (int i = 1; i < chain; ++i) {
    ThreadParams params;
    params.name = "t";
    params.body = [&, i](ThreadApi api) -> ThreadBody {
      co_await api.Sleep(Milliseconds(i));  // stagger: the chain grows in order
      co_await api.Acquire(sems[i]);
      nested[i] = co_await api.Acquire(sems[i - 1]);
      if (nested[i] == Status::kOk) {
        co_await api.Release(sems[i - 1]);
      }
      co_await api.Release(sems[i]);
    };
    env.k().CreateThread(params);
  }
  env.StartAndRunFor(Milliseconds(300));

  // Every link up to the cap blocked and eventually acquired; the link that
  // would have made the chain 17 deep was refused instead of panicking.
  for (int i = 1; i < chain - 1; ++i) {
    EXPECT_EQ(nested[i], Status::kOk) << "link " << i;
  }
  EXPECT_EQ(nested[chain - 1], Status::kResourceExhausted);
  EXPECT_GE(env.k().stats().pi_chain_limit_hits, 1u);
  bool saw_limit_event = false;
  const TraceSink& trace = env.k().trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace.at(i).type == TraceEventType::kPiChainLimit) {
      saw_limit_event = true;
    }
  }
  EXPECT_TRUE(saw_limit_event);
}

}  // namespace
}  // namespace emeralds
