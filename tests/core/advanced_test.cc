// Cross-cutting kernel tests: cross-band priority inheritance under CSD,
// semaphores on the RM-heap scheduler, blocked-sender priority ordering,
// condvar re-acquisition with inheritance, the TaskSetRunner facility, and
// charge accounting.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/taskset_runner.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Periodic(const char* name, Duration period, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.period = period;
  params.body = std::move(body);
  return params;
}

// A DP (EDF-queue) task blocking on a semaphore held by an FP (RM-queue)
// task must boost the holder into the DP band so it outruns other DP tasks.
TEST(CrossBandPiTest, FpHolderBoostedIntoDpBand) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Csd(2));
  config.debug_validate = true;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S").value();
  int64_t dp_acquired_us = -1;

  // FP holder: locks at t=0 for 4ms.
  ThreadParams holder = Periodic("fp-holder", Milliseconds(200),
                                 [&, sem](ThreadApi api) -> ThreadBody {
                                   co_await api.Acquire(sem);
                                   co_await api.Compute(Milliseconds(4));
                                   co_await api.Release(sem);
                                   co_await api.WaitNextPeriod();
                                 });
  holder.band = 1;
  env.k().CreateThread(holder);
  // DP interference: would run for 10ms from t=1 if the holder were not
  // boosted above it.
  ThreadParams noise = Periodic("dp-noise", Milliseconds(40),
                                [&](ThreadApi api) -> ThreadBody {
                                  co_await api.Compute(Milliseconds(10));
                                  co_await api.WaitNextPeriod();
                                });
  noise.band = 0;
  noise.first_release = Milliseconds(1);
  env.k().CreateThread(noise);
  // DP contender: needs the lock at t=2.
  ThreadParams contender = Periodic("dp-contender", Milliseconds(20),
                                    [&, sem](ThreadApi api) -> ThreadBody {
                                      co_await api.Acquire(sem);
                                      dp_acquired_us = api.now().micros();
                                      co_await api.Release(sem);
                                      co_await api.WaitNextPeriod();
                                    });
  contender.band = 0;
  contender.first_release = Milliseconds(2);
  env.k().CreateThread(contender);

  env.StartAndRunFor(Milliseconds(20));
  // Boosted holder finishes its remaining 3ms by t=5 (noise would have held
  // the CPU until 11 otherwise); the DP contender then gets the lock.
  EXPECT_EQ(dp_acquired_us, 5000);
  EXPECT_GE(env.k().stats().pi_inherits, 1u);
  // After release the boost must be gone.
  const Tcb& h = env.k().thread(ThreadId(0));
  EXPECT_EQ(h.boosted_into_band, -1);
  EXPECT_EQ(h.effective_band, 1);
}

// The RM-heap scheduler (Table 1's comparison structure) runs the full
// semaphore machinery through the standard (re-insert / re-key) PI path.
TEST(RmHeapKernelTest, SemaphoresWorkOnHeapScheduler) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::RmHeap());
  config.default_sem_mode = SemMode::kStandard;
  config.debug_validate = true;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S").value();
  int64_t high_acquired_us = -1;

  env.k().CreateThread(Periodic("low", Milliseconds(100), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(4));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  }));
  ThreadParams mid = Periodic("mid", Milliseconds(50), [](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(10));
    co_await api.WaitNextPeriod();
  });
  mid.first_release = Milliseconds(1);
  env.k().CreateThread(mid);
  ThreadParams high = Periodic("high", Milliseconds(20), [&, sem](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    high_acquired_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  });
  high.first_release = Milliseconds(2);
  env.k().CreateThread(high);

  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(high_acquired_us, 5000);  // PI through the heap re-key path
  EXPECT_EQ(env.k().stats().deadline_misses, 0u);
}

TEST(RmHeapKernelTest, PeriodicWorkloadRuns) {
  KernelConfig config = CalibratedConfig(SchedulerSpec::RmHeap());
  config.debug_validate = true;
  SimEnv env(config);
  TaskSet set = Table2Workload().ScaledBy(0.5);
  std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set);
  env.StartAndRunFor(Seconds(1));
  TaskSetRunStats stats = CollectRunStats(env.k(), ids);
  EXPECT_GT(stats.jobs_completed, 300u);
  EXPECT_EQ(stats.deadline_misses, 0u);
}

// Blocked senders are admitted in priority order, not FIFO.
TEST(MailboxSenderOrderTest, HighestPrioritySenderAdmittedFirst) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  MailboxId mbox = env.k().CreateMailbox("m", 1).value();
  std::vector<char> admitted;

  // Fill the mailbox so both senders block.
  ThreadParams filler;
  filler.name = "filler";
  filler.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b = 0;
    co_await api.Send(mbox, std::span<const uint8_t>(&b, 1));
  };
  env.k().CreateThread(filler);

  ThreadParams lo;
  lo.name = "lo";
  lo.period = Milliseconds(100);
  lo.first_release = Milliseconds(1);
  lo.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b = 'L';
    co_await api.Send(mbox, std::span<const uint8_t>(&b, 1));
    admitted.push_back('L');
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(lo);
  ThreadParams hi;
  hi.name = "hi";
  hi.period = Milliseconds(20);
  hi.first_release = Milliseconds(2);
  hi.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b = 'H';
    co_await api.Send(mbox, std::span<const uint8_t>(&b, 1));
    admitted.push_back('H');
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(hi);

  // Drain one slot at t=5: the high-priority sender must get it.
  ThreadParams drainer;
  drainer.name = "drainer";
  drainer.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(5));
    uint8_t b;
    co_await api.Recv(mbox, std::span<uint8_t>(&b, 1));
  };
  env.k().CreateThread(drainer);

  env.StartAndRunFor(Milliseconds(10));
  ASSERT_GE(admitted.size(), 1u);
  EXPECT_EQ(admitted[0], 'H');
}

// Signal moves a waiter onto a *held* mutex: the waiter donates priority to
// the mutex holder (condvar + PI interplay).
TEST(CondvarPiTest, SignalledWaiterDonatesPriority) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  int64_t waiter_resumed_us = -1;

  // High-priority waiter parks on the condvar.
  ThreadParams waiter;
  waiter.name = "waiter";
  waiter.period = Milliseconds(20);
  waiter.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);
    waiter_resumed_us = api.now().micros();
    co_await api.Release(mutex);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(waiter);
  // Low-priority thread: takes the mutex at t=1, signals, keeps the mutex
  // for 3ms of work. The signalled waiter contends and donates its deadline,
  // protecting the holder from the medium interferer.
  ThreadParams holder;
  holder.name = "holder";
  holder.period = Milliseconds(200);
  holder.first_release = Milliseconds(1);
  holder.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Signal(cv);
    co_await api.Compute(Milliseconds(3));
    co_await api.Release(mutex);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(holder);
  ThreadParams medium;
  medium.name = "medium";
  medium.period = Milliseconds(50);
  medium.first_release = Milliseconds(2);
  medium.body = [](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(10));
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(medium);

  env.StartAndRunFor(Milliseconds(20));
  // Without donation the medium thread would run its 10ms first; with it the
  // holder finishes at 4 and the waiter resumes immediately.
  EXPECT_EQ(waiter_resumed_us, 4000);
  EXPECT_GE(env.k().stats().pi_inherits, 1u);
}

TEST(TaskSetRunnerTest, BandsFromPartitionExpands) {
  EXPECT_EQ(BandsFromPartition({2, 3}), (std::vector<int>{0, 0, 1, 1, 1}));
  EXPECT_EQ(BandsFromPartition({0, 2}), (std::vector<int>{1, 1}));
  EXPECT_TRUE(BandsFromPartition({}).empty());
}

TEST(TaskSetRunnerTest, SpawnsAndCollects) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Csd(2)));
  TaskSet set = Table2Workload();
  std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set, BandsFromPartition({5, 5}));
  ASSERT_EQ(ids.size(), 10u);
  env.StartAndRunFor(Milliseconds(100));
  TaskSetRunStats stats = CollectRunStats(env.k(), ids);
  EXPECT_GT(stats.jobs_completed, 50u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_TRUE(stats.worst_response.is_positive());
  // tau_1's band assignment respected.
  EXPECT_EQ(env.k().thread(ids[0]).base_band, 0);
  EXPECT_EQ(env.k().thread(ids[9]).base_band, 1);
}

TEST(ChargeAccountingTest, SemPathOnlyAroundSemOps) {
  SimEnv env(CalibratedConfig());
  // A single periodic thread that never touches a semaphore: sem-path time
  // stays zero while other categories accumulate.
  env.k().CreateThread(Periodic("plain", Milliseconds(10), [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(100));
  EXPECT_TRUE(env.k().stats().sem_path_time.is_zero());
  EXPECT_TRUE(env.k().stats().charged[static_cast<int>(ChargeCategory::kScheduling)]
                  .is_positive());
  EXPECT_TRUE(env.k()
                  .stats()
                  .charged[static_cast<int>(ChargeCategory::kSemaphore)]
                  .is_zero());
}

TEST(ChargeAccountingTest, ResetClearsTimeNotCounters) {
  SimEnv env(CalibratedConfig());
  SemId sem = env.k().CreateSemaphore("S").value();
  env.k().CreateThread(Periodic("p", Milliseconds(10), [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(50));
  uint64_t acquires = env.k().stats().sem_acquires;
  ASSERT_GT(acquires, 0u);
  ASSERT_TRUE(env.k().stats().sem_path_time.is_positive());
  env.k().ResetChargeAccounting();
  EXPECT_TRUE(env.k().stats().sem_path_time.is_zero());
  EXPECT_TRUE(env.k().stats().total_charged().is_zero());
  EXPECT_EQ(env.k().stats().sem_acquires, acquires);  // counters preserved
}

TEST(RankPolicyTest, DeadlineMonotonicRanksByDeadline) {
  // Two equal-period threads: under DM the shorter relative deadline gets
  // the higher rank (and runs first); under RM creation order breaks the tie.
  auto run = [](FpRankPolicy policy) {
    KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
    config.fp_rank_policy = policy;
    SimEnv env(config);
    std::vector<char> order;
    ThreadParams loose;
    loose.name = "loose";
    loose.period = Milliseconds(10);
    loose.relative_deadline = Milliseconds(10);
    loose.body = [&order](ThreadApi api) -> ThreadBody {
      order.push_back('L');
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    };
    env.k().CreateThread(loose);
    ThreadParams tight;
    tight.name = "tight";
    tight.period = Milliseconds(10);
    tight.relative_deadline = Milliseconds(3);
    tight.body = [&order](ThreadApi api) -> ThreadBody {
      order.push_back('T');
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    };
    env.k().CreateThread(tight);
    env.StartAndRunFor(Milliseconds(5));
    return order;
  };
  std::vector<char> dm = run(FpRankPolicy::kDeadlineMonotonic);
  ASSERT_GE(dm.size(), 2u);
  EXPECT_EQ(dm[0], 'T');  // tight deadline first
  std::vector<char> rm = run(FpRankPolicy::kRateMonotonic);
  ASSERT_GE(rm.size(), 2u);
  EXPECT_EQ(rm[0], 'L');  // equal periods: creation order
}

TEST(RankPolicyTest, DmEqualsRmWhenDeadlinesEqualPeriods) {
  for (FpRankPolicy policy : {FpRankPolicy::kRateMonotonic, FpRankPolicy::kDeadlineMonotonic}) {
    KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
    config.fp_rank_policy = policy;
    SimEnv env(config);
    TaskSet set = Table2Workload();
    std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set);
    env.k().Start();
    for (int i = 1; i < set.size(); ++i) {
      EXPECT_GT(env.k().thread(ids[i]).base_rm_rank, env.k().thread(ids[i - 1]).base_rm_rank);
    }
  }
}

}  // namespace
}  // namespace emeralds
