// Condition-variable tests: wait/signal/broadcast, mutex re-acquisition,
// priority-ordered wakeup.

#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

TEST(CondvarTest, SignalWakesOneWaiter) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  bool flag = false;
  int64_t woke_us = -1;

  env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    while (!flag) {
      co_await api.Wait(cv, mutex);
    }
    woke_us = api.now().micros();
    co_await api.Release(mutex);
  }));
  env.k().CreateThread(Aperiodic("signaller", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(5));
    co_await api.Acquire(mutex);
    flag = true;
    co_await api.Signal(cv);
    co_await api.Release(mutex);
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(woke_us, 5000);
}

TEST(CondvarTest, WaitReleasesMutex) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  bool other_got_mutex = false;

  env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);  // must release the mutex while waiting
    co_await api.Release(mutex);
  }));
  env.k().CreateThread(Aperiodic("prober", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    Status status = co_await api.Acquire(mutex);
    other_got_mutex = status == Status::kOk;
    co_await api.Release(mutex);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_TRUE(other_got_mutex);
}

TEST(CondvarTest, WokenWaiterHoldsMutexAgain) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  bool checked = false;

  env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);
    // On resume we must own the mutex: release must succeed.
    Status status = co_await api.Release(mutex);
    checked = status == Status::kOk;
  }));
  env.k().CreateThread(Aperiodic("signaller", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Signal(cv);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_TRUE(checked);
}

TEST(CondvarTest, SignalWhenMutexHeldDefersWakeup) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  int64_t woke_us = -1;

  env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);
    woke_us = api.now().micros();
    co_await api.Release(mutex);
  }));
  // Signaller holds the mutex over the signal and for 3ms after.
  env.k().CreateThread(Aperiodic("signaller", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Acquire(mutex);
    co_await api.Signal(cv);
    co_await api.Compute(Milliseconds(3));  // waiter must not run yet
    co_await api.Release(mutex);
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(woke_us, 4000);  // only after the mutex was released
}

TEST(CondvarTest, BroadcastWakesAll) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  int woken = 0;
  for (int i = 0; i < 4; ++i) {
    env.k().CreateThread(Aperiodic("waiter", [&](ThreadApi api) -> ThreadBody {
      co_await api.Acquire(mutex);
      co_await api.Wait(cv, mutex);
      ++woken;
      co_await api.Release(mutex);
    }));
  }
  env.k().CreateThread(Aperiodic("b", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Broadcast(cv);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(woken, 4);
}

TEST(CondvarTest, SignalWithNoWaitersIsNoop) {
  SimEnv env(ZeroCostConfig());
  CondvarId cv = env.k().CreateCondvar("cv").value();
  Status status = Status::kInvalidArgument;
  env.k().CreateThread(Aperiodic("s", [&](ThreadApi api) -> ThreadBody {
    status = co_await api.Signal(cv);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kOk);
}

TEST(CondvarTest, HighestPriorityWaiterWokenFirst) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  std::vector<char> order;

  ThreadParams lo;
  lo.name = "lo";
  lo.period = Milliseconds(100);  // later deadline: lower priority
  lo.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);
    order.push_back('L');
    co_await api.Release(mutex);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(lo);
  ThreadParams hi;
  hi.name = "hi";
  hi.period = Milliseconds(50);
  hi.first_release = Microseconds(100);
  hi.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(mutex);
    co_await api.Wait(cv, mutex);
    order.push_back('H');
    co_await api.Release(mutex);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(hi);
  ThreadParams sig;
  sig.name = "sig";
  sig.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Signal(cv);
    co_await api.Sleep(Milliseconds(1));
    co_await api.Signal(cv);
  };
  env.k().CreateThread(sig);
  env.StartAndRunFor(Milliseconds(10));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'H');
  EXPECT_EQ(order[1], 'L');
}

TEST(CondvarTest, WaitWithoutMutexFails) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  CondvarId cv = env.k().CreateCondvar("cv").value();
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("w", [&](ThreadApi api) -> ThreadBody {
    status = co_await api.Wait(cv, mutex);  // does not hold the mutex
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kFailedPrecondition);
}

TEST(CondvarTest, BadHandlesRejected) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("m").value();
  Status wait_status = Status::kOk;
  Status signal_status = Status::kOk;
  env.k().CreateThread(Aperiodic("w", [&](ThreadApi api) -> ThreadBody {
    wait_status = co_await api.Wait(CondvarId(9), mutex);
    signal_status = co_await api.Signal(CondvarId(9));
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(wait_status, Status::kBadHandle);
  EXPECT_EQ(signal_status, Status::kBadHandle);
}

}  // namespace
}  // namespace emeralds
