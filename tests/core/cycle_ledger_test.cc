// Cycle-attribution ledger tests: the hard conservation invariant (bucket sum
// == elapsed virtual time, exact to the tick), the Table-1 pricing identity
// for every QueueKind x QueueOp the scheduler reports, per-task attribution
// (user == cpu_time exactly), and epoch rebasing across charge resets.

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

// A small workload that exercises every charging path: two contending
// periodic threads, a mailbox pair, and plenty of preemption.
void BuildLedgerWorkload(Kernel& kernel) {
  SemId lock = kernel.CreateSemaphore("lock", 1).value();
  MailboxId mbox = kernel.CreateMailbox("mbox", 2).value();

  ThreadParams fast;
  fast.name = "fast";
  fast.period = Milliseconds(2);
  fast.first_release = Milliseconds(1);
  fast.body = [lock](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Microseconds(120));
      co_await api.Acquire(lock);
      co_await api.Compute(Microseconds(80));
      co_await api.Release(lock);
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(fast);

  ThreadParams slow;
  slow.name = "slow";
  slow.period = Milliseconds(5);
  slow.body = [lock, mbox](ThreadApi api) -> ThreadBody {
    uint8_t payload[8] = {};
    for (;;) {
      co_await api.Acquire(lock);
      co_await api.Compute(Microseconds(900));
      co_await api.Release(lock);
      co_await api.TrySend(mbox, std::span<const uint8_t>(payload, sizeof(payload)));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(slow);

  ThreadParams drain;
  drain.name = "drain";
  drain.period = Milliseconds(4);
  drain.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t buf[8];
    for (;;) {
      co_await api.Recv(mbox, std::span<uint8_t>(buf, sizeof(buf)), Milliseconds(1));
      co_await api.Compute(Microseconds(150));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(drain);
}

// Sum of the three scheduler queue-op buckets recomputed from the operation
// counters and the Table 1 coefficients. The ledger must match this exactly:
// counts-to-time conversion happens in one place and nowhere else.
Duration ExpectedQueueOpTime(const Kernel& kernel, QueueOp op) {
  const KernelStats& stats = kernel.stats();
  Duration expected;
  for (int kind = 0; kind < kNumQueueKinds; ++kind) {
    uint64_t count = stats.queue_op_count[kind][static_cast<int>(op)];
    uint64_t units = stats.queue_op_units[kind][static_cast<int>(op)];
    const LinearCost& cost =
        kernel.cost_model().queue[kind][static_cast<int>(op)];
    expected += cost.fixed * static_cast<int64_t>(count) +
                cost.per_unit * static_cast<int64_t>(units);
  }
  return expected;
}

CycleBucket BucketFor(QueueOp op) { return CycleBucketForQueueOp(op); }

class CycleLedgerSchedulers : public ::testing::TestWithParam<int> {};

TEST_P(CycleLedgerSchedulers, ConservesAndPricesQueueOpsExactly) {
  SchedulerSpec spec;
  switch (GetParam()) {
    case 0: spec = SchedulerSpec::Edf(); break;
    case 1: spec = SchedulerSpec::Rm(); break;
    case 2: spec = SchedulerSpec::RmHeap(); break;
    default: spec = SchedulerSpec::Csd(3); break;
  }
  SimEnv env(CalibratedConfig(spec));
  BuildLedgerWorkload(env.k());
  env.StartAndRunFor(Milliseconds(200));

  const KernelStats& stats = env.k().stats();

  // Conservation: every tick between the epoch and now is in exactly one
  // bucket, and no clock advance bypassed the kernel's charging paths.
  CycleConservation conservation = CheckCycleConservation(stats, env.k().now());
  EXPECT_EQ(conservation.residual.nanos(), 0)
      << "elapsed " << conservation.elapsed.nanos() << " ns vs ledger "
      << conservation.ledger_total.nanos() << " ns";
  EXPECT_EQ(env.k().hardware().clock().ledger().at(CycleBucket::kUnattributed).nanos(), 0);

  // Exact integer identity per QueueOp: the scheduler buckets hold precisely
  // fixed * count + per_unit * units summed over the QueueKinds in play.
  for (QueueOp op : {QueueOp::kBlock, QueueOp::kUnblock, QueueOp::kSelect}) {
    EXPECT_EQ(stats.cycles.at(BucketFor(op)).nanos(), ExpectedQueueOpTime(env.k(), op).nanos())
        << "op " << static_cast<int>(op);
  }

  // The per-band split is a partition of the same time.
  for (QueueOp op : {QueueOp::kBlock, QueueOp::kUnblock, QueueOp::kSelect}) {
    Duration band_sum;
    for (int band = 0; band < kMaxStatBands; ++band) {
      band_sum += stats.sched_band_cycles[band][static_cast<int>(op)];
    }
    EXPECT_EQ(band_sum.nanos(), stats.cycles.at(BucketFor(op)).nanos());
  }

  // The workload actually exercised the scheduler: selects happened and were
  // priced (CalibratedConfig costs are non-zero).
  EXPECT_GT(stats.queue_op_count[0][static_cast<int>(QueueOp::kSelect)] +
                stats.queue_op_count[1][static_cast<int>(QueueOp::kSelect)] +
                stats.queue_op_count[2][static_cast<int>(QueueOp::kSelect)],
            0u);
  EXPECT_GT(stats.cycles.at(CycleBucket::kSchedSelect).nanos(), 0);

  // User time is the workload's compute, bucket-exact.
  EXPECT_EQ(stats.cycles.at(CycleBucket::kUser).nanos(), stats.compute_time.nanos());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, CycleLedgerSchedulers, ::testing::Values(0, 1, 2, 3));

TEST(CycleLedgerTest, PerTaskUserEqualsCpuTimeExactly) {
  SimEnv env(CalibratedConfig(SchedulerSpec::Csd(2)));
  BuildLedgerWorkload(env.k());
  env.StartAndRunFor(Milliseconds(100));
  Duration task_user_sum;
  for (size_t i = 0; i < env.k().thread_count(); ++i) {
    const Tcb& t = env.k().thread(ThreadId(static_cast<int>(i)));
    // A task's user bucket is exactly its own compute; everything else in its
    // ledger is carried kernel overhead.
    EXPECT_EQ(t.cycles.at(CycleBucket::kUser).nanos(), t.cpu_time.nanos()) << t.name;
    EXPECT_GE(t.cycles.total().nanos(), t.cpu_time.nanos()) << t.name;
    task_user_sum += t.cycles.at(CycleBucket::kUser);
  }
  EXPECT_EQ(task_user_sum.nanos(), env.k().stats().compute_time.nanos());
}

TEST(CycleLedgerTest, ChargeResetRebasesEpochAndStaysConserved) {
  SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
  BuildLedgerWorkload(env.k());
  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(40));

  env.k().ResetChargeAccounting();
  Instant epoch = env.k().stats().cycles_epoch;
  EXPECT_EQ(epoch, env.k().now());
  EXPECT_EQ(env.k().stats().cycle_total().nanos(), 0);

  env.k().RunUntil(Instant() + Milliseconds(90));
  CycleConservation conservation =
      CheckCycleConservation(env.k().stats(), env.k().now());
  EXPECT_EQ(conservation.elapsed.nanos(), (env.k().now() - epoch).nanos());
  EXPECT_GE(conservation.elapsed.nanos(), Milliseconds(49).nanos());
  EXPECT_EQ(conservation.residual.nanos(), 0);
  // The clock's cumulative ledger still conserves since boot, independent of
  // the windowed reset.
  EXPECT_EQ(env.k().hardware().clock().ledger().total().nanos(),
            (env.k().now() - Instant()).nanos());
}

TEST(CycleLedgerTest, ZeroCostModelChargesOnlyUserAndIdle) {
  SimEnv env(ZeroCostConfig());
  BuildLedgerWorkload(env.k());
  env.StartAndRunFor(Milliseconds(50));
  const KernelStats& stats = env.k().stats();
  CycleConservation conservation = CheckCycleConservation(stats, env.k().now());
  EXPECT_EQ(conservation.residual.nanos(), 0);
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    CycleBucket bucket = static_cast<CycleBucket>(b);
    if (bucket == CycleBucket::kUser || bucket == CycleBucket::kIdle) {
      continue;
    }
    EXPECT_EQ(stats.cycles.at(bucket).nanos(), 0) << CycleBucketToString(bucket);
  }
}

}  // namespace
}  // namespace emeralds
