// Configuration-matrix sweep: one canonical lock-sharing workload run under
// every (scheduler x semaphore-mode x cost-model) combination. Whatever the
// configuration, the application outcome must be correct: mutual exclusion
// holds, all jobs complete, deadlines are met, and PI state unwinds.

#include <tuple>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

struct MatrixCase {
  int scheduler;  // 0..4
  int sem_mode;   // 0..1
  int cost;       // 0..2
};

class ConfigMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConfigMatrixTest, CanonicalWorkloadCorrectEverywhere) {
  auto [sched_index, mode_index, cost_index] = GetParam();
  SchedulerSpec specs[5] = {SchedulerSpec::Edf(), SchedulerSpec::Rm(), SchedulerSpec::RmHeap(),
                            SchedulerSpec::Csd(2), SchedulerSpec::Csd(3)};
  SemMode modes[2] = {SemMode::kStandard, SemMode::kCse};
  CostModel costs[3] = {CostModel::Zero(), CostModel::MC68040_25MHz(),
                        CostModel::MC68332_16MHz()};

  KernelConfig config;
  config.scheduler = specs[sched_index];
  config.default_sem_mode = modes[mode_index];
  config.cost_model = costs[cost_index];
  config.debug_validate = true;
  config.trace_capacity = 0;
  SimEnv env(config);

  SemId lock = env.k().CreateSemaphore("object").value();
  int in_section = 0;
  int max_in_section = 0;
  uint64_t sections = 0;

  const int64_t periods_ms[5] = {10, 15, 25, 40, 80};
  int num_bands = env.k().scheduler().num_bands();
  for (int i = 0; i < 5; ++i) {
    ThreadParams params;
    params.name = "task";
    params.period = Milliseconds(periods_ms[i]);
    params.band = i < 2 ? 0 : num_bands - 1;
    Duration section = Microseconds(400 + 100 * i);
    params.body = [&, section](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(Microseconds(200));
        co_await api.Acquire(lock);
        ++in_section;
        max_in_section = std::max(max_in_section, in_section);
        co_await api.Compute(section);
        --in_section;
        ++sections;
        co_await api.Release(lock);
        co_await api.WaitNextPeriod(lock);
      }
    };
    ASSERT_TRUE(env.k().CreateThread(params).ok());
  }

  env.StartAndRunFor(Seconds(2));
  const KernelStats& stats = env.k().stats();
  // Expected job counts: 200 + 134 + 80 + 50 + 25 = 489 completions (the
  // last job of each task may still be in flight at the horizon).
  EXPECT_GE(stats.jobs_completed, 485u);
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_EQ(max_in_section, 1);  // mutual exclusion under every config
  EXPECT_EQ(sections, stats.jobs_completed);
  EXPECT_EQ(env.k().semaphore(lock).owner, nullptr);
  env.k().scheduler().Validate();
  // PI fully unwound on every thread.
  for (size_t i = 0; i < env.k().thread_count(); ++i) {
    const Tcb& t = env.k().thread(ThreadId(static_cast<int>(i)));
    EXPECT_EQ(t.held_head, nullptr);
    EXPECT_EQ(t.pi_swap_sem, nullptr);
    EXPECT_EQ(t.boosted_into_band, -1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigMatrixTest,
                         ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 2),
                                            ::testing::Range(0, 3)));

}  // namespace
}  // namespace emeralds
