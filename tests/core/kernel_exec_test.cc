// Kernel executive tests: thread lifecycle, periodic jobs, preemption,
// deadlines, sleep/yield, time accounting.

#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Periodic(const char* name, Duration period, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.period = period;
  params.body = std::move(body);
  return params;
}

TEST(KernelExecTest, PeriodicThreadRunsEachPeriod) {
  SimEnv env(ZeroCostConfig());
  std::vector<int64_t> release_times_us;
  auto id = env.k()
                .CreateThread(Periodic("p", Milliseconds(10),
                                       [&](ThreadApi api) -> ThreadBody {
                                         for (;;) {
                                           release_times_us.push_back(api.now().micros());
                                           co_await api.Compute(Milliseconds(2));
                                           co_await api.WaitNextPeriod();
                                         }
                                       }))
                .value();
  env.StartAndRunFor(Milliseconds(35));
  EXPECT_EQ(release_times_us, (std::vector<int64_t>{0, 10000, 20000, 30000}));
  EXPECT_EQ(env.k().thread(id).jobs_completed, 4u);  // 4th job done at t=32ms
  EXPECT_EQ(env.k().thread(id).deadline_misses, 0u);
}

TEST(KernelExecTest, FirstReleaseOffsetHonored) {
  SimEnv env(ZeroCostConfig());
  int64_t first_run_us = -1;
  ThreadParams params = Periodic("p", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    first_run_us = api.now().micros();
    co_await api.WaitNextPeriod();
  });
  params.first_release = Milliseconds(3);
  env.k().CreateThread(params);
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(first_run_us, 3000);
}

TEST(KernelExecTest, EdfPrefersEarlierDeadline) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  std::vector<char> order;
  env.k().CreateThread(Periodic("long", Milliseconds(50), [&](ThreadApi api) -> ThreadBody {
    order.push_back('L');
    co_await api.Compute(Milliseconds(1));
    co_await api.WaitNextPeriod();
  }));
  env.k().CreateThread(Periodic("short", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      order.push_back('S');
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(5));
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 'S');  // deadline 10ms beats 50ms
  EXPECT_EQ(order[1], 'L');
}

TEST(KernelExecTest, RmPrefersShorterPeriod) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Rm()));
  std::vector<char> order;
  env.k().CreateThread(Periodic("long", Milliseconds(50), [&](ThreadApi api) -> ThreadBody {
    order.push_back('L');
    co_await api.Compute(Milliseconds(1));
    co_await api.WaitNextPeriod();
  }));
  env.k().CreateThread(Periodic("short", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      order.push_back('S');
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(5));
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 'S');
}

TEST(KernelExecTest, HigherPriorityReleasePreemptsMidCompute) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  int64_t hi_ran_at_us = -1;
  int64_t lo_done_at_us = -1;
  ThreadParams hi = Periodic("hi", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    hi_ran_at_us = api.now().micros();
    co_await api.Compute(Milliseconds(1));
    co_await api.WaitNextPeriod();
  });
  hi.first_release = Milliseconds(2);
  env.k().CreateThread(hi);
  env.k().CreateThread(Periodic("lo", Milliseconds(100), [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(6));
    lo_done_at_us = api.now().micros();
    co_await api.WaitNextPeriod();
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(hi_ran_at_us, 2000);      // preempted lo at its release
  EXPECT_EQ(lo_done_at_us, 7000);     // 6ms of work + 1ms preemption
  EXPECT_GE(env.k().stats().context_switches, 3u);
}

TEST(KernelExecTest, DeadlineMissDetectedAtCompletion) {
  SimEnv env(ZeroCostConfig());
  auto id = env.k()
                .CreateThread(Periodic("over", Milliseconds(10),
                                       [&](ThreadApi api) -> ThreadBody {
                                         for (;;) {
                                           co_await api.Compute(Milliseconds(12));  // > period
                                           co_await api.WaitNextPeriod();
                                         }
                                       }))
                .value();
  env.StartAndRunFor(Milliseconds(30));
  EXPECT_GE(env.k().thread(id).deadline_misses, 1u);
  EXPECT_GE(env.k().stats().deadline_misses, 1u);
}

TEST(KernelExecTest, OverrunConsumesPendingReleaseWithoutBlocking) {
  SimEnv env(ZeroCostConfig());
  std::vector<int64_t> job_starts_us;
  env.k().CreateThread(Periodic("over", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (int i = 0; i < 3; ++i) {
      job_starts_us.push_back(api.now().micros());
      co_await api.Compute(Milliseconds(15));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(60));
  ASSERT_EQ(job_starts_us.size(), 3u);
  EXPECT_EQ(job_starts_us[0], 0);
  EXPECT_EQ(job_starts_us[1], 15000);  // continued immediately after overrun
  EXPECT_EQ(job_starts_us[2], 30000);
}

// Regression: a thread whose WaitNextPeriod call lands *after* its next
// release instant — because charged syscall time (not compute) carried the
// clock across the release boundary, so the release timer has not been
// dispatched yet — blocks, is immediately rewoken by the due timer, and is
// re-selected while still `current_`. The executive must restore kRunning
// on that no-switch path instead of asserting. Found by the torture harness
// (torture --seed=2 --ops=10000).
TEST(KernelExecTest, ReleaseDueDuringWaitPeriodSyscallDoesNotWedge) {
  SimEnv env(CalibratedConfig());
  SemId pace = env.k().CreateSemaphore("pace", 0).value();
  uint64_t jobs = 0;
  // Period 100us; each job computes 80us then issues charged syscalls
  // (releases of a counting semaphore) that push completion past the next
  // release grid point without any dispatch opportunity.
  env.k().CreateThread(Periodic("tight", Microseconds(100), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      ++jobs;
      co_await api.Compute(Microseconds(80));
      for (int i = 0; i < 15; ++i) {
        co_await api.Release(pace);
      }
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(20));
  // The run survives and keeps releasing jobs (overloaded, so misses are
  // expected — wedging or panicking is not).
  EXPECT_GT(jobs, 50u);
  EXPECT_GT(env.k().stats().jobs_completed, 50u);
}

// Companion regression for the multi-queue executive: the same rewake-while-
// still-current shape, but under CSD-2 with the tight thread in the fixed-
// priority band and a dynamic-band sibling. The rewoken thread re-enters its
// own (FP) queue while selection walks the bands from the top, so the
// no-switch restore path must put the thread back to kRunning even though the
// winning queue is not the one it was re-inserted into moments earlier.
TEST(KernelExecTest, ReleaseDueDuringWaitPeriodCsdMultiBandDoesNotWedge) {
  SimEnv env(CalibratedConfig(SchedulerSpec::Csd(2)));
  SemId pace = env.k().CreateSemaphore("pace", 0).value();
  uint64_t tight_jobs = 0;
  uint64_t dp_jobs = 0;
  ThreadParams tight =
      Periodic("tight-fp", Microseconds(100), [&](ThreadApi api) -> ThreadBody {
        for (;;) {
          ++tight_jobs;
          co_await api.Compute(Microseconds(80));
          for (int i = 0; i < 15; ++i) {
            co_await api.Release(pace);
          }
          co_await api.WaitNextPeriod();
        }
      });
  tight.band = -1;  // fixed-priority (lowest) band
  env.k().CreateThread(tight);
  ThreadParams dp = Periodic("dp", Milliseconds(5), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      ++dp_jobs;
      co_await api.Compute(Microseconds(200));
      co_await api.WaitNextPeriod();
    }
  });
  dp.band = 0;  // EDF band: preempts the tight FP thread every 5ms
  env.k().CreateThread(dp);
  env.StartAndRunFor(Milliseconds(20));
  // Overloaded but alive: both bands keep releasing jobs instead of wedging.
  EXPECT_GT(tight_jobs, 50u);
  EXPECT_GE(dp_jobs, 4u);
}

TEST(KernelExecTest, SleepWakesAtRequestedTime) {
  SimEnv env(ZeroCostConfig());
  int64_t woke_us = -1;
  ThreadParams params;
  params.name = "sleeper";
  params.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(7));
    woke_us = api.now().micros();
  };
  env.k().CreateThread(params);
  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(woke_us, 7000);
}

TEST(KernelExecTest, AperiodicThreadRunsAtStart) {
  SimEnv env(ZeroCostConfig());
  bool ran = false;
  ThreadParams params;
  params.name = "aperiodic";
  params.body = [&](ThreadApi api) -> ThreadBody {
    ran = true;
    co_await api.Compute(Milliseconds(1));
  };
  env.k().CreateThread(params);
  env.StartAndRunFor(Milliseconds(2));
  EXPECT_TRUE(ran);
}

TEST(KernelExecTest, ThreadExitLeavesOthersRunning) {
  SimEnv env(ZeroCostConfig());
  int counter = 0;
  ThreadParams once;
  once.name = "once";
  once.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(1));
  };
  auto once_id = env.k().CreateThread(once).value();
  env.k().CreateThread(Periodic("forever", Milliseconds(5), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      ++counter;
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(22));
  EXPECT_EQ(env.k().thread(once_id).state, ThreadState::kFinished);
  EXPECT_EQ(counter, 5);
}

TEST(KernelExecTest, YieldKeepsHighestPriorityRunning) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  int yields = 0;
  env.k().CreateThread(Periodic("y", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    co_await api.Yield();
    ++yields;
    co_await api.WaitNextPeriod();
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(yields, 1);
}

TEST(KernelExecTest, IdleTimeAccounted) {
  SimEnv env(ZeroCostConfig());
  env.k().CreateThread(Periodic("p", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(2));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(100));
  EXPECT_EQ(env.k().stats().compute_time.millis(), 20);
  EXPECT_EQ(env.k().stats().idle_time.millis(), 80);
}

TEST(KernelExecTest, ChargedTimeShowsUpOnClock) {
  SimEnv env(CalibratedConfig());
  env.k().CreateThread(Periodic("p", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(100));
  const KernelStats& stats = env.k().stats();
  Duration charged = stats.total_charged();
  EXPECT_TRUE(charged.is_positive());
  // Conservation: compute + idle + kernel charges == elapsed virtual time
  // (the clock may run slightly past the horizon when work lands exactly on
  // it, so compare against now(), not the horizon).
  EXPECT_EQ((stats.compute_time + stats.idle_time + charged).nanos(),
            (env.k().now() - Instant()).nanos());
}

TEST(KernelExecTest, RunUntilIsResumable) {
  SimEnv env(ZeroCostConfig());
  int jobs = 0;
  env.k().CreateThread(Periodic("p", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      ++jobs;
      co_await api.WaitNextPeriod();
    }
  }));
  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(15));
  int jobs_mid = jobs;
  env.k().RunUntil(Instant() + Milliseconds(45));
  EXPECT_EQ(jobs_mid, 2);
  EXPECT_EQ(jobs, 5);
}

TEST(KernelExecTest, RmAutoRankAssignsByPeriod) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Rm()));
  auto slow = env.k().CreateThread(Periodic("slow", Milliseconds(50),
                                            [](ThreadApi api) -> ThreadBody {
                                              co_await api.WaitNextPeriod();
                                            }));
  auto fast = env.k().CreateThread(Periodic("fast", Milliseconds(5),
                                            [](ThreadApi api) -> ThreadBody {
                                              co_await api.WaitNextPeriod();
                                            }));
  env.k().Start();
  EXPECT_GT(env.k().thread(slow.value()).base_rm_rank,
            env.k().thread(fast.value()).base_rm_rank);
}

TEST(KernelExecTest, CreateThreadValidatesArguments) {
  SimEnv env(ZeroCostConfig());
  ThreadParams no_body;
  no_body.name = "nobody";
  EXPECT_EQ(env.k().CreateThread(no_body).status(), Status::kInvalidArgument);

  ThreadParams bad_process;
  bad_process.name = "badproc";
  bad_process.process = ProcessId(99);
  bad_process.body = [](ThreadApi api) -> ThreadBody { co_return; };
  EXPECT_EQ(env.k().CreateThread(bad_process).status(), Status::kBadHandle);
}

TEST(KernelExecTest, ThreadPoolExhaustion) {
  KernelConfig config = ZeroCostConfig();
  config.max_threads = 2;
  SimEnv env(config);
  ThreadParams params;
  params.name = "t";
  params.body = [](ThreadApi api) -> ThreadBody { co_return; };
  EXPECT_TRUE(env.k().CreateThread(params).ok());
  EXPECT_TRUE(env.k().CreateThread(params).ok());
  EXPECT_EQ(env.k().CreateThread(params).status(), Status::kResourceExhausted);
}

TEST(KernelExecTest, TraceRecordsSwitchesAndJobs) {
  SimEnv env(ZeroCostConfig());
  env.k().CreateThread(Periodic("p", Milliseconds(10), [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  }));
  env.StartAndRunFor(Milliseconds(25));
  bool saw_release = false;
  bool saw_switch = false;
  bool saw_complete = false;
  TraceSink& trace = env.k().trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    switch (trace.at(i).type) {
      case TraceEventType::kJobRelease:
        saw_release = true;
        break;
      case TraceEventType::kContextSwitch:
        saw_switch = true;
        break;
      case TraceEventType::kJobComplete:
        saw_complete = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_release);
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(saw_complete);
}

}  // namespace
}  // namespace emeralds
