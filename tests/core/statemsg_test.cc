// State-message tests (Section 7, reconstructed): single-writer invariant,
// freshness, non-blocking reads, torn-read detection and retry under
// preemption, and the MinSlots sizing rule.

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

TEST(StateMessageTest, ReadReturnsLatestWrite) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 4, 3).value();
  uint32_t got = 0;
  uint64_t seq = 0;
  env.k().CreateThread(Aperiodic("rw", [&](ThreadApi api) -> ThreadBody {
    for (uint32_t v = 1; v <= 3; ++v) {
      co_await api.StateWrite(smsg, std::span<const uint8_t>(
                                        reinterpret_cast<const uint8_t*>(&v), sizeof(v)));
    }
    uint8_t buffer[4];
    StateReadResult result = co_await api.StateRead(smsg, buffer);
    EXPECT_EQ(result.status, Status::kOk);
    seq = result.sequence;
    std::memcpy(&got, buffer, 4);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(got, 3u);
  EXPECT_EQ(seq, 3u);
}

TEST(StateMessageTest, ReadBeforeAnyWriteFails) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 4, 3).value();
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("r", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[4];
    StateReadResult result = co_await api.StateRead(smsg, buffer);
    status = result.status;
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kWouldBlock);
}

TEST(StateMessageTest, SecondWriterRejected) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 4, 3).value();
  Status second_status = Status::kOk;
  uint32_t value = 7;
  auto bytes = std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), 4);
  env.k().CreateThread(Aperiodic("w1", [&, bytes](ThreadApi api) -> ThreadBody {
    co_await api.StateWrite(smsg, bytes);
  }));
  env.k().CreateThread(Aperiodic("w2", [&, bytes](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    second_status = co_await api.StateWrite(smsg, bytes);
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(second_status, Status::kPermissionDenied);
}

TEST(StateMessageTest, NeverBlocksReaders) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 8, 3).value();
  int reads = 0;
  uint64_t value = 1;
  env.k().CreateThread(Aperiodic("w", [&](ThreadApi api) -> ThreadBody {
    for (int i = 0; i < 100; ++i) {
      co_await api.StateWrite(
          smsg, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&value), 8));
      co_await api.Sleep(Microseconds(100));
    }
  }));
  for (int r = 0; r < 3; ++r) {
    env.k().CreateThread(Aperiodic("r", [&](ThreadApi api) -> ThreadBody {
      for (int i = 0; i < 50; ++i) {
        uint8_t buffer[8];
        StateReadResult result = co_await api.StateRead(smsg, buffer);
        if (result.status == Status::kOk) {
          ++reads;
        }
        co_await api.Sleep(Microseconds(200));
      }
    }));
  }
  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(reads, 150);
  EXPECT_EQ(env.k().state_message(smsg).writes, 100u);
}

// With the calibrated cost model, copies take time and a reader can be
// preempted mid-copy by the writer. With generous slots the snapshot is
// always consistent (monotone sequence, never torn).
TEST(StateMessageTest, SnapshotsConsistentUnderPreemption) {
  SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
  SmsgId smsg = env.k().CreateStateMessage("s", 64, 8).value();
  std::vector<uint64_t> sequences;
  bool torn = false;

  // Writer: high priority, period 1ms; payload = 16 copies of the sequence
  // number, so torn reads are detectable.
  ThreadParams writer;
  writer.name = "writer";
  writer.period = Milliseconds(1);
  writer.body = [&](ThreadApi api) -> ThreadBody {
    uint32_t v = 0;
    for (;;) {
      ++v;
      uint32_t payload[16];
      for (uint32_t& w : payload) {
        w = v;
      }
      co_await api.StateWrite(smsg, std::span<const uint8_t>(
                                        reinterpret_cast<const uint8_t*>(payload), 64));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(writer);
  // Reader: low priority (period 5ms), gets preempted by the writer.
  ThreadParams reader;
  reader.name = "reader";
  reader.period = Milliseconds(5);
  reader.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      uint8_t buffer[64];
      StateReadResult result = co_await api.StateRead(smsg, buffer);
      if (result.status == Status::kOk) {
        sequences.push_back(result.sequence);
        uint32_t payload[16];
        std::memcpy(payload, buffer, 64);
        for (int i = 1; i < 16; ++i) {
          if (payload[i] != payload[0]) {
            torn = true;
          }
        }
      }
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(reader);

  env.StartAndRunFor(Milliseconds(100));
  ASSERT_GT(sequences.size(), 10u);
  EXPECT_FALSE(torn);
  for (size_t i = 1; i < sequences.size(); ++i) {
    EXPECT_GE(sequences[i], sequences[i - 1]);  // freshness is monotone
  }
}

// A single-slot buffer with a fast writer forces the reader's validation to
// detect overwrites (retries observed), while an adequately sized buffer
// (MinSlots) yields retry-free reads.
TEST(StateMessageTest, SlotSizingControlsRetries) {
  // A 2 KB payload takes ~512 words * 0.4us ~= 205us to copy, so every read
  // spans at least one release of the 500us writer, which preempts mid-copy.
  constexpr size_t kBytes = 2048;
  auto run = [](int slots) -> std::pair<uint64_t, uint64_t> {
    SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
    SmsgId smsg = env.k().CreateStateMessage("s", kBytes, slots).value();
    ThreadParams writer;
    writer.name = "writer";
    writer.period = Microseconds(500);
    writer.body = [smsg](ThreadApi api) -> ThreadBody {
      std::vector<uint8_t> payload(kBytes, 0);
      for (;;) {
        co_await api.StateWrite(smsg, payload);
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(writer);
    ThreadParams reader;
    reader.name = "reader";
    reader.period = Milliseconds(2);
    // Phase-shift the reader off the writer's release grid so every read
    // window [t, t+205us) straddles a writer release.
    reader.first_release = Microseconds(300);
    reader.body = [smsg](ThreadApi api) -> ThreadBody {
      std::vector<uint8_t> buffer(kBytes);
      for (;;) {
        co_await api.StateRead(smsg, buffer);
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(reader);
    env.k().Start();
    env.k().RunUntil(Instant() + Milliseconds(50));
    return {env.k().stats().smsg_reads, env.k().stats().smsg_read_retries};
  };

  auto [reads_tight, retries_tight] = run(1);
  EXPECT_GT(retries_tight, 0u);  // single slot: the writer laps the reader

  // MinSlots(250us read, 500us writer period) = ceil(0.5) + 2 = 3.
  int slots = StateMessageBuffer::MinSlots(Microseconds(250), Microseconds(500));
  EXPECT_EQ(slots, 3);
  auto [reads_sized, retries_sized] = run(slots);
  EXPECT_GT(reads_sized, 0u);
  EXPECT_EQ(retries_sized, 0u);
}

// A single-slot buffer under a fast writer: the reader is lapped mid-copy and
// must retry, but a successful read never exposes a torn payload — every word
// of the snapshot matches, and the sequence is one the writer committed.
TEST(StateMessageTest, LappedReaderRetriesButIsNeverTorn) {
  constexpr size_t kBytes = 2048;
  constexpr size_t kWords = kBytes / sizeof(uint32_t);
  SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
  SmsgId smsg = env.k().CreateStateMessage("s", kBytes, 1).value();

  ThreadParams writer;
  writer.name = "writer";
  writer.period = Microseconds(500);
  writer.body = [smsg](ThreadApi api) -> ThreadBody {
    uint32_t v = 0;
    std::vector<uint32_t> payload(kWords);
    for (;;) {
      ++v;
      std::fill(payload.begin(), payload.end(), v);
      co_await api.StateWrite(
          smsg, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(payload.data()), kBytes));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(writer);

  int ok_reads = 0;
  int torn = 0;
  uint64_t retried_reads = 0;
  ThreadParams reader;
  reader.name = "reader";
  reader.period = Milliseconds(2);
  reader.first_release = Microseconds(300);
  reader.body = [&](ThreadApi api) -> ThreadBody {
    std::vector<uint8_t> buffer(kBytes);
    for (;;) {
      StateReadResult result = co_await api.StateRead(smsg, buffer);
      if (result.status == Status::kOk) {
        ++ok_reads;
        retried_reads += result.retries;
        uint32_t words[kWords];
        std::memcpy(words, buffer.data(), kBytes);
        for (size_t i = 1; i < kWords; ++i) {
          if (words[i] != words[0]) {
            ++torn;
            break;
          }
        }
        // The payload is the writer's sequence stamp, so a consistent
        // snapshot's content must equal its version.
        EXPECT_EQ(words[0], result.sequence);
      }
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(reader);

  env.StartAndRunFor(Milliseconds(50));
  EXPECT_GT(ok_reads, 0);
  EXPECT_GT(retried_reads, 0u);  // the single slot forces validation failures
  EXPECT_EQ(torn, 0);
  EXPECT_GT(env.k().stats().smsg_read_retries, 0u);
}

// A writer that recommits the single slot faster than the reader can ever
// finish a copy: every validation fails, and after the retry cap the read is
// reported as kBusy ("pathologically under-sized") instead of spinning.
TEST(StateMessageTest, PathologicallyUndersizedBufferReportsBusy) {
  constexpr size_t kBytes = 2048;
  SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
  SmsgId smsg = env.k().CreateStateMessage("s", kBytes, 1).value();

  // ~208us of copy every 400us: the idle gap between writer jobs (~180us) is
  // shorter than the reader's ~207us copy, so every read window straddles a
  // recommit of the single slot and every validation fails. (The period must
  // leave headroom — an overloaded writer skips releases and the occasional
  // long gap would let a read slip through.)
  ThreadParams writer;
  writer.name = "writer";
  writer.period = Microseconds(400);
  writer.body = [smsg](ThreadApi api) -> ThreadBody {
    std::vector<uint8_t> payload(kBytes, 0xab);
    for (;;) {
      co_await api.StateWrite(smsg, payload);
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(writer);

  std::vector<StateReadResult> results;
  ThreadParams reader;
  reader.name = "reader";
  reader.period = Milliseconds(20);
  reader.first_release = Milliseconds(1);  // after the writer's first commit
  reader.body = [&](ThreadApi api) -> ThreadBody {
    std::vector<uint8_t> buffer(kBytes);
    for (;;) {
      results.push_back(co_await api.StateRead(smsg, buffer));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(reader);

  env.StartAndRunFor(Milliseconds(40));
  ASSERT_GT(results.size(), 0u);
  for (const StateReadResult& r : results) {
    EXPECT_EQ(r.status, Status::kBusy);
    EXPECT_EQ(r.retries, 9u);  // the retry cap, then give up
  }
}

// MinSlots boundary: sizing from the reader's true worst-case read window
// (copy time plus preemption by unrelated tasks) gives retry-free reads;
// sizing from the bare copy time alone — ignoring that a mid-copy preemption
// stretches the window across extra writer commits — comes up short and the
// reader is lapped.
TEST(StateMessageTest, MinSlotsBoundaryWithPreemptionStretchedReads) {
  constexpr size_t kBytes = 2048;
  auto run = [](int slots) -> std::pair<uint64_t, uint64_t> {
    SimEnv env(CalibratedConfig(SchedulerSpec::Edf()));
    SmsgId smsg = env.k().CreateStateMessage("s", kBytes, slots).value();
    ThreadParams writer;
    writer.name = "writer";
    writer.period = Microseconds(500);
    writer.body = [smsg](ThreadApi api) -> ThreadBody {
      std::vector<uint8_t> payload(kBytes, 0x5a);
      for (;;) {
        co_await api.StateWrite(smsg, payload);
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(writer);
    // A middle-deadline hog that preempts the reader mid-copy and stretches
    // its read window well past the bare ~207us copy time.
    ThreadParams hog;
    hog.name = "hog";
    hog.period = Milliseconds(2);
    hog.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(Microseconds(800));
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(hog);
    // The reader's period is a multiple of the hog's, and its release is
    // placed just before a hog release: every copy starts, is immediately
    // preempted by the hog for ~1ms of wall time, and resumes — the same
    // stretched-window geometry on every read.
    ThreadParams reader;
    reader.name = "reader";
    reader.period = Milliseconds(8);
    reader.first_release = Microseconds(1900);
    reader.body = [smsg](ThreadApi api) -> ThreadBody {
      std::vector<uint8_t> buffer(kBytes);
      for (;;) {
        co_await api.StateRead(smsg, buffer);
        co_await api.WaitNextPeriod();
      }
    };
    env.k().CreateThread(reader);
    env.k().Start();
    env.k().RunUntil(Instant() + Milliseconds(80));
    return {env.k().stats().smsg_reads, env.k().stats().smsg_read_retries};
  };

  // Sized for the bare copy time only (~207us -> ceil + 2 = 3 slots): one
  // preemption-stretched read window spans enough writer commits to wrap the
  // ring, so the reader retries.
  int under = StateMessageBuffer::MinSlots(Microseconds(210), Microseconds(500));
  ASSERT_EQ(under, 3);
  auto [reads_under, retries_under] = run(under);
  EXPECT_GT(reads_under, 0u);
  EXPECT_GT(retries_under, 0u);

  // Sized for the true worst-case window (copy + hog + writer interference,
  // bounded here by 2.5ms): retry-free.
  int enough = StateMessageBuffer::MinSlots(Microseconds(2500), Microseconds(500));
  ASSERT_EQ(enough, 7);
  auto [reads_enough, retries_enough] = run(enough);
  EXPECT_GT(reads_enough, 0u);
  EXPECT_EQ(retries_enough, 0u);
}

TEST(StateMessageTest, MinSlotsFormula) {
  EXPECT_EQ(StateMessageBuffer::MinSlots(Microseconds(10), Milliseconds(1)), 3);
  EXPECT_EQ(StateMessageBuffer::MinSlots(Milliseconds(5), Milliseconds(1)), 7);
  EXPECT_EQ(StateMessageBuffer::MinSlots(Duration(), Milliseconds(1)), 2);
}

TEST(StateMessageTest, OversizedWriteRejected) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 4, 2).value();
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("w", [&](ThreadApi api) -> ThreadBody {
    uint8_t big[8] = {};
    status = co_await api.StateWrite(smsg, big);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kInvalidArgument);
}

TEST(StateMessageTest, ShortWriteZeroFills) {
  SimEnv env(ZeroCostConfig());
  SmsgId smsg = env.k().CreateStateMessage("s", 8, 2).value();
  uint8_t out[8];
  env.k().CreateThread(Aperiodic("rw", [&](ThreadApi api) -> ThreadBody {
    uint8_t partial[3] = {0xaa, 0xbb, 0xcc};
    co_await api.StateWrite(smsg, partial);
    co_await api.StateRead(smsg, out);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(out[0], 0xaa);
  EXPECT_EQ(out[2], 0xcc);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out[7], 0);
}

}  // namespace
}  // namespace emeralds
