// Causal-token propagation tests: producing operations stamp tokens, consumes
// pair with their emits (same origin, hop + 1, explicit actor), counters
// reconcile with the trace, and declared chains resolve and complete with the
// telescoping latency identity intact.

#include <gtest/gtest.h>

#include <vector>

#include "src/obs/chains.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

std::vector<TraceEvent> ChainEventsAt(const TraceSink& trace, TraceEventType type,
                                      int32_t endpoint) {
  std::vector<TraceEvent> out;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.at(i);
    if (e.type == type && e.arg1 == endpoint) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(ChainTokenTest, HopPackRoundTrips) {
  // ISR context packs actor -1; thread ids and hop counts survive the packing.
  EXPECT_EQ(ChainHopOf(ChainHopPack(0, -1)), 0);
  EXPECT_EQ(ChainActorOf(ChainHopPack(0, -1)), -1);
  EXPECT_EQ(ChainHopOf(ChainHopPack(7, 3)), 7);
  EXPECT_EQ(ChainActorOf(ChainHopPack(7, 3)), 3);
  EXPECT_EQ(ChainHopOf(ChainHopPack(kMaxChainHops, 0)), kMaxChainHops);
  EXPECT_EQ(ChainEndpointKindOf(ChainEndpointPack(ChainEndpointKind::kMailbox, 5)),
            ChainEndpointKind::kMailbox);
  EXPECT_EQ(ChainEndpointChannel(ChainEndpointPack(ChainEndpointKind::kMailbox, 5)), 5);
}

TEST(ChainTokenTest, MailboxHandoffPairsEmitWithConsume) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("chan", 4).value();

  ThreadParams producer;
  producer.name = "producer";
  producer.period = Milliseconds(5);
  producer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t payload[4] = {};
    for (;;) {
      co_await api.Compute(Microseconds(50));
      co_await api.Send(mbox, std::span<const uint8_t>(payload, sizeof(payload)));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(producer);

  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t buf[4];
    for (;;) {
      co_await api.Recv(mbox, std::span<uint8_t>(buf, sizeof(buf)));
      co_await api.Compute(Microseconds(20));
    }
  };
  ThreadId consumer_id = env.k().CreateThread(consumer).value();

  env.StartAndRunFor(Milliseconds(50));

  int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kMailbox, mbox.value);
  std::vector<TraceEvent> emits =
      ChainEventsAt(env.k().trace(), TraceEventType::kChainEmit, endpoint);
  std::vector<TraceEvent> consumes =
      ChainEventsAt(env.k().trace(), TraceEventType::kChainConsume, endpoint);
  ASSERT_GT(emits.size(), 0u);
  ASSERT_GT(consumes.size(), 0u);

  // Every consume at this endpoint names the receiving thread explicitly and
  // matches an earlier emit with the same origin one hop back.
  for (const TraceEvent& c : consumes) {
    EXPECT_EQ(ChainActorOf(c.arg2), consumer_id.value);
    EXPECT_GE(ChainHopOf(c.arg2), 1);
    bool matched = false;
    for (const TraceEvent& e : emits) {
      if (e.arg0 == c.arg0 && ChainHopOf(e.arg2) + 1 == ChainHopOf(c.arg2) &&
          !(c.time < e.time)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "consume of origin " << c.arg0 << " at hop "
                         << ChainHopOf(c.arg2) << " has no matching emit";
  }
}

TEST(ChainTokenTest, CountersReconcileWithTrace) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("chan", 4).value();

  ThreadParams producer;
  producer.name = "producer";
  producer.period = Milliseconds(2);
  producer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t payload[4] = {};
    for (;;) {
      co_await api.TrySend(mbox, std::span<const uint8_t>(payload, sizeof(payload)));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(producer);

  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t buf[4];
    for (;;) {
      co_await api.Recv(mbox, std::span<uint8_t>(buf, sizeof(buf)));
    }
  };
  env.k().CreateThread(consumer);

  env.StartAndRunFor(Milliseconds(40));

  const TraceSink& trace = env.k().trace();
  ASSERT_EQ(trace.dropped(), 0u) << "ring too small for this workload";
  uint64_t emits = 0;
  uint64_t consumes = 0;
  uint64_t origins = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.at(i);
    if (e.type == TraceEventType::kChainEmit) {
      ++emits;
      if (ChainHopOf(e.arg2) == 0) {
        ++origins;
      }
    } else if (e.type == TraceEventType::kChainConsume) {
      ++consumes;
    }
  }
  EXPECT_EQ(env.k().stats().chain_emits, emits);
  EXPECT_EQ(env.k().stats().chain_consumes, consumes);
  EXPECT_EQ(env.k().stats().chain_origins, origins);
  EXPECT_GT(origins, 0u);
}

TEST(ChainTokenTest, AnalyzerFindsNoViolationsOnCleanRun) {
  KernelConfig config = ZeroCostConfig();
  ChainSpec pipe;
  pipe.name = "pipe";
  pipe.deadline = Milliseconds(50);
  pipe.stages.push_back(ChainStageSpec{"release:producer", "producer"});
  pipe.stages.push_back(ChainStageSpec{"mbox:chan", "consumer"});
  config.chains.push_back(pipe);
  // A spec naming a nonexistent object must report unresolved, not fail boot.
  ChainSpec ghost;
  ghost.name = "ghost";
  ghost.stages.push_back(ChainStageSpec{"mbox:no_such_mailbox", ""});
  config.chains.push_back(ghost);

  SimEnv env(config);
  MailboxId mbox = env.k().CreateMailbox("chan", 4).value();

  ThreadParams producer;
  producer.name = "producer";
  producer.period = Milliseconds(5);
  producer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t payload[4] = {};
    for (;;) {
      co_await api.Compute(Microseconds(100));
      co_await api.Send(mbox, std::span<const uint8_t>(payload, sizeof(payload)));
      co_await api.WaitNextPeriod();
    }
  };
  env.k().CreateThread(producer);

  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t buf[4];
    for (;;) {
      co_await api.Recv(mbox, std::span<uint8_t>(buf, sizeof(buf)));
      co_await api.Compute(Microseconds(30));
    }
  };
  env.k().CreateThread(consumer);

  env.StartAndRunFor(Milliseconds(100));

  ASSERT_EQ(env.k().resolved_chains().size(), 2u);
  EXPECT_TRUE(env.k().resolved_chains()[0].resolved);
  EXPECT_FALSE(env.k().resolved_chains()[1].resolved);

  obs::ChainAnalysis analysis =
      obs::AnalyzeChains(env.k().trace(), env.k().resolved_chains());
  EXPECT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis.complete_window);
  EXPECT_EQ(analysis.orphan_hops, 0u);
  EXPECT_GT(analysis.origins_minted, 0u);

  ASSERT_EQ(analysis.chains.size(), 2u);
  const obs::ChainReport& report = analysis.chains[0];
  EXPECT_TRUE(report.resolved);
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.overruns, 0u);
  // Telescoping identity: summed e2e latency equals the per-hop queue + exec
  // totals exactly.
  Duration hop_total;
  for (const obs::ChainHopStats& hop : report.hops) {
    hop_total += hop.queue.total() + hop.exec.total();
  }
  EXPECT_EQ(hop_total.nanos(), report.e2e.total().nanos());

  const obs::ChainReport& ghost_report = analysis.chains[1];
  EXPECT_FALSE(ghost_report.resolved);
  EXPECT_EQ(ghost_report.completed, 0u);
}

TEST(ChainTokenTest, CountingSemHandoffPropagatesTimerToken) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("ticker", tick).value();

  ThreadParams pacer;
  pacer.name = "pacer";
  pacer.body = [tick](ThreadApi api) -> ThreadBody {
    for (;;) {
      Status s = co_await api.Acquire(tick);
      if (s != Status::kOk) {
        break;
      }
      co_await api.Compute(Microseconds(10));
    }
  };
  ThreadId pacer_id = env.k().CreateThread(pacer).value();

  env.k().Start();
  env.k().StartTimer(timer, Milliseconds(1), Milliseconds(4));
  env.k().RunUntil(Instant() + Milliseconds(30));

  int32_t endpoint = ChainEndpointPack(ChainEndpointKind::kSem, tick.value);
  std::vector<TraceEvent> emits =
      ChainEventsAt(env.k().trace(), TraceEventType::kChainEmit, endpoint);
  std::vector<TraceEvent> consumes =
      ChainEventsAt(env.k().trace(), TraceEventType::kChainConsume, endpoint);
  ASSERT_GT(emits.size(), 0u);
  ASSERT_GT(consumes.size(), 0u);
  // The producing side runs in ISR context (no acting thread); the consuming
  // side is the pacer.
  EXPECT_EQ(ChainActorOf(emits[0].arg2), -1);
  for (const TraceEvent& c : consumes) {
    EXPECT_EQ(ChainActorOf(c.arg2), pacer_id.value);
  }
}

}  // namespace
}  // namespace emeralds
