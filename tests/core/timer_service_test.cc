// Application timer service tests (Figure 1's "Timers / Clock services"):
// timers signalling counting semaphores, pacing threads, overrun detection;
// plus per-thread response-time accounting.

#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

TEST(TimerServiceTest, PeriodicTimerPacesThread) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();  // counting, empty
  TimerId timer = env.k().CreateTimer("pace", tick).value();
  std::vector<int64_t> wake_times_us;

  ThreadParams worker;
  worker.name = "worker";
  worker.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(tick);
      wake_times_us.push_back(api.now().micros());
    }
  };
  env.k().CreateThread(worker);
  ASSERT_EQ(env.k().StartTimer(timer, Milliseconds(3), Milliseconds(10)), Status::kOk);
  env.StartAndRunFor(Milliseconds(35));
  EXPECT_EQ(wake_times_us, (std::vector<int64_t>{3000, 13000, 23000, 33000}));
  EXPECT_EQ(env.k().user_timer(timer).fires, 4u);
  EXPECT_EQ(env.k().user_timer(timer).overruns, 0u);
}

TEST(TimerServiceTest, OneShotFiresOnce) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("once", tick).value();
  env.k().StartTimer(timer, Milliseconds(5));  // no period
  ThreadParams worker;
  worker.name = "worker";
  int wakes = 0;
  worker.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(tick);
    ++wakes;
  };
  env.k().CreateThread(worker);
  env.StartAndRunFor(Milliseconds(50));
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(env.k().user_timer(timer).fires, 1u);
}

TEST(TimerServiceTest, StopCancelsFutureFires) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("t", tick).value();
  env.k().StartTimer(timer, Milliseconds(5), Milliseconds(5));
  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(12));  // fires at 5, 10
  ASSERT_EQ(env.k().StopTimer(timer), Status::kOk);
  env.k().RunUntil(Instant() + Milliseconds(50));
  EXPECT_EQ(env.k().user_timer(timer).fires, 2u);
}

TEST(TimerServiceTest, UnconsumedSignalsCountAsOverruns) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("t", tick).value();
  env.k().StartTimer(timer, Milliseconds(1), Milliseconds(1));
  // Nobody acquires the semaphore: every fire after the first finds the
  // previous signal unconsumed.
  env.StartAndRunFor(Milliseconds(10) + Microseconds(500));
  EXPECT_EQ(env.k().user_timer(timer).fires, 10u);
  EXPECT_EQ(env.k().user_timer(timer).overruns, 9u);
  EXPECT_EQ(env.k().semaphore(tick).count, 10);
}

TEST(TimerServiceTest, SignalsAccumulateAndDrain) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("t", tick).value();
  env.k().StartTimer(timer, Milliseconds(1), Milliseconds(1));
  int drained = 0;
  ThreadParams worker;
  worker.name = "late-worker";
  worker.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(5) + Microseconds(500));  // 5 fires queue up
    for (int i = 0; i < 5; ++i) {
      co_await api.Acquire(tick);
      ++drained;
    }
  };
  env.k().CreateThread(worker);
  env.StartAndRunFor(Milliseconds(6));
  EXPECT_EQ(drained, 5);
}

TEST(TimerServiceTest, BinaryTargetRejected) {
  SimEnv env(ZeroCostConfig());
  SemId mutex = env.k().CreateSemaphore("mutex", 1).value();  // binary
  EXPECT_EQ(env.k().CreateTimer("t", mutex).status(), Status::kInvalidArgument);
}

TEST(TimerServiceTest, BadHandlesRejected) {
  SimEnv env(ZeroCostConfig());
  EXPECT_EQ(env.k().CreateTimer("t", SemId(42)).status(), Status::kBadHandle);
  EXPECT_EQ(env.k().StartTimer(TimerId(5), Milliseconds(1)), Status::kBadHandle);
  EXPECT_EQ(env.k().StopTimer(TimerId(5)), Status::kBadHandle);
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("t", tick).value();
  EXPECT_EQ(env.k().StartTimer(timer, -Milliseconds(1)), Status::kInvalidArgument);
}

TEST(TimerServiceTest, RestartReprograms) {
  SimEnv env(ZeroCostConfig());
  SemId tick = env.k().CreateSemaphore("tick", 0).value();
  TimerId timer = env.k().CreateTimer("t", tick).value();
  env.k().StartTimer(timer, Milliseconds(20));
  env.k().Start();
  env.k().RunUntil(Instant() + Milliseconds(5));
  env.k().StartTimer(timer, Milliseconds(2));  // reprogram earlier
  env.k().RunUntil(Instant() + Milliseconds(10));
  EXPECT_EQ(env.k().user_timer(timer).fires, 1u);
  env.k().RunUntil(Instant() + Milliseconds(50));
  EXPECT_EQ(env.k().user_timer(timer).fires, 1u);  // original 20ms shot gone
}

TEST(ResponseStatsTest, TracksWorstAndTotalResponse) {
  SimEnv env(ZeroCostConfig());
  // Two jobs: the second is delayed 3ms by a higher-priority interloper.
  ThreadParams victim;
  victim.name = "victim";
  victim.period = Milliseconds(10);
  victim.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  };
  ThreadId victim_id = env.k().CreateThread(victim).value();
  ThreadParams hog;
  hog.name = "hog";
  hog.period = Milliseconds(100);
  hog.first_release = Milliseconds(10);
  hog.relative_deadline = Milliseconds(5);  // higher EDF priority at t=10
  hog.body = [](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(3));
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(hog);
  env.StartAndRunFor(Milliseconds(25));
  const Tcb& t = env.k().thread(victim_id);
  ASSERT_EQ(t.jobs_completed, 3u);
  EXPECT_EQ(t.max_response.millis(), 4);          // job 2: 3ms blocked + 1ms
  EXPECT_EQ(t.total_response.millis(), 1 + 4 + 1);
}

}  // namespace
}  // namespace emeralds
