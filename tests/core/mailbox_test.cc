// Mailbox IPC tests: send/receive, blocking semantics on both ends,
// timeouts, priority-ordered waiters, and the CSE hint on receive.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

ThreadParams Aperiodic(const char* name, ThreadBodyFactory body) {
  ThreadParams params;
  params.name = name;
  params.body = std::move(body);
  return params;
}

std::span<const uint8_t> Bytes(const char* s) {
  return std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(s), std::strlen(s));
}

TEST(MailboxTest, SendThenReceive) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 4).value();
  char received[16] = {};
  size_t received_len = 0;

  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Send(mbox, Bytes("hello"));
  }));
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[16];
    RecvResult result = co_await api.Recv(mbox, buffer);
    received_len = result.length;
    std::memcpy(received, buffer, result.length);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(received_len, 5u);
  EXPECT_STREQ(received, "hello");
}

TEST(MailboxTest, ReceiverBlocksUntilMessage) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 4).value();
  int64_t received_at_us = -1;

  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[8];
    co_await api.Recv(mbox, buffer);
    received_at_us = api.now().micros();
  }));
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(3));
    co_await api.Send(mbox, Bytes("x"));
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(received_at_us, 3000);
}

TEST(MailboxTest, MessagesDeliveredInFifoOrder) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 8).value();
  std::vector<uint8_t> received;

  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    for (uint8_t i = 1; i <= 4; ++i) {
      co_await api.Send(mbox, std::span<const uint8_t>(&i, 1));
    }
  }));
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    for (int i = 0; i < 4; ++i) {
      uint8_t b = 0;
      co_await api.Recv(mbox, std::span<uint8_t>(&b, 1));
      received.push_back(b);
    }
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(received, (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(MailboxTest, SenderBlocksWhenFull) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  int64_t third_send_done_us = -1;

  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Send(mbox, Bytes("a"));
    co_await api.Send(mbox, Bytes("b"));
    co_await api.Send(mbox, Bytes("c"));  // blocks: queue depth 2
    third_send_done_us = api.now().micros();
  }));
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(5));
    uint8_t b;
    co_await api.Recv(mbox, std::span<uint8_t>(&b, 1));
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(third_send_done_us, 5000);
  EXPECT_GE(env.k().mailbox(mbox).send_blocks, 1u);
}

TEST(MailboxTest, TrySendReturnsWouldBlock) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 1).value();
  Status second = Status::kOk;
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.TrySend(mbox, Bytes("a"));
    second = co_await api.TrySend(mbox, Bytes("b"));
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(second, Status::kWouldBlock);
}

TEST(MailboxTest, RecvTimeoutExpires) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kOk;
  int64_t timed_out_at_us = -1;
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[4];
    RecvResult result = co_await api.Recv(mbox, buffer, Milliseconds(4));
    status = result.status;
    timed_out_at_us = api.now().micros();
  }));
  env.StartAndRunFor(Milliseconds(10));
  EXPECT_EQ(status, Status::kTimedOut);
  EXPECT_EQ(timed_out_at_us, 4000);
  EXPECT_EQ(env.k().mailbox(mbox).recv_timeouts, 1u);
}

TEST(MailboxTest, RecvNoWaitReturnsImmediately) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[4];
    RecvResult result = co_await api.Recv(mbox, buffer, kNoWait);
    status = result.status;
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kWouldBlock);
}

TEST(MailboxTest, TimeoutCancelledByDelivery) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kTimedOut;
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    uint8_t buffer[4];
    RecvResult result = co_await api.Recv(mbox, buffer, Milliseconds(10));
    status = result.status;
    // Sleep past the original timeout: a stale timer must not fire.
    co_await api.Sleep(Milliseconds(20));
  }));
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(2));
    co_await api.Send(mbox, Bytes("x"));
  }));
  env.StartAndRunFor(Milliseconds(30));
  EXPECT_EQ(status, Status::kOk);
}

TEST(MailboxTest, HighestPriorityReceiverServedFirst) {
  SimEnv env(ZeroCostConfig(SchedulerSpec::Edf()));
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  std::vector<char> order;

  ThreadParams lo;
  lo.name = "lo";
  lo.period = Milliseconds(100);
  lo.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b[4];
    co_await api.Recv(mbox, b);
    order.push_back('L');
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(lo);
  ThreadParams hi;
  hi.name = "hi";
  hi.period = Milliseconds(20);
  hi.first_release = Microseconds(100);
  hi.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b[4];
    co_await api.Recv(mbox, b);
    order.push_back('H');
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(hi);
  ThreadParams sender;
  sender.name = "sender";
  sender.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Send(mbox, Bytes("1"));
    co_await api.Send(mbox, Bytes("2"));
  };
  env.k().CreateThread(sender);
  env.StartAndRunFor(Milliseconds(10));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'H');
}

TEST(MailboxTest, OversizedMessageRejected) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kOk;
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    uint8_t big[kMaxMessageBytes + 1] = {};
    status = co_await api.Send(mbox, big);
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kInvalidArgument);
}

TEST(MailboxTest, ShortReceiverBufferTruncates) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kOk;
  size_t got = 0;
  char small[5] = {};
  env.k().CreateThread(Aperiodic("both", [&](ThreadApi api) -> ThreadBody {
    co_await api.Send(mbox, Bytes("longmessage"));
    RecvResult result = co_await api.Recv(
        mbox, std::span<uint8_t>(reinterpret_cast<uint8_t*>(small), 4));
    status = result.status;
    got = result.length;
  }));
  env.StartAndRunFor(Milliseconds(1));
  // The prefix that fits is delivered, but the cut is reported, not silent.
  EXPECT_EQ(status, Status::kTruncated);
  EXPECT_EQ(got, 4u);
  EXPECT_STREQ(small, "long");
  EXPECT_EQ(env.k().stats().mailbox_truncations, 1u);
}

TEST(MailboxTest, ShortBufferTruncatesOnDirectDelivery) {
  // Same bug's second arm: the blocked-receiver path (DeliverToWaiter) used
  // to report kOk for a cut payload too.
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kOk;
  size_t got = 0;
  char small[5] = {};
  env.k().CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
    RecvResult result = co_await api.Recv(
        mbox, std::span<uint8_t>(reinterpret_cast<uint8_t*>(small), 4));
    status = result.status;
    got = result.length;
  }));
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Send(mbox, Bytes("longmessage"));
  }));
  env.StartAndRunFor(Milliseconds(5));
  EXPECT_EQ(status, Status::kTruncated);
  EXPECT_EQ(got, 4u);
  EXPECT_STREQ(small, "long");
  EXPECT_EQ(env.k().stats().mailbox_truncations, 1u);
}

TEST(MailboxTest, ExactFitBufferIsNotTruncation) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status status = Status::kTruncated;
  env.k().CreateThread(Aperiodic("both", [&](ThreadApi api) -> ThreadBody {
    co_await api.Send(mbox, Bytes("1234"));
    uint8_t buffer[4];
    RecvResult result = co_await api.Recv(mbox, buffer);
    status = result.status;
  }));
  env.StartAndRunFor(Milliseconds(1));
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(env.k().stats().mailbox_truncations, 0u);
}

TEST(MailboxTest, TimeoutVsDeliverySameInstant) {
  // The receive timeout and a send land on the same instant. The timer ISR
  // runs before any thread resumes, so the receive must time out, the
  // message must be queued (not lost, not delivered into the dead wait), and
  // the TCB must not keep a stale wait record.
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  Status first = Status::kOk;
  Status second = Status::kTimedOut;
  size_t second_len = 0;
  ThreadId receiver =
      env.k()
          .CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
            uint8_t buffer[8];
            RecvResult r1 = co_await api.Recv(mbox, buffer, Milliseconds(2));
            first = r1.status;
            RecvResult r2 = co_await api.Recv(mbox, buffer, Milliseconds(10));
            second = r2.status;
            second_len = r2.length;
          }))
          .value();
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(2));
    co_await api.Send(mbox, Bytes("x"));
  }));
  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(first, Status::kTimedOut);
  EXPECT_EQ(second, Status::kOk);
  EXPECT_EQ(second_len, 1u);
  EXPECT_EQ(env.k().mailbox(mbox).recv_timeouts, 1u);
  EXPECT_EQ(env.k().mailbox(mbox).receives, 1u);
  const Tcb& tcb = env.k().thread(receiver);
  EXPECT_FALSE(tcb.waiting_mailbox.valid());
  EXPECT_TRUE(tcb.recv_buffer.empty());
}

TEST(MailboxTest, DeliveryClearsWaitRecord) {
  // After a successful blocked receive the TCB's wait fields are reset in the
  // same place the timeout path resets them.
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  ThreadId receiver =
      env.k()
          .CreateThread(Aperiodic("receiver", [&](ThreadApi api) -> ThreadBody {
            uint8_t buffer[8];
            co_await api.Recv(mbox, buffer, Milliseconds(10));
            co_await api.Sleep(Milliseconds(20));
          }))
          .value();
  env.k().CreateThread(Aperiodic("sender", [&](ThreadApi api) -> ThreadBody {
    co_await api.Sleep(Milliseconds(1));
    co_await api.Send(mbox, Bytes("x"));
  }));
  env.StartAndRunFor(Milliseconds(5));
  const Tcb& tcb = env.k().thread(receiver);
  EXPECT_FALSE(tcb.waiting_mailbox.valid());
  EXPECT_TRUE(tcb.recv_buffer.empty());
}

// A blocking receive followed by a semaphore acquire participates in the CSE
// scheme ("all blocking calls take an extra parameter").
TEST(MailboxTest, RecvCarriesCseHint) {
  KernelConfig config = ZeroCostConfig();
  config.default_sem_mode = SemMode::kCse;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S").value();
  MailboxId mbox = env.k().CreateMailbox("m", 2).value();
  int64_t section_at_us = -1;

  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.period = Milliseconds(100);
  consumer.body = [&](ThreadApi api) -> ThreadBody {
    uint8_t b[4];
    co_await api.Recv(mbox, b, Duration(), sem);  // instrumented hint
    co_await api.Acquire(sem);
    section_at_us = api.now().micros();
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(consumer);
  ThreadParams producer;
  producer.name = "producer";
  producer.period = Milliseconds(100);
  producer.first_release = Milliseconds(1);
  producer.body = [&](ThreadApi api) -> ThreadBody {
    co_await api.Acquire(sem);
    co_await api.Send(mbox, Bytes("go"));  // wakes consumer while S is held
    co_await api.Compute(Milliseconds(2));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  };
  env.k().CreateThread(producer);

  env.StartAndRunFor(Milliseconds(10));
  // The consumer's wake at t=1 was converted to early PI; it entered the
  // section right at the producer's release (t=3).
  EXPECT_EQ(section_at_us, 3000);
  EXPECT_EQ(env.k().stats().cse_early_pi, 1u);
  EXPECT_EQ(env.k().stats().cse_switches_saved, 1u);
}

}  // namespace
}  // namespace emeralds
