// Unit tests for the three scheduler queue structures (Table 1) and their
// reported operation counts.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/band.h"

namespace emeralds {
namespace {

// Builds n tasks with ranks 0..n-1 and deadlines 10ms, 20ms, ... .
std::vector<std::unique_ptr<Tcb>> MakeTasks(int n) {
  std::vector<std::unique_ptr<Tcb>> tasks;
  for (int i = 0; i < n; ++i) {
    auto t = std::make_unique<Tcb>();
    t->id = ThreadId(i);
    t->base_rm_rank = i;
    t->effective_rm_rank = i;
    t->effective_deadline = Instant() + Milliseconds(10 * (i + 1));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

// --- EdfBand ---

TEST(EdfBandTest, SelectPicksEarliestDeadlineReady) {
  EdfBand band(0);
  auto tasks = MakeTasks(4);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[2], charges);
  band.Unblock(*tasks[3], charges);
  int units = 0;
  Tcb* selected = band.SelectReady(&units);
  EXPECT_EQ(selected, tasks[2].get());
  EXPECT_EQ(units, 4);  // parses the whole list: O(n)
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(EdfBandTest, BlockUnblockAreConstantTime) {
  EdfBand band(0);
  auto tasks = MakeTasks(10);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[5], charges);
  band.Block(*tasks[5], charges);
  ASSERT_EQ(charges.size(), 2u);
  EXPECT_EQ(charges[0].units, 1);  // "changing one entry in the TCB"
  EXPECT_EQ(charges[1].units, 1);
  EXPECT_EQ(charges[0].op, QueueOp::kUnblock);
  EXPECT_EQ(charges[1].op, QueueOp::kBlock);
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(EdfBandTest, NoReadyYieldsNull) {
  EdfBand band(0);
  auto tasks = MakeTasks(3);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  EXPECT_FALSE(band.HasReady());
  int units = -1;
  EXPECT_EQ(band.SelectReady(&units), nullptr);
  EXPECT_EQ(units, 0);  // skipped without parsing
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(EdfBandTest, DeadlineTieBreaksByRank) {
  EdfBand band(0);
  auto tasks = MakeTasks(2);
  tasks[0]->effective_deadline = Instant() + Milliseconds(5);
  tasks[1]->effective_deadline = Instant() + Milliseconds(5);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[1], charges);
  band.Unblock(*tasks[0], charges);
  int units = 0;
  EXPECT_EQ(band.SelectReady(&units), tasks[0].get());
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(EdfBandTest, InheritedDeadlineChangesSelection) {
  EdfBand band(0);
  auto tasks = MakeTasks(3);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[1], charges);
  band.Unblock(*tasks[2], charges);
  // Task 2 inherits an earlier deadline than task 1's.
  tasks[2]->effective_deadline = Instant() + Milliseconds(1);
  int units = 0;
  EXPECT_EQ(band.SelectReady(&units), tasks[2].get());
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

// --- RmBand ---

TEST(RmBandTest, HighestpTracksFirstReady) {
  RmBand band(0);
  auto tasks = MakeTasks(5);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  EXPECT_EQ(band.highestp(), nullptr);
  ChargeList charges;
  band.Unblock(*tasks[3], charges);
  EXPECT_EQ(band.highestp(), tasks[3].get());
  band.Unblock(*tasks[1], charges);
  EXPECT_EQ(band.highestp(), tasks[1].get());
  band.Unblock(*tasks[4], charges);
  EXPECT_EQ(band.highestp(), tasks[1].get());
  int units = 0;
  EXPECT_EQ(band.SelectReady(&units), tasks[1].get());
  EXPECT_EQ(units, 1);  // O(1) selection
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, UnblockIsConstantTime) {
  RmBand band(0);
  auto tasks = MakeTasks(20);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[19], charges);
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_EQ(charges[0].units, 1);
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, BlockScansForNextReady) {
  RmBand band(0);
  auto tasks = MakeTasks(6);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[0], charges);
  band.Unblock(*tasks[4], charges);
  charges.clear();
  band.Block(*tasks[0], charges);  // highestp must scan 1..4
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_EQ(charges[0].units, 4);  // visits tasks 1,2,3 (blocked) + 4 (ready)
  EXPECT_EQ(band.highestp(), tasks[4].get());
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, BlockOfNonHighestIsConstant) {
  RmBand band(0);
  auto tasks = MakeTasks(6);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[1], charges);
  band.Unblock(*tasks[3], charges);
  charges.clear();
  band.Block(*tasks[3], charges);  // not highestp: no scan
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_EQ(charges[0].units, 0);
  EXPECT_EQ(band.highestp(), tasks[1].get());
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, SwapForPiExchangesPositions) {
  RmBand band(0);
  auto tasks = MakeTasks(4);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  // Holder (rank 3, ready) inherits from blocked waiter (rank 0).
  band.Unblock(*tasks[3], charges);
  band.SwapForPi(*tasks[3], *tasks[0]);
  tasks[3]->effective_rm_rank = 0;
  // Holder is now first ready and selected in O(1).
  EXPECT_EQ(band.highestp(), tasks[3].get());
  // Swap back (release): restore ranks then positions.
  tasks[3]->effective_rm_rank = 3;
  band.SwapForPi(*tasks[3], *tasks[0]);
  EXPECT_EQ(band.highestp(), tasks[3].get());
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, SortedReinsertCountsVisits) {
  RmBand band(0);
  auto tasks = MakeTasks(8);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  // Re-rank task 7 to rank -1 (highest) and reinsert: visits the list head.
  tasks[7]->effective_rm_rank = -1;
  int visits = band.Reposition(*tasks[7]);
  EXPECT_EQ(visits, 1);  // first comparison already finds the spot
  // Restore to original (now requires scanning past everything).
  tasks[7]->effective_rm_rank = 7;
  visits = band.Reposition(*tasks[7]);
  EXPECT_EQ(visits, 7);
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmBandTest, RemoveHighestpRecomputes) {
  RmBand band(0);
  auto tasks = MakeTasks(3);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  band.Unblock(*tasks[0], charges);
  band.Unblock(*tasks[2], charges);
  band.RemoveTask(*tasks[0]);
  EXPECT_EQ(band.highestp(), tasks[2].get());
  band.RemoveTask(*tasks[1]);
  band.RemoveTask(*tasks[2]);
  EXPECT_EQ(band.highestp(), nullptr);
}

// --- RmHeapBand ---

TEST(RmHeapBandTest, SelectReturnsMinRank) {
  RmHeapBand band(0);
  auto tasks = MakeTasks(7);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  for (int i : {5, 2, 6, 0, 3}) {
    band.Unblock(*tasks[i], charges);
  }
  int units = 0;
  EXPECT_EQ(band.SelectReady(&units), tasks[0].get());
  EXPECT_EQ(units, 1);
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmHeapBandTest, BlockRemovesFromHeap) {
  RmHeapBand band(0);
  auto tasks = MakeTasks(7);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  for (int i = 0; i < 7; ++i) {
    band.Unblock(*tasks[i], charges);
  }
  charges.clear();
  band.Block(*tasks[0], charges);
  int units = 0;
  EXPECT_EQ(band.SelectReady(&units), tasks[1].get());
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmHeapBandTest, UnblockUnitsLogarithmic) {
  RmHeapBand band(0);
  auto tasks = MakeTasks(64);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  // Fill in descending priority order so each insert sifts to the top.
  for (int i = 63; i >= 1; --i) {
    band.Unblock(*tasks[i], charges);
    charges.clear();
  }
  band.Unblock(*tasks[0], charges);  // sifts through ~log2(63) levels
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_GE(charges[0].units, 5);
  EXPECT_LE(charges[0].units, 7);
  band.Validate();
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

TEST(RmHeapBandTest, RandomizedHeapInvariant) {
  RmHeapBand band(0);
  auto tasks = MakeTasks(32);
  for (auto& t : tasks) {
    band.AddTask(*t);
  }
  ChargeList charges;
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % 32;
  };
  for (int step = 0; step < 2000; ++step) {
    Tcb& t = *tasks[next()];
    if (t.ready) {
      band.Block(t, charges);
    } else {
      band.Unblock(t, charges);
    }
    charges.clear();
    band.Validate();
    // Selection (if any) must match a linear scan over ready tasks.
    Tcb* expect = nullptr;
    for (auto& candidate : tasks) {
      if (candidate->ready &&
          (expect == nullptr || candidate->effective_rm_rank < expect->effective_rm_rank)) {
        expect = candidate.get();
      }
    }
    int units = 0;
    EXPECT_EQ(band.SelectReady(&units), expect);
  }
  for (auto& t : tasks) {
    band.RemoveTask(*t);
  }
}

}  // namespace
}  // namespace emeralds
