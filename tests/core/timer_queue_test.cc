// TimerQueue tests: the wheel and the reference sorted list must agree on
// the exact extraction order — (expiry, arm_seq) — under arm/cancel/rearm
// churn, including tie-breaks, far-future overflow, cascade on base advance,
// and arms behind the wheel base. A kernel-level differential test then
// checks the full trace stream is bit-identical across implementations.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/timer_queue.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

// Deterministic split-mix generator for the property tests.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ull) {}
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

// A pair of queues driven in lockstep; every mutation asserts the two report
// the same minimum by identity (same logical timer index).
class LockstepQueues {
 public:
  explicit LockstepQueues(size_t n)
      : wheel_timers_(n),
        list_timers_(n),
        wheel_(TimerQueueImpl::kWheel),
        list_(TimerQueueImpl::kSortedList) {}

  void Arm(size_t i, Instant expiry, uint64_t seq, Instant now) {
    if (wheel_timers_[i].armed()) {
      wheel_.Remove(wheel_timers_[i]);
      list_.Remove(list_timers_[i]);
    }
    wheel_timers_[i].expiry = expiry;
    wheel_timers_[i].arm_seq = seq;
    list_timers_[i].expiry = expiry;
    list_timers_[i].arm_seq = seq;
    wheel_.Insert(wheel_timers_[i], now);
    list_.Insert(list_timers_[i], now);
    CheckMin();
  }

  void Cancel(size_t i) {
    if (!wheel_timers_[i].armed()) {
      return;
    }
    wheel_.Remove(wheel_timers_[i]);
    list_.Remove(list_timers_[i]);
    CheckMin();
  }

  // Extracts every timer due at or before `now` from both queues, asserting
  // identical extraction order. Returns the number extracted.
  int Service(Instant now) {
    int fired = 0;
    for (;;) {
      SoftTimer* w = wheel_.Min();
      SoftTimer* l = list_.Min();
      AssertSame(w, l);
      if (w == nullptr || w->expiry > now) {
        break;
      }
      wheel_.Remove(*w);
      list_.Remove(*l);
      ++fired;
    }
    return fired;
  }

  void CheckMin() { AssertSame(wheel_.Min(), list_.Min()); }

  size_t IndexOfWheel(const SoftTimer* t) const { return t - wheel_timers_.data(); }
  size_t IndexOfList(const SoftTimer* t) const { return t - list_timers_.data(); }

  // The timers must outlive the queues: ~TimerQueue unlinks every armed
  // timer, so the queues are declared last and destroyed first.
  std::vector<SoftTimer> wheel_timers_;
  std::vector<SoftTimer> list_timers_;
  TimerQueue wheel_;
  TimerQueue list_;

 private:
  void AssertSame(const SoftTimer* w, const SoftTimer* l) {
    ASSERT_EQ(w == nullptr, l == nullptr);
    if (w == nullptr) {
      return;
    }
    ASSERT_EQ(IndexOfWheel(w), IndexOfList(l))
        << "wheel min (expiry=" << w->expiry.nanos() << ", seq=" << w->arm_seq
        << ") != list min (expiry=" << l->expiry.nanos() << ", seq=" << l->arm_seq << ")";
    ASSERT_EQ(w->expiry.nanos(), l->expiry.nanos());
    ASSERT_EQ(w->arm_seq, l->arm_seq);
  }
};

TEST(TimerQueueTest, EqualExpiriesExtractInArmOrder) {
  LockstepQueues q(8);
  Instant now;
  Instant expiry = now + Microseconds(100);
  // Arm out of index order; extraction must follow arm_seq.
  uint64_t seq = 0;
  for (size_t i : {3u, 0u, 7u, 1u, 5u}) {
    q.Arm(i, expiry, seq++, now);
  }
  std::vector<size_t> order;
  for (;;) {
    SoftTimer* w = q.wheel_.Min();
    if (w == nullptr) {
      break;
    }
    order.push_back(q.IndexOfWheel(w));
    q.wheel_.Remove(*w);
    SoftTimer* l = q.list_.Min();
    q.list_.Remove(*l);
  }
  EXPECT_EQ(order, (std::vector<size_t>{3, 0, 7, 1, 5}));
}

TEST(TimerQueueTest, FarFutureOverflowCascadesIn) {
  LockstepQueues q(4);
  Instant now;
  uint64_t seq = 0;
  // Beyond the outermost level span (~268 ms): lands in overflow.
  q.Arm(0, now + Seconds(2), seq++, now);
  q.Arm(1, now + Seconds(1), seq++, now);
  // Near-term timers keep the wheel busy while time advances.
  q.Arm(2, now + Milliseconds(1), seq++, now);
  EXPECT_EQ(q.IndexOfWheel(q.wheel_.Min()), 2u);

  // March time forward past the far expiries; the overflow prefix must
  // cascade into the levels and fire in exact order.
  Instant t = now;
  int fired = 0;
  uint64_t rearm = 100;
  while (t < now + Seconds(3)) {
    t = t + Milliseconds(7);
    fired += q.Service(t);
    // Churn: keep re-arming a short timer so the base keeps advancing.
    q.Arm(3, t + Milliseconds(5), rearm++, t);
  }
  fired += q.Service(t);
  EXPECT_GE(fired, 3);
  EXPECT_FALSE(q.wheel_timers_[0].armed());
  EXPECT_FALSE(q.wheel_timers_[1].armed());
}

TEST(TimerQueueTest, ArmBehindBaseStillOrdersExactly) {
  LockstepQueues q(3);
  Instant now;
  uint64_t seq = 0;
  q.Arm(0, now + Milliseconds(10), seq++, now);
  // Advance the base well past t=0 by servicing at a later time.
  Instant later = now + Milliseconds(9);
  q.Service(later);
  // Arm a timer whose expiry is already in the past relative to the base.
  q.Arm(1, now + Milliseconds(1), seq++, later);
  q.Arm(2, now + Milliseconds(20), seq++, later);
  EXPECT_EQ(q.IndexOfWheel(q.wheel_.Min()), 1u);
  EXPECT_EQ(q.Service(later + Milliseconds(5)), 2);  // indices 1 then 0
  EXPECT_EQ(q.IndexOfWheel(q.wheel_.Min()), 2u);
}

// Satellite: the lazy cascade at exactly the 64-slot wrap boundary. A timer
// armed for now + 64 granules shares a slot *index* with "now" but lives one
// wheel lap (or one level) away; the wheel must fire it at its expiry in
// (expiry, arm_seq) order, not a lap early or late. Pin arms at span-1, span,
// and span+1 granules for every level span (64, 64^2, 64^3) plus an arm_seq
// tie exactly at the span.
TEST(TimerQueueTest, ExactWrapBoundaryFiresInOrder) {
  constexpr int64_t kGranule = 1024;  // 1 << kGranularityShift ns
  constexpr int64_t kSpans[] = {64, 64 * 64, 64 * 64 * 64};
  LockstepQueues q(12);
  Instant now;
  uint64_t seq = 0;
  size_t i = 0;
  for (int64_t span : kSpans) {
    q.Arm(i++, now + Nanoseconds((span - 1) * kGranule), seq++, now);
    q.Arm(i++, now + Nanoseconds(span * kGranule), seq++, now);
    q.Arm(i++, now + Nanoseconds(span * kGranule), seq++, now);  // seq tie
    q.Arm(i++, now + Nanoseconds((span + 1) * kGranule), seq++, now);
  }
  // March with a stride coprime to the slot count so service instants land at
  // every slot phase; Service() asserts extraction order against the list.
  Instant t = now;
  int fired = 0;
  while (t < now + Nanoseconds((kSpans[2] + 2) * kGranule)) {
    t = t + Nanoseconds(63 * kGranule);
    fired += q.Service(t);
  }
  EXPECT_EQ(fired, 12);
  for (size_t k = 0; k < 12; ++k) {
    EXPECT_FALSE(q.wheel_timers_[k].armed()) << "timer " << k;
  }
}

TEST(TimerQueueTest, WrapBoundaryAfterBaseAdvance) {
  constexpr int64_t kGranule = 1024;
  LockstepQueues q(4);
  Instant now;
  uint64_t seq = 0;
  // Walk the base to a mid-rotation position first so the wrap lands away
  // from slot zero.
  q.Arm(0, now + Nanoseconds(37 * kGranule), seq++, now);
  now = now + Nanoseconds(41 * kGranule);
  q.Service(now);
  // Arms exactly one full level-0 rotation ahead of the new base share a slot
  // index with the base itself; they must not fire a lap early.
  q.Arm(1, now + Nanoseconds(64 * kGranule), seq++, now);
  q.Arm(2, now + Nanoseconds(64 * kGranule), seq++, now);  // arm_seq tie
  q.Arm(3, now + Nanoseconds(63 * kGranule), seq++, now);
  EXPECT_EQ(q.Service(now + Nanoseconds(63 * kGranule)), 1);
  EXPECT_EQ(q.Service(now + Nanoseconds(64 * kGranule)), 2);
  EXPECT_FALSE(q.wheel_timers_[1].armed());
  EXPECT_FALSE(q.wheel_timers_[2].armed());
}

// Randomized variant of the boundary tests: every expiry is pinned to a wrap
// boundary +/- one granule, so the whole schedule lives exactly where a
// cascade bug would hide, under arm/cancel/service churn.
TEST(TimerQueueTest, BoundaryPinnedChurnMatchesReference) {
  constexpr int64_t kGranule = 1024;
  constexpr int64_t kSpans[] = {64, 64 * 64, 64 * 64 * 64};
  for (uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    constexpr size_t kTimers = 32;
    LockstepQueues q(kTimers);
    Instant now;
    uint64_t seq = 0;
    for (int op = 0; op < 1500; ++op) {
      uint64_t roll = rng.Below(100);
      size_t i = rng.Below(kTimers);
      if (roll < 60) {
        int64_t span = kSpans[rng.Below(3)];
        int64_t jitter = static_cast<int64_t>(rng.Below(3)) - 1;
        q.Arm(i, now + Nanoseconds((span + jitter) * kGranule), seq++, now);
      } else if (roll < 75) {
        q.Cancel(i);
      } else {
        now = now + Nanoseconds(static_cast<int64_t>(rng.Below(130)) * kGranule);
        q.Service(now);
      }
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "divergence at seed " << seed << " op " << op;
      }
    }
    ASSERT_EQ(q.wheel_.size(), q.list_.size());
  }
}

TEST(TimerQueueTest, RandomChurnMatchesReference) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    constexpr size_t kTimers = 64;
    LockstepQueues q(kTimers);
    Instant now;
    uint64_t seq = 0;
    for (int op = 0; op < 2000; ++op) {
      uint64_t roll = rng.Below(100);
      size_t i = rng.Below(kTimers);
      if (roll < 55) {
        // Arm/rearm with a spread of horizons: sub-tick, level 0/1/2,
        // overflow, and deliberate expiry collisions for tie-breaks.
        uint64_t kind = rng.Below(6);
        Duration d;
        switch (kind) {
          case 0: d = Nanoseconds(static_cast<int64_t>(rng.Below(1024))); break;
          case 1: d = Microseconds(static_cast<int64_t>(rng.Below(60))); break;
          case 2: d = Microseconds(static_cast<int64_t>(rng.Below(4000))); break;
          case 3: d = Milliseconds(static_cast<int64_t>(rng.Below(250))); break;
          case 4: d = Milliseconds(static_cast<int64_t>(250 + rng.Below(5000))); break;
          default: d = Milliseconds(5);  // shared expiry: arm_seq tie-break
        }
        q.Arm(i, now + d, seq++, now);
      } else if (roll < 75) {
        q.Cancel(i);
      } else {
        now = now + Microseconds(static_cast<int64_t>(rng.Below(2000)));
        q.Service(now);
      }
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "divergence at seed " << seed << " op " << op;
      }
    }
    ASSERT_EQ(q.wheel_.size(), q.list_.size());
  }
}

// Kernel-level differential: a timer-heavy node (user timers, sleeps,
// receive timeouts, periodic releases, stats sampling) must produce a
// bit-identical trace and identical counters under both implementations.
void BuildTimerHeavyWorkload(Kernel& kernel) {
  SemId tick = kernel.CreateSemaphore("tick", 0).value();
  TimerId timer = kernel.CreateTimer("ticker", tick).value();
  MailboxId mbox = kernel.CreateMailbox("mbox", 1).value();

  ThreadParams pacer;
  pacer.name = "pacer";
  pacer.body = [tick](ThreadApi api) -> ThreadBody {
    for (;;) {
      Status s = co_await api.Acquire(tick);
      if (s != Status::kOk) {
        break;
      }
      co_await api.Compute(Microseconds(40));
    }
  };
  kernel.CreateThread(pacer);

  ThreadParams sleeper;
  sleeper.name = "sleeper";
  sleeper.period = Milliseconds(3);
  sleeper.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Sleep(Microseconds(700));
      co_await api.Compute(Microseconds(90));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(sleeper);

  ThreadParams poller;
  poller.name = "poller";
  poller.period = Milliseconds(2);
  poller.body = [mbox](ThreadApi api) -> ThreadBody {
    uint8_t buf[4];
    for (;;) {
      // Nobody sends: every receive times out, exercising timeout timers.
      co_await api.Recv(mbox, std::span<uint8_t>(buf, sizeof(buf)), Microseconds(500));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(poller);

  kernel.EnableStatsSampling(Milliseconds(5), 64);
  kernel.Start();
  kernel.StartTimer(timer, Microseconds(900), Microseconds(1700));
  kernel.RunUntil(Instant() + Milliseconds(120));
}

TEST(TimerQueueTest, KernelTraceBitIdenticalAcrossImpls) {
  KernelConfig wheel_config = CalibratedConfig(SchedulerSpec::Csd(2));
  wheel_config.trace_capacity = 65536;
  wheel_config.timer_queue = TimerQueueImpl::kWheel;
  KernelConfig list_config = wheel_config;
  list_config.timer_queue = TimerQueueImpl::kSortedList;

  SimEnv wheel_env(wheel_config);
  BuildTimerHeavyWorkload(wheel_env.k());
  SimEnv list_env(list_config);
  BuildTimerHeavyWorkload(list_env.k());

  const TraceSink& wt = wheel_env.k().trace();
  const TraceSink& lt = list_env.k().trace();
  ASSERT_EQ(wt.dropped(), 0u);
  ASSERT_EQ(wt.size(), lt.size());
  for (size_t i = 0; i < wt.size(); ++i) {
    const TraceEvent& a = wt.at(i);
    const TraceEvent& b = lt.at(i);
    ASSERT_EQ(a.time.nanos(), b.time.nanos()) << "event " << i;
    ASSERT_EQ(a.type, b.type) << "event " << i;
    ASSERT_EQ(a.arg0, b.arg0) << "event " << i;
    ASSERT_EQ(a.arg1, b.arg1) << "event " << i;
    ASSERT_EQ(a.arg2, b.arg2) << "event " << i;
  }

  const KernelStats& ws = wheel_env.k().stats();
  const KernelStats& ls = list_env.k().stats();
  EXPECT_EQ(ws.interrupts, ls.interrupts);
  EXPECT_EQ(ws.timer_dispatches, ls.timer_dispatches);
  EXPECT_EQ(ws.context_switches, ls.context_switches);
  EXPECT_EQ(ws.syscalls, ls.syscalls);
  EXPECT_EQ(ws.cycle_total().nanos(), ls.cycle_total().nanos());
  EXPECT_EQ(wheel_env.k().now().nanos(), list_env.k().now().nanos());
}

}  // namespace
}  // namespace emeralds
