// Script / code-parser tests (Section 6.2.1): hint instrumentation and
// script execution through the kernel.

#include <gtest/gtest.h>

#include "src/script/script.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace {

TEST(InstrumentTest, BlockingCallBeforeAcquireGetsHint) {
  SemId s(3);
  Script script;
  script.actions = {
      Action::Compute(Milliseconds(1)),
      Action::WaitPeriod(),
      Action::Acquire(s),
      Action::Release(s),
  };
  EXPECT_EQ(Instrument(script), 1);
  EXPECT_EQ(script.actions[1].next_sem_hint, s);
}

TEST(InstrumentTest, ComputeBetweenIsLookedThrough) {
  SemId s(1);
  Script script;
  script.actions = {
      Action::WaitPeriod(),
      Action::Compute(Milliseconds(2)),  // straight-line code before acquire
      Action::Acquire(s),
      Action::Release(s),
  };
  Instrument(script);
  EXPECT_EQ(script.actions[0].next_sem_hint, s);
}

TEST(InstrumentTest, InterveningBlockingCallStopsScan) {
  SemId s(1);
  Script script;
  script.actions = {
      Action::WaitPeriod(),
      Action::Sleep(Milliseconds(1)),  // a second blocking call
      Action::Acquire(s),
      Action::Release(s),
  };
  Instrument(script);
  EXPECT_EQ(script.actions[0].next_sem_hint, kNoSem);  // sleep intervenes
  EXPECT_EQ(script.actions[1].next_sem_hint, s);       // sleep carries it
}

TEST(InstrumentTest, NoAcquireMeansMinusOne) {
  Script script;
  script.actions = {
      Action::WaitPeriod(),
      Action::Compute(Milliseconds(1)),
  };
  // With no acquire anywhere in the loop the scan wraps, hits the blocking
  // call again, and leaves the hint at -1 (kNoSem).
  EXPECT_EQ(Instrument(script), 0);
  EXPECT_EQ(script.actions[0].next_sem_hint, kNoSem);
}

TEST(InstrumentTest, WrapsAroundLoopBoundary) {
  SemId s(2);
  Script script;
  // Acquire at the head of the loop; the blocking call is at the tail.
  script.actions = {
      Action::Acquire(s),
      Action::Compute(Milliseconds(1)),
      Action::Release(s),
      Action::WaitPeriod(),
  };
  Instrument(script);
  EXPECT_EQ(script.actions[3].next_sem_hint, s);
}

TEST(InstrumentTest, ReturnsZeroWhenNothingToDo) {
  Script script;
  script.actions = {Action::Compute(Milliseconds(1))};
  EXPECT_EQ(Instrument(script), 0);
}

TEST(InstrumentTest, MultipleBlockingCallsEachScanned) {
  SemId s1(1);
  SemId s2(2);
  Script script;
  script.actions = {
      Action::WaitPeriod(),
      Action::Acquire(s1),
      Action::Release(s1),
      Action::Sleep(Milliseconds(1)),
      Action::Acquire(s2),
      Action::Release(s2),
  };
  EXPECT_EQ(Instrument(script), 2);
  EXPECT_EQ(script.actions[0].next_sem_hint, s1);
  EXPECT_EQ(script.actions[3].next_sem_hint, s2);
}

TEST(ScriptRunTest, InstrumentedScriptTriggersCse) {
  // The CSE scenario of Figure 6 built entirely from scripts: the parser
  // inserts the hint, the kernel saves the context switch.
  KernelConfig config = ZeroCostConfig();
  config.default_sem_mode = SemMode::kCse;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S").value();

  Script t2_script;
  t2_script.actions = {
      Action::Acquire(sem),
      Action::Compute(Milliseconds(1)),
      Action::Release(sem),
      Action::WaitPeriod(),
  };
  ASSERT_EQ(Instrument(t2_script), 1);
  ThreadParams t2;
  t2.name = "T2";
  t2.period = Milliseconds(10);
  t2.body = MakeScriptBody(t2_script);
  env.k().CreateThread(t2);

  Script t1_script;
  t1_script.actions = {
      Action::Compute(Milliseconds(8)),
      Action::Acquire(sem),
      Action::Compute(Milliseconds(3)),
      Action::Release(sem),
      Action::WaitPeriod(),
  };
  Instrument(t1_script);
  ThreadParams t1;
  t1.name = "T1";
  t1.period = Milliseconds(50);
  t1.body = MakeScriptBody(t1_script);
  env.k().CreateThread(t1);

  env.StartAndRunFor(Milliseconds(15));
  EXPECT_EQ(env.k().stats().cse_early_pi, 1u);
  EXPECT_EQ(env.k().stats().cse_switches_saved, 1u);
}

TEST(ScriptRunTest, FiniteIterationsTerminate) {
  SimEnv env(ZeroCostConfig());
  Script script;
  script.actions = {Action::Compute(Milliseconds(1)), Action::Sleep(Milliseconds(1))};
  script.iterations = 3;
  ThreadParams params;
  params.name = "loop3";
  params.body = MakeScriptBody(script);
  ThreadId id = env.k().CreateThread(params).value();
  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(env.k().thread(id).state, ThreadState::kFinished);
  EXPECT_EQ(env.k().thread(id).cpu_time.millis(), 3);
}

TEST(ScriptRunTest, IpcActionsExecute) {
  SimEnv env(ZeroCostConfig());
  MailboxId mbox = env.k().CreateMailbox("m", 4).value();
  SmsgId smsg = env.k().CreateStateMessage("s", 8, 3).value();

  Script producer;
  producer.actions = {
      Action::StateWrite(smsg, 8),
      Action::Send(mbox, 4),
      Action::Sleep(Milliseconds(1)),
  };
  producer.iterations = 5;
  ThreadParams p;
  p.name = "producer";
  p.body = MakeScriptBody(producer);
  env.k().CreateThread(p);

  Script consumer;
  consumer.actions = {
      Action::Recv(mbox, 4),
      Action::StateRead(smsg, 8),
  };
  consumer.iterations = 5;
  ThreadParams c;
  c.name = "consumer";
  c.body = MakeScriptBody(consumer);
  env.k().CreateThread(c);

  env.StartAndRunFor(Milliseconds(20));
  EXPECT_EQ(env.k().stats().mailbox_sends, 5u);
  EXPECT_EQ(env.k().stats().mailbox_receives, 5u);
  EXPECT_EQ(env.k().stats().smsg_writes, 5u);
}

}  // namespace
}  // namespace emeralds
