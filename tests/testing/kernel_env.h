// Shared scaffolding for kernel tests: a Hardware + Kernel pair with
// convenient configs (zero-cost for logic tests, MC68040 for timing tests).

#ifndef TESTS_TESTING_KERNEL_ENV_H_
#define TESTS_TESTING_KERNEL_ENV_H_

#include <memory>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"

namespace emeralds {

inline KernelConfig ZeroCostConfig(SchedulerSpec spec = SchedulerSpec::Edf()) {
  KernelConfig config;
  config.scheduler = spec;
  config.cost_model = CostModel::Zero();
  return config;
}

inline KernelConfig CalibratedConfig(SchedulerSpec spec = SchedulerSpec::Edf()) {
  KernelConfig config;
  config.scheduler = spec;
  config.cost_model = CostModel::MC68040_25MHz();
  return config;
}

struct SimEnv {
  Hardware hw;
  std::unique_ptr<Kernel> kernel;

  explicit SimEnv(const KernelConfig& config) : kernel(std::make_unique<Kernel>(hw, config)) {}

  Kernel& k() { return *kernel; }
  void StartAndRunFor(Duration d) {
    kernel->Start();
    kernel->RunUntil(Instant() + d);
  }
};

}  // namespace emeralds

#endif  // TESTS_TESTING_KERNEL_ENV_H_
