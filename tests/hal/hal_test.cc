// Virtual hardware tests: clock, hardware timers, interrupt controller,
// cost model, trace sink.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/hal/cost_model.h"
#include "src/hal/hardware.h"
#include "src/hal/trace.h"

namespace emeralds {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.now().nanos(), 0);
  clock.AdvanceBy(Microseconds(5));
  EXPECT_EQ(clock.now().micros(), 5);
  clock.AdvanceTo(Instant() + Milliseconds(1));
  EXPECT_EQ(clock.now().micros(), 1000);
}

TEST(VirtualClockTest, ZeroAdvanceAllowed) {
  VirtualClock clock;
  clock.AdvanceTo(clock.now());
  clock.AdvanceBy(Duration());
  EXPECT_EQ(clock.now().nanos(), 0);
}

class RecordingTimer : public HardwareTimer {
 public:
  explicit RecordingTimer(std::vector<int>* log, int id) : log_(log), id_(id) {}
  void OnExpire(Hardware& hw) override { log_->push_back(id_); }

 private:
  std::vector<int>* log_;
  int id_;
};

TEST(HardwareTimerTest, FiresInExpiryOrder) {
  Hardware hw;
  std::vector<int> log;
  RecordingTimer t1(&log, 1), t2(&log, 2), t3(&log, 3);
  hw.ArmTimer(t2, Instant() + Microseconds(20));
  hw.ArmTimer(t1, Instant() + Microseconds(10));
  hw.ArmTimer(t3, Instant() + Microseconds(30));
  EXPECT_EQ(hw.NextTimerExpiry(), Instant() + Microseconds(10));
  hw.clock().AdvanceTo(Instant() + Microseconds(25));
  EXPECT_EQ(hw.FireDueTimers(), 2);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
  EXPECT_TRUE(t3.armed());
}

TEST(HardwareTimerTest, SimultaneousExpiryFiresInArmOrder) {
  Hardware hw;
  std::vector<int> log;
  RecordingTimer t1(&log, 1), t2(&log, 2);
  hw.ArmTimer(t2, Instant() + Microseconds(10));  // armed first
  hw.ArmTimer(t1, Instant() + Microseconds(10));
  hw.clock().AdvanceTo(Instant() + Microseconds(10));
  hw.FireDueTimers();
  EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(HardwareTimerTest, RearmReprograms) {
  Hardware hw;
  std::vector<int> log;
  RecordingTimer t(&log, 1);
  hw.ArmTimer(t, Instant() + Microseconds(10));
  hw.ArmTimer(t, Instant() + Microseconds(50));
  hw.clock().AdvanceTo(Instant() + Microseconds(20));
  EXPECT_EQ(hw.FireDueTimers(), 0);
  EXPECT_TRUE(t.armed());
  hw.clock().AdvanceTo(Instant() + Microseconds(50));
  EXPECT_EQ(hw.FireDueTimers(), 1);
  EXPECT_FALSE(t.armed());
}

TEST(HardwareTimerTest, DisarmPreventsFire) {
  Hardware hw;
  std::vector<int> log;
  RecordingTimer t(&log, 1);
  hw.ArmTimer(t, Instant() + Microseconds(10));
  hw.DisarmTimer(t);
  hw.clock().AdvanceTo(Instant() + Microseconds(20));
  EXPECT_EQ(hw.FireDueTimers(), 0);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(hw.NextTimerExpiry(), Instant::Max());
}

class RearmingTimer : public HardwareTimer {
 public:
  explicit RearmingTimer(int* count) : count_(count) {}
  void OnExpire(Hardware& hw) override {
    ++*count_;
    if (*count_ < 3) {
      hw.ArmTimer(*this, hw.now());  // due immediately
    }
  }

 private:
  int* count_;
};

TEST(HardwareTimerTest, CallbackMayRearmDueImmediately) {
  Hardware hw;
  int count = 0;
  RearmingTimer t(&count);
  hw.ArmTimer(t, Instant());
  EXPECT_EQ(hw.FireDueTimers(), 3);
  EXPECT_EQ(count, 3);
}

struct IrqRecorder {
  std::vector<int> lines;
  static void Handler(void* context, int line) {
    static_cast<IrqRecorder*>(context)->lines.push_back(line);
  }
};

TEST(InterruptControllerTest, DispatchCallsHandler) {
  InterruptController ic;
  IrqRecorder rec;
  ic.Attach(3, &IrqRecorder::Handler, &rec);
  ic.Raise(3);
  EXPECT_TRUE(ic.pending(3));
  EXPECT_EQ(ic.DispatchPending(), 1);
  EXPECT_FALSE(ic.pending(3));
  EXPECT_EQ(rec.lines, (std::vector<int>{3}));
}

TEST(InterruptControllerTest, CoalescesWhilePending) {
  InterruptController ic;
  IrqRecorder rec;
  ic.Attach(1, &IrqRecorder::Handler, &rec);
  ic.Raise(1);
  ic.Raise(1);
  EXPECT_EQ(ic.DispatchPending(), 1);
  EXPECT_EQ(ic.raised_count(1), 2u);
  EXPECT_EQ(ic.dispatched_count(1), 1u);
}

TEST(InterruptControllerTest, MaskedLineNotDelivered) {
  InterruptController ic;
  IrqRecorder rec;
  ic.Attach(2, &IrqRecorder::Handler, &rec);
  ic.SetEnabled(2, false);
  ic.Raise(2);
  EXPECT_FALSE(ic.AnyDeliverable());
  EXPECT_EQ(ic.DispatchPending(), 0);
  ic.SetEnabled(2, true);
  EXPECT_TRUE(ic.AnyDeliverable());
  EXPECT_EQ(ic.DispatchPending(), 1);
}

TEST(InterruptControllerTest, GlobalDisableBlocksAll) {
  InterruptController ic;
  IrqRecorder rec;
  ic.Attach(0, &IrqRecorder::Handler, &rec);
  ic.SetGlobalEnable(false);
  ic.Raise(0);
  EXPECT_EQ(ic.DispatchPending(), 0);
  ic.SetGlobalEnable(true);
  EXPECT_EQ(ic.DispatchPending(), 1);
}

TEST(InterruptControllerTest, FixedPriorityOrder) {
  InterruptController ic;
  IrqRecorder rec;
  ic.Attach(5, &IrqRecorder::Handler, &rec);
  ic.Attach(1, &IrqRecorder::Handler, &rec);
  ic.Raise(5);
  ic.Raise(1);
  ic.DispatchPending();
  EXPECT_EQ(rec.lines, (std::vector<int>{1, 5}));
}

TEST(InterruptControllerTest, UnattachedPendingNotDeliverable) {
  InterruptController ic;
  ic.Raise(7);
  EXPECT_TRUE(ic.pending(7));
  EXPECT_FALSE(ic.AnyDeliverable());
}

TEST(CostModelTest, Table1EdfFits) {
  CostModel m = CostModel::MC68040_25MHz();
  // t_b = 1.6, t_u = 1.2, t_s = 1.2 + 0.25 n.
  EXPECT_EQ(m.QueueCost(QueueKind::kEdfList, QueueOp::kBlock, 1).nanos(), 1600);
  EXPECT_EQ(m.QueueCost(QueueKind::kEdfList, QueueOp::kUnblock, 1).nanos(), 1200);
  EXPECT_EQ(m.QueueCost(QueueKind::kEdfList, QueueOp::kSelect, 10).nanos(), 1200 + 2500);
}

TEST(CostModelTest, Table1RmFits) {
  CostModel m = CostModel::MC68040_25MHz();
  // t_b = 1.0 + 0.36 n, t_u = 1.4, t_s = 0.6.
  EXPECT_EQ(m.QueueCost(QueueKind::kRmList, QueueOp::kBlock, 10).nanos(), 1000 + 3600);
  EXPECT_EQ(m.QueueCost(QueueKind::kRmList, QueueOp::kUnblock, 1).nanos(), 1400);
  EXPECT_EQ(m.QueueCost(QueueKind::kRmList, QueueOp::kSelect, 1).nanos(), 600);
}

TEST(CostModelTest, Table1HeapFits) {
  CostModel m = CostModel::MC68040_25MHz();
  // t_b = 0.4 + 2.8 ceil(log2(n+1)) with `units` = levels.
  EXPECT_EQ(m.QueueCost(QueueKind::kRmHeap, QueueOp::kBlock, 4).nanos(), 400 + 4 * 2800);
  EXPECT_EQ(m.QueueCost(QueueKind::kRmHeap, QueueOp::kUnblock, 4).nanos(), 1900 + 4 * 700);
  EXPECT_EQ(m.QueueCost(QueueKind::kRmHeap, QueueOp::kSelect, 1).nanos(), 600);
}

TEST(CostModelTest, ZeroModelChargesNothing) {
  CostModel m = CostModel::Zero();
  EXPECT_TRUE(m.QueueCost(QueueKind::kEdfList, QueueOp::kSelect, 50).is_zero());
  EXPECT_TRUE(m.context_switch.is_zero());
  EXPECT_TRUE(m.syscall.is_zero());
}

TEST(TraceSinkTest, RecordsAndOverwrites) {
  TraceSink sink(2);
  sink.Record(Instant(), TraceEventType::kJobRelease, 1, 1);
  sink.Record(Instant() + Microseconds(1), TraceEventType::kJobComplete, 1, 1);
  sink.Record(Instant() + Microseconds(2), TraceEventType::kDeadlineMiss, 2, 1);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.total_recorded(), 3u);
  EXPECT_EQ(sink.at(0).type, TraceEventType::kJobComplete);
  EXPECT_EQ(sink.at(1).type, TraceEventType::kDeadlineMiss);
}

TEST(TraceSinkTest, ZeroCapacityCountsOnly) {
  TraceSink sink(0);
  sink.Record(Instant(), TraceEventType::kIrq, 1, 0);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.total_recorded(), 1u);
  EXPECT_EQ(sink.dropped(), 1u);
}

TEST(TraceSinkTest, DroppedCountsEvictions) {
  TraceSink sink(2);
  for (int i = 0; i < 5; ++i) {
    sink.Record(Instant() + Microseconds(i), TraceEventType::kIrq, i, 0);
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.total_recorded(), sink.size() + sink.dropped());
  sink.Clear();
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(TraceSinkTest, ResetClearsDroppedAndRecordsEpochMarker) {
  TraceSink sink(4);
  for (int i = 0; i < 7; ++i) {
    sink.Record(Instant() + Microseconds(i), TraceEventType::kIrq, i, 0);
  }
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.epochs(), 0u);

  sink.Reset(Instant() + Microseconds(100));
  // The overflow drops are forgiven — the discard was deliberate — and the
  // new window opens with exactly one event: the epoch marker.
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.epochs(), 1u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).type, TraceEventType::kTraceEpoch);
  EXPECT_EQ(sink.at(0).arg0, 1);
  EXPECT_EQ(sink.at(0).time, Instant() + Microseconds(100));
  // total_recorded keeps counting across resets (7 pre-reset + the marker).
  EXPECT_EQ(sink.total_recorded(), 8u);

  sink.Record(Instant() + Microseconds(101), TraceEventType::kJobRelease, 1, 0);
  sink.Reset(Instant() + Microseconds(200));
  EXPECT_EQ(sink.epochs(), 2u);
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.at(0).arg0, 2);

  // Clear() wipes back to construction state, including the epoch count.
  sink.Clear();
  EXPECT_EQ(sink.epochs(), 0u);
  EXPECT_EQ(sink.total_recorded(), 0u);
}

TEST(TraceSinkTest, ResetOnZeroCapacitySinkStaysDisabled) {
  TraceSink sink(0);
  sink.Record(Instant(), TraceEventType::kIrq, 1, 0);
  sink.Reset(Instant() + Microseconds(5));
  // Recording is still disabled, so even the marker is counted as dropped —
  // but the pre-reset drop tally itself was forgiven.
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_EQ(sink.epochs(), 1u);
}

TEST(TraceEventTypeTest, ToStringFromStringRoundTripsAllEnumerators) {
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    TraceEventType type = static_cast<TraceEventType>(i);
    const char* name = TraceEventTypeToString(type);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "enumerator " << i << " has no name";
    TraceEventType back;
    ASSERT_TRUE(TraceEventTypeFromString(name, &back)) << name;
    EXPECT_EQ(back, type) << name;
  }
  // Names must be unique, or FromString could not invert ToString.
  for (int i = 0; i < kNumTraceEventTypes; ++i) {
    for (int j = i + 1; j < kNumTraceEventTypes; ++j) {
      EXPECT_STRNE(TraceEventTypeToString(static_cast<TraceEventType>(i)),
                   TraceEventTypeToString(static_cast<TraceEventType>(j)));
    }
  }
  TraceEventType unused;
  EXPECT_FALSE(TraceEventTypeFromString("not_an_event", &unused));
  EXPECT_FALSE(TraceEventTypeFromString("", &unused));
}

// Reads `f` back into a string (the CSV/dump tests write to tmpfile()).
std::string ReadAll(std::FILE* f) {
  std::rewind(f);
  std::string text;
  char buf[1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  return text;
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) {
    if (c == '\n') {
      ++lines;
    }
  }
  return lines;
}

void FillSink(TraceSink& sink, int events) {
  for (int i = 0; i < events; ++i) {
    sink.Record(Instant() + Microseconds(i), TraceEventType::kContextSwitch, i - 1, i);
  }
}

TEST(TraceSinkTest, ExportCsvRowCountsAtCapacityBoundaries) {
  struct Case {
    int events;
    size_t expected_rows;
    bool expect_drop_note;
  };
  // Capacity 4: empty, one row, exactly full, wrapped.
  for (const Case& c : {Case{0, 0, false}, Case{1, 1, false}, Case{4, 4, false},
                        Case{7, 4, true}}) {
    TraceSink sink(4);
    FillSink(sink, c.events);
    std::FILE* f = std::tmpfile();
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(sink.ExportCsv(f), c.expected_rows) << c.events << " events";
    std::string text = ReadAll(f);
    std::fclose(f);
    // Header + rows + optional "# dropped=N" trailer.
    EXPECT_EQ(CountLines(text), 1 + c.expected_rows + (c.expect_drop_note ? 1 : 0))
        << c.events << " events";
    EXPECT_EQ(text.rfind("time_us,event,arg0,arg1,arg2\n", 0), 0u);
    EXPECT_EQ(text.find("# dropped=") != std::string::npos, c.expect_drop_note)
        << c.events << " events";
  }
}

TEST(TraceSinkTest, ExportCsvWrappedKeepsNewestRows) {
  TraceSink sink(4);
  FillSink(sink, 7);  // events 3..6 survive
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.ExportCsv(f);
  std::string text = ReadAll(f);
  std::fclose(f);
  EXPECT_NE(text.find("\n3,context_switch,2,3,0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("\n6,context_switch,5,6,0\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("\n2,context_switch"), std::string::npos) << text;
  EXPECT_NE(text.find("# dropped=3\n"), std::string::npos) << text;
}

TEST(TraceSinkTest, DumpWritesToGivenStream) {
  TraceSink sink(4);
  sink.Record(Instant() + Microseconds(5), TraceEventType::kJobRelease, 2, 0);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.Dump(f);
  std::string text = ReadAll(f);
  std::fclose(f);
  EXPECT_NE(text.find("job_release"), std::string::npos) << text;
}

TEST(TraceSinkTest, DumpNotesDroppedEvents) {
  TraceSink sink(2);
  FillSink(sink, 5);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.Dump(f);
  std::string text = ReadAll(f);
  std::fclose(f);
  EXPECT_NE(text.find("3 of 5 events dropped"), std::string::npos) << text;
}

}  // namespace
}  // namespace emeralds
