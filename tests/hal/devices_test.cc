// Simulated device tests: fieldbus NIC and periodic sensor.

#include <gtest/gtest.h>

#include "src/hal/devices.h"

namespace emeralds {
namespace {

void RunHardwareFor(Hardware& hw, Duration d) {
  Instant end = hw.now() + d;
  while (true) {
    Instant next = hw.NextTimerExpiry();
    if (next > end) {
      break;
    }
    hw.clock().AdvanceTo(next);
    hw.FireDueTimers();
  }
  hw.clock().AdvanceTo(end);
}

TEST(FieldbusDeviceTest, PeriodicFramesArrive) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.rx_period = Milliseconds(10);
  FieldbusDevice bus(hw, config);
  bus.Start();
  RunHardwareFor(hw, Milliseconds(55));
  EXPECT_EQ(bus.frames_received(), 5u);
  EXPECT_TRUE(bus.rx_ready());
  EXPECT_EQ(hw.irq().raised_count(kIrqFieldbus), 5u);
}

TEST(FieldbusDeviceTest, ReadFrameDrainsQueue) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.rx_period = Milliseconds(5);
  FieldbusDevice bus(hw, config);
  bus.Start();
  RunHardwareFor(hw, Milliseconds(12));
  ASSERT_TRUE(bus.rx_ready());
  FieldbusDevice::Frame f1 = bus.ReadFrame();
  FieldbusDevice::Frame f2 = bus.ReadFrame();
  EXPECT_EQ(f2.id, f1.id + 1);  // in-order delivery
  EXPECT_EQ(f1.payload.size(), 4u);
  EXPECT_FALSE(bus.rx_ready());
}

TEST(FieldbusDeviceTest, QueueOverrunCounts) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.rx_period = Milliseconds(1);
  config.rx_queue_depth = 4;
  FieldbusDevice bus(hw, config);
  bus.Start();
  RunHardwareFor(hw, Milliseconds(10));
  EXPECT_GT(bus.rx_overruns(), 0u);
  EXPECT_EQ(bus.frames_received(), 10u);
}

TEST(FieldbusDeviceTest, TransmitTakesWireTime) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.bit_rate = 1000000;  // 1 Mbit/s
  FieldbusDevice bus(hw, config);
  FieldbusDevice::Frame frame;
  frame.id = 0x42;
  for (int i = 0; i < 8; ++i) {
    frame.payload.push_back(static_cast<uint8_t>(i));
  }
  EXPECT_TRUE(bus.WriteFrame(frame));
  EXPECT_TRUE(bus.tx_busy());
  EXPECT_FALSE(bus.WriteFrame(frame));  // busy
  // 47 + 64 bits at 1 Mbit/s = 111 us.
  RunHardwareFor(hw, Microseconds(110));
  EXPECT_TRUE(bus.tx_busy());
  RunHardwareFor(hw, Microseconds(2));
  EXPECT_FALSE(bus.tx_busy());
  EXPECT_TRUE(bus.tx_done());
  EXPECT_EQ(bus.frames_sent(), 1u);
  bus.ClearTxDone();
  EXPECT_FALSE(bus.tx_done());
}

TEST(FieldbusDeviceTest, StopHaltsArrivals) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.rx_period = Milliseconds(2);
  FieldbusDevice bus(hw, config);
  bus.Start();
  RunHardwareFor(hw, Milliseconds(5));
  uint64_t count = bus.frames_received();
  bus.Stop();
  RunHardwareFor(hw, Milliseconds(20));
  EXPECT_EQ(bus.frames_received(), count);
}

TEST(FieldbusDeviceTest, JitterStaysWithinBound) {
  Hardware hw;
  FieldbusDevice::Config config;
  config.rx_period = Milliseconds(10);
  config.rx_jitter = Milliseconds(3);
  FieldbusDevice bus(hw, config);
  bus.Start();
  // Arrivals are period + [0, jitter); after 10 periods at most
  // 10*13 = 130 ms, at least 100 ms.
  RunHardwareFor(hw, Milliseconds(131));
  EXPECT_GE(bus.frames_received(), 10u);
  EXPECT_LE(bus.frames_received(), 13u);
}

TEST(SensorDeviceTest, LatchesSamplesPeriodically) {
  Hardware hw;
  SensorDevice::Config config;
  config.period = Milliseconds(5);
  SensorDevice sensor(hw, config);
  sensor.Start();
  EXPECT_EQ(sensor.sample_seq(), 0u);
  RunHardwareFor(hw, Milliseconds(26));
  EXPECT_EQ(sensor.sample_seq(), 5u);
  EXPECT_EQ(hw.irq().raised_count(kIrqSensor), 5u);
}

TEST(SensorDeviceTest, WaveformBounded) {
  Hardware hw;
  SensorDevice::Config config;
  config.period = Milliseconds(1);
  config.amplitude = 50.0;
  SensorDevice sensor(hw, config);
  sensor.Start();
  for (int i = 0; i < 100; ++i) {
    RunHardwareFor(hw, Milliseconds(1));
    EXPECT_LE(sensor.latest_sample(), 50.0);
    EXPECT_GE(sensor.latest_sample(), -50.0);
  }
}

TEST(SensorDeviceTest, NoIrqWhenDisabled) {
  Hardware hw;
  SensorDevice::Config config;
  config.period = Milliseconds(5);
  config.raise_irq = false;
  SensorDevice sensor(hw, config);
  sensor.Start();
  RunHardwareFor(hw, Milliseconds(20));
  EXPECT_GT(sensor.sample_seq(), 0u);
  EXPECT_EQ(hw.irq().raised_count(kIrqSensor), 0u);
}

}  // namespace
}  // namespace emeralds
