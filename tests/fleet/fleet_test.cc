#include "src/fleet/fleet.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "src/fleet/fleet_report.h"
#include "src/fleet/openmetrics.h"

namespace emeralds {
namespace fleet {
namespace {

FleetOptions SmallFleet() {
  FleetOptions opt;
  opt.instances = 8;
  opt.workers = 4;
  opt.seed = 42;
  opt.run_duration = Milliseconds(50);
  opt.slice = Milliseconds(5);
  return opt;
}

TEST(FleetTest, AllNodesPassOracles) {
  FleetResult result = RunFleet(SmallFleet());
  ASSERT_EQ(result.nodes.size(), 8u);
  for (const NodeResult& node : result.nodes) {
    EXPECT_TRUE(node.ok()) << node.scheduler << ": " << node.failure;
    EXPECT_GT(node.events, 0u);
    EXPECT_GT(node.jobs_completed, 0u);
    EXPECT_GT(node.timer_dispatches, 0u);
    // RunUntil overshoots the horizon by the in-flight charge granularity.
    EXPECT_GE(node.virtual_time, Milliseconds(50));
    EXPECT_LT(node.virtual_time, Milliseconds(51));
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.nodes_failed, 0);
  EXPECT_EQ(result.workers, 4);
}

TEST(FleetTest, AggregatesSumTheNodes) {
  FleetResult result = RunFleet(SmallFleet());
  uint64_t events = 0;
  uint64_t jobs = 0;
  Duration virtual_time;
  for (const NodeResult& node : result.nodes) {
    events += node.events;
    jobs += node.jobs_completed;
    virtual_time = virtual_time + node.virtual_time;
  }
  EXPECT_EQ(result.events_total, events);
  EXPECT_EQ(result.jobs_completed, jobs);
  EXPECT_EQ(result.virtual_time_total, virtual_time);
  EXPECT_GT(result.events_per_virtual_sec, 0.0);
  EXPECT_GT(result.arena_high_water, 0u);
}

TEST(FleetTest, CoversAllFourSchedulerVariants) {
  FleetResult result = RunFleet(SmallFleet());
  int edf = 0;
  int rm = 0;
  int csd2 = 0;
  int csd3 = 0;
  for (const NodeResult& node : result.nodes) {
    edf += node.scheduler == "EDF" ? 1 : 0;
    rm += node.scheduler == "RM" ? 1 : 0;
    csd2 += node.scheduler == "CSD-2" ? 1 : 0;
    csd3 += node.scheduler == "CSD-3" ? 1 : 0;
  }
  EXPECT_EQ(edf, 2);
  EXPECT_EQ(rm, 2);
  EXPECT_EQ(csd2, 2);
  EXPECT_EQ(csd3, 2);
}

// The determinism contract: host scheduling must not leak into simulated
// outcomes, so the digest is identical across repeated runs AND across
// worker counts (1 worker serializes everything; 8 maximizes stealing).
TEST(FleetTest, DigestIsStableAcrossRunsAndWorkerCounts) {
  FleetOptions opt = SmallFleet();
  FleetResult first = RunFleet(opt);
  FleetResult second = RunFleet(opt);
  EXPECT_EQ(first.fleet_digest, second.fleet_digest);
  EXPECT_EQ(first.events_total, second.events_total);

  opt.workers = 1;
  FleetResult serial = RunFleet(opt);
  opt.workers = 8;
  FleetResult wide = RunFleet(opt);
  EXPECT_EQ(serial.fleet_digest, first.fleet_digest);
  EXPECT_EQ(wide.fleet_digest, first.fleet_digest);
  for (size_t i = 0; i < first.nodes.size(); ++i) {
    EXPECT_EQ(serial.nodes[i].trace_digest, first.nodes[i].trace_digest) << "node " << i;
  }
  // The merged blame ledger carries the same contract: node ledgers merge
  // in node-index order, so the digest is bit-identical across worker
  // counts and repeated runs.
  EXPECT_EQ(serial.blame_digest, first.blame_digest);
  EXPECT_EQ(wide.blame_digest, first.blame_digest);
  EXPECT_EQ(second.blame_digest, first.blame_digest);
  EXPECT_EQ(serial.blame.misses_analyzed, wide.blame.misses_analyzed);
  EXPECT_EQ(serial.blame.tardiness_ns, wide.blame.tardiness_ns);
}

// Telemetry collection is a pure host-side read after each node's virtual
// horizon: digests must be bit-identical with it on or off, and — with it
// on — across worker counts. This is the zero-virtual-cost guarantee the
// telemetry plane is built on.
TEST(FleetTest, TelemetryCollectionNeverPerturbsTheDigest) {
  FleetOptions opt = SmallFleet();
  opt.telemetry = false;
  FleetResult off = RunFleet(opt);
  EXPECT_EQ(off.telemetry.nodes_collected, 0);

  opt.telemetry = true;
  for (int workers : {1, 2, 8}) {
    opt.workers = workers;
    FleetResult on = RunFleet(opt);
    EXPECT_EQ(on.fleet_digest, off.fleet_digest) << workers << " workers";
    EXPECT_EQ(on.events_total, off.events_total) << workers << " workers";
    EXPECT_EQ(on.telemetry.nodes_collected, opt.instances) << workers << " workers";
    EXPECT_EQ(on.telemetry.jobs_completed, on.jobs_completed) << workers << " workers";
    EXPECT_GT(on.telemetry.response.count(), 0u) << workers << " workers";
    // The merged percentile tables are themselves deterministic.
    EXPECT_EQ(on.telemetry.response.PercentileBound(0.99),
              RunFleet(opt).telemetry.response.PercentileBound(0.99))
        << workers << " workers";
  }
}

// Different seeds must actually change the workloads.
TEST(FleetTest, SeedChangesTheFleet) {
  FleetOptions opt = SmallFleet();
  FleetResult a = RunFleet(opt);
  opt.seed = 43;
  FleetResult b = RunFleet(opt);
  EXPECT_NE(a.fleet_digest, b.fleet_digest);
}

// The wheel and the reference sorted list must produce bit-identical fleets:
// the timer queue is a pure fast path, invisible to every simulated outcome.
TEST(FleetTest, WheelAndListFleetsAreBitIdentical) {
  FleetOptions opt = SmallFleet();
  opt.timer_queue = TimerQueueImpl::kWheel;
  FleetResult wheel = RunFleet(opt);
  opt.timer_queue = TimerQueueImpl::kSortedList;
  FleetResult list = RunFleet(opt);
  ASSERT_EQ(wheel.nodes.size(), list.nodes.size());
  for (size_t i = 0; i < wheel.nodes.size(); ++i) {
    EXPECT_EQ(wheel.nodes[i].trace_digest, list.nodes[i].trace_digest) << "node " << i;
    EXPECT_EQ(wheel.nodes[i].events, list.nodes[i].events) << "node " << i;
  }
  EXPECT_EQ(wheel.fleet_digest, list.fleet_digest);
  EXPECT_EQ(wheel.events_total, list.events_total);
}

// The acceptance bar: >= 1000 concurrent kernel instances in one process.
// A small trace ring bounds memory; the oracles are truncation-aware.
TEST(FleetTest, SustainsAThousandInstances) {
  FleetOptions opt;
  opt.instances = 1000;
  opt.workers = 8;
  opt.seed = 7;
  opt.run_duration = Milliseconds(5);
  opt.slice = Milliseconds(1);
  opt.trace_capacity = 2048;
  FleetResult result = RunFleet(opt);
  ASSERT_EQ(result.nodes.size(), 1000u);
  EXPECT_EQ(result.nodes_failed, 0) << [&] {
    for (const NodeResult& node : result.nodes) {
      if (!node.ok()) {
        return node.failure;
      }
    }
    return std::string();
  }();
  EXPECT_GT(result.events_total, 0u);
  for (const NodeResult& node : result.nodes) {
    EXPECT_GE(node.virtual_time, Milliseconds(5));
  }
}

// --- Streaming timeseries + alerting plane ---

void ExpectWindowsEqual(const std::vector<obs::TelemetryWindow>& a,
                        const std::vector<obs::TelemetryWindow>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index) << what << " window " << i;
    EXPECT_EQ(a[i].start, b[i].start) << what << " window " << i;
    EXPECT_EQ(a[i].end, b[i].end) << what << " window " << i;
    EXPECT_EQ(a[i].gap, b[i].gap) << what << " window " << i;
    EXPECT_EQ(a[i].samples, b[i].samples) << what << " window " << i;
    EXPECT_EQ(a[i].jobs_completed, b[i].jobs_completed) << what << " window " << i;
    EXPECT_EQ(a[i].deadline_misses, b[i].deadline_misses) << what << " window " << i;
    EXPECT_EQ(a[i].context_switches, b[i].context_switches) << what << " window " << i;
    EXPECT_EQ(a[i].chain_e2e_completed, b[i].chain_e2e_completed) << what << " window " << i;
    EXPECT_EQ(a[i].chain_e2e_overruns, b[i].chain_e2e_overruns) << what << " window " << i;
    EXPECT_EQ(a[i].response.count(), b[i].response.count()) << what << " window " << i;
    EXPECT_EQ(a[i].response.total(), b[i].response.total()) << what << " window " << i;
  }
}

void ExpectAlertsEqual(const std::vector<obs::AlertEvent>& a,
                       const std::vector<obs::AlertEvent>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i] == b[i]) << what << " event " << i;
  }
}

// The streaming plane drains snapshot rings at slice boundaries while the
// fleet runs — still a pure host-side read, so the digest must be
// bit-identical with it on or off, at any worker count.
TEST(FleetTest, StreamingCollectionNeverPerturbsTheDigest) {
  FleetOptions opt = SmallFleet();
  opt.timeseries = false;
  opt.alerts = false;
  FleetResult off = RunFleet(opt);
  EXPECT_TRUE(off.windows.empty());
  EXPECT_TRUE(off.alerts.empty());

  opt.timeseries = true;
  opt.alerts = true;
  for (int workers : {1, 2, 8}) {
    opt.workers = workers;
    FleetResult on = RunFleet(opt);
    EXPECT_EQ(on.fleet_digest, off.fleet_digest) << workers << " workers";
    EXPECT_EQ(on.events_total, off.events_total) << workers << " workers";
    ASSERT_FALSE(on.windows.empty()) << workers << " workers";
    EXPECT_EQ(on.timeseries_lost_samples, 0u) << workers << " workers";
    // Fleet-level telescoping: the merged window deltas reproduce the run
    // totals exactly.
    uint64_t jobs = 0;
    uint64_t misses = 0;
    for (const obs::TelemetryWindow& w : on.windows) {
      jobs += w.jobs_completed;
      misses += w.deadline_misses;
    }
    EXPECT_EQ(jobs, on.jobs_completed) << workers << " workers";
    EXPECT_EQ(misses, on.deadline_misses) << workers << " workers";
  }
}

// The alert stream and window series are exact functions of the simulated
// outcome: bit-identical across worker counts and repeat runs.
TEST(FleetTest, WindowSeriesAndAlertStreamAreBitIdentical) {
  FleetOptions opt = SmallFleet();
  opt.overload_node = 3;  // give the stream something to say
  opt.overload_factor = 8;
  FleetResult first = RunFleet(opt);
  FleetResult repeat = RunFleet(opt);
  ExpectWindowsEqual(first.windows, repeat.windows, "repeat");
  ExpectAlertsEqual(first.alerts, repeat.alerts, "repeat");

  for (int workers : {1, 8}) {
    opt.workers = workers;
    FleetResult other = RunFleet(opt);
    ExpectWindowsEqual(first.windows, other.windows, "workers");
    ExpectAlertsEqual(first.alerts, other.alerts, "workers");
    for (size_t i = 0; i < first.nodes.size(); ++i) {
      ExpectAlertsEqual(first.nodes[i].alerts, other.nodes[i].alerts, "node alerts");
    }
  }
}

// A healthy fleet fires nothing: zero deadline misses means the miss-burn
// rule (the sensitive one) has no fuel, and the chain-burn budget is set
// wide of the normal overrun share.
TEST(FleetTest, QuietFleetFiresNoAlerts) {
  FleetResult result = RunFleet(SmallFleet());
  EXPECT_EQ(result.deadline_misses, 0u);
  EXPECT_EQ(result.alerts_fired, 0u);
  EXPECT_TRUE(result.alerts.empty());
}

// The acceptance scenario: one overloaded node must push the miss-burn rule
// over within a bounded number of windows, be flagged anomalous for it, and
// get a black-box bundle.
TEST(FleetTest, OverloadedNodeFiresMissBurnAndGetsBlackBoxed) {
  std::string dir = testing::TempDir() + "emeralds_alerts_test";
  std::filesystem::remove_all(dir);
  FleetOptions opt = SmallFleet();
  opt.overload_node = 3;
  opt.overload_factor = 8;
  opt.artifacts_dir = dir;
  opt.max_blackboxes = 2;
  FleetResult result = RunFleet(opt);

  bool miss_burn_fired = false;
  int64_t first_window = -1;
  for (const obs::AlertEvent& e : result.alerts) {
    if (e.rule == obs::AlertRuleKind::kDeadlineMissBurn && e.firing) {
      EXPECT_EQ(e.node, 3);  // only the sick node burns
      if (!miss_burn_fired) {
        first_window = e.window;
      }
      miss_burn_fired = true;
    }
  }
  ASSERT_TRUE(miss_burn_fired);
  // Bounded detection latency: the burn must be caught within the first
  // fast+slow history, not eventually. 50 ms run / 10 ms windows = 5.
  EXPECT_LE(first_window, 4);
  EXPECT_GT(result.alerts_fired, 0u);

  // Alert -> anomaly -> black box: the firing alert marks the node
  // anomalous, which routes it into the flight recorder.
  EXPECT_TRUE(result.nodes[3].anomalous());
  bool boxed = false;
  for (int node : result.blackbox_nodes) {
    boxed = boxed || node == 3;
  }
  EXPECT_TRUE(boxed);
  std::filesystem::remove_all(dir);
}

// Drill-down must reproduce the streaming plane exactly: InspectNode
// replays the slice schedule, so its windows and node-local alerts are
// bit-identical to what the fleet run recorded for that node.
TEST(FleetTest, InspectNodeReproducesWindowsAndAlerts) {
  FleetOptions opt = SmallFleet();
  opt.overload_node = 5;
  opt.overload_factor = 8;
  FleetResult fleet = RunFleet(opt);
  for (int index : {0, 5}) {
    NodeResult replay = InspectNode(opt, index, nullptr);
    ExpectWindowsEqual(fleet.nodes[index].windows, replay.windows, "inspect windows");
    ExpectAlertsEqual(fleet.nodes[index].alerts, replay.alerts, "inspect alerts");
  }
}

// --- OpenMetrics exposition ---

TEST(OpenMetricsTest, ExpositionRoundTripsTheValidator) {
  FleetOptions opt = SmallFleet();
  opt.overload_node = 3;  // non-trivial alert state in the exposition
  opt.overload_factor = 8;
  FleetResult result = RunFleet(opt);
  std::string text = BuildOpenMetricsExposition(result);
  std::string error;
  int families = 0;
  EXPECT_TRUE(ValidateOpenMetrics(text, &error, &families)) << error;
  EXPECT_GT(families, 10);
  EXPECT_NE(text.find("# TYPE emeralds_jobs_completed counter"), std::string::npos);
  EXPECT_NE(text.find("emeralds_response_us_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("emeralds_alert_events_total{rule=\"deadline_miss_burn\"}"),
            std::string::npos);
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
}

TEST(OpenMetricsTest, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(ValidateOpenMetrics("emeralds_x 1\n# EOF\n", &error));  // no TYPE
  EXPECT_NE(error.find("no TYPE"), std::string::npos);
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE a gauge\na 1\n", &error));  // no EOF
  EXPECT_NE(error.find("EOF"), std::string::npos);
  EXPECT_FALSE(ValidateOpenMetrics("# TYPE a gauge\na 1\n# EOF\nx 2\n", &error));
  EXPECT_FALSE(ValidateOpenMetrics(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n# EOF\n", &error));
  EXPECT_NE(error.find("+Inf"), std::string::npos);
  EXPECT_TRUE(ValidateOpenMetrics(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 4\n# EOF\n", &error))
      << error;
}

TEST(FleetReportTest, ReportCarriesSchemaAndGatedFields) {
  FleetOptions opt = SmallFleet();
  FleetResult result = RunFleet(opt);
  FleetRunInfo info;
  info.label = "fleet_test";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  std::vector<TimerBenchPoint> timers(1);
  timers[0].pending = 10000;
  timers[0].wheel_arm_ns = 10;
  timers[0].wheel_cancel_ns = 10;
  timers[0].wheel_service_ns = 10;
  timers[0].list_arm_ns = 300;
  timers[0].list_cancel_ns = 150;
  timers[0].list_service_ns = 150;
  std::string report = BuildFleetRunReport(info, result, timers);
  EXPECT_NE(report.find("\"schema\":\"emeralds.fleet.run/1\""), std::string::npos);
  EXPECT_NE(report.find("\"events_per_virtual_sec\":"), std::string::npos);
  EXPECT_NE(report.find("\"fleet_digest\":\"0x"), std::string::npos);
  EXPECT_NE(report.find("\"timer_queue\":\"wheel\""), std::string::npos);
  EXPECT_NE(report.find("\"nodes_failed\":0"), std::string::npos);
  EXPECT_NE(report.find("\"speedup_10k\":20"), std::string::npos);
  EXPECT_NE(report.find("\"schedulers\":{"), std::string::npos);
  EXPECT_NE(report.find("\"timeseries\":{"), std::string::npos);
  EXPECT_NE(report.find("\"schema\":\"emeralds.obs.timeseries/1\""), std::string::npos);
  EXPECT_NE(report.find("\"alerts\":{"), std::string::npos);
  EXPECT_EQ(report.find("\"first_failure\""), std::string::npos);
}

TEST(FleetReportTest, TimersSectionIsOptional) {
  FleetOptions opt = SmallFleet();
  opt.instances = 4;
  FleetResult result = RunFleet(opt);
  FleetRunInfo info;
  info.label = "no_timers";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  std::string report = BuildFleetRunReport(info, result, {});
  EXPECT_EQ(report.find("\"timers\""), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace emeralds
