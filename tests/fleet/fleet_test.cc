#include "src/fleet/fleet.h"

#include <gtest/gtest.h>

#include "src/fleet/fleet_report.h"

namespace emeralds {
namespace fleet {
namespace {

FleetOptions SmallFleet() {
  FleetOptions opt;
  opt.instances = 8;
  opt.workers = 4;
  opt.seed = 42;
  opt.run_duration = Milliseconds(50);
  opt.slice = Milliseconds(5);
  return opt;
}

TEST(FleetTest, AllNodesPassOracles) {
  FleetResult result = RunFleet(SmallFleet());
  ASSERT_EQ(result.nodes.size(), 8u);
  for (const NodeResult& node : result.nodes) {
    EXPECT_TRUE(node.ok()) << node.scheduler << ": " << node.failure;
    EXPECT_GT(node.events, 0u);
    EXPECT_GT(node.jobs_completed, 0u);
    EXPECT_GT(node.timer_dispatches, 0u);
    // RunUntil overshoots the horizon by the in-flight charge granularity.
    EXPECT_GE(node.virtual_time, Milliseconds(50));
    EXPECT_LT(node.virtual_time, Milliseconds(51));
  }
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.nodes_failed, 0);
  EXPECT_EQ(result.workers, 4);
}

TEST(FleetTest, AggregatesSumTheNodes) {
  FleetResult result = RunFleet(SmallFleet());
  uint64_t events = 0;
  uint64_t jobs = 0;
  Duration virtual_time;
  for (const NodeResult& node : result.nodes) {
    events += node.events;
    jobs += node.jobs_completed;
    virtual_time = virtual_time + node.virtual_time;
  }
  EXPECT_EQ(result.events_total, events);
  EXPECT_EQ(result.jobs_completed, jobs);
  EXPECT_EQ(result.virtual_time_total, virtual_time);
  EXPECT_GT(result.events_per_virtual_sec, 0.0);
  EXPECT_GT(result.arena_high_water, 0u);
}

TEST(FleetTest, CoversAllFourSchedulerVariants) {
  FleetResult result = RunFleet(SmallFleet());
  int edf = 0;
  int rm = 0;
  int csd2 = 0;
  int csd3 = 0;
  for (const NodeResult& node : result.nodes) {
    edf += node.scheduler == "EDF" ? 1 : 0;
    rm += node.scheduler == "RM" ? 1 : 0;
    csd2 += node.scheduler == "CSD-2" ? 1 : 0;
    csd3 += node.scheduler == "CSD-3" ? 1 : 0;
  }
  EXPECT_EQ(edf, 2);
  EXPECT_EQ(rm, 2);
  EXPECT_EQ(csd2, 2);
  EXPECT_EQ(csd3, 2);
}

// The determinism contract: host scheduling must not leak into simulated
// outcomes, so the digest is identical across repeated runs AND across
// worker counts (1 worker serializes everything; 8 maximizes stealing).
TEST(FleetTest, DigestIsStableAcrossRunsAndWorkerCounts) {
  FleetOptions opt = SmallFleet();
  FleetResult first = RunFleet(opt);
  FleetResult second = RunFleet(opt);
  EXPECT_EQ(first.fleet_digest, second.fleet_digest);
  EXPECT_EQ(first.events_total, second.events_total);

  opt.workers = 1;
  FleetResult serial = RunFleet(opt);
  opt.workers = 8;
  FleetResult wide = RunFleet(opt);
  EXPECT_EQ(serial.fleet_digest, first.fleet_digest);
  EXPECT_EQ(wide.fleet_digest, first.fleet_digest);
  for (size_t i = 0; i < first.nodes.size(); ++i) {
    EXPECT_EQ(serial.nodes[i].trace_digest, first.nodes[i].trace_digest) << "node " << i;
  }
}

// Telemetry collection is a pure host-side read after each node's virtual
// horizon: digests must be bit-identical with it on or off, and — with it
// on — across worker counts. This is the zero-virtual-cost guarantee the
// telemetry plane is built on.
TEST(FleetTest, TelemetryCollectionNeverPerturbsTheDigest) {
  FleetOptions opt = SmallFleet();
  opt.telemetry = false;
  FleetResult off = RunFleet(opt);
  EXPECT_EQ(off.telemetry.nodes_collected, 0);

  opt.telemetry = true;
  for (int workers : {1, 2, 8}) {
    opt.workers = workers;
    FleetResult on = RunFleet(opt);
    EXPECT_EQ(on.fleet_digest, off.fleet_digest) << workers << " workers";
    EXPECT_EQ(on.events_total, off.events_total) << workers << " workers";
    EXPECT_EQ(on.telemetry.nodes_collected, opt.instances) << workers << " workers";
    EXPECT_EQ(on.telemetry.jobs_completed, on.jobs_completed) << workers << " workers";
    EXPECT_GT(on.telemetry.response.count(), 0u) << workers << " workers";
    // The merged percentile tables are themselves deterministic.
    EXPECT_EQ(on.telemetry.response.PercentileBound(0.99),
              RunFleet(opt).telemetry.response.PercentileBound(0.99))
        << workers << " workers";
  }
}

// Different seeds must actually change the workloads.
TEST(FleetTest, SeedChangesTheFleet) {
  FleetOptions opt = SmallFleet();
  FleetResult a = RunFleet(opt);
  opt.seed = 43;
  FleetResult b = RunFleet(opt);
  EXPECT_NE(a.fleet_digest, b.fleet_digest);
}

// The wheel and the reference sorted list must produce bit-identical fleets:
// the timer queue is a pure fast path, invisible to every simulated outcome.
TEST(FleetTest, WheelAndListFleetsAreBitIdentical) {
  FleetOptions opt = SmallFleet();
  opt.timer_queue = TimerQueueImpl::kWheel;
  FleetResult wheel = RunFleet(opt);
  opt.timer_queue = TimerQueueImpl::kSortedList;
  FleetResult list = RunFleet(opt);
  ASSERT_EQ(wheel.nodes.size(), list.nodes.size());
  for (size_t i = 0; i < wheel.nodes.size(); ++i) {
    EXPECT_EQ(wheel.nodes[i].trace_digest, list.nodes[i].trace_digest) << "node " << i;
    EXPECT_EQ(wheel.nodes[i].events, list.nodes[i].events) << "node " << i;
  }
  EXPECT_EQ(wheel.fleet_digest, list.fleet_digest);
  EXPECT_EQ(wheel.events_total, list.events_total);
}

// The acceptance bar: >= 1000 concurrent kernel instances in one process.
// A small trace ring bounds memory; the oracles are truncation-aware.
TEST(FleetTest, SustainsAThousandInstances) {
  FleetOptions opt;
  opt.instances = 1000;
  opt.workers = 8;
  opt.seed = 7;
  opt.run_duration = Milliseconds(5);
  opt.slice = Milliseconds(1);
  opt.trace_capacity = 2048;
  FleetResult result = RunFleet(opt);
  ASSERT_EQ(result.nodes.size(), 1000u);
  EXPECT_EQ(result.nodes_failed, 0) << [&] {
    for (const NodeResult& node : result.nodes) {
      if (!node.ok()) {
        return node.failure;
      }
    }
    return std::string();
  }();
  EXPECT_GT(result.events_total, 0u);
  for (const NodeResult& node : result.nodes) {
    EXPECT_GE(node.virtual_time, Milliseconds(5));
  }
}

TEST(FleetReportTest, ReportCarriesSchemaAndGatedFields) {
  FleetOptions opt = SmallFleet();
  FleetResult result = RunFleet(opt);
  FleetRunInfo info;
  info.label = "fleet_test";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  std::vector<TimerBenchPoint> timers(1);
  timers[0].pending = 10000;
  timers[0].wheel_arm_ns = 10;
  timers[0].wheel_cancel_ns = 10;
  timers[0].wheel_service_ns = 10;
  timers[0].list_arm_ns = 300;
  timers[0].list_cancel_ns = 150;
  timers[0].list_service_ns = 150;
  std::string report = BuildFleetRunReport(info, result, timers);
  EXPECT_NE(report.find("\"schema\":\"emeralds.fleet.run/1\""), std::string::npos);
  EXPECT_NE(report.find("\"events_per_virtual_sec\":"), std::string::npos);
  EXPECT_NE(report.find("\"fleet_digest\":\"0x"), std::string::npos);
  EXPECT_NE(report.find("\"timer_queue\":\"wheel\""), std::string::npos);
  EXPECT_NE(report.find("\"nodes_failed\":0"), std::string::npos);
  EXPECT_NE(report.find("\"speedup_10k\":20"), std::string::npos);
  EXPECT_NE(report.find("\"schedulers\":{"), std::string::npos);
  EXPECT_EQ(report.find("\"first_failure\""), std::string::npos);
}

TEST(FleetReportTest, TimersSectionIsOptional) {
  FleetOptions opt = SmallFleet();
  opt.instances = 4;
  FleetResult result = RunFleet(opt);
  FleetRunInfo info;
  info.label = "no_timers";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  std::string report = BuildFleetRunReport(info, result, {});
  EXPECT_EQ(report.find("\"timers\""), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace emeralds
