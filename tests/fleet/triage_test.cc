// Fleet anomaly-triage and black-box flight-recorder tests: inject one
// deliberately overloaded node into a fleet and require the triage plane to
// find it, the flight recorder to bundle it, and the bundle to round-trip
// through the standard inspection tooling.

#include "src/fleet/triage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/base/json.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_report.h"
#include "src/obs/blackbox.h"
#include "src/obs/json_writer.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/trace_csv.h"

namespace emeralds {
namespace fleet {
namespace {

constexpr int kSickNode = 5;

FleetOptions OverloadedFleet(const std::string& artifacts_dir) {
  FleetOptions opt;
  opt.instances = 64;
  opt.workers = 8;
  opt.seed = 1;
  opt.run_duration = Milliseconds(30);
  opt.slice = Milliseconds(5);
  opt.overload_node = kSickNode;
  opt.overload_factor = 8;
  opt.artifacts_dir = artifacts_dir;
  opt.max_blackboxes = 2;
  return opt;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return text;
}

TEST(FleetTriageTest, OverloadedNodeIsTheTopOutlierAndGetsABlackBox) {
  std::string dir = testing::TempDir() + "emeralds_triage_test";
  std::filesystem::remove_all(dir);
  FleetOptions opt = OverloadedFleet(dir);
  FleetResult result = RunFleet(opt);

  // The overload multiplies compute costs only: every other node must be
  // bit-identical to the un-overloaded fleet (the Rng streams are shared).
  FleetOptions clean = opt;
  clean.overload_node = -1;
  clean.artifacts_dir.clear();
  FleetResult baseline = RunFleet(clean);
  ASSERT_EQ(result.nodes.size(), baseline.nodes.size());
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    if (static_cast<int>(i) == kSickNode) {
      EXPECT_NE(result.nodes[i].trace_digest, baseline.nodes[i].trace_digest);
    } else {
      EXPECT_EQ(result.nodes[i].trace_digest, baseline.nodes[i].trace_digest)
          << "node " << i << " perturbed by another node's overload";
    }
  }

  // The sick node misses deadlines the healthy fleet never does, so it owns
  // the top anomaly score and the deadline_misses outlier flag.
  const NodeResult& sick = result.nodes[kSickNode];
  EXPECT_GT(sick.deadline_misses, 0u);
  EXPECT_TRUE(sick.anomalous());
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    if (static_cast<int>(i) != kSickNode) {
      EXPECT_LT(result.nodes[i].anomaly_score, sick.anomaly_score) << "node " << i;
    }
  }

  FleetTriage triage = ComputeFleetTriage(result);
  ASSERT_FALSE(triage.outlier_nodes.empty());
  EXPECT_EQ(triage.outlier_nodes[0], kSickNode);
  bool found_misses_metric = false;
  for (const TriageMetric& m : triage.metrics) {
    if (m.name == "deadline_misses") {
      found_misses_metric = true;
      ASSERT_FALSE(m.top.empty());
      EXPECT_EQ(m.top[0].node, kSickNode);
      EXPECT_TRUE(m.top[0].outlier);
      EXPECT_GE(m.outliers, 1);
    }
  }
  EXPECT_TRUE(found_misses_metric);

  // The flight recorder bundled the worst node first.
  ASSERT_FALSE(result.blackbox_nodes.empty());
  EXPECT_EQ(result.blackbox_nodes[0], kSickNode);
  std::string bundle = dir + "/node-" + std::to_string(kSickNode);
  EXPECT_TRUE(std::filesystem::exists(bundle + "/repro.txt"));
  EXPECT_TRUE(std::filesystem::exists(bundle + "/trace.csv"));
  ASSERT_TRUE(std::filesystem::exists(bundle + "/blackbox.json"));

  // blackbox.json parses and carries the schema plus the repro command.
  JsonValue box;
  std::string error;
  ASSERT_TRUE(JsonParse(ReadFile(bundle + "/blackbox.json"), &box, &error)) << error;
  ASSERT_NE(box.Find("schema"), nullptr);
  EXPECT_EQ(box.Find("schema")->string, "emeralds.obs.blackbox/1");
  ASSERT_NE(box.Find("repro"), nullptr);
  EXPECT_NE(box.Find("repro")->string.find("--node=5"), std::string::npos);

  // trace.csv round-trips through the standard CSV importer.
  std::FILE* cf = std::fopen((bundle + "/trace.csv").c_str(), "r");
  ASSERT_NE(cf, nullptr);
  obs::TraceCsvImport import;
  ASSERT_TRUE(obs::ImportTraceCsv(cf, &import, &error)) << error;
  std::fclose(cf);
  EXPECT_GT(import.events.size(), 0u);

  // The report surfaces the triage and black-box sections.
  FleetRunInfo info;
  info.label = "triage_test";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  std::string report = BuildFleetRunReport(info, result, {});
  EXPECT_NE(report.find("\"triage\":"), std::string::npos);
  EXPECT_NE(report.find("\"outlier_nodes\":[5"), std::string::npos);
  EXPECT_NE(report.find("\"blackboxes\":[{\"node\":5"), std::string::npos);
  EXPECT_NE(report.find("\"schema\":\"emeralds.fleet.telemetry/1\""), std::string::npos);

  std::filesystem::remove_all(dir);
}

// InspectNode replays one node bit-identically and its window exports as
// valid Perfetto JSON with node-scoped ids (the fleet_inspect --node path).
TEST(FleetTriageTest, InspectNodeReplaysAndExportsPerfetto) {
  FleetOptions opt = OverloadedFleet("");
  opt.artifacts_dir.clear();
  FleetResult fleet = RunFleet(opt);

  std::string perfetto_path = testing::TempDir() + "emeralds_triage_node.perfetto.json";
  NodeResult replay = InspectNode(opt, kSickNode, [&](const Kernel& kernel,
                                                      const NodeResult& r) {
    obs::BlackBoxSnapshot box = obs::CaptureBlackBox(kernel, "node-5", r.anomaly,
                                                     NodeReproCommand(opt, kSickNode));
    obs::PerfettoExportOptions po;
    po.process_name = "node-5";
    po.pid = kSickNode + 1;
    po.thread_names = box.thread_names;
    po.dropped_events = box.dropped;
    std::FILE* out = std::fopen(perfetto_path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    size_t entries = obs::ExportPerfettoJson(box.window.data(), box.window.size(), po, out);
    std::fclose(out);
    EXPECT_GT(entries, 0u);
  });
  EXPECT_EQ(replay.trace_digest, fleet.nodes[kSickNode].trace_digest);
  EXPECT_EQ(replay.deadline_misses, fleet.nodes[kSickNode].deadline_misses);

  std::string text = ReadFile(perfetto_path);
  ASSERT_FALSE(text.empty());
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &doc, &error)) << error;
  // Node-scoped ids: every async span id carries the "p6." prefix.
  EXPECT_NE(text.find("\"pid\":6"), std::string::npos);
  EXPECT_NE(text.find("p6.job"), std::string::npos);
  EXPECT_NE(text.find("\"node-5\""), std::string::npos);
  std::filesystem::remove(perfetto_path);
}

}  // namespace
}  // namespace fleet
}  // namespace emeralds
