// Golden equivalence: the optimized CSD partition-search engine
// (CsdEvaluator: prefix-sum tables, memoized scale intervals, lower-bound and
// exact-stage pruning) must be indistinguishable from the retained naive
// reference (a fresh CsdFeasible per query) — same winning partitions, same
// breakdown utilizations — while doing an order of magnitude fewer full
// schedulability tests.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/breakdown.h"
#include "src/analysis/csd_evaluator.h"
#include "src/analysis/sched_test.h"
#include "src/base/rng.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

TaskSet FigureWorkload(int n, int divide, int w) {
  // The breakdown harness's exact seeding, so these assertions cover the
  // workloads the benchmarks report on.
  Rng root(20260704);
  Rng rng = root.Fork(static_cast<uint64_t>(n) * 10000 + divide * 1000 + w);
  return GenerateWorkload(rng, n).PeriodsDividedBy(divide);
}

// Optimized and reference searches over 30 seeded workloads spanning
// n = 5..50, divides 1 and 3, and CSD-2/3/4 must agree on the result.
TEST(GoldenEquivalence, BreakdownMatchesReferenceAcrossWorkloads) {
  const CostModel cost = CostModel::MC68040_25MHz();
  const BreakdownOptions options;
  int checked = 0;
  for (int divide : {1, 3}) {
    for (int n = 5; n <= 50; n += 15) {  // 5, 20, 35, 50
      int workloads = n == 50 ? 1 : 3;
      for (int w = 0; w < workloads; ++w) {
        TaskSet set = FigureWorkload(n, divide, w);
        for (int queues : {2, 3, 4}) {
          SCOPED_TRACE(testing::Message() << "n=" << n << " divide=" << divide << " w=" << w
                                          << " queues=" << queues);
          BreakdownResult opt = ComputeBreakdown(set, PolicySpec::Csd(queues), cost, options);
          BreakdownResult ref =
              ComputeBreakdownReference(set, PolicySpec::Csd(queues), cost, options);
          EXPECT_NEAR(opt.utilization, ref.utilization, options.precision);
          EXPECT_EQ(opt.partition, ref.partition);
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(checked, 20 * 3);
}

// The CSD-3-seeded CSD-4 search (as the harness runs it) must also match the
// unseeded reference: both derive the same seed partition, so the hill climbs
// walk the same path.
TEST(GoldenEquivalence, SeededCsd4MatchesUnseededReference) {
  const CostModel cost = CostModel::MC68040_25MHz();
  for (int w = 0; w < 3; ++w) {
    TaskSet set = FigureWorkload(25, 1, w);
    SCOPED_TRACE(testing::Message() << "w=" << w);
    BreakdownOptions options;
    BreakdownResult csd3 = ComputeBreakdown(set, PolicySpec::Csd(3), cost, options);
    options.csd_seed = &csd3;
    BreakdownResult opt = ComputeBreakdown(set, PolicySpec::Csd(4), cost, options);
    BreakdownResult ref = ComputeBreakdownReference(set, PolicySpec::Csd(4), cost, {});
    EXPECT_NEAR(opt.utilization, ref.utilization, 0.002);
    EXPECT_EQ(opt.partition, ref.partition);
  }
}

// Pointwise: every CsdEvaluator::Feasible answer equals a fresh CsdFeasible,
// across all CSD-3 partitions of a 12-task set and a ladder of scales —
// including repeat queries, which the memo must answer consistently.
TEST(GoldenEquivalence, EvaluatorFeasibleMatchesCsdFeasiblePointwise) {
  const CostModel cost = CostModel::MC68040_25MHz();
  const OverheadModel model(cost);
  const int n = 12;
  TaskSet set = FigureWorkload(n, 1, 0);
  CsdSearchStats stats;
  CsdEvaluator eval(set, 3, model, &stats);
  for (double scale : {0.4, 0.8, 1.0, 1.1, 0.8}) {
    for (int q = 0; q <= n; ++q) {
      for (int r = q; r <= n; ++r) {
        std::vector<int> splits = {q, r};
        bool got = eval.Feasible(splits, scale);
        bool want = CsdFeasible(set, CsdSizesFromSplits(splits, n), scale, model);
        ASSERT_EQ(got, want) << "q=" << q << " r=" << r << " scale=" << scale;
      }
    }
  }
  EXPECT_GT(stats.cache_hits, 0);  // the repeated 0.8 pass must hit the memo
}

// A partition the evaluator prunes must be one the full test rejects: pruning
// soundness, probed at the scales the breakdown search would use.
TEST(GoldenEquivalence, PrunedPartitionsAreInfeasible) {
  const CostModel cost = CostModel::MC68040_25MHz();
  const OverheadModel model(cost);
  const int n = 20;
  TaskSet set = FigureWorkload(n, 3, 0);
  CsdSearchStats stats;
  CsdEvaluator eval(set, 3, model, &stats);
  int pruned = 0;
  for (double scale : {0.9, 1.0, 1.05}) {
    for (int q = 0; q <= n; ++q) {
      for (int r = q; r <= n; ++r) {
        std::vector<int> splits = {q, r};
        if (eval.ProvablyInfeasible(splits, scale)) {
          ++pruned;
          EXPECT_FALSE(CsdFeasible(set, CsdSizesFromSplits(splits, n), scale, model))
              << "q=" << q << " r=" << r << " scale=" << scale;
        }
      }
    }
  }
  EXPECT_GT(pruned, 0);  // the bound must actually fire at these scales
}

// The tentpole criterion: on the Figure 3 sweep at n = 50, the optimized
// engine (CSD-4 seeded from CSD-3, as the harness runs it) does >= 10x fewer
// full schedulability tests than the naive baseline.
TEST(GoldenEquivalence, TenfoldFewerEvaluationsAtN50) {
  const CostModel cost = CostModel::MC68040_25MHz();
  TaskSet set = FigureWorkload(50, 1, 0);

  CsdSearchStats opt_stats;
  BreakdownOptions opt_options;
  opt_options.stats = &opt_stats;
  BreakdownResult csd3;
  for (int queues : {2, 3, 4}) {
    BreakdownOptions o = opt_options;
    if (queues == 4) {
      o.csd_seed = &csd3;
    }
    BreakdownResult result = ComputeBreakdown(set, PolicySpec::Csd(queues), cost, o);
    if (queues == 3) {
      csd3 = result;
    }
  }

  CsdSearchStats ref_stats;
  BreakdownOptions ref_options;
  ref_options.stats = &ref_stats;
  for (int queues : {2, 3, 4}) {
    ComputeBreakdownReference(set, PolicySpec::Csd(queues), cost, ref_options);
  }

  ASSERT_GT(opt_stats.full_evals, 0);
  EXPECT_GE(ref_stats.full_evals, 10 * opt_stats.full_evals)
      << "optimized=" << opt_stats.full_evals << " naive=" << ref_stats.full_evals;
}

// Regression for BestCsdPartition's once-ignored `exhaustive` parameter: with
// exhaustive == false and queues >= 4 the seeded hill climb must return a
// feasible allocation while evaluating far fewer tuples than the
// enumeration.
TEST(GoldenEquivalence, BestCsdPartitionHillClimbHonorsExhaustiveFlag) {
  const CostModel cost = CostModel::MC68040_25MHz();
  const OverheadModel model(cost);
  const int n = 12;
  TaskSet set = FigureWorkload(n, 1, 1);
  const double scale = 0.5;  // comfortably feasible

  CsdSearchStats exhaustive_stats;
  std::vector<int> full =
      BestCsdPartition(set, 4, scale, cost, /*exhaustive=*/true, &exhaustive_stats);
  ASSERT_FALSE(full.empty());
  EXPECT_TRUE(CsdFeasible(set, full, scale, model));

  CsdSearchStats climb_stats;
  std::vector<int> climbed =
      BestCsdPartition(set, 4, scale, cost, /*exhaustive=*/false, &climb_stats);
  ASSERT_FALSE(climbed.empty());
  EXPECT_TRUE(CsdFeasible(set, climbed, scale, model));

  // The climb (including its internal CSD-3 seeding search) must consider
  // well under half of what the full enumeration visits.
  EXPECT_LT(climb_stats.considered * 2, exhaustive_stats.considered)
      << "climb=" << climb_stats.considered << " exhaustive=" << exhaustive_stats.considered;
}

}  // namespace
}  // namespace emeralds
