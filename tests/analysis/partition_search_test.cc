// Properties of the off-line CSD allocation search (Section 5.5.3).

#include <gtest/gtest.h>

#include "src/analysis/breakdown.h"
#include "src/base/rng.h"

namespace emeralds {
namespace {

// The search maximizes over partitions, so its result can never be below the
// breakdown of any specific partition we evaluate directly.
TEST(PartitionSearchTest, SearchDominatesFixedPartitions) {
  Rng rng(71);
  CostModel cost = CostModel::MC68040_25MHz();
  OverheadModel model(cost);
  for (int trial = 0; trial < 5; ++trial) {
    Rng t = rng.Fork(trial);
    TaskSet set = GenerateWorkload(t, 20).PeriodsDividedBy(2);
    BreakdownResult best = ComputeBreakdown(set, PolicySpec::Csd(2), cost);
    double raw = set.Utilization();
    for (int r = 0; r <= 20; r += 4) {
      // Bisect the fixed partition {r, n-r}.
      double lo = 0.0;
      double hi = 1.02 / raw;
      for (int iter = 0; iter < 24; ++iter) {
        double mid = 0.5 * (lo + hi);
        if (CsdFeasible(set, {r, 20 - r}, mid, model)) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      EXPECT_GE(best.utilization + 0.005, lo * raw) << "r=" << r;
    }
  }
}

// The winning partition itself must be feasible just below the reported
// breakdown and infeasible just above it.
TEST(PartitionSearchTest, ReportedPartitionIsTightAtBreakdown) {
  Rng rng(72);
  CostModel cost = CostModel::MC68040_25MHz();
  OverheadModel model(cost);
  for (int trial = 0; trial < 5; ++trial) {
    Rng t = rng.Fork(trial);
    TaskSet set = GenerateWorkload(t, 15).PeriodsDividedBy(3);
    BreakdownResult best = ComputeBreakdown(set, PolicySpec::Csd(3), cost);
    ASSERT_EQ(best.partition.size(), 3u);
    double raw = set.Utilization();
    EXPECT_TRUE(CsdFeasible(set, best.partition, (best.utilization - 0.01) / raw, model));
    // Some OTHER partition may admit a bit more, but the search maximum means
    // none should beat it by more than the bisection precision.
    EXPECT_FALSE(CsdFeasible(set, best.partition, (best.utilization + 0.01) / raw, model));
  }
}

// CSD-2 with everything in the DP queue equals EDF up to the queue-parse
// overhead; with everything in FP it equals RM.
TEST(PartitionSearchTest, DegenerateParititionsBracketPureSchedulers) {
  Rng rng(73);
  CostModel cost = CostModel::MC68040_25MHz();
  OverheadModel model(cost);
  TaskSet set = GenerateWorkload(rng, 12);
  double raw = set.Utilization();
  double edf = ComputeBreakdown(set, PolicySpec::Edf(), cost).utilization;
  double rm = ComputeBreakdown(set, PolicySpec::Rm(), cost).utilization;
  auto fixed_breakdown = [&](std::vector<int> sizes) {
    double lo = 0.0;
    double hi = 1.02 / raw;
    for (int iter = 0; iter < 24; ++iter) {
      double mid = 0.5 * (lo + hi);
      if (CsdFeasible(set, sizes, mid, model)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo * raw;
  };
  double all_dp = fixed_breakdown({12, 0});
  double all_fp = fixed_breakdown({0, 12});
  EXPECT_LE(all_dp, edf + 0.005);          // parse overhead only hurts
  EXPECT_GT(all_dp, edf - 0.03);           // ... and only slightly
  EXPECT_NEAR(all_fp, rm, 0.02);           // FP-only CSD-2 ~= RM (+parse)
}

// Zero-cost model: the best CSD partition achieves EDF's 100% (put
// everything in the DP queue; no parse cost to pay).
TEST(PartitionSearchTest, ZeroCostCsdReachesFullUtilization) {
  Rng rng(74);
  TaskSet set = GenerateWorkload(rng, 10);
  BreakdownResult result = ComputeBreakdown(set, PolicySpec::Csd(2), CostModel::Zero());
  EXPECT_NEAR(result.utilization, 1.0, 0.01);
}

// BestCsdPartition at a fixed scale prefers allocations with headroom: the
// returned partition must stay feasible at a slightly higher scale whenever
// any partition does.
TEST(PartitionSearchTest, BestPartitionHasHeadroom) {
  TaskSet set = Table2Workload();
  CostModel cost = CostModel::Zero();
  OverheadModel model(cost);
  std::vector<int> best = BestCsdPartition(set, 2, 1.0, cost);
  ASSERT_FALSE(best.empty());
  // The all-DP partition survives up to U = 1 (scale 1.127); the chosen one
  // must match that headroom within tolerance.
  EXPECT_TRUE(CsdFeasible(set, best, 1.10, model));
}

}  // namespace
}  // namespace emeralds
