// Schedulability analysis tests: the overhead model (Section 5.1 / Table 3),
// EDF/RM/CSD feasibility tests, and breakdown-utilization properties.

#include <gtest/gtest.h>

#include "src/analysis/breakdown.h"
#include "src/analysis/overhead.h"
#include "src/analysis/sched_test.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

OverheadModel ZeroModel() { return OverheadModel(CostModel::Zero()); }
OverheadModel M68kModel() { return OverheadModel(CostModel::MC68040_25MHz()); }

TEST(OverheadModelTest, EdfFormulaMatchesPaper) {
  OverheadModel model = M68kModel();
  // t = 1.5 (1.6 + 1.2 + 2 (1.2 + 0.25 n)); n = 20 -> 1.5 * 15.2 = 22.8 us.
  EXPECT_EQ(model.EdfTaskOverhead(20).nanos(), 22800);
}

TEST(OverheadModelTest, RmFormulaMatchesPaper) {
  OverheadModel model = M68kModel();
  // t = 1.5 (1.0 + 0.36 n + 1.4 + 2 * 0.6); n = 20 -> 1.5 * 10.8 = 16.2 us.
  EXPECT_EQ(model.RmTaskOverhead(20).nanos(), 16200);
}

TEST(OverheadModelTest, RmBeatsEdfForLargeN) {
  OverheadModel model = M68kModel();
  // t_b counts once vs t_s twice: RM pulls ahead as n grows (Section 5.1).
  EXPECT_GT(model.EdfTaskOverhead(30), model.RmTaskOverhead(30));
  EXPECT_GT(model.EdfTaskOverhead(50), model.RmTaskOverhead(50));
}

TEST(OverheadModelTest, HeapWorseThanListForModerateN) {
  OverheadModel model = M68kModel();
  // "Unless n is very large (58 in this case), the total run-time overhead
  // for a heap is more than for a queue."
  EXPECT_GT(model.RmTaskOverhead(30, /*heap=*/true), model.RmTaskOverhead(30, false));
  EXPECT_LT(model.RmTaskOverhead(80, /*heap=*/true), model.RmTaskOverhead(80, false));
}

TEST(OverheadModelTest, HeapListCrossoverNearPaperValue) {
  OverheadModel model = M68kModel();
  int crossover = 0;
  for (int n = 2; n <= 120; ++n) {
    if (model.RmTaskOverhead(n, true) < model.RmTaskOverhead(n, false)) {
      crossover = n;
      break;
    }
  }
  // The paper reports n = 58; the linear fits cross within a few tasks of it.
  EXPECT_NEAR(crossover, 58, 10);
}

TEST(OverheadModelTest, CsdDpOverheadBelowEdf) {
  OverheadModel model = M68kModel();
  // CSD-2 with the DP queue holding half the tasks: DP tasks parse a shorter
  // EDF queue than pure EDF's n-task queue.
  Duration csd_dp = model.CsdTaskOverhead({15}, 15, 0);
  Duration edf = model.EdfTaskOverhead(30);
  EXPECT_LT(csd_dp, edf);
}

TEST(OverheadModelTest, CsdQueueParseScalesWithX) {
  OverheadModel model = M68kModel();
  // Same queue shape, more queues: overhead strictly grows by the 0.55us
  // per-queue parse (charged on both selections).
  Duration csd2 = model.CsdTaskOverhead({10}, 10, 0);
  Duration csd3 = model.CsdTaskOverhead({10, 0}, 10, 0);
  EXPECT_GT(csd3, csd2);
}

TEST(SchedTestTest, EdfAcceptsUpToFullUtilization) {
  TaskSet set = Table2Workload();  // U = 0.887
  EXPECT_TRUE(EdfFeasible(set, 1.0, ZeroModel()));
  EXPECT_TRUE(EdfFeasible(set, 1.12, ZeroModel()));   // U ~= 0.99
  EXPECT_FALSE(EdfFeasible(set, 1.14, ZeroModel()));  // U > 1
}

TEST(SchedTestTest, RmRejectsTable2) {
  // The paper's point: Table 2 is feasible under EDF but not under RM, even
  // with zero overheads.
  TaskSet set = Table2Workload();
  EXPECT_FALSE(RmFeasible(set, 1.0, ZeroModel()));
  EXPECT_TRUE(EdfFeasible(set, 1.0, ZeroModel()));
}

TEST(SchedTestTest, RmAcceptsScaledDownTable2) {
  TaskSet set = Table2Workload();
  EXPECT_TRUE(RmFeasible(set, 0.8, ZeroModel()));
}

TEST(SchedTestTest, CsdAcceptsTable2WithDpPrefix) {
  // Placing tau_1..tau_5 in the DP queue (the paper's fix) makes the set
  // feasible; pure-FP CSD (r = 0) behaves like RM and rejects it.
  TaskSet set = Table2Workload();
  EXPECT_TRUE(CsdFeasible(set, {5, 5}, 1.0, ZeroModel()));
  EXPECT_FALSE(CsdFeasible(set, {0, 10}, 1.0, ZeroModel()));
}

TEST(SchedTestTest, CsdAllInDpEqualsEdf) {
  TaskSet set = Table2Workload();
  EXPECT_TRUE(CsdFeasible(set, {10, 0}, 1.12, ZeroModel()));
  EXPECT_FALSE(CsdFeasible(set, {10, 0}, 1.14, ZeroModel()));
}

TEST(SchedTestTest, OverheadsShrinkFeasibleRegion) {
  TaskSet set = Table2Workload();
  // Periods here are short (4-8 ms), so the 68040 overheads bite.
  EXPECT_TRUE(EdfFeasible(set, 1.0, ZeroModel()));
  OverheadModel m68k = M68kModel();
  // At scale 1.12 the raw utilization is ~0.993: still feasible with zero
  // overheads, but the 68040 scheduler overhead pushes it over 1.
  EXPECT_TRUE(EdfFeasible(set, 1.12, ZeroModel()));
  EXPECT_TRUE(EdfFeasible(set, 1.0, m68k));
  EXPECT_FALSE(EdfFeasible(set, 1.12, m68k));
}

TEST(SchedTestTest, ResponseTimeAnalysisBasics) {
  // Task with cost 2, deadline 10, one interferer (cost 3, period 5):
  // R = 2 + ceil(5/5)*3 = 5 <= 10.
  EXPECT_TRUE(ResponseTimeWithin(2, 10, {{3, 5}}));
  // Tighter deadline fails (R = 5 > 4).
  EXPECT_FALSE(ResponseTimeWithin(2, 4, {{3, 5}}));
  // Over-utilized interference diverges and is rejected.
  EXPECT_FALSE(ResponseTimeWithin(1, 1000000, {{6, 5}}));
}

// --- Breakdown ---

TEST(BreakdownTest, EdfReaches100PercentWithZeroCosts) {
  Rng rng(1);
  TaskSet set = GenerateWorkload(rng, 20);
  BreakdownResult result = ComputeBreakdown(set, PolicySpec::Edf(), CostModel::Zero());
  EXPECT_NEAR(result.utilization, 1.0, 1e-9);
}

TEST(BreakdownTest, RmBelowEdfWithZeroCosts) {
  // "Previous work has shown that for RM, U = 0.88 on average" — the exact
  // average depends on the period distribution; with the paper's digit-class
  // periods the RM breakdown sits well below EDF's 1.0 but above the
  // Liu-Layland worst case.
  Rng rng(2);
  double sum = 0.0;
  const int kTrials = 30;
  for (int i = 0; i < kTrials; ++i) {
    Rng trial = rng.Fork(i);
    TaskSet set = GenerateWorkload(trial, 10);
    double rm = ComputeBreakdown(set, PolicySpec::Rm(), CostModel::Zero()).utilization;
    EXPECT_LE(rm, 1.0 + 1e-9);
    EXPECT_GE(rm, 0.69);  // above the n->inf Liu-Layland bound
    sum += rm;
  }
  double average = sum / kTrials;
  EXPECT_LT(average, 0.99);
  EXPECT_GT(average, 0.85);
}

TEST(BreakdownTest, OverheadsReduceBreakdown) {
  Rng rng(3);
  TaskSet set = GenerateWorkload(rng, 30);
  double zero = ComputeBreakdown(set, PolicySpec::Rm(), CostModel::Zero()).utilization;
  double m68k = ComputeBreakdown(set, PolicySpec::Rm(), CostModel::MC68040_25MHz()).utilization;
  EXPECT_LT(m68k, zero);
}

TEST(BreakdownTest, CsdPartitionCoversAllTasks) {
  Rng rng(4);
  TaskSet set = GenerateWorkload(rng, 15);
  BreakdownResult result =
      ComputeBreakdown(set, PolicySpec::Csd(3), CostModel::MC68040_25MHz());
  ASSERT_EQ(result.partition.size(), 3u);
  EXPECT_EQ(result.partition[0] + result.partition[1] + result.partition[2], 15);
  EXPECT_GT(result.utilization, 0.5);
}

TEST(BreakdownTest, ShorterPeriodsLowerBreakdown) {
  Rng rng(5);
  TaskSet set = GenerateWorkload(rng, 25);
  CostModel cost = CostModel::MC68040_25MHz();
  double base = ComputeBreakdown(set, PolicySpec::Edf(), cost).utilization;
  double div3 = ComputeBreakdown(set.PeriodsDividedBy(3), PolicySpec::Edf(), cost).utilization;
  EXPECT_LT(div3, base);  // Figures 3 -> 5 trend
}

TEST(BreakdownTest, CsdBeatsBothAtLargeNShortPeriods) {
  // The headline claim (Figures 4-5): with many short-period tasks, CSD's
  // breakdown utilization exceeds both EDF's and RM's.
  Rng rng(6);
  CostModel cost = CostModel::MC68040_25MHz();
  double edf = 0.0;
  double rm = 0.0;
  double csd3 = 0.0;
  const int kTrials = 10;
  for (int i = 0; i < kTrials; ++i) {
    Rng trial = rng.Fork(i);
    TaskSet set = GenerateWorkload(trial, 40).PeriodsDividedBy(3);
    edf += ComputeBreakdown(set, PolicySpec::Edf(), cost).utilization;
    rm += ComputeBreakdown(set, PolicySpec::Rm(), cost).utilization;
    csd3 += ComputeBreakdown(set, PolicySpec::Csd(3), cost).utilization;
  }
  EXPECT_GT(csd3, edf);
  EXPECT_GT(csd3, rm);
}

TEST(BreakdownTest, RmHeapBelowRmListForTypicalN) {
  Rng rng(7);
  TaskSet set = GenerateWorkload(rng, 25).PeriodsDividedBy(2);
  CostModel cost = CostModel::MC68040_25MHz();
  double list = ComputeBreakdown(set, PolicySpec::Rm(), cost).utilization;
  double heap = ComputeBreakdown(set, PolicySpec::RmHeap(), cost).utilization;
  EXPECT_LT(heap, list);
}

TEST(BreakdownTest, BestCsdPartitionFeasibleAtRequestedScale) {
  TaskSet set = Table2Workload();
  CostModel cost = CostModel::Zero();
  std::vector<int> partition = BestCsdPartition(set, 2, 1.0, cost);
  ASSERT_FALSE(partition.empty());
  EXPECT_TRUE(CsdFeasible(set, partition, 1.0, OverheadModel(cost)));
  // The DP queue must contain at least the troublesome tau_5 prefix.
  EXPECT_GE(partition[0], 5);
}

TEST(BreakdownTest, PolicyNames) {
  EXPECT_STREQ(PolicySpec::Edf().Name(), "EDF");
  EXPECT_STREQ(PolicySpec::Rm().Name(), "RM");
  EXPECT_STREQ(PolicySpec::RmHeap().Name(), "RM-heap");
  EXPECT_STREQ(PolicySpec::Csd(3).Name(), "CSD-3");
}

// Property sweep: breakdown scale really is the feasibility boundary.
class BreakdownBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(BreakdownBoundaryTest, BoundaryIsTight) {
  Rng rng(100 + GetParam());
  TaskSet set = GenerateWorkload(rng, GetParam());
  CostModel cost = CostModel::MC68040_25MHz();
  OverheadModel model(cost);
  double bd = ComputeBreakdown(set, PolicySpec::Rm(), cost).utilization;
  double raw = set.Utilization();
  // Just below the boundary: feasible; just above: infeasible.
  EXPECT_TRUE(RmFeasible(set, (bd - 0.01) / raw, model));
  EXPECT_FALSE(RmFeasible(set, (bd + 0.01) / raw, model));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BreakdownBoundaryTest, ::testing::Values(5, 10, 20, 35, 50));

}  // namespace
}  // namespace emeralds
