// Cyclic-executive builder tests: frame-size selection, packing correctness,
// and the rejection modes the paper cites as motivation for CSD.

#include <algorithm>

#include <gtest/gtest.h>

#include "src/analysis/breakdown.h"
#include "src/analysis/cyclic.h"
#include "src/base/rng.h"

namespace emeralds {
namespace {

PeriodicTask Task(int64_t period_ms, int64_t wcet_us) {
  PeriodicTask task;
  task.period = Milliseconds(period_ms);
  task.deadline = task.period;
  task.wcet = Microseconds(wcet_us);
  return task;
}

// Every placed slice respects its frame capacity and the builder's own
// accounting; total placed time equals total demand over the hyperperiod.
void CheckScheduleConsistent(const TaskSet& set, const CyclicSchedule& schedule,
                             double scale = 1.0) {
  ASSERT_TRUE(schedule.feasible);
  int64_t placed = 0;
  int64_t entries = 0;
  for (const auto& frame : schedule.frames) {
    int64_t used = 0;
    for (const CyclicSlice& slice : frame) {
      EXPECT_GE(slice.task, 0);
      EXPECT_LT(slice.task, set.size());
      EXPECT_GT(slice.duration_us, 0);
      used += slice.duration_us;
      placed += slice.duration_us;
      ++entries;
    }
    EXPECT_LE(used, schedule.frame_us);
  }
  EXPECT_EQ(entries, schedule.table_entries);
  // Total demand over the hyperperiod: jobs-per-hyperperiod x ceil(scaled
  // wcet in us), mirroring the builder's rounding.
  int64_t demand = 0;
  for (const PeriodicTask& task : set.tasks) {
    int64_t scaled_ns =
        static_cast<int64_t>(static_cast<double>(task.wcet.nanos()) * scale + 0.5);
    int64_t cost_us = std::max<int64_t>((scaled_ns + 999) / 1000, 1);
    demand += (schedule.hyperperiod_us / task.period.micros()) * cost_us;
  }
  EXPECT_EQ(placed, demand);
}

TEST(CyclicTest, HarmonicWorkloadBuildsCompactTable) {
  TaskSet set;
  set.tasks = {Task(10, 2000), Task(20, 4000), Task(40, 8000)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.hyperperiod_us, 40000);
  // Largest divisor of 40ms that holds the 8ms job and satisfies
  // 2f - gcd(f, P) <= P for all tasks is f = 10ms... check the builder's
  // choice satisfies the conditions instead of hard-coding it.
  EXPECT_GE(schedule.frame_us, 8000);
  EXPECT_EQ(schedule.hyperperiod_us % schedule.frame_us, 0);
  CheckScheduleConsistent(set, schedule);
  // Harmonic periods: tiny table.
  EXPECT_LE(schedule.table_entries, 8);
}

TEST(CyclicTest, Table2RejectedByGreedyPacking) {
  // Weakness 1 made concrete: Table 2 (U = 0.887, feasible under EDF and
  // CSD) defeats the greedy EDF packer — "feasible workloads may get
  // rejected". H = lcm(4,...,300) ms = 21 s.
  TaskSet set = Table2Workload();
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.reject, CyclicReject::kPackingFailed);
  // Scaled to U ~= 0.62 it builds — but with a five-figure table.
  CyclicScheduleOptions options;
  options.scale = 0.7;
  CyclicSchedule scaled = BuildCyclicSchedule(set, options);
  ASSERT_TRUE(scaled.feasible);
  EXPECT_EQ(scaled.hyperperiod_us, 21000000);
  EXPECT_GT(scaled.table_entries, 5000);
  CheckScheduleConsistent(set, scaled, options.scale);
}

TEST(CyclicTest, RelativelyPrimePeriodsExplodeHyperperiod) {
  TaskSet set;
  // 101, 103, 107, 109 ms: pairwise coprime -> H ~ 1.2e8 ms = 1.2e5 s.
  set.tasks = {Task(101, 500), Task(103, 500), Task(107, 500), Task(109, 500)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.reject, CyclicReject::kHyperperiodTooBig);
}

TEST(CyclicTest, OverUtilizedRejected) {
  TaskSet set;
  set.tasks = {Task(10, 6000), Task(10, 6000)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.reject, CyclicReject::kOverUtilized);
}

TEST(CyclicTest, LongJobSplitsAcrossFrames) {
  TaskSet set;
  // A 12ms job with a 10ms-period neighbour: the containment condition caps
  // the frame at 10ms, so the job must be sliced across frames (the manual
  // decomposition the builder grants the baseline).
  set.tasks = {Task(10, 1000), Task(30, 12000)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_LE(schedule.frame_us, 10000);
  int frames_with_long_task = 0;
  for (const auto& frame : schedule.frames) {
    for (const CyclicSlice& slice : frame) {
      if (slice.task == 1) {
        ++frames_with_long_task;
      }
    }
  }
  EXPECT_GE(frames_with_long_task, 2);  // genuinely split
  CheckScheduleConsistent(set, schedule);
}

TEST(CyclicTest, FrameLimitRejectsHugeTables) {
  TaskSet set;
  set.tasks = {Task(10, 2000), Task(20, 4000), Task(40, 8000)};
  CyclicScheduleOptions options;
  options.max_frames = 2;  // H/f would need more frames than allowed
  CyclicSchedule schedule = BuildCyclicSchedule(set, options);
  EXPECT_FALSE(schedule.feasible);
  EXPECT_EQ(schedule.reject, CyclicReject::kTableTooBig);
}

TEST(CyclicTest, AperiodicDelayBoundIsTwoFrames) {
  TaskSet set;
  set.tasks = {Task(10, 2000), Task(20, 4000)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.WorstAperiodicStartDelay().micros(), 2 * schedule.frame_us);
}

TEST(CyclicTest, TableBytesCountsEntries) {
  TaskSet set;
  set.tasks = {Task(10, 2000), Task(20, 4000)};
  CyclicSchedule schedule = BuildCyclicSchedule(set);
  ASSERT_TRUE(schedule.feasible);
  EXPECT_EQ(schedule.TableBytes(), schedule.table_entries * 6);
}

TEST(CyclicTest, RejectStringsCovered) {
  EXPECT_STREQ(CyclicRejectToString(CyclicReject::kNone), "none");
  EXPECT_STREQ(CyclicRejectToString(CyclicReject::kPackingFailed), "job packing failed");
  EXPECT_STREQ(CyclicRejectToString(CyclicReject::kHyperperiodTooBig),
               "hyperperiod too large");
}

TEST(CyclicTest, BreakdownBelowPriorityDriven) {
  // Weakness 1 in aggregate: across random paper-recipe workloads the cyclic
  // builder's breakdown utilization trails EDF's analytic breakdown (and is
  // frequently zero when no schedule exists at any utilization).
  Rng rng(31);
  double cyclic_sum = 0.0;
  double edf_sum = 0.0;
  const int kTrials = 10;
  for (int i = 0; i < kTrials; ++i) {
    Rng trial = rng.Fork(i);
    TaskSet set = GenerateWorkload(trial, 10);
    cyclic_sum += CyclicBreakdownUtilization(set);
    edf_sum += ComputeBreakdown(set, PolicySpec::Edf(), CostModel::Zero()).utilization;
  }
  EXPECT_LT(cyclic_sum, edf_sum);
}

TEST(CyclicTest, DeterministicOutput) {
  TaskSet set = Table2Workload();
  CyclicSchedule a = BuildCyclicSchedule(set);
  CyclicSchedule b = BuildCyclicSchedule(set);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.frame_us, b.frame_us);
  EXPECT_EQ(a.table_entries, b.table_entries);
}

}  // namespace
}  // namespace emeralds
