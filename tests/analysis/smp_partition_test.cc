// Partitioned-SMP admission tests: golden equivalence to the single-core CSD
// search at num_cores=1, FFD capacity/determinism properties, overflow
// fallback, and admission monotonicity in the core count.

#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/smp_partition.h"
#include "src/base/rng.h"

namespace emeralds {
namespace {

// The acceptance bar for the SMP refactor: at one core the two-stage
// admission IS the single-core search — same winning queue partition,
// bit-equal, same feasibility verdict, identity assignment.
TEST(SmpPartitionTest, SingleCoreGoldenEquivalentToBestCsdPartition) {
  Rng rng(81);
  const CostModel cost = CostModel::MC68040_25MHz();
  for (int trial = 0; trial < 8; ++trial) {
    Rng t = rng.Fork(trial);
    TaskSet set = GenerateWorkload(t, 10);
    set.SortByPeriod();
    for (double target : {0.4, 0.7, 0.95}) {
      const double scale = target / set.Utilization();
      for (int queues : {2, 3}) {
        SmpPartitionResult part = PartitionCsdSmp(set, 1, queues, scale, cost);
        std::vector<int> golden = BestCsdPartition(set, queues, scale, cost);
        ASSERT_EQ(part.cores.size(), 1u) << "trial " << trial;
        EXPECT_EQ(part.cores[0].csd_partition, golden)
            << "trial " << trial << " target " << target << " queues " << queues;
        EXPECT_EQ(part.feasible, !golden.empty());
        EXPECT_EQ(part.cores[0].feasible, !golden.empty());
        EXPECT_TRUE(part.packed);
        ASSERT_EQ(part.assignment.size(), static_cast<size_t>(set.size()));
        for (int i = 0; i < set.size(); ++i) {
          EXPECT_EQ(part.assignment[i], 0);
          EXPECT_EQ(part.cores[0].task_indices[i], i);
        }
      }
    }
  }
}

TEST(SmpPartitionTest, PackedAssignmentRespectsUnitCapacity) {
  Rng rng(82);
  const CostModel cost = CostModel::MC68040_25MHz();
  for (int trial = 0; trial < 6; ++trial) {
    Rng t = rng.Fork(trial);
    TaskSet set = GenerateWorkload(t, 12);
    set.SortByPeriod();
    const double scale = 1.5 / set.Utilization();  // 150% total over 4 cores
    SmpPartitionResult part = PartitionCsdSmp(set, 4, 2, scale, cost);
    EXPECT_TRUE(part.packed);
    double total = 0.0;
    for (const SmpCoreAdmission& core : part.cores) {
      EXPECT_LE(core.utilization, 1.0 + 1e-9);
      total += core.utilization;
      // Per-core subsets keep the original period-sorted order, so the CSD
      // stage sees exactly a single-core workload.
      EXPECT_TRUE(core.tasks.IsSortedByPeriod());
      for (size_t i = 1; i < core.task_indices.size(); ++i) {
        EXPECT_LT(core.task_indices[i - 1], core.task_indices[i]);
      }
      ASSERT_EQ(core.tasks.size(), static_cast<int>(core.task_indices.size()));
    }
    EXPECT_NEAR(total, 1.5, 1e-6);
    // The assignment and the per-core index lists describe the same mapping.
    ASSERT_EQ(part.assignment.size(), static_cast<size_t>(set.size()));
    for (size_t c = 0; c < part.cores.size(); ++c) {
      for (int idx : part.cores[c].task_indices) {
        EXPECT_EQ(part.assignment[idx], static_cast<int>(c));
      }
    }
  }
}

TEST(SmpPartitionTest, OverflowFallsBackToLeastLoadedCore) {
  Rng rng(83);
  const CostModel cost = CostModel::MC68040_25MHz();
  TaskSet set = GenerateWorkload(rng, 8);
  set.SortByPeriod();
  // 250% of demand onto 2 unit-capacity cores cannot pack.
  const double scale = 2.5 / set.Utilization();
  SmpPartitionResult part = PartitionCsdSmp(set, 2, 2, scale, cost);
  EXPECT_FALSE(part.packed);
  EXPECT_FALSE(part.feasible);
  // Every task still has a core so the per-core reports stay meaningful.
  ASSERT_EQ(part.assignment.size(), static_cast<size_t>(set.size()));
  for (int core : part.assignment) {
    EXPECT_GE(core, 0);
    EXPECT_LT(core, 2);
  }
}

TEST(SmpPartitionTest, EmptyCoresAreTriviallyFeasible) {
  Rng rng(84);
  const CostModel cost = CostModel::MC68040_25MHz();
  TaskSet set = GenerateWorkload(rng, 2);
  set.SortByPeriod();
  const double scale = 0.4 / set.Utilization();
  SmpPartitionResult part = PartitionCsdSmp(set, 4, 2, scale, cost);
  EXPECT_TRUE(part.feasible);
  ASSERT_EQ(part.cores.size(), 4u);
  int empty = 0;
  for (const SmpCoreAdmission& core : part.cores) {
    if (core.tasks.size() == 0) {
      ++empty;
      EXPECT_TRUE(core.feasible);
      EXPECT_TRUE(core.csd_partition.empty());
      EXPECT_EQ(core.utilization, 0.0);
    }
  }
  EXPECT_GE(empty, 2);  // two tasks can occupy at most two cores
}

// The bench gate's monotonicity property, at test scale: a workload admitted
// on N cores is admitted on more (FFD only ever gets more room).
TEST(SmpPartitionTest, MoreCoresNeverAdmitFewer) {
  Rng rng(85);
  const CostModel cost = CostModel::MC68040_25MHz();
  for (int trial = 0; trial < 10; ++trial) {
    Rng t = rng.Fork(trial);
    TaskSet set = GenerateWorkload(t, 8);
    set.SortByPeriod();
    for (double target : {0.6, 0.9, 1.2, 1.6}) {
      const double scale = target / set.Utilization();
      const bool f1 = PartitionCsdSmp(set, 1, 2, scale, cost).feasible;
      const bool f2 = PartitionCsdSmp(set, 2, 2, scale, cost).feasible;
      const bool f4 = PartitionCsdSmp(set, 4, 2, scale, cost).feasible;
      EXPECT_LE(f1, f2) << "trial " << trial << " target " << target;
      EXPECT_LE(f2, f4) << "trial " << trial << " target " << target;
    }
  }
}

}  // namespace
}  // namespace emeralds
