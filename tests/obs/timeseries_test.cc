// Streaming timeseries tests. The load-bearing property is telescoping:
// the per-window histogram deltas and counter deltas, merged over every
// window of a run, must reproduce the whole-run cumulative state
// bit-identically — that is what makes the streaming plane exact rather
// than a sampled approximation. Also: the fixed window grid, explicit gap
// marking under snapshot loss, and the order-invariant fleet merge.

#include "src/obs/timeseries.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/base/log2_histogram.h"
#include "src/core/stats.h"
#include "src/core/taskset_runner.h"
#include "src/workload/workload.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace obs {
namespace {

void ExpectIdentical(const Log2Histogram& a, const Log2Histogram& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.total(), b.total()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
  for (int i = 0; i < Log2Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
  }
}

// --- Log2Histogram::Delta ---

TEST(HistogramDeltaTest, DeltasTelescopeBackToCumulative) {
  Log2Histogram cumulative;
  Log2Histogram prev;
  Log2Histogram merged_deltas;
  int64_t samples[] = {3, 70, 9000, 12, 500000, 1, 42};
  for (int64_t us : samples) {
    cumulative.Add(Microseconds(us));
    Log2Histogram d = Log2Histogram::Delta(cumulative, prev);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_EQ(d.total(), Microseconds(us));
    merged_deltas.Merge(d);
    prev = cumulative;
  }
  // Every field — including min/max, which per-delta are only conservative
  // cumulative bounds — reproduces the whole-run histogram after the merge.
  ExpectIdentical(merged_deltas, cumulative, "telescoped");
}

TEST(HistogramDeltaTest, EmptyDeltaContributesNothing) {
  Log2Histogram h;
  h.Add(Microseconds(10));
  Log2Histogram d = Log2Histogram::Delta(h, h);
  EXPECT_EQ(d.count(), 0u);
  Log2Histogram acc;
  acc.Add(Microseconds(99));
  Log2Histogram before = acc;
  acc.Merge(d);
  ExpectIdentical(acc, before, "merge of empty delta");
}

// --- Window grid ---

TEST(TimeseriesCollectorTest, IndexOfWindowGrid) {
  TimeseriesOptions options;
  options.window = Milliseconds(10);
  TimeseriesCollector c(options);
  EXPECT_EQ(c.IndexOf(Instant()), 0);
  EXPECT_EQ(c.IndexOf(Instant() + Nanoseconds(1)), 0);
  EXPECT_EQ(c.IndexOf(Instant() + Milliseconds(10)), 0);  // upper edge inclusive
  EXPECT_EQ(c.IndexOf(Instant() + Milliseconds(10) + Nanoseconds(1)), 1);
  EXPECT_EQ(c.IndexOf(Instant() + Milliseconds(25)), 2);
}

// --- Live kernel: the telescoping acceptance property ---

// Runs a real workload with the sampler on, drains the collector on a
// 5 ms host schedule like the fleet runner, and checks the merged window
// series against the kernel's own cumulative state: histograms
// bit-identical, counters exactly summing, every window on the grid.
TEST(TimeseriesCollectorTest, WindowSeriesTelescopesToWholeRun) {
  KernelConfig config = CalibratedConfig();
  config.trace_capacity = 8192;
  SimEnv env(config);
  env.k().EnableStatsSampling(Milliseconds(2), 128);
  TaskSet set = Table2Workload();
  SpawnTaskSet(env.k(), set);
  env.k().Start();

  TimeseriesOptions options;
  options.window = Milliseconds(10);
  options.capacity = 64;
  TimeseriesCollector collector(options);

  Instant end = Instant() + Milliseconds(100);
  while (env.k().now() < end) {
    env.k().RunUntil(std::min(end, env.k().now() + Milliseconds(5)));
    collector.Collect(env.k());
  }
  collector.Finish(env.k());

  ASSERT_GT(collector.size(), 0u);
  EXPECT_EQ(collector.lost_samples(), 0u);
  EXPECT_EQ(collector.windows_dropped(), 0u);

  const KernelStats& stats = env.k().stats();
  Log2Histogram response;
  Log2Histogram chain_e2e;
  Log2Histogram headroom;
  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t misses = 0;
  uint64_t switches = 0;
  uint64_t timers = 0;
  int64_t last_index = -1;
  for (size_t i = 0; i < collector.size(); ++i) {
    const TelemetryWindow& w = collector.at(i);
    EXPECT_FALSE(w.gap);
    EXPECT_GT(w.index, last_index);
    last_index = w.index;
    EXPECT_EQ(w.start, Instant() + options.window * w.index);
    EXPECT_GT(w.end, w.start);
    EXPECT_LE(w.end, w.start + options.window);
    response.Merge(w.response);
    chain_e2e.Merge(w.chain_e2e);
    headroom.Merge(w.headroom);
    jobs_released += w.jobs_released;
    jobs_completed += w.jobs_completed;
    misses += w.deadline_misses;
    switches += w.context_switches;
    timers += w.timer_dispatches;
  }
  ExpectIdentical(response, stats.response_hist, "response");
  ExpectIdentical(chain_e2e, stats.chain_e2e_hist, "chain_e2e");
  ExpectIdentical(headroom, stats.headroom_hist, "headroom");
  EXPECT_EQ(jobs_released, stats.jobs_released);
  EXPECT_EQ(jobs_completed, stats.jobs_completed);
  EXPECT_EQ(misses, stats.deadline_misses);
  EXPECT_EQ(switches, stats.context_switches);
  EXPECT_EQ(timers, stats.timer_dispatches);
  EXPECT_GT(response.count(), 0u);  // the property must not hold vacuously
}

// The drain schedule must not matter for the *contents* of closed windows:
// draining every slice and draining only at the horizon yield the same
// series when nothing was lost (the ring was big enough for the whole run).
TEST(TimeseriesCollectorTest, DrainScheduleInvariantWithoutLoss) {
  auto run = [](Duration drain_period) {
    KernelConfig config = CalibratedConfig();
    SimEnv env(config);
    env.k().EnableStatsSampling(Milliseconds(2), 128);
    TaskSet set = Table2Workload();
    SpawnTaskSet(env.k(), set);
    env.k().Start();
    TimeseriesOptions options;
    options.window = Milliseconds(10);
    TimeseriesCollector collector(options);
    Instant end = Instant() + Milliseconds(60);
    while (env.k().now() < end) {
      env.k().RunUntil(std::min(end, env.k().now() + drain_period));
      collector.Collect(env.k());
    }
    collector.Finish(env.k());
    return collector.Snapshot();
  };
  std::vector<TelemetryWindow> fine = run(Milliseconds(5));
  std::vector<TelemetryWindow> coarse = run(Milliseconds(60));
  ASSERT_EQ(fine.size(), coarse.size());
  for (size_t i = 0; i < fine.size(); ++i) {
    EXPECT_EQ(fine[i].index, coarse[i].index);
    EXPECT_EQ(fine[i].jobs_completed, coarse[i].jobs_completed);
    EXPECT_EQ(fine[i].deadline_misses, coarse[i].deadline_misses);
    EXPECT_EQ(fine[i].context_switches, coarse[i].context_switches);
    EXPECT_EQ(fine[i].samples, coarse[i].samples);
    ExpectIdentical(fine[i].response, coarse[i].response, "window response");
  }
}

// --- Explicit degradation ---

TEST(TimeseriesCollectorTest, SnapshotLossIsGapMarkedNeverSilent) {
  KernelConfig config = CalibratedConfig();
  SimEnv env(config);
  // A 4-deep ring sampled every 1 ms overflows long before the first drain
  // at 50 ms: the collector must report the loss and gap-mark the windows
  // spanning it.
  env.k().EnableStatsSampling(Milliseconds(1), 4);
  TaskSet set = Table2Workload();
  SpawnTaskSet(env.k(), set);
  env.k().Start();

  TimeseriesOptions options;
  options.window = Milliseconds(10);
  TimeseriesCollector collector(options);
  env.k().RunUntil(Instant() + Milliseconds(50));
  collector.Collect(env.k());
  collector.Finish(env.k());

  EXPECT_GT(collector.lost_samples(), 0u);
  bool any_gap = false;
  for (size_t i = 0; i < collector.size(); ++i) {
    any_gap = any_gap || collector.at(i).gap;
  }
  EXPECT_TRUE(any_gap);
  // The kernel-side drop counter surfaces the same loss.
  EXPECT_GT(env.k().stats().stats_snapshot_drops, 0u);
}

TEST(TimeseriesCollectorTest, RingEvictionCountsDroppedWindows) {
  KernelConfig config = CalibratedConfig();
  SimEnv env(config);
  env.k().EnableStatsSampling(Milliseconds(2), 128);
  TaskSet set = Table2Workload();
  SpawnTaskSet(env.k(), set);
  env.k().Start();

  TimeseriesOptions options;
  options.window = Milliseconds(5);
  options.capacity = 4;  // 100 ms / 5 ms = 20 windows; only 4 retained
  TimeseriesCollector collector(options);
  Instant end = Instant() + Milliseconds(100);
  while (env.k().now() < end) {
    env.k().RunUntil(std::min(end, env.k().now() + Milliseconds(5)));
    collector.Collect(env.k());
  }
  collector.Finish(env.k());
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_GT(collector.windows_dropped(), 0u);
  // The retained windows are the newest ones.
  EXPECT_GE(collector.at(0).index, 16);
}

// --- Fleet merge ---

TelemetryWindow SyntheticWindow(int64_t index, uint64_t jobs, uint64_t misses,
                                int64_t response_us) {
  TelemetryWindow w;
  w.index = index;
  w.start = Instant() + Milliseconds(10) * index;
  w.end = w.start + Milliseconds(10);
  w.samples = 1;
  w.jobs_completed = jobs;
  w.deadline_misses = misses;
  if (response_us > 0) {
    w.response.Add(Microseconds(response_us));
  }
  return w;
}

TEST(MergeWindowSeriesTest, SumsByIndexAndIsOrderInvariant) {
  std::vector<TelemetryWindow> a = {SyntheticWindow(0, 10, 0, 100),
                                    SyntheticWindow(1, 12, 1, 200)};
  std::vector<TelemetryWindow> b = {SyntheticWindow(1, 5, 2, 400),
                                    SyntheticWindow(3, 7, 0, 50)};
  std::vector<TelemetryWindow> merged = MergeWindowSeries({&a, &b});
  std::vector<TelemetryWindow> reversed = MergeWindowSeries({&b, &a});

  ASSERT_EQ(merged.size(), 3u);  // indexes 0, 1, 3
  EXPECT_EQ(merged[0].index, 0);
  EXPECT_EQ(merged[1].index, 1);
  EXPECT_EQ(merged[2].index, 3);
  EXPECT_EQ(merged[1].jobs_completed, 17u);
  EXPECT_EQ(merged[1].deadline_misses, 3u);
  EXPECT_EQ(merged[1].samples, 2u);
  EXPECT_EQ(merged[1].response.count(), 2u);

  ASSERT_EQ(reversed.size(), merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(reversed[i].index, merged[i].index);
    EXPECT_EQ(reversed[i].jobs_completed, merged[i].jobs_completed);
    EXPECT_EQ(reversed[i].deadline_misses, merged[i].deadline_misses);
    ExpectIdentical(reversed[i].response, merged[i].response, "merged response");
  }
}

TEST(MergeWindowSeriesTest, GapIsSticky) {
  std::vector<TelemetryWindow> a = {SyntheticWindow(0, 1, 0, 10)};
  std::vector<TelemetryWindow> b = {SyntheticWindow(0, 1, 0, 10)};
  b[0].gap = true;
  std::vector<TelemetryWindow> merged = MergeWindowSeries({&a, &b});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_TRUE(merged[0].gap);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
