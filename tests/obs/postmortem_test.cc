// Postmortem engine tests: exact lateness attribution on synthetic streams
// (known ledgers to the nanosecond), conservation on live overloaded kernel
// runs (single- and multi-core), legacy-trace degradation, and blame-table
// merge/digest determinism.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/tcb.h"
#include "src/hal/cycles.h"
#include "src/obs/postmortem.h"
#include "src/obs/trace_csv.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace obs {
namespace {

TraceEvent Ev(int64_t us, TraceEventType type, int32_t a0, int32_t a1, int32_t a2 = 0) {
  return TraceEvent{Instant() + Microseconds(us), type, a0, a1, a2};
}

constexpr int32_t kBudget100us = 100000;  // kJobRelease arg2, ns

// --- Synthetic streams: exact ledgers ---

TEST(PostmortemTest, PreemptionAttributedPerPreemptor) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, kBudget100us),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(50, TraceEventType::kContextSwitch, 1, 2),   // preempted by t2
      Ev(150, TraceEventType::kContextSwitch, 2, 1),
      Ev(180, TraceEventType::kJobComplete, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  EXPECT_FALSE(a.window_truncated);
  ASSERT_EQ(a.misses_analyzed, 1u);
  EXPECT_EQ(a.conservation_failures, 0u);
  const JobPostmortem& m = a.misses[0];
  EXPECT_EQ(m.thread_id, 1);
  EXPECT_EQ(m.response_ns, 180000);
  EXPECT_EQ(m.tardiness_ns, 80000);
  EXPECT_TRUE(m.conserved);
  EXPECT_EQ(m.ledger.preemption_ns, 100000);
  ASSERT_EQ(m.ledger.preemptor_ns.count(2), 1u);
  EXPECT_EQ(m.ledger.preemptor_ns.at(2), 100000);
  // First job seeds the EWMA, so own execution is all "expected".
  EXPECT_EQ(m.ledger.own_expected_ns, 80000);
  EXPECT_EQ(m.ledger.own_overrun_ns, 0);
  EXPECT_EQ(m.ledger.unattributed_ns, 0);
  EXPECT_EQ(m.top_blame, "preempted_by:t2");
}

TEST(PostmortemTest, LockBlockingAttributedPerSemaphore) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, kBudget100us),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(20, TraceEventType::kThreadBlock, 1, static_cast<int32_t>(BlockReason::kWaitSem), 5),
      Ev(20, TraceEventType::kContextSwitch, 1, 2),
      Ev(90, TraceEventType::kThreadReady, 1, static_cast<int32_t>(BlockReason::kWaitSem), 0),
      Ev(90, TraceEventType::kContextSwitch, 2, 1),
      Ev(110, TraceEventType::kJobComplete, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.misses_analyzed, 1u);
  const JobPostmortem& m = a.misses[0];
  EXPECT_TRUE(m.conserved);
  EXPECT_EQ(m.tardiness_ns, 10000);
  EXPECT_EQ(m.ledger.lock_blocked_ns, 70000);
  ASSERT_EQ(m.ledger.lock_ns.count(5), 1u);
  EXPECT_EQ(m.ledger.lock_ns.at(5), 70000);
  EXPECT_EQ(m.ledger.own_expected_ns, 40000);
  EXPECT_EQ(m.top_blame, "blocked_on:S5");
  ASSERT_EQ(a.blame.lock_ns.count(5), 1u);
  EXPECT_EQ(a.blame.lock_ns.at(5), 70000);
}

TEST(PostmortemTest, OverheadSpansCarvedOutOfRunningTime) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, kBudget100us),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      // 4us of IRQ handling on core 0 charged while t1 was current.
      Ev(30, TraceEventType::kOverheadSpan,
         OverheadSpanPack(static_cast<int>(CycleBucket::kIrq), 0), 4000, 2),
      Ev(110, TraceEventType::kJobComplete, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.misses_analyzed, 1u);
  const JobPostmortem& m = a.misses[0];
  EXPECT_TRUE(m.conserved);
  EXPECT_EQ(m.ledger.irq_ns, 4000);
  EXPECT_EQ(m.ledger.own_expected_ns, 106000);
  EXPECT_EQ(m.ledger.sum_ns(), 110000);
}

TEST(PostmortemTest, CarryInFromPreviousOverrun) {
  constexpr int32_t budget60us = 60000;
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, budget60us),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(150, TraceEventType::kJobComplete, 1, 1),
      // Overrun: job 2's nominal release (t=100) predates job 1's completion.
      Ev(100, TraceEventType::kJobRelease, 1, 2, budget60us),
      Ev(180, TraceEventType::kJobComplete, 1, 2),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.misses_analyzed, 2u);
  EXPECT_EQ(a.conservation_failures, 0u);
  const JobPostmortem& m2 = a.misses[1];
  EXPECT_EQ(m2.job_number, 2u);
  EXPECT_EQ(m2.response_ns, 80000);
  EXPECT_EQ(m2.ledger.carry_in_ns, 50000);
  EXPECT_TRUE(m2.conserved);
  EXPECT_EQ(m2.top_blame, "carry_in");
}

TEST(PostmortemTest, ReleaseLatencyCoversWaitPeriodGap) {
  std::vector<TraceEvent> ev = {
      // t1 blocked on its period grid; release processed 8us late by the
      // timer service (cursor established by the IRQ instant).
      Ev(0, TraceEventType::kThreadBlock, 1, static_cast<int32_t>(BlockReason::kWaitPeriod), -1),
      Ev(108, TraceEventType::kIrq, 0, 0),
      Ev(100, TraceEventType::kJobRelease, 1, 1, kBudget100us),
      Ev(110, TraceEventType::kThreadReady, 1, static_cast<int32_t>(BlockReason::kWaitPeriod), 0),
      Ev(110, TraceEventType::kContextSwitch, -1, 1),
      Ev(210, TraceEventType::kJobComplete, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.misses_analyzed, 1u);
  const JobPostmortem& m = a.misses[0];
  EXPECT_TRUE(m.conserved);
  EXPECT_EQ(m.response_ns, 110000);
  // 8us cursor lump + 2us blocked-on-grid before the wake landed.
  EXPECT_EQ(m.ledger.release_latency_ns, 10000);
  EXPECT_EQ(m.ledger.own_expected_ns, 100000);
}

TEST(PostmortemTest, LegacyReleaseWithoutDeadlineIsCountedNotAttributed) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, 0),  // legacy: no deadline
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(150, TraceEventType::kJobComplete, 1, 1),
      Ev(150, TraceEventType::kDeadlineMiss, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  EXPECT_EQ(a.misses_analyzed, 0u);
  EXPECT_EQ(a.deadline_unknown, 1u);
  EXPECT_EQ(a.unmatched_misses, 0u);
}

TEST(PostmortemTest, TruncatedWindowDegradesToUnmatched) {
  std::vector<TraceEvent> ev = {
      Ev(100, TraceEventType::kContextSwitch, 7, 1),
      Ev(110, TraceEventType::kJobComplete, 1, 42),  // released pre-window
      Ev(120, TraceEventType::kDeadlineMiss, 1, 41),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), /*dropped_events=*/5);
  EXPECT_TRUE(a.window_truncated);
  EXPECT_EQ(a.misses_analyzed, 0u);
  EXPECT_EQ(a.unmatched_misses, 1u);
  EXPECT_EQ(a.conservation_failures, 0u);
}

// --- Live kernel runs ---

void SpawnOverloaded(Kernel& kernel, int core = 0) {
  ThreadParams hog;
  hog.name = "hog";
  hog.period = Milliseconds(10);
  hog.core = core;
  hog.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(12));  // > period: every job late
      co_await api.WaitNextPeriod();
    }
  };
  (void)kernel.CreateThread(hog).value();

  ThreadParams light;
  light.name = "light";
  light.period = Milliseconds(5);
  light.core = core;
  light.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod();
    }
  };
  (void)kernel.CreateThread(light).value();
}

TEST(PostmortemLiveTest, OverloadedRunConservesLateness) {
  KernelConfig config = CalibratedConfig(SchedulerSpec::Rm());
  config.trace_capacity = 1 << 16;
  SimEnv env(config);
  SpawnOverloaded(env.k());
  env.StartAndRunFor(Milliseconds(200));

  ASSERT_EQ(env.k().trace().dropped(), 0u);
  ASSERT_GT(env.k().stats().deadline_misses, 0u);
  PostmortemAnalysis a = AnalyzePostmortem(env.k().trace());
  EXPECT_GT(a.misses_analyzed, 0u);
  EXPECT_EQ(a.conservation_failures, 0u);
  EXPECT_EQ(a.blame.unattributed_ns, 0);
  EXPECT_EQ(a.unmatched_misses, 0u);
  EXPECT_EQ(a.deadline_unknown, 0u);
  for (const JobPostmortem& m : a.misses) {
    EXPECT_TRUE(m.conserved) << "t" << m.thread_id << " job " << m.job_number;
    EXPECT_EQ(m.ledger.sum_ns(), m.response_ns);
    EXPECT_EQ(m.ledger.unattributed_ns, 0);
  }
  // Every kernel-counted miss is either analyzed or visibly incomplete.
  EXPECT_LE(a.misses_analyzed, env.k().stats().deadline_misses);
  EXPECT_GE(a.misses_analyzed + a.incomplete_misses, env.k().stats().deadline_misses);
}

TEST(PostmortemLiveTest, ContendedRunBlamesTheLock) {
  KernelConfig config = CalibratedConfig(SchedulerSpec::Rm());
  config.trace_capacity = 1 << 16;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S", 1).value();

  ThreadParams hi;
  hi.name = "hi";
  hi.period = Milliseconds(10);
  hi.relative_deadline = Milliseconds(6);
  hi.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Microseconds(200));
      co_await api.Acquire(sem);
      co_await api.Compute(Microseconds(300));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  (void)env.k().CreateThread(hi).value();

  ThreadParams lo;
  lo.name = "lo";
  lo.period = Milliseconds(25);
  lo.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(12));  // holds across hi's releases
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  (void)env.k().CreateThread(lo).value();
  env.StartAndRunFor(Milliseconds(200));

  ASSERT_EQ(env.k().trace().dropped(), 0u);
  PostmortemAnalysis a = AnalyzePostmortem(env.k().trace());
  ASSERT_GT(a.misses_analyzed, 0u);
  EXPECT_EQ(a.conservation_failures, 0u);
  EXPECT_EQ(a.blame.unattributed_ns, 0);
  // hi's lateness is dominated by lo's 12ms hold: the lock shows up in the
  // merged blame table.
  EXPECT_FALSE(a.blame.lock_ns.empty());
}

TEST(PostmortemLiveTest, MultiCoreRunConserves) {
  for (int cores : {2, 4}) {
    KernelConfig config = CalibratedConfig(SchedulerSpec::Edf());
    config.num_cores = cores;
    config.trace_capacity = 1 << 17;
    SimEnv env(config);
    for (int c = 0; c < cores; ++c) {
      SpawnOverloaded(env.k(), c);
    }
    env.StartAndRunFor(Milliseconds(100));
    ASSERT_EQ(env.k().trace().dropped(), 0u) << cores << " cores";
    PostmortemAnalysis a = AnalyzePostmortem(env.k().trace());
    EXPECT_GT(a.misses_analyzed, 0u) << cores << " cores";
    EXPECT_EQ(a.conservation_failures, 0u) << cores << " cores";
    EXPECT_EQ(a.blame.unattributed_ns, 0) << cores << " cores";
    EXPECT_EQ(a.unmatched_misses, 0u) << cores << " cores";
  }
}

// Microsecond-truncated CSV replay keeps every ledger telescoping (spans are
// clamped into their gaps), even though in-memory nanosecond precision is
// gone.
TEST(PostmortemLiveTest, CsvRoundTripStaysConserved) {
  KernelConfig config = CalibratedConfig(SchedulerSpec::Rm());
  config.trace_capacity = 1 << 16;
  SimEnv env(config);
  SpawnOverloaded(env.k());
  env.StartAndRunFor(Milliseconds(100));
  ASSERT_EQ(env.k().trace().dropped(), 0u);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  env.k().trace().ExportCsv(f);
  std::rewind(f);
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(f, &import, &error)) << error;
  std::fclose(f);

  PostmortemAnalysis a =
      AnalyzePostmortem(import.events.data(), import.events.size(), import.dropped);
  EXPECT_GT(a.misses_analyzed, 0u);
  EXPECT_EQ(a.conservation_failures, 0u);
  for (const JobPostmortem& m : a.misses) {
    EXPECT_EQ(m.ledger.sum_ns(), m.response_ns);
  }
}

// --- Blame tables ---

TEST(PostmortemTest, BlameMergeIsOrderIndependent) {
  BlameTotals a;
  a.misses_analyzed = 3;
  a.tardiness_ns = 500;
  a.victim_misses[1] = 3;
  a.victim_tardiness_ns[1] = 500;
  a.preemptor_ns[2] = 400;
  a.lock_ns[7] = 100;

  BlameTotals b;
  b.misses_analyzed = 2;
  b.tardiness_ns = 300;
  b.victim_misses[4] = 2;
  b.victim_tardiness_ns[4] = 300;
  b.preemptor_ns[2] = 50;
  b.preemptor_ns[9] = 250;

  BlameTotals ab = a;
  ab.Merge(b);
  BlameTotals ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab.Digest(), ba.Digest());
  EXPECT_EQ(ab.misses_analyzed, 5u);
  EXPECT_EQ(ab.preemptor_ns.at(2), 450);
  EXPECT_NE(ab.Digest(), a.Digest());
}

TEST(PostmortemTest, ReportJsonHasSchemaAndLedgers) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 1, kBudget100us),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(180, TraceEventType::kJobComplete, 1, 1),
  };
  PostmortemAnalysis a = AnalyzePostmortem(ev.data(), ev.size(), 0);
  std::string doc = BuildPostmortemReport("unit", a, nullptr);
  EXPECT_NE(doc.find("\"schema\":\"emeralds.obs.postmortem/1\""), std::string::npos);
  EXPECT_NE(doc.find("\"misses_analyzed\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"own_expected_ns\""), std::string::npos);
  EXPECT_NE(doc.find("\"conservation_failures\":0"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
