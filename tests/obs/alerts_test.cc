// Alert-engine golden tests: synthetic window streams with hand-computed
// dual-window burn rates, checked against the exact fire/resolve event
// stream (rule, window, virtual timestamp, evidence). The engine is pure
// integer arithmetic over the window series, so these are equality tests,
// not tolerance tests. Also: the shared robust-statistics helpers and the
// cross-node fleet outlier rule.

#include "src/obs/alerts.h"

#include <gtest/gtest.h>

#include <vector>

namespace emeralds {
namespace obs {
namespace {

TelemetryWindow Window(int64_t index, uint64_t jobs, uint64_t misses) {
  TelemetryWindow w;
  w.index = index;
  w.start = Instant() + Milliseconds(10) * index;
  w.end = w.start + Milliseconds(10);
  w.jobs_completed = jobs;
  w.deadline_misses = misses;
  return w;
}

AlertConfig MissOnlyConfig() {
  AlertConfig config;
  config.fast_windows = 2;
  config.slow_windows = 4;
  config.miss_burn = BurnRule{true, 10000, 10, 4};  // fire at >= 10% miss rate
  config.chain_burn.enabled = false;
  return config;
}

// --- Dual-window burn rate: the golden fire/resolve profile ---

TEST(AlertEngineTest, BurnFiresOnBothWindowsAndResolvesOnFast) {
  AlertEngine engine(MissOnlyConfig());
  std::vector<AlertEvent> out;
  // 10 jobs per window; misses: 0 0 5 5 0 0.
  // w2: fast(w1,w2) = 5/20 = 25%, slow(w0..w2) = 5/30 = 17% — both over the
  //     10% line with slow total 30 >= min_total 4 => FIRE.
  // w3: still burning, already firing => no event.
  // w4: fast(w3,w4) = 5/20 still over => stays firing.
  // w5: fast(w4,w5) = 0/20 under => RESOLVE.
  uint64_t misses[] = {0, 0, 5, 5, 0, 0};
  std::vector<TelemetryWindow> windows;
  for (int i = 0; i < 6; ++i) {
    windows.push_back(Window(i, 10, misses[i]));
    engine.Observe(windows.back(), 7, &out);
  }

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rule, AlertRuleKind::kDeadlineMissBurn);
  EXPECT_EQ(out[0].node, 7);
  EXPECT_EQ(out[0].window, 2);
  EXPECT_EQ(out[0].time, windows[2].end);  // exact virtual timestamp
  EXPECT_TRUE(out[0].firing);
  EXPECT_EQ(out[0].value, 5u);   // fast-window numerator
  EXPECT_EQ(out[0].total, 20u);  // fast-window denominator

  EXPECT_EQ(out[1].rule, AlertRuleKind::kDeadlineMissBurn);
  EXPECT_EQ(out[1].window, 5);
  EXPECT_EQ(out[1].time, windows[5].end);
  EXPECT_FALSE(out[1].firing);
  EXPECT_EQ(out[1].value, 0u);
  EXPECT_EQ(out[1].total, 20u);
}

// A one-window spike over the fast window alone must NOT fire: the slow
// window is the spike filter.
TEST(AlertEngineTest, SlowWindowSuppressesSingleSpike) {
  AlertConfig config = MissOnlyConfig();
  config.fast_windows = 1;
  config.slow_windows = 8;
  AlertEngine engine(config);
  std::vector<AlertEvent> out;
  // Seven clean windows, then one 20%-miss spike: fast burn is over, but
  // slow = 2/80 = 2.5% stays under the 10% line.
  for (int i = 0; i < 7; ++i) {
    engine.Observe(Window(i, 10, 0), 0, &out);
  }
  engine.Observe(Window(7, 10, 2), 0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(AlertEngineTest, MinTotalFloorKeepsTinySamplesQuiet) {
  AlertConfig config = MissOnlyConfig();
  config.miss_burn.min_total = 50;
  AlertEngine engine(config);
  std::vector<AlertEvent> out;
  // 100% miss rate but only 40 completions in the slow window: below the
  // floor, the ratio is treated as noise.
  for (int i = 0; i < 4; ++i) {
    engine.Observe(Window(i, 10, 10), 0, &out);
  }
  EXPECT_TRUE(out.empty());
}

TEST(AlertEngineTest, PartialHistoryDetectsFromWindowZero) {
  AlertEngine engine(MissOnlyConfig());
  std::vector<AlertEvent> out;
  // Burning from the very first window: min(N, available) semantics mean
  // the engine needs no warm-up period, only the min_total floor.
  engine.Observe(Window(0, 10, 10), 0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].window, 0);
  EXPECT_TRUE(out[0].firing);
}

TEST(AlertEngineTest, StreamIsDeterministic) {
  std::vector<TelemetryWindow> windows;
  uint64_t misses[] = {0, 3, 5, 0, 2, 0, 0, 4};
  for (int i = 0; i < 8; ++i) {
    windows.push_back(Window(i, 10, misses[i]));
  }
  std::vector<AlertEvent> first;
  std::vector<AlertEvent> second;
  for (int run = 0; run < 2; ++run) {
    AlertEngine engine(MissOnlyConfig());
    std::vector<AlertEvent>& out = run == 0 ? first : second;
    for (const TelemetryWindow& w : windows) {
      engine.Observe(w, 3, &out);
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i] == second[i]) << i;
  }
}

// --- Threshold rules (opt-in) ---

TEST(AlertEngineTest, TraceDropRuleFiresAndResolves) {
  AlertConfig config;
  config.miss_burn.enabled = false;
  config.chain_burn.enabled = false;
  config.trace_drop_rule = true;
  config.trace_drop_limit = 100;
  AlertEngine engine(config);
  std::vector<AlertEvent> out;

  TelemetryWindow quiet = Window(0, 10, 0);
  TelemetryWindow noisy = Window(1, 10, 0);
  noisy.trace_dropped = 250;
  TelemetryWindow calm = Window(2, 10, 0);

  engine.Observe(quiet, 0, &out);
  engine.Observe(noisy, 0, &out);
  engine.Observe(calm, 0, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rule, AlertRuleKind::kTraceDrops);
  EXPECT_TRUE(out[0].firing);
  EXPECT_EQ(out[0].window, 1);
  EXPECT_EQ(out[0].value, 250u);
  EXPECT_FALSE(out[1].firing);
  EXPECT_EQ(out[1].window, 2);
}

// --- Robust statistics (shared with fleet triage) ---

TEST(RobustStatsTest, MedianAndMadGoldens) {
  EXPECT_EQ(RobustMedian({}), 0u);
  EXPECT_EQ(RobustMedian({5}), 5u);
  EXPECT_EQ(RobustMedian({4, 1, 3, 2}), 2u);  // lower-middle of even count
  EXPECT_EQ(RobustMad({1, 2, 3, 4}, 2), 1u);
  EXPECT_EQ(RobustMad({7, 7, 7}, 7), 0u);
}

TEST(RobustStatsTest, OutlierCutRequiresBothGuards) {
  // median 2, mad 1: threshold max(5*1, 2/4) = 5, so the cut is v - 2 > 5.
  EXPECT_FALSE(IsRobustOutlier(7, 2, 1));
  EXPECT_TRUE(IsRobustOutlier(8, 2, 1));
  // Uniform population (mad 0): the median/4 floor absorbs one-step jitter.
  EXPECT_FALSE(IsRobustOutlier(101, 100, 0));
  EXPECT_TRUE(IsRobustOutlier(200, 100, 0));
  EXPECT_FALSE(IsRobustOutlier(1, 2, 1));  // below the median is never an outlier
}

// --- Fleet outlier rule ---

TEST(FleetOutlierTest, FiresOnOutlierNodeAndResolves) {
  AlertConfig config;
  config.outlier_floor = 3;
  // Four nodes; node 3 spikes to 5 misses in window 0 and recovers in 1.
  std::vector<TelemetryWindow> n0 = {Window(0, 10, 0), Window(1, 10, 0)};
  std::vector<TelemetryWindow> n1 = n0;
  std::vector<TelemetryWindow> n2 = n0;
  std::vector<TelemetryWindow> n3 = {Window(0, 10, 5), Window(1, 10, 0)};
  std::vector<AlertEvent> out;
  EvaluateFleetOutlierAlerts({&n0, &n1, &n2, &n3}, config, &out);

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].rule, AlertRuleKind::kFleetOutlier);
  EXPECT_EQ(out[0].node, 3);
  EXPECT_EQ(out[0].window, 0);
  EXPECT_TRUE(out[0].firing);
  EXPECT_EQ(out[0].value, 5u);
  EXPECT_EQ(out[0].total, 0u);  // the fleet median
  EXPECT_EQ(out[1].node, 3);
  EXPECT_EQ(out[1].window, 1);
  EXPECT_FALSE(out[1].firing);
}

TEST(FleetOutlierTest, FloorSuppressesSingleStrayMiss) {
  AlertConfig config;
  config.outlier_floor = 3;
  // Two misses over an all-zero fleet is an outlier by the robust cut, but
  // below the floor — no alert.
  std::vector<TelemetryWindow> n0 = {Window(0, 10, 0)};
  std::vector<TelemetryWindow> n1 = {Window(0, 10, 0)};
  std::vector<TelemetryWindow> n2 = {Window(0, 10, 2)};
  std::vector<AlertEvent> out;
  EvaluateFleetOutlierAlerts({&n0, &n1, &n2}, config, &out);
  EXPECT_TRUE(out.empty());
}

// --- Canonical event order ---

TEST(SortAlertEventsTest, OrdersByWindowRuleNode) {
  AlertEvent a;
  a.window = 2;
  a.rule = AlertRuleKind::kDeadlineMissBurn;
  a.node = 0;
  AlertEvent b;
  b.window = 1;
  b.rule = AlertRuleKind::kFleetOutlier;
  b.node = 9;
  AlertEvent c;
  c.window = 1;
  c.rule = AlertRuleKind::kDeadlineMissBurn;
  c.node = 4;
  std::vector<AlertEvent> events = {a, b, c};
  SortAlertEvents(&events);
  EXPECT_TRUE(events[0] == c);
  EXPECT_TRUE(events[1] == b);
  EXPECT_TRUE(events[2] == a);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
