// Observability pipeline tests: log2 histograms, trace analyzer metrics and
// invariant checks (including deliberately corrupted traces), CSV round-trip,
// Perfetto export well-formedness, stats snapshots, and the obs run report.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/core/taskset_runner.h"
#include "src/obs/histogram.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/postmortem.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/trace_csv.h"
#include "src/workload/workload.h"
#include "tests/testing/kernel_env.h"

namespace emeralds {
namespace obs {
namespace {

// --- Log2Histogram ---

TEST(Log2HistogramTest, BucketIndexIsFloorLog2Micros) {
  EXPECT_EQ(Log2Histogram::BucketIndex(Duration()), 0);
  EXPECT_EQ(Log2Histogram::BucketIndex(Nanoseconds(500)), 0);  // sub-us
  EXPECT_EQ(Log2Histogram::BucketIndex(Microseconds(1)), 0);
  EXPECT_EQ(Log2Histogram::BucketIndex(Microseconds(2)), 1);
  EXPECT_EQ(Log2Histogram::BucketIndex(Microseconds(3)), 1);
  EXPECT_EQ(Log2Histogram::BucketIndex(Microseconds(4)), 2);
  EXPECT_EQ(Log2Histogram::BucketIndex(Milliseconds(1)), 9);    // 1024 us
  EXPECT_EQ(Log2Histogram::BucketIndex(Seconds(1000)),
            Log2Histogram::kNumBuckets - 1);  // clamped
}

TEST(Log2HistogramTest, BucketFloors) {
  EXPECT_EQ(Log2Histogram::BucketFloorUs(0), 0);
  EXPECT_EQ(Log2Histogram::BucketFloorUs(1), 2);
  EXPECT_EQ(Log2Histogram::BucketFloorUs(10), 1024);
}

TEST(Log2HistogramTest, AddTracksCountMinMaxMean) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.HighestBucket(), -1);
  EXPECT_TRUE(h.mean().is_zero());
  h.Add(Microseconds(10));
  h.Add(Microseconds(30));
  h.Add(Microseconds(200));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), Microseconds(10));
  EXPECT_EQ(h.max(), Microseconds(200));
  EXPECT_EQ(h.mean(), Microseconds(80));
  EXPECT_EQ(h.bucket(3), 1u);  // 10us in [8,16)
  EXPECT_EQ(h.bucket(4), 1u);  // 30us in [16,32)
  EXPECT_EQ(h.bucket(7), 1u);  // 200us in [128,256)
  EXPECT_EQ(h.HighestBucket(), 7);
}

TEST(Log2HistogramTest, ApproxPercentileWalksBuckets) {
  Log2Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Add(Microseconds(10));  // bucket [8,16)
  }
  h.Add(Milliseconds(5));  // one outlier
  // p50 falls in the 10us bucket: upper edge 16us.
  EXPECT_EQ(h.ApproxPercentile(0.50), Microseconds(16));
  // p100 reaches the outlier bucket; capped at the observed max.
  EXPECT_EQ(h.ApproxPercentile(1.0), Milliseconds(5));
}

// --- Analyzer: synthetic streams ---

TraceEvent Ev(int64_t us, TraceEventType type, int32_t a0, int32_t a1) {
  return TraceEvent{Instant() + Microseconds(us), type, a0, a1};
}

TEST(TraceAnalyzerTest, CleanStreamDerivesMetrics) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 0),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(10, TraceEventType::kSemAcquire, 1, 0),
      Ev(20, TraceEventType::kSemRelease, 1, 0),
      Ev(30, TraceEventType::kJobComplete, 1, 0),
      Ev(30, TraceEventType::kContextSwitch, 1, -1),
      Ev(100, TraceEventType::kJobRelease, 1, 1),
      Ev(100, TraceEventType::kContextSwitch, -1, 1),
      Ev(140, TraceEventType::kJobComplete, 1, 1),
      Ev(140, TraceEventType::kContextSwitch, 1, -1),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.context_switches, 4u);
  EXPECT_EQ(a.jobs_released, 2u);
  EXPECT_EQ(a.jobs_completed, 2u);
  ASSERT_NE(a.task(1), nullptr);
  const TaskMetrics& t = *a.task(1);
  EXPECT_EQ(t.releases, 2u);
  EXPECT_EQ(t.completes, 2u);
  EXPECT_EQ(t.preemptions, 0u);
  EXPECT_EQ(t.sem_acquires, 1u);
  EXPECT_EQ(t.response.count(), 2u);
  EXPECT_EQ(t.response.min(), Microseconds(30));
  EXPECT_EQ(t.response.max(), Microseconds(40));
  EXPECT_EQ(t.run_time, Microseconds(70));
  EXPECT_EQ(a.task(7), nullptr);
}

TEST(TraceAnalyzerTest, PreemptionIsSwitchOutWithOpenJob) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 0),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(10, TraceEventType::kContextSwitch, 1, 2),  // preempted mid-job
      Ev(20, TraceEventType::kContextSwitch, 2, 1),
      Ev(30, TraceEventType::kJobComplete, 1, 0),
      Ev(30, TraceEventType::kContextSwitch, 1, -1),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.task(1)->preemptions, 1u);
  EXPECT_EQ(a.task(2)->preemptions, 0u);  // no open job
}

TEST(TraceAnalyzerTest, BlockingTimeSpansBlockToResolvingAcquire) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(5, TraceEventType::kSemAcquireBlock, 1, 3),
      Ev(5, TraceEventType::kContextSwitch, 1, 2),
      Ev(40, TraceEventType::kSemAcquire, 1, 3),  // handoff resolves the block
      Ev(41, TraceEventType::kContextSwitch, 2, 1),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.sem_blocks, 1u);
  EXPECT_EQ(a.unresolved_blocks_at_end, 0u);
  ASSERT_EQ(a.task(1)->blocking.count(), 1u);
  EXPECT_EQ(a.task(1)->blocking.min(), Microseconds(35));
}

TEST(TraceAnalyzerTest, PiChainDepthFollowsDonorDepth) {
  // 3 blocks on 2 (depth 1), then 2 blocks on 1: 1's depth becomes 2.
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kPiInherit, 2, 3),
      Ev(1, TraceEventType::kPiInherit, 1, 2),
      Ev(9, TraceEventType::kPiRestore, 1, 0),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_EQ(a.max_pi_chain_depth, 2);
  EXPECT_EQ(a.task(2)->max_pi_depth, 1);
  EXPECT_EQ(a.task(1)->max_pi_depth, 2);
  EXPECT_EQ(a.task(3)->pi_donated, 1u);
  EXPECT_EQ(a.task(1)->pi_received, 1u);
}

TEST(TraceAnalyzerTest, FlagsNonMonotoneTime) {
  std::vector<TraceEvent> ev = {
      Ev(100, TraceEventType::kContextSwitch, -1, 1),
      Ev(50, TraceEventType::kSemAcquire, 1, 0),  // time went back
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kNonMonotoneTime);
  EXPECT_EQ(a.violations[0].event_index, 1u);
}

TEST(TraceAnalyzerTest, JobReleaseIsExemptFromMonotoneTime) {
  // The kernel records kJobRelease with the *nominal* release instant, which
  // lies in the past when a job starts late after an overrun.
  std::vector<TraceEvent> ev = {
      Ev(100, TraceEventType::kContextSwitch, -1, 1),
      Ev(60, TraceEventType::kJobRelease, 1, 0),  // retroactive: allowed
      Ev(120, TraceEventType::kJobComplete, 1, 0),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.task(1)->response.min(), Microseconds(60));
}

TEST(TraceAnalyzerTest, FlagsBrokenSwitchPairing) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(10, TraceEventType::kContextSwitch, 2, 3),  // but 1 was running
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kSwitchPairing);
}

TEST(TraceAnalyzerTest, FlagsBlockedThreadSwitchedIn) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(5, TraceEventType::kSemAcquireBlock, 1, 0),
      Ev(5, TraceEventType::kContextSwitch, 1, 2),
      Ev(10, TraceEventType::kContextSwitch, 2, 1),  // 1 still blocked
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kBlockedThreadRan);
  EXPECT_EQ(a.violations[0].event_index, 3u);
}

TEST(TraceAnalyzerTest, FlagsCompleteWithoutRelease) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobComplete, 1, 0),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kCompleteWithoutRelease);
}

TEST(TraceAnalyzerTest, FlagsJobNumberRegression) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 2),
      Ev(5, TraceEventType::kJobComplete, 1, 2),
      Ev(10, TraceEventType::kJobRelease, 1, 1),  // job numbers went back
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), 0);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kJobNumberRegression);
}

TEST(TraceAnalyzerTest, TruncatedWindowSuppressesPreWindowChecks) {
  // A suffix window (dropped > 0) may open mid-stream: the first switch's
  // outgoing thread and a complete for a pre-window release are not
  // violations, and an unresolved trailing block is informational.
  std::vector<TraceEvent> ev = {
      Ev(100, TraceEventType::kContextSwitch, 7, 1),   // unknown prior state
      Ev(110, TraceEventType::kJobComplete, 1, 42),    // released pre-window
      Ev(120, TraceEventType::kSemAcquireBlock, 1, 0),
  };
  TraceAnalysis a = AnalyzeTrace(ev.data(), ev.size(), /*dropped_events=*/5);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.dropped_events, 5u);
  EXPECT_EQ(a.unresolved_blocks_at_end, 1u);
  // The same stream with dropped == 0 is corrupt on both counts.
  TraceAnalysis strict = AnalyzeTrace(ev.data(), ev.size(), 0);
  EXPECT_EQ(strict.violations.size(), 2u);
}

// --- Live kernel runs: analyzer vs the kernel's own counters ---

void SpawnContending(Kernel& kernel, SemId sem, std::vector<ThreadId>* ids) {
  ThreadParams hi;
  hi.name = "hi";
  hi.period = Milliseconds(10);
  hi.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Microseconds(200));
      co_await api.Acquire(sem);
      co_await api.Compute(Microseconds(300));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  ids->push_back(kernel.CreateThread(hi).value());

  ThreadParams lo;
  lo.name = "lo";
  lo.period = Milliseconds(25);
  lo.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(12));  // holds across hi's releases
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  ids->push_back(kernel.CreateThread(lo).value());
}

TEST(TraceAnalyzerLiveTest, ContendedRunReconcilesWithKernelStats) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
  config.trace_capacity = 4096;
  SimEnv env(config);
  SemId sem = env.k().CreateSemaphore("S", 1).value();
  std::vector<ThreadId> ids;
  SpawnContending(env.k(), sem, &ids);
  env.StartAndRunFor(Milliseconds(200));

  const TraceSink& trace = env.k().trace();
  ASSERT_EQ(trace.dropped(), 0u);
  TraceAnalysis a = AnalyzeTrace(trace);
  EXPECT_TRUE(a.ok()) << (a.violations.empty() ? "" : a.violations[0].detail);

  const KernelStats& s = env.k().stats();
  EXPECT_EQ(a.context_switches, s.context_switches);
  EXPECT_EQ(a.deadline_misses, s.deadline_misses);
  EXPECT_EQ(a.jobs_released, s.jobs_released);
  EXPECT_EQ(a.jobs_completed, s.jobs_completed);
  EXPECT_EQ(a.cse_early_pi, s.cse_early_pi);
  // hi contends against lo's 12ms hold: real blocking time was observed.
  EXPECT_GT(s.sem_contended, 0u);
  ASSERT_NE(a.task(ids[0].value), nullptr);
  EXPECT_GT(a.task(ids[0].value)->blocking.count(), 0u);
  EXPECT_GT(a.task(ids[0].value)->blocking.min(), Duration());
  EXPECT_GT(a.task(ids[0].value)->pi_donated, 0u);
}

TEST(TraceAnalyzerLiveTest, SeedTasksetsPassInvariants) {
  struct Scenario {
    SchedulerSpec spec;
    const char* name;
  };
  for (const Scenario& sc : {Scenario{SchedulerSpec::Rm(), "rm"},
                             Scenario{SchedulerSpec::Edf(), "edf"},
                             Scenario{SchedulerSpec::Csd(2), "csd2"}}) {
    KernelConfig config = ZeroCostConfig(sc.spec);
    config.trace_capacity = 8192;
    SimEnv env(config);
    TaskSet set = Table2Workload();
    std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set);
    env.StartAndRunFor(Milliseconds(40));
    TraceAnalysis a = AnalyzeTrace(env.k().trace());
    EXPECT_TRUE(a.ok()) << sc.name << ": "
                        << (a.violations.empty() ? "" : a.violations[0].detail);
    EXPECT_EQ(a.context_switches, env.k().stats().context_switches) << sc.name;
    EXPECT_EQ(a.deadline_misses, env.k().stats().deadline_misses) << sc.name;
  }
}

// --- CSV round-trip ---

TEST(TraceCsvTest, ExportImportRoundTrip) {
  TraceSink sink(8);
  sink.Record(Instant() + Microseconds(1), TraceEventType::kContextSwitch, -1, 0);
  sink.Record(Instant() + Microseconds(2), TraceEventType::kJobRelease, 0, 3);
  sink.Record(Instant() + Microseconds(9), TraceEventType::kSemAcquireBlock, 0, 2);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.ExportCsv(f);
  std::rewind(f);
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(f, &import, &error)) << error;
  std::fclose(f);

  ASSERT_EQ(import.events.size(), sink.size());
  EXPECT_EQ(import.dropped, 0u);
  for (size_t i = 0; i < sink.size(); ++i) {
    EXPECT_EQ(import.events[i].time, sink.at(i).time) << i;
    EXPECT_EQ(import.events[i].type, sink.at(i).type) << i;
    EXPECT_EQ(import.events[i].arg0, sink.at(i).arg0) << i;
    EXPECT_EQ(import.events[i].arg1, sink.at(i).arg1) << i;
  }
}

TEST(TraceCsvTest, RoundTripPreservesDroppedTrailer) {
  TraceSink sink(2);
  for (int i = 0; i < 6; ++i) {
    sink.Record(Instant() + Microseconds(i), TraceEventType::kIrq, i, 0);
  }
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.ExportCsv(f);
  std::rewind(f);
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(f, &import, &error)) << error;
  std::fclose(f);
  EXPECT_EQ(import.events.size(), 2u);
  EXPECT_EQ(import.dropped, 4u);
}

TEST(TraceCsvTest, LegacyFourColumnImportReExportsAsPerfetto) {
  // The pre-arg2 CSV dialect: 4-column header, releases without encoded
  // deadlines. It must import with arg2 = 0 and survive the exact pipeline
  // trace_inspect --perfetto runs on it: analyzer, postmortem (which may
  // only count the legacy miss, never attribute it), and the Chrome JSON
  // re-export.
  std::string csv =
      "# emeralds trace export\n"
      "time_us,event,arg0,arg1\n"
      "0,job_release,1,0\n"
      "0,context_switch,-1,1\n"
      "40,deadline_miss,1,0\n"
      "50,job_complete,1,0\n"
      "50,context_switch,1,-1\n"
      "# dropped=3\n";
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(csv, &import, &error)) << error;
  ASSERT_EQ(import.events.size(), 5u);
  EXPECT_EQ(import.dropped, 3u);
  for (const TraceEvent& e : import.events) {
    EXPECT_EQ(e.arg2, 0);
  }

  TraceAnalysis a = AnalyzeTrace(import.events.data(), import.events.size(), import.dropped);
  EXPECT_TRUE(a.ok());
  PostmortemAnalysis pm =
      AnalyzePostmortem(import.events.data(), import.events.size(), import.dropped);
  EXPECT_EQ(pm.conservation_failures, 0u);
  EXPECT_EQ(pm.misses_analyzed, 0u);  // no deadline on a legacy release
  EXPECT_EQ(pm.deadline_unknown, 1u);

  PerfettoExportOptions options;
  options.dropped_events = import.dropped;
  options.annotations = PostmortemAnnotations(pm);
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  size_t entries = ExportPerfettoJson(import.events.data(), import.events.size(), options, f);
  EXPECT_GT(entries, import.events.size());
  std::rewind(f);
  std::string text;
  char buf[1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error << "\n" << text;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  EXPECT_EQ(events->array.size(), entries);
  bool saw_running_slice = false;
  bool saw_miss_marker = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "X") {
      saw_running_slice = true;
    }
    const JsonValue* name = e.Find("name");
    if (ph->string == "i" && name != nullptr &&
        name->string.find("MISS") != std::string::npos) {
      saw_miss_marker = true;
    }
  }
  EXPECT_TRUE(saw_running_slice);
  EXPECT_TRUE(saw_miss_marker);
}

TEST(TraceCsvTest, RejectsMalformedInput) {
  TraceCsvImport import;
  std::string error;
  EXPECT_FALSE(ImportTraceCsv(std::string("nonsense\n"), &import, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(ImportTraceCsv(std::string("time_us,event,arg0,arg1\n1,not_a_type,0,0\n"),
                              &import, &error));
  EXPECT_NE(error.find("unknown event type"), std::string::npos) << error;
  EXPECT_FALSE(ImportTraceCsv(std::string("time_us,event,arg0,arg1\nx,irq,0,0\n"), &import,
                              &error));
  EXPECT_FALSE(ImportTraceCsv(std::string(""), &import, &error));
}

TEST(TraceCsvTest, ImportedCorruptionIsFlaggedByAnalyzer) {
  // The full offline path trace_inspect uses: a CSV whose switch pairing was
  // hand-corrupted must come back as a structured violation.
  std::string csv =
      "time_us,event,arg0,arg1\n"
      "0,context_switch,-1,1\n"
      "10,context_switch,2,3\n";  // corrupt: thread 1 was running
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(csv, &import, &error)) << error;
  TraceAnalysis a = AnalyzeTrace(import.events.data(), import.events.size(), import.dropped);
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, InvariantKind::kSwitchPairing);
}

// --- Perfetto export ---

TEST(PerfettoExportTest, EmitsParsableJsonWithExpectedEntries) {
  std::vector<TraceEvent> ev = {
      Ev(0, TraceEventType::kJobRelease, 1, 0),
      Ev(0, TraceEventType::kContextSwitch, -1, 1),
      Ev(5, TraceEventType::kSemAcquire, 1, 2),
      Ev(8, TraceEventType::kSemRelease, 1, 2),
      Ev(9, TraceEventType::kDeadlineMiss, 1, 0),
      Ev(10, TraceEventType::kJobComplete, 1, 0),
      Ev(10, TraceEventType::kContextSwitch, 1, -1),
      Ev(11, TraceEventType::kPiInherit, 2, 1),
  };
  PerfettoExportOptions options;
  options.thread_names = {"idle", "tau_1", "tau_2"};
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  size_t entries = ExportPerfettoJson(ev.data(), ev.size(), options, f);
  EXPECT_GT(entries, ev.size());  // metadata + spans + instants

  std::rewind(f);
  std::string text;
  char buf[1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error << "\n" << text;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  EXPECT_EQ(events->array.size(), entries);
  // Thread-name metadata and the running slice are present.
  bool saw_thread_name = false;
  bool saw_running_slice = false;
  bool saw_flow_start = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M" && e.Find("args") != nullptr) {
      saw_thread_name = true;
    }
    if (ph->string == "X") {
      saw_running_slice = true;
      EXPECT_NE(e.Find("dur"), nullptr);
    }
    if (ph->string == "s") {
      saw_flow_start = true;
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_running_slice);
  EXPECT_TRUE(saw_flow_start);
}

TEST(PerfettoExportTest, KernelOverloadUsesThreadNames) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
  config.trace_capacity = 1024;
  SimEnv env(config);
  TaskSet set = Table2Workload();
  SpawnTaskSet(env.k(), set);
  env.StartAndRunFor(Milliseconds(10));

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  ASSERT_GT(ExportPerfettoJson(env.k(), f), 0u);
  std::rewind(f);
  std::string text;
  char buf[1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error;
  // SpawnTaskSet names every thread "task"; KernelThreadNames appends the id.
  EXPECT_NE(text.find("task/0"), std::string::npos);
}

// --- Stats snapshots ---

TEST(StatsSamplerTest, SamplesAreDeltas) {
  StatsSampler sampler(4);
  KernelStats s;
  s.context_switches = 10;
  s.jobs_completed = 3;
  s.compute_time = Milliseconds(5);
  sampler.Sample(Instant() + Milliseconds(10), s);
  s.context_switches = 25;
  s.jobs_completed = 4;
  s.compute_time = Milliseconds(8);
  sampler.Sample(Instant() + Milliseconds(20), s);

  ASSERT_EQ(sampler.size(), 2u);
  EXPECT_EQ(sampler.at(0).context_switches, 10u);
  EXPECT_EQ(sampler.at(0).compute_time, Milliseconds(5));
  EXPECT_EQ(sampler.at(1).context_switches, 15u);
  EXPECT_EQ(sampler.at(1).jobs_completed, 1u);
  EXPECT_EQ(sampler.at(1).compute_time, Milliseconds(3));
  EXPECT_EQ(sampler.at(1).time, Instant() + Milliseconds(20));
}

TEST(StatsSamplerTest, RebaseAbsorbsCounterReset) {
  StatsSampler sampler(4);
  KernelStats s;
  s.compute_time = Milliseconds(5);
  sampler.Sample(Instant() + Milliseconds(10), s);
  s.compute_time = Duration();  // external reset (ResetChargeAccounting)
  sampler.Rebase(s);
  s.compute_time = Milliseconds(2);
  sampler.Sample(Instant() + Milliseconds(20), s);
  EXPECT_EQ(sampler.at(1).compute_time, Milliseconds(2));  // not 2ms - 5ms
}

TEST(StatsSamplerTest, RingEvictsOldestAndCountsDrops) {
  StatsSampler sampler(2);
  KernelStats s;
  for (int i = 1; i <= 5; ++i) {
    s.context_switches = static_cast<uint64_t>(10 * i);
    sampler.Sample(Instant() + Milliseconds(i), s);
  }
  EXPECT_EQ(sampler.size(), 2u);
  EXPECT_EQ(sampler.dropped(), 3u);
  EXPECT_EQ(sampler.at(0).time, Instant() + Milliseconds(4));
  EXPECT_EQ(sampler.at(1).context_switches, 10u);  // still a per-interval delta
}

TEST(StatsSamplerLiveTest, KernelDrivesPeriodicSampling) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
  config.trace_capacity = 1024;
  SimEnv env(config);
  env.k().EnableStatsSampling(Milliseconds(10), 16);
  TaskSet set = Table2Workload();
  SpawnTaskSet(env.k(), set);
  env.StartAndRunFor(Milliseconds(95));

  const StatsSampler* sampler = env.k().stats_sampler();
  ASSERT_NE(sampler, nullptr);
  // Samples at 10, 20, ..., 90 ms.
  ASSERT_EQ(sampler->size(), 9u);
  uint64_t sum = 0;
  for (size_t i = 0; i < sampler->size(); ++i) {
    EXPECT_EQ(sampler->at(i).time, Instant() + Milliseconds(10 * (i + 1)));
    sum += sampler->at(i).context_switches;
  }
  // Delta sum over [0, 90ms] cannot exceed the final cumulative counter and
  // must account for everything before the last sample point.
  EXPECT_LE(sum, env.k().stats().context_switches);
  EXPECT_GT(sum, 0u);
}

// --- PrintKernelStats stream parameter (satellite of the Dump change) ---

TEST(PrintKernelStatsTest, WritesToGivenStream) {
  KernelStats s;
  s.context_switches = 7;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  PrintKernelStats(s, f);
  std::rewind(f);
  std::string text;
  char buf[1024];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  EXPECT_NE(text.find("context switches"), std::string::npos) << text;
}

// --- Obs run report ---

TEST(ObsReportTest, BuildsValidatedSchemaWithReconciliation) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
  config.trace_capacity = 8192;
  SimEnv env(config);
  env.k().EnableStatsSampling(Milliseconds(10), 16);
  TaskSet set = Table2Workload();
  std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set);
  env.StartAndRunFor(Milliseconds(40));

  ObsRunInfo info;
  info.label = "unit";
  info.scheduler = "RM";
  info.run_duration = Milliseconds(40);
  std::string text = BuildObsRunReport(info, env.k(), ids);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error << "\n" << text.substr(0, 400);
  ASSERT_NE(root.Find("schema"), nullptr);
  EXPECT_EQ(root.Find("schema")->string, kObsRunSchema);
  ASSERT_NE(root.Find("tasks"), nullptr);
  EXPECT_EQ(root.Find("tasks")->array.size(), ids.size());

  const JsonValue* recon = root.Find("reconciliation");
  ASSERT_NE(recon, nullptr);
  EXPECT_TRUE(recon->Find("checked")->boolean);
  EXPECT_TRUE(recon->Find("context_switches_match")->boolean);
  EXPECT_TRUE(recon->Find("deadline_misses_match")->boolean);
  EXPECT_TRUE(recon->Find("jobs_completed_match")->boolean);

  const JsonValue* analysis = root.Find("analysis");
  ASSERT_NE(analysis, nullptr);
  EXPECT_TRUE(analysis->Find("violations")->array.empty());
  EXPECT_EQ(analysis->Find("context_switches")->number,
            root.Find("kernel_stats")->Find("context_switches")->number);

  const JsonValue* snapshots = root.Find("snapshots");
  ASSERT_NE(snapshots, nullptr);
  EXPECT_TRUE(snapshots->Find("enabled")->boolean);
  EXPECT_EQ(snapshots->Find("samples")->array.size(), 4u);  // 10, 20, 30, 40 ms
}

TEST(ObsReportTest, SnapshotsSectionDisabledWithoutSampler) {
  KernelConfig config = ZeroCostConfig(SchedulerSpec::Rm());
  config.trace_capacity = 256;
  SimEnv env(config);
  TaskSet set = Table2Workload();
  std::vector<ThreadId> ids = SpawnTaskSet(env.k(), set);
  env.StartAndRunFor(Milliseconds(5));
  ObsRunInfo info;
  info.label = "nosampler";
  info.scheduler = "RM";
  info.run_duration = Milliseconds(5);
  std::string text = BuildObsRunReport(info, env.k(), ids);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error;
  EXPECT_FALSE(root.Find("snapshots")->Find("enabled")->boolean);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
