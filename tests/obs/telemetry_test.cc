// Mergeable-histogram and fleet-telemetry merge tests.
//
// The property that makes the fleet telemetry plane exact rather than
// approximate: merging per-node Log2Histogram sketches is bucket-identical
// to sketching the concatenated sample streams, so any percentile table
// computed over a merged histogram equals the table a single observer of
// every sample would have produced (at bucket granularity).

#include "src/obs/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/base/rng.h"
#include "src/obs/histogram.h"

namespace emeralds {
namespace obs {
namespace {

std::vector<Duration> DrawSamples(uint64_t seed, int n, int64_t lo_us, int64_t hi_us) {
  Rng rng(seed);
  std::vector<Duration> samples;
  samples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    samples.push_back(Microseconds(rng.UniformInt(lo_us, hi_us)));
  }
  return samples;
}

Log2Histogram Sketch(const std::vector<Duration>& samples) {
  Log2Histogram h;
  for (Duration d : samples) {
    h.Add(d);
  }
  return h;
}

void ExpectIdentical(const Log2Histogram& a, const Log2Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.total(), b.total());
  for (int i = 0; i < Log2Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
  }
}

// merge(sketch(A), sketch(B), ...) == sketch(A ++ B ++ ...), bucket-exact.
TEST(HistogramMergeTest, MergeOfSketchesEqualsSketchOfConcatenation) {
  std::vector<std::vector<Duration>> streams;
  streams.push_back(DrawSamples(1, 500, 0, 100000));
  streams.push_back(DrawSamples(2, 37, 1, 50));
  streams.push_back(DrawSamples(3, 1000, 1000000, 500000000));
  streams.push_back({});  // an idle node contributes nothing

  Log2Histogram merged;
  std::vector<Duration> all;
  for (const std::vector<Duration>& s : streams) {
    merged.Merge(Sketch(s));
    all.insert(all.end(), s.begin(), s.end());
  }
  ExpectIdentical(merged, Sketch(all));

  // Merge order must not matter either.
  Log2Histogram reversed;
  for (auto it = streams.rbegin(); it != streams.rend(); ++it) {
    reversed.Merge(Sketch(*it));
  }
  ExpectIdentical(reversed, merged);
}

TEST(HistogramMergeTest, EmptyEdgeCases) {
  Log2Histogram empty;
  Log2Histogram also_empty;
  empty.Merge(also_empty);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.PercentileBound(0.99), Duration());

  // Empty into populated: a no-op, including min (the empty side's
  // zero-initialized min must not clobber a positive minimum).
  Log2Histogram h;
  h.Add(Microseconds(100));
  h.Add(Microseconds(200));
  Log2Histogram before = h;
  h.Merge(empty);
  ExpectIdentical(h, before);
  EXPECT_EQ(h.min(), Microseconds(100));

  // Populated into empty: adopts everything exactly.
  Log2Histogram into_empty;
  into_empty.Merge(h);
  ExpectIdentical(into_empty, h);
}

// The last bucket absorbs everything above its floor; merged overflow
// samples must stay there and the percentile bound must stay clamped by the
// exact max rather than the (infinite) bucket edge.
TEST(HistogramMergeTest, OverflowBucketMergesAndClamps) {
  Duration huge = Seconds(1000000);  // far beyond the last bucket floor
  Log2Histogram a;
  a.Add(huge);
  Log2Histogram b;
  b.Add(huge + Seconds(5));
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bucket(Log2Histogram::kNumBuckets - 1), 2u);
  EXPECT_EQ(a.max(), huge + Seconds(5));
  EXPECT_EQ(a.PercentileBound(1.0), a.max());
}

// The bound property: for every fraction, the true percentile (from the raw
// sorted samples) never exceeds PercentileBound, and the bound never exceeds
// the exact max — on a merged histogram just as on a directly-built one.
TEST(HistogramMergeTest, PercentileBoundBoundsTheTruePercentile) {
  std::vector<Duration> a = DrawSamples(7, 400, 0, 20000);
  std::vector<Duration> b = DrawSamples(8, 600, 100, 3000000);
  Log2Histogram merged;
  merged.Merge(Sketch(a));
  merged.Merge(Sketch(b));

  std::vector<Duration> all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());

  for (double fraction : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    size_t rank = static_cast<size_t>(fraction * static_cast<double>(all.size()));
    if (rank < 1) {
      rank = 1;
    }
    Duration truth = all[rank - 1];
    Duration bound = merged.PercentileBound(fraction);
    EXPECT_LE(truth, bound) << "fraction " << fraction;
    EXPECT_LE(bound, merged.max()) << "fraction " << fraction;
  }
}

NodeTelemetry MakeNode(const char* chain_name, int64_t deadline_us, uint64_t overruns,
                       uint64_t dropped, int64_t headroom_us) {
  NodeTelemetry t;
  t.collected = true;
  t.jobs_completed = 10;
  t.deadline_misses = 1;
  t.chain_overruns = overruns;
  t.trace_dropped = dropped;
  t.headroom_seen = true;
  t.headroom_min = Microseconds(headroom_us);
  t.response.Add(Microseconds(100));

  ChainTelemetry c;
  c.name = chain_name;
  c.deadline_min = Microseconds(deadline_us);
  c.deadline_max = Microseconds(deadline_us);
  c.completed = 5;
  c.overruns = overruns;
  c.e2e.Add(Microseconds(deadline_us / 2));
  c.hops.resize(1);
  c.hops[0].queue.Add(Microseconds(10));
  c.hops[0].exec.Add(Microseconds(20));
  t.chains.push_back(c);
  return t;
}

TEST(FleetTelemetryMergeTest, MergesChainsByNameAndTracksWorstNodes) {
  FleetTelemetry fleet;
  MergeNodeTelemetry(&fleet, MakeNode("pipe", 3000, 2, 0, 500), 0);
  MergeNodeTelemetry(&fleet, MakeNode("pipe", 5000, 1, 40, 80), 1);
  MergeNodeTelemetry(&fleet, MakeNode("tick", 5000, 0, 10, 900), 2);

  NodeTelemetry uncollected;  // telemetry off: must not contribute
  MergeNodeTelemetry(&fleet, uncollected, 3);

  EXPECT_EQ(fleet.nodes_collected, 3);
  EXPECT_EQ(fleet.jobs_completed, 30u);
  EXPECT_EQ(fleet.deadline_misses, 3u);
  EXPECT_EQ(fleet.chain_overruns, 3u);
  EXPECT_EQ(fleet.response.count(), 3u);

  // Same-name chains merge (deadline range widens, counters add); distinct
  // names stay separate.
  ASSERT_EQ(fleet.chains.size(), 2u);
  const ChainTelemetry& pipe = fleet.chains[0];
  EXPECT_EQ(pipe.name, "pipe");
  EXPECT_EQ(pipe.deadline_min, Microseconds(3000));
  EXPECT_EQ(pipe.deadline_max, Microseconds(5000));
  EXPECT_EQ(pipe.completed, 10u);
  EXPECT_EQ(pipe.overruns, 3u);
  EXPECT_EQ(pipe.e2e.count(), 2u);
  ASSERT_EQ(pipe.hops.size(), 1u);
  EXPECT_EQ(pipe.hops[0].queue.count(), 2u);
  EXPECT_EQ(fleet.chains[1].name, "tick");

  // Worst-node tracking: the minimum headroom and the heaviest trace drop
  // carry the node index that produced them.
  EXPECT_TRUE(fleet.headroom_seen);
  EXPECT_EQ(fleet.headroom_min, Microseconds(80));
  EXPECT_EQ(fleet.headroom_min_node, 1);
  EXPECT_EQ(fleet.trace_dropped_total, 50u);
  EXPECT_EQ(fleet.trace_dropped_worst, 40u);
  EXPECT_EQ(fleet.trace_dropped_worst_node, 1);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
