// Causal event-chain analyzer tests: instance reconstruction over synthetic
// emit/consume streams (exact telescoping of the latency breakdown, deadline
// overruns, consumer/carrier matching), token-conservation violations and
// their truncation-aware degradation to orphan-hop counts, and JSON-escaping
// hardening of every surface that renders user-controlled names (chain
// reports, Perfetto export).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/json.h"
#include "src/obs/chains.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/trace_csv.h"

namespace emeralds {
namespace obs {
namespace {

constexpr int32_t kIrqEp = ChainEndpointPack(ChainEndpointKind::kIrq, 3);
constexpr int32_t kSmsgEp = ChainEndpointPack(ChainEndpointKind::kSmsg, 0);

TraceEvent ChainEv(int64_t us, TraceEventType type, uint32_t origin, int32_t endpoint, int hop,
                   int actor) {
  return TraceEvent{Instant() + Microseconds(us), type, static_cast<int32_t>(origin), endpoint,
                    ChainHopPack(hop, actor)};
}

// irq:3 consumed by thread 1, which republishes on smsg:0 for thread 2.
ResolvedChain TwoStageSpec(Duration deadline = Milliseconds(1)) {
  ResolvedChain c;
  c.name = "pipe";
  c.deadline = deadline;
  c.resolved = true;
  c.stages.push_back(ResolvedChainStage{kIrqEp, 1});
  c.stages.push_back(ResolvedChainStage{kSmsgEp, 2});
  return c;
}

// One complete traversal by `origin`: ISR emit at t0, driver consume at
// t0+10 (queue 10), driver re-emit at t0+25 (exec 15), reader consume at
// t0+40 (queue 15). End-to-end 40us.
std::vector<TraceEvent> OneInstance(uint32_t origin, int64_t t0) {
  return {
      ChainEv(t0, TraceEventType::kChainEmit, origin, kIrqEp, 0, -1),
      ChainEv(t0 + 10, TraceEventType::kChainConsume, origin, kIrqEp, 1, 1),
      ChainEv(t0 + 25, TraceEventType::kChainEmit, origin, kSmsgEp, 1, 1),
      ChainEv(t0 + 40, TraceEventType::kChainConsume, origin, kSmsgEp, 2, 2),
  };
}

TEST(ChainAnalyzerTest, ReconstructsTwoStageInstanceExactly) {
  std::vector<TraceEvent> events = OneInstance(7, 100);
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {TwoStageSpec()});

  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.complete_window);
  EXPECT_EQ(a.chain_emits, 2u);
  EXPECT_EQ(a.chain_consumes, 2u);
  EXPECT_EQ(a.origins_minted, 1u);
  EXPECT_EQ(a.orphan_hops, 0u);
  EXPECT_EQ(a.unconsumed_emits, 0u);

  ASSERT_EQ(a.chains.size(), 1u);
  const ChainReport& c = a.chains[0];
  EXPECT_TRUE(c.resolved);
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.incomplete, 0u);
  EXPECT_EQ(c.overruns, 0u);
  EXPECT_EQ(c.e2e.total(), Microseconds(40));
  ASSERT_EQ(c.hops.size(), 2u);
  EXPECT_EQ(c.hops[0].queue.total(), Microseconds(10));
  EXPECT_EQ(c.hops[0].exec.total(), Microseconds(15));
  EXPECT_EQ(c.hops[1].queue.total(), Microseconds(15));
  EXPECT_EQ(c.hops[1].exec.count(), 0u);

  // The telescoping identity: e2e == sum of per-hop queue + exec, exactly.
  Duration hop_total;
  for (const ChainHopStats& h : c.hops) {
    hop_total += h.queue.total() + h.exec.total();
  }
  EXPECT_EQ(hop_total, c.e2e.total());
}

TEST(ChainAnalyzerTest, DeadlineOverrunCounted) {
  std::vector<TraceEvent> events = OneInstance(7, 0);
  ChainAnalysis a =
      AnalyzeChains(events.data(), events.size(), 0, {TwoStageSpec(Microseconds(30))});
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_EQ(a.chains[0].completed, 1u);
  EXPECT_EQ(a.chains[0].overruns, 1u);  // 40us e2e > 30us SLO
}

TEST(ChainAnalyzerTest, DeclaredConsumerMismatchLeavesInstanceInFlight) {
  // Final consume lands on thread 9, but the spec demands thread 2.
  std::vector<TraceEvent> events = OneInstance(7, 0);
  events[3] = ChainEv(40, TraceEventType::kChainConsume, 7, kSmsgEp, 2, 9);
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {TwoStageSpec()});
  EXPECT_TRUE(a.ok());  // conservation holds; only the spec match fails
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_EQ(a.chains[0].completed, 0u);
  EXPECT_EQ(a.chains[0].incomplete, 1u);
}

TEST(ChainAnalyzerTest, MidChainEmitRequiresCarrierContinuity) {
  // The smsg re-emit is by thread 5, not the thread-1 carrier that consumed
  // stage 0 — some unrelated publish reusing the origin's hop arithmetic.
  // The instance must not advance on it.
  std::vector<TraceEvent> events = OneInstance(7, 0);
  events[2] = ChainEv(25, TraceEventType::kChainEmit, 7, kSmsgEp, 1, 5);
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {TwoStageSpec()});
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_EQ(a.chains[0].completed, 0u);
  EXPECT_EQ(a.chains[0].incomplete, 1u);
}

TEST(ChainAnalyzerTest, InterleavedInstancesOfDistinctOriginsBothComplete) {
  std::vector<TraceEvent> first = OneInstance(1, 0);
  std::vector<TraceEvent> second = OneInstance(2, 5);
  std::vector<TraceEvent> events;
  for (size_t i = 0; i < first.size(); ++i) {
    events.push_back(first[i]);
    events.push_back(second[i]);
  }
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {TwoStageSpec()});
  EXPECT_TRUE(a.ok());
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_EQ(a.chains[0].completed, 2u);
  EXPECT_EQ(a.chains[0].e2e.total(), Microseconds(80));
}

// Satellite: a consume whose emit fell outside the retained window must be a
// counted orphan hop on a truncated ring — never a false violation.
TEST(ChainAnalyzerTest, OrphanConsumeDegradesToCountWhenWindowTruncated) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), /*dropped_events=*/3, {});
  EXPECT_FALSE(a.complete_window);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.violations.empty());
  EXPECT_EQ(a.orphan_hops, 1u);
}

TEST(ChainAnalyzerTest, OrphanConsumeIsViolationInCompleteWindow) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_TRUE(a.complete_window);
  EXPECT_FALSE(a.ok());
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, ChainViolationKind::kOrphanConsume);
  EXPECT_EQ(a.orphan_hops, 0u);
}

// Satellite: a consume at exactly the hop cap with no visible emit is the
// kernel's saturation path — the producing operation found the token already
// at kMaxChainHops, dropped it, and recorded no emit — so the analyzer must
// count it as a saturated hop, never a conservation violation, even in a
// complete window.
TEST(ChainAnalyzerTest, ConsumeAtHopCapIsSaturationNotViolation) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, kMaxChainHops, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_TRUE(a.complete_window);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(a.violations.empty());
  EXPECT_EQ(a.saturated_hops, 1u);
  EXPECT_EQ(a.orphan_hops, 0u);
}

// One hop below the cap the token could not have been dropped by saturation,
// so a missing emit in a complete window is still a real violation.
TEST(ChainAnalyzerTest, ConsumeBelowHopCapStaysOrphanViolation) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, kMaxChainHops - 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_FALSE(a.ok());
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, ChainViolationKind::kOrphanConsume);
  EXPECT_EQ(a.saturated_hops, 0u);
}

// Above the cap no legitimate token exists at all: still malformed, never
// counted as saturation.
TEST(ChainAnalyzerTest, ConsumeBeyondHopCapStaysMalformed) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, kMaxChainHops + 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, ChainViolationKind::kMalformedToken);
  EXPECT_EQ(a.saturated_hops, 0u);
}

// Saturation is recognized before the truncation branch: on a truncated ring
// a cap-hop consume is still counted as saturated, not lumped into the
// orphan-hop bucket.
TEST(ChainAnalyzerTest, SaturatedHopCountedOnTruncatedWindowToo) {
  std::vector<TraceEvent> events = {
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, kMaxChainHops, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), /*dropped_events=*/2, {});
  EXPECT_FALSE(a.complete_window);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.saturated_hops, 1u);
  EXPECT_EQ(a.orphan_hops, 0u);
}

TEST(ChainAnalyzerTest, EpochMarkerForcesIncompleteWindow) {
  // A sink Reset clears dropped() but tokens banked before the reset can
  // surface afterwards: the epoch marker alone must disarm the violation.
  std::vector<TraceEvent> events = {
      TraceEvent{Instant(), TraceEventType::kTraceEpoch, 1, 0, 0},
      ChainEv(10, TraceEventType::kChainConsume, 42, kIrqEp, 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_FALSE(a.complete_window);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.orphan_hops, 1u);
}

TEST(ChainAnalyzerTest, OriginReuseFlagged) {
  std::vector<TraceEvent> events = {
      ChainEv(0, TraceEventType::kChainEmit, 9, kIrqEp, 0, -1),
      ChainEv(5, TraceEventType::kChainEmit, 9, kSmsgEp, 0, 1),  // minted again
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  ASSERT_EQ(a.violations.size(), 1u);
  EXPECT_EQ(a.violations[0].kind, ChainViolationKind::kOriginReuse);
  EXPECT_EQ(a.origins_minted, 1u);
}

TEST(ChainAnalyzerTest, MalformedTokensFlagged) {
  std::vector<TraceEvent> events = {
      ChainEv(0, TraceEventType::kChainEmit, 0, kIrqEp, 0, -1),    // origin 0
      ChainEv(1, TraceEventType::kChainConsume, 5, kIrqEp, 0, 1),  // consume at hop 0
      ChainEv(2, TraceEventType::kChainEmit, 6, kIrqEp, kMaxChainHops + 1, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  ASSERT_EQ(a.violations.size(), 3u);
  for (const ChainViolation& v : a.violations) {
    EXPECT_EQ(v.kind, ChainViolationKind::kMalformedToken);
  }
}

TEST(ChainAnalyzerTest, MultiConsumeOfOneEmitIsLegitimate) {
  // State-message re-reads and condvar broadcasts consume one emit many
  // times; conservation must accept every one of them.
  std::vector<TraceEvent> events = {
      ChainEv(0, TraceEventType::kChainEmit, 3, kSmsgEp, 0, 1),
      ChainEv(10, TraceEventType::kChainConsume, 3, kSmsgEp, 1, 2),
      ChainEv(20, TraceEventType::kChainConsume, 3, kSmsgEp, 1, 4),
      ChainEv(30, TraceEventType::kChainConsume, 3, kSmsgEp, 1, 5),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.chain_consumes, 3u);
  EXPECT_EQ(a.unconsumed_emits, 0u);
}

TEST(ChainAnalyzerTest, UnconsumedEmitIsInformationalOnly) {
  std::vector<TraceEvent> events = {
      ChainEv(0, TraceEventType::kChainEmit, 3, kSmsgEp, 0, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {});
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.unconsumed_emits, 1u);
}

TEST(ChainAnalyzerTest, UnresolvedSpecStillGetsReportRow) {
  ResolvedChain ghost;
  ghost.name = "ghost";
  ghost.resolved = false;
  std::vector<TraceEvent> events = OneInstance(7, 0);
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {ghost});
  EXPECT_TRUE(a.ok());
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_FALSE(a.chains[0].resolved);
  EXPECT_EQ(a.chains[0].completed, 0u);
  EXPECT_EQ(a.chains[0].incomplete, 0u);
}

TEST(ChainAnalyzerTest, ChainEventsSurviveCsvRoundTrip) {
  TraceSink sink(64);
  for (const TraceEvent& e : OneInstance(11, 50)) {
    sink.Record(e.time, e.type, e.arg0, e.arg1, e.arg2);
  }
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  sink.ExportCsv(f);
  std::rewind(f);
  TraceCsvImport import;
  std::string error;
  ASSERT_TRUE(ImportTraceCsv(f, &import, &error)) << error;
  std::fclose(f);

  ChainAnalysis a = AnalyzeChains(import.events.data(), import.events.size(), import.dropped,
                                  {TwoStageSpec()});
  EXPECT_TRUE(a.ok());
  ASSERT_EQ(a.chains.size(), 1u);
  EXPECT_EQ(a.chains[0].completed, 1u);
  EXPECT_EQ(a.chains[0].e2e.total(), Microseconds(40));
}

TEST(ChainAnalyzerTest, TraceAnalyzerDoesNotTreatTokenOriginsAsThreads) {
  // Chain events carry a token origin in arg0; a large origin id must not
  // materialize as a phantom task row in the trace analysis.
  std::vector<TraceEvent> events = OneInstance(4000, 0);
  TraceAnalysis a = AnalyzeTrace(events.data(), events.size(), 0);
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.chain_emits, 2u);
  EXPECT_EQ(a.chain_consumes, 2u);
  for (const TaskMetrics& t : a.tasks) {
    EXPECT_FALSE(t.seen) << "phantom task " << t.thread_id;
  }
}

// --- Satellite: JSON escaping of hostile names ---

constexpr const char* kHostileName = "pwn\"ed\\name\nwith\tctl\x01";

TEST(ChainReportTest, HostileChainNamesAndDetailsAreEscaped) {
  ResolvedChain spec;
  spec.name = kHostileName;
  spec.resolved = true;
  spec.stages.push_back(ResolvedChainStage{kIrqEp, -1});
  std::vector<TraceEvent> events = {
      ChainEv(0, TraceEventType::kChainEmit, 1, kIrqEp, 0, -1),
      ChainEv(5, TraceEventType::kChainConsume, 1, kIrqEp, 1, 1),
      // An orphan consume so the report also carries a violation detail.
      ChainEv(9, TraceEventType::kChainConsume, 2, kSmsgEp, 7, 1),
  };
  ChainAnalysis a = AnalyzeChains(events.data(), events.size(), 0, {spec});
  std::string text = BuildChainsReport(kHostileName, a);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error << "\n" << text;
  EXPECT_EQ(root.Find("label")->string, kHostileName);
  const JsonValue& chains = *root.Find("report")->Find("chains");
  ASSERT_EQ(chains.array.size(), 1u);
  EXPECT_EQ(chains.array[0].Find("name")->string, kHostileName);
  ASSERT_FALSE(root.Find("report")->Find("violations")->array.empty());
}

TEST(PerfettoExportTest, HostileThreadNamesAreEscaped) {
  std::vector<TraceEvent> events = OneInstance(3, 0);
  events.push_back(TraceEvent{Instant() + Microseconds(50), TraceEventType::kContextSwitch, -1, 1,
                              0});
  PerfettoExportOptions options;
  options.process_name = kHostileName;
  options.thread_names = {std::string(kHostileName), std::string(kHostileName),
                          std::string("ok")};

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  size_t entries = ExportPerfettoJson(events.data(), events.size(), options, f);
  EXPECT_GT(entries, 0u);
  std::rewind(f);
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error << "\n" << text;
  // The hostile thread name must round-trip intact through the metadata
  // entry, not just parse.
  bool found = false;
  for (const JsonValue& e : root.Find("traceEvents")->array) {
    const JsonValue* ph = e.Find("ph");
    if (ph != nullptr && ph->string == "M" && e.Find("name")->string == "thread_name" &&
        e.Find("args")->Find("name")->string == kHostileName) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << text;
}

TEST(PerfettoExportTest, ChainFlowPairsShareIdsAndSkipPhantomThreads) {
  std::vector<TraceEvent> events = OneInstance(123456, 0);
  PerfettoExportOptions options;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  ExportPerfettoJson(events.data(), events.size(), options, f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  ASSERT_TRUE(JsonParse(text, &root, &error)) << error;
  size_t starts = 0;
  size_t finishes = 0;
  for (const JsonValue& e : root.Find("traceEvents")->array) {
    const JsonValue* cat = e.Find("cat");
    const JsonValue* ph = e.Find("ph");
    if (cat != nullptr && cat->string == "chain") {
      if (ph->string == "s") {
        ++starts;
      } else if (ph->string == "f") {
        ++finishes;
      }
    }
    // The token origin (123456) must never appear as a tid: chain events
    // render on their actor's track (or tid 0 for ISR context).
    const JsonValue* tid = e.Find("tid");
    if (tid != nullptr) {
      EXPECT_LT(tid->number, 3.0) << text;
    }
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(finishes, 2u);
}

}  // namespace
}  // namespace obs
}  // namespace emeralds
