#include "src/base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace emeralds {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  // The fleet runner's pattern: a task re-enqueues the next slice of work.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::function<void(int)> chain = [&](int depth) {
    count.fetch_add(1, std::memory_order_relaxed);
    if (depth > 0) {
      pool.Submit([&chain, depth] { chain(depth - 1); });
    }
  };
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&chain] { chain(9); });
  }
  pool.Wait();  // must cover transitively submitted tasks
  EXPECT_EQ(count.load(), 16 * 10);
}

TEST(ThreadPoolTest, WorkStealingBalancesOneHeavyProducer) {
  // All tasks are submitted from outside and then one task fans out 500
  // children from inside a single worker; the others must steal them.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> per_worker(4);
  for (auto& c : per_worker) {
    c.store(0);
  }
  pool.Submit([&] {
    for (int i = 0; i < 500; ++i) {
      pool.Submit([&] {
        int w = ThreadPool::CurrentWorker();
        ASSERT_GE(w, 0);
        ASSERT_LT(w, 4);
        per_worker[static_cast<size_t>(w)].fetch_add(1, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
        // Burn a little time so a single worker cannot drain the deque
        // before the thieves arrive.
        volatile int sink = 0;
        for (int spin = 0; spin < 20000; ++spin) {
          sink += spin;
        }
      });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 500);
  int workers_used = 0;
  for (const auto& c : per_worker) {
    workers_used += c.load() > 0 ? 1 : 0;
  }
  EXPECT_GT(workers_used, 1) << "no stealing happened";
}

TEST(ThreadPoolTest, CurrentWorkerIsMinusOneOffPool) {
  EXPECT_EQ(ThreadPool::CurrentWorker(), -1);
  ThreadPool pool(2);
  std::atomic<bool> on_pool_ok{false};
  pool.Submit([&] {
    int w = ThreadPool::CurrentWorker();
    on_pool_ok.store(w >= 0 && w < 2);
  });
  pool.Wait();
  EXPECT_TRUE(on_pool_ok.load());
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(257, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ManyPoolsConstructDestructCleanly) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor must drain and join without Wait().
  }
  SUCCEED();
}

}  // namespace
}  // namespace emeralds
