// Model-based test: the intrusive list against std::list under long random
// operation sequences (the scheduler queues ride on these primitives, so
// structural drift here would corrupt scheduling silently).

#include <algorithm>
#include <list>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/intrusive_list.h"
#include "src/base/rng.h"

namespace emeralds {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  ListNode<Item> node;
};

using List = IntrusiveList<Item, &Item::node>;

class ListModelTest : public ::testing::TestWithParam<int> {};

TEST_P(ListModelTest, MatchesStdListUnderRandomOps) {
  Rng rng(5000 + GetParam());
  constexpr int kItems = 24;
  std::vector<std::unique_ptr<Item>> pool;
  for (int i = 0; i < kItems; ++i) {
    pool.push_back(std::make_unique<Item>(i));
  }
  List list;
  std::list<int> model;

  auto check = [&]() {
    ASSERT_EQ(list.size(), model.size());
    auto it = model.begin();
    for (Item& item : list) {
      ASSERT_NE(it, model.end());
      EXPECT_EQ(item.value, *it);
      ++it;
    }
    if (!model.empty()) {
      EXPECT_EQ(list.front()->value, model.front());
      EXPECT_EQ(list.back()->value, model.back());
    } else {
      EXPECT_EQ(list.front(), nullptr);
    }
  };

  for (int step = 0; step < 4000; ++step) {
    int op = static_cast<int>(rng.UniformInt(0, 5));
    Item& candidate = *pool[rng.UniformInt(0, kItems - 1)];
    bool linked = List::IsLinked(candidate);
    switch (op) {
      case 0:  // push_back
        if (!linked) {
          list.push_back(candidate);
          model.push_back(candidate.value);
        }
        break;
      case 1:  // push_front
        if (!linked) {
          list.push_front(candidate);
          model.push_front(candidate.value);
        }
        break;
      case 2:  // erase
        if (linked) {
          list.erase(candidate);
          model.erase(std::find(model.begin(), model.end(), candidate.value));
        }
        break;
      case 3: {  // insert_before a random linked anchor
        if (linked || list.empty()) {
          break;
        }
        size_t index = static_cast<size_t>(rng.UniformInt(0, static_cast<int>(list.size()) - 1));
        Item* anchor = list.front();
        for (size_t i = 0; i < index; ++i) {
          anchor = list.next(*anchor);
        }
        list.insert_before(*anchor, candidate);
        auto it = std::find(model.begin(), model.end(), anchor->value);
        model.insert(it, candidate.value);
        break;
      }
      case 4: {  // SwapPositions of two linked items
        Item& other = *pool[rng.UniformInt(0, kItems - 1)];
        if (!linked || !List::IsLinked(other)) {
          break;
        }
        list.SwapPositions(candidate, other);
        auto a = std::find(model.begin(), model.end(), candidate.value);
        auto b = std::find(model.begin(), model.end(), other.value);
        std::iter_swap(a, b);
        break;
      }
      default:  // pop_front
        if (!model.empty()) {
          Item* popped = list.pop_front();
          ASSERT_NE(popped, nullptr);
          EXPECT_EQ(popped->value, model.front());
          model.pop_front();
        }
        break;
    }
    if (step % 97 == 0) {
      check();
    }
  }
  check();
  list.clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListModelTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace emeralds
