// Time, Status/Result, Rng, and math helper tests.

#include <set>

#include <gtest/gtest.h>

#include "src/base/math.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/time.h"

namespace emeralds {
namespace {

TEST(TimeTest, DurationConstruction) {
  EXPECT_EQ(Microseconds(3).nanos(), 3000);
  EXPECT_EQ(Milliseconds(2).micros(), 2000);
  EXPECT_EQ(Seconds(1).millis(), 1000);
  EXPECT_EQ(MicrosecondsF(0.25).nanos(), 250);
  EXPECT_EQ(MicrosecondsF(0.36).nanos(), 360);
  EXPECT_EQ(MillisecondsF(1.5).micros(), 1500);
}

TEST(TimeTest, DurationArithmetic) {
  Duration d = Milliseconds(3) + Microseconds(500);
  EXPECT_EQ(d.micros(), 3500);
  EXPECT_EQ((d - Milliseconds(1)).micros(), 2500);
  EXPECT_EQ((Microseconds(10) * 4).micros(), 40);
  EXPECT_EQ((Milliseconds(10) / 4).micros(), 2500);
  EXPECT_EQ(Milliseconds(10) / Milliseconds(3), 3);
}

TEST(TimeTest, DurationComparison) {
  EXPECT_LT(Microseconds(999), Milliseconds(1));
  EXPECT_EQ(Microseconds(1000), Milliseconds(1));
  EXPECT_TRUE(Duration().is_zero());
  EXPECT_TRUE(Microseconds(1).is_positive());
  EXPECT_TRUE((-Microseconds(1)).is_negative());
}

TEST(TimeTest, InstantArithmetic) {
  Instant t = Instant() + Milliseconds(5);
  EXPECT_EQ(t.nanos(), 5000000);
  EXPECT_EQ((t - Instant()).millis(), 5);
  EXPECT_LT(t, t + Microseconds(1));
  EXPECT_GT(Instant::Max(), t);
}

TEST(TimeTest, FormatDuration) {
  char buf[32];
  EXPECT_STREQ(FormatDuration(Nanoseconds(12), buf, sizeof(buf)), "12ns");
  EXPECT_STREQ(FormatDuration(Microseconds(12), buf, sizeof(buf)), "12.000us");
  EXPECT_STREQ(FormatDuration(Milliseconds(3), buf, sizeof(buf)), "3.000ms");
  EXPECT_STREQ(FormatDuration(Seconds(2), buf, sizeof(buf)), "2.000s");
}

TEST(StatusTest, ToStringCoversCodes) {
  EXPECT_STREQ(StatusToString(Status::kOk), "kOk");
  EXPECT_STREQ(StatusToString(Status::kTimedOut), "kTimedOut");
  EXPECT_STREQ(StatusToString(Status::kWouldBlock), "kWouldBlock");
  EXPECT_STREQ(StatusToString(Status::kPermissionDenied), "kPermissionDenied");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::kOk);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::kNotFound);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status(), Status::kNotFound);
}

TEST(ResultTest, NonTrivialValueLifetime) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    Probe(Probe&&) { ++live; }
    ~Probe() { --live; }
  };
  {
    Result<Probe> r{Probe()};
    EXPECT_TRUE(r.ok());
    EXPECT_GE(live, 1);
    Result<Probe> copy = r;
    EXPECT_TRUE(copy.ok());
    Result<Probe> err(Status::kBusy);
    err = r;
    EXPECT_TRUE(err.ok());
  }
  EXPECT_EQ(live, 0);
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  std::unique_ptr<int> p = r.take_value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 7);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng root(5);
  Rng a = root.Fork(0);
  Rng b = root.Fork(1);
  EXPECT_NE(a.Next(), b.Next());
  // Forking is deterministic.
  Rng a2 = root.Fork(0);
  a2.Next();  // consume one to align with `a` above
  Rng a3 = root.Fork(0);
  EXPECT_EQ(a3.Next(), Rng(5).Fork(0).Next());
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2);
  EXPECT_EQ(CeilDiv(11, 5), 3);
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(1, 1), 1);
}

TEST(MathTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(8), 3);
  EXPECT_EQ(CeilLog2(9), 4);
  // Table 1 usage: ceil(log2(n + 1)).
  EXPECT_EQ(CeilLog2(15 + 1), 4);
  EXPECT_EQ(CeilLog2(58 + 1), 6);
}

TEST(MathTest, GcdLcm) {
  EXPECT_EQ(Gcd(12, 18), 6);
  EXPECT_EQ(Gcd(7, 5), 1);
  EXPECT_EQ(LcmSaturating(4, 6), 12);
  EXPECT_EQ(LcmSaturating(0, 6), 0);
  // Coprime 2^40 and 2^40+1: the true LCM (~2^80) overflows and saturates.
  EXPECT_EQ(LcmSaturating(int64_t{1} << 40, (int64_t{1} << 40) + 1), INT64_MAX);
}

}  // namespace
}  // namespace emeralds
