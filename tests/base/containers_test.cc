// StaticVector and RingBuffer unit tests.

#include <string>

#include <gtest/gtest.h>

#include "src/base/ring_buffer.h"
#include "src/base/static_vector.h"

namespace emeralds {
namespace {

TEST(StaticVectorTest, StartsEmpty) {
  StaticVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.full());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(StaticVectorTest, PushAndIndex) {
  StaticVector<int, 4> v;
  v.push_back(10);
  v.push_back(20);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 20);
  EXPECT_EQ(v.front(), 10);
  EXPECT_EQ(v.back(), 20);
}

TEST(StaticVectorTest, FullAtCapacity) {
  StaticVector<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_TRUE(v.full());
}

TEST(StaticVectorTest, PopBackDestroys) {
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    ~Probe() { --live; }
  };
  {
    StaticVector<Probe, 4> v;
    v.emplace_back();
    v.emplace_back();
    EXPECT_EQ(live, 2);
    v.pop_back();
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(StaticVectorTest, NonTrivialElements) {
  StaticVector<std::string, 3> v;
  v.push_back("hello");
  v.emplace_back(5, 'x');
  EXPECT_EQ(v[0], "hello");
  EXPECT_EQ(v[1], "xxxxx");
  v.clear();
  EXPECT_TRUE(v.empty());
}

TEST(StaticVectorTest, CopyConstructAndAssign) {
  StaticVector<int, 4> a;
  a.push_back(1);
  a.push_back(2);
  StaticVector<int, 4> b(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[1], 2);
  StaticVector<int, 4> c;
  c.push_back(9);
  c = a;
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0], 1);
}

TEST(StaticVectorTest, EraseAtShiftsElements) {
  StaticVector<int, 5> v;
  for (int i = 1; i <= 5; ++i) {
    v.push_back(i);
  }
  v.erase_at(1);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 3);
  EXPECT_EQ(v[3], 5);
}

TEST(StaticVectorTest, RangeForIteration) {
  StaticVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.push_back(3);
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 6);
}

TEST(RingBufferTest, PushPopFifo) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.pop(), 1);
  EXPECT_EQ(rb.pop(), 2);
  rb.push(4);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapAroundManyTimes) {
  RingBuffer<int> rb(2);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    EXPECT_EQ(rb.pop(), i);
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, PushOverwriteEvictsOldest) {
  RingBuffer<int> rb(2);
  EXPECT_FALSE(rb.push_overwrite(1));
  EXPECT_FALSE(rb.push_overwrite(2));
  EXPECT_TRUE(rb.push_overwrite(3));
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
}

TEST(RingBufferTest, PushOverwriteWrapsManyTimes) {
  RingBuffer<int> rb(3);
  for (int i = 0; i < 100; ++i) {
    bool evicted = rb.push_overwrite(i);
    EXPECT_EQ(evicted, i >= 3) << i;
  }
  // The window is always the most recent `capacity` values, oldest first.
  ASSERT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.at(0), 97);
  EXPECT_EQ(rb.at(1), 98);
  EXPECT_EQ(rb.at(2), 99);
}

TEST(RingBufferTest, PushOverwriteAfterPopDoesNotEvict) {
  RingBuffer<int> rb(2);
  rb.push_overwrite(1);
  rb.push_overwrite(2);
  EXPECT_EQ(rb.pop(), 1);
  // One slot free again: no eviction until full once more.
  EXPECT_FALSE(rb.push_overwrite(3));
  EXPECT_TRUE(rb.push_overwrite(4));
  EXPECT_EQ(rb.at(0), 3);
  EXPECT_EQ(rb.at(1), 4);
}

TEST(RingBufferTest, AtIndexesFromFront) {
  RingBuffer<int> rb(3);
  rb.push(7);
  rb.push(8);
  EXPECT_EQ(rb.at(0), 7);
  EXPECT_EQ(rb.at(1), 8);
  rb.pop();
  rb.push(9);
  EXPECT_EQ(rb.at(0), 8);
  EXPECT_EQ(rb.at(1), 9);
}

TEST(RingBufferTest, FrontPeeksWithoutRemoving) {
  RingBuffer<int> rb(2);
  rb.push(5);
  EXPECT_EQ(rb.front(), 5);
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(3);
  EXPECT_EQ(rb.pop(), 3);
}

}  // namespace
}  // namespace emeralds
