#include "src/base/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace emeralds {
namespace {

TEST(ArenaTest, AllocatesAlignedAndBumps) {
  Arena arena(1024);
  void* a = arena.Allocate(1, 1);
  void* b = arena.Allocate(8, 8);
  void* c = arena.Allocate(3, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_GT(arena.used(), 0u);
  EXPECT_LE(arena.used(), arena.capacity());
}

TEST(ArenaTest, NewConstructsInPlace) {
  Arena arena(4096);
  struct Pod {
    int x;
    double y;
  };
  Pod* pod = arena.New<Pod>(7, 2.5);
  EXPECT_EQ(pod->x, 7);
  EXPECT_EQ(pod->y, 2.5);
  int* value = arena.New<int>(42);
  EXPECT_EQ(*value, 42);
}

struct DtorProbe {
  explicit DtorProbe(int id, std::string* log) : id_(id), log_(log) {}
  ~DtorProbe() { log_->append(std::to_string(id_)); }
  int id_;
  std::string* log_;
};

TEST(ArenaTest, ResetRunsDestructorsLifoAndReclaims) {
  Arena arena(4096);
  std::string log;
  arena.New<DtorProbe>(1, &log);
  arena.New<DtorProbe>(2, &log);
  arena.New<DtorProbe>(3, &log);
  size_t used_before = arena.used();
  EXPECT_GT(used_before, 0u);

  arena.Reset();
  EXPECT_EQ(log, "321");  // reverse construction order
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.high_water(), used_before);

  // The block is reusable after Reset.
  log.clear();
  arena.New<DtorProbe>(9, &log);
  arena.Reset();
  EXPECT_EQ(log, "9");
}

TEST(ArenaTest, DestructorFinalizes) {
  std::string log;
  {
    Arena arena(1024);
    arena.New<DtorProbe>(5, &log);
  }
  EXPECT_EQ(log, "5");
}

TEST(ArenaDeathTest, PanicsWhenExhausted) {
  Arena arena(64);
  EXPECT_DEATH(arena.Allocate(4096, 8), "arena exhausted");
}

}  // namespace
}  // namespace emeralds
