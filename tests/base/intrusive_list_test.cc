#include "src/base/intrusive_list.h"

#include <vector>

#include <gtest/gtest.h>

namespace emeralds {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  ListNode<Item> node;
  ListNode<Item> other_node;  // second membership
};

using List = IntrusiveList<Item, &Item::node>;
using OtherList = IntrusiveList<Item, &Item::other_node>;

std::vector<int> Values(List& list) {
  std::vector<int> out;
  for (Item& item : list) {
    out.push_back(item.value);
  }
  return out;
}

TEST(IntrusiveListTest, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveListTest, PushBackPreservesOrder) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.size(), 3u);
  list.clear();
}

TEST(IntrusiveListTest, PushFront) {
  List list;
  Item a(1), b(2);
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(Values(list), (std::vector<int>{2, 1}));
  list.clear();
}

TEST(IntrusiveListTest, InsertBeforeAndAfter) {
  List list;
  Item a(1), b(2), c(3), d(4);
  list.push_back(a);
  list.push_back(c);
  list.insert_before(c, b);
  list.insert_after(c, d);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2, 3, 4}));
  list.clear();
}

TEST(IntrusiveListTest, EraseMiddle) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(List::IsLinked(b));
  EXPECT_TRUE(List::IsLinked(a));
  list.clear();
}

TEST(IntrusiveListTest, PopFrontReturnsInOrder) {
  List list;
  Item a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  EXPECT_EQ(list.pop_front(), &a);
  EXPECT_EQ(list.pop_front(), &b);
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveListTest, NextAndPrevNavigation) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.next(a), &b);
  EXPECT_EQ(list.next(c), nullptr);
  EXPECT_EQ(list.prev(a), nullptr);
  EXPECT_EQ(list.prev(c), &b);
  list.clear();
}

TEST(IntrusiveListTest, DualMembership) {
  List list;
  OtherList other;
  Item a(1);
  list.push_back(a);
  other.push_back(a);
  EXPECT_TRUE(List::IsLinked(a));
  EXPECT_TRUE(OtherList::IsLinked(a));
  list.erase(a);
  EXPECT_FALSE(List::IsLinked(a));
  EXPECT_TRUE(OtherList::IsLinked(a));
  other.clear();
}

TEST(IntrusiveListTest, SwapNonAdjacent) {
  List list;
  Item a(1), b(2), c(3), d(4), e(5);
  for (Item* item : {&a, &b, &c, &d, &e}) {
    list.push_back(*item);
  }
  list.SwapPositions(b, d);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 4, 3, 2, 5}));
  list.clear();
}

TEST(IntrusiveListTest, SwapAdjacentForward) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.SwapPositions(a, b);
  EXPECT_EQ(Values(list), (std::vector<int>{2, 1, 3}));
  list.clear();
}

TEST(IntrusiveListTest, SwapAdjacentBackward) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.SwapPositions(c, b);  // arguments reversed relative to positions
  EXPECT_EQ(Values(list), (std::vector<int>{1, 3, 2}));
  list.clear();
}

TEST(IntrusiveListTest, SwapEndsOfList) {
  List list;
  Item a(1), b(2), c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.SwapPositions(a, c);
  EXPECT_EQ(Values(list), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(list.front()->value, 3);
  EXPECT_EQ(list.back()->value, 1);
  list.clear();
}

TEST(IntrusiveListTest, SwapSelfIsNoop) {
  List list;
  Item a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.SwapPositions(a, a);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2}));
  list.clear();
}

TEST(IntrusiveListTest, SwapTwoElementList) {
  List list;
  Item a(1), b(2);
  list.push_back(a);
  list.push_back(b);
  list.SwapPositions(a, b);
  EXPECT_EQ(Values(list), (std::vector<int>{2, 1}));
  list.SwapPositions(a, b);
  EXPECT_EQ(Values(list), (std::vector<int>{1, 2}));
  list.clear();
}

TEST(IntrusiveListTest, SwapPreservesSize) {
  List list;
  Item a(1), b(2), c(3), d(4);
  for (Item* item : {&a, &b, &c, &d}) {
    list.push_back(*item);
  }
  list.SwapPositions(a, d);
  list.SwapPositions(b, c);
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(Values(list), (std::vector<int>{4, 3, 2, 1}));
  list.clear();
}

// Exhaustive SwapPositions property check over every pair in a 6-element
// list: swapping i and j then re-reading must yield exactly the transposed
// sequence, and swapping back must restore it.
TEST(IntrusiveListTest, SwapAllPairsProperty) {
  constexpr int kN = 6;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      List list;
      std::vector<Item> items;
      items.reserve(kN);
      for (int v = 0; v < kN; ++v) {
        items.emplace_back(v);
      }
      for (Item& item : items) {
        list.push_back(item);
      }
      list.SwapPositions(items[i], items[j]);
      std::vector<int> expected{0, 1, 2, 3, 4, 5};
      std::swap(expected[i], expected[j]);
      EXPECT_EQ(Values(list), expected) << "i=" << i << " j=" << j;
      list.SwapPositions(items[i], items[j]);
      EXPECT_EQ(Values(list), (std::vector<int>{0, 1, 2, 3, 4, 5}));
      list.clear();
    }
  }
}

}  // namespace
}  // namespace emeralds
