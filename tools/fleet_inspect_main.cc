// fleet_inspect: drill into a fleet run from its JSON report.
//
//   fleet_inspect <fleet_report.json>
//       Renders the fleet's headline numbers, merged telemetry percentiles,
//       and the anomaly-triage tables (worst nodes per metric, median/MAD
//       outlier flags) from the report alone — no simulation.
//
//   fleet_inspect <fleet_report.json> --node=N [--dir=D] [--perfetto=out.json]
//       Deterministically re-runs node N of the fleet the report describes
//       (a node is a pure function of the fleet seed and its index, so the
//       replay is bit-identical), prints its oracle verdict and telemetry,
//       and optionally writes its black-box bundle (--dir) and a Perfetto
//       timeline with node-scoped track names (--perfetto).
//
//   fleet_inspect <fleet_report.json> --merge=N1,N2,... --perfetto=out.json
//       Re-runs each listed node and merges their trace windows into one
//       multi-process Perfetto document (one pid per node).
//
//   fleet_inspect <fleet_report.json> --timeseries=N
//       Re-runs node N and dumps its streaming telemetry series: one line
//       per window (counters, cycle shares, response percentiles), then the
//       node's alert stream with exact virtual fire/resolve timestamps.
//
//   fleet_inspect <fleet_report.json> --postmortem=N
//       Re-runs node N and renders its deadline-miss postmortem: every
//       analyzed miss's exactly-telescoping lateness ledger plus the node's
//       blame totals (per preemptor, per lock).
//
//   fleet_inspect <fleet_report.json> --openmetrics=OUT.txt
//       Re-runs the fleet the report describes and writes the OpenMetrics
//       text exposition (validated before writing; "-" means stdout).
//
// The fleet configuration comes from the report; every field can be
// overridden by flags (--instances, --seed, --run-ms, --slice-ms,
// --timer-queue, --trace-capacity, --overload-node, --overload-factor), and
// with a full flag set the report path may be omitted entirely — that is
// the form NodeReproCommand() emits into black-box repro.txt files.
//
// Exit status: 0 clean; 1 usage / I/O / parse failure; 2 an inspected node
// failed an oracle (table mode: the report records failed nodes).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <cerrno>
#include <climits>

#include "src/base/json.h"
#include "src/core/kernel.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_report.h"
#include "src/fleet/openmetrics.h"
#include "src/fleet/triage.h"
#include "src/obs/alerts.h"
#include "src/obs/blackbox.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/postmortem.h"
#include "src/obs/timeseries.h"

namespace emeralds {
namespace fleet {
namespace {

int64_t RootInt(const JsonValue& root, const char* key, int64_t fallback) {
  const JsonValue* v = root.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? static_cast<int64_t>(v->number)
                                                             : fallback;
}

double RootNumber(const JsonValue& root, const char* key, double fallback) {
  const JsonValue* v = root.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : fallback;
}

std::string RootString(const JsonValue& root, const char* key) {
  const JsonValue* v = root.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->string : std::string();
}

void PrintPercentiles(const char* title, const JsonValue& hist) {
  std::printf("  %-14s n=%-8lld p50<=%.0fus  p90<=%.0fus  p99<=%.0fus  max=%.0fus\n", title,
              static_cast<long long>(RootInt(hist, "count", 0)),
              RootNumber(hist, "p50_us", 0), RootNumber(hist, "p90_us", 0),
              RootNumber(hist, "p99_us", 0), RootNumber(hist, "max_us", 0));
}

// Table mode: everything comes from the report document.
int PrintReport(const JsonValue& root, const char* path) {
  std::printf("%s: %s fleet, %lld nodes, seed %lld, %s timers\n", path,
              RootString(root, "label").c_str(), static_cast<long long>(RootInt(root, "instances", 0)),
              static_cast<long long>(RootInt(root, "seed", 0)),
              RootString(root, "timer_queue").c_str());
  std::printf("  events=%lld (%.0f/virtual-sec)  jobs=%lld  misses=%lld  chain overruns=%lld\n",
              static_cast<long long>(RootInt(root, "events_total", 0)),
              RootNumber(root, "events_per_virtual_sec", 0),
              static_cast<long long>(RootInt(root, "jobs_completed", 0)),
              static_cast<long long>(RootInt(root, "deadline_misses", 0)),
              static_cast<long long>(RootInt(root, "chain_overruns", 0)));
  std::printf("  nodes failed=%lld anomalous=%lld  digest=%s\n",
              static_cast<long long>(RootInt(root, "nodes_failed", 0)),
              static_cast<long long>(RootInt(root, "nodes_anomalous", 0)),
              RootString(root, "fleet_digest").c_str());
  if (const JsonValue* trace = root.Find("trace")) {
    int64_t dropped = RootInt(*trace, "dropped_total", 0);
    if (dropped > 0) {
      std::printf("  trace dropped=%lld (worst: node %lld dropped %lld)\n",
                  static_cast<long long>(dropped),
                  static_cast<long long>(RootInt(*trace, "worst_node", -1)),
                  static_cast<long long>(RootInt(*trace, "worst_node_dropped", 0)));
    }
  }

  if (const JsonValue* telemetry = root.Find("telemetry")) {
    std::printf("telemetry (%s, %lld nodes):\n", RootString(*telemetry, "schema").c_str(),
                static_cast<long long>(RootInt(*telemetry, "nodes_collected", 0)));
    std::printf("  snapshot drops=%lld\n",
                static_cast<long long>(RootInt(*telemetry, "stats_snapshot_drops", 0)));
    if (const JsonValue* cycles = telemetry->Find("core_cycles_us")) {
      std::printf("  core cycles:");
      int core = 0;
      for (const JsonValue& c : cycles->array) {
        std::printf(" c%d=%.0fus", core++, c.number);
      }
      std::printf("\n");
    }
    if (const JsonValue* response = telemetry->Find("response")) {
      PrintPercentiles("response", *response);
    }
    if (const JsonValue* chains = telemetry->Find("chains")) {
      for (const JsonValue& c : chains->array) {
        if (const JsonValue* e2e = c.Find("e2e")) {
          std::string name = "chain " + RootString(c, "name");
          PrintPercentiles(name.c_str(), *e2e);
        }
      }
    }
  }

  if (const JsonValue* postmortem = root.Find("postmortem")) {
    if (const JsonValue* blame = postmortem->Find("blame")) {
      std::printf("postmortem: %lld miss(es) analyzed, %.0fus blamed tardiness, "
                  "%lld unattributed ns, digest=%s\n",
                  static_cast<long long>(RootInt(*blame, "misses_analyzed", 0)),
                  static_cast<double>(RootInt(*blame, "tardiness_ns", 0)) / 1e3,
                  static_cast<long long>(RootInt(*blame, "unattributed_ns", 0)),
                  RootString(*postmortem, "blame_digest").c_str());
    }
  }

  if (const JsonValue* triage = root.Find("triage")) {
    std::printf("triage:\n");
    if (const JsonValue* metrics = triage->Find("metrics")) {
      for (const JsonValue& m : metrics->array) {
        const JsonValue* top = m.Find("top");
        if (top == nullptr || top->array.empty()) {
          continue;
        }
        std::printf("  %-20s median=%lld mad=%lld outliers=%lld | worst:",
                    RootString(m, "name").c_str(),
                    static_cast<long long>(RootInt(m, "median", 0)),
                    static_cast<long long>(RootInt(m, "mad", 0)),
                    static_cast<long long>(RootInt(m, "outliers", 0)));
        for (const JsonValue& e : top->array) {
          std::printf(" n%lld=%lld%s", static_cast<long long>(RootInt(e, "node", -1)),
                      static_cast<long long>(RootInt(e, "value", 0)),
                      e.Find("outlier") != nullptr && e.Find("outlier")->boolean ? "*" : "");
        }
        std::printf("\n");
      }
    }
    if (const JsonValue* blame = triage->Find("top_blame")) {
      int64_t preemptor = RootInt(*blame, "preemptor", -1);
      int64_t lock = RootInt(*blame, "lock", -1);
      if (preemptor >= 0 || lock >= 0) {
        std::printf("  top blame:");
        if (preemptor >= 0) {
          std::printf(" preemptor t%lld (%.0fus)", static_cast<long long>(preemptor),
                      static_cast<double>(RootInt(*blame, "preemptor_ns", 0)) / 1e3);
        }
        if (lock >= 0) {
          std::printf(" lock S%lld (%.0fus)", static_cast<long long>(lock),
                      static_cast<double>(RootInt(*blame, "lock_ns", 0)) / 1e3);
        }
        std::printf("\n");
      }
    }
    if (const JsonValue* outliers = triage->Find("outlier_nodes")) {
      if (!outliers->array.empty()) {
        std::printf("  outlier nodes:");
        for (const JsonValue& n : outliers->array) {
          std::printf(" %lld", static_cast<long long>(n.number));
        }
        std::printf("\n");
      }
    }
  }

  if (const JsonValue* alerts = root.Find("alerts")) {
    std::printf("alerts: %lld events, %lld fired\n",
                static_cast<long long>(RootInt(*alerts, "events", 0)),
                static_cast<long long>(RootInt(*alerts, "fired", 0)));
    if (const JsonValue* stream = alerts->Find("stream")) {
      for (const JsonValue& e : stream->array) {
        std::printf("  %8lldus node %-3lld %-20s %s value=%lld/%lld\n",
                    static_cast<long long>(RootInt(e, "time_us", 0)),
                    static_cast<long long>(RootInt(e, "node", -1)),
                    RootString(e, "rule").c_str(), RootString(e, "state").c_str(),
                    static_cast<long long>(RootInt(e, "value", 0)),
                    static_cast<long long>(RootInt(e, "total", 0)));
      }
    }
  }

  if (const JsonValue* boxes = root.Find("blackboxes")) {
    std::printf("black boxes (%s):", RootString(root, "artifacts_dir").c_str());
    for (const JsonValue& b : boxes->array) {
      std::printf(" %s", RootString(b, "dir").c_str());
    }
    std::printf("\n");
  }
  return RootInt(root, "nodes_failed", 0) > 0 ? 2 : 0;
}

void PrintNodeResult(int index, const NodeResult& r) {
  std::printf("node %d: %s, %" PRIu64 " events, %" PRIu64 " jobs, %" PRIu64
              " misses, %" PRIu64 " chain overruns, %" PRIu64 " headroom-low\n",
              index, r.scheduler.c_str(), r.events, r.jobs_completed, r.deadline_misses,
              r.chain_overruns, r.headroom_low_events);
  std::printf("  digest=0x%016llx  trace dropped=%" PRIu64 "\n",
              static_cast<unsigned long long>(r.trace_digest), r.trace_dropped);
  if (r.telemetry.collected && r.telemetry.response.count() > 0) {
    std::printf("  response: n=%" PRIu64 " p50<=%.0fus p99<=%.0fus max=%.0fus\n",
                r.telemetry.response.count(),
                r.telemetry.response.PercentileBound(0.5).micros_f(),
                r.telemetry.response.PercentileBound(0.99).micros_f(),
                r.telemetry.response.max().micros_f());
  }
  for (const obs::AlertEvent& e : r.alerts) {
    std::printf("  alert %8lldus %-20s %s value=%" PRIu64 "/%" PRIu64 "\n",
                static_cast<long long>(e.time.micros()), obs::AlertRuleName(e.rule),
                e.firing ? "FIRING" : "resolved", e.value, e.total);
  }
  if (r.anomalous()) {
    std::printf("  ANOMALY (score %" PRIu64 "): %s\n", r.anomaly_score, r.anomaly.c_str());
  } else {
    std::printf("  oracles: ok\n");
  }
}

constexpr const char* kUsage =
    "usage: fleet_inspect [report.json] [--node=N | --merge=N1,N2,... |\n"
    "                      --timeseries=N | --postmortem=N | --openmetrics=OUT.txt]\n"
    "                     [--dir=DIR] [--perfetto=OUT.json]\n"
    "                     [--instances=N] [--seed=S] [--run-ms=M] [--slice-ms=K]\n"
    "                     [--timer-queue=wheel|sorted_list] [--trace-capacity=C]\n"
    "                     [--overload-node=I] [--overload-factor=F]\n";

bool FlagValue(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

// Strict integer parse: the whole string must be a base-10 integer in
// [min, max]. Rejects empty strings, trailing junk ("3x", "1,2"), and
// overflow — std::atoi silently accepted all of those.
bool ParseInt(const char* s, int64_t min, int64_t max, int64_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < min || v > max) {
    return false;
  }
  *out = v;
  return true;
}

// One flag value as an int, or a printed error + usage. Returns false on
// failure with *status set to 1.
bool FlagInt(const char* flag, const char* value, int64_t min, int64_t max, int64_t* out,
             int* status) {
  if (ParseInt(value, min, max, out)) {
    return true;
  }
  std::fprintf(stderr, "fleet_inspect: bad value '%s' for %s (want integer in [%lld, %lld])\n%s",
               value, flag, static_cast<long long>(min), static_cast<long long>(max), kUsage);
  *status = 1;
  return false;
}

// Comma-separated node list: every element a strict integer, no duplicates,
// no empty elements. Range against --instances is checked later (the
// instance count may still come from the report at parse time).
bool ParseNodeList(const char* list, std::vector<int>* out) {
  out->clear();
  std::string text = list == nullptr ? "" : list;
  if (text.empty()) {
    std::fprintf(stderr, "fleet_inspect: --merge needs at least one node\n%s", kUsage);
    return false;
  }
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string item = text.substr(pos, comma == std::string::npos ? std::string::npos
                                                                   : comma - pos);
    int64_t value = 0;
    if (!ParseInt(item.c_str(), 0, INT_MAX, &value)) {
      std::fprintf(stderr, "fleet_inspect: bad node '%s' in --merge list\n%s", item.c_str(),
                   kUsage);
      return false;
    }
    for (int existing : *out) {
      if (existing == value) {
        std::fprintf(stderr, "fleet_inspect: node %lld listed twice in --merge\n%s",
                     static_cast<long long>(value), kUsage);
        return false;
      }
    }
    out->push_back(static_cast<int>(value));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return true;
}

// One line per telemetry window: enough to eyeball a burn without a UI.
void PrintWindowSeries(int index, const NodeResult& r, Duration window_width) {
  std::printf("timeseries node %d: %zu windows of %lldus (lost samples=%" PRIu64
              ", windows dropped=%" PRIu64 ")\n",
              index, r.windows.size(), static_cast<long long>(window_width.micros()),
              r.timeseries_lost_samples, r.timeseries_windows_dropped);
  for (const obs::TelemetryWindow& w : r.windows) {
    std::printf("  w%-4lld [%7lld..%7lldus]%s jobs=%" PRIu64 "/%" PRIu64 " miss=%" PRIu64
                " ctx=%" PRIu64 " irq=%" PRIu64 " chain=%" PRIu64 "/%" PRIu64,
                static_cast<long long>(w.index), static_cast<long long>(w.start.micros()),
                static_cast<long long>(w.end.micros()), w.gap ? " GAP" : "",
                w.jobs_completed, w.jobs_released, w.deadline_misses, w.context_switches,
                w.interrupts, w.chain_e2e_overruns, w.chain_e2e_completed);
    if (w.response.count() > 0) {
      std::printf(" resp{n=%" PRIu64 " p50<=%lldus max=%lldus}", w.response.count(),
                  static_cast<long long>(w.response.PercentileBound(0.5).micros()),
                  static_cast<long long>(w.response.max().micros()));
    }
    std::printf("\n");
  }
  if (r.alerts.empty()) {
    std::printf("  alerts: none\n");
    return;
  }
  std::printf("  alerts (%zu events):\n", r.alerts.size());
  for (const obs::AlertEvent& e : r.alerts) {
    std::printf("    %8lldus w%-4lld %-20s %s value=%" PRIu64 "/%" PRIu64 "\n",
                static_cast<long long>(e.time.micros()), static_cast<long long>(e.window),
                obs::AlertRuleName(e.rule), e.firing ? "FIRING" : "resolved", e.value, e.total);
  }
}

int Main(int argc, char** argv) {
  const char* report_path = nullptr;
  const char* dir = nullptr;
  const char* perfetto_path = nullptr;
  const char* openmetrics_path = nullptr;
  std::vector<int> merge_targets;
  bool have_merge = false;
  int node = -1;
  int timeseries_node = -1;
  int postmortem_node = -1;
  FleetOptions opt;
  opt.instances = 0;  // must come from the report or --instances
  opt.workers = 1;
  bool have_config = false;
  int status = 0;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    int64_t value = 0;
    if (FlagValue(argv[i], "--node", &v)) {
      if (!FlagInt("--node", v, 0, INT_MAX, &value, &status)) {
        return status;
      }
      node = static_cast<int>(value);
    } else if (FlagValue(argv[i], "--timeseries", &v)) {
      if (!FlagInt("--timeseries", v, 0, INT_MAX, &value, &status)) {
        return status;
      }
      timeseries_node = static_cast<int>(value);
    } else if (FlagValue(argv[i], "--postmortem", &v)) {
      if (!FlagInt("--postmortem", v, 0, INT_MAX, &value, &status)) {
        return status;
      }
      postmortem_node = static_cast<int>(value);
    } else if (FlagValue(argv[i], "--merge", &v)) {
      if (!ParseNodeList(v, &merge_targets)) {
        return 1;
      }
      have_merge = true;
    } else if (FlagValue(argv[i], "--dir", &v)) {
      dir = v;
    } else if (FlagValue(argv[i], "--perfetto", &v)) {
      perfetto_path = v;
    } else if (FlagValue(argv[i], "--openmetrics", &v)) {
      openmetrics_path = v;
    } else if (FlagValue(argv[i], "--instances", &v)) {
      if (!FlagInt("--instances", v, 1, INT_MAX, &value, &status)) {
        return status;
      }
      opt.instances = static_cast<int>(value);
      have_config = true;
    } else if (FlagValue(argv[i], "--seed", &v)) {
      if (!FlagInt("--seed", v, 0, INT64_MAX, &value, &status)) {
        return status;
      }
      opt.seed = static_cast<uint64_t>(value);
    } else if (FlagValue(argv[i], "--run-ms", &v)) {
      if (!FlagInt("--run-ms", v, 1, INT64_MAX / 1000000, &value, &status)) {
        return status;
      }
      opt.run_duration = Milliseconds(value);
    } else if (FlagValue(argv[i], "--slice-ms", &v)) {
      if (!FlagInt("--slice-ms", v, 1, INT64_MAX / 1000000, &value, &status)) {
        return status;
      }
      opt.slice = Milliseconds(value);
    } else if (FlagValue(argv[i], "--timer-queue", &v)) {
      if (std::strcmp(v, "wheel") == 0) {
        opt.timer_queue = TimerQueueImpl::kWheel;
      } else if (std::strcmp(v, "sorted_list") == 0) {
        opt.timer_queue = TimerQueueImpl::kSortedList;
      } else {
        std::fprintf(stderr, "fleet_inspect: bad value '%s' for --timer-queue\n%s", v, kUsage);
        return 1;
      }
    } else if (FlagValue(argv[i], "--trace-capacity", &v)) {
      if (!FlagInt("--trace-capacity", v, 0, INT64_MAX, &value, &status)) {
        return status;
      }
      opt.trace_capacity = static_cast<size_t>(value);
    } else if (FlagValue(argv[i], "--overload-node", &v)) {
      if (!FlagInt("--overload-node", v, -1, INT_MAX, &value, &status)) {
        return status;
      }
      opt.overload_node = static_cast<int>(value);
    } else if (FlagValue(argv[i], "--overload-factor", &v)) {
      if (!FlagInt("--overload-factor", v, 1, INT_MAX, &value, &status)) {
        return status;
      }
      opt.overload_factor = static_cast<int>(value);
    } else if (report_path == nullptr && argv[i][0] != '-') {
      report_path = argv[i];
    } else {
      std::fprintf(stderr, "fleet_inspect: unknown argument '%s'\n%s", argv[i], kUsage);
      return 1;
    }
  }
  if (have_merge && merge_targets.empty()) {
    std::fprintf(stderr, "fleet_inspect: --merge needs at least one node\n%s", kUsage);
    return 1;
  }

  JsonValue root;
  bool have_report = false;
  if (report_path != nullptr) {
    std::FILE* f = std::fopen(report_path, "r");
    if (f == nullptr) {
      std::fprintf(stderr, "fleet_inspect: cannot open %s\n", report_path);
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, n);
    }
    std::fclose(f);
    std::string error;
    if (!JsonParse(text, &root, &error)) {
      std::fprintf(stderr, "fleet_inspect: %s: %s\n", report_path, error.c_str());
      return 1;
    }
    if (RootString(root, "schema") != kFleetRunSchema) {
      std::fprintf(stderr, "fleet_inspect: %s is not an %s report\n", report_path,
                   kFleetRunSchema);
      return 1;
    }
    have_report = true;
    // Report config first, flags override (flags were already applied above,
    // so only fill fields the flags left untouched).
    if (opt.instances == 0) {
      opt.instances = static_cast<int>(RootInt(root, "instances", 0));
    }
    if (opt.seed == 1 && root.Find("seed") != nullptr) {
      opt.seed = static_cast<uint64_t>(RootInt(root, "seed", 1));
    }
    if (opt.run_duration == Milliseconds(100)) {
      opt.run_duration = Milliseconds(static_cast<int64_t>(RootNumber(root, "run_duration_ms", 100)));
    }
    if (opt.slice == Milliseconds(5)) {
      opt.slice = Milliseconds(static_cast<int64_t>(RootNumber(root, "slice_ms", 5)));
    }
    if (opt.trace_capacity == 0) {
      opt.trace_capacity = static_cast<size_t>(RootInt(root, "trace_capacity", 0));
    }
    if (RootString(root, "timer_queue") == "sorted_list") {
      opt.timer_queue = TimerQueueImpl::kSortedList;
    }
    have_config = true;
  }

  if (!have_config || opt.instances <= 0) {
    std::fprintf(stderr, "fleet_inspect: need a report or --instances\n%s", kUsage);
    return 1;
  }

  // Full-fleet re-run for the OpenMetrics scrape view.
  if (openmetrics_path != nullptr) {
    FleetResult result = RunFleet(opt);
    std::string exposition = BuildOpenMetricsExposition(result);
    std::string error;
    int families = 0;
    if (!ValidateOpenMetrics(exposition, &error, &families)) {
      std::fprintf(stderr, "fleet_inspect: generated exposition failed validation: %s\n",
                   error.c_str());
      return 1;
    }
    if (std::strcmp(openmetrics_path, "-") == 0) {
      std::fwrite(exposition.data(), 1, exposition.size(), stdout);
    } else {
      std::FILE* f = std::fopen(openmetrics_path, "w");
      if (f == nullptr) {
        std::fprintf(stderr, "fleet_inspect: cannot open %s\n", openmetrics_path);
        return 1;
      }
      std::fwrite(exposition.data(), 1, exposition.size(), f);
      std::fclose(f);
      std::printf("openmetrics: wrote %d families (%zu bytes) to %s\n", families,
                  exposition.size(), openmetrics_path);
    }
    return result.nodes_failed > 0 ? 2 : 0;
  }

  // Per-node streaming series dump.
  if (timeseries_node >= 0) {
    if (timeseries_node >= opt.instances) {
      std::fprintf(stderr, "fleet_inspect: node %d out of range [0, %d)\n", timeseries_node,
                   opt.instances);
      return 1;
    }
    NodeResult result = InspectNode(opt, timeseries_node, nullptr);
    PrintWindowSeries(timeseries_node, result, opt.timeseries_options.window);
    return result.ok() ? 0 : 2;
  }

  // Per-node lateness attribution: replay the node and render every miss's
  // blame ledger (exit 2 when any oracle — conservation included — failed).
  if (postmortem_node >= 0) {
    if (postmortem_node >= opt.instances) {
      std::fprintf(stderr, "fleet_inspect: node %d out of range [0, %d)\n", postmortem_node,
                   opt.instances);
      return 1;
    }
    NodeResult result =
        InspectNode(opt, postmortem_node, [&](const Kernel& kernel, const NodeResult&) {
          obs::PostmortemAnalysis pm = obs::AnalyzePostmortem(kernel.trace());
          obs::ChainAnalysis chains =
              obs::AnalyzeChains(kernel.trace(), kernel.resolved_chains());
          std::printf("node %d ", postmortem_node);
          obs::PrintPostmortem(stdout, pm, &chains);
        });
    return result.ok() ? 0 : 2;
  }

  // Pure table mode.
  if (node < 0 && !have_merge) {
    if (!have_report) {
      std::fprintf(stderr, "fleet_inspect: table mode needs a report\n%s", kUsage);
      return 1;
    }
    return PrintReport(root, report_path);
  }

  // Drill-down: deterministic serial replay of the requested node(s).
  std::vector<int> targets;
  if (node >= 0) {
    targets.push_back(node);
  } else {
    targets = merge_targets;
  }
  for (int t : targets) {
    if (t < 0 || t >= opt.instances) {
      std::fprintf(stderr, "fleet_inspect: node %d out of range [0, %d)\n", t, opt.instances);
      return 1;
    }
  }
  std::vector<std::vector<TraceEvent>> windows(targets.size());
  std::vector<obs::PerfettoExportOptions> window_options(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    int index = targets[i];
    NodeResult result = InspectNode(opt, index, [&](const Kernel& kernel, const NodeResult& r) {
      obs::BlackBoxSnapshot box = obs::CaptureBlackBox(
          kernel, "node-" + std::to_string(index),
          r.anomalous() ? r.anomaly : std::string("manual inspection"),
          NodeReproCommand(opt, index));
      windows[i] = box.window;
      obs::PerfettoExportOptions& po = window_options[i];
      po.process_name = "node-" + std::to_string(index);
      po.pid = index + 1;
      po.thread_names = box.thread_names;
      po.dropped_events = box.dropped;
      // Alert fire/resolve transitions become instant markers on the node's
      // timeline, next to the trace slices that caused them.
      for (const obs::AlertEvent& e : r.alerts) {
        obs::PerfettoInstantMarker m;
        m.time = e.time;
        m.name = std::string(obs::AlertRuleName(e.rule)) +
                 (e.firing ? " FIRING" : " resolved");
        po.instants.push_back(m);
      }
      if (dir != nullptr) {
        std::string bundle_dir = std::string(dir) + "/node-" + std::to_string(index);
        if (obs::WriteBlackBoxBundle(box, bundle_dir)) {
          std::printf("black box: wrote %s/{repro.txt,trace.csv,blackbox.json}\n",
                      bundle_dir.c_str());
        } else {
          std::fprintf(stderr, "fleet_inspect: cannot write bundle under %s\n",
                       bundle_dir.c_str());
          status = 1;
        }
      }
    });
    PrintNodeResult(index, result);
    if (!result.ok() && status == 0) {
      status = 2;
    }
  }

  if (perfetto_path != nullptr) {
    std::FILE* pf = std::fopen(perfetto_path, "w");
    if (pf == nullptr) {
      std::fprintf(stderr, "fleet_inspect: cannot open %s\n", perfetto_path);
      return 1;
    }
    size_t entries = 0;
    if (targets.size() == 1) {
      entries = obs::ExportPerfettoJson(windows[0].data(), windows[0].size(),
                                        window_options[0], pf);
    } else {
      std::vector<obs::PerfettoWindow> merged(targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        merged[i].events = windows[i].data();
        merged[i].count = windows[i].size();
        merged[i].options = window_options[i];
      }
      entries = obs::ExportPerfettoJsonMulti(merged, pf);
    }
    std::fclose(pf);
    std::printf("perfetto: wrote %zu entries (%zu node%s) to %s\n", entries, targets.size(),
                targets.size() == 1 ? "" : "s", perfetto_path);
  }
  return status;
}

}  // namespace
}  // namespace fleet
}  // namespace emeralds

int main(int argc, char** argv) { return emeralds::fleet::Main(argc, argv); }
