// CLI for the deterministic torture harness.
//
//   torture --seed=7 --ops=2000            one run, verbose result
//   torture --runs=20 --ops=10000          seed sweep (seeds 1..20)
//   torture --budget-seconds=60            sweep until the wall-clock budget
//   torture --seed=7 --check-determinism   run twice, compare trace digests
//   torture --seed=7 --trace-csv=out.csv   export the run's trace
//   torture --runs=8 --json=report.json    machine-readable report
//   torture --artifacts-dir=out/           on failure, drop the black-box
//                                          bundle (repro.txt, trace.csv,
//                                          blackbox.json — the fleet flight-
//                                          recorder layout) and the report
//                                          JSON there (CI uploads them)
//   torture --runs=64 --jobs=8             parallel sweep on the work-stealing
//                                          pool; each worker drops its first
//                                          failure's bundle under
//                                          <artifacts-dir>/worker-N/
//   torture --timer-queue=list             run against the reference sorted
//                                          timer list instead of the wheel
//   torture --num-cores=2                  partitioned-SMP runs: generated
//                                          threads pinned round-robin across
//                                          N virtual cores (1 = the classic
//                                          single-core harness, bit-identical
//                                          digests)
//
// On failure: prints the one-line repro command, shrinks the op budget by
// bisection, and exits 1. Runs are deterministic per (seed, options), so a
// --jobs sweep reports exactly what the serial sweep would.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/config.h"
#include "src/fuzz/torture.h"

namespace emeralds {
namespace fuzz {
namespace {

bool ParseFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) {
    return false;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

void PrintResult(const TortureOptions& options, const TortureResult& result) {
  std::printf("seed=%llu %s ops=%d vtime=%lldus trace=%llu(+%llu dropped) digest=%016llx\n",
              static_cast<unsigned long long>(result.seed), result.ok ? "OK" : "FAIL",
              result.ops_executed, static_cast<long long>(result.virtual_time.micros()),
              static_cast<unsigned long long>(result.trace_retained),
              static_cast<unsigned long long>(result.trace_dropped),
              static_cast<unsigned long long>(result.trace_digest));
  if (!result.ok) {
    std::printf("  failure: %s\n", result.failure.c_str());
    std::printf("  repro:   %s\n", ReproCommand(options).c_str());
  }
}

int Run(int argc, char** argv) {
  TortureOptions base;
  int runs = 1;
  int jobs = 1;
  double budget_seconds = 0;
  const char* json_path = nullptr;
  const char* csv_path = nullptr;
  const char* artifacts_dir = nullptr;
  bool check_determinism = false;
  bool seed_given = false;

  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (ParseFlag(argv[i], "--seed", &v) && v != nullptr) {
      base.seed = std::strtoull(v, nullptr, 10);
      seed_given = true;
    } else if (ParseFlag(argv[i], "--ops", &v) && v != nullptr) {
      base.ops = std::atoi(v);
    } else if (ParseFlag(argv[i], "--op-limit", &v) && v != nullptr) {
      base.op_limit = std::atoi(v);
    } else if (ParseFlag(argv[i], "--runs", &v) && v != nullptr) {
      runs = std::atoi(v);
    } else if (ParseFlag(argv[i], "--jobs", &v) && v != nullptr) {
      jobs = std::atoi(v);
    } else if (ParseFlag(argv[i], "--timer-queue", &v) && v != nullptr) {
      if (std::strcmp(v, "wheel") == 0) {
        base.timer_queue = TimerQueueImpl::kWheel;
      } else if (std::strcmp(v, "list") == 0) {
        base.timer_queue = TimerQueueImpl::kSortedList;
      } else {
        std::fprintf(stderr, "--timer-queue must be wheel or list, got %s\n", v);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--budget-seconds", &v) && v != nullptr) {
      budget_seconds = std::atof(v);
    } else if (ParseFlag(argv[i], "--json", &v) && v != nullptr) {
      json_path = v;
    } else if (ParseFlag(argv[i], "--trace-csv", &v) && v != nullptr) {
      csv_path = v;
    } else if (ParseFlag(argv[i], "--artifacts-dir", &v) && v != nullptr) {
      artifacts_dir = v;
    } else if (ParseFlag(argv[i], "--no-faults", &v)) {
      base.inject_faults = false;
    } else if (ParseFlag(argv[i], "--no-irq-storms", &v)) {
      base.irq_storms = false;
    } else if (ParseFlag(argv[i], "--no-charge-resets", &v)) {
      base.charge_resets = false;
    } else if (ParseFlag(argv[i], "--num-cores", &v) && v != nullptr) {
      base.num_cores = std::atoi(v);
      if (base.num_cores < 1 || base.num_cores > kMaxCores) {
        std::fprintf(stderr, "--num-cores must be in [1, %d], got %s\n", kMaxCores, v);
        return 2;
      }
    } else if (ParseFlag(argv[i], "--tiny-ring", &v)) {
      base.tiny_trace_ring = true;
    } else if (ParseFlag(argv[i], "--check-determinism", &v)) {
      check_determinism = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (check_determinism) {
    TortureResult a = RunTorture(base);
    TortureResult b = RunTorture(base);
    PrintResult(base, a);
    if (a.trace_digest != b.trace_digest) {
      std::printf("DETERMINISM FAIL: digests %016llx vs %016llx for seed=%llu\n",
                  static_cast<unsigned long long>(a.trace_digest),
                  static_cast<unsigned long long>(b.trace_digest),
                  static_cast<unsigned long long>(base.seed));
      return 1;
    }
    std::printf("determinism OK: two runs of seed=%llu produced identical digests\n",
                static_cast<unsigned long long>(base.seed));
    return a.ok ? 0 : 1;
  }

  if (csv_path != nullptr) {
    if (!ExportTortureTraceCsv(base, csv_path)) {
      std::fprintf(stderr, "cannot write %s\n", csv_path);
      return 2;
    }
    std::printf("trace csv written to %s\n", csv_path);
  }

  std::vector<TortureOptions> all_options;
  std::vector<TortureResult> all_results;
  int failed = 0;
  auto start = std::chrono::steady_clock::now();
  // With an explicit --seed and no --runs the sweep is that single seed;
  // otherwise seeds count up from the base seed (default 1).
  int planned = (seed_given && runs == 1) ? 1 : runs;

  if (jobs > 1) {
    // Parallel sweep: seeds fan out over the work-stealing pool in waves (a
    // wave is all planned runs, or `jobs` seeds at a time under a wall-clock
    // budget). Each run writes its own result slot, so the collected report
    // is identical to the serial sweep's; per-worker state (the
    // first-failure artifact flag) is only ever touched by its own worker.
    ThreadPool pool(jobs);
    std::vector<uint8_t> worker_wrote_artifacts(static_cast<size_t>(pool.worker_count()), 0);
    int next = 0;
    for (;;) {
      int wave;
      if (budget_seconds > 0) {
        double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (next > 0 && elapsed >= budget_seconds) {
          break;
        }
        wave = jobs;
      } else {
        wave = planned - next;
        if (wave <= 0) {
          break;
        }
      }
      size_t first = all_results.size();
      for (int i = 0; i < wave; ++i) {
        TortureOptions options = base;
        options.seed = base.seed + static_cast<uint64_t>(next + i);
        all_options.push_back(options);
        all_results.emplace_back();
      }
      for (int i = 0; i < wave; ++i) {
        size_t slot = first + static_cast<size_t>(i);
        pool.Submit([&, slot] {
          all_results[slot] = RunTorture(all_options[slot]);
          const TortureResult& result = all_results[slot];
          if (!result.ok && artifacts_dir != nullptr) {
            int w = ThreadPool::CurrentWorker();
            if (w >= 0 && worker_wrote_artifacts[static_cast<size_t>(w)] == 0) {
              worker_wrote_artifacts[static_cast<size_t>(w)] = 1;
              // Each worker's first failure gets the standard black-box
              // bundle (repro.txt, trace.csv, blackbox.json) — the same
              // layout the fleet flight recorder writes.
              std::string dir =
                  std::string(artifacts_dir) + "/worker-" + std::to_string(w);
              ExportTortureBlackBox(all_options[slot], result, dir);
            }
          }
        });
      }
      pool.Wait();
      next += wave;
    }
    for (size_t i = 0; i < all_results.size(); ++i) {
      PrintResult(all_options[i], all_results[i]);
      if (!all_results[i].ok) {
        ++failed;
        if (failed == 1) {
          // Shrink only the first failure (it re-runs the seed many times);
          // the parallel sweep's other failures are usually the same bug.
          TortureOptions shrunk = ShrinkFailingRun(all_options[i]);
          std::printf("  shrunk:  %s\n", ReproCommand(shrunk).c_str());
        }
      }
    }
  } else {
    for (int i = 0;; ++i) {
      if (budget_seconds > 0) {
        double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        if (i > 0 && elapsed >= budget_seconds) {
          break;
        }
      } else if (i >= planned) {
        break;
      }
      TortureOptions options = base;
      options.seed = base.seed + static_cast<uint64_t>(i);
      TortureResult result = RunTorture(options);
      PrintResult(options, result);
      if (!result.ok) {
        ++failed;
        TortureOptions shrunk = ShrinkFailingRun(options);
        std::printf("  shrunk:  %s\n", ReproCommand(shrunk).c_str());
        // First failure wins the artifact slots: later failures of the same
        // sweep are almost always the same bug, and CI wants one clear repro.
        if (artifacts_dir != nullptr && failed == 1) {
          // Standard black-box bundle (repro.txt with the shrunk line
          // appended, trace.csv, blackbox.json) at the artifacts root.
          if (ExportTortureBlackBox(options, result, artifacts_dir,
                                    "shrunk: " + ReproCommand(shrunk))) {
            std::printf("  artifacts: %s/{repro.txt,trace.csv,blackbox.json}\n",
                        artifacts_dir);
          } else {
            std::fprintf(stderr, "cannot write bundle under %s\n", artifacts_dir);
          }
        }
      }
      all_options.push_back(options);
      all_results.push_back(result);
    }
  }

  if (artifacts_dir != nullptr && failed > 0) {
    std::string report_path = std::string(artifacts_dir) + "/torture-report.json";
    std::string report = BuildTortureReport(all_options, all_results);
    if (std::FILE* out = std::fopen(report_path.c_str(), "w")) {
      std::fwrite(report.data(), 1, report.size(), out);
      std::fclose(out);
    } else {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
    }
  }

  if (json_path != nullptr) {
    std::string report = BuildTortureReport(all_options, all_results);
    std::FILE* out = std::fopen(json_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 2;
    }
    std::fwrite(report.data(), 1, report.size(), out);
    std::fclose(out);
    std::printf("report written to %s\n", json_path);
  }

  std::printf("%zu run(s), %d failed\n", all_results.size(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace fuzz
}  // namespace emeralds

int main(int argc, char** argv) { return emeralds::fuzz::Run(argc, argv); }
