// Timer-queue microbenchmark: host-side cost of arm / cancel / service with
// N timers pending, measured for both TimerQueue implementations (the
// hierarchical wheel and the reference sorted list). The fleet bench embeds
// the results in BENCH_fleet.json; the 10k-pending speedup is the acceptance
// number ("wheel >= 5x the list") that bench_json_check enforces.

#ifndef BENCH_BENCH_TIMERS_H_
#define BENCH_BENCH_TIMERS_H_

#include <cstdint>
#include <vector>

#include "src/fleet/fleet_report.h"

namespace emeralds {
namespace bench {

// One depth point: deterministic expiries from `seed`, wall-clock timings.
fleet::TimerBenchPoint MeasureTimerQueuePoint(int pending, uint64_t seed);

// The standard sweep (1k / 10k / 100k unless overridden).
std::vector<fleet::TimerBenchPoint> MeasureTimerQueues(const std::vector<int>& depths,
                                                       uint64_t seed);

}  // namespace bench
}  // namespace emeralds

#endif  // BENCH_BENCH_TIMERS_H_
