// Section 7 (reconstructed): state messages versus mailbox message-passing.
//
// The paper's intra-node IPC optimization replaces kernel-copied mailbox
// messages with state messages: single-writer multi-reader variables updated
// and read by user-level code, with no kernel trap and no blocking. This
// harness runs a producer publishing a sensor-style value to R consumers
// every 10 ms, implemented both ways on the calibrated kernel. To isolate
// the IPC cost, a baseline run with the same thread structure but no IPC is
// subtracted; reported is the extra virtual time per delivered value.
//
// Expected shape: state messages cost a small near-constant amount per
// transfer (index arithmetic + a word-granular copy) while mailboxes pay the
// kernel trap, queue management, kernel copies, and the context switches
// blocking receivers cause — a several-fold gap that widens with the number
// of consumers (the writer publishes once but must send one mailbox message
// per consumer).

#include <cstdio>
#include <vector>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"

namespace emeralds {
namespace {

enum class IpcKind { kNone, kStateMessage, kMailbox };

struct RunResult {
  double total_us;
  uint64_t transfers;
};

RunResult Run(IpcKind kind, size_t bytes, int readers) {
  Hardware hw;
  KernelConfig config;
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 0;
  Kernel kernel(hw, config);

  SmsgId smsg;
  std::vector<MailboxId> boxes;
  if (kind == IpcKind::kStateMessage) {
    smsg = kernel.CreateStateMessage("value", bytes, readers + 2).value();
  } else if (kind == IpcKind::kMailbox) {
    for (int r = 0; r < readers; ++r) {
      boxes.push_back(kernel.CreateMailbox("chan", 4).value());
    }
  }

  ThreadParams writer;
  writer.name = "writer";
  writer.period = Milliseconds(10);
  writer.body = [kind, smsg, boxes, bytes](ThreadApi api) -> ThreadBody {
    std::vector<uint8_t> payload(bytes, 0x5a);
    for (;;) {
      if (kind == IpcKind::kStateMessage) {
        co_await api.StateWrite(smsg, payload);
      } else if (kind == IpcKind::kMailbox) {
        for (MailboxId box : boxes) {
          co_await api.Send(box, payload);
        }
      }
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(writer);
  for (int r = 0; r < readers; ++r) {
    MailboxId box = kind == IpcKind::kMailbox ? boxes[r] : MailboxId();
    ThreadParams reader;
    reader.name = "reader";
    reader.period = Milliseconds(10);
    reader.first_release = Milliseconds(1);
    reader.body = [kind, smsg, box, bytes](ThreadApi api) -> ThreadBody {
      std::vector<uint8_t> buffer(bytes);
      for (;;) {
        if (kind == IpcKind::kStateMessage) {
          co_await api.StateRead(smsg, buffer);
        } else if (kind == IpcKind::kMailbox) {
          co_await api.Recv(box, buffer);
        }
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(reader);
  }
  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(1));
  const KernelStats& stats = kernel.stats();
  uint64_t transfers =
      kind == IpcKind::kStateMessage ? stats.smsg_reads : stats.mailbox_receives;
  return {(stats.total_charged() + stats.compute_time).micros_f(), transfers};
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  std::printf("State messages vs mailboxes: extra virtual us per delivered value\n");
  std::printf("(1 writer -> R readers at 100 Hz, 1 s simulated, scaffold-subtracted)\n\n");
  std::printf("%6s %8s | %10s %10s %8s\n", "bytes", "readers", "state-msg", "mailbox", "ratio");
  for (size_t bytes : {4, 16, 64}) {
    for (int readers : {1, 2, 4, 8}) {
      RunResult baseline = Run(IpcKind::kNone, bytes, readers);
      RunResult smsg = Run(IpcKind::kStateMessage, bytes, readers);
      RunResult mbox = Run(IpcKind::kMailbox, bytes, readers);
      double smsg_us = (smsg.total_us - baseline.total_us) / smsg.transfers;
      double mbox_us = (mbox.total_us - baseline.total_us) / mbox.transfers;
      std::printf("%6zu %8d | %10.2f %10.2f %7.2fx\n", bytes, readers, smsg_us, mbox_us,
                  mbox_us / smsg_us);
    }
  }
  std::printf("\nexpected shape: state messages a small near-constant (no kernel trap,\n");
  std::printf("no blocking); mailboxes several times costlier, growing with readers\n");
  return 0;
}
