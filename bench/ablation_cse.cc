// Ablation (Section 6.2): context-switch elimination on/off.
//
// Two workloads run with standard semaphores and with the CSE scheme:
//
//  * hot-object: the paper's motivating OO design — several tasks invoking
//    methods on one shared object right at the start of each job (the
//    blocking call "just preceding" acquire_sem). Wakes frequently find the
//    lock held; CSE converts those into early PI, saving the C2 switch.
//  * low-contention: three objects, short sections, and compute between the
//    wake and the acquire, so tasks linger in the pre-acquire queue.
//
// What to expect: CSE reliably removes 10-20% of all context switches (one
// per contended wake). Whole-workload kernel time is close to break-even,
// because the paper's pre-acquire machinery (Section 6.3.1) freezes and
// thaws queue members on every acquire/release cycle — queue-op churn that
// trades against the saved switches. The clean per-pair savings the paper
// reports (Figure 11) are reproduced by bench/fig11_semaphore_overhead,
// which measures exactly the contended pair.
//
// Application progress (jobs completed, deadline misses) must be identical
// in all runs — Section 6.2.2's argument that CSE only swaps chunks of
// execution time between threads.

#include <cstdio>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"

namespace emeralds {
namespace {

struct RunStats {
  uint64_t jobs;
  uint64_t misses;
  uint64_t switches;
  uint64_t saved;
  uint64_t early_pi;
  double sem_path_us;
  double kernel_us;
};

RunStats RunWorkload(SemMode mode, bool hot_object) {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(2);
  config.cost_model = CostModel::MC68040_25MHz();
  config.default_sem_mode = mode;
  config.trace_capacity = 0;
  Kernel kernel(hw, config);
  SemId locks[3] = {
      kernel.CreateSemaphoreWithMode("obj0", 1, mode).value(),
      kernel.CreateSemaphoreWithMode("obj1", 1, mode).value(),
      kernel.CreateSemaphoreWithMode("obj2", 1, mode).value(),
  };

  const int64_t periods_ms[10] = {5, 7, 9, 11, 13, 20, 30, 40, 60, 80};
  for (int i = 0; i < 10; ++i) {
    ThreadParams params;
    params.name = "task";
    params.period = Milliseconds(periods_ms[i]);
    params.band = i < 5 ? 0 : 1;
    // Hot-object: everyone hammers one lock with 0.6-1.5 ms sections (high
    // chance the lock is held when a task's next period arrives).
    // Low-contention: three locks, 0.2-0.65 ms sections.
    SemId lock = hot_object ? locks[0] : locks[i % 3];
    Duration section = hot_object ? Microseconds(400 + 60 * i) : Microseconds(200 + 50 * i);
    Duration work = Microseconds(300 + 40 * i);
    // Hot-object tasks invoke the object method right at the start of the
    // job — the "blocking call just preceding acquire_sem()" pattern the
    // parser instruments. Low-contention tasks compute first, so they linger
    // in the pre-acquire queue (stressing that machinery instead).
    params.body = [lock, section, work, hot_object](ThreadApi api) -> ThreadBody {
      for (;;) {
        if (!hot_object) {
          co_await api.Compute(work);
        }
        co_await api.Acquire(lock);  // method invocation on the object
        co_await api.Compute(section);
        co_await api.Release(lock);
        if (hot_object) {
          co_await api.Compute(work);
        }
        co_await api.WaitNextPeriod(lock);  // parser-inserted hint
      }
    };
    kernel.CreateThread(params);
  }

  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(10));
  const KernelStats& stats = kernel.stats();
  return {stats.jobs_completed,
          stats.deadline_misses,
          stats.context_switches,
          stats.cse_switches_saved,
          stats.cse_early_pi,
          stats.sem_path_time.micros_f(),
          stats.total_charged().micros_f()};
}

void Report(const char* label, bool hot_object) {
  RunStats standard = RunWorkload(SemMode::kStandard, hot_object);
  RunStats cse = RunWorkload(SemMode::kCse, hot_object);
  std::printf("--- %s ---\n", label);
  std::printf("%-28s %14s %14s\n", "", "standard", "CSE");
  std::printf("%-28s %14llu %14llu\n", "jobs completed",
              (unsigned long long)standard.jobs, (unsigned long long)cse.jobs);
  std::printf("%-28s %14llu %14llu\n", "deadline misses",
              (unsigned long long)standard.misses, (unsigned long long)cse.misses);
  std::printf("%-28s %14llu %14llu\n", "context switches",
              (unsigned long long)standard.switches, (unsigned long long)cse.switches);
  std::printf("%-28s %14llu %14llu\n", "switches saved (CSE)",
              (unsigned long long)standard.saved, (unsigned long long)cse.saved);
  std::printf("%-28s %14llu %14llu\n", "early-PI wakes",
              (unsigned long long)standard.early_pi, (unsigned long long)cse.early_pi);
  std::printf("%-28s %14.0f %14.0f\n", "semaphore-path time (us)", standard.sem_path_us,
              cse.sem_path_us);
  std::printf("%-28s %14.0f %14.0f\n", "total kernel overhead (us)", standard.kernel_us,
              cse.kernel_us);
  std::printf("context switches: %+.1f%%   semaphore-path: %+.1f%%   kernel overhead: %+.1f%%\n\n",
              100.0 * (static_cast<double>(cse.switches) - static_cast<double>(standard.switches)) /
                  static_cast<double>(standard.switches),
              100.0 * (cse.sem_path_us - standard.sem_path_us) / standard.sem_path_us,
              100.0 * (cse.kernel_us - standard.kernel_us) / standard.kernel_us);
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  std::printf("CSE ablation: 10 lock-sharing periodic tasks, 10 s simulated\n\n");
  Report("hot-object workload (frequent contention at wake)", /*hot_object=*/true);
  Report("low-contention workload (three objects, short sections)", /*hot_object=*/false);
  std::printf("expected shape: identical application progress; CSE removes one context\n");
  std::printf("switch per contended wake (10-20%% of all switches in the hot case) while\n");
  std::printf("pre-acquire freeze/thaw churn keeps total kernel time near break-even;\n");
  std::printf("the isolated per-pair savings are shown by fig11_semaphore_overhead\n");
  return 0;
}
