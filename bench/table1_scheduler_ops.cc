// Table 1: run-time overheads of the scheduler queue operations (t_b, t_u,
// t_s) for the EDF unsorted list, the RM sorted list with highestp, and the
// RM binary heap.
//
// Two views are produced:
//  1. The calibrated model values (us on the paper's 25 MHz 68040), printed
//     as the same table the paper shows — these follow the Table 1 fits by
//     construction, evaluated at the implementation's actual worst-case
//     operation counts.
//  2. google-benchmark host-nanosecond measurements of the real queue
//     implementations, which demonstrate the *shape*: O(1) vs O(n) vs
//     O(log n) per structure and operation.

#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/analysis/overhead.h"
#include "src/core/band.h"

namespace emeralds {
namespace {

std::vector<std::unique_ptr<Tcb>> MakeTasks(int n) {
  std::vector<std::unique_ptr<Tcb>> tasks;
  for (int i = 0; i < n; ++i) {
    auto t = std::make_unique<Tcb>();
    t->id = ThreadId(i);
    t->base_rm_rank = i;
    t->effective_rm_rank = i;
    t->effective_deadline = Instant() + Milliseconds(10 * (i % 37 + 1));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

template <typename BandType>
struct BandFixture {
  explicit BandFixture(int n) : band(0), tasks(MakeTasks(n)) {
    for (auto& t : tasks) {
      band.AddTask(*t);
    }
  }
  ~BandFixture() {
    for (auto& t : tasks) {
      band.RemoveTask(*t);
    }
  }
  BandType band;
  std::vector<std::unique_ptr<Tcb>> tasks;
};

// --- EDF list ---

void BM_EdfBlockUnblock(benchmark::State& state) {
  BandFixture<EdfBand> fx(static_cast<int>(state.range(0)));
  ChargeList charges;
  Tcb& t = *fx.tasks[0];
  for (auto _ : state) {
    fx.band.Unblock(t, charges);
    fx.band.Block(t, charges);
    charges.clear();
  }
}
BENCHMARK(BM_EdfBlockUnblock)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void BM_EdfSelect(benchmark::State& state) {
  BandFixture<EdfBand> fx(static_cast<int>(state.range(0)));
  ChargeList charges;
  // Half the tasks ready: selection still parses the whole list.
  for (size_t i = 0; i < fx.tasks.size(); i += 2) {
    fx.band.Unblock(*fx.tasks[i], charges);
    charges.clear();
  }
  int units = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.band.SelectReady(&units));
  }
}
BENCHMARK(BM_EdfSelect)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

// --- RM sorted list ---

void BM_RmBlockWorstCase(benchmark::State& state) {
  // highestp points at the blocking task; the next ready task is at the list
  // tail, so blocking scans the whole queue (the 0.36 us/task slope).
  BandFixture<RmBand> fx(static_cast<int>(state.range(0)));
  ChargeList charges;
  Tcb& head = *fx.tasks[0];
  Tcb& tail = *fx.tasks[fx.tasks.size() - 1];
  fx.band.Unblock(tail, charges);
  charges.clear();
  for (auto _ : state) {
    fx.band.Unblock(head, charges);
    fx.band.Block(head, charges);  // scan to the tail
    charges.clear();
  }
}
BENCHMARK(BM_RmBlockWorstCase)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void BM_RmUnblockAndSelect(benchmark::State& state) {
  BandFixture<RmBand> fx(static_cast<int>(state.range(0)));
  ChargeList charges;
  // The head task stays ready so highestp never moves: both the unblock
  // (compare against highestp) and the block (not highestp, no scan) of the
  // mid task are the O(1) paths Table 1 reports.
  fx.band.Unblock(*fx.tasks[0], charges);
  charges.clear();
  Tcb& mid = *fx.tasks[fx.tasks.size() / 2];
  int units = 0;
  for (auto _ : state) {
    fx.band.Unblock(mid, charges);             // O(1) compare with highestp
    benchmark::DoNotOptimize(fx.band.SelectReady(&units));  // O(1)
    fx.band.Block(mid, charges);
    charges.clear();
  }
}
BENCHMARK(BM_RmUnblockAndSelect)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

// --- RM heap ---

void BM_HeapBlockUnblock(benchmark::State& state) {
  BandFixture<RmHeapBand> fx(static_cast<int>(state.range(0)));
  ChargeList charges;
  for (auto& t : fx.tasks) {
    fx.band.Unblock(*t, charges);
    charges.clear();
  }
  Tcb& best = *fx.tasks[0];
  for (auto _ : state) {
    fx.band.Block(best, charges);    // remove min: O(log n) sift
    fx.band.Unblock(best, charges);  // reinsert: sifts back to the root
    charges.clear();
  }
}
BENCHMARK(BM_HeapBlockUnblock)->Arg(8)->Arg(16)->Arg(32)->Arg(58);

void PrintModelTable() {
  OverheadModel model(CostModel::MC68040_25MHz());
  std::printf("Table 1: modelled run-time overheads (us, 25 MHz 68040 profile)\n");
  std::printf("%4s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "n", "EDF t_b", "EDF t_u",
              "EDF t_s", "RM t_b", "RM t_u", "RM t_s", "heap t_b", "heap t_u", "heap t_s");
  CostModel cost = CostModel::MC68040_25MHz();
  for (int n : {5, 10, 15, 20, 30, 40, 50, 58}) {
    int levels = 1;
    while ((1 << levels) < n + 1) {
      ++levels;
    }
    std::printf("%4d | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n", n,
                cost.QueueCost(QueueKind::kEdfList, QueueOp::kBlock, 1).micros_f(),
                cost.QueueCost(QueueKind::kEdfList, QueueOp::kUnblock, 1).micros_f(),
                cost.QueueCost(QueueKind::kEdfList, QueueOp::kSelect, n).micros_f(),
                cost.QueueCost(QueueKind::kRmList, QueueOp::kBlock, n).micros_f(),
                cost.QueueCost(QueueKind::kRmList, QueueOp::kUnblock, 1).micros_f(),
                cost.QueueCost(QueueKind::kRmList, QueueOp::kSelect, 1).micros_f(),
                cost.QueueCost(QueueKind::kRmHeap, QueueOp::kBlock, levels).micros_f(),
                cost.QueueCost(QueueKind::kRmHeap, QueueOp::kUnblock, levels).micros_f(),
                cost.QueueCost(QueueKind::kRmHeap, QueueOp::kSelect, 1).micros_f());
  }
  std::printf("\nPer-period scheduler overhead t = 1.5(t_b + t_u + 2 t_s) (us):\n");
  std::printf("%4s %10s %10s %10s\n", "n", "EDF", "RM-list", "RM-heap");
  for (int n : {5, 15, 30, 50, 58, 70}) {
    std::printf("%4d %10.2f %10.2f %10.2f\n", n, model.EdfTaskOverhead(n).micros_f(),
                model.RmTaskOverhead(n).micros_f(), model.RmTaskOverhead(n, true).micros_f());
  }
  std::printf("(paper: heap only beats the sorted list once n reaches ~58)\n\n");
  std::printf("Host-nanosecond microbenchmarks of the real implementations follow;\n");
  std::printf("expect flat EDF block/unblock, linear EDF select, linear worst-case RM\n");
  std::printf("block, flat RM unblock+select, and logarithmic heap block/unblock.\n\n");
}

}  // namespace
}  // namespace emeralds

int main(int argc, char** argv) {
  emeralds::PrintModelTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
