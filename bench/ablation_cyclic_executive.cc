// Ablation (Section 5's motivation): the cyclic time-slice executive that
// priority-driven scheduling replaces. Quantifies the paper's three claimed
// weaknesses on the paper's own workload recipe:
//
//   1. "Heuristics ... result in non-optimal solutions (feasible workloads
//      may get rejected)": fraction of workloads the cyclic builder rejects
//      at utilizations where EDF/CSD accept, plus breakdown comparison.
//   2. "High-priority aperiodic tasks receive poor response-time": the frame
//      -boundary service bound versus the priority-driven dispatch bound.
//   3. "Workloads containing short and long period tasks ... or relatively
//      prime periods, result in very large time-slice schedules, wasting
//      scarce memory": table bytes versus the kernel's O(n) queue memory.

#include <cstdio>
#include <cstdlib>

#include "src/analysis/breakdown.h"
#include "src/analysis/cyclic.h"
#include "src/base/rng.h"
#include "src/workload/workload.h"

int main() {
  using namespace emeralds;
  const char* env = std::getenv("EMERALDS_WORKLOADS");
  const int workloads = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 60;
  CostModel cost = CostModel::MC68040_25MHz();

  std::printf("Cyclic executive vs priority-driven scheduling "
              "(%d paper-recipe workloads per point)\n\n", workloads);

  // --- Weakness 1 + 3: acceptance and table size across n ---
  // Raw recipe: the paper's random 5-999 ms periods. Harmonized: each period
  // rounded down onto the {5,10,20,50,100,200,500} ms grid — the manual
  // period massaging cyclic-executive deployments force on designers (at the
  // cost of running tasks more often than needed).
  auto harmonize = [](TaskSet set) {
    const int64_t grid[] = {5, 10, 20, 50, 100, 200, 500};
    for (PeriodicTask& task : set.tasks) {
      int64_t ms = task.period.millis();
      int64_t chosen = grid[0];
      for (int64_t g : grid) {
        if (g <= ms) {
          chosen = g;
        }
      }
      task.period = Milliseconds(chosen);
      task.deadline = task.period;
    }
    set.SortByPeriod();
    return set;
  };

  for (int pass = 0; pass < 2; ++pass) {
    bool harmonized = pass == 1;
    std::printf("%s periods:\n", harmonized ? "harmonized-grid" : "raw paper-recipe");
    std::printf("%4s | %9s %9s | %10s %12s | %12s\n", "n", "CE ok", "CE bd%", "EDF bd%",
                "CE table", "reject mix");
    Rng root(777);
    for (int n : {5, 10, 20, 30}) {
      int accepted = 0;
      double ce_breakdown = 0.0;
      double edf_breakdown = 0.0;
      int64_t table_bytes_sum = 0;
      int rejects[6] = {};
      for (int w = 0; w < workloads; ++w) {
        Rng rng = root.Fork(static_cast<uint64_t>(n) * 1000 + w);
        TaskSet set = GenerateWorkload(rng, n);  // starts at U = 0.5
        if (harmonized) {
          set = harmonize(set);
        }
        CyclicSchedule schedule = BuildCyclicSchedule(set);
        if (schedule.feasible) {
          ++accepted;
          table_bytes_sum += schedule.TableBytes();
        } else {
          ++rejects[static_cast<int>(schedule.reject)];
        }
        ce_breakdown += CyclicBreakdownUtilization(set);
        edf_breakdown += ComputeBreakdown(set, PolicySpec::Edf(), cost).utilization;
      }
      std::printf("%4d | %8.0f%% %8.1f%% | %9.1f%% %9lld B | big-H:%d no-f:%d pack:%d\n", n,
                  100.0 * accepted / workloads, 100.0 * ce_breakdown / workloads,
                  100.0 * edf_breakdown / workloads,
                  accepted > 0 ? static_cast<long long>(table_bytes_sum / accepted) : 0,
                  rejects[static_cast<int>(CyclicReject::kHyperperiodTooBig)],
                  rejects[static_cast<int>(CyclicReject::kNoValidFrameSize)],
                  rejects[static_cast<int>(CyclicReject::kPackingFailed)]);
    }
    std::printf("\n");
  }
  std::printf("(CE ok = builds at U = 0.5; CE bd%% = cyclic breakdown utilization;\n");
  std::printf(" raw-recipe rejections are workloads trivially feasible under EDF/CSD)\n\n");

  // --- Weakness 2: aperiodic service latency ---
  std::printf("aperiodic service-start bound, Table 2 workload:\n");
  TaskSet table2 = Table2Workload();
  CyclicSchedule schedule = BuildCyclicSchedule(table2);
  if (schedule.feasible) {
    std::printf("  cyclic executive: frame %.1f ms -> worst start delay %.1f ms\n",
                schedule.frame_us / 1000.0,
                schedule.WorstAperiodicStartDelay().micros_f() / 1000.0);
  } else {
    std::printf("  cyclic executive: Table 2 rejected (%s)\n",
                CyclicRejectToString(schedule.reject));
  }
  // Priority-driven: a top-priority aperiodic thread is dispatched after at
  // most the scheduler invocation + context switch (blocking aside).
  Duration dispatch = cost.context_switch + cost.interrupt_entry + cost.interrupt_exit +
                      MicrosecondsF(1.2 + 0.25 * 10);  // EDF select at n=10
  std::printf("  priority-driven:  interrupt + select + switch ~= %.3f ms\n\n",
              dispatch.micros_f() / 1000.0);

  // --- Weakness 3 focus: memory for mixed-period workloads ---
  std::printf("table memory, Table 2 (short 4-8 ms periods + long 100-300 ms):\n");
  if (schedule.feasible) {
    std::printf("  cyclic executive: H = %.1f s, %lld entries, %lld bytes\n",
                schedule.hyperperiod_us / 1e6, static_cast<long long>(schedule.table_entries),
                static_cast<long long>(schedule.TableBytes()));
  }
  // The kernel's scheduler state is one queue node per task regardless of
  // periods (~16 bytes of links + key on the paper's targets).
  std::printf("  EMERALDS queues:  %d tasks x ~16 B = %d bytes\n\n", table2.size(),
              table2.size() * 16);
  std::printf("expected shape: the cyclic executive rejects a growing share of\n");
  std::printf("paper-recipe workloads, needs kilobytes of table where queues need\n");
  std::printf("bytes, and serves aperiodics ~two frames late vs ~10 us dispatch\n");
  return 0;
}
