// Figure 5: average breakdown utilizations with task periods divided by 3.
//
// Expected shape (paper): the short periods make the scheduler run often, so
// "RM quickly overtakes EDF"; CSD continues to be superior to both, with
// CSD-3 / CSD-4 well ahead at large n.

#include "bench/breakdown_harness.h"

int main() {
  emeralds::RunBreakdownFigure("Figure 5", /*divide=*/3);
  return 0;
}
