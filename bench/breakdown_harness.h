// Shared harness for the breakdown-utilization figures (Figures 3-5).

#ifndef BENCH_BREAKDOWN_HARNESS_H_
#define BENCH_BREAKDOWN_HARNESS_H_

namespace emeralds {

// Regenerates one of Figures 3-5: average breakdown utilization versus task
// count for RM, EDF, CSD-2, CSD-3 and CSD-4, with task periods divided by
// `divide` (1, 2 or 3). Workload count defaults to the environment variable
// EMERALDS_WORKLOADS (paper: 500; default here: 60 to keep the harness quick
// on small machines). Prints the series to stdout.
void RunBreakdownFigure(const char* figure_name, int divide);

}  // namespace emeralds

#endif  // BENCH_BREAKDOWN_HARNESS_H_
