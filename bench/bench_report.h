// Machine-readable perf trajectory for the breakdown benches.
//
// The breakdown harness emits a JSON report (schema
// "emeralds.bench.breakdown/1") with per-point wall time, throughput, average
// breakdown utilizations, and schedulability-test evaluation counts for both
// the optimized CsdEvaluator engine and the naive reference sample — the
// numbers behind the engine's ">= 10x fewer evaluations" claim. The schema is
// documented in docs/analysis.md; bench_json_check validates emitted files
// with the reader half of this header.

#ifndef BENCH_BENCH_REPORT_H_
#define BENCH_BENCH_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "src/analysis/csd_evaluator.h"
#include "src/base/json.h"

namespace emeralds {

struct BenchPoint {
  int n = 0;
  double wall_seconds = 0.0;  // optimized sweep, all policies and workloads
  double workloads_per_sec = 0.0;
  // Policy name -> average breakdown utilization in percent.
  std::vector<std::pair<std::string, double>> avg_breakdown_pct;
  CsdSearchStats evals;            // optimized engine, all workloads
  int reference_sample = 0;        // workloads re-run on the naive engine
  CsdSearchStats reference_evals;  // naive engine over that sample
  double reference_wall_seconds = 0.0;
  // Naive full evaluations per workload / optimized full evaluations per
  // workload (0 when no reference sample ran).
  double eval_reduction = 0.0;
  // Workloads in the sample where the naive search's result differed from the
  // optimized one. Golden equivalence says this stays 0.
  int reference_mismatches = 0;
};

struct BenchReport {
  std::string figure;
  int divide = 1;
  int workloads_per_point = 0;
  std::vector<BenchPoint> points;
};

// Serializes the report under schema "emeralds.bench.breakdown/1". Returns
// false when the file cannot be written.
bool WriteBenchReport(const BenchReport& report, const std::string& path);

// Output path for the report: $EMERALDS_BENCH_JSON, or `fallback` when unset.
// (The JSON reader used by the validation side lives in src/base/json.h.)
std::string BenchJsonPath(const char* fallback);

}  // namespace emeralds

#endif  // BENCH_BENCH_REPORT_H_
