#include "bench/bench_timers.h"

#include <algorithm>
#include <chrono>

#include "src/base/rng.h"
#include "src/core/timer_queue.h"

namespace emeralds {
namespace bench {
namespace {

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct OpCosts {
  double arm_ns = 0.0;
  double cancel_ns = 0.0;
  double service_ns = 0.0;
};

// Steady-state costs with `pending` resident timers. Arm and cancel are
// measured over a batch of probe timers inserted at (and removed from)
// random positions; service drains the global minimum repeatedly, exactly
// the TimerIsr pop path.
OpCosts MeasureImpl(TimerQueueImpl impl, int pending, uint64_t seed) {
  const Duration horizon = Milliseconds(100);
  Rng rng(seed);
  Instant now;

  // Resident population at random expiries across the horizon (spanning
  // every wheel level). Filled in descending order so the reference list's
  // O(n) insert does not make *setup* quadratic at 100k — each insert lands
  // at the front.
  std::vector<int64_t> expiries(static_cast<size_t>(pending));
  for (int64_t& e : expiries) {
    e = rng.UniformInt(1000, horizon.nanos());
  }
  std::sort(expiries.begin(), expiries.end(), std::greater<int64_t>());

  TimerQueue queue(impl);
  std::vector<SoftTimer> resident(static_cast<size_t>(pending));
  uint64_t seq = 1;
  for (int i = 0; i < pending; ++i) {
    resident[static_cast<size_t>(i)].expiry = Instant() + Nanoseconds(expiries[static_cast<size_t>(i)]);
    resident[static_cast<size_t>(i)].arm_seq = seq++;
    queue.Insert(resident[static_cast<size_t>(i)], now);
  }

  // Fewer probes at greater depth keeps the list's O(n) arms affordable
  // without starving the wheel's nanosecond ops of samples.
  int probe_count = pending >= 100000 ? 128 : (pending >= 10000 ? 1024 : 4096);
  std::vector<SoftTimer> probes(static_cast<size_t>(probe_count));
  for (SoftTimer& probe : probes) {
    probe.expiry = Instant() + Nanoseconds(rng.UniformInt(1000, horizon.nanos()));
  }

  OpCosts costs;
  double t0 = NowNs();
  for (SoftTimer& probe : probes) {
    probe.arm_seq = seq++;
    queue.Insert(probe, now);
  }
  double t1 = NowNs();
  for (SoftTimer& probe : probes) {
    queue.Remove(probe);
  }
  double t2 = NowNs();
  costs.arm_ns = (t1 - t0) / probe_count;
  costs.cancel_ns = (t2 - t1) / probe_count;

  int service_count = std::min(pending, 2048);
  double t3 = NowNs();
  for (int i = 0; i < service_count; ++i) {
    SoftTimer* min = queue.Min();
    queue.Remove(*min);
  }
  double t4 = NowNs();
  costs.service_ns = (t4 - t3) / service_count;

  queue.Clear();
  return costs;
}

}  // namespace

fleet::TimerBenchPoint MeasureTimerQueuePoint(int pending, uint64_t seed) {
  fleet::TimerBenchPoint point;
  point.pending = pending;
  OpCosts wheel = MeasureImpl(TimerQueueImpl::kWheel, pending, seed);
  OpCosts list = MeasureImpl(TimerQueueImpl::kSortedList, pending, seed);
  point.wheel_arm_ns = wheel.arm_ns;
  point.wheel_cancel_ns = wheel.cancel_ns;
  point.wheel_service_ns = wheel.service_ns;
  point.list_arm_ns = list.arm_ns;
  point.list_cancel_ns = list.cancel_ns;
  point.list_service_ns = list.service_ns;
  return point;
}

std::vector<fleet::TimerBenchPoint> MeasureTimerQueues(const std::vector<int>& depths,
                                                       uint64_t seed) {
  std::vector<fleet::TimerBenchPoint> points;
  points.reserve(depths.size());
  for (int depth : depths) {
    points.push_back(MeasureTimerQueuePoint(depth, seed));
  }
  return points;
}

}  // namespace bench
}  // namespace emeralds
