// Figure 2 / Table 2: the workload that is feasible under EDF but not under
// RM. Runs the actual kernel on the reconstructed Table 2 task set under RM,
// EDF, and CSD-2 (tau_1..tau_5 in the DP queue) and prints the schedule
// trace for the first 12 ms plus a deadline summary.
//
// Expected shape (paper): under RM, tau_1..tau_4 execute twice before tau_5
// ever runs, so tau_5 misses its 8 ms deadline; under EDF (and CSD) the
// workload is feasible.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/taskset_runner.h"
#include "src/hal/hardware.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

// With EMERALDS_OBS_DIR set, each scenario also exports its observability
// bundle there: <slug>.trace.csv (TraceSink window), <slug>.perfetto.json
// (load at ui.perfetto.dev), <slug>.run.json (emeralds.obs.run/1). The
// obs_smoke CTest label runs the RM scenario this way and feeds the bundle
// through bench_json_check and trace_inspect.
void ExportObsBundle(const char* slug, const char* scheduler, Kernel& kernel,
                     const std::vector<ThreadId>& ids, Duration horizon) {
  const char* dir = std::getenv("EMERALDS_OBS_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  std::string base = std::string(dir) + "/" + slug;

  std::FILE* csv = std::fopen((base + ".trace.csv").c_str(), "w");
  if (csv != nullptr) {
    kernel.trace().ExportCsv(csv);
    std::fclose(csv);
  }
  std::FILE* pf = std::fopen((base + ".perfetto.json").c_str(), "w");
  if (pf != nullptr) {
    obs::ExportPerfettoJson(kernel, pf);
    std::fclose(pf);
  }
  obs::ObsRunInfo info;
  info.label = slug;
  info.scheduler = scheduler;
  info.run_duration = horizon;
  obs::WriteObsRunReportFile(base + ".run.json", info, kernel, ids);
  std::printf("[obs] wrote %s.{trace.csv,perfetto.json,run.json}\n", base.c_str());
}

void RunScenario(const char* label, const char* slug, SchedulerSpec spec,
                 const std::vector<int>& bands, bool print_trace) {
  Hardware hw;
  KernelConfig config;
  config.scheduler = spec;
  config.cost_model = CostModel::Zero();  // the paper's Figure 2 is idealized
  config.trace_capacity = 8192;
  Kernel kernel(hw, config);
  kernel.EnableStatsSampling(Milliseconds(5), 64);
  TaskSet set = Table2Workload();
  std::vector<ThreadId> ids = SpawnTaskSet(kernel, set, bands);
  kernel.Start();
  kernel.RunUntil(Instant() + Milliseconds(40));
  ExportObsBundle(slug, label, kernel, ids, Milliseconds(40));

  std::printf("--- %s ---\n", label);
  if (print_trace) {
    std::printf("schedule trace, first 12 ms (thread -1 = idle):\n");
    TraceSink& trace = kernel.trace();
    for (size_t i = 0; i < trace.size(); ++i) {
      const TraceEvent& event = trace.at(i);
      if (event.time > Instant() + Milliseconds(12)) {
        break;
      }
      if (event.type == TraceEventType::kContextSwitch) {
        std::printf("  %7.3f ms  run tau_%d\n", event.time.millis_f(), event.arg1 + 1);
      } else if (event.type == TraceEventType::kDeadlineMiss) {
        std::printf("  %7.3f ms  ** tau_%d MISSES its deadline (job %d) **\n",
                    event.time.millis_f(), event.arg0 + 1, event.arg1);
      }
    }
  }
  std::printf("deadline misses over 40 ms:");
  bool any = false;
  for (size_t i = 0; i < ids.size(); ++i) {
    uint64_t misses = kernel.thread(ids[i]).deadline_misses;
    if (misses > 0) {
      std::printf("  tau_%zu: %llu", i + 1, static_cast<unsigned long long>(misses));
      any = true;
    }
  }
  std::printf("%s\n\n", any ? "" : "  none");
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  std::printf("Table 2 workload (reconstructed, U = %.3f):\n", Table2Workload().Utilization());
  TaskSet set = Table2Workload();
  for (int i = 0; i < set.size(); ++i) {
    std::printf("  tau_%-2d P = %4lld ms  c = %5.2f ms\n", i + 1,
                static_cast<long long>(set.tasks[i].period.millis()),
                set.tasks[i].wcet.millis_f());
  }
  std::printf("\n");
  RunScenario("RM (Figure 2: tau_5 starves)", "fig2_rm", SchedulerSpec::Rm(), {},
              /*print_trace=*/true);
  RunScenario("EDF (feasible)", "fig2_edf", SchedulerSpec::Edf(), {}, /*print_trace=*/false);
  RunScenario("CSD-2, tau_1..tau_5 in the DP queue (feasible)", "fig2_csd2",
              SchedulerSpec::Csd(2), {0, 0, 0, 0, 0, 1, 1, 1, 1, 1}, /*print_trace=*/false);
  return 0;
}
