// bench_cycles: the cycle-attribution baseline workload.
//
// One deterministic 2-second CSD-3 run exercising every cost-charging path
// the ledger attributes: periodic tasks across both DP bands and the FP
// band, CSE semaphore contention (priority inheritance included), a mailbox
// producer/consumer pair, a single-writer state message, an IRQ-driven
// driver thread fed by host-side raises at fixed slice boundaries, and the
// periodic stats sampler (whose own overhead lands in the stats_obs
// bucket). The run is pure virtual time, so the resulting per-bucket ledger
// is bit-identical across machines — which is what lets CI diff it against
// the committed BENCH_cycles.json with bench_compare.
//
// Output: an emeralds.obs.cycles/1 report at $EMERALDS_BENCH_JSON (default
// ./BENCH_cycles.json), plus the full observability bundle under
// $EMERALDS_OBS_DIR when set. Exit status 1 when the conservation invariant
// fails, 0 otherwise.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "src/core/kernel.h"
#include "src/core/taskset_runner.h"
#include "src/hal/hardware.h"
#include "src/obs/cycles_report.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"

namespace emeralds {
namespace {

constexpr Duration kRunTime = Seconds(2);

// All cycle traffic in one kernel: returns the spawned thread ids.
std::vector<ThreadId> BuildWorkload(Kernel& kernel) {
  std::vector<ThreadId> ids;
  SemId sensor = kernel.CreateSemaphore("sensor", 1).value();
  MailboxId frames = kernel.CreateMailbox("frames", 4).value();
  SmsgId pose = kernel.CreateStateMessage("pose", 32, 2).value();

  // DP1: high-rate control loop contending on the sensor lock. The 1 ms
  // offset lands its releases inside filter's hold window, so the run has
  // real blocking and priority inheritance.
  ThreadParams ctrl;
  ctrl.name = "ctrl";
  ctrl.period = Milliseconds(2);
  ctrl.first_release = Milliseconds(1);
  ctrl.band = 0;
  ctrl.body = [sensor](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Microseconds(150));
      co_await api.Acquire(sensor);
      co_await api.Compute(Microseconds(100));
      co_await api.Release(sensor);
      co_await api.WaitNextPeriod(sensor);  // CSE hint
    }
  };
  ids.push_back(kernel.CreateThread(ctrl).value());

  // DP1: filter holding the lock long enough that ctrl blocks and inherits.
  ThreadParams filter;
  filter.name = "filter";
  filter.period = Milliseconds(5);
  filter.band = 0;
  filter.body = [sensor](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sensor);
      co_await api.Compute(Microseconds(1500));
      co_await api.Release(sensor);
      co_await api.Compute(Microseconds(200));
      co_await api.WaitNextPeriod(sensor);
    }
  };
  ids.push_back(kernel.CreateThread(filter).value());

  // DP2: planner publishes the pose state message each period.
  ThreadParams planner;
  planner.name = "planner";
  planner.period = Milliseconds(10);
  planner.band = 1;
  planner.body = [pose](ThreadApi api) -> ThreadBody {
    uint8_t buf[32] = {};
    for (;;) {
      co_await api.Compute(Microseconds(1200));
      buf[0] = static_cast<uint8_t>(api.job_number());
      co_await api.StateWrite(pose, std::span<const uint8_t>(buf, sizeof(buf)));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(planner).value());

  // DP2: producer feeds the mailbox; TrySend keeps it non-blocking.
  ThreadParams producer;
  producer.name = "producer";
  producer.period = Milliseconds(4);
  producer.band = 1;
  producer.body = [frames](ThreadApi api) -> ThreadBody {
    uint8_t payload[16] = {};
    for (;;) {
      co_await api.Compute(Microseconds(250));
      payload[0] = static_cast<uint8_t>(api.job_number());
      co_await api.TrySend(frames, std::span<const uint8_t>(payload, sizeof(payload)));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(producer).value());

  // FP: consumer drains the mailbox with a bounded wait, reads the pose.
  ThreadParams consumer;
  consumer.name = "consumer";
  consumer.period = Milliseconds(4);
  consumer.body = [frames, pose](ThreadApi api) -> ThreadBody {
    uint8_t buf[32];
    for (;;) {
      co_await api.Recv(frames, std::span<uint8_t>(buf, sizeof(buf)), Milliseconds(1));
      co_await api.StateRead(pose, std::span<uint8_t>(buf, sizeof(buf)));
      co_await api.Compute(Microseconds(300));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(consumer).value());

  // FP: background logger, long compute, frequently preempted.
  ThreadParams logger;
  logger.name = "logger";
  logger.period = Milliseconds(50);
  logger.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(5));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(logger).value());

  // Aperiodic IRQ-driven driver; the host raises its line at fixed slice
  // boundaries below.
  ThreadParams driver;
  driver.name = "driver";
  driver.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.WaitIrq(kIrqFieldbus);
      co_await api.Compute(Microseconds(120));
    }
  };
  ThreadId driver_id = kernel.CreateThread(driver).value();
  kernel.BindIrqThread(driver_id, kIrqFieldbus);
  ids.push_back(driver_id);
  return ids;
}

int Run() {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(3);
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 65536;
  config.default_sem_mode = SemMode::kCse;
  // Margin chosen just above ctrl's steady-state predicted slack (~1.73 ms)
  // so the headroom monitor fires on the tightest task and the baseline
  // exercises the low-headroom trace/stat path end to end.
  config.headroom_low_margin = Microseconds(1800);
  Kernel kernel(hw, config);
  kernel.EnableStatsSampling(Milliseconds(10), 256);

  std::vector<ThreadId> ids = BuildWorkload(kernel);
  kernel.Start();

  // Fixed-cadence host IRQ raises: every 7th millisecond slice.
  Instant end = Instant() + kRunTime;
  int slice = 0;
  while (kernel.now() < end) {
    Instant next = Instant() + Milliseconds(++slice);
    if (next > end) {
      next = end;
    }
    kernel.RunUntil(next);
    if (slice % 7 == 0) {
      hw.irq().Raise(kIrqFieldbus);
    }
  }

  CycleConservation conservation = CheckCycleConservation(kernel.stats(), kernel.now());
  std::printf("bench_cycles: CSD-3, %lld ms virtual time\n",
              static_cast<long long>(kRunTime.millis()));
  PrintKernelStats(kernel.stats());
  std::printf("conservation: ledger %.1f us vs elapsed %.1f us -> %s\n",
              conservation.ledger_total.micros_f(), conservation.elapsed.micros_f(),
              conservation.exact() ? "exact" : "VIOLATED");

  std::string json_path = BenchJsonPath("BENCH_cycles.json");
  if (!obs::WriteCyclesReportFile(json_path, "bench_cycles", "CSD-3", kernel, ids)) {
    std::fprintf(stderr, "bench_cycles: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  // Full observability bundle for CI artifacts.
  const char* dir = std::getenv("EMERALDS_OBS_DIR");
  if (dir != nullptr && dir[0] != '\0') {
    std::string base = std::string(dir) + "/bench_cycles";
    std::FILE* csv = std::fopen((base + ".trace.csv").c_str(), "w");
    if (csv != nullptr) {
      kernel.trace().ExportCsv(csv);
      std::fclose(csv);
    }
    std::FILE* pf = std::fopen((base + ".perfetto.json").c_str(), "w");
    if (pf != nullptr) {
      obs::ExportPerfettoJson(kernel, pf);
      std::fclose(pf);
    }
    obs::ObsRunInfo info;
    info.label = "bench_cycles";
    info.scheduler = "CSD-3";
    info.run_duration = kRunTime;
    obs::WriteObsRunReportFile(base + ".run.json", info, kernel, ids);
    std::printf("[obs] wrote %s.{trace.csv,perfetto.json,run.json}\n", base.c_str());
  }
  return conservation.exact() ? 0 : 1;
}

}  // namespace
}  // namespace emeralds

int main() { return emeralds::Run(); }
