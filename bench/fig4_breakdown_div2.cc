// Figure 4: average breakdown utilizations with task periods divided by 2
// (10-500 ms range in the paper's terms).
//
// Expected shape (paper): for moderate periods EDF starts above RM but its
// O(n) selection overhead grows until RM overtakes it at large n; CSD stays
// above both throughout ("for n = 40, CSD-4 has 50% lower overhead than RM").

#include "bench/breakdown_harness.h"

int main() {
  emeralds::RunBreakdownFigure("Figure 4", /*divide=*/2);
  return 0;
}
