// Figure 11: semaphore acquire/release overhead in the contended scenario of
// Figure 6, versus the number of tasks in the scheduler queue, for the
// standard implementation and EMERALDS's CSE scheme.
//
// Scenario: low-priority T1 computes until t=9ms, then locks S for 3ms of
// work; high-priority T2's periodic release at t=10ms finds S locked. The
// harness measures the semaphore-path virtual time (semaphore bookkeeping,
// priority inheritance, and the scheduler/context-switch work the semaphore
// operations trigger) in the window [9.5ms, 12.5ms] that covers the
// contended acquire and the handoff release. Queue length is swept by adding
// blocked filler tasks (the queues hold blocked tasks too).
//
// Expected shape (paper):
//  * DP (EDF) queue: both curves linear in queue length; the standard
//    implementation's slope is twice the new scheme's (two context switches
//    each paying the O(n) selection vs one). ~28% saving at length 15.
//  * FP (RM) queue: the standard implementation grows linearly (O(n) PI
//    re-inserts and the t_b scan) while the new scheme is constant
//    (place-holder swaps + highestp). ~26% saving at length 15.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"

namespace emeralds {
namespace {

double MeasurePairOverheadUs(SchedulerSpec spec, SemMode mode, int queue_length,
                             bool with_obs = false) {
  Hardware hw;
  KernelConfig config;
  config.scheduler = spec;
  config.cost_model = CostModel::MC68040_25MHz();
  config.default_sem_mode = mode;
  config.trace_capacity = with_obs ? 4096 : 0;
  config.max_threads = 64;
  Kernel kernel(hw, config);
  if (with_obs) {
    kernel.EnableStatsSampling(Milliseconds(2), 64);
  }
  SemId sem = kernel.CreateSemaphoreWithMode("S", 1, mode).value();

  // T2: high priority, contends at its second release (t=10ms).
  ThreadParams t2;
  t2.name = "T2";
  t2.period = Milliseconds(10);
  t2.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(1));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod(sem);  // parser-inserted hint
    }
  };
  std::vector<ThreadId> ids;
  ids.push_back(kernel.CreateThread(t2).value());

  // T1: low priority; holds S across T2's release.
  ThreadParams t1;
  t1.name = "T1";
  t1.period = Milliseconds(50);
  t1.body = [sem](ThreadApi api) -> ThreadBody {
    co_await api.Compute(Milliseconds(8));
    co_await api.Acquire(sem);
    co_await api.Compute(Milliseconds(3));
    co_await api.Release(sem);
    co_await api.WaitNextPeriod();
  };
  ids.push_back(kernel.CreateThread(t1).value());

  // Fillers: released far beyond the horizon, so they sit blocked in the
  // queue and only lengthen parses and scans. Their periods (11..48 ms) rank
  // them *between* T2 and T1 in the FP queue — exactly the span the standard
  // implementation's t_b scan and PI re-inserts must traverse.
  for (int i = 0; i < queue_length - 2; ++i) {
    ThreadParams filler;
    filler.name = "filler";
    filler.period = Milliseconds(11 + (i % 38));
    filler.first_release = Seconds(50);
    filler.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(filler);
  }

  kernel.Start();
  kernel.RunUntil(Instant() + Microseconds(9500));
  kernel.ResetChargeAccounting();
  kernel.RunUntil(Instant() + Microseconds(12500));

  // Representative observability bundle (EMERALDS_OBS_DIR): the contended
  // CSE handoff is the run worth looking at in Perfetto — the early-PI
  // marker and the saved context switch are directly visible.
  if (with_obs) {
    const char* dir = std::getenv("EMERALDS_OBS_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      std::string base = std::string(dir) + "/fig11_contended";
      std::FILE* csv = std::fopen((base + ".trace.csv").c_str(), "w");
      if (csv != nullptr) {
        kernel.trace().ExportCsv(csv);
        std::fclose(csv);
      }
      std::FILE* pf = std::fopen((base + ".perfetto.json").c_str(), "w");
      if (pf != nullptr) {
        obs::ExportPerfettoJson(kernel, pf);
        std::fclose(pf);
      }
      obs::ObsRunInfo info;
      info.label = "fig11_contended";
      info.scheduler = "FP";
      info.run_duration = Microseconds(12500);
      obs::WriteObsRunReportFile(base + ".run.json", info, kernel, ids);
      std::printf("[obs] wrote %s.{trace.csv,perfetto.json,run.json}\n", base.c_str());
    }
  }
  return kernel.stats().sem_path_time.micros_f();
}

void RunSweep(const char* label, SchedulerSpec spec) {
  std::printf("%s queue: semaphore pair overhead (us) vs queue length\n", label);
  std::printf("%4s %10s %10s %10s\n", "n", "standard", "new", "saving");
  double std15 = 0.0;
  double new15 = 0.0;
  for (int n = 3; n <= 30; n += 3) {
    double standard = MeasurePairOverheadUs(spec, SemMode::kStandard, n);
    double cse = MeasurePairOverheadUs(spec, SemMode::kCse, n);
    std::printf("%4d %10.2f %10.2f %9.1f%%\n", n, standard, cse,
                100.0 * (standard - cse) / standard);
    if (n == 15) {
      std15 = standard;
      new15 = cse;
    }
  }
  if (std15 > 0.0) {
    std::printf("at queue length 15: saving %.1f us (%.0f%%)\n", std15 - new15,
                100.0 * (std15 - new15) / std15);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  RunSweep("DP (EDF)", SchedulerSpec::Edf());
  std::printf("paper anchors (DP): standard slope = 2x new slope; ~11 us (28%%) saved at 15\n\n");
  RunSweep("FP (RM)", SchedulerSpec::Rm());
  std::printf("paper anchors (FP): new scheme constant (29.4 us in the paper's accounting);\n");
  std::printf("standard linear; ~10.4 us (26%%) saved at queue length 15\n");
  if (std::getenv("EMERALDS_OBS_DIR") != nullptr) {
    MeasurePairOverheadUs(SchedulerSpec::Rm(), SemMode::kCse, 15, /*with_obs=*/true);
  }
  return 0;
}
