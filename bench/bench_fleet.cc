// The fleet benchmark behind BENCH_fleet.json.
//
// Runs the standard fleet configuration (64 nodes, 100 ms of virtual time
// each, hierarchical timer wheel) across the host thread pool in three
// configurations: everything off, telemetry-only, and telemetry + the
// streaming timeseries / alert plane. All digests must be bit-identical
// (observation that perturbs the run would poison every baseline after
// it); each configuration is timed best-of-3 and the wall-rate pairs price
// telemetry overhead (informational) and streaming overhead (the ratio is
// gated by bench_compare as a gross-regression tripwire — a ratio is
// host-speed-independent, but short parallel runs still jitter).
// Then the timer-queue microbenchmark at 1k / 10k / 100k pending timers,
// and one emeralds.fleet.run/1 report. With $EMERALDS_FLEET_ARTIFACTS set,
// anomalous nodes additionally drop black-box bundles there; with
// $EMERALDS_OPENMETRICS set, the validated OpenMetrics text exposition of
// the final run is written there. CI (the fleet_smoke label) validates the
// report with bench_json_check and gates it against the committed
// BENCH_fleet.json baseline with bench_compare: the deterministic aggregate
// rates are held to 3% and the wheel must stay >= 5x the reference sorted
// list at 10k pending. Wall-clock throughput is reported but never gated.
//
// Output: $EMERALDS_BENCH_JSON (default BENCH_fleet.json in the working
// directory). Exit status is nonzero when a node fails its oracles or the
// speedup bar is missed, so the bench is its own first gate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_timers.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_report.h"
#include "src/fleet/openmetrics.h"

namespace emeralds {
namespace {

int Run() {
  fleet::FleetOptions opt;
  opt.instances = 64;
  opt.workers = 0;  // one per host core
  opt.seed = 1;
  opt.run_duration = Milliseconds(100);
  opt.slice = Milliseconds(5);
  opt.timer_queue = TimerQueueImpl::kWheel;

  std::printf("fleet: %d nodes x %lld ms, timer queue = %s\n", opt.instances,
              static_cast<long long>(opt.run_duration.millis()),
              fleet::TimerQueueImplName(opt.timer_queue));

  // Three configurations, most instrumented last: (A) everything off prices
  // raw simulation, (B) telemetry-only prices snapshot collection, (C)
  // telemetry plus the streaming timeseries/alert plane is the run the
  // report describes. The A==B==C digest equality is a hard gate, not a
  // report note — observation that perturbs the run would poison every
  // baseline after it. Each configuration runs kReps times and the overhead
  // ratios use the best wall rate per side: a short parallel run's wall
  // clock is dominated by scheduler/frequency noise, and best-of-N is the
  // standard way to price the code instead of the host's mood. Repeat runs
  // must also agree on the digest (free determinism coverage).
  constexpr int kReps = 3;
  bool digests_stable = true;
  auto measure = [&digests_stable](const fleet::FleetOptions& o, double* best_rate) {
    fleet::FleetResult last;
    for (int i = 0; i < kReps; ++i) {
      fleet::FleetResult r = fleet::RunFleet(o);
      if (i > 0 && r.fleet_digest != last.fleet_digest) {
        digests_stable = false;
      }
      if (r.events_per_wall_sec > *best_rate) {
        *best_rate = r.events_per_wall_sec;
      }
      last = std::move(r);
    }
    return last;
  };

  fleet::FleetOptions off = opt;
  off.telemetry = false;
  off.timeseries = false;
  off.alerts = false;
  double control_rate = 0.0;
  fleet::FleetResult control = measure(off, &control_rate);

  fleet::FleetOptions telemetry_only = opt;
  telemetry_only.timeseries = false;
  telemetry_only.alerts = false;
  double midpoint_rate = 0.0;
  fleet::FleetResult midpoint = measure(telemetry_only, &midpoint_rate);

  if (const char* artifacts = std::getenv("EMERALDS_FLEET_ARTIFACTS")) {
    opt.artifacts_dir = artifacts;
  }
  double result_rate = 0.0;
  fleet::FleetResult result = measure(opt, &result_rate);
  std::printf("fleet: %llu events in %.3f s wall (%.0f events/s wall, %.0f events/s virtual), "
              "%d/%d nodes failed\n",
              static_cast<unsigned long long>(result.events_total), result.wall_seconds,
              result.events_per_wall_sec, result.events_per_virtual_sec, result.nodes_failed,
              result.instances);
  std::printf("telemetry overhead: on %.0f events/s wall vs off %.0f (ratio %.3f, best of %d)\n",
              midpoint_rate, control_rate,
              control_rate > 0 ? midpoint_rate / control_rate : 0.0, kReps);
  std::printf("streaming overhead: on %.0f events/s wall vs off %.0f (ratio %.3f, best of %d)\n",
              result_rate, midpoint_rate,
              midpoint_rate > 0 ? result_rate / midpoint_rate : 0.0, kReps);
  std::printf("alerts: %llu events, %llu fired\n",
              static_cast<unsigned long long>(result.alerts.size()),
              static_cast<unsigned long long>(result.alerts_fired));
  if (control.fleet_digest != result.fleet_digest ||
      midpoint.fleet_digest != result.fleet_digest || !digests_stable) {
    std::fprintf(stderr,
                 "FAIL: observation changed the fleet digest "
                 "(off 0x%016llx, telemetry 0x%016llx, streaming 0x%016llx, repeats %s)\n",
                 static_cast<unsigned long long>(control.fleet_digest),
                 static_cast<unsigned long long>(midpoint.fleet_digest),
                 static_cast<unsigned long long>(result.fleet_digest),
                 digests_stable ? "stable" : "UNSTABLE");
    return 1;
  }
  for (const fleet::NodeResult& node : result.nodes) {
    if (!node.ok()) {
      std::fprintf(stderr, "FAIL: node (%s) %s\n", node.scheduler.c_str(),
                   node.failure.c_str());
    }
  }
  if (!result.blackbox_nodes.empty()) {
    std::printf("black boxes: %zu bundle(s) under %s\n", result.blackbox_nodes.size(),
                result.artifacts_dir.c_str());
  }

  std::vector<fleet::TimerBenchPoint> timers =
      bench::MeasureTimerQueues({1000, 10000, 100000}, 99);
  double speedup_10k = 0.0;
  for (const fleet::TimerBenchPoint& point : timers) {
    std::printf("timers @%6d pending: wheel arm/cancel/service %.0f/%.0f/%.0f ns, "
                "list %.0f/%.0f/%.0f ns, speedup %.1fx\n",
                point.pending, point.wheel_arm_ns, point.wheel_cancel_ns,
                point.wheel_service_ns, point.list_arm_ns, point.list_cancel_ns,
                point.list_service_ns, point.Speedup());
    if (point.pending == 10000) {
      speedup_10k = point.Speedup();
    }
  }

  fleet::FleetRunInfo info;
  info.label = "fleet_baseline";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  info.trace_capacity = opt.trace_capacity;
  info.telemetry_on_events_per_wall_sec = midpoint_rate;
  info.telemetry_off_events_per_wall_sec = control_rate;
  info.streaming_on_events_per_wall_sec = result_rate;
  info.streaming_off_events_per_wall_sec = midpoint_rate;
  const char* env = std::getenv("EMERALDS_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_fleet.json";
  if (!fleet::WriteFleetRunReportFile(path, info, result, timers)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  if (const char* om_path = std::getenv("EMERALDS_OPENMETRICS")) {
    std::string exposition = fleet::BuildOpenMetricsExposition(result);
    std::string om_error;
    if (!fleet::ValidateOpenMetrics(exposition, &om_error)) {
      std::fprintf(stderr, "FAIL: OpenMetrics exposition invalid: %s\n", om_error.c_str());
      return 1;
    }
    std::FILE* om = std::fopen(om_path, "w");
    if (om == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", om_path);
      return 1;
    }
    std::fwrite(exposition.data(), 1, exposition.size(), om);
    std::fclose(om);
    std::printf("wrote %s (OpenMetrics)\n", om_path);
  }

  if (result.nodes_failed > 0) {
    return 1;
  }
  if (speedup_10k < 5.0) {
    std::fprintf(stderr, "FAIL: wheel speedup at 10k pending is %.1fx (< 5x bar)\n",
                 speedup_10k);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emeralds

int main() { return emeralds::Run(); }
