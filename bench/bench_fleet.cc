// The fleet benchmark behind BENCH_fleet.json.
//
// Runs the standard fleet configuration (64 nodes, 100 ms of virtual time
// each, hierarchical timer wheel) across the host thread pool — once with
// telemetry collection off and once with it on (the digests must be
// bit-identical; the wall-rate pair prices collection overhead) — measures
// the timer-queue microbenchmark at 1k / 10k / 100k pending timers, and
// emits one emeralds.fleet.run/1 report. With $EMERALDS_FLEET_ARTIFACTS set,
// anomalous nodes additionally drop black-box bundles there. CI (the fleet_smoke label) validates the
// report with bench_json_check and gates it against the committed
// BENCH_fleet.json baseline with bench_compare: the deterministic aggregate
// rates are held to 3% and the wheel must stay >= 5x the reference sorted
// list at 10k pending. Wall-clock throughput is reported but never gated.
//
// Output: $EMERALDS_BENCH_JSON (default BENCH_fleet.json in the working
// directory). Exit status is nonzero when a node fails its oracles or the
// speedup bar is missed, so the bench is its own first gate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_timers.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_report.h"

namespace emeralds {
namespace {

int Run() {
  fleet::FleetOptions opt;
  opt.instances = 64;
  opt.workers = 0;  // one per host core
  opt.seed = 1;
  opt.run_duration = Milliseconds(100);
  opt.slice = Milliseconds(5);
  opt.timer_queue = TimerQueueImpl::kWheel;

  std::printf("fleet: %d nodes x %lld ms, timer queue = %s\n", opt.instances,
              static_cast<long long>(opt.run_duration.millis()),
              fleet::TimerQueueImplName(opt.timer_queue));

  // Telemetry-off control run first: its wall rate prices the host-side cost
  // of collection, and its digest proves collection never touches the
  // simulated outcome. That equality is a hard gate, not a report note —
  // telemetry that perturbs the run would poison every baseline after it.
  fleet::FleetOptions off = opt;
  off.telemetry = false;
  fleet::FleetResult control = fleet::RunFleet(off);

  if (const char* artifacts = std::getenv("EMERALDS_FLEET_ARTIFACTS")) {
    opt.artifacts_dir = artifacts;
  }
  fleet::FleetResult result = fleet::RunFleet(opt);
  std::printf("fleet: %llu events in %.3f s wall (%.0f events/s wall, %.0f events/s virtual), "
              "%d/%d nodes failed\n",
              static_cast<unsigned long long>(result.events_total), result.wall_seconds,
              result.events_per_wall_sec, result.events_per_virtual_sec, result.nodes_failed,
              result.instances);
  std::printf("telemetry overhead: on %.0f events/s wall vs off %.0f (ratio %.3f)\n",
              result.events_per_wall_sec, control.events_per_wall_sec,
              control.events_per_wall_sec > 0
                  ? result.events_per_wall_sec / control.events_per_wall_sec
                  : 0.0);
  if (control.fleet_digest != result.fleet_digest) {
    std::fprintf(stderr,
                 "FAIL: telemetry collection changed the fleet digest "
                 "(off 0x%016llx vs on 0x%016llx)\n",
                 static_cast<unsigned long long>(control.fleet_digest),
                 static_cast<unsigned long long>(result.fleet_digest));
    return 1;
  }
  for (const fleet::NodeResult& node : result.nodes) {
    if (!node.ok()) {
      std::fprintf(stderr, "FAIL: node (%s) %s\n", node.scheduler.c_str(),
                   node.failure.c_str());
    }
  }
  if (!result.blackbox_nodes.empty()) {
    std::printf("black boxes: %zu bundle(s) under %s\n", result.blackbox_nodes.size(),
                result.artifacts_dir.c_str());
  }

  std::vector<fleet::TimerBenchPoint> timers =
      bench::MeasureTimerQueues({1000, 10000, 100000}, 99);
  double speedup_10k = 0.0;
  for (const fleet::TimerBenchPoint& point : timers) {
    std::printf("timers @%6d pending: wheel arm/cancel/service %.0f/%.0f/%.0f ns, "
                "list %.0f/%.0f/%.0f ns, speedup %.1fx\n",
                point.pending, point.wheel_arm_ns, point.wheel_cancel_ns,
                point.wheel_service_ns, point.list_arm_ns, point.list_cancel_ns,
                point.list_service_ns, point.Speedup());
    if (point.pending == 10000) {
      speedup_10k = point.Speedup();
    }
  }

  fleet::FleetRunInfo info;
  info.label = "fleet_baseline";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  info.trace_capacity = opt.trace_capacity;
  info.telemetry_on_events_per_wall_sec = result.events_per_wall_sec;
  info.telemetry_off_events_per_wall_sec = control.events_per_wall_sec;
  const char* env = std::getenv("EMERALDS_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_fleet.json";
  if (!fleet::WriteFleetRunReportFile(path, info, result, timers)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  if (result.nodes_failed > 0) {
    return 1;
  }
  if (speedup_10k < 5.0) {
    std::fprintf(stderr, "FAIL: wheel speedup at 10k pending is %.1fx (< 5x bar)\n",
                 speedup_10k);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emeralds

int main() { return emeralds::Run(); }
