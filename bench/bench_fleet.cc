// The fleet benchmark behind BENCH_fleet.json.
//
// Runs the standard fleet configuration (64 nodes, 100 ms of virtual time
// each, hierarchical timer wheel) across the host thread pool, measures the
// timer-queue microbenchmark at 1k / 10k / 100k pending timers, and emits
// one emeralds.fleet.run/1 report. CI (the fleet_smoke label) validates the
// report with bench_json_check and gates it against the committed
// BENCH_fleet.json baseline with bench_compare: the deterministic aggregate
// rates are held to 3% and the wheel must stay >= 5x the reference sorted
// list at 10k pending. Wall-clock throughput is reported but never gated.
//
// Output: $EMERALDS_BENCH_JSON (default BENCH_fleet.json in the working
// directory). Exit status is nonzero when a node fails its oracles or the
// speedup bar is missed, so the bench is its own first gate.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_timers.h"
#include "src/fleet/fleet.h"
#include "src/fleet/fleet_report.h"

namespace emeralds {
namespace {

int Run() {
  fleet::FleetOptions opt;
  opt.instances = 64;
  opt.workers = 0;  // one per host core
  opt.seed = 1;
  opt.run_duration = Milliseconds(100);
  opt.slice = Milliseconds(5);
  opt.timer_queue = TimerQueueImpl::kWheel;

  std::printf("fleet: %d nodes x %lld ms, timer queue = %s\n", opt.instances,
              static_cast<long long>(opt.run_duration.millis()),
              fleet::TimerQueueImplName(opt.timer_queue));
  fleet::FleetResult result = fleet::RunFleet(opt);
  std::printf("fleet: %llu events in %.3f s wall (%.0f events/s wall, %.0f events/s virtual), "
              "%d/%d nodes failed\n",
              static_cast<unsigned long long>(result.events_total), result.wall_seconds,
              result.events_per_wall_sec, result.events_per_virtual_sec, result.nodes_failed,
              result.instances);
  for (const fleet::NodeResult& node : result.nodes) {
    if (!node.ok()) {
      std::fprintf(stderr, "FAIL: node (%s) %s\n", node.scheduler.c_str(),
                   node.failure.c_str());
    }
  }

  std::vector<fleet::TimerBenchPoint> timers =
      bench::MeasureTimerQueues({1000, 10000, 100000}, 99);
  double speedup_10k = 0.0;
  for (const fleet::TimerBenchPoint& point : timers) {
    std::printf("timers @%6d pending: wheel arm/cancel/service %.0f/%.0f/%.0f ns, "
                "list %.0f/%.0f/%.0f ns, speedup %.1fx\n",
                point.pending, point.wheel_arm_ns, point.wheel_cancel_ns,
                point.wheel_service_ns, point.list_arm_ns, point.list_cancel_ns,
                point.list_service_ns, point.Speedup());
    if (point.pending == 10000) {
      speedup_10k = point.Speedup();
    }
  }

  fleet::FleetRunInfo info;
  info.label = "fleet_baseline";
  info.run_duration = opt.run_duration;
  info.slice = opt.slice;
  const char* env = std::getenv("EMERALDS_BENCH_JSON");
  std::string path = env != nullptr ? env : "BENCH_fleet.json";
  if (!fleet::WriteFleetRunReportFile(path, info, result, timers)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  if (result.nodes_failed > 0) {
    return 1;
  }
  if (speedup_10k < 5.0) {
    std::fprintf(stderr, "FAIL: wheel speedup at 10k pending is %.1fx (< 5x bar)\n",
                 speedup_10k);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emeralds

int main() { return emeralds::Run(); }
