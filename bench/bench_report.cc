#include "bench/bench_report.h"

#include <cstdio>
#include <cstdlib>

namespace emeralds {
namespace {

void AppendStats(std::string* out, const char* indent, const CsdSearchStats& stats) {
  *out += "{\n";
  auto field = [&](const char* name, int64_t v, bool last) {
    *out += indent;
    *out += "  \"";
    *out += name;
    *out += "\": ";
    JsonAppendInt(out, v);
    *out += last ? "\n" : ",\n";
  };
  field("full_evals", stats.full_evals, false);
  field("cache_hits", stats.cache_hits, false);
  field("pruned", stats.pruned, false);
  field("considered", stats.considered, false);
  field("bound_evals", stats.bound_evals, true);
  *out += indent;
  *out += "}";
}

}  // namespace

bool WriteBenchReport(const BenchReport& report, const std::string& path) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"emeralds.bench.breakdown/1\",\n";
  out += "  \"figure\": ";
  JsonAppendEscaped(&out, report.figure);
  out += ",\n  \"divide\": ";
  JsonAppendInt(&out, report.divide);
  out += ",\n  \"workloads_per_point\": ";
  JsonAppendInt(&out, report.workloads_per_point);
  out += ",\n  \"points\": [";
  for (size_t i = 0; i < report.points.size(); ++i) {
    const BenchPoint& p = report.points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n      \"n\": ";
    JsonAppendInt(&out, p.n);
    out += ",\n      \"wall_seconds\": ";
    JsonAppendNumber(&out, p.wall_seconds);
    out += ",\n      \"workloads_per_sec\": ";
    JsonAppendNumber(&out, p.workloads_per_sec);
    out += ",\n      \"avg_breakdown_pct\": {";
    for (size_t k = 0; k < p.avg_breakdown_pct.size(); ++k) {
      out += k == 0 ? "" : ", ";
      JsonAppendEscaped(&out, p.avg_breakdown_pct[k].first);
      out += ": ";
      JsonAppendNumber(&out, p.avg_breakdown_pct[k].second);
    }
    out += "},\n      \"evals\": ";
    AppendStats(&out, "      ", p.evals);
    out += ",\n      \"reference_sample\": ";
    JsonAppendInt(&out, p.reference_sample);
    out += ",\n      \"reference_evals\": ";
    AppendStats(&out, "      ", p.reference_evals);
    out += ",\n      \"reference_wall_seconds\": ";
    JsonAppendNumber(&out, p.reference_wall_seconds);
    out += ",\n      \"eval_reduction\": ";
    JsonAppendNumber(&out, p.eval_reduction);
    out += ",\n      \"reference_mismatches\": ";
    JsonAppendInt(&out, p.reference_mismatches);
    out += "\n    }";
  }
  out += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool ok = std::fclose(f) == 0 && written == out.size();
  return ok;
}

std::string BenchJsonPath(const char* fallback) {
  const char* env = std::getenv("EMERALDS_BENCH_JSON");
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

}  // namespace emeralds
