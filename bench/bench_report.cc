#include "bench/bench_report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emeralds {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {  // JSON has no NaN/Inf
    *out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  *out += buf;
}

void AppendInt(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  *out += buf;
}

void AppendStats(std::string* out, const char* indent, const CsdSearchStats& stats) {
  *out += "{\n";
  auto field = [&](const char* name, int64_t v, bool last) {
    *out += indent;
    *out += "  \"";
    *out += name;
    *out += "\": ";
    AppendInt(out, v);
    *out += last ? "\n" : ",\n";
  };
  field("full_evals", stats.full_evals, false);
  field("cache_hits", stats.cache_hits, false);
  field("pruned", stats.pruned, false);
  field("considered", stats.considered, false);
  field("bound_evals", stats.bound_evals, true);
  *out += indent;
  *out += "}";
}

}  // namespace

bool WriteBenchReport(const BenchReport& report, const std::string& path) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"emeralds.bench.breakdown/1\",\n";
  out += "  \"figure\": ";
  AppendEscaped(&out, report.figure);
  out += ",\n  \"divide\": ";
  AppendInt(&out, report.divide);
  out += ",\n  \"workloads_per_point\": ";
  AppendInt(&out, report.workloads_per_point);
  out += ",\n  \"points\": [";
  for (size_t i = 0; i < report.points.size(); ++i) {
    const BenchPoint& p = report.points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n      \"n\": ";
    AppendInt(&out, p.n);
    out += ",\n      \"wall_seconds\": ";
    AppendNumber(&out, p.wall_seconds);
    out += ",\n      \"workloads_per_sec\": ";
    AppendNumber(&out, p.workloads_per_sec);
    out += ",\n      \"avg_breakdown_pct\": {";
    for (size_t k = 0; k < p.avg_breakdown_pct.size(); ++k) {
      out += k == 0 ? "" : ", ";
      AppendEscaped(&out, p.avg_breakdown_pct[k].first);
      out += ": ";
      AppendNumber(&out, p.avg_breakdown_pct[k].second);
    }
    out += "},\n      \"evals\": ";
    AppendStats(&out, "      ", p.evals);
    out += ",\n      \"reference_sample\": ";
    AppendInt(&out, p.reference_sample);
    out += ",\n      \"reference_evals\": ";
    AppendStats(&out, "      ", p.reference_evals);
    out += ",\n      \"reference_wall_seconds\": ";
    AppendNumber(&out, p.reference_wall_seconds);
    out += ",\n      \"eval_reduction\": ";
    AppendNumber(&out, p.eval_reduction);
    out += ",\n      \"reference_mismatches\": ";
    AppendInt(&out, p.reference_mismatches);
    out += "\n    }";
  }
  out += "\n  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool ok = std::fclose(f) == 0 && written == out.size();
  return ok;
}

std::string BenchJsonPath(const char* fallback) {
  const char* env = std::getenv("EMERALDS_BENCH_JSON");
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* what) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s at offset %zu", what, pos_);
    *error_ = buf;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          break;
        }
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return Fail("invalid \\u escape");
              }
            }
            pos_ += 4;
            out->push_back('?');  // validated, not decoded: the bench schema is ASCII
            break;
          }
          default:
            return Fail("invalid escape");
        }
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      out->type = JsonValue::Type::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated object");
        }
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        SkipSpace();
        JsonValue member;
        if (!ParseValue(&member, depth + 1)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(member));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated object");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out->type = JsonValue::Type::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        JsonValue element;
        if (!ParseValue(&element, depth + 1)) {
          return false;
        }
        out->array.push_back(std::move(element));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated array");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      out->type = JsonValue::Type::kNumber;
      size_t start = pos_;
      if (text_[pos_] == '-') {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '.') {
        ++pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
        return Fail("invalid number");
      }
      out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
      return true;
    }
    return Fail("unexpected character");
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  std::string unused;
  return JsonParser(text, error != nullptr ? error : &unused).Parse(out);
}

}  // namespace emeralds
