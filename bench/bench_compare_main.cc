// CLI for the perf-regression gate (see bench_compare.h):
//
//   bench_compare <baseline.json> <candidate.json> [--tolerance=0.03]
//                 [--abs-slack-ns=20000]
//
// Exit status: 0 within tolerance, 1 regression (or the candidate violates
// its own invariants), 2 usage / I/O / parse failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_compare.h"

int main(int argc, char** argv) {
  using emeralds::bench::CompareOptions;
  using emeralds::bench::CompareReportFiles;
  using emeralds::bench::CompareResult;

  const char* baseline = nullptr;
  const char* candidate = nullptr;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      options.rel_tolerance = std::atof(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--abs-slack-ns=", 15) == 0) {
      options.abs_slack_ns = std::atoll(argv[i] + 15);
    } else if (baseline == nullptr) {
      baseline = argv[i];
    } else if (candidate == nullptr) {
      candidate = argv[i];
    } else {
      baseline = nullptr;
      break;
    }
  }
  if (baseline == nullptr || candidate == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <candidate.json> "
                 "[--tolerance=0.03] [--abs-slack-ns=20000]\n");
    return 2;
  }

  CompareResult result = CompareReportFiles(baseline, candidate, options);
  for (const std::string& note : result.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const std::string& failure : result.failures) {
    std::fprintf(stderr, "FAIL: %s\n", failure.c_str());
  }
  // I/O and parse problems surface as failures mentioning the path; map the
  // "could not even compare" cases to exit 2.
  if (!result.ok) {
    for (const std::string& failure : result.failures) {
      if (failure.find("cannot open") != std::string::npos ||
          failure.find("does not parse") != std::string::npos) {
        return 2;
      }
    }
    std::fprintf(stderr, "bench_compare: %s regressed against %s\n", candidate, baseline);
    return 1;
  }
  std::printf("OK: %s within tolerance of %s\n", candidate, baseline);
  return 0;
}
