// Validation: breakdown utilization measured by *running the kernel* versus
// the analytic tests behind Figures 3-5.
//
// For sample workloads, execution times are scaled and the workload is run
// for 1.5 simulated seconds on the calibrated kernel; the simulated
// breakdown is the largest scale with zero deadline misses (bisection). The
// analytic breakdown uses worst-case per-period overheads and a sufficient
// test, so simulation should land at or above it, and close — this ties the
// evaluation figures to the executable kernel rather than to formulas alone.

#include <cstdio>
#include <vector>

#include "src/analysis/breakdown.h"
#include "src/base/rng.h"
#include "src/core/taskset_runner.h"
#include "src/hal/hardware.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

bool SimulationFeasible(const TaskSet& set, PolicySpec policy, const std::vector<int>& partition,
                        double scale) {
  Hardware hw;
  KernelConfig config;
  switch (policy.kind) {
    case PolicySpec::Kind::kEdf:
      config.scheduler = SchedulerSpec::Edf();
      break;
    case PolicySpec::Kind::kRm:
      config.scheduler = SchedulerSpec::Rm();
      break;
    case PolicySpec::Kind::kRmHeap:
      config.scheduler = SchedulerSpec::RmHeap();
      break;
    case PolicySpec::Kind::kCsd:
      config.scheduler = SchedulerSpec::Csd(policy.csd_queues);
      break;
  }
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 0;
  Kernel kernel(hw, config);
  std::vector<int> bands =
      policy.kind == PolicySpec::Kind::kCsd ? BandsFromPartition(partition) : std::vector<int>{};
  std::vector<ThreadId> ids = SpawnTaskSet(kernel, set.ScaledBy(scale), bands);
  kernel.Start();
  kernel.RunUntil(Instant() + Milliseconds(1500));
  return CollectRunStats(kernel, ids).deadline_misses == 0;
}

double SimulatedBreakdown(const TaskSet& set, PolicySpec policy,
                          const std::vector<int>& partition) {
  double raw = set.Utilization();
  double lo = 0.0;
  // Cap at utilization 1.0: a finite horizon cannot certify overloads (a
  // 1-2% overload builds backlog too slowly to miss within 1.5 s).
  double hi = 1.0 / raw;
  for (int iter = 0; iter < 11; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (SimulationFeasible(set, policy, partition, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo * raw;
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  CostModel cost = CostModel::MC68040_25MHz();
  std::printf("Simulated vs analytic breakdown utilization (%%), 1.5 s horizon\n");
  std::printf("(simulation sees average-case overheads, so sim >= analytic expected)\n\n");
  std::printf("%4s %4s | %9s %9s | %9s %9s | %9s %9s\n", "wl", "n", "EDF ana", "EDF sim",
              "RM ana", "RM sim", "CSD2 ana", "CSD2 sim");
  Rng root(1234);
  for (int w = 0; w < 4; ++w) {
    int n = w < 2 ? 10 : 25;
    Rng rng = root.Fork(w);
    TaskSet set = GenerateWorkload(rng, n).PeriodsDividedBy(2);
    double results[6];
    PolicySpec policies[3] = {PolicySpec::Edf(), PolicySpec::Rm(), PolicySpec::Csd(2)};
    for (int p = 0; p < 3; ++p) {
      BreakdownResult analytic = ComputeBreakdown(set, policies[p], cost);
      results[2 * p] = analytic.utilization;
      results[2 * p + 1] = SimulatedBreakdown(set, policies[p], analytic.partition);
    }
    std::printf("%4d %4d | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | %8.1f%% %8.1f%%\n", w, n,
                100 * results[0], 100 * results[1], 100 * results[2], 100 * results[3],
                100 * results[4], 100 * results[5]);
  }
  std::printf("\nexpected shape: simulated and analytic breakdowns within a few points of\n");
  std::printf("each other; sim usually above (analysis assumes worst-case queue scans)\n");
  std::printf("but occasionally a hair below for RM (the simulator also charges the\n");
  std::printf("interrupt and context-switch constants the paper's t formula omits)\n");
  return 0;
}
