// Ablation (Section 6.2's second optimization): the O(1) place-holder
// position swap for FP-queue priority inheritance versus the standard O(n)
// sorted re-insert.
//
// The scenario is the contended FP pair of Figure 6, repeated once per 50 ms
// with a sweep of blocked filler tasks lengthening the FP queue. Reported:
// pure priority-inheritance virtual time per contended pair, plus the swap /
// re-insert operation counts.
//
// Expected shape: the swap path is flat in queue length; the re-insert path
// grows linearly (two O(n) steps per pair).

#include <cstdio>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"

namespace emeralds {
namespace {

struct PiCost {
  double pi_us;
  uint64_t swaps;
  uint64_t reinserts;
};

PiCost MeasurePi(SemMode mode, int queue_length) {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Rm();
  config.cost_model = CostModel::MC68040_25MHz();
  config.default_sem_mode = mode;
  config.trace_capacity = 0;
  Kernel kernel(hw, config);
  SemId sem = kernel.CreateSemaphoreWithMode("S", 1, mode).value();

  ThreadParams t2;
  t2.name = "T2";
  t2.period = Milliseconds(10);
  t2.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(1));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod(sem);
    }
  };
  kernel.CreateThread(t2);
  ThreadParams t1;
  t1.name = "T1";
  t1.period = Milliseconds(50);
  t1.body = [sem](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(8));
      co_await api.Acquire(sem);
      co_await api.Compute(Milliseconds(3));
      co_await api.Release(sem);
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(t1);
  // Fillers ranked *between* T2 and T1 (periods 11..49 ms), blocked beyond
  // the horizon — they are exactly the tasks a sorted re-insert must scan.
  for (int i = 0; i < queue_length - 2; ++i) {
    ThreadParams filler;
    filler.name = "filler";
    filler.period = Milliseconds(11 + (i % 38));
    filler.first_release = Seconds(100);
    filler.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(filler);
  }

  kernel.Start();
  // 20 contended pairs (one per 50 ms cycle).
  kernel.RunUntil(Instant() + Seconds(1));
  const KernelStats& stats = kernel.stats();
  double pairs = 20.0;
  return {stats.charged[static_cast<int>(ChargeCategory::kPi)].micros_f() / pairs,
          stats.pi_swaps, stats.pi_reinserts};
}

}  // namespace
}  // namespace emeralds

int main() {
  using namespace emeralds;
  std::printf("FP-queue priority inheritance: place-holder swap vs sorted re-insert\n");
  std::printf("(PI virtual us per contended acquire/release pair)\n\n");
  std::printf("%4s | %12s %6s | %12s %10s\n", "n", "swap-mode us", "swaps", "reinsert us",
              "reinserts");
  for (int n = 4; n <= 32; n += 4) {
    PiCost swap = MeasurePi(SemMode::kCse, n);
    PiCost reinsert = MeasurePi(SemMode::kStandard, n);
    std::printf("%4d | %12.2f %6llu | %12.2f %10llu\n", n, swap.pi_us,
                static_cast<unsigned long long>(swap.swaps), reinsert.pi_us,
                static_cast<unsigned long long>(reinsert.reinserts));
  }
  std::printf("\nexpected shape: swap-mode flat (O(1) per PI step); re-insert linear in n\n");
  return 0;
}
