// Figure 3: average breakdown utilizations for CSD, EDF, and RM on base
// workloads (periods 5 ms - 999 ms).
//
// Expected shape (paper): with long periods run-time overheads are low, so
// EDF runs near its theoretical limit, yet CSD still edges it out at larger
// n; RM trails throughout; CSD-3 clearly improves on CSD-2 at large n while
// CSD-4 adds only a minimal further gain.

#include "bench/breakdown_harness.h"

int main() {
  emeralds::RunBreakdownFigure("Figure 3", /*divide=*/1);
  return 0;
}
