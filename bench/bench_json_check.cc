// Validates a BENCH_breakdown.json perf trajectory: the file must parse as
// JSON, carry the expected schema tag, and have well-formed points. Run by
// the bench_smoke CTest label after fig3_breakdown_base emits a report.

#include <cstdio>
#include <string>

#include "bench/bench_report.h"

int main(int argc, char** argv) {
  using namespace emeralds;
  if (argc != 2) {
    std::fprintf(stderr, "usage: bench_json_check <report.json>\n");
    return 2;
  }

  std::FILE* f = std::fopen(argv[1], "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", argv[1]);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  if (!JsonParse(text, &root, &error)) {
    std::fprintf(stderr, "FAIL: %s does not parse: %s\n", argv[1], error.c_str());
    return 1;
  }

  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != "emeralds.bench.breakdown/1") {
    std::fprintf(stderr, "FAIL: missing or unexpected schema tag\n");
    return 1;
  }
  const JsonValue* points = root.Find("points");
  if (points == nullptr || points->type != JsonValue::Type::kArray || points->array.empty()) {
    std::fprintf(stderr, "FAIL: missing or empty points array\n");
    return 1;
  }
  for (const JsonValue& point : points->array) {
    for (const char* key : {"n", "wall_seconds", "workloads_per_sec", "eval_reduction",
                            "reference_mismatches"}) {
      const JsonValue* v = point.Find(key);
      if (v == nullptr || v->type != JsonValue::Type::kNumber) {
        std::fprintf(stderr, "FAIL: point missing numeric \"%s\"\n", key);
        return 1;
      }
    }
    const JsonValue* evals = point.Find("evals");
    if (evals == nullptr || evals->Find("full_evals") == nullptr) {
      std::fprintf(stderr, "FAIL: point missing evals.full_evals\n");
      return 1;
    }
    const JsonValue* mism = point.Find("reference_mismatches");
    if (mism->number != 0.0) {
      std::fprintf(stderr, "FAIL: reference_mismatches = %g at n = %g\n", mism->number,
                   point.Find("n")->number);
      return 1;
    }
  }
  std::printf("OK: %s (%zu points)\n", argv[1], points->array.size());
  return 0;
}
