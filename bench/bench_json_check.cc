// Validates the JSON reports the repo's CI gates on, dispatching on the
// schema tag:
//   emeralds.bench.breakdown/1 — perf trajectory (bench_smoke label)
//   emeralds.obs.run/1         — observability run report (obs_smoke label)
//   emeralds.obs.cycles/1      — cycle-attribution ledger report
//   emeralds.obs.chains/1      — causal event-chain report (chains_smoke label)
//   emeralds.fuzz.torture/1    — torture-harness sweep report
//   emeralds.fleet.run/1       — fleet simulation report (fleet_smoke label)
//   emeralds.obs.timeseries/1  — streaming telemetry window series (also
//                                embedded in fleet.run as "timeseries")
//   emeralds.obs.blackbox/1    — black-box flight-recorder bundle report
//   emeralds.bench.smp/1       — partitioned-SMP throughput/admission report
//   emeralds.obs.postmortem/1  — deadline-miss lateness-attribution report
//                                (postmortem_smoke label; also embedded in
//                                obs.run and fleet.run as "postmortem")
// For the obs, fuzz, and fleet schemas the check is substantive, not just
// structural: invariant-violation lists must be empty, reconciliation flags
// true, every torture run ok, and the cycle ledger conserved (bucket sum ==
// elapsed, residual exactly zero) — so a kernel whose trace disagrees with
// its own counters, whose ledger leaks time, or a failing fuzz seed fails CI.

#include <cstdio>
#include <string>

#include "bench/bench_report.h"

namespace {

using emeralds::JsonValue;

bool RequireNumbers(const JsonValue& obj, const char* section,
                    std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    const JsonValue* v = obj.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kNumber) {
      std::fprintf(stderr, "FAIL: %s missing numeric \"%s\"\n", section, key);
      return false;
    }
  }
  return true;
}

// Substantive validation of a "cycles" section (embedded in obs.run or the
// standalone obs.cycles document): conservation must be asserted AND the
// integers must back it up (residual exactly zero, ledger total == elapsed).
bool CheckCyclesSection(const JsonValue& cycles, const char* ctx) {
  if (!RequireNumbers(cycles, ctx,
                      {"epoch_ns", "elapsed_ns", "ledger_total_ns", "residual_ns",
                       "clock_unattributed_ns", "headroom_low_events"})) {
    return false;
  }
  const JsonValue* buckets = cycles.Find("buckets_ns");
  if (buckets == nullptr || buckets->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: %s missing buckets_ns object\n", ctx);
    return false;
  }
  const JsonValue* bands = cycles.Find("sched_bands");
  if (bands == nullptr || bands->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing sched_bands array\n", ctx);
    return false;
  }
  for (const char* key : {"conserved", "clock_conserved"}) {
    const JsonValue* v = cycles.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: %s missing bool \"%s\"\n", ctx, key);
      return false;
    }
    if (!v->boolean) {
      std::fprintf(stderr, "FAIL: %s %s is false\n", ctx, key);
      return false;
    }
  }
  if (cycles.Find("residual_ns")->number != 0.0 ||
      cycles.Find("clock_unattributed_ns")->number != 0.0) {
    std::fprintf(stderr, "FAIL: %s residual_ns=%g clock_unattributed_ns=%g (must be 0)\n", ctx,
                 cycles.Find("residual_ns")->number,
                 cycles.Find("clock_unattributed_ns")->number);
    return false;
  }
  double sum = 0.0;
  for (const auto& kv : buckets->object) {
    if (kv.second.type != JsonValue::Type::kNumber) {
      std::fprintf(stderr, "FAIL: %s bucket \"%s\" not numeric\n", ctx, kv.first.c_str());
      return false;
    }
    sum += kv.second.number;
  }
  if (sum != cycles.Find("elapsed_ns")->number) {
    std::fprintf(stderr, "FAIL: %s bucket sum %g != elapsed %g\n", ctx, sum,
                 cycles.Find("elapsed_ns")->number);
    return false;
  }
  return true;
}

bool RequireHistogram(const JsonValue& obj, const char* ctx, const char* key) {
  const JsonValue* h = obj.Find(key);
  if (h == nullptr || h->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: %s missing histogram \"%s\"\n", ctx, key);
    return false;
  }
  return RequireNumbers(*h, ctx, {"count", "min_us", "max_us", "mean_us", "p99_us", "total_us"});
}

// Substantive validation of a "chains" section (embedded in obs.run or the
// standalone obs.chains document). The violations list must be empty — a
// token-conservation breach (orphan consume in a complete window, origin
// reuse, malformed token) fails the check outright. Orphan hops are allowed
// only when the window is incomplete (ring truncation / epoch reset).
bool CheckChainsSection(const JsonValue& chains, const char* ctx) {
  if (!RequireNumbers(chains, ctx,
                      {"chain_emits", "chain_consumes", "origins_minted", "orphan_hops",
                       "unconsumed_emits"})) {
    return false;
  }
  const JsonValue* complete = chains.Find("complete_window");
  if (complete == nullptr || complete->type != JsonValue::Type::kBool) {
    std::fprintf(stderr, "FAIL: %s missing bool \"complete_window\"\n", ctx);
    return false;
  }
  const JsonValue* violations = chains.Find("violations");
  if (violations == nullptr || violations->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing violations array\n", ctx);
    return false;
  }
  if (!violations->array.empty()) {
    const JsonValue* kind = violations->array[0].Find("kind");
    std::fprintf(stderr, "FAIL: %s has %zu chain violation(s), first kind: %s\n", ctx,
                 violations->array.size(),
                 kind != nullptr ? kind->string.c_str() : "?");
    return false;
  }
  if (complete->boolean && chains.Find("orphan_hops")->number != 0.0) {
    std::fprintf(stderr, "FAIL: %s complete window but orphan_hops = %g\n", ctx,
                 chains.Find("orphan_hops")->number);
    return false;
  }
  const JsonValue* list = chains.Find("chains");
  if (list == nullptr || list->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing chains array\n", ctx);
    return false;
  }
  for (const JsonValue& chain : list->array) {
    const JsonValue* name = chain.Find("name");
    const JsonValue* resolved = chain.Find("resolved");
    if (name == nullptr || name->type != JsonValue::Type::kString || resolved == nullptr ||
        resolved->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: %s chain missing name/resolved\n", ctx);
      return false;
    }
    if (!RequireNumbers(chain, "chain", {"deadline_us", "completed", "incomplete", "overruns"}) ||
        !RequireHistogram(chain, name->string.c_str(), "e2e")) {
      return false;
    }
    const JsonValue* hops = chain.Find("hops");
    if (hops == nullptr || hops->type != JsonValue::Type::kArray) {
      std::fprintf(stderr, "FAIL: chain \"%s\" missing hops array\n", name->string.c_str());
      return false;
    }
    for (const JsonValue& hop : hops->array) {
      const JsonValue* kind = hop.Find("endpoint_kind");
      if (kind == nullptr || kind->type != JsonValue::Type::kString ||
          !RequireNumbers(hop, "hop", {"endpoint_id", "consumer_tid"}) ||
          !RequireHistogram(hop, "hop", "queue") || !RequireHistogram(hop, "hop", "exec")) {
        return false;
      }
    }
  }
  return true;
}

int CheckObsChains(const char* path, const JsonValue& root) {
  const JsonValue* report = root.Find("report");
  if (report == nullptr || report->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: missing \"report\" object\n");
    return 1;
  }
  if (!CheckChainsSection(*report, "report")) {
    return 1;
  }
  std::printf("OK: %s (chains report, %zu chain(s), 0 violations)\n", path,
              report->Find("chains")->array.size());
  return 0;
}

int CheckObsCycles(const char* path, const JsonValue& root) {
  const JsonValue* cycles = root.Find("cycles");
  if (cycles == nullptr || cycles->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: missing \"cycles\" object\n");
    return 1;
  }
  if (!CheckCyclesSection(*cycles, "cycles")) {
    return 1;
  }
  const JsonValue* tasks = root.Find("tasks");
  if (tasks == nullptr || tasks->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: missing tasks array\n");
    return 1;
  }
  for (const JsonValue& task : tasks->array) {
    if (!RequireNumbers(task, "task",
                        {"id", "jobs_completed", "user_ns", "overhead_ns", "cost_ewma_ns",
                         "headroom_min_ns", "headroom_low_events"})) {
      return 1;
    }
  }
  std::printf("OK: %s (cycles report, %zu task rows, conserved)\n", path, tasks->array.size());
  return 0;
}

// The deadline-miss postmortem section (schema emeralds.obs.postmortem/1
// standalone, or embedded as "postmortem"). Substantive: conservation of
// lateness is an invariant, so any ledger that failed to telescope fails the
// check, and a complete window must leave nothing unattributed and no miss
// unmatched. `forensic` relaxes the substantive gates (black-box bundles
// record sick runs on purpose) but keeps the shape checks.
bool CheckPostmortemSection(const JsonValue& pm, const char* ctx, bool forensic = false) {
  if (!RequireNumbers(pm, ctx,
                      {"misses_analyzed", "records_dropped", "incomplete_misses",
                       "unmatched_misses", "deadline_unknown", "conservation_failures"})) {
    return false;
  }
  const JsonValue* truncated = pm.Find("window_truncated");
  if (truncated == nullptr || truncated->type != JsonValue::Type::kBool) {
    std::fprintf(stderr, "FAIL: %s missing bool window_truncated\n", ctx);
    return false;
  }
  const JsonValue* blame = pm.Find("blame");
  if (blame == nullptr ||
      !RequireNumbers(*blame, "postmortem blame",
                      {"misses_analyzed", "conservation_failures", "tardiness_ns",
                       "unattributed_ns"})) {
    return false;
  }
  for (const char* key : {"victims", "preemptors", "locks"}) {
    const JsonValue* table = blame->Find(key);
    if (table == nullptr || table->type != JsonValue::Type::kArray) {
      std::fprintf(stderr, "FAIL: %s blame missing \"%s\" table\n", ctx, key);
      return false;
    }
  }
  const JsonValue* misses = pm.Find("misses");
  if (misses == nullptr || misses->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing misses array\n", ctx);
    return false;
  }
  for (const JsonValue& m : misses->array) {
    if (!RequireNumbers(m, "postmortem miss",
                        {"thread", "job", "response_ns", "tardiness_ns"})) {
      return false;
    }
    const JsonValue* conserved = m.Find("conserved");
    const JsonValue* ledger = m.Find("ledger");
    if (conserved == nullptr || conserved->type != JsonValue::Type::kBool ||
        ledger == nullptr || ledger->type != JsonValue::Type::kObject) {
      std::fprintf(stderr, "FAIL: %s miss missing conserved/ledger\n", ctx);
      return false;
    }
    if (!forensic && !conserved->boolean) {
      std::fprintf(stderr, "FAIL: %s miss ledger did not telescope\n", ctx);
      return false;
    }
  }
  const JsonValue* overruns = pm.Find("chain_overruns");
  if (overruns == nullptr || overruns->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing chain_overruns array\n", ctx);
    return false;
  }
  if (forensic) {
    return true;
  }
  if (pm.Find("conservation_failures")->number != 0.0) {
    std::fprintf(stderr, "FAIL: %s has %g conservation failures\n", ctx,
                 pm.Find("conservation_failures")->number);
    return false;
  }
  if (!truncated->boolean && (blame->Find("unattributed_ns")->number != 0.0 ||
                              pm.Find("unmatched_misses")->number != 0.0)) {
    std::fprintf(stderr,
                 "FAIL: %s complete window left %g ns unattributed, %g unmatched\n", ctx,
                 blame->Find("unattributed_ns")->number,
                 pm.Find("unmatched_misses")->number);
    return false;
  }
  return true;
}

int CheckObsRun(const char* path, const JsonValue& root) {
  for (const char* section : {"trace", "kernel_stats", "cycles", "analysis", "reconciliation",
                              "chains", "postmortem", "snapshots"}) {
    const JsonValue* v = root.Find(section);
    if (v == nullptr || v->type != JsonValue::Type::kObject) {
      std::fprintf(stderr, "FAIL: missing \"%s\" object\n", section);
      return 1;
    }
  }
  const JsonValue* tasks = root.Find("tasks");
  if (tasks == nullptr || tasks->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: missing tasks array\n");
    return 1;
  }
  if (!RequireNumbers(*root.Find("trace"), "trace", {"total_recorded", "retained", "dropped"}) ||
      !RequireNumbers(*root.Find("kernel_stats"), "kernel_stats",
                      {"context_switches", "jobs_completed", "deadline_misses", "sem_acquires",
                       "cse_switches_saved"}) ||
      !RequireNumbers(*root.Find("analysis"), "analysis",
                      {"context_switches", "jobs_completed", "sem_blocks"})) {
    return 1;
  }
  if (!CheckCyclesSection(*root.Find("cycles"), "cycles")) {
    return 1;
  }
  if (!CheckChainsSection(*root.Find("chains"), "chains")) {
    return 1;
  }
  if (!CheckPostmortemSection(*root.Find("postmortem"), "postmortem")) {
    return 1;
  }
  const JsonValue* violations = root.Find("analysis")->Find("violations");
  if (violations == nullptr || violations->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: analysis missing violations array\n");
    return 1;
  }
  if (!violations->array.empty()) {
    std::fprintf(stderr, "FAIL: %zu trace invariant violation(s), first kind: %s\n",
                 violations->array.size(),
                 violations->array[0].Find("kind") != nullptr
                     ? violations->array[0].Find("kind")->string.c_str()
                     : "?");
    return 1;
  }
  const JsonValue& recon = *root.Find("reconciliation");
  for (const char* key : {"context_switches_match", "deadline_misses_match",
                          "jobs_completed_match", "cse_early_pi_match", "headroom_low_match",
                          "chain_events_match"}) {
    const JsonValue* v = recon.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: reconciliation missing bool \"%s\"\n", key);
      return 1;
    }
    if (!v->boolean) {
      std::fprintf(stderr, "FAIL: reconciliation %s is false\n", key);
      return 1;
    }
  }
  std::printf("OK: %s (obs run, %zu task rows, 0 violations)\n", path, tasks->array.size());
  return 0;
}

int CheckFuzzTorture(const char* path, const JsonValue& root) {
  const JsonValue* runs = root.Find("runs");
  if (runs == nullptr || runs->type != JsonValue::Type::kArray || runs->array.empty()) {
    std::fprintf(stderr, "FAIL: missing or empty runs array\n");
    return 1;
  }
  uint64_t ops = 0;
  for (const JsonValue& run : runs->array) {
    if (!RequireNumbers(run, "run", {"seed", "ops_executed", "violations", "fault_mismatches"})) {
      return 1;
    }
    const JsonValue* ok = run.Find("ok");
    if (ok == nullptr || ok->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: run missing bool \"ok\"\n");
      return 1;
    }
    if (!ok->boolean) {
      const JsonValue* repro = run.Find("repro");
      std::fprintf(stderr, "FAIL: torture seed %g failed; repro: %s\n",
                   run.Find("seed")->number,
                   repro != nullptr ? repro->string.c_str() : "?");
      return 1;
    }
    if (run.Find("violations")->number != 0.0 || run.Find("fault_mismatches")->number != 0.0) {
      std::fprintf(stderr, "FAIL: seed %g has violations/fault mismatches\n",
                   run.Find("seed")->number);
      return 1;
    }
    const JsonValue* recon = run.Find("reconciliation");
    if (recon == nullptr || recon->Find("checked") == nullptr || recon->Find("ok") == nullptr) {
      std::fprintf(stderr, "FAIL: run missing reconciliation {checked, ok}\n");
      return 1;
    }
    // Fourth oracle: the cycle ledger must be conserved on every run,
    // including truncated-ring ones where reconciliation refuses to check.
    const JsonValue* cyc = run.Find("cycles");
    const JsonValue* conserved = cyc != nullptr ? cyc->Find("conserved") : nullptr;
    if (conserved == nullptr || conserved->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: run missing cycles.conserved\n");
      return 1;
    }
    if (!conserved->boolean) {
      std::fprintf(stderr, "FAIL: seed %g cycle ledger not conserved\n",
                   run.Find("seed")->number);
      return 1;
    }
    // Fifth oracle: causal-token conservation. Every run must carry the
    // chains object and report zero conservation violations.
    const JsonValue* chains = run.Find("chains");
    if (chains == nullptr ||
        !RequireNumbers(*chains, "chains", {"violations", "orphan_hops", "completed", "origins"})) {
      std::fprintf(stderr, "FAIL: run missing chains {violations, orphan_hops, ...}\n");
      return 1;
    }
    if (chains->Find("violations")->number != 0.0) {
      std::fprintf(stderr, "FAIL: seed %g has chain-token conservation violations\n",
                   run.Find("seed")->number);
      return 1;
    }
    // Sixth oracle: conservation of lateness. Every analyzed miss's ledger
    // must telescope exactly; a single failed ledger fails the sweep.
    const JsonValue* pm = run.Find("postmortem");
    if (pm == nullptr ||
        !RequireNumbers(*pm, "postmortem",
                        {"misses_analyzed", "conservation_failures", "unattributed_ns",
                         "unmatched", "incomplete"})) {
      std::fprintf(stderr, "FAIL: run missing postmortem {misses_analyzed, ...}\n");
      return 1;
    }
    if (pm->Find("conservation_failures")->number != 0.0) {
      std::fprintf(stderr, "FAIL: seed %g has lateness-conservation failures\n",
                   run.Find("seed")->number);
      return 1;
    }
    ops += static_cast<uint64_t>(run.Find("ops_executed")->number);
  }
  const JsonValue* totals = root.Find("totals");
  if (totals == nullptr || !RequireNumbers(*totals, "totals", {"runs", "failed", "ops_executed"})) {
    return 1;
  }
  if (totals->Find("failed")->number != 0.0) {
    std::fprintf(stderr, "FAIL: totals.failed = %g\n", totals->Find("failed")->number);
    return 1;
  }
  std::printf("OK: %s (torture sweep, %zu runs, %llu ops, 0 failures)\n", path,
              runs->array.size(), static_cast<unsigned long long>(ops));
  return 0;
}

// The merged fleet telemetry section (schema emeralds.fleet.telemetry/1):
// exact-bucket percentile tables over the whole fleet. Structural plus the
// one substantive check that matters — the section must actually cover
// nodes, not be an empty shell.
bool CheckTelemetrySection(const JsonValue& telemetry, const char* ctx) {
  const JsonValue* schema = telemetry.Find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != "emeralds.fleet.telemetry/1") {
    std::fprintf(stderr, "FAIL: %s schema is not emeralds.fleet.telemetry/1\n", ctx);
    return false;
  }
  if (!RequireNumbers(telemetry, ctx,
                      {"nodes_collected", "jobs_completed", "deadline_misses",
                       "chain_overruns", "stats_snapshot_drops"})) {
    return false;
  }
  const JsonValue* core_cycles = telemetry.Find("core_cycles_us");
  if (core_cycles == nullptr || core_cycles->type != JsonValue::Type::kArray ||
      core_cycles->array.empty()) {
    std::fprintf(stderr, "FAIL: %s missing core_cycles_us array\n", ctx);
    return false;
  }
  if (telemetry.Find("nodes_collected")->number <= 0.0) {
    std::fprintf(stderr, "FAIL: %s covers no nodes\n", ctx);
    return false;
  }
  const JsonValue* headroom = telemetry.Find("headroom");
  if (headroom == nullptr ||
      !RequireNumbers(*headroom, "telemetry headroom",
                      {"min_us", "min_node", "low_events_total"})) {
    return false;
  }
  const JsonValue* trace = telemetry.Find("trace");
  if (trace == nullptr ||
      !RequireNumbers(*trace, "telemetry trace",
                      {"dropped_total", "worst_node", "worst_node_dropped"})) {
    return false;
  }
  const JsonValue* cycles = telemetry.Find("cycles");
  if (cycles == nullptr || cycles->Find("buckets_us") == nullptr ||
      cycles->Find("shares") == nullptr) {
    std::fprintf(stderr, "FAIL: %s missing cycles {buckets_us, shares}\n", ctx);
    return false;
  }
  if (!RequireHistogram(telemetry, ctx, "response")) {
    return false;
  }
  const JsonValue* chains = telemetry.Find("chains");
  if (chains == nullptr || chains->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing chains array\n", ctx);
    return false;
  }
  for (const JsonValue& chain : chains->array) {
    const JsonValue* name = chain.Find("name");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        !RequireNumbers(chain, "telemetry chain",
                        {"deadline_min_us", "deadline_max_us", "completed", "overruns",
                         "incomplete_instances"}) ||
        !RequireHistogram(chain, name->string.c_str(), "e2e")) {
      return false;
    }
    const JsonValue* hops = chain.Find("hops");
    if (hops == nullptr || hops->type != JsonValue::Type::kArray) {
      std::fprintf(stderr, "FAIL: telemetry chain \"%s\" missing hops\n",
                   name->string.c_str());
      return false;
    }
    for (const JsonValue& hop : hops->array) {
      if (!RequireHistogram(hop, "telemetry hop", "queue") ||
          !RequireHistogram(hop, "telemetry hop", "exec")) {
        return false;
      }
    }
  }
  return true;
}

// The streaming window series (schema emeralds.obs.timeseries/1, embedded
// in fleet.run as "timeseries" or standalone). Substantive checks: the
// series must sit on the fixed window grid (start == index * width, end
// within one width), and — when no samples were lost — the per-window
// deltas must telescope back to the whole-run totals the `totals` object
// (or enclosing fleet report) carries.
bool CheckTimeseriesSection(const JsonValue& ts, const char* ctx, const JsonValue* totals) {
  const JsonValue* schema = ts.Find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString ||
      schema->string != "emeralds.obs.timeseries/1") {
    std::fprintf(stderr, "FAIL: %s schema is not emeralds.obs.timeseries/1\n", ctx);
    return false;
  }
  if (!RequireNumbers(ts, ctx,
                      {"window_us", "windows", "lost_samples", "windows_dropped",
                       "gap_windows"})) {
    return false;
  }
  const JsonValue* series = ts.Find("series");
  if (series == nullptr || series->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing series array\n", ctx);
    return false;
  }
  if (series->array.size() != static_cast<size_t>(ts.Find("windows")->number)) {
    std::fprintf(stderr, "FAIL: %s windows=%g but series has %zu entries\n", ctx,
                 ts.Find("windows")->number, series->array.size());
    return false;
  }
  const double width = ts.Find("window_us")->number;
  double last_index = -1.0;
  double gaps = 0.0;
  double jobs = 0.0;
  double misses = 0.0;
  for (const JsonValue& w : series->array) {
    if (!RequireNumbers(w, "window",
                        {"index", "start_us", "end_us", "samples", "jobs_released",
                         "jobs_completed", "deadline_misses", "context_switches",
                         "interrupts", "timer_dispatches", "chain_origins",
                         "chain_e2e_completed", "chain_e2e_overruns", "trace_dropped",
                         "stats_snapshot_drops"})) {
      return false;
    }
    const JsonValue* gap = w.Find("gap");
    if (gap == nullptr || gap->type != JsonValue::Type::kBool) {
      std::fprintf(stderr, "FAIL: %s window missing bool \"gap\"\n", ctx);
      return false;
    }
    if (!RequireHistogram(w, "window", "response") ||
        !RequireHistogram(w, "window", "chain_e2e") ||
        !RequireHistogram(w, "window", "headroom")) {
      return false;
    }
    const double index = w.Find("index")->number;
    const double start = w.Find("start_us")->number;
    const double end = w.Find("end_us")->number;
    if (index <= last_index || start != index * width || end <= start ||
        end > start + width) {
      std::fprintf(stderr, "FAIL: %s window off the grid (index %g start %g end %g width %g)\n",
                   ctx, index, start, end, width);
      return false;
    }
    last_index = index;
    if (gap->boolean) {
      gaps += 1.0;
    }
    jobs += w.Find("jobs_completed")->number;
    misses += w.Find("deadline_misses")->number;
  }
  if (gaps != ts.Find("gap_windows")->number) {
    std::fprintf(stderr, "FAIL: %s gap_windows=%g but %g windows are marked\n", ctx,
                 ts.Find("gap_windows")->number, gaps);
    return false;
  }
  // Telescoping: lossless series must reproduce the whole-run totals.
  if (totals != nullptr && ts.Find("lost_samples")->number == 0.0) {
    const JsonValue* total_jobs = totals->Find("jobs_completed");
    const JsonValue* total_misses = totals->Find("deadline_misses");
    if (total_jobs != nullptr && total_jobs->number != jobs) {
      std::fprintf(stderr, "FAIL: %s window jobs sum to %g, run total is %g\n", ctx, jobs,
                   total_jobs->number);
      return false;
    }
    if (total_misses != nullptr && total_misses->number != misses) {
      std::fprintf(stderr, "FAIL: %s window misses sum to %g, run total is %g\n", ctx, misses,
                   total_misses->number);
      return false;
    }
  }
  return true;
}

// The alert stream: every event well-formed, the fired count backed up by
// the stream, and the stream ordered by window (the determinism contract —
// an unordered stream would make the bit-identical comparison meaningless).
bool CheckAlertsSection(const JsonValue& alerts, const char* ctx) {
  if (!RequireNumbers(alerts, ctx, {"events", "fired"})) {
    return false;
  }
  const JsonValue* config = alerts.Find("config");
  if (config == nullptr || config->type != JsonValue::Type::kObject ||
      !RequireNumbers(*config, "alerts config",
                      {"fast_windows", "slow_windows", "miss_budget_ppm",
                       "miss_burn_threshold", "chain_budget_ppm", "chain_burn_threshold",
                       "outlier_floor"})) {
    return false;
  }
  const JsonValue* stream = alerts.Find("stream");
  if (stream == nullptr || stream->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: %s missing stream array\n", ctx);
    return false;
  }
  if (stream->array.size() != static_cast<size_t>(alerts.Find("events")->number)) {
    std::fprintf(stderr, "FAIL: %s events=%g but stream has %zu entries\n", ctx,
                 alerts.Find("events")->number, stream->array.size());
    return false;
  }
  double fired = 0.0;
  double last_window = -1e18;
  for (const JsonValue& e : stream->array) {
    if (!RequireNumbers(e, "alert event", {"node", "window", "time_us", "value", "total"})) {
      return false;
    }
    const JsonValue* rule = e.Find("rule");
    const JsonValue* state = e.Find("state");
    if (rule == nullptr || rule->type != JsonValue::Type::kString || state == nullptr ||
        state->type != JsonValue::Type::kString ||
        (state->string != "firing" && state->string != "resolved")) {
      std::fprintf(stderr, "FAIL: %s event missing rule/state\n", ctx);
      return false;
    }
    if (e.Find("window")->number < last_window) {
      std::fprintf(stderr, "FAIL: %s stream not ordered by window\n", ctx);
      return false;
    }
    last_window = e.Find("window")->number;
    if (state->string == "firing") {
      fired += 1.0;
    }
  }
  if (fired != alerts.Find("fired")->number) {
    std::fprintf(stderr, "FAIL: %s fired=%g but stream has %g firing events\n", ctx,
                 alerts.Find("fired")->number, fired);
    return false;
  }
  return true;
}

// The fleet report must carry zero failed nodes, positive deterministic
// aggregates, and — when the timers section is present — a wheel that beats
// the reference sorted list by the 5x acceptance floor at 10k pending.
int CheckFleetRun(const char* path, const JsonValue& root) {
  if (!RequireNumbers(root, "fleet",
                      {"instances", "workers", "seed", "run_duration_ms", "slice_ms",
                       "events_total", "virtual_ms_total", "events_per_virtual_sec",
                       "jobs_completed", "deadline_misses", "timer_dispatches",
                       "chain_completed", "chain_overruns", "nodes_total", "nodes_failed",
                       "arena_high_water_bytes", "wall_seconds", "events_per_wall_sec"})) {
    return 1;
  }
  for (const char* key : {"timer_queue", "fleet_digest", "label"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kString) {
      std::fprintf(stderr, "FAIL: fleet missing string \"%s\"\n", key);
      return 1;
    }
  }
  if (root.Find("nodes_failed")->number != 0.0) {
    const JsonValue* failure = root.Find("first_failure");
    std::fprintf(stderr, "FAIL: %g fleet node(s) failed their oracles: %s\n",
                 root.Find("nodes_failed")->number,
                 failure != nullptr ? failure->string.c_str() : "?");
    return 1;
  }
  if (root.Find("nodes_total")->number <= 0.0 || root.Find("events_total")->number <= 0.0 ||
      root.Find("events_per_virtual_sec")->number <= 0.0) {
    std::fprintf(stderr, "FAIL: fleet ran no nodes or produced no events\n");
    return 1;
  }
  const JsonValue* schedulers = root.Find("schedulers");
  if (schedulers == nullptr || schedulers->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: fleet missing schedulers object\n");
    return 1;
  }
  const JsonValue* fleet_trace = root.Find("trace");
  if (fleet_trace == nullptr ||
      !RequireNumbers(*fleet_trace, "fleet trace",
                      {"dropped_total", "worst_node", "worst_node_dropped"})) {
    return 1;
  }
  const JsonValue* triage = root.Find("triage");
  if (triage == nullptr || triage->type != JsonValue::Type::kObject ||
      triage->Find("metrics") == nullptr ||
      triage->Find("metrics")->type != JsonValue::Type::kArray ||
      triage->Find("outlier_nodes") == nullptr) {
    std::fprintf(stderr, "FAIL: fleet missing triage {metrics, outlier_nodes}\n");
    return 1;
  }
  const JsonValue* top_blame = triage->Find("top_blame");
  if (top_blame == nullptr ||
      !RequireNumbers(*top_blame, "triage top_blame",
                      {"preemptor", "preemptor_ns", "lock", "lock_ns"})) {
    return 1;
  }
  // The fleet-merged blame ledger: digest-gated (the serial-vs-parallel
  // bit-identity tests compare it), zero conservation failures, and nothing
  // unattributed across any node whose window was complete.
  const JsonValue* postmortem = root.Find("postmortem");
  if (postmortem == nullptr || postmortem->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: fleet missing postmortem object\n");
    return 1;
  }
  const JsonValue* blame_digest = postmortem->Find("blame_digest");
  if (blame_digest == nullptr || blame_digest->type != JsonValue::Type::kString ||
      blame_digest->string.empty() ||
      !RequireNumbers(*postmortem, "fleet postmortem", {"incomplete_misses"})) {
    std::fprintf(stderr, "FAIL: fleet postmortem missing blame_digest\n");
    return 1;
  }
  const JsonValue* fleet_blame = postmortem->Find("blame");
  if (fleet_blame == nullptr ||
      !RequireNumbers(*fleet_blame, "fleet blame",
                      {"misses_analyzed", "conservation_failures", "tardiness_ns",
                       "unattributed_ns"})) {
    return 1;
  }
  if (fleet_blame->Find("conservation_failures")->number != 0.0) {
    std::fprintf(stderr, "FAIL: fleet blame ledger has %g conservation failure(s)\n",
                 fleet_blame->Find("conservation_failures")->number);
    return 1;
  }
  const JsonValue* telemetry = root.Find("telemetry");
  if (telemetry != nullptr && !CheckTelemetrySection(*telemetry, "telemetry")) {
    return 1;
  }
  const JsonValue* timeseries = root.Find("timeseries");
  if (timeseries != nullptr && !CheckTimeseriesSection(*timeseries, "timeseries", &root)) {
    return 1;
  }
  const JsonValue* alerts = root.Find("alerts");
  if (alerts != nullptr && !CheckAlertsSection(*alerts, "alerts")) {
    return 1;
  }
  const JsonValue* timers = root.Find("timers");
  if (timers != nullptr) {
    const JsonValue* points = timers->Find("points");
    if (points == nullptr || points->type != JsonValue::Type::kArray || points->array.empty()) {
      std::fprintf(stderr, "FAIL: timers section missing points array\n");
      return 1;
    }
    for (const JsonValue& point : points->array) {
      if (!RequireNumbers(point, "timer point", {"pending", "speedup"})) {
        return 1;
      }
      for (const char* impl : {"wheel", "list"}) {
        const JsonValue* section = point.Find(impl);
        if (section == nullptr ||
            !RequireNumbers(*section, impl, {"arm_ns", "cancel_ns", "service_ns"})) {
          return 1;
        }
      }
    }
    if (!RequireNumbers(*timers, "timers", {"speedup_10k"})) {
      return 1;
    }
    if (timers->Find("speedup_10k")->number < 5.0) {
      std::fprintf(stderr, "FAIL: wheel speedup at 10k pending is %gx (floor 5x)\n",
                   timers->Find("speedup_10k")->number);
      return 1;
    }
  }
  std::printf("OK: %s (fleet run, %g nodes, %g events, 0 failures)\n", path,
              root.Find("nodes_total")->number, root.Find("events_total")->number);
  return 0;
}

// A black-box bundle report (emeralds.obs.blackbox/1) is forensic: it
// records a (possibly failing) run, so chain violations and invariant
// breaches are allowed inside it. The check is structural — the bundle must
// round-trip: label/reason/repro present, the trace accounting coherent,
// and the embedded node-telemetry block well-formed.
int CheckObsBlackBox(const char* path, const JsonValue& root) {
  for (const char* key : {"label", "reason", "repro"}) {
    const JsonValue* v = root.Find(key);
    if (v == nullptr || v->type != JsonValue::Type::kString || v->string.empty()) {
      std::fprintf(stderr, "FAIL: blackbox missing string \"%s\"\n", key);
      return 1;
    }
  }
  if (!RequireNumbers(root, "blackbox", {"virtual_time_us"})) {
    return 1;
  }
  const JsonValue* trace = root.Find("trace");
  if (trace == nullptr ||
      !RequireNumbers(*trace, "blackbox trace", {"retained", "dropped", "total_recorded"})) {
    return 1;
  }
  const JsonValue* threads = root.Find("threads");
  if (threads == nullptr || threads->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "FAIL: blackbox missing threads array\n");
    return 1;
  }
  const JsonValue* stats = root.Find("stats");
  if (stats == nullptr ||
      !RequireNumbers(*stats, "blackbox stats",
                      {"context_switches", "jobs_completed", "deadline_misses",
                       "timer_dispatches", "headroom_low_events"})) {
    return 1;
  }
  const JsonValue* telemetry = root.Find("telemetry");
  if (telemetry == nullptr || telemetry->type != JsonValue::Type::kObject ||
      !RequireHistogram(*telemetry, "blackbox telemetry", "response")) {
    return 1;
  }
  const JsonValue* chains = root.Find("chains");
  if (chains == nullptr || chains->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: blackbox missing chains object\n");
    return 1;
  }
  const JsonValue* snapshots = root.Find("snapshots");
  if (snapshots == nullptr ||
      !RequireNumbers(*snapshots, "blackbox snapshots", {"count", "dropped"})) {
    return 1;
  }
  const JsonValue* postmortem = root.Find("postmortem");
  if (postmortem == nullptr || postmortem->type != JsonValue::Type::kObject ||
      !CheckPostmortemSection(*postmortem, "blackbox postmortem", /*forensic=*/true)) {
    return 1;
  }
  std::printf("OK: %s (black box \"%s\": %s)\n", path, root.Find("label")->string.c_str(),
              root.Find("reason")->string.c_str());
  return 0;
}

// The SMP report is gated substantively: every throughput row must conserve
// its ledger fleet-summed AND per core (residuals exactly zero), the 2-core
// run must deliver the 1.7x aggregate user-cycle floor over 1-core at equal
// horizon (recomputed from the integers, not just the reported ratio), and
// partitioned-CSD admission must be monotone in core count.
int CheckBenchSmp(const char* path, const JsonValue& root) {
  if (!RequireNumbers(root, "smp", {"horizon_ms", "ratio_2core", "ratio_4core"})) {
    return 1;
  }
  const JsonValue* rows = root.Find("throughput");
  if (rows == nullptr || rows->type != JsonValue::Type::kArray || rows->array.empty()) {
    std::fprintf(stderr, "FAIL: smp missing throughput array\n");
    return 1;
  }
  double user_by_cores[16] = {};
  for (const JsonValue& row : rows->array) {
    if (!RequireNumbers(row, "smp throughput row",
                        {"num_cores", "user_ns", "idle_ns", "ipis", "context_switches",
                         "jobs_completed"})) {
      return 1;
    }
    const double cores = row.Find("num_cores")->number;
    const JsonValue* conserved = row.Find("conserved");
    if (conserved == nullptr || conserved->type != JsonValue::Type::kBool ||
        !conserved->boolean) {
      std::fprintf(stderr, "FAIL: smp %g-core row not conserved\n", cores);
      return 1;
    }
    const JsonValue* per_core = row.Find("cores");
    if (per_core == nullptr || per_core->type != JsonValue::Type::kArray ||
        per_core->array.size() != static_cast<size_t>(cores)) {
      std::fprintf(stderr, "FAIL: smp %g-core row missing per-core ledger array\n", cores);
      return 1;
    }
    for (const JsonValue& c : per_core->array) {
      if (!RequireNumbers(c, "smp per-core ledger",
                          {"core", "elapsed_ns", "ledger_total_ns", "residual_ns"})) {
        return 1;
      }
      const JsonValue* cons = c.Find("conserved");
      if (cons == nullptr || cons->type != JsonValue::Type::kBool || !cons->boolean ||
          c.Find("residual_ns")->number != 0.0) {
        std::fprintf(stderr, "FAIL: smp %g-core run, core %g: residual %g ns (must be 0)\n",
                     cores, c.Find("core")->number, c.Find("residual_ns")->number);
        return 1;
      }
    }
    if (cores >= 1 && cores < 16) {
      user_by_cores[static_cast<int>(cores)] = row.Find("user_ns")->number;
    }
  }
  if (user_by_cores[1] <= 0.0 || user_by_cores[2] <= 0.0) {
    std::fprintf(stderr, "FAIL: smp report lacks 1-core and 2-core throughput rows\n");
    return 1;
  }
  const double ratio2 = user_by_cores[2] / user_by_cores[1];
  if (ratio2 < 1.7) {
    std::fprintf(stderr, "FAIL: 2-core user-cycle throughput is %.3fx 1-core (floor 1.7x)\n",
                 ratio2);
    return 1;
  }
  const JsonValue* admission = root.Find("admission");
  if (admission == nullptr || admission->type != JsonValue::Type::kObject) {
    std::fprintf(stderr, "FAIL: smp missing admission object\n");
    return 1;
  }
  const JsonValue* points = admission->Find("points");
  if (points == nullptr || points->type != JsonValue::Type::kArray || points->array.empty()) {
    std::fprintf(stderr, "FAIL: smp admission missing points array\n");
    return 1;
  }
  for (const JsonValue& p : points->array) {
    if (!RequireNumbers(p, "smp admission point",
                        {"utilization", "admitted_1core", "admitted_2core", "admitted_4core"})) {
      return 1;
    }
    const double a1 = p.Find("admitted_1core")->number;
    const double a2 = p.Find("admitted_2core")->number;
    const double a4 = p.Find("admitted_4core")->number;
    if (a2 < a1 || a4 < a2) {
      std::fprintf(stderr,
                   "FAIL: admission not monotone in cores at U=%g (1:%g 2:%g 4:%g)\n",
                   p.Find("utilization")->number, a1, a2, a4);
      return 1;
    }
  }
  std::printf("OK: %s (smp: 2-core %.3fx user cycles, %zu admission points)\n", path, ratio2,
              points->array.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace emeralds;
  if (argc != 2) {
    std::fprintf(stderr, "usage: bench_json_check <report.json>\n");
    return 2;
  }

  std::FILE* f = std::fopen(argv[1], "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot open %s\n", argv[1]);
    return 1;
  }
  std::string text;
  char buf[4096];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);

  JsonValue root;
  std::string error;
  if (!JsonParse(text, &root, &error)) {
    std::fprintf(stderr, "FAIL: %s does not parse: %s\n", argv[1], error.c_str());
    return 1;
  }

  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->type != JsonValue::Type::kString) {
    std::fprintf(stderr, "FAIL: missing schema tag\n");
    return 1;
  }
  if (schema->string == "emeralds.obs.run/1") {
    return CheckObsRun(argv[1], root);
  }
  if (schema->string == "emeralds.obs.cycles/1") {
    return CheckObsCycles(argv[1], root);
  }
  if (schema->string == "emeralds.obs.chains/1") {
    return CheckObsChains(argv[1], root);
  }
  if (schema->string == "emeralds.fuzz.torture/1") {
    return CheckFuzzTorture(argv[1], root);
  }
  if (schema->string == "emeralds.fleet.run/1") {
    return CheckFleetRun(argv[1], root);
  }
  if (schema->string == "emeralds.obs.timeseries/1") {
    if (!CheckTimeseriesSection(root, "timeseries", root.Find("totals"))) {
      return 1;
    }
    std::printf("OK: %s (timeseries, %g windows)\n", argv[1], root.Find("windows")->number);
    return 0;
  }
  if (schema->string == "emeralds.obs.blackbox/1") {
    return CheckObsBlackBox(argv[1], root);
  }
  if (schema->string == "emeralds.obs.postmortem/1") {
    const JsonValue* label = root.Find("label");
    const JsonValue* report = root.Find("report");
    if (label == nullptr || label->type != JsonValue::Type::kString || report == nullptr ||
        report->type != JsonValue::Type::kObject) {
      std::fprintf(stderr, "FAIL: postmortem missing label/report\n");
      return 1;
    }
    if (!CheckPostmortemSection(*report, "postmortem report")) {
      return 1;
    }
    std::printf("OK: %s (postmortem \"%s\", %g miss(es), ledgers conserved)\n", argv[1],
                label->string.c_str(), report->Find("misses_analyzed")->number);
    return 0;
  }
  if (schema->string == "emeralds.bench.smp/1") {
    return CheckBenchSmp(argv[1], root);
  }
  if (schema->string != "emeralds.bench.breakdown/1") {
    std::fprintf(stderr, "FAIL: unexpected schema tag \"%s\"\n", schema->string.c_str());
    return 1;
  }
  const JsonValue* points = root.Find("points");
  if (points == nullptr || points->type != JsonValue::Type::kArray || points->array.empty()) {
    std::fprintf(stderr, "FAIL: missing or empty points array\n");
    return 1;
  }
  for (const JsonValue& point : points->array) {
    for (const char* key : {"n", "wall_seconds", "workloads_per_sec", "eval_reduction",
                            "reference_mismatches"}) {
      const JsonValue* v = point.Find(key);
      if (v == nullptr || v->type != JsonValue::Type::kNumber) {
        std::fprintf(stderr, "FAIL: point missing numeric \"%s\"\n", key);
        return 1;
      }
    }
    const JsonValue* evals = point.Find("evals");
    if (evals == nullptr || evals->Find("full_evals") == nullptr) {
      std::fprintf(stderr, "FAIL: point missing evals.full_evals\n");
      return 1;
    }
    const JsonValue* mism = point.Find("reference_mismatches");
    if (mism->number != 0.0) {
      std::fprintf(stderr, "FAIL: reference_mismatches = %g at n = %g\n", mism->number,
                   point.Find("n")->number);
      return 1;
    }
  }
  std::printf("OK: %s (%zu points)\n", argv[1], points->array.size());
  return 0;
}
