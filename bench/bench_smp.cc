// bench_smp: partitioned-SMP throughput and admission baseline.
//
// Two deterministic experiments behind the SMP acceptance bars, emitted as
// one emeralds.bench.smp/1 report at $EMERALDS_BENCH_JSON (default
// ./BENCH_smp.json):
//
//  1. Throughput at equal horizon. A saturated workload — eight periodic
//     tasks, 3 ms compute every 10 ms (240% aggregate demand) — runs on the
//     real kernel for the same virtual horizon at 1, 2, and 4 cores, tasks
//     pinned round-robin. Aggregate user cycles (KernelStats::compute_time)
//     must scale: the 2-core run has to deliver >= 1.7x the 1-core user
//     cycles, and every run must conserve its cycle ledger both fleet-summed
//     and per core, exact to the tick.
//
//  2. Partitioned-CSD admission. Seeded random workloads (the paper's
//     Figure-3 generator) are swept across total-utilization targets; each is
//     admitted via PartitionCsdSmp (FFD onto cores, then the unchanged
//     per-core CSD search). More cores must never admit fewer workloads: a
//     task set feasible on one core is feasible on a subset of cores.
//
// Pure virtual time, so every number is bit-identical across machines and CI
// diffs the report against the committed BENCH_smp.json with bench_compare.
// Exit status 1 when a conservation, scaling, or monotonicity bar fails.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_report.h"
#include "src/analysis/smp_partition.h"
#include "src/core/kernel.h"
#include "src/hal/hardware.h"
#include "src/obs/json_writer.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

constexpr Duration kHorizon = Seconds(2);
constexpr int kSatThreads = 8;
constexpr int kCoreCounts[] = {1, 2, 4};

constexpr int kAdmissionWorkloads = 20;
constexpr int kAdmissionTasks = 8;
constexpr int kAdmissionQueues = 2;
constexpr double kUtilizationTargets[] = {0.6, 0.9, 1.2, 1.5, 1.8};

struct ThroughputRow {
  int num_cores = 0;
  Duration user;
  Duration idle;
  uint64_t ipis = 0;
  uint64_t context_switches = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  bool conserved = false;
  std::vector<CycleConservation> per_core;
};

ThroughputRow RunSaturated(int num_cores) {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(2);
  config.cost_model = CostModel::MC68040_25MHz();
  config.num_cores = num_cores;
  config.trace_capacity = 16384;
  Kernel kernel(hw, config);

  for (int i = 0; i < kSatThreads; ++i) {
    ThreadParams params;
    params.name = "sat";
    params.period = Milliseconds(10);
    params.core = i % num_cores;
    params.body = [](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(Milliseconds(3));
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(params);
  }
  kernel.Start();
  kernel.RunUntil(Instant() + kHorizon);

  ThroughputRow row;
  row.num_cores = num_cores;
  const KernelStats& s = kernel.stats();
  row.user = s.compute_time;
  row.idle = s.idle_time;
  row.ipis = s.ipis;
  row.context_switches = s.context_switches;
  row.jobs_completed = s.jobs_completed;
  row.deadline_misses = s.deadline_misses;
  CycleConservation total = CheckCycleConservation(s, kernel.now());
  row.conserved = total.exact();
  for (int c = 0; c < num_cores; ++c) {
    row.per_core.push_back(CheckCoreCycleConservation(s, c, kernel.now()));
    if (!row.per_core.back().exact()) {
      row.conserved = false;
    }
  }
  return row;
}

struct AdmissionPoint {
  double utilization = 0.0;
  int admitted[3] = {0, 0, 0};  // indexed like kCoreCounts
};

std::vector<AdmissionPoint> RunAdmissionSweep() {
  const CostModel cost = CostModel::MC68040_25MHz();
  WorkloadGenConfig gen;  // normalizes each set to utilization 0.50
  std::vector<TaskSet> workloads;
  Rng rng(20260808);
  for (int w = 0; w < kAdmissionWorkloads; ++w) {
    TaskSet set = GenerateWorkload(rng, kAdmissionTasks, gen);
    set.SortByPeriod();
    workloads.push_back(std::move(set));
  }

  std::vector<AdmissionPoint> points;
  for (double target : kUtilizationTargets) {
    AdmissionPoint point;
    point.utilization = target;
    for (const TaskSet& set : workloads) {
      const double scale = target / set.Utilization();
      for (size_t ci = 0; ci < std::size(kCoreCounts); ++ci) {
        SmpPartitionResult part =
            PartitionCsdSmp(set, kCoreCounts[ci], kAdmissionQueues, scale, cost);
        if (part.feasible) {
          ++point.admitted[ci];
        }
      }
    }
    points.push_back(point);
  }
  return points;
}

int Run() {
  std::vector<ThroughputRow> rows;
  for (int cores : kCoreCounts) {
    rows.push_back(RunSaturated(cores));
  }
  std::vector<AdmissionPoint> admission = RunAdmissionSweep();

  const double user1 = static_cast<double>(rows[0].user.nanos());
  const double ratio2 = user1 > 0 ? static_cast<double>(rows[1].user.nanos()) / user1 : 0.0;
  const double ratio4 = user1 > 0 ? static_cast<double>(rows[2].user.nanos()) / user1 : 0.0;

  bool ok = true;
  std::printf("bench_smp: %d saturated tasks (3ms/10ms), %lld ms horizon\n", kSatThreads,
              static_cast<long long>(kHorizon.millis()));
  for (const ThroughputRow& row : rows) {
    std::printf("  %d core(s): user %.1f ms, idle %.1f ms, %llu switches, %llu ipis, "
                "%llu jobs (%llu misses), conservation %s\n",
                row.num_cores, row.user.millis_f(), row.idle.millis_f(),
                static_cast<unsigned long long>(row.context_switches),
                static_cast<unsigned long long>(row.ipis),
                static_cast<unsigned long long>(row.jobs_completed),
                static_cast<unsigned long long>(row.deadline_misses),
                row.conserved ? "exact (all cores)" : "VIOLATED");
    ok = ok && row.conserved;
  }
  std::printf("  throughput scaling: 2-core %.3fx (floor 1.7x), 4-core %.3fx\n", ratio2, ratio4);
  if (ratio2 < 1.7) {
    ok = false;
  }
  std::printf("admission (CSD-%d, %d workloads x %d tasks):\n", kAdmissionQueues,
              kAdmissionWorkloads, kAdmissionTasks);
  for (const AdmissionPoint& p : admission) {
    std::printf("  U=%.1f: 1-core %d, 2-core %d, 4-core %d\n", p.utilization, p.admitted[0],
                p.admitted[1], p.admitted[2]);
    if (p.admitted[1] < p.admitted[0] || p.admitted[2] < p.admitted[1]) {
      std::printf("    ADMISSION NOT MONOTONE IN CORES\n");
      ok = false;
    }
  }

  obs::Json j;
  j.OpenObject();
  j.String("schema", "emeralds.bench.smp/1");
  j.String("label", "bench_smp");
  j.Number("horizon_ms", kHorizon.millis_f());
  j.Int("saturated_tasks", kSatThreads);
  j.Key("throughput");
  j.OpenArray();
  for (const ThroughputRow& row : rows) {
    j.OpenObject();
    j.Int("num_cores", row.num_cores);
    j.Int("user_ns", row.user.nanos());
    j.Int("idle_ns", row.idle.nanos());
    j.Int("ipis", static_cast<int64_t>(row.ipis));
    j.Int("context_switches", static_cast<int64_t>(row.context_switches));
    j.Int("jobs_completed", static_cast<int64_t>(row.jobs_completed));
    j.Int("deadline_misses", static_cast<int64_t>(row.deadline_misses));
    j.Bool("conserved", row.conserved);
    j.Key("cores");
    j.OpenArray();
    for (size_t c = 0; c < row.per_core.size(); ++c) {
      const CycleConservation& cc = row.per_core[c];
      j.OpenObject();
      j.Int("core", static_cast<int64_t>(c));
      j.Int("elapsed_ns", cc.elapsed.nanos());
      j.Int("ledger_total_ns", cc.ledger_total.nanos());
      j.Int("residual_ns", cc.residual.nanos());
      j.Bool("conserved", cc.exact());
      j.CloseObject();
    }
    j.CloseArray();
    j.CloseObject();
  }
  j.CloseArray();
  j.Number("ratio_2core", ratio2);
  j.Number("ratio_4core", ratio4);
  j.Key("admission");
  j.OpenObject();
  j.Int("queues", kAdmissionQueues);
  j.Int("workloads", kAdmissionWorkloads);
  j.Int("tasks_per_workload", kAdmissionTasks);
  j.Key("points");
  j.OpenArray();
  for (const AdmissionPoint& p : admission) {
    j.OpenObject();
    j.Number("utilization", p.utilization);
    j.Int("admitted_1core", p.admitted[0]);
    j.Int("admitted_2core", p.admitted[1]);
    j.Int("admitted_4core", p.admitted[2]);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
  j.CloseObject();

  std::string json_path = BenchJsonPath("BENCH_smp.json");
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_smp: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(j.str().data(), 1, j.str().size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace emeralds

int main() { return emeralds::Run(); }
