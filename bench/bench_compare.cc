#include "bench/bench_compare.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace emeralds {
namespace bench {
namespace {

void Failf(CompareResult* r, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  r->failures.push_back(buf);
}

void Notef(CompareResult* r, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  r->notes.push_back(buf);
}

double NumberOr(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? v->number : fallback;
}

bool BoolOr(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kBool ? v->boolean : fallback;
}

// --- emeralds.obs.cycles/1 ---

// Buckets excluded from the growth gate: user time belongs to the workload,
// idle is the complement (a faster kernel means *more* idle), and
// unattributed must be zero anyway (conservation covers it).
bool GatedBucket(const std::string& name) {
  return name != "user" && name != "idle" && name != "unattributed";
}

void CompareCycles(const JsonValue& baseline, const JsonValue& candidate,
                   const CompareOptions& opt, CompareResult* r) {
  const JsonValue* base_c = baseline.Find("cycles");
  const JsonValue* cand_c = candidate.Find("cycles");
  if (base_c == nullptr || cand_c == nullptr) {
    Failf(r, "cycles section missing (baseline %s, candidate %s)",
          base_c != nullptr ? "present" : "absent", cand_c != nullptr ? "present" : "absent");
    return;
  }
  if (!BoolOr(*cand_c, "conserved", false) || !BoolOr(*cand_c, "clock_conserved", false)) {
    Failf(r, "candidate ledger not conserved (residual %.0f ns, unattributed %.0f ns)",
          NumberOr(*cand_c, "residual_ns", -1), NumberOr(*cand_c, "clock_unattributed_ns", -1));
  }
  double base_elapsed = NumberOr(*base_c, "elapsed_ns", -1);
  double cand_elapsed = NumberOr(*cand_c, "elapsed_ns", -2);
  if (base_elapsed != cand_elapsed) {
    Failf(r, "elapsed_ns differs: baseline %.0f vs candidate %.0f (virtual time is "
             "deterministic; regenerate the baseline if the workload changed)",
          base_elapsed, cand_elapsed);
    return;
  }
  const JsonValue* base_b = base_c->Find("buckets_ns");
  const JsonValue* cand_b = cand_c->Find("buckets_ns");
  if (base_b == nullptr || base_b->type != JsonValue::Type::kObject || cand_b == nullptr ||
      cand_b->type != JsonValue::Type::kObject) {
    Failf(r, "buckets_ns object missing");
    return;
  }
  // Candidate buckets gate against the baseline; buckets only in one side
  // compare against zero.
  for (const auto& kv : cand_b->object) {
    if (!GatedBucket(kv.first)) {
      continue;
    }
    double cand = kv.second.number;
    double base = NumberOr(*base_b, kv.first.c_str(), 0.0);
    double ceiling = base * (1.0 + opt.rel_tolerance) + static_cast<double>(opt.abs_slack_ns);
    if (cand > ceiling) {
      Failf(r, "bucket %s regressed: %.0f ns vs baseline %.0f ns (+%.1f%%, ceiling %.0f)",
            kv.first.c_str(), cand, base, base > 0 ? 100.0 * (cand - base) / base : 0.0,
            ceiling);
    } else if (cand != base) {
      Notef(r, "bucket %s: %.0f ns vs baseline %.0f ns (within tolerance)", kv.first.c_str(),
            cand, base);
    }
  }
  for (const auto& kv : base_b->object) {
    if (GatedBucket(kv.first) && cand_b->Find(kv.first) == nullptr && kv.second.number != 0.0) {
      Notef(r, "bucket %s present only in baseline (%.0f ns)", kv.first.c_str(),
            kv.second.number);
    }
  }
}

// --- emeralds.bench.breakdown/1 ---

void CompareBreakdown(const JsonValue& baseline, const JsonValue& candidate,
                      const CompareOptions& opt, CompareResult* r) {
  const JsonValue* base_p = baseline.Find("points");
  const JsonValue* cand_p = candidate.Find("points");
  if (base_p == nullptr || base_p->type != JsonValue::Type::kArray || cand_p == nullptr ||
      cand_p->type != JsonValue::Type::kArray) {
    Failf(r, "points array missing");
    return;
  }
  if (base_p->array.size() != cand_p->array.size()) {
    Failf(r, "point count differs: baseline %zu vs candidate %zu (pin EMERALDS_WORKLOADS to "
             "the baseline's value)",
          base_p->array.size(), cand_p->array.size());
    return;
  }
  for (size_t i = 0; i < base_p->array.size(); ++i) {
    const JsonValue& base = base_p->array[i];
    const JsonValue& cand = cand_p->array[i];
    double n = NumberOr(base, "n", -1);
    if (n != NumberOr(cand, "n", -2)) {
      Failf(r, "point %zu: n differs (baseline %.0f vs candidate %.0f)", i, n,
            NumberOr(cand, "n", -2));
      continue;
    }
    if (NumberOr(cand, "reference_mismatches", -1) != 0.0) {
      Failf(r, "n=%.0f: candidate has %.0f reference mismatches", n,
            NumberOr(cand, "reference_mismatches", -1));
    }
    const JsonValue* base_e = base.Find("evals");
    const JsonValue* cand_e = cand.Find("evals");
    double base_full = base_e != nullptr ? NumberOr(*base_e, "full_evals", -1) : -1;
    double cand_full = cand_e != nullptr ? NumberOr(*cand_e, "full_evals", -1) : -1;
    if (base_full < 0 || cand_full < 0) {
      Failf(r, "n=%.0f: evals.full_evals missing", n);
    } else if (cand_full > base_full * (1.0 + opt.rel_tolerance)) {
      Failf(r, "n=%.0f: full_evals regressed %.0f -> %.0f (+%.1f%%)", n, base_full, cand_full,
            base_full > 0 ? 100.0 * (cand_full - base_full) / base_full : 0.0);
    }
    double base_red = NumberOr(base, "eval_reduction", 0.0);
    double cand_red = NumberOr(cand, "eval_reduction", 0.0);
    if (cand_red < base_red * (1.0 - opt.rel_tolerance)) {
      Failf(r, "n=%.0f: eval_reduction regressed %.3f -> %.3f", n, base_red, cand_red);
    }
    // Wall-clock throughput is machine-dependent: informational only.
    double base_wps = NumberOr(base, "workloads_per_sec", 0.0);
    double cand_wps = NumberOr(cand, "workloads_per_sec", 0.0);
    if (base_wps > 0 && cand_wps > 0 && std::fabs(cand_wps - base_wps) > 0.25 * base_wps) {
      Notef(r, "n=%.0f: workloads_per_sec %.0f vs baseline %.0f (not gated)", n, cand_wps,
            base_wps);
    }
  }
}

// --- emeralds.fleet.run/1 ---

const char* StringOr(const JsonValue& obj, const char* key, const char* fallback) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kString ? v->string.c_str() : fallback;
}

void CompareFleet(const JsonValue& baseline, const JsonValue& candidate,
                  const CompareOptions& opt, CompareResult* r) {
  // The candidate must pass its own oracles before any baseline comparison.
  double failed = NumberOr(candidate, "nodes_failed", -1);
  if (failed != 0.0) {
    Failf(r, "candidate has %.0f failed node(s): %s", failed,
          StringOr(candidate, "first_failure", "?"));
  }
  // The run configuration must match, or the aggregates are incomparable.
  for (const char* key : {"instances", "seed", "run_duration_ms", "slice_ms"}) {
    double base = NumberOr(baseline, key, -1);
    double cand = NumberOr(candidate, key, -2);
    if (base != cand) {
      Failf(r, "%s differs: baseline %.0f vs candidate %.0f (regenerate the baseline if the "
               "fleet configuration changed)",
            key, base, cand);
      return;
    }
  }
  if (std::string(StringOr(baseline, "timer_queue", "?")) !=
      StringOr(candidate, "timer_queue", "??")) {
    Failf(r, "timer_queue differs: baseline %s vs candidate %s",
          StringOr(baseline, "timer_queue", "?"), StringOr(candidate, "timer_queue", "??"));
    return;
  }
  // Deterministic aggregates: any drift means simulated behavior changed, so
  // hold them to the relative tolerance in both directions.
  for (const char* key : {"events_total", "events_per_virtual_sec"}) {
    double base = NumberOr(baseline, key, -1);
    double cand = NumberOr(candidate, key, -2);
    if (base <= 0 || cand <= 0) {
      Failf(r, "%s missing or non-positive", key);
      continue;
    }
    if (std::fabs(cand - base) > base * opt.rel_tolerance) {
      Failf(r, "%s drifted: %.0f vs baseline %.0f (%+.1f%%, tolerance %.0f%%; the fleet is "
               "deterministic — regenerate the baseline if the workload changed)",
            key, cand, base, 100.0 * (cand - base) / base, 100.0 * opt.rel_tolerance);
    } else if (cand != base) {
      Notef(r, "%s: %.0f vs baseline %.0f (within tolerance)", key, cand, base);
    }
  }
  if (std::string(StringOr(baseline, "fleet_digest", "?")) !=
      StringOr(candidate, "fleet_digest", "??")) {
    Notef(r, "fleet_digest differs (baseline %s vs %s): per-node traces changed",
          StringOr(baseline, "fleet_digest", "?"), StringOr(candidate, "fleet_digest", "??"));
  }
  for (const char* key : {"deadline_misses", "chain_overruns"}) {
    double base = NumberOr(baseline, key, 0.0);
    double cand = NumberOr(candidate, key, 0.0);
    if (cand != base) {
      Notef(r, "%s: %.0f vs baseline %.0f (not gated)", key, cand, base);
    }
  }
  // The wheel-vs-list bar: an absolute floor, not a baseline delta — host
  // timings wobble, but 5x leaves a wide margin over any wobble.
  const JsonValue* timers = candidate.Find("timers");
  if (timers == nullptr || timers->type != JsonValue::Type::kObject) {
    Failf(r, "candidate has no timers section");
  } else {
    double speedup = NumberOr(*timers, "speedup_10k", -1);
    if (speedup < 5.0) {
      Failf(r, "wheel speedup at 10k pending is %.1fx (floor 5x)", speedup);
    }
    const JsonValue* base_t = baseline.Find("timers");
    double base_speedup = base_t != nullptr ? NumberOr(*base_t, "speedup_10k", 0.0) : 0.0;
    if (base_speedup > 0) {
      Notef(r, "speedup_10k: %.1fx vs baseline %.1fx (floor-gated only)", speedup,
            base_speedup);
    }
  }
  // Merged fleet telemetry percentiles: bucket-exact over the union of every
  // node's samples and deterministic, so when both reports carry the section
  // the chain e2e percentile tables are held to the same relative tolerance
  // as the event aggregates.
  const JsonValue* base_tel = baseline.Find("telemetry");
  const JsonValue* cand_tel = candidate.Find("telemetry");
  if (base_tel != nullptr && cand_tel == nullptr) {
    Failf(r, "baseline has a telemetry section but the candidate does not");
  } else if (base_tel != nullptr && cand_tel != nullptr) {
    const JsonValue* base_chains = base_tel->Find("chains");
    const JsonValue* cand_chains = cand_tel->Find("chains");
    if (base_chains != nullptr && base_chains->type == JsonValue::Type::kArray &&
        cand_chains != nullptr && cand_chains->type == JsonValue::Type::kArray) {
      for (const JsonValue& bc : base_chains->array) {
        const char* name = StringOr(bc, "name", "?");
        const JsonValue* cc = nullptr;
        for (const JsonValue& c : cand_chains->array) {
          if (std::string(StringOr(c, "name", "")) == name) {
            cc = &c;
            break;
          }
        }
        if (cc == nullptr) {
          Failf(r, "telemetry chain \"%s\" missing from candidate", name);
          continue;
        }
        const JsonValue* be = bc.Find("e2e");
        const JsonValue* ce = cc->Find("e2e");
        if (be == nullptr || ce == nullptr) {
          Failf(r, "telemetry chain \"%s\" missing e2e histogram", name);
          continue;
        }
        for (const char* key : {"p50_us", "p90_us", "p99_us"}) {
          double base = NumberOr(*be, key, -1);
          double cand = NumberOr(*ce, key, -2);
          if (base < 0 || cand < 0) {
            Failf(r, "telemetry chain \"%s\" missing %s", name, key);
            continue;
          }
          if (std::fabs(cand - base) > base * opt.rel_tolerance) {
            Failf(r, "chain \"%s\" %s drifted: %.0f vs baseline %.0f (%+.1f%%, tolerance "
                     "%.0f%%)",
                  name, key, cand, base, base > 0 ? 100.0 * (cand - base) / base : 0.0,
                  100.0 * opt.rel_tolerance);
          } else if (cand != base) {
            Notef(r, "chain \"%s\" %s: %.0f vs baseline %.0f (within tolerance)", name, key,
                  cand, base);
          }
        }
      }
    }
  }
  // Telemetry collection overhead rides on wall clock: informational only.
  const JsonValue* overhead = candidate.Find("telemetry_overhead");
  if (overhead != nullptr) {
    Notef(r, "telemetry overhead ratio %.3f (on %.0f vs off %.0f events/s wall, not gated)",
          NumberOr(*overhead, "ratio", 0.0), NumberOr(*overhead, "on_events_per_wall_sec", 0.0),
          NumberOr(*overhead, "off_events_per_wall_sec", 0.0));
  }
  // Streaming-collection overhead IS gated, as a ratio: both sides of the
  // division ran on the same host in the same process, so the ratio is
  // machine-independent in a way the raw wall rates are not. Even best-of-3
  // ratios of ~40 ms parallel runs still carry double-digit-percent host
  // noise, so this gate uses its own tripwire tolerance instead of the 3%
  // deterministic-field tolerance: it exists to catch the streaming plane
  // becoming grossly more expensive (the always-on layer doubling in cost),
  // not to micro-gate scheduler jitter.
  constexpr double kStreamingRatioTolerance = 0.25;
  const JsonValue* streaming = candidate.Find("streaming_overhead");
  const JsonValue* base_streaming = baseline.Find("streaming_overhead");
  if (streaming != nullptr && base_streaming == nullptr) {
    Notef(r, "streaming overhead ratio %.3f (baseline lacks the section, not gated)",
          NumberOr(*streaming, "ratio", 0.0));
  } else if (streaming == nullptr && base_streaming != nullptr) {
    Failf(r, "baseline has a streaming_overhead section but the candidate lost it");
  } else if (streaming != nullptr && base_streaming != nullptr) {
    double base_ratio = NumberOr(*base_streaming, "ratio", 0.0);
    double cand_ratio = NumberOr(*streaming, "ratio", 0.0);
    if (base_ratio <= 0 || cand_ratio <= 0) {
      Failf(r, "streaming_overhead ratio missing or non-positive (baseline %.3f, candidate %.3f)",
            base_ratio, cand_ratio);
    } else if (base_ratio - cand_ratio > kStreamingRatioTolerance * base_ratio) {
      Failf(r, "streaming overhead regressed: ratio %.3f vs baseline %.3f (%+.1f%%, tolerance "
               "%.0f%%)",
            cand_ratio, base_ratio, 100.0 * (cand_ratio - base_ratio) / base_ratio,
            100.0 * kStreamingRatioTolerance);
    } else {
      Notef(r, "streaming overhead ratio %.3f vs baseline %.3f (gated, within tolerance)",
            cand_ratio, base_ratio);
    }
  }
  // Wall-clock throughput is machine-dependent: informational only.
  double base_wps = NumberOr(baseline, "events_per_wall_sec", 0.0);
  double cand_wps = NumberOr(candidate, "events_per_wall_sec", 0.0);
  if (base_wps > 0 && cand_wps > 0 && std::fabs(cand_wps - base_wps) > 0.25 * base_wps) {
    Notef(r, "events_per_wall_sec %.0f vs baseline %.0f (not gated)", cand_wps, base_wps);
  }
}

// --- emeralds.bench.smp/1 ---

void CompareSmp(const JsonValue& baseline, const JsonValue& candidate,
                const CompareOptions& opt, CompareResult* r) {
  // The run is pure virtual time, so the throughput integers are
  // deterministic: any drift means partitioned-SMP behavior changed.
  const JsonValue* base_rows = baseline.Find("throughput");
  const JsonValue* cand_rows = candidate.Find("throughput");
  if (base_rows == nullptr || base_rows->type != JsonValue::Type::kArray ||
      cand_rows == nullptr || cand_rows->type != JsonValue::Type::kArray) {
    Failf(r, "throughput array missing");
    return;
  }
  if (base_rows->array.size() != cand_rows->array.size()) {
    Failf(r, "throughput row count differs: baseline %zu vs candidate %zu",
          base_rows->array.size(), cand_rows->array.size());
    return;
  }
  for (size_t i = 0; i < base_rows->array.size(); ++i) {
    const JsonValue& base = base_rows->array[i];
    const JsonValue& cand = cand_rows->array[i];
    double cores = NumberOr(base, "num_cores", -1);
    if (cores != NumberOr(cand, "num_cores", -2)) {
      Failf(r, "row %zu: num_cores differs (baseline %.0f vs candidate %.0f)", i, cores,
            NumberOr(cand, "num_cores", -2));
      continue;
    }
    if (!BoolOr(cand, "conserved", false)) {
      Failf(r, "%.0f-core candidate run is not cycle-conserved", cores);
    }
    for (const char* key : {"user_ns", "idle_ns", "ipis", "jobs_completed"}) {
      double base_v = NumberOr(base, key, -1);
      double cand_v = NumberOr(cand, key, -2);
      if (std::fabs(cand_v - base_v) > std::fabs(base_v) * opt.rel_tolerance) {
        Failf(r, "%.0f-core %s drifted: %.0f vs baseline %.0f (virtual time is deterministic; "
                 "regenerate the baseline if the workload changed)",
              cores, key, cand_v, base_v);
      } else if (cand_v != base_v) {
        Notef(r, "%.0f-core %s: %.0f vs baseline %.0f (within tolerance)", cores, key, cand_v,
              base_v);
      }
    }
  }
  // The scaling floor is absolute, like the fleet's wheel speedup.
  double ratio2 = NumberOr(candidate, "ratio_2core", -1);
  if (ratio2 < 1.7) {
    Failf(r, "2-core user-cycle scaling is %.3fx (floor 1.7x)", ratio2);
  }
  double base_ratio2 = NumberOr(baseline, "ratio_2core", 0.0);
  if (base_ratio2 > 0 && ratio2 < base_ratio2 * (1.0 - opt.rel_tolerance)) {
    Failf(r, "ratio_2core regressed: %.3f vs baseline %.3f", ratio2, base_ratio2);
  }
  // Admission counts are exact: the workloads and search are seeded.
  const JsonValue* base_adm = baseline.Find("admission");
  const JsonValue* cand_adm = candidate.Find("admission");
  const JsonValue* base_pts =
      base_adm != nullptr ? base_adm->Find("points") : nullptr;
  const JsonValue* cand_pts =
      cand_adm != nullptr ? cand_adm->Find("points") : nullptr;
  if (base_pts == nullptr || base_pts->type != JsonValue::Type::kArray || cand_pts == nullptr ||
      cand_pts->type != JsonValue::Type::kArray ||
      base_pts->array.size() != cand_pts->array.size()) {
    Failf(r, "admission points missing or count differs");
    return;
  }
  for (size_t i = 0; i < base_pts->array.size(); ++i) {
    for (const char* key : {"admitted_1core", "admitted_2core", "admitted_4core"}) {
      double base_v = NumberOr(base_pts->array[i], key, -1);
      double cand_v = NumberOr(cand_pts->array[i], key, -2);
      if (base_v != cand_v) {
        Failf(r, "admission point %zu: %s differs (%.0f vs baseline %.0f; the sweep is "
                 "seeded — regenerate the baseline if the search changed)",
              i, key, cand_v, base_v);
      }
    }
  }
}

}  // namespace

CompareResult CompareReports(const JsonValue& baseline, const JsonValue& candidate,
                             const CompareOptions& options) {
  CompareResult r;
  const JsonValue* base_schema = baseline.Find("schema");
  const JsonValue* cand_schema = candidate.Find("schema");
  if (base_schema == nullptr || cand_schema == nullptr ||
      base_schema->type != JsonValue::Type::kString ||
      cand_schema->type != JsonValue::Type::kString) {
    Failf(&r, "schema tag missing");
    return r;
  }
  if (base_schema->string != cand_schema->string) {
    Failf(&r, "schema mismatch: baseline %s vs candidate %s", base_schema->string.c_str(),
          cand_schema->string.c_str());
    return r;
  }
  if (base_schema->string == "emeralds.obs.cycles/1") {
    CompareCycles(baseline, candidate, options, &r);
  } else if (base_schema->string == "emeralds.bench.breakdown/1") {
    CompareBreakdown(baseline, candidate, options, &r);
  } else if (base_schema->string == "emeralds.fleet.run/1") {
    CompareFleet(baseline, candidate, options, &r);
  } else if (base_schema->string == "emeralds.bench.smp/1") {
    CompareSmp(baseline, candidate, options, &r);
  } else {
    Failf(&r, "schema %s is not gated by bench_compare", base_schema->string.c_str());
  }
  r.ok = r.failures.empty();
  return r;
}

CompareResult CompareReportFiles(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const CompareOptions& options) {
  CompareResult r;
  JsonValue docs[2];
  const std::string* paths[2] = {&baseline_path, &candidate_path};
  for (int i = 0; i < 2; ++i) {
    std::FILE* f = std::fopen(paths[i]->c_str(), "rb");
    if (f == nullptr) {
      Failf(&r, "cannot open %s", paths[i]->c_str());
      return r;
    }
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      text.append(buf, got);
    }
    std::fclose(f);
    std::string error;
    if (!JsonParse(text, &docs[i], &error)) {
      Failf(&r, "%s does not parse: %s", paths[i]->c_str(), error.c_str());
      return r;
    }
  }
  return CompareReports(docs[0], docs[1], options);
}

}  // namespace bench
}  // namespace emeralds
