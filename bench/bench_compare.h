// Perf-regression gate over the committed bench baselines.
//
// Compares a freshly produced report against the baseline committed at the
// repo root, dispatching on the schema tag:
//   emeralds.obs.cycles/1      — per-bucket cycle-attribution ledger
//     (BENCH_cycles.json). The run is pure virtual time, so elapsed_ns must
//     match exactly and every kernel-overhead bucket may grow at most
//     rel_tolerance (plus a small absolute slack for near-zero buckets).
//     The user and idle buckets are excluded: user time is the workload's,
//     and idle is the complement that *shrinks* when the kernel regresses.
//   emeralds.bench.breakdown/1 — CSD partition-search perf trajectory
//     (BENCH_breakdown.json). Work counters (full_evals) may grow at most
//     rel_tolerance and eval_reduction may shrink at most rel_tolerance;
//     wall-clock fields (wall_seconds, workloads_per_sec) are machine-
//     dependent and deliberately not gated.
//   emeralds.fleet.run/1       — fleet simulation throughput
//     (BENCH_fleet.json). The run configuration must match; the
//     deterministic aggregates (events_total, events_per_virtual_sec) are
//     held to rel_tolerance in both directions; the timer-wheel speedup at
//     10k pending timers has an absolute 5x floor; wall-clock events/sec is
//     informational only.
// Both comparisons also re-require the candidate's own invariants
// (conservation, zero reference mismatches) so a report that fails its own
// contract never passes the gate.

#ifndef BENCH_BENCH_COMPARE_H_
#define BENCH_BENCH_COMPARE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/json.h"

namespace emeralds {
namespace bench {

struct CompareOptions {
  // Maximum relative growth of a gated metric before the gate fails. 3% by
  // default, so an injected 5% scheduler-bucket regression reliably fails.
  double rel_tolerance = 0.03;
  // Absolute per-metric slack in nanoseconds for cycle buckets: keeps
  // near-zero buckets (a few charges total) from tripping on one extra
  // operation. Small against any real bucket.
  int64_t abs_slack_ns = 20000;
};

struct CompareResult {
  bool ok = false;
  std::vector<std::string> failures;  // gate-failing metric verdicts
  std::vector<std::string> notes;     // informational diffs (not gated)
};

// Compares two parsed reports with matching schema tags. Unknown or
// mismatched schemas fail with a diagnostic in `failures`.
CompareResult CompareReports(const JsonValue& baseline, const JsonValue& candidate,
                             const CompareOptions& options);

// File variant: parses both paths, then compares. I/O and parse errors are
// reported as failures.
CompareResult CompareReportFiles(const std::string& baseline_path,
                                 const std::string& candidate_path,
                                 const CompareOptions& options);

}  // namespace bench
}  // namespace emeralds

#endif  // BENCH_BENCH_COMPARE_H_
