#include "bench/breakdown_harness.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/analysis/breakdown.h"
#include "src/analysis/parallel.h"
#include "src/base/rng.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

int WorkloadsPerPoint() {
  const char* env = std::getenv("EMERALDS_WORKLOADS");
  if (env != nullptr) {
    int value = std::atoi(env);
    if (value > 0) {
      return value;
    }
  }
  return 60;
}

}  // namespace

void RunBreakdownFigure(const char* figure_name, int divide) {
  const int workloads = WorkloadsPerPoint();
  const CostModel cost = CostModel::MC68040_25MHz();
  const PolicySpec policies[] = {PolicySpec::Rm(), PolicySpec::Edf(), PolicySpec::Csd(2),
                                 PolicySpec::Csd(3), PolicySpec::Csd(4)};
  constexpr int kNumPolicies = 5;

  std::printf("%s: average breakdown utilization (%%), periods / %d\n", figure_name, divide);
  std::printf("(%d random workloads per point; paper used 500 — set EMERALDS_WORKLOADS)\n",
              workloads);
  std::printf("%4s", "n");
  for (const PolicySpec& policy : policies) {
    std::printf(" %8s", policy.Name());
  }
  std::printf("\n");

  Rng root(20260704);
  for (int n = 5; n <= 50; n += 5) {
    std::vector<double> sums(kNumPolicies, 0.0);
    std::vector<std::vector<double>> per_workload(workloads,
                                                  std::vector<double>(kNumPolicies, 0.0));
    ParallelFor(workloads, [&](int w) {
      Rng rng = root.Fork(static_cast<uint64_t>(n) * 10000 + divide * 1000 + w);
      TaskSet set = GenerateWorkload(rng, n).PeriodsDividedBy(divide);
      for (int p = 0; p < kNumPolicies; ++p) {
        per_workload[w][p] = ComputeBreakdown(set, policies[p], cost).utilization;
      }
    });
    for (int w = 0; w < workloads; ++w) {
      for (int p = 0; p < kNumPolicies; ++p) {
        sums[p] += per_workload[w][p];
      }
    }
    std::printf("%4d", n);
    for (int p = 0; p < kNumPolicies; ++p) {
      std::printf(" %8.1f", 100.0 * sums[p] / workloads);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace emeralds
