#include "bench/breakdown_harness.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_report.h"
#include "src/analysis/breakdown.h"
#include "src/analysis/parallel.h"
#include "src/base/rng.h"
#include "src/workload/workload.h"

namespace emeralds {
namespace {

constexpr int kNumPolicies = 5;
const PolicySpec kPolicies[kNumPolicies] = {PolicySpec::Rm(), PolicySpec::Edf(),
                                            PolicySpec::Csd(2), PolicySpec::Csd(3),
                                            PolicySpec::Csd(4)};

int WorkloadsPerPoint() {
  const char* env = std::getenv("EMERALDS_WORKLOADS");
  if (env != nullptr) {
    int value = std::atoi(env);
    if (value > 0) {
      return value;
    }
  }
  return 60;
}

// Workloads per point re-run on the naive reference engine (for the
// eval_reduction trajectory and the on-line equivalence check); 0 disables.
int ReferenceSample(int workloads) {
  int value = 4;
  const char* env = std::getenv("EMERALDS_BENCH_REF_SAMPLE");
  if (env != nullptr && std::atoi(env) >= 0) {
    value = std::atoi(env);
  }
  return value < workloads ? value : workloads;
}

// One workload's results. Padded to a cache line: the rows are the only
// cross-thread writes in the sweep, so padding keeps parallel workers from
// bouncing a shared line between cores.
struct alignas(64) WorkloadRow {
  double util[kNumPolicies] = {};
  BreakdownResult csd[3];  // CSD-2/3/4 results (seed chain + reference check)
  CsdSearchStats stats;
};

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

}  // namespace

void RunBreakdownFigure(const char* figure_name, int divide) {
  const int workloads = WorkloadsPerPoint();
  const int ref_sample = ReferenceSample(workloads);
  const CostModel cost = CostModel::MC68040_25MHz();

  std::printf("%s: average breakdown utilization (%%), periods / %d\n", figure_name, divide);
  std::printf("(%d random workloads per point; paper used 500 — set EMERALDS_WORKLOADS)\n",
              workloads);
  std::printf("%4s", "n");
  for (const PolicySpec& policy : kPolicies) {
    std::printf(" %8s", policy.Name());
  }
  std::printf("\n");

  BenchReport report;
  report.figure = figure_name;
  report.divide = divide;
  report.workloads_per_point = workloads;

  Rng root(20260704);
  for (int n = 5; n <= 50; n += 5) {
    auto start = std::chrono::steady_clock::now();
    std::vector<WorkloadRow> rows(workloads);
    ParallelFor(workloads, [&](int w) {
      Rng rng = root.Fork(static_cast<uint64_t>(n) * 10000 + divide * 1000 + w);
      TaskSet set = GenerateWorkload(rng, n).PeriodsDividedBy(divide);
      WorkloadRow& row = rows[w];
      for (int p = 0; p < kNumPolicies; ++p) {
        BreakdownOptions options;
        options.stats = &row.stats;
        if (kPolicies[p].kind == PolicySpec::Kind::kCsd && kPolicies[p].csd_queues == 4) {
          // Warm-start the CSD-4 hill climb from this workload's CSD-3
          // result instead of recomputing CSD-3 inside the search.
          options.csd_seed = &row.csd[1];
        }
        BreakdownResult result = ComputeBreakdown(set, kPolicies[p], cost, options);
        row.util[p] = result.utilization;
        if (kPolicies[p].kind == PolicySpec::Kind::kCsd) {
          row.csd[kPolicies[p].csd_queues - 2] = std::move(result);
        }
      }
    });
    double wall = Seconds(start);

    BenchPoint point;
    point.n = n;
    point.wall_seconds = wall;
    point.workloads_per_sec = wall > 0.0 ? workloads / wall : 0.0;
    std::vector<double> sums(kNumPolicies, 0.0);
    for (const WorkloadRow& row : rows) {
      for (int p = 0; p < kNumPolicies; ++p) {
        sums[p] += row.util[p];
      }
      point.evals.Add(row.stats);
    }
    for (int p = 0; p < kNumPolicies; ++p) {
      point.avg_breakdown_pct.emplace_back(kPolicies[p].Name(), 100.0 * sums[p] / workloads);
    }

    // Reference sample: re-run the first few workloads through the identical
    // search on the naive engine (unseeded CSD-4, the pre-engine baseline) to
    // record its evaluation counts and confirm the results match.
    point.reference_sample = ref_sample;
    auto ref_start = std::chrono::steady_clock::now();
    for (int w = 0; w < ref_sample; ++w) {
      Rng rng = root.Fork(static_cast<uint64_t>(n) * 10000 + divide * 1000 + w);
      TaskSet set = GenerateWorkload(rng, n).PeriodsDividedBy(divide);
      bool mismatch = false;
      for (int queues : {2, 3, 4}) {
        BreakdownOptions options;
        options.stats = &point.reference_evals;
        BreakdownResult ref =
            ComputeBreakdownReference(set, PolicySpec::Csd(queues), cost, options);
        const BreakdownResult& opt = rows[w].csd[queues - 2];
        if (ref.partition != opt.partition ||
            std::abs(ref.utilization - opt.utilization) > 1e-12) {
          mismatch = true;
        }
      }
      if (mismatch) {
        ++point.reference_mismatches;
      }
    }
    point.reference_wall_seconds = ref_sample > 0 ? Seconds(ref_start) : 0.0;
    if (ref_sample > 0 && point.evals.full_evals > 0) {
      double opt_per_workload = static_cast<double>(point.evals.full_evals) / workloads;
      double ref_per_workload =
          static_cast<double>(point.reference_evals.full_evals) / ref_sample;
      point.eval_reduction = ref_per_workload / opt_per_workload;
    }

    std::printf("%4d", n);
    for (int p = 0; p < kNumPolicies; ++p) {
      std::printf(" %8.1f", 100.0 * sums[p] / workloads);
    }
    std::printf("\n");
    std::printf("     [%.2fs, %.1f workloads/s; CSD evals/workload %.0f",
                wall, point.workloads_per_sec,
                static_cast<double>(point.evals.full_evals) / workloads);
    if (ref_sample > 0) {
      std::printf(" vs %.0f naive = %.1fx fewer%s",
                  static_cast<double>(point.reference_evals.full_evals) / ref_sample,
                  point.eval_reduction,
                  point.reference_mismatches == 0 ? "" : "; RESULT MISMATCH");
    }
    std::printf("]\n");
    std::fflush(stdout);

    report.points.push_back(std::move(point));
  }

  std::string json_path = BenchJsonPath("BENCH_breakdown.json");
  if (WriteBenchReport(report, json_path)) {
    std::printf("perf trajectory written to %s\n\n", json_path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n\n", json_path.c_str());
  }
}

}  // namespace emeralds
