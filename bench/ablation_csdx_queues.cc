// Ablation (Section 5.6): how many CSD queues are worth having?
//
// Sweeps CSD-x for x = 1..6 (x = 1 is plain RM; each additional queue costs
// 0.55 us per selection to parse) on short-period workloads where the effect
// is largest, and reports average breakdown utilization.
//
// Expected shape (paper): a significant jump from CSD-2 to CSD-3, minimal
// further gain at CSD-4, and eventually decline as the added schedulability
// overhead of many statically-ordered EDF queues plus the queue-parse cost
// outweighs the shrinking run-time savings ("as x approaches n, performance
// of CSD-x will degrade to that of RM").

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/analysis/breakdown.h"
#include "src/analysis/parallel.h"
#include "src/base/rng.h"
#include "src/workload/workload.h"

int main() {
  using namespace emeralds;
  const char* env = std::getenv("EMERALDS_WORKLOADS");
  const int workloads = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 40;
  const CostModel cost = CostModel::MC68040_25MHz();

  std::printf("CSD-x queue-count sweep: average breakdown utilization (%%)\n");
  std::printf("(periods / 3, %d workloads per point; x = 1 is plain RM)\n\n", workloads);
  std::printf("%4s", "n");
  for (int x = 1; x <= 6; ++x) {
    std::printf("   CSD-%d", x);
  }
  std::printf("\n");

  // Padded rows: parallel workers write only their own cache line.
  struct alignas(64) Row {
    double util[6] = {};
  };

  Rng root(555);
  for (int n : {20, 30, 40, 50}) {
    std::vector<Row> results(workloads);
    ParallelFor(workloads, [&](int w) {
      Rng rng = root.Fork(static_cast<uint64_t>(n) * 100 + w);
      TaskSet set = GenerateWorkload(rng, n).PeriodsDividedBy(3);
      BreakdownResult prev;
      for (int x = 1; x <= 6; ++x) {
        PolicySpec policy = x == 1 ? PolicySpec::Rm() : PolicySpec::Csd(x);
        BreakdownOptions options;
        if (x >= 4) {
          // Chain the seeds: CSD-(x-1)'s winning partition warm-starts the
          // CSD-x hill climb.
          options.csd_seed = &prev;
        }
        BreakdownResult result = ComputeBreakdown(set, policy, cost, options);
        results[w].util[x - 1] = result.utilization;
        if (x >= 2) {
          prev = std::move(result);
        }
      }
    });
    std::printf("%4d", n);
    for (int x = 0; x < 6; ++x) {
      double sum = 0.0;
      for (int w = 0; w < workloads; ++w) {
        sum += results[w].util[x];
      }
      std::printf(" %7.1f", 100.0 * sum / workloads);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nexpected shape: big gain RM->CSD-2->CSD-3, then diminishing returns\n");
  return 0;
}
