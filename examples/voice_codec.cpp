// Cellular-phone voice compression — the paper's hand-held application class
// ("voice compression in cellular phones"): a 50 Hz frame pipeline from a
// microphone driver through an encoder to the radio transmitter.
//
// Demonstrates mailbox IPC with blocking and timeouts, a user-level device
// driver on the transmit side (the FieldbusDevice stands in for the radio
// baseband), variable per-frame compute, and end-to-end latency tracking
// against the 20 ms frame deadline.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/base/rng.h"
#include "src/core/kernel.h"
#include "src/hal/devices.h"
#include "src/hal/hardware.h"

using namespace emeralds;

namespace {

struct VoiceFrame {
  uint32_t seq;
  int64_t captured_at_us;
  uint8_t samples[24];
};

}  // namespace

int main() {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Edf();
  Kernel kernel(hw, config);

  // The "radio": transmits at 1 Mbit/s, raises an IRQ per completed frame.
  FieldbusDevice::Config radio_config;
  radio_config.rx_period = Seconds(100);  // we only use the TX side
  FieldbusDevice radio(hw, radio_config);

  MailboxId raw_frames = kernel.CreateMailbox("raw", 4).value();
  MailboxId coded_frames = kernel.CreateMailbox("coded", 4).value();

  uint64_t frames_sent = 0;
  uint64_t frames_dropped = 0;
  int64_t worst_latency_us = 0;
  int64_t total_latency_us = 0;

  // Microphone capture: one frame every 20 ms (50 Hz), hard periodic.
  ThreadParams mic;
  mic.name = "mic";
  mic.period = Milliseconds(20);
  mic.body = [&](ThreadApi api) -> ThreadBody {
    uint32_t seq = 0;
    for (;;) {
      VoiceFrame frame{};
      frame.seq = seq++;
      frame.captured_at_us = api.now().micros();
      co_await api.Compute(Microseconds(300));  // DMA setup + copy-out
      Status status = co_await api.TrySend(
          raw_frames, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&frame),
                                               sizeof(frame)));
      if (status != Status::kOk) {
        ++frames_dropped;  // encoder fell behind: drop, never stall capture
      }
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(mic);

  // Encoder: data-dependent compute (4-9 ms per frame) — the kind of
  // variable load that makes static cyclic schedules painful (Section 5).
  ThreadParams encoder;
  encoder.name = "encoder";
  encoder.period = Milliseconds(20);
  encoder.body = [&](ThreadApi api) -> ThreadBody {
    Rng rng(42);
    for (;;) {
      VoiceFrame frame;
      RecvResult r = co_await api.Recv(
          raw_frames,
          std::span<uint8_t>(reinterpret_cast<uint8_t*>(&frame), sizeof(frame)), kNoWait);
      if (r.status == Status::kOk) {
        co_await api.Compute(Microseconds(rng.UniformInt(4000, 9000)));
        co_await api.Send(coded_frames,
                          std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&frame),
                                                   sizeof(frame)));
      }
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(encoder);

  // Radio TX driver (aperiodic user-level driver): pulls encoded frames,
  // queues them on the device, waits for the TX-done interrupt.
  ThreadParams tx;
  tx.name = "radio-tx";
  tx.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      VoiceFrame frame;
      RecvResult r = co_await api.Recv(
          coded_frames,
          std::span<uint8_t>(reinterpret_cast<uint8_t*>(&frame), sizeof(frame)));
      if (r.status != Status::kOk) {
        continue;
      }
      FieldbusDevice::Frame wire;
      wire.id = static_cast<uint16_t>(frame.seq & 0x7ff);
      for (int i = 0; i < 8; ++i) {
        wire.payload.push_back(frame.samples[i]);
      }
      co_await api.Compute(Microseconds(120));  // device programming
      while (!radio.WriteFrame(wire)) {
        co_await api.Sleep(Microseconds(200));  // transmitter busy
      }
      co_await api.WaitIrq(kIrqFieldbus);  // TX-done
      radio.ClearTxDone();
      int64_t latency = api.now().micros() - frame.captured_at_us;
      worst_latency_us = std::max(worst_latency_us, latency);
      total_latency_us += latency;
      ++frames_sent;
    }
  };
  ThreadId tx_id = kernel.CreateThread(tx).value();
  kernel.BindIrqThread(tx_id, kIrqFieldbus);

  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(10));

  const KernelStats& stats = kernel.stats();
  std::printf("voice pipeline, 10 s at 50 Hz:\n");
  std::printf("  frames sent       %llu (dropped at capture: %llu)\n",
              (unsigned long long)frames_sent, (unsigned long long)frames_dropped);
  std::printf("  latency           avg %.2f ms, worst %.2f ms (frame budget 20 ms)\n",
              frames_sent > 0 ? total_latency_us / 1000.0 / frames_sent : 0.0,
              worst_latency_us / 1000.0);
  std::printf("  deadline misses   %llu\n", (unsigned long long)stats.deadline_misses);
  std::printf("  mailbox traffic   %llu sends, %llu receives, %llu recv timeouts\n",
              (unsigned long long)stats.mailbox_sends,
              (unsigned long long)stats.mailbox_receives,
              (unsigned long long)kernel.mailbox(raw_frames).recv_timeouts);
  std::printf("  radio             %llu frames on the wire\n",
              (unsigned long long)radio.frames_sent());
  bool ok = frames_sent > 480 && worst_latency_us < 20000 && stats.deadline_misses == 0;
  std::printf("pipeline %s\n", ok ? "healthy" : "DEGRADED");
  return ok ? 0 : 1;
}
