// Workload explorer — the off-line configuration tool a deployment would
// run before flashing a node.
//
// Generates (or loads Table 2 as) a workload, runs the overhead-aware
// schedulability analysis for every scheduler, performs the CSD allocation
// search, and then *verifies the chosen configuration by executing it* on the
// calibrated kernel, printing the per-thread outcome.
//
//   workload_explorer [n] [seed] [divide]
//   workload_explorer table2
//
// Examples:
//   ./build/examples/workload_explorer            # 12 tasks, seed 1
//   ./build/examples/workload_explorer 30 7 3     # 30 tasks, seed 7, periods/3
//   ./build/examples/workload_explorer table2     # the paper's Table 2

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/analysis/breakdown.h"
#include "src/analysis/cyclic.h"
#include "src/core/taskset_runner.h"
#include "src/hal/hardware.h"
#include "src/workload/workload.h"

using namespace emeralds;

int main(int argc, char** argv) {
  TaskSet set;
  if (argc > 1 && std::strcmp(argv[1], "table2") == 0) {
    set = Table2Workload();
    std::printf("workload: Table 2 (reconstructed)\n");
  } else {
    int n = argc > 1 ? std::atoi(argv[1]) : 12;
    uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;
    int divide = argc > 3 ? std::atoi(argv[3]) : 1;
    if (n < 1 || n > 100 || divide < 1) {
      std::fprintf(stderr, "usage: %s [n 1..100] [seed] [divide>=1] | table2\n", argv[0]);
      return 2;
    }
    Rng rng(seed);
    set = GenerateWorkload(rng, n).PeriodsDividedBy(divide);
    std::printf("workload: n=%d seed=%llu periods/%d\n", n,
                static_cast<unsigned long long>(seed), divide);
  }
  std::printf("utilization: %.1f%%\n\n", 100.0 * set.Utilization());

  // --- Analysis across schedulers ---
  CostModel cost = CostModel::MC68040_25MHz();
  std::printf("breakdown utilization (68040 cost model):\n");
  BreakdownResult csd3;
  for (PolicySpec policy : {PolicySpec::Rm(), PolicySpec::RmHeap(), PolicySpec::Edf(),
                            PolicySpec::Csd(2), PolicySpec::Csd(3)}) {
    BreakdownResult result = ComputeBreakdown(set, policy, cost);
    std::printf("  %-8s %6.1f%%", policy.Name(), 100.0 * result.utilization);
    if (!result.partition.empty()) {
      std::printf("   queues:");
      for (int size : result.partition) {
        std::printf(" %d", size);
      }
    }
    std::printf("\n");
    if (policy.kind == PolicySpec::Kind::kCsd && policy.csd_queues == 3) {
      csd3 = result;
    }
  }
  CyclicSchedule cyclic = BuildCyclicSchedule(set);
  if (cyclic.feasible) {
    std::printf("  %-8s builds: frame %.1f ms, %lld-entry table (%lld bytes)\n", "cyclic",
                cyclic.frame_us / 1000.0, static_cast<long long>(cyclic.table_entries),
                static_cast<long long>(cyclic.TableBytes()));
  } else {
    std::printf("  %-8s rejected: %s\n", "cyclic", CyclicRejectToString(cyclic.reject));
  }

  // --- Execute the best CSD-3 configuration ---
  if (csd3.partition.empty() || csd3.utilization <= 0.0) {
    std::printf("\nno feasible CSD-3 allocation at this utilization; nothing to run\n");
    return 1;
  }
  // Deploy within the analysed envelope: if the raw workload exceeds the
  // CSD-3 breakdown, scale execution times down to 97% of it.
  double deploy_util = set.Utilization();
  if (deploy_util > 0.97 * csd3.utilization) {
    double scale = 0.97 * csd3.utilization / deploy_util;
    set = set.ScaledBy(scale);
    std::printf("\nworkload exceeds the CSD-3 breakdown: scaled execution times by %.2f "
                "(deploying at U = %.1f%%)\n", scale, 100.0 * set.Utilization());
  }
  std::printf("\nrunning 2 s on the kernel under CSD-3 with the selected allocation...\n\n");
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(3);
  config.cost_model = cost;
  Kernel kernel(hw, config);
  std::vector<ThreadId> ids = SpawnTaskSet(kernel, set, BandsFromPartition(csd3.partition));
  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(2));
  kernel.DumpThreads();
  std::printf("\n");
  PrintKernelStats(kernel.stats());
  TaskSetRunStats run = CollectRunStats(kernel, ids);
  std::printf("\nverdict: %s (%llu jobs, %llu misses)\n",
              run.deadline_misses == 0 ? "configuration meets all deadlines" : "MISSES DEADLINES",
              static_cast<unsigned long long>(run.jobs_completed),
              static_cast<unsigned long long>(run.deadline_misses));
  return run.deadline_misses == 0 ? 0 : 1;
}
