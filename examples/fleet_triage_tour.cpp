// Fleet triage tour — the fleet-wide telemetry plane end to end.
//
// Runs a 24-node deterministic fleet with node 7 deliberately overloaded
// (every compute cost multiplied 6x), then walks the three layers the
// telemetry plane provides:
//
//   1. Merged percentile tables: every node folds its Log2Histogram sketches
//      into the fleet histogram losslessly, so the p50/p90/p99 printed here
//      are exact bucket bounds over the union of all per-node samples — the
//      same numbers a single observer of every job would have computed.
//   2. Anomaly triage: per-metric worst-offender tables plus median/MAD
//      outlier flags. The overloaded node must surface at the top.
//   3. Black-box flight recorder: the fleet runner re-runs the worst nodes
//      deterministically and snapshots their final trace window, stats, and
//      chain analysis into fleet_triage_tour_artifacts/node-N/.
//
// Exit status is nonzero if the overloaded node is not the top outlier or
// no black-box bundle was written for it.

#include <cstdio>
#include <string>

#include "src/fleet/fleet.h"
#include "src/fleet/triage.h"
#include "src/obs/histogram.h"
#include "src/obs/telemetry.h"

using namespace emeralds;
using namespace emeralds::fleet;

int main() {
  constexpr int kSickNode = 7;
  FleetOptions opt;
  opt.instances = 24;
  opt.workers = 4;
  opt.seed = 2026;
  opt.run_duration = Milliseconds(40);
  opt.slice = Milliseconds(5);
  opt.overload_node = kSickNode;
  opt.overload_factor = 6;
  opt.artifacts_dir = "fleet_triage_tour_artifacts";
  opt.max_blackboxes = 3;

  FleetResult result = RunFleet(opt);
  std::printf("fleet: %d nodes, %llu events, digest 0x%016llx, %d anomalous\n",
              result.instances, static_cast<unsigned long long>(result.events_total),
              static_cast<unsigned long long>(result.fleet_digest), result.nodes_anomalous);

  // Layer 1: exact merged percentiles. Each bound is the upper edge of the
  // first log2 bucket whose cumulative count covers the fraction, clamped by
  // the exact max — a guaranteed upper bound on the true percentile.
  const obs::FleetTelemetry& t = result.telemetry;
  std::printf("\nmerged job response times (%d nodes, %llu samples):\n", t.nodes_collected,
              static_cast<unsigned long long>(t.response.count()));
  for (double fraction : {0.5, 0.9, 0.99}) {
    std::printf("  p%-4g <= %6lld us\n", fraction * 100,
                static_cast<long long>(t.response.PercentileBound(fraction).micros()));
  }
  for (const obs::ChainTelemetry& c : t.chains) {
    std::printf("  chain %-14s %5llu completed, %4llu overruns, e2e p99 <= %lld us\n",
                c.name.c_str(), static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.overruns),
                static_cast<long long>(c.e2e.PercentileBound(0.99).micros()));
  }
  if (t.headroom_seen) {
    std::printf("  worst deadline headroom: %lld us at node %d\n",
                static_cast<long long>(t.headroom_min.micros()), t.headroom_min_node);
  }

  // Layer 2: triage. One glance answers "which node do I look at first?".
  FleetTriage triage = ComputeFleetTriage(result);
  std::printf("\ntriage (median/MAD outlier flags, top offenders first):\n");
  for (const TriageMetric& m : triage.metrics) {
    if (m.top.empty()) {
      continue;
    }
    std::printf("  %-20s median %llu, mad %llu, %d outlier(s):", m.name.c_str(),
                static_cast<unsigned long long>(m.median),
                static_cast<unsigned long long>(m.mad), m.outliers);
    for (const TriageEntry& e : m.top) {
      std::printf(" node%d=%llu%s", e.node, static_cast<unsigned long long>(e.value),
                  e.outlier ? "*" : "");
    }
    std::printf("\n");
  }
  std::printf("  look-here-first:");
  for (int node : triage.outlier_nodes) {
    std::printf(" %d", node);
  }
  std::printf("\n");

  // Layer 3: the flight recorder already captured the worst nodes.
  std::printf("\nblack boxes (deterministic re-runs, worst first):\n");
  for (int node : result.blackbox_nodes) {
    std::printf("  %s/node-%d/{repro.txt,trace.csv,blackbox.json}\n",
                result.artifacts_dir.c_str(), node);
  }

  bool sick_flagged = !triage.outlier_nodes.empty() && triage.outlier_nodes[0] == kSickNode;
  bool sick_boxed = !result.blackbox_nodes.empty() && result.blackbox_nodes[0] == kSickNode;
  std::printf("\noverloaded node %d: top outlier %s, black-boxed %s\n", kSickNode,
              sick_flagged ? "yes" : "NO", sick_boxed ? "yes" : "NO");
  return sick_flagged && sick_boxed ? 0 : 1;
}
