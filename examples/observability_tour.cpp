// Observability tour — the src/obs/ pipeline end to end on one contended
// workload.
//
// Three periodic tasks share a semaphore-protected sensor object; the
// mid-priority task occasionally overruns, so the run has preemptions,
// blocking, priority inheritance, and a CSE early-PI or two. The example:
//   1. enables the trace ring and the periodic KernelStats snapshot sampler,
//   2. runs the workload for 200 ms,
//   3. replays the trace through the analyzer and prints per-task
//      response/blocking histograms and the invariant verdict,
//   4. writes observability_tour.{trace.csv,perfetto.json,run.json} into the
//      current directory — open the perfetto file at ui.perfetto.dev, feed
//      the CSV + run report to trace_inspect.

#include <cstdio>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/taskset_runner.h"
#include "src/hal/hardware.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/trace_analyzer.h"

using namespace emeralds;

int main() {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Rm();
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 8192;
  config.default_sem_mode = SemMode::kCse;
  Kernel kernel(hw, config);
  kernel.EnableStatsSampling(Milliseconds(20), 32);

  SemId sensor = kernel.CreateSemaphore("sensor", 1).value();
  std::vector<ThreadId> ids;

  // High-rate control task: short hold on the sensor lock every period.
  ThreadParams control;
  control.name = "control";
  control.period = Milliseconds(5);
  control.body = [sensor](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Microseconds(300));
      co_await api.Acquire(sensor);
      co_await api.Compute(Microseconds(200));
      co_await api.Release(sensor);
      co_await api.WaitNextPeriod(sensor);  // CSE hint: next lock is `sensor`
    }
  };
  ids.push_back(kernel.CreateThread(control).value());

  // Mid-priority filter: holds the lock across the control task's release,
  // so control contends, priority inheritance kicks in, and the CSE hint on
  // control's WaitNextPeriod converts wakeups into early-PI grants.
  ThreadParams filter;
  filter.name = "filter";
  filter.period = Milliseconds(20);
  filter.body = [sensor](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(sensor);
      co_await api.Compute(Milliseconds(6));
      co_await api.Release(sensor);
      co_await api.Compute(Milliseconds(1));
      co_await api.WaitNextPeriod(sensor);
    }
  };
  ids.push_back(kernel.CreateThread(filter).value());

  // Background logger: long compute, frequently preempted.
  ThreadParams logger;
  logger.name = "logger";
  logger.period = Milliseconds(50);
  logger.body = [](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Compute(Milliseconds(8));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(logger).value());

  kernel.Start();
  kernel.RunUntil(Instant() + Milliseconds(200));

  // --- Replay the trace and print what the ring alone cannot tell you ---
  obs::TraceAnalysis analysis = obs::AnalyzeTrace(kernel.trace());
  std::printf("trace: %zu events retained, %llu dropped; invariants %s\n",
              kernel.trace().size(),
              static_cast<unsigned long long>(kernel.trace().dropped()),
              analysis.ok() ? "ok" : "VIOLATED");
  for (const obs::TaskMetrics& t : analysis.tasks) {
    if (!t.seen) {
      continue;
    }
    const Tcb& tcb = kernel.thread(ThreadId(t.thread_id));
    std::printf("%-8s released %llu, completed %llu, preempted %llu\n", tcb.name,
                static_cast<unsigned long long>(t.releases),
                static_cast<unsigned long long>(t.completes),
                static_cast<unsigned long long>(t.preemptions));
    if (t.response.count() > 0) {
      std::printf("  response: mean %.0f us, p99 <= %.0f us, max %.0f us\n",
                  t.response.mean().micros_f(),
                  t.response.ApproxPercentile(0.99).micros_f(), t.response.max().micros_f());
    }
    if (t.blocking.count() > 0) {
      std::printf("  blocking: %llu waits, mean %.0f us, max %.0f us\n",
                  static_cast<unsigned long long>(t.blocking.count()),
                  t.blocking.mean().micros_f(), t.blocking.max().micros_f());
    }
  }
  std::printf("CSE early-PI grants: %llu, max PI chain depth: %d\n",
              static_cast<unsigned long long>(analysis.cse_early_pi),
              analysis.max_pi_chain_depth);

  // --- Snapshot time series: context-switch rate per 20 ms interval ---
  const StatsSampler* sampler = kernel.stats_sampler();
  std::printf("context switches per 20 ms interval:");
  for (size_t i = 0; i < sampler->size(); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(sampler->at(i).context_switches));
  }
  std::printf("\n");

  // --- Export the bundle ---
  std::FILE* csv = std::fopen("observability_tour.trace.csv", "w");
  if (csv != nullptr) {
    kernel.trace().ExportCsv(csv);
    std::fclose(csv);
  }
  std::FILE* pf = std::fopen("observability_tour.perfetto.json", "w");
  if (pf != nullptr) {
    obs::ExportPerfettoJson(kernel, pf);
    std::fclose(pf);
  }
  obs::ObsRunInfo info;
  info.label = "observability_tour";
  info.scheduler = "RM";
  info.run_duration = Milliseconds(200);
  obs::WriteObsRunReportFile("observability_tour.run.json", info, kernel, ids);
  std::printf("wrote observability_tour.{trace.csv,perfetto.json,run.json}\n");
  return analysis.ok() ? 0 : 1;
}
