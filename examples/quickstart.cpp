// Quickstart: a minimal EMERALDS node.
//
// Builds a kernel with the CSD-2 scheduler, three cooperating threads, one
// semaphore-protected shared object, a state message, and a mailbox — the
// core services of Figure 1 — runs one simulated second, and prints what
// happened.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"

using namespace emeralds;

int main() {
  // 1. The virtual hardware platform and a kernel on top of it. The default
  //    cost model charges kernel operations the paper's 25 MHz 68040 prices;
  //    CSD-2 = one dynamic-priority EDF queue over one fixed-priority queue.
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(2);
  Kernel kernel(hw, config);

  // 2. Kernel objects (statically created before Start, as in a real
  //    small-memory deployment).
  SemId position_lock = kernel.CreateSemaphore("position").value();
  SmsgId speed_msg = kernel.CreateStateMessage("speed", sizeof(double), 4).value();
  MailboxId log_box = kernel.CreateMailbox("log", 8).value();

  double shared_position = 0.0;  // the semaphore-protected "object state"

  // 3. A fast sensor task (5 ms period, DP queue): publishes a speed sample
  //    through the non-blocking state message.
  ThreadParams sensor;
  sensor.name = "sensor";
  sensor.period = Milliseconds(5);
  sensor.band = 0;  // dynamic-priority (EDF) queue
  sensor.body = [&](ThreadApi api) -> ThreadBody {
    double speed = 0.0;
    for (;;) {
      co_await api.Compute(Microseconds(150));  // sample the hardware
      speed = 100.0 + 0.1 * static_cast<double>(api.job_number() % 50);
      co_await api.StateWrite(speed_msg,
                              std::span<const uint8_t>(
                                  reinterpret_cast<const uint8_t*>(&speed), sizeof(speed)));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(sensor);

  // 4. A control task (10 ms period, DP queue): reads the latest speed,
  //    updates the protected object. The hint on WaitNextPeriod is what the
  //    paper's code parser would insert — it lets the kernel eliminate a
  //    context switch when the lock is held at release time (Section 6.2).
  ThreadParams control;
  control.name = "control";
  control.period = Milliseconds(10);
  control.band = 0;
  control.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      double speed = 0.0;
      co_await api.StateRead(speed_msg,
                             std::span<uint8_t>(reinterpret_cast<uint8_t*>(&speed),
                                                sizeof(speed)));
      co_await api.Acquire(position_lock);
      co_await api.Compute(Microseconds(400));  // control-law computation
      shared_position += speed * 0.01;
      co_await api.Release(position_lock);
      co_await api.WaitNextPeriod(position_lock);  // CSE hint
    }
  };
  kernel.CreateThread(control);

  // 5. A slow logger (100 ms period, fixed-priority queue): samples the
  //    object and reports via the mailbox.
  ThreadParams logger;
  logger.name = "logger";
  logger.period = Milliseconds(100);
  logger.band = -1;  // fixed-priority (RM) queue
  logger.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(position_lock);
      double snapshot = shared_position;
      co_await api.Release(position_lock);
      co_await api.Send(log_box, std::span<const uint8_t>(
                                     reinterpret_cast<const uint8_t*>(&snapshot),
                                     sizeof(snapshot)));
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(logger);

  // 6. An aperiodic consumer draining the log mailbox.
  ThreadParams sink;
  sink.name = "sink";
  sink.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      double value = 0.0;
      RecvResult r = co_await api.Recv(
          log_box, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), sizeof(value)));
      if (r.status == Status::kOk) {
        std::printf("[%7.1f ms] log: position = %.2f\n", api.now().millis_f(), value);
      }
    }
  };
  kernel.CreateThread(sink);

  // 7. Run one simulated second.
  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(1));

  const KernelStats& stats = kernel.stats();
  std::printf("\nafter 1 s simulated:\n");
  std::printf("  jobs completed     %llu (deadline misses: %llu)\n",
              (unsigned long long)stats.jobs_completed,
              (unsigned long long)stats.deadline_misses);
  std::printf("  context switches   %llu (saved by CSE: %llu)\n",
              (unsigned long long)stats.context_switches,
              (unsigned long long)stats.cse_switches_saved);
  std::printf("  state msg writes   %llu, reads %llu\n",
              (unsigned long long)stats.smsg_writes, (unsigned long long)stats.smsg_reads);
  std::printf("  kernel overhead    %.2f ms of %.0f ms (%.2f%%)\n",
              stats.total_charged().millis_f(), kernel.now().millis_f(),
              100.0 * stats.total_charged().seconds_f() / kernel.now().millis_f() * 1000.0);
  return 0;
}
