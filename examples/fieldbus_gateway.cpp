// Fieldbus gateway node — the paper's distributed-control setting: one node
// of a 5-10 node system on a 1 Mbit/s fieldbus (Section 2), with memory
// protection between the driver and application processes.
//
// Demonstrates:
//   * a user-level fieldbus RX driver in its own process, demultiplexing
//     frames into per-signal state messages (threads "talking directly to
//     network device drivers" — no protocol stack, Section 3),
//   * application control tasks in a second process reading those state
//     messages at their own rates (single-writer/multi-reader, non-blocking),
//   * object ACLs: the application process cannot write the driver's state
//     messages,
//   * a condition variable broadcasting a configuration change,
//   * shared-memory mapping with per-process write rights.

#include <cstdio>
#include <cstring>

#include "src/core/kernel.h"
#include "src/hal/devices.h"
#include "src/hal/hardware.h"

using namespace emeralds;

int main() {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(2);
  Kernel kernel(hw, config);

  // Two protection domains.
  ProcessId driver_proc = kernel.CreateProcess("driver").value();
  ProcessId app_proc = kernel.CreateProcess("app").value();

  // The bus: frames every 4 ms (+ jitter), CAN-style ids.
  FieldbusDevice::Config bus_config;
  bus_config.rx_period = Milliseconds(4);
  bus_config.rx_jitter = Milliseconds(1);
  bus_config.seed = 7;
  FieldbusDevice bus(hw, bus_config);

  // Per-signal state messages: only the driver process may write them.
  AccessPolicy both;  // read access checks are per-use; writes are enforced
                      // by the single-writer rule, claimed by the driver.
  SmsgId signals[4];
  for (int i = 0; i < 4; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "signal%d", i);
    signals[i] = kernel.CreateStateMessage(name, 8, 4, both).value();
  }

  // Shared status page: app may read, only the driver may write.
  RegionId status_page = kernel.CreateRegion("status", 64).value();
  kernel.MapRegion(driver_proc, status_page, true, true);
  kernel.MapRegion(app_proc, status_page, true, false);

  SemId config_lock = kernel.CreateSemaphore("config").value();
  CondvarId config_changed = kernel.CreateCondvar("config-changed").value();
  int config_generation = 0;

  // --- RX driver thread (driver process, DP queue) ---
  ThreadParams rx;
  rx.name = "bus-rx";
  rx.process = driver_proc;
  rx.band = 0;
  rx.body = [&](ThreadApi api) -> ThreadBody {
    uint64_t frames = 0;
    for (;;) {
      co_await api.WaitIrq(kIrqFieldbus);
      while (bus.rx_ready()) {
        FieldbusDevice::Frame frame = bus.ReadFrame();
        co_await api.Compute(Microseconds(80));  // frame parsing
        uint64_t value = 0;
        for (size_t b = 0; b < frame.payload.size(); ++b) {
          value |= static_cast<uint64_t>(frame.payload[b]) << (8 * b);
        }
        SmsgId target = signals[frame.id % 4];
        co_await api.StateWrite(target,
                                std::span<const uint8_t>(
                                    reinterpret_cast<const uint8_t*>(&value), sizeof(value)));
        ++frames;
        auto page = api.RegionData(status_page, /*write=*/true);
        std::memcpy(page.data(), &frames, sizeof(frames));
      }
    }
  };
  ThreadId rx_id = kernel.CreateThread(rx).value();
  kernel.BindIrqThread(rx_id, kIrqFieldbus);

  // --- Application control tasks (app process, mixed queues) ---
  uint64_t reads_ok = 0;
  uint64_t stale_reads = 0;
  Status app_write_attempt = Status::kOk;
  int64_t task_periods_ms[3] = {5, 20, 100};
  for (int i = 0; i < 3; ++i) {
    ThreadParams task;
    task.name = "control";
    task.process = app_proc;
    task.period = Milliseconds(task_periods_ms[i]);
    task.band = i == 0 ? 0 : -1;
    SmsgId source = signals[i];
    task.body = [&, source, i](ThreadApi api) -> ThreadBody {
      uint64_t last_seq = 0;
      for (;;) {
        uint64_t value = 0;
        StateReadResult r = co_await api.StateRead(
            source, std::span<uint8_t>(reinterpret_cast<uint8_t*>(&value), sizeof(value)));
        if (r.status == Status::kOk) {
          ++reads_ok;
          if (r.sequence == last_seq) {
            ++stale_reads;  // no new frame since our last period: fine
          }
          last_seq = r.sequence;
        }
        if (i == 0 && api.job_number() == 100) {
          // The app tries to hijack a driver-owned state message once: the
          // single-writer rule rejects it.
          uint64_t rogue = 0xdead;
          app_write_attempt = co_await api.StateWrite(
              signals[3], std::span<const uint8_t>(
                              reinterpret_cast<const uint8_t*>(&rogue), sizeof(rogue)));
        }
        co_await api.Compute(Microseconds(300 + 200 * i));
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(task);
  }

  // --- Configuration manager: bumps the generation once a second ---
  ThreadParams manager;
  manager.name = "config-mgr";
  manager.process = app_proc;
  manager.period = Seconds(1);
  manager.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.Acquire(config_lock);
      ++config_generation;
      co_await api.Broadcast(config_changed);
      co_await api.Release(config_lock);
      co_await api.WaitNextPeriod();
    }
  };
  kernel.CreateThread(manager);

  // A watcher blocked on the condvar, re-armed each generation.
  int generations_seen = 0;
  ThreadParams watcher;
  watcher.name = "watcher";
  watcher.process = app_proc;
  watcher.body = [&](ThreadApi api) -> ThreadBody {
    int last = 0;
    for (;;) {
      co_await api.Acquire(config_lock);
      while (config_generation == last) {
        co_await api.Wait(config_changed, config_lock);
      }
      last = config_generation;
      ++generations_seen;
      co_await api.Release(config_lock);
    }
  };
  kernel.CreateThread(watcher);

  // The driver must claim the state messages before the app runs, so write a
  // first value from the kernel side: claim writer identity via the RX
  // thread's first frames instead — the bus starts immediately.
  bus.Start();
  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(5));

  const KernelStats& stats = kernel.stats();
  uint64_t frames_counted = 0;
  // The status page is plain shared memory: read it back from the host side.
  std::memcpy(&frames_counted, kernel.RegionDataFor(app_proc, status_page, false).data(),
              sizeof(frames_counted));
  std::printf("gateway node, 5 s simulated:\n");
  std::printf("  bus frames        %llu received, %llu overruns, %llu counted on page\n",
              (unsigned long long)bus.frames_received(), (unsigned long long)bus.rx_overruns(),
              (unsigned long long)frames_counted);
  std::printf("  signal reads      %llu ok (%llu with no fresh frame)\n",
              (unsigned long long)reads_ok, (unsigned long long)stale_reads);
  std::printf("  app rogue write   %s (expected kPermissionDenied)\n",
              StatusToString(app_write_attempt));
  std::printf("  config changes    %d broadcast, %d observed\n", config_generation,
              generations_seen);
  std::printf("  deadline misses   %llu\n", (unsigned long long)stats.deadline_misses);
  bool ok = app_write_attempt == Status::kPermissionDenied && generations_seen >= 4 &&
            stats.deadline_misses == 0 && frames_counted > 0;
  std::printf("gateway %s\n", ok ? "healthy" : "DEGRADED");
  return ok ? 0 : 1;
}
