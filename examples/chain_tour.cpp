// Chain tour — end-to-end causal event-chain tracing on a deterministic
// sensor-to-actuator pipeline.
//
// Three declared chains cross the kernel's IPC surfaces:
//   irq-to-actuator:  fieldbus IRQ -> driver thread -> state-message write
//                     -> actuator's read (two hops, 15 ms SLO)
//   sensor-publish:   sensor task's job release -> its state-message write
//                     -> any reader (two hops, 20 ms SLO)
//   tick:             user timer -> counting-sem handoff to the pacer (one
//                     hop, 5 ms SLO)
//
// The kernel stamps each producing operation with a causal token and carries
// it through blocking/wakeup; obs::AnalyzeChains reconstructs the declared
// chains from the paired kChainEmit/kChainConsume events. The example prints
// per-chain latency breakdowns, re-verifies that every chain's end-to-end
// total equals the sum of its per-hop queue/exec totals exactly (the
// intervals telescope, so this is an equality, not a tolerance), and writes
// chain_tour.{trace.csv,perfetto.json,run.json,chains.json} into the current
// directory. Exit status is nonzero on any chain violation, orphan hop,
// incomplete verification, or a chain that never completed an instance.

#include <cstdio>
#include <vector>

#include "src/core/kernel.h"
#include "src/hal/hardware.h"
#include "src/obs/chains.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/trace_analyzer.h"

using namespace emeralds;

int main() {
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Rm();
  config.cost_model = CostModel::MC68040_25MHz();
  config.trace_capacity = 16384;

  {
    char irq_channel[16];
    std::snprintf(irq_channel, sizeof(irq_channel), "irq:%d", kIrqFieldbus);
    ChainSpec irq_chain;
    irq_chain.name = "irq-to-actuator";
    irq_chain.deadline = Milliseconds(15);
    irq_chain.stages.push_back(ChainStageSpec{irq_channel, "driver"});
    irq_chain.stages.push_back(ChainStageSpec{"smsg:fieldbus", "actuator"});
    config.chains.push_back(irq_chain);

    ChainSpec sensor_chain;
    sensor_chain.name = "sensor-publish";
    sensor_chain.deadline = Milliseconds(20);
    sensor_chain.stages.push_back(ChainStageSpec{"release:sensor", "sensor"});
    sensor_chain.stages.push_back(ChainStageSpec{"smsg:state", ""});
    config.chains.push_back(sensor_chain);

    ChainSpec tick_chain;
    tick_chain.name = "tick";
    tick_chain.deadline = Milliseconds(5);
    tick_chain.stages.push_back(ChainStageSpec{"sem:tick", "pacer"});
    config.chains.push_back(tick_chain);
  }

  Kernel kernel(hw, config);
  kernel.EnableStatsSampling(Milliseconds(20), 32);

  SmsgId fieldbus = kernel.CreateStateMessage("fieldbus", 16, 2).value();
  SmsgId state = kernel.CreateStateMessage("state", 16, 2).value();
  SemId tick = kernel.CreateSemaphore("tick", 0).value();
  TimerId timer = kernel.CreateTimer("tick_timer", tick).value();
  std::vector<ThreadId> ids;

  // The fieldbus driver: woken by the IRQ, republishes the frame as a
  // state message. First hop of irq-to-actuator.
  ThreadParams driver;
  driver.name = "driver";
  driver.body = [fieldbus](ThreadApi api) -> ThreadBody {
    uint8_t frame[8] = {};
    for (;;) {
      Status s = co_await api.WaitIrq(kIrqFieldbus);
      if (s != Status::kOk) {
        break;
      }
      co_await api.Compute(Microseconds(150));
      ++frame[0];
      co_await api.StateWrite(fieldbus, std::span<const uint8_t>(frame, sizeof(frame)));
    }
  };
  ThreadId driver_id = kernel.CreateThread(driver).value();
  ids.push_back(driver_id);
  kernel.BindIrqThread(driver_id, kIrqFieldbus);

  // Periodic sensor: every job release publishes a fresh snapshot. Head of
  // sensor-publish (the job release itself is stage one).
  ThreadParams sensor;
  sensor.name = "sensor";
  sensor.period = Milliseconds(10);
  sensor.body = [state](ThreadApi api) -> ThreadBody {
    uint8_t sample[8] = {};
    for (;;) {
      co_await api.Compute(Microseconds(400));
      ++sample[0];
      co_await api.StateWrite(state, std::span<const uint8_t>(sample, sizeof(sample)));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(sensor).value());

  // Actuator: consumes both published states each period, completing the
  // final hop of irq-to-actuator and sensor-publish. Offset half a period
  // behind the sensor so a fresh snapshot is always waiting.
  ThreadParams actuator;
  actuator.name = "actuator";
  actuator.period = Milliseconds(10);
  actuator.first_release = Milliseconds(5);
  actuator.body = [fieldbus, state](ThreadApi api) -> ThreadBody {
    uint8_t buf[16];
    for (;;) {
      co_await api.StateRead(fieldbus, std::span<uint8_t>(buf, sizeof(buf)));
      co_await api.StateRead(state, std::span<uint8_t>(buf, sizeof(buf)));
      co_await api.Compute(Microseconds(250));
      co_await api.WaitNextPeriod();
    }
  };
  ids.push_back(kernel.CreateThread(actuator).value());

  // Pacer: drains the timer's counting semaphore — each timer fire is a
  // one-hop chain from the ISR-minted token to this acquire.
  ThreadParams pacer;
  pacer.name = "pacer";
  pacer.body = [tick](ThreadApi api) -> ThreadBody {
    for (;;) {
      Status s = co_await api.Acquire(tick);
      if (s != Status::kOk) {
        break;
      }
      co_await api.Compute(Microseconds(100));
    }
  };
  ids.push_back(kernel.CreateThread(pacer).value());

  kernel.Start();
  kernel.StartTimer(timer, Milliseconds(2), Milliseconds(8));

  // Drive for 200 ms, raising the fieldbus IRQ every 10 ms from the host —
  // a deterministic stand-in for a device model.
  for (int slice = 0; slice < 200; ++slice) {
    if (slice % 10 == 3) {
      hw.irq().Raise(kIrqFieldbus);
    }
    kernel.RunUntil(Instant() + Milliseconds(slice + 1));
  }

  obs::TraceAnalysis analysis = obs::AnalyzeTrace(kernel.trace());
  obs::ChainAnalysis chains = obs::AnalyzeChains(kernel.trace(), kernel.resolved_chains());

  std::printf("trace: %zu events retained, %llu dropped; invariants %s\n",
              kernel.trace().size(),
              static_cast<unsigned long long>(kernel.trace().dropped()),
              analysis.ok() ? "ok" : "VIOLATED");
  std::printf("chain stream: %llu emits, %llu consumes, %llu origins, %llu orphan hops\n",
              static_cast<unsigned long long>(chains.chain_emits),
              static_cast<unsigned long long>(chains.chain_consumes),
              static_cast<unsigned long long>(chains.origins_minted),
              static_cast<unsigned long long>(chains.orphan_hops));

  bool ok = analysis.ok() && chains.ok() && chains.complete_window &&
            chains.orphan_hops == 0;
  for (const obs::ChainReport& c : chains.chains) {
    std::printf("%-16s %s: %llu completed, %llu in flight, %llu overruns (SLO %.0f ms)\n",
                c.name.c_str(), c.resolved ? "resolved" : "UNRESOLVED",
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.incomplete),
                static_cast<unsigned long long>(c.overruns), c.deadline.micros_f() / 1000.0);
    if (!c.resolved || c.completed == 0) {
      ok = false;
      continue;
    }
    std::printf("  e2e: mean %.0f us, p99 <= %.0f us, max %.0f us\n", c.e2e.mean().micros_f(),
                c.e2e.ApproxPercentile(0.99).micros_f(), c.e2e.max().micros_f());
    // The telescoping identity: summed across completed instances, the
    // end-to-end latency equals the per-hop queue + exec latencies exactly.
    Duration hop_total;
    for (size_t k = 0; k < c.hops.size(); ++k) {
      const obs::ChainHopStats& h = c.hops[k];
      hop_total += h.queue.total() + h.exec.total();
      std::printf("  hop %zu (%s:%d): queue mean %.0f us, exec mean %.0f us\n", k + 1,
                  ChainEndpointKindToString(ChainEndpointKindOf(h.endpoint)),
                  ChainEndpointChannel(h.endpoint), h.queue.mean().micros_f(),
                  h.exec.mean().micros_f());
    }
    if (hop_total != c.e2e.total()) {
      std::printf("  ERROR: hop totals %.3f us != e2e total %.3f us\n", hop_total.micros_f(),
                  c.e2e.total().micros_f());
      ok = false;
    }
  }
  for (const obs::ChainViolation& v : chains.violations) {
    std::printf("CHAIN VIOLATION [%s] event %zu: %s\n",
                obs::ChainViolationKindToString(v.kind), v.event_index, v.detail.c_str());
  }

  std::FILE* csv = std::fopen("chain_tour.trace.csv", "w");
  if (csv != nullptr) {
    kernel.trace().ExportCsv(csv);
    std::fclose(csv);
  }
  std::FILE* pf = std::fopen("chain_tour.perfetto.json", "w");
  if (pf != nullptr) {
    obs::ExportPerfettoJson(kernel, pf);
    std::fclose(pf);
  }
  obs::ObsRunInfo info;
  info.label = "chain_tour";
  info.scheduler = "RM";
  info.run_duration = Milliseconds(200);
  obs::WriteObsRunReportFile("chain_tour.run.json", info, kernel, ids);
  obs::WriteChainsReportFile("chain_tour.chains.json", "chain_tour", chains);
  std::printf("wrote chain_tour.{trace.csv,perfetto.json,run.json,chains.json}\n");
  std::printf("chain verification: %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
