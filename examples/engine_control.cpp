// Automotive engine controller — the paper's flagship application class
// ("engine control in automobiles"; 5-10 node distributed systems on slow
// single-chip controllers).
//
// Demonstrates the full EMERALDS pipeline:
//   1. Describe the periodic task set.
//   2. Run the OFF-LINE CSD allocation search (Section 5.5.3) to place tasks
//      into DP/FP queues with the overhead-aware schedulability test.
//   3. Run the node: a user-level crank-sensor driver woken by IRQs, a fuel
//      injection control loop fed by a state message, a semaphore-protected
//      actuator object with the parser-style CSE hints, and a slow
//      diagnostics task.
//   4. Report deadlines, overheads and CSE savings.

#include <cstdio>
#include <vector>

#include "src/analysis/breakdown.h"
#include "src/core/kernel.h"
#include "src/hal/devices.h"
#include "src/hal/hardware.h"
#include "src/workload/workload.h"

using namespace emeralds;

namespace {

struct EngineTaskSpec {
  const char* name;
  int64_t period_ms;
  int64_t wcet_us;  // nominal per-job compute budget
};

// The control workload: a mix of short and long periods, as Section 2
// describes for automotive controllers.
constexpr EngineTaskSpec kTasks[] = {
    {"injection", 5, 900},    // fuel injection timing
    {"ignition", 5, 700},     // spark advance
    {"throttle", 10, 1200},   // electronic throttle control
    {"lambda", 20, 1500},     // exhaust oxygen feedback
    {"idle-ctl", 50, 2500},   // idle speed governor
    {"thermal", 100, 3000},   // cooling management
    {"diagnose", 250, 5000},  // on-board diagnostics
};

}  // namespace

int main() {
  // --- Off-line configuration: find the best CSD-3 allocation ---
  TaskSet set;
  for (const EngineTaskSpec& spec : kTasks) {
    PeriodicTask task;
    task.period = Milliseconds(spec.period_ms);
    task.deadline = task.period;
    task.wcet = Microseconds(spec.wcet_us);
    set.tasks.push_back(task);
  }
  set.SortByPeriod();
  CostModel cost = CostModel::MC68040_25MHz();
  std::vector<int> partition = BestCsdPartition(set, 3, 1.0, cost);
  if (partition.empty()) {
    std::printf("workload not schedulable under CSD-3 — aborting\n");
    return 1;
  }
  std::printf("engine workload: %d tasks, U = %.1f%%\n", set.size(),
              100.0 * set.Utilization());
  std::printf("off-line CSD-3 allocation: DP1 = %d tasks, DP2 = %d, FP = %d\n\n",
              partition[0], partition[1], partition[2]);
  std::vector<int> bands;
  for (size_t band = 0; band < partition.size(); ++band) {
    for (int k = 0; k < partition[band]; ++k) {
      bands.push_back(static_cast<int>(band));
    }
  }

  // --- Bring up the node ---
  Hardware hw;
  KernelConfig config;
  config.scheduler = SchedulerSpec::Csd(3);
  config.cost_model = cost;
  Kernel kernel(hw, config);

  // Crank-position sensor: 2 ms sampling, IRQ per sample.
  SensorDevice::Config crank_config;
  crank_config.period = Milliseconds(2);
  crank_config.amplitude = 3000.0;  // RPM-ish waveform
  crank_config.waveform_period = Milliseconds(400);
  SensorDevice crank(hw, crank_config);

  SmsgId rpm_msg = kernel.CreateStateMessage("rpm", sizeof(double), 4).value();
  SemId actuator_lock = kernel.CreateSemaphore("actuator").value();
  double injector_duty = 0.0;
  uint64_t actuations = 0;

  // User-level crank driver (aperiodic, DP1 via band 0): woken by the kernel
  // ISR stub, reads the sensor register, publishes RPM as a state message —
  // sensors feed controllers without any kernel copy.
  ThreadParams driver;
  driver.name = "crank-drv";
  driver.band = 0;
  driver.body = [&](ThreadApi api) -> ThreadBody {
    for (;;) {
      co_await api.WaitIrq(kIrqSensor);
      co_await api.Compute(Microseconds(60));  // read + filter the register
      double rpm = 3000.0 + crank.latest_sample();
      co_await api.StateWrite(rpm_msg,
                              std::span<const uint8_t>(
                                  reinterpret_cast<const uint8_t*>(&rpm), sizeof(rpm)));
    }
  };
  ThreadId driver_id = kernel.CreateThread(driver).value();
  kernel.BindIrqThread(driver_id, kIrqSensor);

  // The periodic control tasks. Injection/ignition/throttle touch the
  // actuator object under the lock; the WaitNextPeriod hint is what the code
  // parser inserts for the upcoming acquire.
  std::vector<ThreadId> ids;
  for (size_t i = 0; i < std::size(kTasks); ++i) {
    const EngineTaskSpec& spec = kTasks[i];
    ThreadParams params;
    params.name = spec.name;
    params.period = Milliseconds(spec.period_ms);
    params.band = bands[i];
    bool uses_actuator = i < 3;
    Duration budget = Microseconds(spec.wcet_us);
    params.body = [&, uses_actuator, budget](ThreadApi api) -> ThreadBody {
      for (;;) {
        double rpm = 0.0;
        co_await api.StateRead(rpm_msg,
                               std::span<uint8_t>(reinterpret_cast<uint8_t*>(&rpm),
                                                  sizeof(rpm)));
        co_await api.Compute(budget * 3 / 4);
        if (uses_actuator) {
          co_await api.Acquire(actuator_lock);
          co_await api.Compute(budget / 4);
          injector_duty = rpm / 6000.0;
          ++actuations;
          co_await api.Release(actuator_lock);
          co_await api.WaitNextPeriod(actuator_lock);  // CSE hint
        } else {
          co_await api.Compute(budget / 4);
          co_await api.WaitNextPeriod();
        }
      }
    };
    ids.push_back(kernel.CreateThread(params).value());
  }

  crank.Start();
  kernel.Start();
  kernel.RunUntil(Instant() + Seconds(5));

  // --- Report ---
  const KernelStats& stats = kernel.stats();
  std::printf("%-10s %8s %8s %8s\n", "task", "period", "jobs", "misses");
  for (size_t i = 0; i < ids.size(); ++i) {
    const Tcb& t = kernel.thread(ids[i]);
    std::printf("%-10s %6lldms %8llu %8llu\n", kTasks[i].name,
                static_cast<long long>(kTasks[i].period_ms),
                (unsigned long long)t.jobs_completed, (unsigned long long)t.deadline_misses);
  }
  std::printf("\ncrank IRQs serviced: %llu   rpm published: %llu   actuations: %llu\n",
              (unsigned long long)stats.interrupts, (unsigned long long)stats.smsg_writes,
              (unsigned long long)actuations);
  std::printf("final injector duty: %.2f\n", injector_duty);
  std::printf("deadline misses: %llu   context switches: %llu (CSE saved %llu)\n",
              (unsigned long long)stats.deadline_misses,
              (unsigned long long)stats.context_switches,
              (unsigned long long)stats.cse_switches_saved);
  std::printf("kernel overhead: %.1f ms over 5 s (%.2f%%)\n",
              stats.total_charged().millis_f(), stats.total_charged().seconds_f() / 5.0 * 100);
  return stats.deadline_misses == 0 ? 0 : 1;
}
