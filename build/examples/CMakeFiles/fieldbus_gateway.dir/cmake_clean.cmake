file(REMOVE_RECURSE
  "CMakeFiles/fieldbus_gateway.dir/fieldbus_gateway.cpp.o"
  "CMakeFiles/fieldbus_gateway.dir/fieldbus_gateway.cpp.o.d"
  "fieldbus_gateway"
  "fieldbus_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fieldbus_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
