# Empty dependencies file for fieldbus_gateway.
# This may be replaced when dependencies are built.
