file(REMOVE_RECURSE
  "CMakeFiles/voice_codec.dir/voice_codec.cpp.o"
  "CMakeFiles/voice_codec.dir/voice_codec.cpp.o.d"
  "voice_codec"
  "voice_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
