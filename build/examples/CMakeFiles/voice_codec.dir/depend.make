# Empty dependencies file for voice_codec.
# This may be replaced when dependencies are built.
