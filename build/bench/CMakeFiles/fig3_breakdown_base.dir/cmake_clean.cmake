file(REMOVE_RECURSE
  "CMakeFiles/fig3_breakdown_base.dir/fig3_breakdown_base.cc.o"
  "CMakeFiles/fig3_breakdown_base.dir/fig3_breakdown_base.cc.o.d"
  "fig3_breakdown_base"
  "fig3_breakdown_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_breakdown_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
