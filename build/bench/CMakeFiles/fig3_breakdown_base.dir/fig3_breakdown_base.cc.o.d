bench/CMakeFiles/fig3_breakdown_base.dir/fig3_breakdown_base.cc.o: \
 /root/repo/bench/fig3_breakdown_base.cc /usr/include/stdc-predef.h \
 /root/repo/bench/breakdown_harness.h
