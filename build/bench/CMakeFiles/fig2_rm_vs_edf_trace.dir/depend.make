# Empty dependencies file for fig2_rm_vs_edf_trace.
# This may be replaced when dependencies are built.
