file(REMOVE_RECURSE
  "CMakeFiles/fig2_rm_vs_edf_trace.dir/fig2_rm_vs_edf_trace.cc.o"
  "CMakeFiles/fig2_rm_vs_edf_trace.dir/fig2_rm_vs_edf_trace.cc.o.d"
  "fig2_rm_vs_edf_trace"
  "fig2_rm_vs_edf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rm_vs_edf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
