# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig2_rm_vs_edf_trace.
