file(REMOVE_RECURSE
  "CMakeFiles/table1_scheduler_ops.dir/table1_scheduler_ops.cc.o"
  "CMakeFiles/table1_scheduler_ops.dir/table1_scheduler_ops.cc.o.d"
  "table1_scheduler_ops"
  "table1_scheduler_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scheduler_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
