file(REMOVE_RECURSE
  "CMakeFiles/ablation_csdx_queues.dir/ablation_csdx_queues.cc.o"
  "CMakeFiles/ablation_csdx_queues.dir/ablation_csdx_queues.cc.o.d"
  "ablation_csdx_queues"
  "ablation_csdx_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_csdx_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
