# Empty dependencies file for ablation_csdx_queues.
# This may be replaced when dependencies are built.
