file(REMOVE_RECURSE
  "CMakeFiles/fig5_breakdown_div3.dir/fig5_breakdown_div3.cc.o"
  "CMakeFiles/fig5_breakdown_div3.dir/fig5_breakdown_div3.cc.o.d"
  "fig5_breakdown_div3"
  "fig5_breakdown_div3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_breakdown_div3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
