bench/CMakeFiles/fig5_breakdown_div3.dir/fig5_breakdown_div3.cc.o: \
 /root/repo/bench/fig5_breakdown_div3.cc /usr/include/stdc-predef.h \
 /root/repo/bench/breakdown_harness.h
