# Empty dependencies file for fig5_breakdown_div3.
# This may be replaced when dependencies are built.
