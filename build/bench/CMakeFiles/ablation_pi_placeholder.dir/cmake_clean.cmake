file(REMOVE_RECURSE
  "CMakeFiles/ablation_pi_placeholder.dir/ablation_pi_placeholder.cc.o"
  "CMakeFiles/ablation_pi_placeholder.dir/ablation_pi_placeholder.cc.o.d"
  "ablation_pi_placeholder"
  "ablation_pi_placeholder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pi_placeholder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
