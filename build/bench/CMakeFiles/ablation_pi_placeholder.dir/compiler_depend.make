# Empty compiler generated dependencies file for ablation_pi_placeholder.
# This may be replaced when dependencies are built.
