file(REMOVE_RECURSE
  "libbench_breakdown_harness.a"
)
