file(REMOVE_RECURSE
  "CMakeFiles/bench_breakdown_harness.dir/breakdown_harness.cc.o"
  "CMakeFiles/bench_breakdown_harness.dir/breakdown_harness.cc.o.d"
  "libbench_breakdown_harness.a"
  "libbench_breakdown_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakdown_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
