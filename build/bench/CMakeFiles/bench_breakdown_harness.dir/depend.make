# Empty dependencies file for bench_breakdown_harness.
# This may be replaced when dependencies are built.
