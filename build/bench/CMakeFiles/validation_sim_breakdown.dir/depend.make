# Empty dependencies file for validation_sim_breakdown.
# This may be replaced when dependencies are built.
