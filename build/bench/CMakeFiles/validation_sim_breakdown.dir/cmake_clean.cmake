file(REMOVE_RECURSE
  "CMakeFiles/validation_sim_breakdown.dir/validation_sim_breakdown.cc.o"
  "CMakeFiles/validation_sim_breakdown.dir/validation_sim_breakdown.cc.o.d"
  "validation_sim_breakdown"
  "validation_sim_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_sim_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
