file(REMOVE_RECURSE
  "CMakeFiles/ablation_cyclic_executive.dir/ablation_cyclic_executive.cc.o"
  "CMakeFiles/ablation_cyclic_executive.dir/ablation_cyclic_executive.cc.o.d"
  "ablation_cyclic_executive"
  "ablation_cyclic_executive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cyclic_executive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
