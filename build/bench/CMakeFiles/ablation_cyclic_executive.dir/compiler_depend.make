# Empty compiler generated dependencies file for ablation_cyclic_executive.
# This may be replaced when dependencies are built.
