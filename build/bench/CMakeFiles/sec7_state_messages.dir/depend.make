# Empty dependencies file for sec7_state_messages.
# This may be replaced when dependencies are built.
