file(REMOVE_RECURSE
  "CMakeFiles/sec7_state_messages.dir/sec7_state_messages.cc.o"
  "CMakeFiles/sec7_state_messages.dir/sec7_state_messages.cc.o.d"
  "sec7_state_messages"
  "sec7_state_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_state_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
