# Empty dependencies file for fig4_breakdown_div2.
# This may be replaced when dependencies are built.
