file(REMOVE_RECURSE
  "CMakeFiles/fig4_breakdown_div2.dir/fig4_breakdown_div2.cc.o"
  "CMakeFiles/fig4_breakdown_div2.dir/fig4_breakdown_div2.cc.o.d"
  "fig4_breakdown_div2"
  "fig4_breakdown_div2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_breakdown_div2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
