bench/CMakeFiles/fig4_breakdown_div2.dir/fig4_breakdown_div2.cc.o: \
 /root/repo/bench/fig4_breakdown_div2.cc /usr/include/stdc-predef.h \
 /root/repo/bench/breakdown_harness.h
