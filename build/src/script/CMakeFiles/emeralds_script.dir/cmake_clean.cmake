file(REMOVE_RECURSE
  "CMakeFiles/emeralds_script.dir/script.cc.o"
  "CMakeFiles/emeralds_script.dir/script.cc.o.d"
  "libemeralds_script.a"
  "libemeralds_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
