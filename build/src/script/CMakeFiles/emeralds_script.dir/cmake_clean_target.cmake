file(REMOVE_RECURSE
  "libemeralds_script.a"
)
