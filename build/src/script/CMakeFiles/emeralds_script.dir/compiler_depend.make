# Empty compiler generated dependencies file for emeralds_script.
# This may be replaced when dependencies are built.
