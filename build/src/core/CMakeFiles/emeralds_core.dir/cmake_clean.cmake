file(REMOVE_RECURSE
  "CMakeFiles/emeralds_core.dir/api.cc.o"
  "CMakeFiles/emeralds_core.dir/api.cc.o.d"
  "CMakeFiles/emeralds_core.dir/band.cc.o"
  "CMakeFiles/emeralds_core.dir/band.cc.o.d"
  "CMakeFiles/emeralds_core.dir/condvar.cc.o"
  "CMakeFiles/emeralds_core.dir/condvar.cc.o.d"
  "CMakeFiles/emeralds_core.dir/ipc.cc.o"
  "CMakeFiles/emeralds_core.dir/ipc.cc.o.d"
  "CMakeFiles/emeralds_core.dir/irq.cc.o"
  "CMakeFiles/emeralds_core.dir/irq.cc.o.d"
  "CMakeFiles/emeralds_core.dir/kernel.cc.o"
  "CMakeFiles/emeralds_core.dir/kernel.cc.o.d"
  "CMakeFiles/emeralds_core.dir/scheduler.cc.o"
  "CMakeFiles/emeralds_core.dir/scheduler.cc.o.d"
  "CMakeFiles/emeralds_core.dir/semaphore.cc.o"
  "CMakeFiles/emeralds_core.dir/semaphore.cc.o.d"
  "CMakeFiles/emeralds_core.dir/stats.cc.o"
  "CMakeFiles/emeralds_core.dir/stats.cc.o.d"
  "CMakeFiles/emeralds_core.dir/taskset_runner.cc.o"
  "CMakeFiles/emeralds_core.dir/taskset_runner.cc.o.d"
  "CMakeFiles/emeralds_core.dir/tcb.cc.o"
  "CMakeFiles/emeralds_core.dir/tcb.cc.o.d"
  "libemeralds_core.a"
  "libemeralds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
