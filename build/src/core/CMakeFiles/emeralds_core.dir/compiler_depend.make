# Empty compiler generated dependencies file for emeralds_core.
# This may be replaced when dependencies are built.
