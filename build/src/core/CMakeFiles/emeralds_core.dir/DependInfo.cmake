
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/api.cc" "src/core/CMakeFiles/emeralds_core.dir/api.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/api.cc.o.d"
  "/root/repo/src/core/band.cc" "src/core/CMakeFiles/emeralds_core.dir/band.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/band.cc.o.d"
  "/root/repo/src/core/condvar.cc" "src/core/CMakeFiles/emeralds_core.dir/condvar.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/condvar.cc.o.d"
  "/root/repo/src/core/ipc.cc" "src/core/CMakeFiles/emeralds_core.dir/ipc.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/ipc.cc.o.d"
  "/root/repo/src/core/irq.cc" "src/core/CMakeFiles/emeralds_core.dir/irq.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/irq.cc.o.d"
  "/root/repo/src/core/kernel.cc" "src/core/CMakeFiles/emeralds_core.dir/kernel.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/kernel.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/emeralds_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/semaphore.cc" "src/core/CMakeFiles/emeralds_core.dir/semaphore.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/semaphore.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/emeralds_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/stats.cc.o.d"
  "/root/repo/src/core/taskset_runner.cc" "src/core/CMakeFiles/emeralds_core.dir/taskset_runner.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/taskset_runner.cc.o.d"
  "/root/repo/src/core/tcb.cc" "src/core/CMakeFiles/emeralds_core.dir/tcb.cc.o" "gcc" "src/core/CMakeFiles/emeralds_core.dir/tcb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/emeralds_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/emeralds_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emeralds_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
