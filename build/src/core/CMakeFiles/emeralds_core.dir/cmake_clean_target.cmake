file(REMOVE_RECURSE
  "libemeralds_core.a"
)
