# Empty dependencies file for emeralds_analysis.
# This may be replaced when dependencies are built.
