
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/breakdown.cc" "src/analysis/CMakeFiles/emeralds_analysis.dir/breakdown.cc.o" "gcc" "src/analysis/CMakeFiles/emeralds_analysis.dir/breakdown.cc.o.d"
  "/root/repo/src/analysis/cyclic.cc" "src/analysis/CMakeFiles/emeralds_analysis.dir/cyclic.cc.o" "gcc" "src/analysis/CMakeFiles/emeralds_analysis.dir/cyclic.cc.o.d"
  "/root/repo/src/analysis/overhead.cc" "src/analysis/CMakeFiles/emeralds_analysis.dir/overhead.cc.o" "gcc" "src/analysis/CMakeFiles/emeralds_analysis.dir/overhead.cc.o.d"
  "/root/repo/src/analysis/sched_test.cc" "src/analysis/CMakeFiles/emeralds_analysis.dir/sched_test.cc.o" "gcc" "src/analysis/CMakeFiles/emeralds_analysis.dir/sched_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/emeralds_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/emeralds_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emeralds_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
