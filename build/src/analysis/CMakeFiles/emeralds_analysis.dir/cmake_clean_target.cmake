file(REMOVE_RECURSE
  "libemeralds_analysis.a"
)
