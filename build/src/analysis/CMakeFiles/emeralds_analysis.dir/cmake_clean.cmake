file(REMOVE_RECURSE
  "CMakeFiles/emeralds_analysis.dir/breakdown.cc.o"
  "CMakeFiles/emeralds_analysis.dir/breakdown.cc.o.d"
  "CMakeFiles/emeralds_analysis.dir/cyclic.cc.o"
  "CMakeFiles/emeralds_analysis.dir/cyclic.cc.o.d"
  "CMakeFiles/emeralds_analysis.dir/overhead.cc.o"
  "CMakeFiles/emeralds_analysis.dir/overhead.cc.o.d"
  "CMakeFiles/emeralds_analysis.dir/sched_test.cc.o"
  "CMakeFiles/emeralds_analysis.dir/sched_test.cc.o.d"
  "libemeralds_analysis.a"
  "libemeralds_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
