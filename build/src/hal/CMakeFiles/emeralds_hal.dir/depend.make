# Empty dependencies file for emeralds_hal.
# This may be replaced when dependencies are built.
