file(REMOVE_RECURSE
  "libemeralds_hal.a"
)
