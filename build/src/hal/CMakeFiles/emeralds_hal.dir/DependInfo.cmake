
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hal/clock.cc" "src/hal/CMakeFiles/emeralds_hal.dir/clock.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/clock.cc.o.d"
  "/root/repo/src/hal/cost_model.cc" "src/hal/CMakeFiles/emeralds_hal.dir/cost_model.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/cost_model.cc.o.d"
  "/root/repo/src/hal/devices.cc" "src/hal/CMakeFiles/emeralds_hal.dir/devices.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/devices.cc.o.d"
  "/root/repo/src/hal/hardware.cc" "src/hal/CMakeFiles/emeralds_hal.dir/hardware.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/hardware.cc.o.d"
  "/root/repo/src/hal/interrupts.cc" "src/hal/CMakeFiles/emeralds_hal.dir/interrupts.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/interrupts.cc.o.d"
  "/root/repo/src/hal/trace.cc" "src/hal/CMakeFiles/emeralds_hal.dir/trace.cc.o" "gcc" "src/hal/CMakeFiles/emeralds_hal.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/emeralds_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
