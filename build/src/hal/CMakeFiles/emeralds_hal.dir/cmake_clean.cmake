file(REMOVE_RECURSE
  "CMakeFiles/emeralds_hal.dir/clock.cc.o"
  "CMakeFiles/emeralds_hal.dir/clock.cc.o.d"
  "CMakeFiles/emeralds_hal.dir/cost_model.cc.o"
  "CMakeFiles/emeralds_hal.dir/cost_model.cc.o.d"
  "CMakeFiles/emeralds_hal.dir/devices.cc.o"
  "CMakeFiles/emeralds_hal.dir/devices.cc.o.d"
  "CMakeFiles/emeralds_hal.dir/hardware.cc.o"
  "CMakeFiles/emeralds_hal.dir/hardware.cc.o.d"
  "CMakeFiles/emeralds_hal.dir/interrupts.cc.o"
  "CMakeFiles/emeralds_hal.dir/interrupts.cc.o.d"
  "CMakeFiles/emeralds_hal.dir/trace.cc.o"
  "CMakeFiles/emeralds_hal.dir/trace.cc.o.d"
  "libemeralds_hal.a"
  "libemeralds_hal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_hal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
