file(REMOVE_RECURSE
  "CMakeFiles/emeralds_base.dir/assert.cc.o"
  "CMakeFiles/emeralds_base.dir/assert.cc.o.d"
  "CMakeFiles/emeralds_base.dir/log.cc.o"
  "CMakeFiles/emeralds_base.dir/log.cc.o.d"
  "CMakeFiles/emeralds_base.dir/rng.cc.o"
  "CMakeFiles/emeralds_base.dir/rng.cc.o.d"
  "CMakeFiles/emeralds_base.dir/status.cc.o"
  "CMakeFiles/emeralds_base.dir/status.cc.o.d"
  "CMakeFiles/emeralds_base.dir/time.cc.o"
  "CMakeFiles/emeralds_base.dir/time.cc.o.d"
  "libemeralds_base.a"
  "libemeralds_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
