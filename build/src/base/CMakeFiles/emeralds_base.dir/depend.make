# Empty dependencies file for emeralds_base.
# This may be replaced when dependencies are built.
