file(REMOVE_RECURSE
  "libemeralds_base.a"
)
