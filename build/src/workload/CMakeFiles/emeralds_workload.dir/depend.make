# Empty dependencies file for emeralds_workload.
# This may be replaced when dependencies are built.
