file(REMOVE_RECURSE
  "CMakeFiles/emeralds_workload.dir/workload.cc.o"
  "CMakeFiles/emeralds_workload.dir/workload.cc.o.d"
  "libemeralds_workload.a"
  "libemeralds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emeralds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
