file(REMOVE_RECURSE
  "libemeralds_workload.a"
)
