file(REMOVE_RECURSE
  "CMakeFiles/analysis_partition_search_test.dir/partition_search_test.cc.o"
  "CMakeFiles/analysis_partition_search_test.dir/partition_search_test.cc.o.d"
  "analysis_partition_search_test"
  "analysis_partition_search_test.pdb"
  "analysis_partition_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_partition_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
