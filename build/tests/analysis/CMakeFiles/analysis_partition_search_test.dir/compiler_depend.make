# Empty compiler generated dependencies file for analysis_partition_search_test.
# This may be replaced when dependencies are built.
