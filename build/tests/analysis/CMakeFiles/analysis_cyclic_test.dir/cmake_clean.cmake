file(REMOVE_RECURSE
  "CMakeFiles/analysis_cyclic_test.dir/cyclic_test.cc.o"
  "CMakeFiles/analysis_cyclic_test.dir/cyclic_test.cc.o.d"
  "analysis_cyclic_test"
  "analysis_cyclic_test.pdb"
  "analysis_cyclic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_cyclic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
