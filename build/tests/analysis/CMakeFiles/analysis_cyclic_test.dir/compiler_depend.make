# Empty compiler generated dependencies file for analysis_cyclic_test.
# This may be replaced when dependencies are built.
