
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/script/script_test.cc" "tests/script/CMakeFiles/script_test.dir/script_test.cc.o" "gcc" "tests/script/CMakeFiles/script_test.dir/script_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/emeralds_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/emeralds_script.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emeralds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emeralds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hal/CMakeFiles/emeralds_hal.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/emeralds_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
