# CMake generated Testfile for 
# Source directory: /root/repo/tests/hal
# Build directory: /root/repo/build/tests/hal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hal/hal_test[1]_include.cmake")
include("/root/repo/build/tests/hal/hal_devices_test[1]_include.cmake")
