file(REMOVE_RECURSE
  "CMakeFiles/hal_devices_test.dir/devices_test.cc.o"
  "CMakeFiles/hal_devices_test.dir/devices_test.cc.o.d"
  "hal_devices_test"
  "hal_devices_test.pdb"
  "hal_devices_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hal_devices_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
