# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_band_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_kernel_exec_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_semaphore_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_condvar_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_mailbox_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_statemsg_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_irq_protection_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_timer_service_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_stress_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_death_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_matrix_test[1]_include.cmake")
