file(REMOVE_RECURSE
  "CMakeFiles/core_kernel_exec_test.dir/kernel_exec_test.cc.o"
  "CMakeFiles/core_kernel_exec_test.dir/kernel_exec_test.cc.o.d"
  "core_kernel_exec_test"
  "core_kernel_exec_test.pdb"
  "core_kernel_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kernel_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
