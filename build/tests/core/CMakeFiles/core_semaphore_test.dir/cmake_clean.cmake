file(REMOVE_RECURSE
  "CMakeFiles/core_semaphore_test.dir/semaphore_test.cc.o"
  "CMakeFiles/core_semaphore_test.dir/semaphore_test.cc.o.d"
  "core_semaphore_test"
  "core_semaphore_test.pdb"
  "core_semaphore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_semaphore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
