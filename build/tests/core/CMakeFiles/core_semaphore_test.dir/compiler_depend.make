# Empty compiler generated dependencies file for core_semaphore_test.
# This may be replaced when dependencies are built.
