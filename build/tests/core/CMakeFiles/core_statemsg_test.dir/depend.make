# Empty dependencies file for core_statemsg_test.
# This may be replaced when dependencies are built.
