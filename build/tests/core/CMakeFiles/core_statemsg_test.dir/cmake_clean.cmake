file(REMOVE_RECURSE
  "CMakeFiles/core_statemsg_test.dir/statemsg_test.cc.o"
  "CMakeFiles/core_statemsg_test.dir/statemsg_test.cc.o.d"
  "core_statemsg_test"
  "core_statemsg_test.pdb"
  "core_statemsg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_statemsg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
