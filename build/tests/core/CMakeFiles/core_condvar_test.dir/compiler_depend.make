# Empty compiler generated dependencies file for core_condvar_test.
# This may be replaced when dependencies are built.
