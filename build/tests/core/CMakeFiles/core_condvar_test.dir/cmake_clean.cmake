file(REMOVE_RECURSE
  "CMakeFiles/core_condvar_test.dir/condvar_test.cc.o"
  "CMakeFiles/core_condvar_test.dir/condvar_test.cc.o.d"
  "core_condvar_test"
  "core_condvar_test.pdb"
  "core_condvar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_condvar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
