# Empty dependencies file for core_mailbox_test.
# This may be replaced when dependencies are built.
