file(REMOVE_RECURSE
  "CMakeFiles/core_mailbox_test.dir/mailbox_test.cc.o"
  "CMakeFiles/core_mailbox_test.dir/mailbox_test.cc.o.d"
  "core_mailbox_test"
  "core_mailbox_test.pdb"
  "core_mailbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_mailbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
