# Empty dependencies file for core_band_test.
# This may be replaced when dependencies are built.
