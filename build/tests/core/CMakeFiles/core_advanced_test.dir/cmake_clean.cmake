file(REMOVE_RECURSE
  "CMakeFiles/core_advanced_test.dir/advanced_test.cc.o"
  "CMakeFiles/core_advanced_test.dir/advanced_test.cc.o.d"
  "core_advanced_test"
  "core_advanced_test.pdb"
  "core_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
