# Empty compiler generated dependencies file for core_advanced_test.
# This may be replaced when dependencies are built.
