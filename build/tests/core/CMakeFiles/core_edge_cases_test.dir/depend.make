# Empty dependencies file for core_edge_cases_test.
# This may be replaced when dependencies are built.
