file(REMOVE_RECURSE
  "CMakeFiles/core_edge_cases_test.dir/edge_cases_test.cc.o"
  "CMakeFiles/core_edge_cases_test.dir/edge_cases_test.cc.o.d"
  "core_edge_cases_test"
  "core_edge_cases_test.pdb"
  "core_edge_cases_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
