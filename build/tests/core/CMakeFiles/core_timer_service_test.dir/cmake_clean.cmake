file(REMOVE_RECURSE
  "CMakeFiles/core_timer_service_test.dir/timer_service_test.cc.o"
  "CMakeFiles/core_timer_service_test.dir/timer_service_test.cc.o.d"
  "core_timer_service_test"
  "core_timer_service_test.pdb"
  "core_timer_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_timer_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
