# Empty dependencies file for core_death_test.
# This may be replaced when dependencies are built.
