file(REMOVE_RECURSE
  "CMakeFiles/core_death_test.dir/death_test.cc.o"
  "CMakeFiles/core_death_test.dir/death_test.cc.o.d"
  "core_death_test"
  "core_death_test.pdb"
  "core_death_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_death_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
