# Empty compiler generated dependencies file for core_irq_protection_test.
# This may be replaced when dependencies are built.
