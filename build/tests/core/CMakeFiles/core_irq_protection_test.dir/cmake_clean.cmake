file(REMOVE_RECURSE
  "CMakeFiles/core_irq_protection_test.dir/irq_protection_test.cc.o"
  "CMakeFiles/core_irq_protection_test.dir/irq_protection_test.cc.o.d"
  "core_irq_protection_test"
  "core_irq_protection_test.pdb"
  "core_irq_protection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_irq_protection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
