# Empty dependencies file for base_containers_test.
# This may be replaced when dependencies are built.
