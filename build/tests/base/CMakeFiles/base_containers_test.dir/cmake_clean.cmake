file(REMOVE_RECURSE
  "CMakeFiles/base_containers_test.dir/containers_test.cc.o"
  "CMakeFiles/base_containers_test.dir/containers_test.cc.o.d"
  "base_containers_test"
  "base_containers_test.pdb"
  "base_containers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_containers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
