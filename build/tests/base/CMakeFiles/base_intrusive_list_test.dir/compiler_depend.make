# Empty compiler generated dependencies file for base_intrusive_list_test.
# This may be replaced when dependencies are built.
