file(REMOVE_RECURSE
  "CMakeFiles/base_intrusive_list_test.dir/intrusive_list_test.cc.o"
  "CMakeFiles/base_intrusive_list_test.dir/intrusive_list_test.cc.o.d"
  "base_intrusive_list_test"
  "base_intrusive_list_test.pdb"
  "base_intrusive_list_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_intrusive_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
