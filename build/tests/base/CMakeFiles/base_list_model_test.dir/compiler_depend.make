# Empty compiler generated dependencies file for base_list_model_test.
# This may be replaced when dependencies are built.
