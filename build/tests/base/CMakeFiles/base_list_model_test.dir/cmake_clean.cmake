file(REMOVE_RECURSE
  "CMakeFiles/base_list_model_test.dir/list_model_test.cc.o"
  "CMakeFiles/base_list_model_test.dir/list_model_test.cc.o.d"
  "base_list_model_test"
  "base_list_model_test.pdb"
  "base_list_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_list_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
