#include "src/base/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace emeralds {

void JsonAppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonAppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {  // JSON has no NaN/Inf
    *out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  *out += buf;
}

void JsonAppendInt(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  *out += buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* what) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s at offset %zu", what, pos_);
    *error_ = buf;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Fail("invalid literal");
    }
    pos_ += len;
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          break;
        }
        char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out->push_back(esc);
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_ + i];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return Fail("invalid \\u escape");
              }
              code = code * 16 +
                     static_cast<unsigned>(h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            pos_ += 4;
            // Decode as UTF-8. Surrogate halves (only reachable via escaped
            // astral-plane text, which no report writer emits) degrade to
            // '?' rather than producing ill-formed output.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else if (code >= 0xd800 && code <= 0xdfff) {
              out->push_back('?');
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Fail("invalid escape");
        }
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      out->type = JsonValue::Type::kObject;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated object");
        }
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return Fail("expected ':'");
        }
        ++pos_;
        SkipSpace();
        JsonValue member;
        if (!ParseValue(&member, depth + 1)) {
          return false;
        }
        out->object.emplace_back(std::move(key), std::move(member));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated object");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out->type = JsonValue::Type::kArray;
      ++pos_;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipSpace();
        JsonValue element;
        if (!ParseValue(&element, depth + 1)) {
          return false;
        }
        out->array.push_back(std::move(element));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return Fail("unterminated array");
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      out->type = JsonValue::Type::kNumber;
      size_t start = pos_;
      if (text_[pos_] == '-') {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ < text_.size() && text_[pos_] == '.') {
        ++pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
        ++pos_;
        if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
      }
      if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
        return Fail("invalid number");
      }
      out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
      return true;
    }
    return Fail("unexpected character");
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonParse(const std::string& text, JsonValue* out, std::string* error) {
  std::string unused;
  return JsonParser(text, error != nullptr ? error : &unused).Parse(out);
}

}  // namespace emeralds
