// Bounded FIFO ring buffer with capacity fixed at construction.
//
// Used by mailboxes (message queues) and trace sinks. Storage is allocated
// once at construction ("kernel init time"); there is no allocation on the
// send/receive paths.

#ifndef SRC_BASE_RING_BUFFER_H_
#define SRC_BASE_RING_BUFFER_H_

#include <cstddef>
#include <memory>
#include <utility>

#include "src/base/assert.h"

namespace emeralds {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(size_t capacity)
      : capacity_(capacity), items_(std::make_unique<T[]>(capacity)) {
    EM_ASSERT_MSG(capacity > 0, "RingBuffer capacity must be positive");
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == capacity_; }

  // Appends `value`; the buffer must not be full.
  void push(T value) {
    EM_ASSERT_MSG(!full(), "push to full RingBuffer");
    items_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
  }

  // Appends `value`, evicting the oldest element if full. Returns true if an
  // element was evicted. Used by lossy consumers such as trace sinks.
  bool push_overwrite(T value) {
    bool evicted = false;
    if (full()) {
      head_ = (head_ + 1) % capacity_;
      --size_;
      evicted = true;
    }
    push(std::move(value));
    return evicted;
  }

  // Removes and returns the oldest element; the buffer must not be empty.
  T pop() {
    EM_ASSERT_MSG(!empty(), "pop from empty RingBuffer");
    T value = std::move(items_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return value;
  }

  T& front() {
    EM_ASSERT(!empty());
    return items_[head_];
  }
  const T& front() const {
    EM_ASSERT(!empty());
    return items_[head_];
  }

  // Element `index` positions from the front (0 == oldest).
  const T& at(size_t index) const {
    EM_ASSERT(index < size_);
    return items_[(head_ + index) % capacity_];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  size_t capacity_;
  std::unique_ptr<T[]> items_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace emeralds

#endif  // SRC_BASE_RING_BUFFER_H_
