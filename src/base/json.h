// Minimal JSON reading and writing shared by the reporting layers.
//
// The bench perf-trajectory reports (bench/bench_report.h) and the
// observability run reports (src/obs/obs_report.h) both emit JSON files that
// CI validates by re-parsing; this header holds the strict recursive-descent
// parser and the small append-style writer helpers they share.

#ifndef SRC_BASE_JSON_H_
#define SRC_BASE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace emeralds {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Strict recursive-descent parse of one complete JSON document. On failure
// returns false and describes the problem (with a byte offset) in *error.
bool JsonParse(const std::string& text, JsonValue* out, std::string* error);

// --- Writer helpers (append to a std::string buffer) ---

// Appends `s` as a quoted JSON string with the required escapes.
void JsonAppendEscaped(std::string* out, const std::string& s);

// Appends a finite double with %.10g; NaN/Inf (not representable) become 0.
void JsonAppendNumber(std::string* out, double value);

void JsonAppendInt(std::string* out, int64_t value);

}  // namespace emeralds

#endif  // SRC_BASE_JSON_H_
