#include "src/base/assert.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace emeralds {
namespace {

PanicHook g_panic_hook = nullptr;

}  // namespace

PanicHook SetPanicHook(PanicHook hook) {
  PanicHook previous = g_panic_hook;
  g_panic_hook = hook;
  return previous;
}

void Panic(const char* file, int line, const char* format, ...) {
  char message[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(message, sizeof(message), format, args);
  va_end(args);

  if (g_panic_hook != nullptr) {
    // The hook may unwind (longjmp or throw) to keep a test process alive.
    g_panic_hook(file, line, message);
  }
  std::fprintf(stderr, "PANIC at %s:%d: %s\n", file, line, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace emeralds
