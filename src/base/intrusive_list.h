// Intrusive doubly-linked list.
//
// The scheduler keeps every task — ready or blocked — in queue structures that
// must support O(1) unlink, O(1) insert-before, and the EMERALDS place-holder
// trick of swapping two elements' positions in place (Section 6.2 of the
// paper). An intrusive list with externally-owned nodes supports all of that
// without allocation. An object may sit in several lists at once through
// distinct node members (e.g. a TCB is in the scheduler queue and, while
// blocked, in a semaphore wait queue).

#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/assert.h"

namespace emeralds {

template <typename T>
struct ListNode {
  T* owner = nullptr;
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }
};

// Intrusive list over T, using the node member identified by `NodeMember`.
// Not copyable; elements are not owned.
template <typename T, ListNode<T> T::* NodeMember>
class IntrusiveList {
 public:
  IntrusiveList() { Reset(); }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;
  ~IntrusiveList() { EM_ASSERT_MSG(empty(), "intrusive list destroyed while non-empty"); }

  bool empty() const { return head_.next == &head_; }
  size_t size() const { return size_; }

  // True iff `element`'s node for this list type is currently linked (in this
  // or any other list using the same node member).
  static bool IsLinked(const T& element) { return (element.*NodeMember).linked(); }

  void push_front(T& element) { InsertNodeAfter(&head_, Node(element)); }
  void push_back(T& element) { InsertNodeAfter(head_.prev, Node(element)); }

  // Inserts `element` immediately before `before` (which must be linked in
  // this list).
  void insert_before(T& before, T& element) {
    InsertNodeAfter(Node(before)->prev, Node(element));
  }
  // Inserts `element` immediately after `after`.
  void insert_after(T& after, T& element) { InsertNodeAfter(Node(after), Node(element)); }

  void erase(T& element) {
    ListNode<T>* node = Node(element);
    EM_ASSERT_MSG(node->linked(), "erase of unlinked element");
    UnlinkNode(node);
  }

  T* front() { return empty() ? nullptr : head_.next->owner; }
  const T* front() const { return empty() ? nullptr : head_.next->owner; }
  T* back() { return empty() ? nullptr : head_.prev->owner; }
  const T* back() const { return empty() ? nullptr : head_.prev->owner; }

  T* pop_front() {
    if (empty()) {
      return nullptr;
    }
    T* element = head_.next->owner;
    UnlinkNode(head_.next);
    return element;
  }

  // Successor/predecessor of `element` within the list, nullptr at the ends.
  T* next(const T& element) const {
    ListNode<T>* n = Node(const_cast<T&>(element))->next;
    return n == &head_ ? nullptr : n->owner;
  }
  T* prev(const T& element) const {
    ListNode<T>* n = Node(const_cast<T&>(element))->prev;
    return n == &head_ ? nullptr : n->owner;
  }

  // Unlinks every element. O(n).
  void clear() {
    while (!empty()) {
      UnlinkNode(head_.next);
    }
  }

  // Exchanges the positions of `a` and `b` within this list in O(1). This is
  // the primitive behind the paper's place-holder priority-inheritance
  // optimization: the lock holder takes the blocked inheritor's queue slot and
  // the inheritor becomes a place-holder at the holder's old slot.
  void SwapPositions(T& a, T& b) {
    ListNode<T>* na = Node(a);
    ListNode<T>* nb = Node(b);
    EM_ASSERT(na->linked() && nb->linked());
    if (na == nb) {
      return;
    }
    if (na->next == nb) {
      SwapAdjacent(na, nb);
      return;
    }
    if (nb->next == na) {
      SwapAdjacent(nb, na);
      return;
    }
    ListNode<T>* a_prev = na->prev;
    ListNode<T>* a_next = na->next;
    ListNode<T>* b_prev = nb->prev;
    ListNode<T>* b_next = nb->next;
    a_prev->next = nb;
    a_next->prev = nb;
    nb->prev = a_prev;
    nb->next = a_next;
    b_prev->next = na;
    b_next->prev = na;
    na->prev = b_prev;
    na->next = b_next;
  }

  // Minimal forward iterator so the list works with range-for. Iteration
  // yields T&.
  class iterator {
   public:
    iterator(ListNode<T>* node, const ListNode<T>* head) : node_(node), head_(head) {}
    T& operator*() const { return *node_->owner; }
    T* operator->() const { return node_->owner; }
    iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator==(const iterator& other) const { return node_ == other.node_; }
    bool operator!=(const iterator& other) const { return node_ != other.node_; }

   private:
    ListNode<T>* node_;
    const ListNode<T>* head_;
  };

  iterator begin() { return iterator(head_.next, &head_); }
  iterator end() { return iterator(&head_, &head_); }

 private:
  static ListNode<T>* Node(T& element) {
    ListNode<T>* node = &(element.*NodeMember);
    node->owner = &element;
    return node;
  }
  static ListNode<T>* Node(const T& element) { return Node(const_cast<T&>(element)); }

  void Reset() {
    head_.prev = &head_;
    head_.next = &head_;
    head_.owner = nullptr;
    size_ = 0;
  }

  void InsertNodeAfter(ListNode<T>* position, ListNode<T>* node) {
    EM_ASSERT_MSG(!node->linked(), "element inserted while already linked");
    node->prev = position;
    node->next = position->next;
    position->next->prev = node;
    position->next = node;
    ++size_;
  }

  void UnlinkNode(ListNode<T>* node) {
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    --size_;
  }

  // `first` is immediately followed by `second`.
  void SwapAdjacent(ListNode<T>* first, ListNode<T>* second) {
    ListNode<T>* before = first->prev;
    ListNode<T>* after = second->next;
    before->next = second;
    second->prev = before;
    second->next = first;
    first->prev = second;
    first->next = after;
    after->prev = first;
  }

  ListNode<T> head_;
  size_t size_ = 0;
};

}  // namespace emeralds

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
