// Small integer-math helpers used by the scheduler analysis.

#ifndef SRC_BASE_MATH_H_
#define SRC_BASE_MATH_H_

#include <cstdint>

#include "src/base/assert.h"

namespace emeralds {

// ceil(a / b) for a >= 0, b > 0.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// floor(a / b) for a >= 0, b > 0.
constexpr int64_t FloorDiv(int64_t a, int64_t b) { return a / b; }

// ceil(log2(x)) for x >= 1; CeilLog2(1) == 0. The paper's heap-overhead fits
// use ceil(log2(n + 1)).
constexpr int CeilLog2(uint64_t x) {
  int bits = 0;
  uint64_t value = 1;
  while (value < x) {
    value <<= 1;
    ++bits;
  }
  return bits;
}

// Greatest common divisor / least common multiple, for hyperperiod math.
constexpr int64_t Gcd(int64_t a, int64_t b) {
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}
// Saturating LCM: returns INT64_MAX on overflow, which analysis code treats as
// "cap the testing window instead of enumerating the hyperperiod".
constexpr int64_t LcmSaturating(int64_t a, int64_t b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  int64_t g = Gcd(a, b);
  int64_t a_reduced = a / g;
  if (a_reduced > INT64_MAX / b) {
    return INT64_MAX;
  }
  return a_reduced * b;
}

}  // namespace emeralds

#endif  // SRC_BASE_MATH_H_
