// Work-stealing host thread pool.
//
// Drives the fleet runner's kernel-instance slices and the torture driver's
// parallel seed sweeps. Each worker owns a deque: it pushes and pops its own
// work LIFO (cache-warm), and steals FIFO from a victim when empty (oldest
// work first — the classic Cilk discipline, so a stolen task is the one
// least likely to be hot in the victim's cache). Tasks may submit further
// tasks (the fleet runner re-enqueues an instance's next time slice from
// inside the previous one); submissions from a worker thread go to that
// worker's own deque.
//
// Everything is guarded by per-deque mutexes plus one idle mutex for
// sleep/wake — no lock-free tricks — so the pool is ThreadSanitizer-clean by
// construction, which the tsan CI job relies on.

#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace emeralds {

class ThreadPool {
 public:
  // `workers` <= 0 means one per hardware core.
  explicit ThreadPool(int workers = 0);
  // Waits for all submitted work to finish, then joins the workers.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Called from a worker thread, the task lands on that
  // worker's own deque (LIFO locality); from outside, deques are fed
  // round-robin.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task (including tasks submitted by tasks)
  // has finished. Must not be called from a worker thread.
  void Wait();

  // Index of the pool worker running the current thread, -1 off-pool.
  // Torture's --jobs mode uses it to separate per-worker artifacts.
  static int CurrentWorker();

  // Convenience: fn(index) for index in [0, count), load-balanced across the
  // pool via one task per index; blocks until done.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  bool PopOwn(int self, std::function<void()>& task);
  bool Steal(int self, std::function<void()>& task);
  void RunOne(std::function<void()>& task);
  void WorkerMain(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake protocol: Submit bumps signal_ under idle_mutex_ after
  // publishing the task, so a worker that re-checks signal_ before sleeping
  // can never miss a wakeup.
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::condition_variable done_cv_;
  uint64_t signal_ = 0;
  size_t pending_ = 0;  // submitted but not yet finished (guarded by idle_mutex_)
  bool stop_ = false;   // guarded by idle_mutex_

  uint64_t round_robin_ = 0;  // guarded by idle_mutex_
};

}  // namespace emeralds

#endif  // SRC_BASE_THREAD_POOL_H_
