// Deterministic pseudo-random number generation for workload synthesis.
//
// The evaluation (Figures 3-5) generates hundreds of random task workloads;
// reproducibility requires a seedable generator with stable output across
// platforms, so we implement xorshift64* directly rather than rely on
// implementation-defined <random> distributions.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

namespace emeralds {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Raw 64 random bits (xorshift64*).
  uint64_t Next();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in the inclusive range [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // True with probability p.
  bool Bernoulli(double p);

  // Derives an independent generator for stream `index`; used to give each
  // workload its own stream so per-point parallel/partial runs stay stable.
  Rng Fork(uint64_t index) const;

 private:
  uint64_t state_;
};

}  // namespace emeralds

#endif  // SRC_BASE_RNG_H_
