// Fixed-capacity vector with in-place storage.
//
// Kernel objects live in statically-sized pools (the paper's kernel fits in
// 13 KB with every structure preallocated); StaticVector is the building block
// for those pools. Exceeding capacity is a programming error and panics.

#ifndef SRC_BASE_STATIC_VECTOR_H_
#define SRC_BASE_STATIC_VECTOR_H_

#include <cstddef>
#include <new>
#include <utility>

#include "src/base/assert.h"

namespace emeralds {

template <typename T, size_t N>
class StaticVector {
 public:
  StaticVector() = default;
  StaticVector(const StaticVector& other) {
    for (size_t i = 0; i < other.size_; ++i) {
      push_back(other[i]);
    }
  }
  StaticVector& operator=(const StaticVector& other) {
    if (this != &other) {
      clear();
      for (size_t i = 0; i < other.size_; ++i) {
        push_back(other[i]);
      }
    }
    return *this;
  }
  ~StaticVector() { clear(); }

  static constexpr size_t capacity() { return N; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == N; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    EM_ASSERT_MSG(size_ < N, "StaticVector capacity %zu exceeded", N);
    T* slot = new (&storage_[size_ * sizeof(T)]) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    EM_ASSERT(size_ > 0);
    --size_;
    data()[size_].~T();
  }

  T& operator[](size_t index) {
    EM_ASSERT_MSG(index < size_, "StaticVector index %zu out of range %zu", index, size_);
    return data()[index];
  }
  const T& operator[](size_t index) const {
    EM_ASSERT_MSG(index < size_, "StaticVector index %zu out of range %zu", index, size_);
    return data()[index];
  }

  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return std::launder(reinterpret_cast<T*>(storage_)); }
  const T* data() const { return std::launder(reinterpret_cast<const T*>(storage_)); }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  void clear() {
    while (size_ > 0) {
      pop_back();
    }
  }

  // Removes the element at `index`, shifting later elements down. O(n).
  void erase_at(size_t index) {
    EM_ASSERT(index < size_);
    for (size_t i = index; i + 1 < size_; ++i) {
      data()[i] = std::move(data()[i + 1]);
    }
    pop_back();
  }

 private:
  alignas(T) unsigned char storage_[N * sizeof(T)];
  size_t size_ = 0;
};

}  // namespace emeralds

#endif  // SRC_BASE_STATIC_VECTOR_H_
