#include "src/base/time.h"

#include <cinttypes>
#include <cstdio>

namespace emeralds {

const char* FormatDuration(Duration d, char* buffer, int size) {
  int64_t ns = d.nanos();
  int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns < 1000) {
    std::snprintf(buffer, size, "%" PRId64 "ns", ns);
  } else if (abs_ns < 1000000) {
    std::snprintf(buffer, size, "%.3fus", static_cast<double>(ns) / 1e3);
  } else if (abs_ns < 1000000000) {
    std::snprintf(buffer, size, "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buffer, size, "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buffer;
}

}  // namespace emeralds
