// Assertion and panic support for the EMERALDS reproduction.
//
// Kernel code is built without exceptions; invariant violations terminate via
// Panic(). Tests may install a panic hook (see SetPanicHook) to observe panics
// without killing the process.

#ifndef SRC_BASE_ASSERT_H_
#define SRC_BASE_ASSERT_H_

namespace emeralds {

// Handler invoked on panic. If the handler returns, the process aborts.
using PanicHook = void (*)(const char* file, int line, const char* message);

// Installs a process-wide panic hook; returns the previous hook (may be
// nullptr). Intended for tests only.
PanicHook SetPanicHook(PanicHook hook);

// Reports an unrecoverable error. Formats `format` printf-style, invokes the
// panic hook if set, then aborts.
[[noreturn]] void Panic(const char* file, int line, const char* format, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace emeralds

// EM_ASSERT: invariant check, enabled in all build types (kernel invariants
// are cheap and this is a correctness-focused reproduction).
#define EM_ASSERT(cond)                                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::emeralds::Panic(__FILE__, __LINE__, "assertion failed: %s", #cond); \
    }                                                                   \
  } while (0)

// EM_ASSERT_MSG: invariant check with a printf-style explanation.
#define EM_ASSERT_MSG(cond, ...)                            \
  do {                                                      \
    if (!(cond)) {                                          \
      ::emeralds::Panic(__FILE__, __LINE__, __VA_ARGS__);   \
    }                                                       \
  } while (0)

// EM_PANIC: unconditional failure.
#define EM_PANIC(...) ::emeralds::Panic(__FILE__, __LINE__, __VA_ARGS__)

#endif  // SRC_BASE_ASSERT_H_
