// Fixed-size log2 latency histogram.
//
// The trace analyzer and the kernel's streaming instrumentation accumulate
// response-time, headroom, and chain-latency distributions. Consistent with
// the kernel's small-memory ethos the histogram is a fixed array of
// power-of-two buckets — no heap, O(1) insert — sized so bucket 0 holds
// sub-microsecond samples and the last bucket everything from ~2.3 minutes
// up. It lives in base (not obs) because KernelStats embeds histograms for
// the snapshot ring; src/obs/histogram.h forwards the old name.

#ifndef SRC_BASE_LOG2_HISTOGRAM_H_
#define SRC_BASE_LOG2_HISTOGRAM_H_

#include <bit>
#include <cstdint>

#include "src/base/time.h"

namespace emeralds {

class Log2Histogram {
 public:
  // Bucket i covers [2^i us, 2^(i+1) us); bucket 0 additionally absorbs
  // everything below 1 us, the last bucket everything above its floor.
  static constexpr int kNumBuckets = 28;

  void Add(Duration value) {
    ++count_;
    total_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
    ++buckets_[BucketIndex(value)];
  }

  static int BucketIndex(Duration value) {
    int64_t us = value.micros();
    if (us <= 0) {
      return 0;
    }
    int index = std::bit_width(static_cast<uint64_t>(us)) - 1;
    return index < kNumBuckets ? index : kNumBuckets - 1;
  }

  // Inclusive lower edge of bucket `index` in microseconds.
  static int64_t BucketFloorUs(int index) { return index == 0 ? 0 : int64_t{1} << index; }

  uint64_t count() const { return count_; }
  uint64_t bucket(int index) const { return buckets_[index]; }
  Duration min() const { return min_; }
  Duration max() const { return max_; }
  Duration total() const { return total_; }
  Duration mean() const {
    return count_ > 0 ? total_ / static_cast<int64_t>(count_) : Duration();
  }

  // Lossless merge: bucket-wise sum plus exact min/max/count/total. A merge
  // of sketches is bucket-identical to the sketch of the concatenated sample
  // streams (the property test in tests/obs/telemetry_test.cc), which is what
  // makes per-node histograms aggregable into exact fleet-wide tables.
  void Merge(const Log2Histogram& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
    total_ += other.total_;
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  // Inverse of Merge over a telescoping pair: given two *cumulative*
  // sketches of the same sample stream taken at instants t0 <= t1, returns
  // the sketch of the samples that arrived in (t0, t1]. Buckets, count and
  // total are exact subtractions. min/max carry the *cumulative* extremes of
  // `cur` (a running min never rises and a running max never falls, so the
  // window that contains the extreme sample owns the true value and every
  // later window repeats it): merging all window deltas of a run in any
  // order reproduces the whole-run cumulative sketch bit-identically in
  // every field — the telescoping property tests/obs/timeseries_test.cc
  // locks down. As a standalone window statistic the carried min/max are
  // conservative bounds, not per-window extremes.
  static Log2Histogram Delta(const Log2Histogram& cur, const Log2Histogram& prev) {
    Log2Histogram d;
    d.count_ = cur.count_ - prev.count_;
    if (d.count_ == 0) {
      return d;
    }
    d.total_ = cur.total_ - prev.total_;
    d.min_ = cur.min_;
    d.max_ = cur.max_;
    for (int i = 0; i < kNumBuckets; ++i) {
      d.buckets_[i] = cur.buckets_[i] - prev.buckets_[i];
    }
    return d;
  }

  // Upper bound on the `fraction` percentile: the upper edge of the first
  // bucket at which the running count reaches `fraction` of the samples,
  // clamped by the exact max. Every true percentile is <= this bound, and the
  // bound is tight at bucket granularity — it survives Merge() exactly, so
  // fleet-wide percentile tables over merged histograms are bucket-exact.
  // `fraction` in (0, 1]; zero duration when empty.
  Duration PercentileBound(double fraction) const {
    if (count_ == 0) {
      return Duration();
    }
    uint64_t target = static_cast<uint64_t>(fraction * static_cast<double>(count_));
    if (target < 1) {
      target = 1;
    }
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        if (i == kNumBuckets - 1) {
          return max_;  // the overflow bucket is unbounded above
        }
        Duration upper = Microseconds(int64_t{1} << (i + 1));
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

  // Historical name for PercentileBound (the single-node reports use it).
  Duration ApproxPercentile(double fraction) const { return PercentileBound(fraction); }

  // Index of the last non-empty bucket (-1 when empty); printers use it to
  // bound their loops.
  int HighestBucket() const {
    for (int i = kNumBuckets - 1; i >= 0; --i) {
      if (buckets_[i] > 0) {
        return i;
      }
    }
    return -1;
  }

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  Duration min_;
  Duration max_;
  Duration total_;
};

}  // namespace emeralds

#endif  // SRC_BASE_LOG2_HISTOGRAM_H_
