#include "src/base/status.h"

namespace emeralds {

const char* StatusToString(Status status) {
  switch (status) {
    case Status::kOk:
      return "kOk";
    case Status::kInvalidArgument:
      return "kInvalidArgument";
    case Status::kNotFound:
      return "kNotFound";
    case Status::kResourceExhausted:
      return "kResourceExhausted";
    case Status::kPermissionDenied:
      return "kPermissionDenied";
    case Status::kTimedOut:
      return "kTimedOut";
    case Status::kBusy:
      return "kBusy";
    case Status::kBadHandle:
      return "kBadHandle";
    case Status::kOutOfRange:
      return "kOutOfRange";
    case Status::kFailedPrecondition:
      return "kFailedPrecondition";
    case Status::kAlreadyExists:
      return "kAlreadyExists";
    case Status::kWouldBlock:
      return "kWouldBlock";
    case Status::kCancelled:
      return "kCancelled";
    case Status::kBufferTooSmall:
      return "kBufferTooSmall";
    case Status::kTruncated:
      return "kTruncated";
  }
  return "<unknown Status>";
}

}  // namespace emeralds
