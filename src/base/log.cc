#include "src/base/log.h"

#include <cstdarg>
#include <cstdio>

namespace emeralds {
namespace {

LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_log_level)) {
    return;
  }
  // Strip the directory part for compact output.
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      basename = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), basename, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace emeralds
