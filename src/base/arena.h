// Bump-pointer arena allocator.
//
// The fleet runner places each simulated node's top-level state (hardware,
// kernel, workload closures) into one arena per instance: allocations are a
// pointer bump into a single contiguous block, so a node's state is
// cache-isolated from its neighbors, and teardown is one Reset() — objects
// registered through New<T> get their destructors run LIFO, then the whole
// block is reclaimed at once. The arena never reallocates or frees
// individual objects; capacity is fixed at construction (small-memory
// discipline: size the node up front, fail loudly when it doesn't fit).

#ifndef SRC_BASE_ARENA_H_
#define SRC_BASE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/base/assert.h"

namespace emeralds {

class Arena {
 public:
  explicit Arena(size_t capacity)
      : block_(new std::byte[capacity]), capacity_(capacity) {}
  ~Arena() { Reset(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw aligned allocation. Panics when the arena is exhausted — fleet
  // callers size arenas from a measured per-node footprint.
  void* Allocate(size_t size, size_t align) {
    EM_ASSERT_MSG((align & (align - 1)) == 0, "alignment must be a power of two");
    uintptr_t base = reinterpret_cast<uintptr_t>(block_.get());
    uintptr_t current = base + used_;
    uintptr_t aligned = (current + align - 1) & ~(uintptr_t{align} - 1);
    size_t new_used = (aligned - base) + size;
    EM_ASSERT_MSG(new_used <= capacity_, "arena exhausted: %zu + %zu bytes > %zu",
                  used_, size, capacity_);
    used_ = new_used;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return reinterpret_cast<void*>(aligned);
  }

  // Constructs a T in the arena. Non-trivially-destructible types are
  // registered on an intrusive finalizer chain (itself arena-allocated) that
  // Reset() runs in reverse construction order.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    T* object = new (Allocate(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      auto* finalizer = static_cast<Finalizer*>(Allocate(sizeof(Finalizer), alignof(Finalizer)));
      finalizer->object = object;
      finalizer->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
      finalizer->next = finalizers_;
      finalizers_ = finalizer;
    }
    return object;
  }

  // Runs registered destructors (LIFO) and reclaims the whole block in one
  // pointer reset. The backing memory is reused by subsequent allocations.
  void Reset() {
    for (Finalizer* f = finalizers_; f != nullptr; f = f->next) {
      f->destroy(f->object);
    }
    finalizers_ = nullptr;
    used_ = 0;
  }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  // Peak usage across the arena's lifetime (survives Reset) — the number to
  // size production arenas from.
  size_t high_water() const { return high_water_; }

 private:
  struct Finalizer {
    void* object;
    void (*destroy)(void*);
    Finalizer* next;
  };

  std::unique_ptr<std::byte[]> block_;
  size_t capacity_;
  size_t used_ = 0;
  size_t high_water_ = 0;
  Finalizer* finalizers_ = nullptr;
};

}  // namespace emeralds

#endif  // SRC_BASE_ARENA_H_
