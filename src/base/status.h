// Error handling for kernel services.
//
// Kernel code reports failure through Status codes (no exceptions). Result<T>
// carries either a value or a non-OK Status, mirroring the style of
// zx_status_t / fit::result in production microkernels.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <new>
#include <utility>

#include "src/base/assert.h"

namespace emeralds {

// Kernel-wide error codes. Values are stable so they can double as the
// syscall-layer return convention.
enum class Status : int {
  kOk = 0,
  kInvalidArgument = -1,
  kNotFound = -2,
  kResourceExhausted = -3,
  kPermissionDenied = -4,
  kTimedOut = -5,
  kBusy = -6,
  kBadHandle = -7,
  kOutOfRange = -8,
  kFailedPrecondition = -9,
  kAlreadyExists = -10,
  kWouldBlock = -11,
  kCancelled = -12,
  kBufferTooSmall = -13,
  // Data was delivered but did not fit the caller's buffer; the payload was
  // cut to the buffer size (mailbox receive into a short buffer).
  kTruncated = -14,
};

// Human-readable name for a status code ("kOk", "kTimedOut", ...).
const char* StatusToString(Status status);

// A value-or-error holder. A Result is either OK and holds a T, or holds a
// non-OK Status. Accessing value() on an error Result panics.
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return Status::kBusy;` or
  // `return some_value;`.
  Result(Status status) : ok_(false), status_(status) {  // NOLINT(runtime/explicit)
    EM_ASSERT_MSG(status != Status::kOk, "OK Result must carry a value");
  }
  Result(T value) : ok_(true), status_(Status::kOk) {  // NOLINT(runtime/explicit)
    new (&storage_) T(std::move(value));
  }

  Result(const Result& other) : ok_(other.ok_), status_(other.status_) {
    if (ok_) {
      new (&storage_) T(other.value());
    }
  }
  Result(Result&& other) noexcept : ok_(other.ok_), status_(other.status_) {
    if (ok_) {
      new (&storage_) T(std::move(other.value_ref()));
    }
  }
  Result& operator=(const Result& other) {
    if (this != &other) {
      Destroy();
      ok_ = other.ok_;
      status_ = other.status_;
      if (ok_) {
        new (&storage_) T(other.value());
      }
    }
    return *this;
  }
  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      Destroy();
      ok_ = other.ok_;
      status_ = other.status_;
      if (ok_) {
        new (&storage_) T(std::move(other.value_ref()));
      }
    }
    return *this;
  }
  ~Result() { Destroy(); }

  bool ok() const { return ok_; }
  Status status() const { return status_; }

  const T& value() const {
    EM_ASSERT_MSG(ok_, "Result::value() on error %s", StatusToString(status_));
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }
  T& value() {
    EM_ASSERT_MSG(ok_, "Result::value() on error %s", StatusToString(status_));
    return value_ref();
  }
  // Moves the value out; the Result must be OK.
  T take_value() {
    EM_ASSERT_MSG(ok_, "Result::take_value() on error %s", StatusToString(status_));
    return std::move(value_ref());
  }

  const T& operator*() const { return value(); }
  T& operator*() { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  T& value_ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  void Destroy() {
    if (ok_) {
      value_ref().~T();
      ok_ = false;
    }
  }

  bool ok_;
  Status status_;
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace emeralds

#endif  // SRC_BASE_STATUS_H_
