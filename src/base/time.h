// Time types for the simulated kernel.
//
// All kernel time is virtual and carried as signed 64-bit nanosecond counts:
// Duration for spans, Instant for points on the virtual clock (ns since
// simulated boot). Nanosecond resolution lets the cost model charge
// sub-microsecond amounts (e.g. the paper's 0.25 us/task EDF selection slope)
// without rounding error.

#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <compare>
#include <cstdint>

namespace emeralds {

class Duration {
 public:
  constexpr Duration() : ns_(0) {}
  static constexpr Duration FromNanos(int64_t ns) { return Duration(ns); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double micros_f() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_positive() const { return ns_ > 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(int64_t factor) const { return Duration(ns_ * factor); }
  constexpr Duration operator/(int64_t divisor) const { return Duration(ns_ / divisor); }
  constexpr int64_t operator/(Duration other) const { return ns_ / other.ns_; }
  Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}

  int64_t ns_;
};

constexpr Duration Nanoseconds(int64_t n) { return Duration::FromNanos(n); }
constexpr Duration Microseconds(int64_t n) { return Duration::FromNanos(n * 1000); }
constexpr Duration Milliseconds(int64_t n) { return Duration::FromNanos(n * 1000000); }
constexpr Duration Seconds(int64_t n) { return Duration::FromNanos(n * 1000000000); }
// Fractional microseconds, rounded to the nearest nanosecond. Used by the cost
// model whose coefficients come straight from the paper (e.g. 0.36 us/task).
constexpr Duration MicrosecondsF(double us) {
  return Duration::FromNanos(static_cast<int64_t>(us * 1e3 + (us >= 0 ? 0.5 : -0.5)));
}
constexpr Duration MillisecondsF(double ms) {
  return Duration::FromNanos(static_cast<int64_t>(ms * 1e6 + (ms >= 0 ? 0.5 : -0.5)));
}

class Instant {
 public:
  constexpr Instant() : ns_(0) {}
  static constexpr Instant FromNanos(int64_t ns) { return Instant(ns); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }

  constexpr Instant operator+(Duration d) const { return Instant(ns_ + d.nanos()); }
  constexpr Instant operator-(Duration d) const { return Instant(ns_ - d.nanos()); }
  constexpr Duration operator-(Instant other) const {
    return Duration::FromNanos(ns_ - other.ns_);
  }
  Instant& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }

  constexpr auto operator<=>(const Instant&) const = default;

  // The largest representable instant; used as "no deadline pending".
  static constexpr Instant Max() { return Instant(INT64_MAX); }

 private:
  explicit constexpr Instant(int64_t ns) : ns_(ns) {}

  int64_t ns_;
};

// Formats a duration as e.g. "12.345us" or "3.2ms" into `buffer` (of size
// `size`); returns `buffer` for convenience.
const char* FormatDuration(Duration d, char* buffer, int size);

}  // namespace emeralds

#endif  // SRC_BASE_TIME_H_
