#include "src/base/thread_pool.h"

#include "src/base/assert.h"

namespace emeralds {
namespace {

thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = hw != 0 ? static_cast<int>(hw) : 4;
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    stop_ = true;
    ++signal_;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

int ThreadPool::CurrentWorker() { return tls_worker_index; }

void ThreadPool::Submit(std::function<void()> task) {
  int target = tls_worker_index;
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++pending_;
    if (target < 0 || target >= worker_count()) {
      target = static_cast<int>(round_robin_++ % workers_.size());
    }
  }
  {
    std::lock_guard<std::mutex> lock(workers_[static_cast<size_t>(target)]->mutex);
    workers_[static_cast<size_t>(target)]->deque.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    ++signal_;
  }
  idle_cv_.notify_one();
}

bool ThreadPool::PopOwn(int self, std::function<void()>& task) {
  Worker& w = *workers_[static_cast<size_t>(self)];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.deque.empty()) {
    return false;
  }
  task = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool ThreadPool::Steal(int self, std::function<void()>& task) {
  int n = worker_count();
  for (int offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[static_cast<size_t>((self + offset) % n)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.deque.empty()) {
      task = std::move(victim.deque.front());
      victim.deque.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunOne(std::function<void()>& task) {
  task();
  task = nullptr;
  std::lock_guard<std::mutex> lock(idle_mutex_);
  EM_ASSERT(pending_ > 0);
  if (--pending_ == 0) {
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerMain(int self) {
  tls_worker_index = self;
  uint64_t seen;
  {
    std::lock_guard<std::mutex> lock(idle_mutex_);
    seen = signal_;
  }
  std::function<void()> task;
  for (;;) {
    if (PopOwn(self, task) || Steal(self, task)) {
      RunOne(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mutex_);
    if (signal_ != seen) {
      // A submit landed between our last scan and this lock; rescan before
      // sleeping — this is what makes a missed wakeup impossible.
      seen = signal_;
      continue;
    }
    if (stop_) {
      return;
    }
    idle_cv_.wait(lock, [&] { return stop_ || signal_ != seen; });
    if (stop_ && signal_ == seen) {
      return;
    }
    seen = signal_;
  }
}

void ThreadPool::Wait() {
  EM_ASSERT_MSG(tls_worker_index == -1, "ThreadPool::Wait called from a pool worker");
  std::unique_lock<std::mutex> lock(idle_mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t count, const std::function<void(int64_t)>& fn) {
  for (int64_t i = 0; i < count; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  Wait();
}

}  // namespace emeralds
