// Leveled logging to stderr.
//
// Logging is for the host-side tooling (benches, examples, analysis); the
// kernel fast paths never log. Severity is filtered at run time via
// SetLogLevel so benches can run quietly.

#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

namespace emeralds {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, const char* file, int line, const char* format, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace emeralds

#define EM_LOG_DEBUG(...) \
  ::emeralds::LogMessage(::emeralds::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define EM_LOG_INFO(...) \
  ::emeralds::LogMessage(::emeralds::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define EM_LOG_WARNING(...) \
  ::emeralds::LogMessage(::emeralds::LogLevel::kWarning, __FILE__, __LINE__, __VA_ARGS__)
#define EM_LOG_ERROR(...) \
  ::emeralds::LogMessage(::emeralds::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

#endif  // SRC_BASE_LOG_H_
