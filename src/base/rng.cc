#include "src/base/rng.h"

#include "src/base/assert.h"

namespace emeralds {
namespace {

// splitmix64: seeds and stream derivation. Guarantees a non-degenerate state
// even for seed 0.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  state_ = SplitMix64(x);
  if (state_ == 0) {
    state_ = 0x2545f4914f6cdd1dULL;
  }
}

uint64_t Rng::Next() {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545f4914f6cdd1dULL;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  EM_ASSERT(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t value;
  do {
    value = Next();
  } while (value >= limit);
  return lo + static_cast<int64_t>(value % span);
}

double Rng::UniformReal(double lo, double hi) {
  EM_ASSERT(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork(uint64_t index) const {
  uint64_t x = state_ ^ (0xd1b54a32d192ed03ULL * (index + 1));
  return Rng(SplitMix64(x));
}

}  // namespace emeralds
