#include "src/script/script.h"

#include <memory>

#include "src/base/assert.h"
#include "src/core/objects.h"

namespace emeralds {

Action Action::Compute(Duration d) {
  Action a;
  a.kind = Kind::kCompute;
  a.duration = d;
  return a;
}
Action Action::Acquire(SemId sem) {
  Action a;
  a.kind = Kind::kAcquire;
  a.sem = sem;
  return a;
}
Action Action::Release(SemId sem) {
  Action a;
  a.kind = Kind::kRelease;
  a.sem = sem;
  return a;
}
Action Action::WaitPeriod() {
  Action a;
  a.kind = Kind::kWaitPeriod;
  return a;
}
Action Action::Sleep(Duration d) {
  Action a;
  a.kind = Kind::kSleep;
  a.duration = d;
  return a;
}
Action Action::WaitIrq(int line) {
  Action a;
  a.kind = Kind::kWaitIrq;
  a.irq_line = line;
  return a;
}
Action Action::Recv(MailboxId mailbox, size_t bytes) {
  Action a;
  a.kind = Kind::kRecv;
  a.mailbox = mailbox;
  a.bytes = bytes;
  return a;
}
Action Action::Send(MailboxId mailbox, size_t bytes) {
  Action a;
  a.kind = Kind::kSend;
  a.mailbox = mailbox;
  a.bytes = bytes;
  return a;
}
Action Action::StateWrite(SmsgId smsg, size_t bytes) {
  Action a;
  a.kind = Kind::kStateWrite;
  a.smsg = smsg;
  a.bytes = bytes;
  return a;
}
Action Action::StateRead(SmsgId smsg, size_t bytes) {
  Action a;
  a.kind = Kind::kStateRead;
  a.smsg = smsg;
  a.bytes = bytes;
  return a;
}

bool Action::blocking() const {
  switch (kind) {
    case Kind::kWaitPeriod:
    case Kind::kSleep:
    case Kind::kWaitIrq:
    case Kind::kRecv:
      return true;
    // kAcquire blocks too, but it is the *target* of hints, not a carrier;
    // kSend may block when the mailbox is full, but the wake path for a
    // blocked send re-enters user code at the send itself, so the paper's
    // hint placement applies to the call *after* it — treated as a carrier.
    case Kind::kSend:
      return true;
    default:
      return false;
  }
}

int Instrument(Script& script) {
  int hints = 0;
  size_t count = script.actions.size();
  for (size_t i = 0; i < count; ++i) {
    Action& action = script.actions[i];
    action.next_sem_hint = kNoSem;
    if (!action.blocking()) {
      continue;
    }
    // Scan forward (wrapping once around the loop) through non-blocking
    // actions for the next kernel call; a kAcquire yields a hint.
    for (size_t step = 1; step <= count; ++step) {
      const Action& next = script.actions[(i + step) % count];
      if (next.kind == Action::Kind::kAcquire) {
        action.next_sem_hint = next.sem;
        ++hints;
        break;
      }
      if (next.blocking()) {
        break;  // another blocking call intervenes: no hint
      }
      // kCompute / kRelease / state-message ops are looked through, exactly
      // like straight-line code between the blocking call and acquire_sem.
    }
  }
  return hints;
}

ThreadBodyFactory MakeScriptBody(Script script) {
  auto shared = std::make_shared<Script>(std::move(script));
  return [shared](ThreadApi api) -> ThreadBody {
    // Scratch buffers for IPC payloads (script payload contents are don't-
    // care bytes of the requested size).
    uint8_t buffer[kMaxMessageBytes] = {};
    uint64_t iterations = shared->iterations;
    for (uint64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
      for (const Action& action : shared->actions) {
        switch (action.kind) {
          case Action::Kind::kCompute:
            co_await api.Compute(action.duration);
            break;
          case Action::Kind::kAcquire: {
            Status status = co_await api.Acquire(action.sem);
            EM_ASSERT_MSG(status == Status::kOk, "script acquire failed: %s",
                          StatusToString(status));
            break;
          }
          case Action::Kind::kRelease: {
            Status status = co_await api.Release(action.sem);
            EM_ASSERT_MSG(status == Status::kOk, "script release failed: %s",
                          StatusToString(status));
            break;
          }
          case Action::Kind::kWaitPeriod:
            co_await api.WaitNextPeriod(action.next_sem_hint);
            break;
          case Action::Kind::kSleep:
            co_await api.Sleep(action.duration, action.next_sem_hint);
            break;
          case Action::Kind::kWaitIrq:
            co_await api.WaitIrq(action.irq_line, action.next_sem_hint);
            break;
          case Action::Kind::kRecv: {
            size_t n = action.bytes < sizeof(buffer) ? action.bytes : sizeof(buffer);
            co_await api.Recv(action.mailbox, std::span<uint8_t>(buffer, n), Duration(),
                              action.next_sem_hint);
            break;
          }
          case Action::Kind::kSend: {
            size_t n = action.bytes < sizeof(buffer) ? action.bytes : sizeof(buffer);
            co_await api.Send(action.mailbox, std::span<const uint8_t>(buffer, n));
            break;
          }
          case Action::Kind::kStateWrite: {
            size_t n = action.bytes < sizeof(buffer) ? action.bytes : sizeof(buffer);
            co_await api.StateWrite(action.smsg, std::span<const uint8_t>(buffer, n));
            break;
          }
          case Action::Kind::kStateRead: {
            size_t n = action.bytes < sizeof(buffer) ? action.bytes : sizeof(buffer);
            co_await api.StateRead(action.smsg, std::span<uint8_t>(buffer, n));
            break;
          }
        }
      }
    }
  };
}

}  // namespace emeralds
