// Declarative task scripts and the code-parser analogue (Section 6.2.1).
//
// EMERALDS's context-switch elimination needs every blocking call to carry
// the identifier of the semaphore the task will acquire next. The paper
// automates this with a parser over the application's C source; here task
// code can be written as a declarative action script, and Instrument()
// performs the identical transformation: it back-annotates each blocking
// action with the id of the upcoming acquire (or -1), looking through
// non-blocking actions and wrapping around the loop, "so the application
// programmer does not have to make any manual modifications to the code".
//
// MakeScriptBody() turns an (instrumented) script into a thread body the
// kernel can run.

#ifndef SRC_SCRIPT_SCRIPT_H_
#define SRC_SCRIPT_SCRIPT_H_

#include <cstdint>
#include <vector>

#include "src/base/time.h"
#include "src/core/config.h"
#include "src/core/ids.h"

namespace emeralds {

struct Action {
  enum class Kind {
    kCompute,     // consume CPU
    kAcquire,     // acquire_sem
    kRelease,     // release_sem
    kWaitPeriod,  // end of job (blocking)
    kSleep,       // blocking delay
    kWaitIrq,     // blocking wait for a device interrupt
    kRecv,        // blocking mailbox receive
    kSend,        // mailbox send (may block when full)
    kStateWrite,  // state-message publish (non-blocking)
    kStateRead,   // state-message snapshot (non-blocking)
  };

  Kind kind = Kind::kCompute;
  Duration duration;        // kCompute / kSleep
  SemId sem;                // kAcquire / kRelease
  MailboxId mailbox;        // kSend / kRecv
  SmsgId smsg;              // kStateWrite / kStateRead
  int irq_line = -1;        // kWaitIrq
  size_t bytes = 0;         // payload size for IPC actions
  // Filled in by Instrument(): the CSE hint attached to blocking actions.
  SemId next_sem_hint;

  static Action Compute(Duration d);
  static Action Acquire(SemId sem);
  static Action Release(SemId sem);
  static Action WaitPeriod();
  static Action Sleep(Duration d);
  static Action WaitIrq(int line);
  static Action Recv(MailboxId mailbox, size_t bytes);
  static Action Send(MailboxId mailbox, size_t bytes);
  static Action StateWrite(SmsgId smsg, size_t bytes);
  static Action StateRead(SmsgId smsg, size_t bytes);

  bool blocking() const;
};

struct Script {
  std::vector<Action> actions;
  // Number of times the action list repeats; 0 = repeat until the kernel
  // stops being run.
  uint64_t iterations = 0;
};

// The "code parser": annotates every blocking action with the semaphore id
// of the next kAcquire, scanning through non-blocking actions and wrapping
// around the loop boundary. Returns the number of hints inserted.
int Instrument(Script& script);

// Adapts a script into a thread body. The script is copied into the
// coroutine, so the caller's Script may go out of scope.
ThreadBodyFactory MakeScriptBody(Script script);

}  // namespace emeralds

#endif  // SRC_SCRIPT_SCRIPT_H_
