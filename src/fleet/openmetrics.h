// OpenMetrics / Prometheus text exposition of a fleet's final scrape state.
//
// BuildOpenMetricsExposition renders the FleetResult the way a Prometheus
// scrape of the fleet at its horizon would look: fleet-level counters, a
// small per-node drill-down set, the merged streaming histograms as
// le-bucketed histogram families, and the alert state (events per rule,
// plus the alerts still firing at the horizon as a labeled gauge). The
// document ends with the mandatory `# EOF` terminator.
//
// ValidateOpenMetrics is a strict-enough round-trip parser used by the
// tests and `fleet_inspect --openmetrics`: every sample must belong to a
// family declared by a preceding `# TYPE` line, histogram families must
// carry a +Inf bucket that equals their _count, and the document must end
// with `# EOF`.

#ifndef SRC_FLEET_OPENMETRICS_H_
#define SRC_FLEET_OPENMETRICS_H_

#include <string>

#include "src/fleet/fleet.h"

namespace emeralds {
namespace fleet {

std::string BuildOpenMetricsExposition(const FleetResult& result);

// Returns true when `text` parses as a valid exposition; otherwise false
// with a one-line reason in *error (when non-null). *families (when
// non-null) receives the number of declared metric families.
bool ValidateOpenMetrics(const std::string& text, std::string* error,
                         int* families = nullptr);

}  // namespace fleet
}  // namespace emeralds

#endif  // SRC_FLEET_OPENMETRICS_H_
