#include "src/fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "src/base/arena.h"
#include "src/base/assert.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/core/kernel.h"
#include "src/obs/blackbox.h"
#include "src/obs/chains.h"
#include "src/obs/obs_report.h"
#include "src/obs/postmortem.h"
#include "src/obs/trace_analyzer.h"

namespace emeralds {
namespace fleet {
namespace {

uint64_t Fnv1a(uint64_t hash, const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

// Same digest recipe as the torture harness: the retained trace window plus
// the reconciled counters. Equal digests == bit-identical runs.
uint64_t DigestNode(const Kernel& kernel) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  const TraceSink& trace = kernel.trace();
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace.at(i);
    int64_t us = e.time.micros();
    int32_t type = static_cast<int32_t>(e.type);
    hash = Fnv1a(hash, &us, sizeof(us));
    hash = Fnv1a(hash, &type, sizeof(type));
    hash = Fnv1a(hash, &e.arg0, sizeof(e.arg0));
    hash = Fnv1a(hash, &e.arg1, sizeof(e.arg1));
    hash = Fnv1a(hash, &e.arg2, sizeof(e.arg2));
  }
  const KernelStats& s = kernel.stats();
  uint64_t counters[] = {s.context_switches, s.syscalls,         s.jobs_released,
                         s.jobs_completed,   s.deadline_misses,  s.sem_acquires,
                         s.mailbox_sends,    s.mailbox_receives, s.interrupts,
                         s.timer_dispatches, s.chain_emits,      s.chain_consumes,
                         s.chain_origins};
  hash = Fnv1a(hash, counters, sizeof(counters));
  return hash;
}

// Workload handles, arena-resident (trivially destructible: ids + bytes).
struct NodeState {
  SemId tick_sem;
  TimerId timer;
  MailboxId mbox;
  uint8_t payload[8] = {};
};

// One simulated node: its arena owns the Hardware, the Kernel, and the
// workload handles; the control block itself is tiny and heap-held.
struct Node {
  explicit Node(size_t arena_bytes) : arena(arena_bytes) {}

  Arena arena;
  Hardware* hw = nullptr;
  Kernel* kernel = nullptr;
  NodeState* st = nullptr;
  Instant end;
  int index = -1;
  NodeResult result;
  // Streaming telemetry collector (heap, not arena: it outlives the arena
  // Reset in FinishNode only long enough to be snapshotted into the result).
  std::unique_ptr<obs::TimeseriesCollector> ts;
};

// Every node's simulation is a pure function of (fleet seed, node index,
// timer_queue): all randomness flows from this fork, and nothing host-side
// (worker id, steal order, wall time) is ever consulted.
void BuildNode(Node& node, const FleetOptions& opt, int index) {
  Rng topo = Rng(opt.seed).Fork(static_cast<uint64_t>(index) + 1);
  node.index = index;
  node.result.seed = opt.seed;
  if (opt.timeseries) {
    node.ts = std::make_unique<obs::TimeseriesCollector>(opt.timeseries_options);
  }
  // Overload injection: the multiplier is applied *after* every topology
  // draw below, so the Rng stream — and therefore every other node — is
  // bit-identical whether or not this node is the designated victim.
  int64_t overload = (index == opt.overload_node && opt.overload_factor > 1)
                         ? opt.overload_factor
                         : 1;

  KernelConfig config;
  switch (index % 4) {
    case 0:
      config.scheduler = SchedulerSpec::Edf();
      node.result.scheduler = "EDF";
      break;
    case 1:
      config.scheduler = SchedulerSpec::Rm();
      node.result.scheduler = "RM";
      break;
    case 2:
      config.scheduler = SchedulerSpec::Csd(2);
      node.result.scheduler = "CSD-2";
      break;
    default:
      config.scheduler = SchedulerSpec::Csd(3);
      node.result.scheduler = "CSD-3";
      break;
  }
  int dp_bands = 0;
  for (size_t i = 0; i < config.scheduler.bands.size(); ++i) {
    if (config.scheduler.bands[i] == QueueKind::kEdfList) {
      ++dp_bands;
    }
  }
  config.cost_model = CostModel::MC68040_25MHz();
  config.timer_queue = opt.timer_queue;
  // Sized for the full event stream including kOverheadSpan records (one per
  // charged kernel advance, ~3x the rest of the stream), so a default-sized
  // node keeps a complete window and the exact-attribution oracles stay armed.
  config.trace_capacity =
      opt.trace_capacity != 0
          ? opt.trace_capacity
          : static_cast<size_t>(4096 + opt.run_duration.millis() * 1536);

  // Declared causal chains: the timer's tick into the pacer, and the
  // producer's release through the mailbox. Both carry SLOs so the fleet
  // report aggregates overruns, and both feed oracle 4.
  {
    ChainSpec tick;
    tick.name = "tick";
    tick.deadline = Milliseconds(5);
    tick.stages.push_back(ChainStageSpec{"sem:tick_sem", ""});
    config.chains.push_back(tick);

    ChainSpec pipe;
    pipe.name = "pipe";
    pipe.deadline = Milliseconds(topo.UniformInt(3, 6));
    pipe.stages.push_back(ChainStageSpec{"release:producer", "producer"});
    pipe.stages.push_back(ChainStageSpec{"mbox:pipe", ""});
    config.chains.push_back(pipe);
  }

  node.hw = node.arena.New<Hardware>();
  node.kernel = node.arena.New<Kernel>(*node.hw, config);
  Kernel& kernel = *node.kernel;
  NodeState* st = node.arena.New<NodeState>();
  node.st = st;

  st->tick_sem = kernel.CreateSemaphore("tick_sem", 0).value();
  st->mbox = kernel.CreateMailbox("pipe", static_cast<size_t>(topo.UniformInt(2, 4))).value();
  st->timer = kernel.CreateTimer("tick", st->tick_sem).value();
  kernel.StartTimer(st->timer, Microseconds(topo.UniformInt(100, 500)),
                    Microseconds(topo.UniformInt(400, 900)));

  // Pacer: aperiodic, paced by the user timer's counting semaphore. Its
  // acquire consumes the timer's chain token (the "tick" chain).
  {
    ThreadParams params;
    params.name = "pacer";
    Rng body_rng = topo.Fork(11);
    params.body = [st, body_rng](ThreadApi api) mutable -> ThreadBody {
      for (;;) {
        co_await api.Acquire(st->tick_sem);
        co_await api.Compute(Microseconds(body_rng.UniformInt(20, 60)));
      }
    };
    kernel.CreateThread(params);
  }

  // Producer: periodic sends into the pipe mailbox ("pipe" chain origin is
  // its job release).
  Duration producer_period = Microseconds(topo.UniformInt(1000, 3000));
  {
    ThreadParams params;
    params.name = "producer";
    params.period = producer_period;
    params.first_release = Microseconds(topo.UniformInt(0, 400));
    params.band = dp_bands > 0 ? 0 : -1;
    Duration cost = Microseconds(topo.UniformInt(100, 250) * overload);
    params.wcet = cost;
    params.body = [st, cost](ThreadApi api) -> ThreadBody {
      for (;;) {
        co_await api.Compute(cost);
        co_await api.TrySend(st->mbox, std::span<const uint8_t>(st->payload, 8));
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(params);
  }

  // Consumer: periodic receive with a timeout — the timeout path arms and
  // cancels a soft timer on nearly every job, which is exactly the churn the
  // timer wheel is meant to make cheap.
  {
    ThreadParams params;
    params.name = "consumer";
    Duration period = Microseconds(topo.UniformInt(2000, 5000));
    params.period = period;
    params.first_release = Microseconds(topo.UniformInt(0, 400));
    params.band = dp_bands > 1 ? 1 : (dp_bands > 0 ? 0 : -1);
    Duration cost = Microseconds(topo.UniformInt(150, 400) * overload);
    params.wcet = cost + period / 4;
    params.body = [st, cost, period](ThreadApi api) -> ThreadBody {
      uint8_t buffer[8];
      for (;;) {
        co_await api.Recv(st->mbox, std::span<uint8_t>(buffer, sizeof(buffer)), period / 4);
        co_await api.Compute(cost);
        co_await api.WaitNextPeriod();
      }
    };
    kernel.CreateThread(params);
  }

  // Sleeper: pure timer churn in the fixed-priority band.
  {
    ThreadParams params;
    params.name = "sleeper";
    Rng body_rng = topo.Fork(14);
    params.body = [body_rng](ThreadApi api) mutable -> ThreadBody {
      for (;;) {
        co_await api.Sleep(Microseconds(body_rng.UniformInt(200, 1500)));
        co_await api.Compute(Microseconds(10));
      }
    };
    kernel.CreateThread(params);
  }

  kernel.EnableStatsSampling(Milliseconds(2), 128);
  kernel.Start();
  node.end = Instant() + opt.run_duration;
}

// Applies the six per-node oracles, scores the anomaly triage, and (when
// enabled) collects the node's telemetry block. Pure read of kernel state:
// the virtual clock has already reached its horizon, so nothing here can
// perturb the simulated outcome or its digest.
void EvaluateNode(Node& node, const FleetOptions& opt) {
  Kernel& kernel = *node.kernel;
  NodeResult& r = node.result;
  const KernelStats& s = kernel.stats();

  r.events = s.context_switches + s.syscalls + s.interrupts + s.timer_dispatches;
  r.jobs_completed = s.jobs_completed;
  r.deadline_misses = s.deadline_misses;
  r.timer_dispatches = s.timer_dispatches;
  r.headroom_low_events = s.headroom_low_events;
  r.virtual_time = kernel.now() - Instant();
  r.trace_dropped = kernel.trace().dropped();
  r.trace_digest = DigestNode(kernel);

  obs::TraceAnalysis analysis = obs::AnalyzeTrace(kernel.trace());
  obs::Reconciliation reconciliation = obs::ComputeReconciliation(analysis, s);
  obs::ChainAnalysis chains = obs::AnalyzeChains(kernel.trace(), kernel.resolved_chains());
  for (const obs::ChainReport& c : chains.chains) {
    r.chain_completed += c.completed;
    r.chain_overruns += c.overruns;
  }
  obs::PostmortemAnalysis postmortem = obs::AnalyzePostmortem(kernel.trace());
  r.blame = postmortem.blame;
  r.postmortem_incomplete = postmortem.incomplete_misses;
  CycleConservation conservation = CheckCycleConservation(s, kernel.now());
  int64_t unattributed =
      kernel.hardware().clock().ledger().at(CycleBucket::kUnattributed).nanos();

  if (!analysis.violations.empty()) {
    r.failure = "trace invariant violated: " + analysis.violations[0].detail;
  } else if (r.trace_dropped == 0 && (!reconciliation.checked || !reconciliation.ok())) {
    r.failure = "reconciliation mismatch (trace vs kernel counters)";
  } else if (r.trace_dropped > 0 && reconciliation.checked) {
    r.failure = "reconciliation claimed a truncated trace was checked";
  } else if (conservation.residual.nanos() != 0 || unattributed != 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "cycle conservation violated: residual %lld ns, unattributed %lld ns",
                  static_cast<long long>(conservation.residual.nanos()),
                  static_cast<long long>(unattributed));
    r.failure = buf;
  } else if (!chains.violations.empty()) {
    r.failure = "chain token conservation: " + chains.violations[0].detail;
  } else if (chains.complete_window && chains.orphan_hops > 0) {
    r.failure = "chain token conservation: orphan hops in an untruncated trace";
  } else if (r.jobs_completed == 0 || r.timer_dispatches == 0 || s.mailbox_sends == 0) {
    r.failure = "progress oracle: node wedged (no jobs, timers, or messages)";
  } else if (postmortem.conservation_failures > 0 ||
             (!postmortem.window_truncated &&
              (postmortem.blame.unattributed_ns != 0 || postmortem.unmatched_misses > 0))) {
    r.failure = "lateness conservation: a miss ledger failed to telescope";
  }

  // Anomaly triage score: deterministic integer badness. Oracle failures
  // dominate everything; below them deadline misses outrank chain SLO
  // overruns outrank headroom warnings, with enough spread that counts of a
  // lesser class cannot outvote one of a greater class in realistic runs.
  r.anomaly_score = r.deadline_misses * 1000000 + r.chain_overruns * 10000 +
                    r.headroom_low_events * 100;
  if (!r.failure.empty()) {
    r.anomaly_score += 1000000000000ULL;
    r.anomaly = r.failure;
  } else if (r.deadline_misses > 0) {
    r.anomaly = "deadline misses";
  } else if (r.chain_overruns > 0) {
    r.anomaly = "chain SLO overruns";
  } else if (r.headroom_low_events > 0) {
    r.anomaly = "low deadline headroom";
  }

  if (opt.telemetry) {
    r.telemetry = obs::CollectNodeTelemetry(kernel, analysis, chains);
  }

  // Streaming plane: close the window series at the horizon (synthesizing
  // the tail interval), snapshot it into the result, and run the node-local
  // alert rules over it. Reads only — the digest was taken above.
  if (node.ts != nullptr) {
    node.ts->Finish(kernel);
    r.windows = node.ts->Snapshot();
    r.timeseries_lost_samples = node.ts->lost_samples();
    r.timeseries_windows_dropped = node.ts->windows_dropped();
    if (opt.alerts) {
      obs::AlertEngine engine(opt.alert_config);
      for (const obs::TelemetryWindow& w : r.windows) {
        engine.Observe(w, node.index, &r.alerts);
      }
    }
  }
}

// EvaluateNode plus teardown. Runs on the pool worker that executed the
// node's final slice.
void FinishNode(Node& node, const FleetOptions& opt) {
  EvaluateNode(node, opt);
  node.ts.reset();
  // Reclaim the node's entire footprint in one shot; record the high-water
  // mark first so arenas can be sized from measured fleets.
  node.arena.Reset();
  node.result.arena_high_water = node.arena.high_water();
  node.hw = nullptr;
  node.kernel = nullptr;
  node.st = nullptr;
}

size_t DefaultArenaBytes() {
  // Top-level node state only; kernel-internal containers (ready queues,
  // trace ring, TCBs) still come from the heap — the arena isolates and
  // batch-frees the objects the fleet itself places.
  return sizeof(Hardware) + sizeof(Kernel) + sizeof(NodeState) + 512;
}

}  // namespace

const char* TimerQueueImplName(TimerQueueImpl impl) {
  return impl == TimerQueueImpl::kWheel ? "wheel" : "sorted_list";
}

FleetResult RunFleet(const FleetOptions& options) {
  EM_ASSERT_MSG(ThreadPool::CurrentWorker() == -1,
                "RunFleet must not be called from a pool worker");
  EM_ASSERT(options.instances > 0);

  FleetOptions opt = options;
  if (opt.arena_bytes == 0) {
    opt.arena_bytes = DefaultArenaBytes();
  }

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(static_cast<size_t>(opt.instances));
  for (int i = 0; i < opt.instances; ++i) {
    nodes.push_back(std::make_unique<Node>(opt.arena_bytes));
  }

  auto wall_start = std::chrono::steady_clock::now();
  int resolved_workers = 0;
  {
    ThreadPool pool(opt.workers);
    resolved_workers = pool.worker_count();
    // Node slices re-enqueue themselves until the node's virtual horizon;
    // construction happens on the pool too, so a large fleet boots in
    // parallel. `step` outlives every task because pool.Wait() (via the
    // pool's scoped destruction) covers transitively submitted work.
    std::function<void(int)> step = [&](int index) {
      Node& node = *nodes[static_cast<size_t>(index)];
      if (node.kernel == nullptr) {
        BuildNode(node, opt, index);
      }
      Kernel& kernel = *node.kernel;
      Instant target = std::min(node.end, kernel.now() + opt.slice);
      kernel.RunUntil(target);
      if (node.ts != nullptr) {
        // Drain the snapshot ring at every slice boundary: the window series
        // materializes while the fleet runs, and the drain schedule is part
        // of the node's deterministic replay contract (InspectNode mirrors
        // it). Read-only on the kernel, so the digest cannot move.
        node.ts->Collect(kernel);
      }
      if (kernel.now() < node.end) {
        pool.Submit([&step, index] { step(index); });
      } else {
        FinishNode(node, opt);
      }
    };
    for (int i = 0; i < opt.instances; ++i) {
      pool.Submit([&step, i] { step(i); });
    }
    pool.Wait();
  }
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  FleetResult out;
  out.instances = opt.instances;
  out.workers = resolved_workers;
  out.seed = opt.seed;
  out.timer_queue = opt.timer_queue;
  out.wall_seconds = wall_seconds;
  out.artifacts_dir = opt.artifacts_dir;
  out.nodes.reserve(nodes.size());
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeResult& r = nodes[i]->result;
    out.events_total += r.events;
    out.jobs_completed += r.jobs_completed;
    out.deadline_misses += r.deadline_misses;
    out.timer_dispatches += r.timer_dispatches;
    out.chain_completed += r.chain_completed;
    out.chain_overruns += r.chain_overruns;
    out.virtual_time_total = out.virtual_time_total + r.virtual_time;
    out.nodes_failed += r.ok() ? 0 : 1;
    out.nodes_anomalous += r.anomalous() ? 1 : 0;
    out.headroom_low_total += r.headroom_low_events;
    out.trace_dropped_total += r.trace_dropped;
    if (r.trace_dropped > out.trace_dropped_worst) {
      out.trace_dropped_worst = r.trace_dropped;
      out.trace_dropped_worst_node = static_cast<int>(i);
    }
    out.arena_high_water = std::max(out.arena_high_water, r.arena_high_water);
    if (opt.telemetry) {
      obs::MergeNodeTelemetry(&out.telemetry, r.telemetry, static_cast<int>(i));
    }
    out.blame.Merge(r.blame);
    out.postmortem_incomplete_total += r.postmortem_incomplete;
    digest = Fnv1a(digest, &r.trace_digest, sizeof(r.trace_digest));
    out.nodes.push_back(r);
  }
  out.fleet_digest = digest;
  out.blame_digest = out.blame.Digest();
  double virtual_seconds = static_cast<double>(out.virtual_time_total.nanos()) / 1e9;
  out.events_per_virtual_sec =
      virtual_seconds > 0 ? static_cast<double>(out.events_total) / virtual_seconds : 0.0;
  out.events_per_wall_sec =
      wall_seconds > 0 ? static_cast<double>(out.events_total) / wall_seconds : 0.0;

  // Streaming plane, fleet-merged: same-index windows Merge losslessly and
  // order-invariantly, then the cross-node outlier rule runs over the
  // per-node series and the full alert stream is canonicalized. A firing
  // alert marks its node anomalous — that is what routes an alerting node
  // into the black-box selection below even when every oracle passed.
  if (opt.timeseries) {
    out.timeseries_options = opt.timeseries_options;
    out.alert_config = opt.alert_config;
    std::vector<const std::vector<obs::TelemetryWindow>*> series;
    series.reserve(out.nodes.size());
    for (const NodeResult& r : out.nodes) {
      series.push_back(&r.windows);
      out.timeseries_lost_samples += r.timeseries_lost_samples;
      out.timeseries_windows_dropped += r.timeseries_windows_dropped;
    }
    out.windows = obs::MergeWindowSeries(series);
    if (opt.alerts) {
      for (const NodeResult& r : out.nodes) {
        out.alerts.insert(out.alerts.end(), r.alerts.begin(), r.alerts.end());
      }
      obs::EvaluateFleetOutlierAlerts(series, opt.alert_config, &out.alerts);
      obs::SortAlertEvents(&out.alerts);
      for (const obs::AlertEvent& e : out.alerts) {
        if (!e.firing) {
          continue;
        }
        ++out.alerts_fired;
        if (e.node >= 0 && e.node < static_cast<int>(out.nodes.size())) {
          NodeResult& nr = out.nodes[static_cast<size_t>(e.node)];
          nr.anomaly_score += 500000;
          if (nr.anomaly.empty()) {
            nr.anomaly = std::string("alert firing: ") + obs::AlertRuleName(e.rule);
            ++out.nodes_anomalous;
          }
        }
      }
    }
  }

  // Black-box flight recorder: re-run the worst anomalous nodes serially and
  // bundle their forensic state. The fleet tore each node down right after
  // its horizon (memory is the budget at fleet scale), but a node is a pure
  // function of (seed, index), so the re-run reproduces the exact state —
  // digests are asserted to match.
  if (!opt.artifacts_dir.empty() && out.nodes_anomalous > 0 && opt.max_blackboxes > 0) {
    std::vector<int> worst;
    for (size_t i = 0; i < out.nodes.size(); ++i) {
      if (out.nodes[i].anomalous()) {
        worst.push_back(static_cast<int>(i));
      }
    }
    std::sort(worst.begin(), worst.end(), [&out](int a, int b) {
      const NodeResult& ra = out.nodes[static_cast<size_t>(a)];
      const NodeResult& rb = out.nodes[static_cast<size_t>(b)];
      if (ra.anomaly_score != rb.anomaly_score) {
        return ra.anomaly_score > rb.anomaly_score;
      }
      return a < b;
    });
    if (worst.size() > static_cast<size_t>(opt.max_blackboxes)) {
      worst.resize(static_cast<size_t>(opt.max_blackboxes));
    }
    for (int index : worst) {
      char label[32];
      std::snprintf(label, sizeof(label), "node-%d", index);
      std::string dir = opt.artifacts_dir + "/" + label;
      const NodeResult& fleet_view = out.nodes[static_cast<size_t>(index)];
      InspectNode(opt, index, [&](const Kernel& kernel, const NodeResult& r) {
        EM_ASSERT_MSG(r.trace_digest == fleet_view.trace_digest,
                      "black-box re-run diverged from the fleet run");
        // The fleet-side anomaly carries alert-triggered reasons the
        // node-local replay cannot know about.
        obs::BlackBoxSnapshot box = obs::CaptureBlackBox(
            kernel, label, fleet_view.anomaly, NodeReproCommand(opt, index));
        obs::WriteBlackBoxBundle(box, dir);
      });
      out.blackbox_nodes.push_back(index);
    }
  }
  return out;
}

NodeResult InspectNode(const FleetOptions& options, int index,
                       const std::function<void(const Kernel&, const NodeResult&)>& visit) {
  EM_ASSERT(index >= 0 && index < options.instances);
  FleetOptions opt = options;
  if (opt.arena_bytes == 0) {
    opt.arena_bytes = DefaultArenaBytes();
  }
  Node node(opt.arena_bytes);
  BuildNode(node, opt, index);
  // Slice-stepped exactly like the fleet run — not one shot — so the
  // streaming collector drains at the same instants and the replayed window
  // series and alert stream are bit-identical to what the fleet saw (the
  // virtual outcome itself is slice-invariant; the drain schedule is not).
  while (node.kernel->now() < node.end) {
    Instant target = std::min(node.end, node.kernel->now() + opt.slice);
    node.kernel->RunUntil(target);
    if (node.ts != nullptr) {
      node.ts->Collect(*node.kernel);
    }
  }
  EvaluateNode(node, opt);
  if (visit) {
    visit(*node.kernel, node.result);
  }
  node.arena.Reset();
  node.result.arena_high_water = node.arena.high_water();
  node.hw = nullptr;
  node.kernel = nullptr;
  node.st = nullptr;
  return node.result;
}

std::string NodeReproCommand(const FleetOptions& options, int index) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "fleet_inspect --instances=%d --seed=%llu --run-ms=%lld --slice-ms=%lld "
                "--timer-queue=%s --trace-capacity=%llu --node=%d",
                options.instances, static_cast<unsigned long long>(options.seed),
                static_cast<long long>(options.run_duration.millis()),
                static_cast<long long>(options.slice.millis()),
                TimerQueueImplName(options.timer_queue),
                static_cast<unsigned long long>(options.trace_capacity), index);
  std::string cmd = buf;
  if (options.overload_node >= 0) {
    std::snprintf(buf, sizeof(buf), " --overload-node=%d --overload-factor=%d",
                  options.overload_node, options.overload_factor);
    cmd += buf;
  }
  return cmd;
}

}  // namespace fleet
}  // namespace emeralds
