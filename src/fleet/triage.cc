#include "src/fleet/triage.h"

#include <algorithm>

#include "src/obs/alerts.h"
#include "src/obs/json_writer.h"

namespace emeralds {
namespace fleet {
namespace {

TriageMetric BuildMetric(const char* name, const std::vector<uint64_t>& values, int top_k) {
  TriageMetric m;
  m.name = name;

  // Robust statistics shared with the alert engine's fleet outlier rule
  // (src/obs/alerts.h) — the online and post-mortem outlier definitions are
  // the same code. When the median is zero the quarter-median guard is
  // vacuous, so any nonzero value on a clean metric is flagged — exactly the
  // injected-outlier case.
  m.median = obs::RobustMedian(values);
  m.mad = obs::RobustMad(values, m.median);

  std::vector<int> order;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0) {
      order.push_back(static_cast<int>(i));
    }
  }
  std::sort(order.begin(), order.end(), [&values](int a, int b) {
    uint64_t va = values[static_cast<size_t>(a)];
    uint64_t vb = values[static_cast<size_t>(b)];
    if (va != vb) {
      return va > vb;
    }
    return a < b;
  });

  for (int node : order) {
    uint64_t v = values[static_cast<size_t>(node)];
    bool outlier = obs::IsRobustOutlier(v, m.median, m.mad);
    if (outlier) {
      ++m.outliers;
    }
    if (static_cast<int>(m.top.size()) < top_k) {
      m.top.push_back(TriageEntry{node, v, outlier});
    }
  }
  return m;
}

}  // namespace

FleetTriage ComputeFleetTriage(const FleetResult& fleet, int top_k) {
  FleetTriage triage;
  size_t n = fleet.nodes.size();
  if (n == 0 || top_k <= 0) {
    return triage;
  }

  struct MetricSource {
    const char* name;
    uint64_t (*get)(const NodeResult&);
    bool needs_telemetry;
  };
  static const MetricSource kSources[] = {
      {"anomaly_score", [](const NodeResult& r) { return r.anomaly_score; }, false},
      {"deadline_misses", [](const NodeResult& r) { return r.deadline_misses; }, false},
      {"chain_overruns", [](const NodeResult& r) { return r.chain_overruns; }, false},
      {"headroom_low_events", [](const NodeResult& r) { return r.headroom_low_events; },
       false},
      {"trace_dropped", [](const NodeResult& r) { return r.trace_dropped; }, false},
      {"blamed_tardiness_us",
       [](const NodeResult& r) {
         return static_cast<uint64_t>(r.blame.tardiness_ns / 1000);
       },
       false},
      {"response_p99_us",
       [](const NodeResult& r) {
         return static_cast<uint64_t>(r.telemetry.response.PercentileBound(0.99).micros());
       },
       true},
  };

  bool telemetry = fleet.telemetry.nodes_collected > 0;
  std::vector<uint64_t> values(n);
  for (const MetricSource& src : kSources) {
    if (src.needs_telemetry && !telemetry) {
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      values[i] = src.get(fleet.nodes[i]);
    }
    triage.metrics.push_back(BuildMetric(src.name, values, top_k));
  }

  // Union of flagged nodes, worst anomaly_score first. Re-run the flagging
  // per metric so membership matches the per-metric `outlier` bits exactly.
  std::vector<bool> flagged(n, false);
  for (const TriageMetric& m : triage.metrics) {
    uint64_t threshold = std::max(5 * m.mad, m.median / 4);
    const MetricSource* src = nullptr;
    for (const MetricSource& s : kSources) {
      if (m.name == s.name) {
        src = &s;
        break;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = src->get(fleet.nodes[i]);
      if (v > m.median && (v - m.median) > threshold) {
        flagged[i] = true;
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (flagged[i]) {
      triage.outlier_nodes.push_back(static_cast<int>(i));
    }
  }
  std::sort(triage.outlier_nodes.begin(), triage.outlier_nodes.end(),
            [&fleet](int a, int b) {
              uint64_t sa = fleet.nodes[static_cast<size_t>(a)].anomaly_score;
              uint64_t sb = fleet.nodes[static_cast<size_t>(b)].anomaly_score;
              if (sa != sb) {
                return sa > sb;
              }
              return a < b;
            });

  // Top blamed preemptor / lock from the merged postmortem tables (maps are
  // id-ordered, so `>` picks the lowest id on a tie deterministically).
  for (const auto& [tid, ns] : fleet.blame.preemptor_ns) {
    if (ns > triage.top_preemptor_ns) {
      triage.top_preemptor_ns = ns;
      triage.top_preemptor = tid;
    }
  }
  for (const auto& [sem, ns] : fleet.blame.lock_ns) {
    if (ns > triage.top_lock_ns) {
      triage.top_lock_ns = ns;
      triage.top_lock = sem;
    }
  }
  return triage;
}

void AppendFleetTriageSection(obs::Json& j, const FleetTriage& triage) {
  j.OpenObject();
  j.Key("metrics");
  j.OpenArray();
  for (const TriageMetric& m : triage.metrics) {
    j.OpenObject();
    j.String("name", m.name);
    j.Int("median", static_cast<int64_t>(m.median));
    j.Int("mad", static_cast<int64_t>(m.mad));
    j.Int("outliers", m.outliers);
    j.Key("top");
    j.OpenArray();
    for (const TriageEntry& e : m.top) {
      j.OpenObject();
      j.Int("node", e.node);
      j.Int("value", static_cast<int64_t>(e.value));
      j.Bool("outlier", e.outlier);
      j.CloseObject();
    }
    j.CloseArray();
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("outlier_nodes");
  j.OpenArray();
  for (int node : triage.outlier_nodes) {
    j.IntElem(node);
  }
  j.CloseArray();
  j.Key("top_blame");
  j.OpenObject();
  j.Int("preemptor", triage.top_preemptor);
  j.Int("preemptor_ns", triage.top_preemptor_ns);
  j.Int("lock", triage.top_lock);
  j.Int("lock_ns", triage.top_lock_ns);
  j.CloseObject();
  j.CloseObject();
}

}  // namespace fleet
}  // namespace emeralds
