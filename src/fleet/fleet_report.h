// The fleet run report: schema "emeralds.fleet.run/1".
//
// One JSON document per fleet run: the configuration (instances, workers,
// timer-queue implementation, seed), the deterministic aggregates (events,
// jobs, misses, chain SLO outcomes, the fleet digest), the machine-
// independent throughput rate (events per simulated second — the number
// bench_compare gates), the informational wall-clock rate (never gated),
// and an optional "timers" section from the timer-queue microbenchmark
// (arm/cancel/service costs at several pending-timer depths, wheel vs the
// reference sorted list, and the 10k-pending speedup the acceptance bar
// checks). bench_json_check validates the schema; BENCH_fleet.json is the
// committed baseline.

#ifndef SRC_FLEET_FLEET_REPORT_H_
#define SRC_FLEET_FLEET_REPORT_H_

#include <string>
#include <vector>

#include "src/fleet/fleet.h"

namespace emeralds {
namespace fleet {

inline constexpr const char* kFleetRunSchema = "emeralds.fleet.run/1";

// One depth point of the timer-queue microbenchmark: mean host nanoseconds
// per operation with `pending` timers resident, for both implementations.
struct TimerBenchPoint {
  int pending = 0;
  double wheel_arm_ns = 0.0;
  double wheel_cancel_ns = 0.0;
  double wheel_service_ns = 0.0;
  double list_arm_ns = 0.0;
  double list_cancel_ns = 0.0;
  double list_service_ns = 0.0;

  // list / wheel over the summed per-op costs at this depth.
  double Speedup() const;
};

struct FleetRunInfo {
  std::string label;  // e.g. "fleet_baseline"
  Duration run_duration;
  Duration slice;
  // Echoed so fleet_inspect can rebuild the exact FleetOptions from the
  // report alone (0 = the kernel's retain-everything default).
  size_t trace_capacity = 0;
  // Host-side telemetry-collection overhead, measured by bench_fleet as the
  // events/wall-sec rate with collection on vs off. Informational (wall
  // clock is never gated); the section is omitted when either is zero.
  double telemetry_on_events_per_wall_sec = 0.0;
  double telemetry_off_events_per_wall_sec = 0.0;
  // Streaming-collection overhead: rate with the streaming timeseries +
  // alert plane on vs telemetry-only. bench_compare gates the *ratio*
  // against the committed baseline (a ratio is host-speed-independent);
  // the section is omitted when either is zero.
  double streaming_on_events_per_wall_sec = 0.0;
  double streaming_off_events_per_wall_sec = 0.0;
};

// Renders the full report. `timers` may be empty (the section is omitted);
// when present it must contain a 10000-pending point — that speedup is the
// gated "wheel is >= 5x the list" acceptance number.
std::string BuildFleetRunReport(const FleetRunInfo& info, const FleetResult& result,
                                const std::vector<TimerBenchPoint>& timers);

bool WriteFleetRunReportFile(const std::string& path, const FleetRunInfo& info,
                             const FleetResult& result,
                             const std::vector<TimerBenchPoint>& timers);

}  // namespace fleet
}  // namespace emeralds

#endif  // SRC_FLEET_FLEET_REPORT_H_
