// Fleet anomaly triage: which nodes deserve a human's attention, ranked.
//
// ComputeFleetTriage() turns a FleetResult into per-metric worst-offender
// tables (top-K, worst first) plus robust outlier flags: a node is an
// outlier on a metric when its value sits far above the fleet median,
// measured in MADs (median absolute deviation) so one sick node cannot
// inflate the yardstick it is judged against. Everything is deterministic
// integer math — the triage section of the fleet report is byte-stable.

#ifndef SRC_FLEET_TRIAGE_H_
#define SRC_FLEET_TRIAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"

namespace emeralds {
namespace obs {
class Json;
}  // namespace obs

namespace fleet {

struct TriageEntry {
  int node = -1;
  uint64_t value = 0;
  bool outlier = false;
};

struct TriageMetric {
  std::string name;
  // Worst offenders, value descending (ties by node index ascending); nodes
  // whose value is zero never make the table. Empty == whole fleet clean.
  std::vector<TriageEntry> top;
  uint64_t median = 0;
  uint64_t mad = 0;  // median absolute deviation from the median
  int outliers = 0;  // count of flagged nodes across the whole fleet
};

struct FleetTriage {
  std::vector<TriageMetric> metrics;
  // Union of outlier nodes across all metrics, ordered by anomaly_score
  // descending (ties by index ascending) — the "look here first" list.
  std::vector<int> outlier_nodes;
  // From the fleet-merged postmortem blame tables: the single preemptor
  // thread / lock carrying the most blamed lateness across every analyzed
  // miss (ties by lower id; -1 = no blame of that kind anywhere).
  int top_preemptor = -1;
  int64_t top_preemptor_ns = 0;
  int top_lock = -1;
  int64_t top_lock_ns = 0;
};

// top_k bounds each metric's table, not the outlier flagging (every node is
// tested against the median/MAD yardstick).
FleetTriage ComputeFleetTriage(const FleetResult& fleet, int top_k = 5);

// Emits the triage as a JSON object value (caller supplies the key).
void AppendFleetTriageSection(obs::Json& j, const FleetTriage& triage);

}  // namespace fleet
}  // namespace emeralds

#endif  // SRC_FLEET_TRIAGE_H_
