// Fleet-scale simulation: many independent kernel instances on one host.
//
// RunFleet() instantiates `instances` fully independent simulated nodes —
// each its own Hardware + Kernel + seeded workload, arena-backed so a node's
// top-level state lives in one contiguous block (cache-isolated from its
// neighbors, torn down with a single Reset) — and drives them across a
// work-stealing host thread pool. A node executes in virtual-time slices:
// each slice is one pool task that advances the kernel by `slice` and
// re-enqueues itself, so long-running nodes migrate freely between workers
// and the pool stays balanced without any static partitioning.
//
// Determinism contract: a node's simulation depends only on (fleet seed,
// node index, timer_queue impl). Host scheduling — worker count, steal
// order, slice interleaving — must not influence any simulated outcome, so
// the whole FleetResult (per-node digests included) is bit-identical across
// runs, worker counts, and machines. Tests enforce this.
//
// Per-node oracles, mirroring the torture harness (the syscall fault oracle
// is torture-specific; the fleet adds a progress oracle in its place):
//   1. obs::AnalyzeTrace reports zero structural invariant violations;
//   2. obs::ComputeReconciliation agrees with the kernel's counters on an
//      untruncated trace, and refuses to check a truncated one;
//   3. the cycle-attribution ledger conserves exactly (bucket sum == elapsed
//      virtual time; no unattributed clock advance);
//   4. causal-token conservation over the declared chains (zero chain
//      violations; zero orphan hops when the window is complete);
//   5. progress: the node completed jobs, dispatched timers, and consumed
//      mailbox traffic — a silently wedged node is a failure, not a fast run;
//   6. lateness conservation: every analyzed deadline miss carries a blame
//      ledger that telescopes exactly to completion - release, and a complete
//      window leaves zero nanoseconds unattributed.

#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/core/timer.h"
#include "src/obs/alerts.h"
#include "src/obs/postmortem.h"
#include "src/obs/telemetry.h"
#include "src/obs/timeseries.h"

namespace emeralds {

class Kernel;

namespace fleet {

struct FleetOptions {
  int instances = 16;
  // Host pool width; <= 0 uses std::thread::hardware_concurrency().
  int workers = 0;
  uint64_t seed = 1;
  // Virtual time each node simulates, and the re-enqueue granularity.
  Duration run_duration = Milliseconds(100);
  Duration slice = Milliseconds(5);
  // Timer fast-path under test; the whole point of the fleet bench.
  TimerQueueImpl timer_queue = TimerQueueImpl::kWheel;
  // Per-node arena capacity; 0 sizes it from the node footprint.
  size_t arena_bytes = 0;
  // Per-node trace ring; 0 sizes it to retain the whole run. Large fleets
  // pass a small fixed ring to bound memory — the oracles are
  // truncation-aware, so a wrapped ring degrades checking, never correctness.
  size_t trace_capacity = 0;
  // Fleet telemetry plane: per-node NodeTelemetry blocks merged into
  // FleetResult::telemetry. Host-side only — collection happens after each
  // node reaches its virtual horizon, so digests are bit-identical with
  // telemetry on or off (tested).
  bool telemetry = true;
  // Black-box flight recorder: when non-empty, the worst `max_blackboxes`
  // anomalous nodes (by anomaly_score, worst first) are re-run serially
  // after the fleet drains — a node is a pure function of (seed, index), so
  // the re-run is bit-identical — and their forensic bundles are written
  // under <artifacts_dir>/node-<index>/.
  std::string artifacts_dir;
  int max_blackboxes = 8;
  // Overload injection for triage tests and demos: multiplies the producer
  // and consumer compute costs of one node (after its topology draws, so
  // every other node is untouched). -1 = none.
  int overload_node = -1;
  int overload_factor = 8;
  // Streaming telemetry plane: per-node TelemetryWindow series folded from
  // the snapshot ring at every slice boundary (so the series exists while
  // the fleet runs), plus the per-window alert engine over it. Host-side
  // reads only — digests are bit-identical with streaming on or off
  // (tested), and the alert event stream itself is worker-count-invariant.
  bool timeseries = true;
  obs::TimeseriesOptions timeseries_options;
  bool alerts = true;
  obs::AlertConfig alert_config;
};

// One simulated node's outcome. Everything here is deterministic in
// (fleet seed, node index, timer_queue).
struct NodeResult {
  uint64_t seed = 0;
  std::string scheduler;  // "EDF", "RM", "CSD-2", "CSD-3"
  // context_switches + syscalls + interrupts + timer_dispatches: the unit
  // the fleet benchmark rates in events/sec.
  uint64_t events = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t timer_dispatches = 0;
  uint64_t chain_completed = 0;
  uint64_t chain_overruns = 0;  // completed chain instances past their SLO
  uint64_t trace_digest = 0;    // FNV-1a over the retained window + counters
  uint64_t trace_dropped = 0;
  uint64_t headroom_low_events = 0;
  Duration virtual_time;
  size_t arena_high_water = 0;
  // First failing oracle in human-readable form; empty when all six pass.
  std::string failure;
  // Deadline-miss postmortem: this node's blame ledger totals (mergeable,
  // keyed by thread/semaphore ids) plus the misses still open at the horizon.
  obs::BlameTotals blame;
  uint64_t postmortem_incomplete = 0;
  // Anomaly triage: why the node is suspect (empty = healthy) and a
  // deterministic badness score — oracle failures dominate, then deadline
  // misses, chain SLO overruns, and headroom-low events.
  std::string anomaly;
  uint64_t anomaly_score = 0;
  // Telemetry block (collected iff FleetOptions::telemetry).
  obs::NodeTelemetry telemetry;
  // Streaming telemetry (collected iff FleetOptions::timeseries): the
  // retained window series plus explicit-degradation counters, and the
  // node-local alert events (iff FleetOptions::alerts).
  std::vector<obs::TelemetryWindow> windows;
  uint64_t timeseries_lost_samples = 0;
  uint64_t timeseries_windows_dropped = 0;
  std::vector<obs::AlertEvent> alerts;

  bool ok() const { return failure.empty(); }
  bool anomalous() const { return !anomaly.empty(); }
};

struct FleetResult {
  int instances = 0;
  int workers = 0;  // resolved pool width actually used
  uint64_t seed = 0;
  TimerQueueImpl timer_queue = TimerQueueImpl::kWheel;

  // Aggregates over all nodes (deterministic).
  uint64_t events_total = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t timer_dispatches = 0;
  uint64_t chain_completed = 0;
  uint64_t chain_overruns = 0;
  int nodes_failed = 0;
  Duration virtual_time_total;  // sum of per-node simulated time
  // events_total / virtual seconds: the gated, machine-independent rate.
  double events_per_virtual_sec = 0.0;
  // FNV-1a over the per-node digests in index order: one number that equals
  // iff every node's run was bit-identical.
  uint64_t fleet_digest = 0;
  size_t arena_high_water = 0;  // max across nodes

  // Fleet telemetry plane (merged per-node blocks; nodes_collected == 0
  // when FleetOptions::telemetry was off).
  obs::FleetTelemetry telemetry;
  // Silent ring truncation, surfaced: totals plus the worst offender.
  uint64_t trace_dropped_total = 0;
  int trace_dropped_worst_node = -1;
  uint64_t trace_dropped_worst = 0;
  uint64_t headroom_low_total = 0;
  int nodes_anomalous = 0;
  // Fleet-merged blame tables (associative integer merge in node-index
  // order) and their digest — bit-identical across worker counts, gated by
  // the determinism tests alongside fleet_digest.
  obs::BlameTotals blame;
  uint64_t blame_digest = 0;
  uint64_t postmortem_incomplete_total = 0;
  // Streaming plane, fleet-merged: same-index windows from every node merged
  // via the lossless histogram Merge (order-invariant), and the full alert
  // stream (node-local rules + the cross-node outlier rule) in canonical
  // (window, rule, node) order with exact virtual timestamps.
  std::vector<obs::TelemetryWindow> windows;
  std::vector<obs::AlertEvent> alerts;
  uint64_t timeseries_lost_samples = 0;
  uint64_t timeseries_windows_dropped = 0;
  uint64_t alerts_fired = 0;  // firing events in `alerts`
  // Echo of the streaming config the run used (the report embeds it).
  obs::TimeseriesOptions timeseries_options;
  obs::AlertConfig alert_config;
  // Nodes whose black-box bundles were written (worst first), and where.
  std::vector<int> blackbox_nodes;
  std::string artifacts_dir;

  // Host-side throughput (informational; never gated — wall time is noise).
  double wall_seconds = 0.0;
  double events_per_wall_sec = 0.0;

  std::vector<NodeResult> nodes;  // index order

  bool ok() const { return nodes_failed == 0; }
};

// Runs the fleet to completion. Blocks until every node has finished and
// been evaluated; must not be called from a fleet/ThreadPool worker.
FleetResult RunFleet(const FleetOptions& options);

// Deterministically re-runs node `index` of the fleet described by
// `options` and visits the live kernel (with the filled NodeResult) before
// the node's arena is torn down. This is the drill-down primitive behind
/// fleet_inspect --node and the black-box recorder: because a node is a
// pure function of (fleet seed, node index, timer_queue), the revisited
// state is bit-identical to what the fleet run saw.
NodeResult InspectNode(const FleetOptions& options, int index,
                       const std::function<void(const Kernel&, const NodeResult&)>& visit);

// One-line command that re-opens this node with the fleet_inspect CLI.
std::string NodeReproCommand(const FleetOptions& options, int index);

const char* TimerQueueImplName(TimerQueueImpl impl);

}  // namespace fleet
}  // namespace emeralds

#endif  // SRC_FLEET_FLEET_H_
