#include "src/fleet/fleet_report.h"

#include <cstdio>
#include <map>

#include "src/fleet/triage.h"
#include "src/obs/alerts.h"
#include "src/obs/json_writer.h"
#include "src/obs/postmortem.h"
#include "src/obs/timeseries.h"

namespace emeralds {
namespace fleet {

double TimerBenchPoint::Speedup() const {
  double wheel = wheel_arm_ns + wheel_cancel_ns + wheel_service_ns;
  double list = list_arm_ns + list_cancel_ns + list_service_ns;
  return wheel > 0 ? list / wheel : 0.0;
}

std::string BuildFleetRunReport(const FleetRunInfo& info, const FleetResult& result,
                                const std::vector<TimerBenchPoint>& timers) {
  obs::Json json;
  json.OpenObject();
  json.String("schema", kFleetRunSchema);
  json.String("label", info.label);
  json.String("timer_queue", TimerQueueImplName(result.timer_queue));
  json.Int("instances", result.instances);
  json.Int("workers", result.workers);
  json.Int("seed", static_cast<int64_t>(result.seed));
  json.Number("run_duration_ms", info.run_duration.millis_f());
  json.Number("slice_ms", info.slice.millis_f());
  json.Int("trace_capacity", static_cast<int64_t>(info.trace_capacity));

  // Deterministic aggregates: identical across machines and worker counts.
  json.Int("events_total", static_cast<int64_t>(result.events_total));
  json.Number("virtual_ms_total", result.virtual_time_total.millis_f());
  json.Number("events_per_virtual_sec", result.events_per_virtual_sec);
  json.Int("jobs_completed", static_cast<int64_t>(result.jobs_completed));
  json.Int("deadline_misses", static_cast<int64_t>(result.deadline_misses));
  json.Int("timer_dispatches", static_cast<int64_t>(result.timer_dispatches));
  json.Int("chain_completed", static_cast<int64_t>(result.chain_completed));
  json.Int("chain_overruns", static_cast<int64_t>(result.chain_overruns));
  json.Int("nodes_total", static_cast<int64_t>(result.nodes.size()));
  json.Int("nodes_failed", result.nodes_failed);
  json.Int("nodes_anomalous", result.nodes_anomalous);
  json.Int("headroom_low_total", static_cast<int64_t>(result.headroom_low_total));

  // Silent ring truncation, surfaced: a node that quietly wrapped its trace
  // ring has degraded oracle coverage, so the fleet owns up to it here.
  json.Key("trace");
  json.OpenObject();
  json.Int("dropped_total", static_cast<int64_t>(result.trace_dropped_total));
  json.Int("worst_node", result.trace_dropped_worst_node);
  json.Int("worst_node_dropped", static_cast<int64_t>(result.trace_dropped_worst));
  json.CloseObject();
  {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(result.fleet_digest));
    json.String("fleet_digest", digest);
  }
  json.Int("arena_high_water_bytes", static_cast<int64_t>(result.arena_high_water));

  {
    std::map<std::string, int64_t> schedulers;
    for (const NodeResult& node : result.nodes) {
      ++schedulers[node.scheduler];
    }
    json.Key("schedulers");
    json.OpenObject();
    for (const auto& [name, count] : schedulers) {
      json.Int(name.c_str(), count);
    }
    json.CloseObject();
  }
  for (const NodeResult& node : result.nodes) {
    if (!node.ok()) {
      json.String("first_failure", node.failure);
      break;
    }
  }

  // Host-side throughput: honest but machine-dependent, so never gated.
  json.Number("wall_seconds", result.wall_seconds);
  json.Number("events_per_wall_sec", result.events_per_wall_sec);

  if (info.telemetry_on_events_per_wall_sec > 0 &&
      info.telemetry_off_events_per_wall_sec > 0) {
    json.Key("telemetry_overhead");
    json.OpenObject();
    json.Number("on_events_per_wall_sec", info.telemetry_on_events_per_wall_sec);
    json.Number("off_events_per_wall_sec", info.telemetry_off_events_per_wall_sec);
    json.Number("ratio", info.telemetry_on_events_per_wall_sec /
                             info.telemetry_off_events_per_wall_sec);
    json.CloseObject();
  }

  if (info.streaming_on_events_per_wall_sec > 0 &&
      info.streaming_off_events_per_wall_sec > 0) {
    json.Key("streaming_overhead");
    json.OpenObject();
    json.Number("on_events_per_wall_sec", info.streaming_on_events_per_wall_sec);
    json.Number("off_events_per_wall_sec", info.streaming_off_events_per_wall_sec);
    json.Number("ratio", info.streaming_on_events_per_wall_sec /
                             info.streaming_off_events_per_wall_sec);
    json.CloseObject();
  }

  // Fleet telemetry plane: exact-bucket percentile tables over the merged
  // per-node histograms (schema "emeralds.fleet.telemetry/1").
  if (result.telemetry.nodes_collected > 0) {
    json.Key("telemetry");
    obs::AppendFleetTelemetrySection(json, result.telemetry);
  }

  // Streaming plane: the fleet-merged window series (every node's same-index
  // windows merged via the lossless histogram Merge) and the canonical alert
  // event stream with exact virtual timestamps.
  if (!result.windows.empty()) {
    obs::AppendTimeseriesSection(json, result.windows, result.timeseries_options.window,
                                 result.timeseries_lost_samples,
                                 result.timeseries_windows_dropped);
    obs::AppendAlertsSection(json, result.alerts, result.alert_config);
  }

  // Deadline-miss postmortem: the fleet-merged blame tables. Thread and
  // semaphore ids are node-local roles (every node runs the same topology),
  // so the merge reads as "which role / which lock hurts fleet-wide".
  json.Key("postmortem");
  json.OpenObject();
  {
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(result.blame_digest));
    json.String("blame_digest", digest);
  }
  json.Int("incomplete_misses", static_cast<int64_t>(result.postmortem_incomplete_total));
  json.Key("blame");
  obs::AppendBlameTotals(json, result.blame);
  json.CloseObject();

  json.Key("triage");
  AppendFleetTriageSection(json, ComputeFleetTriage(result));

  if (!result.blackbox_nodes.empty()) {
    json.Key("blackboxes");
    json.OpenArray();
    for (int node : result.blackbox_nodes) {
      json.OpenObject();
      json.Int("node", node);
      char dir[64];
      std::snprintf(dir, sizeof(dir), "node-%d", node);
      json.String("dir", dir);
      json.CloseObject();
    }
    json.CloseArray();
    if (!result.artifacts_dir.empty()) {
      json.String("artifacts_dir", result.artifacts_dir);
    }
  }

  if (!timers.empty()) {
    double speedup_10k = 0.0;
    json.Key("timers");
    json.OpenObject();
    json.Key("points");
    json.OpenArray();
    for (const TimerBenchPoint& point : timers) {
      json.OpenObject();
      json.Int("pending", point.pending);
      json.Key("wheel");
      json.OpenObject();
      json.Number("arm_ns", point.wheel_arm_ns);
      json.Number("cancel_ns", point.wheel_cancel_ns);
      json.Number("service_ns", point.wheel_service_ns);
      json.CloseObject();
      json.Key("list");
      json.OpenObject();
      json.Number("arm_ns", point.list_arm_ns);
      json.Number("cancel_ns", point.list_cancel_ns);
      json.Number("service_ns", point.list_service_ns);
      json.CloseObject();
      json.Number("speedup", point.Speedup());
      json.CloseObject();
      if (point.pending == 10000) {
        speedup_10k = point.Speedup();
      }
    }
    json.CloseArray();
    json.Number("speedup_10k", speedup_10k);
    json.CloseObject();
  }

  json.CloseObject();
  return json.str();
}

bool WriteFleetRunReportFile(const std::string& path, const FleetRunInfo& info,
                             const FleetResult& result,
                             const std::vector<TimerBenchPoint>& timers) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  std::string report = BuildFleetRunReport(info, result, timers);
  std::fwrite(report.data(), 1, report.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  return true;
}

}  // namespace fleet
}  // namespace emeralds
