#include "src/fleet/openmetrics.h"

#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "src/obs/alerts.h"
#include "src/obs/timeseries.h"

namespace emeralds {
namespace fleet {
namespace {

void Line(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
  *out += '\n';
}

void Counter(std::string* out, const char* name, const char* help, uint64_t value) {
  Line(out, "# TYPE %s counter", name);
  Line(out, "# HELP %s %s", name, help);
  Line(out, "%s_total %" PRIu64, name, value);
}

void Gauge(std::string* out, const char* name, const char* help, double value) {
  Line(out, "# TYPE %s gauge", name);
  Line(out, "# HELP %s %s", name, help);
  Line(out, "%s %.6g", name, value);
}

// Log2Histogram as an OpenMetrics histogram family: cumulative le buckets at
// the power-of-two upper edges (microseconds), +Inf, _sum, _count.
void Histogram(std::string* out, const char* name, const char* help,
               const obs::Log2Histogram& h) {
  Line(out, "# TYPE %s histogram", name);
  Line(out, "# HELP %s %s", name, help);
  uint64_t cumulative = 0;
  int highest = h.HighestBucket();
  for (int i = 0; i < obs::Log2Histogram::kNumBuckets - 1 && i <= highest; ++i) {
    cumulative += h.bucket(i);
    Line(out, "%s_bucket{le=\"%lld\"} %" PRIu64, name,
         static_cast<long long>(int64_t{1} << (i + 1)), cumulative);
  }
  Line(out, "%s_bucket{le=\"+Inf\"} %" PRIu64, name, h.count());
  Line(out, "%s_sum %lld", name, static_cast<long long>(h.total().micros()));
  Line(out, "%s_count %" PRIu64, name, h.count());
}

bool IsNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

std::string BuildOpenMetricsExposition(const FleetResult& result) {
  std::string out;

  Gauge(&out, "emeralds_nodes", "Simulated nodes in the fleet",
        static_cast<double>(result.instances));
  Gauge(&out, "emeralds_nodes_failed", "Nodes failing a per-node oracle",
        static_cast<double>(result.nodes_failed));
  Gauge(&out, "emeralds_nodes_anomalous", "Nodes flagged by triage or alerts",
        static_cast<double>(result.nodes_anomalous));

  Counter(&out, "emeralds_events", "Simulated kernel events (switches+syscalls+irqs+timers)",
          result.events_total);
  Counter(&out, "emeralds_jobs_completed", "Periodic jobs completed", result.jobs_completed);
  Counter(&out, "emeralds_deadline_misses", "Jobs completed past their deadline",
          result.deadline_misses);
  Counter(&out, "emeralds_timer_dispatches", "Software timer dispatches",
          result.timer_dispatches);
  Counter(&out, "emeralds_chain_completed", "Causal chain instances completed",
          result.chain_completed);
  Counter(&out, "emeralds_chain_overruns", "Chain instances past their SLO",
          result.chain_overruns);
  Counter(&out, "emeralds_headroom_low", "Jobs predicted to finish with low slack",
          result.headroom_low_total);
  Counter(&out, "emeralds_trace_dropped", "Trace events evicted by ring wrap",
          result.trace_dropped_total);
  Counter(&out, "emeralds_timeseries_lost_samples",
          "Snapshot-ring samples lost before the streaming drain",
          result.timeseries_lost_samples);

  // Per-node drill-down set (one family each, node label).
  Line(&out, "# TYPE emeralds_node_deadline_misses gauge");
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    Line(&out, "emeralds_node_deadline_misses{node=\"%zu\"} %" PRIu64, i,
         result.nodes[i].deadline_misses);
  }
  Line(&out, "# TYPE emeralds_node_chain_overruns gauge");
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    Line(&out, "emeralds_node_chain_overruns{node=\"%zu\"} %" PRIu64, i,
         result.nodes[i].chain_overruns);
  }
  Line(&out, "# TYPE emeralds_node_anomaly_score gauge");
  for (size_t i = 0; i < result.nodes.size(); ++i) {
    Line(&out, "emeralds_node_anomaly_score{node=\"%zu\"} %" PRIu64, i,
         result.nodes[i].anomaly_score);
  }

  // Merged streaming histograms (whole-run: the window series telescopes).
  obs::Log2Histogram response;
  obs::Log2Histogram chain_e2e;
  for (const obs::TelemetryWindow& w : result.windows) {
    response.Merge(w.response);
    chain_e2e.Merge(w.chain_e2e);
  }
  Histogram(&out, "emeralds_response_us", "Job response time (microsecond le buckets)",
            response);
  Histogram(&out, "emeralds_chain_e2e_us", "Chain end-to-end latency (microsecond le buckets)",
            chain_e2e);

  // Alert state: events per rule over the run, and what is still firing.
  std::map<std::string, uint64_t> events_per_rule;
  std::map<std::pair<std::string, int>, bool> firing;  // last state wins (stream is ordered)
  for (const obs::AlertEvent& e : result.alerts) {
    ++events_per_rule[obs::AlertRuleName(e.rule)];
    firing[{obs::AlertRuleName(e.rule), e.node}] = e.firing;
  }
  Line(&out, "# TYPE emeralds_alert_events counter");
  for (const auto& [rule, count] : events_per_rule) {
    Line(&out, "emeralds_alert_events_total{rule=\"%s\"} %" PRIu64, rule.c_str(), count);
  }
  Line(&out, "# TYPE emeralds_alerts_firing gauge");
  for (const auto& [key, is_firing] : firing) {
    Line(&out, "emeralds_alerts_firing{rule=\"%s\",node=\"%d\"} %d", key.first.c_str(),
         key.second, is_firing ? 1 : 0);
  }

  out += "# EOF\n";
  return out;
}

bool ValidateOpenMetrics(const std::string& text, std::string* error, int* families) {
  auto fail = [&](const std::string& why, size_t line_no) {
    if (error != nullptr) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " (line %zu)", line_no);
      *error = why + buf;
    }
    return false;
  };

  std::set<std::string> declared;
  // histogram family -> (has +Inf bucket value, count value, have both)
  struct HistState {
    bool have_inf = false;
    bool have_count = false;
    double inf = 0.0;
    double count = 0.0;
  };
  std::map<std::string, HistState> histograms;
  bool saw_eof = false;

  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = text.substr(pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (saw_eof) {
      return fail("content after # EOF", line_no);
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      // "# TYPE <name> <type>" / "# HELP <name> ..." / "# UNIT <name> ..."
      size_t sp1 = line.find(' ', 2);
      std::string keyword = line.substr(2, sp1 == std::string::npos ? std::string::npos : sp1 - 2);
      if (keyword == "TYPE") {
        size_t sp2 = line.find(' ', sp1 + 1);
        if (sp2 == std::string::npos) {
          return fail("malformed TYPE line", line_no);
        }
        std::string name = line.substr(sp1 + 1, sp2 - sp1 - 1);
        std::string type = line.substr(sp2 + 1);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "unknown" && type != "info" && type != "stateset") {
          return fail("unknown metric type '" + type + "'", line_no);
        }
        if (!declared.insert(name).second) {
          return fail("family '" + name + "' declared twice", line_no);
        }
        if (type == "histogram") {
          histograms[name];
        }
        continue;
      }
      if (keyword == "HELP" || keyword == "UNIT") {
        continue;
      }
      return fail("unknown comment keyword", line_no);
    }

    // Sample line: name[{labels}] value [timestamp]
    size_t i = 0;
    if (!IsNameChar(line[0], true)) {
      return fail("sample does not start with a metric name", line_no);
    }
    while (i < line.size() && IsNameChar(line[i], false)) {
      ++i;
    }
    std::string name = line.substr(0, i);
    std::string le_label;
    if (i < line.size() && line[i] == '{') {
      size_t close = line.find('}', i);
      if (close == std::string::npos) {
        return fail("unterminated label set", line_no);
      }
      std::string labels = line.substr(i + 1, close - i - 1);
      // key="value"(,key="value")*
      size_t lp = 0;
      while (lp < labels.size()) {
        size_t eq = labels.find('=', lp);
        if (eq == std::string::npos || eq + 1 >= labels.size() || labels[eq + 1] != '"') {
          return fail("malformed label in '" + name + "'", line_no);
        }
        std::string key = labels.substr(lp, eq - lp);
        size_t endq = labels.find('"', eq + 2);
        if (endq == std::string::npos) {
          return fail("unterminated label value", line_no);
        }
        if (key == "le") {
          le_label = labels.substr(eq + 2, endq - eq - 2);
        }
        lp = endq + 1;
        if (lp < labels.size()) {
          if (labels[lp] != ',') {
            return fail("expected ',' between labels", line_no);
          }
          ++lp;
        }
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      return fail("missing value after metric name", line_no);
    }
    const char* value_str = line.c_str() + i + 1;
    char* end = nullptr;
    double value = std::strtod(value_str, &end);
    if (end == value_str) {
      return fail("unparsable sample value", line_no);
    }

    // Resolve the family: strip a known suffix, else the name itself.
    std::string family = name;
    const char* suffixes[] = {"_total", "_bucket", "_sum", "_count", "_created"};
    for (const char* suffix : suffixes) {
      size_t n = std::string(suffix).size();
      if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0 &&
          declared.count(name.substr(0, name.size() - n)) > 0) {
        family = name.substr(0, name.size() - n);
        break;
      }
    }
    if (declared.count(family) == 0) {
      return fail("sample '" + name + "' has no TYPE declaration", line_no);
    }
    auto hist = histograms.find(family);
    if (hist != histograms.end()) {
      if (name == family + "_bucket" && le_label == "+Inf") {
        hist->second.have_inf = true;
        hist->second.inf = value;
      } else if (name == family + "_count") {
        hist->second.have_count = true;
        hist->second.count = value;
      }
    }
  }

  if (!saw_eof) {
    return fail("missing # EOF terminator", line_no);
  }
  for (const auto& [name, h] : histograms) {
    if (!h.have_inf || !h.have_count) {
      return fail("histogram '" + name + "' missing +Inf bucket or _count", line_no);
    }
    if (h.inf != h.count) {
      return fail("histogram '" + name + "' +Inf bucket != _count", line_no);
    }
  }
  if (families != nullptr) {
    *families = static_cast<int>(declared.size());
  }
  return true;
}

}  // namespace fleet
}  // namespace emeralds
