// The cycle-attribution report: schema "emeralds.obs.cycles/1".
//
// JSON export of the kernel's virtual-cycle ledger: per-bucket totals,
// per-band scheduler splits (the runtime Figure 3-5 breakdown), per-task
// ledgers with the deadline-headroom monitor's outputs, and the conservation
// check (bucket sum == elapsed virtual time, exact to the tick). All cycle
// values are emitted as integer nanoseconds so exactness survives the JSON
// round trip — this is the document bench_compare gates CI on
// (BENCH_cycles.json), and the same section is embedded in the
// emeralds.obs.run/1 report.

#ifndef SRC_OBS_CYCLES_REPORT_H_
#define SRC_OBS_CYCLES_REPORT_H_

#include <string>
#include <vector>

#include "src/core/ids.h"

namespace emeralds {

class Kernel;

namespace obs {

class Json;

inline constexpr const char* kObsCyclesSchema = "emeralds.obs.cycles/1";

// Emits `"cycles": { ... }` into an open object: buckets_ns, sched_bands,
// the stats-window conservation verdict, and the clock's own cumulative
// cross-check (conservation by construction).
void AppendCyclesSection(Json& j, const Kernel& kernel);

// Standalone document. `task_ids` selects the per-task ledger rows (pass {}
// to skip them).
std::string BuildCyclesReport(const std::string& label, const std::string& scheduler,
                              const Kernel& kernel, const std::vector<ThreadId>& task_ids);

bool WriteCyclesReportFile(const std::string& path, const std::string& label,
                           const std::string& scheduler, const Kernel& kernel,
                           const std::vector<ThreadId>& task_ids);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_CYCLES_REPORT_H_
