#include "src/obs/trace_analyzer.h"

#include <cstdio>

namespace emeralds {
namespace obs {
namespace {

// Thread ids are pool indices (config.max_threads, typically <= a few
// hundred); anything past this is a corrupted input and its events are
// ignored rather than sized into the metrics vectors.
constexpr int kMaxThreadId = 65535;

struct ThreadTrack {
  bool job_open = false;
  uint64_t job_number = 0;
  Instant job_release;
  bool have_release_number = false;
  uint64_t last_release_number = 0;
  bool blocked = false;
  int32_t blocked_sem = -1;
  Instant block_start;
  Instant run_start;
  int pi_depth = 0;
};

std::string Describe(const char* fmt, long long a, long long b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

const char* InvariantKindToString(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kNonMonotoneTime:
      return "non_monotone_time";
    case InvariantKind::kSwitchPairing:
      return "switch_pairing";
    case InvariantKind::kBlockedThreadRan:
      return "blocked_thread_ran";
    case InvariantKind::kCompleteWithoutRelease:
      return "complete_without_release";
    case InvariantKind::kJobNumberRegression:
      return "job_number_regression";
  }
  return "?";
}

TraceAnalysis AnalyzeTrace(const TraceEvent* events, size_t count, uint64_t dropped_events) {
  TraceAnalysis out;
  out.dropped_events = dropped_events;
  // With a truncated window, pre-window job state is unknown; pairing checks
  // start only once the window itself establishes it.
  const bool complete_window = dropped_events == 0;

  std::vector<ThreadTrack> tracks;
  auto track = [&](int32_t id) -> ThreadTrack* {
    if (id < 0 || id > kMaxThreadId) {
      return nullptr;
    }
    if (static_cast<size_t>(id) >= tracks.size()) {
      tracks.resize(id + 1);
      out.tasks.resize(id + 1);
    }
    if (!out.tasks[id].seen) {
      out.tasks[id].seen = true;
      out.tasks[id].thread_id = id;
    }
    return &tracks[id];
  };
  auto violate = [&](InvariantKind kind, size_t index, std::string detail) {
    out.violations.push_back(TraceViolation{kind, index, std::move(detail)});
  };

  // Per-core run tracking: kContextSwitch / kThreadExit stamp their core id
  // in arg2 (0 on single-core traces, so old captures analyze unchanged).
  // Slots grow lazily; an absurd core id marks a corrupted event, and its
  // pairing checks are skipped rather than sized into the vectors.
  constexpr int32_t kMaxCoreId = 255;
  std::vector<int32_t> running;
  std::vector<char> running_known;
  auto core_slot = [&](int32_t core) -> int32_t {
    if (core < 0 || core > kMaxCoreId) {
      return -1;
    }
    if (static_cast<size_t>(core) >= running.size()) {
      // A complete trace starts idle on every core.
      running.resize(core + 1, -1);
      running_known.resize(core + 1, complete_window ? 1 : 0);
    }
    return core;
  };
  Instant high_water;
  bool have_high_water = false;
  Instant last_time;

  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    last_time = e.time;
    if (e.type != TraceEventType::kJobRelease) {
      if (have_high_water && e.time < high_water) {
        violate(InvariantKind::kNonMonotoneTime, i,
                Describe("time went back %lld us (event %lld)", (high_water - e.time).micros(),
                         static_cast<long long>(i)));
      }
      if (!have_high_water || e.time > high_water) {
        high_water = e.time;
        have_high_water = true;
      }
    }

    // Chain and epoch events carry a token origin / epoch number in arg0,
    // not a thread id — never grow a task track from them. kOverheadSpan
    // packs (bucket, core) into arg0.
    const bool arg0_is_thread = e.type != TraceEventType::kChainEmit &&
                                e.type != TraceEventType::kChainConsume &&
                                e.type != TraceEventType::kTraceEpoch &&
                                e.type != TraceEventType::kOverheadSpan;
    ThreadTrack* t0 = arg0_is_thread ? track(e.arg0) : nullptr;
    TaskMetrics* m0 = t0 != nullptr ? &out.tasks[e.arg0] : nullptr;

    switch (e.type) {
      case TraceEventType::kContextSwitch: {
        ++out.context_switches;
        const int32_t c = core_slot(e.arg2);
        if (c >= 0 && running_known[c] && e.arg0 != running[c]) {
          violate(InvariantKind::kSwitchPairing, i,
                  Describe("switch out of thread %lld but thread %lld was running", e.arg0,
                           running[c]));
        }
        if (t0 != nullptr) {  // outgoing
          m0->run_time += e.time - t0->run_start;
          if (t0->job_open && !t0->blocked) {
            ++m0->preemptions;
          }
        }
        ThreadTrack* in = track(e.arg1);
        if (in != nullptr) {
          ++out.tasks[e.arg1].switches_in;
          in->run_start = e.time;
          if (in->blocked) {
            violate(InvariantKind::kBlockedThreadRan, i,
                    Describe("thread %lld switched in while blocked on semaphore %lld", e.arg1,
                             in->blocked_sem));
            in->blocked = false;
          }
        }
        if (c >= 0) {
          running[c] = e.arg1;
          running_known[c] = 1;
        }
        break;
      }
      case TraceEventType::kJobRelease:
        ++out.jobs_released;
        if (m0 != nullptr) {
          ++m0->releases;
          uint64_t job = static_cast<uint64_t>(e.arg1);
          if (t0->have_release_number && job <= t0->last_release_number) {
            violate(InvariantKind::kJobNumberRegression, i,
                    Describe("thread %lld released job %lld out of order", e.arg0, e.arg1));
          }
          t0->have_release_number = true;
          t0->last_release_number = job;
          t0->job_open = true;
          t0->job_number = job;
          t0->job_release = e.time;
        }
        break;
      case TraceEventType::kJobComplete:
        ++out.jobs_completed;
        if (m0 != nullptr) {
          if (t0->blocked) {
            violate(InvariantKind::kBlockedThreadRan, i,
                    Describe("thread %lld completed job %lld while blocked", e.arg0, e.arg1));
            t0->blocked = false;
          }
          if (t0->job_open && t0->job_number == static_cast<uint64_t>(e.arg1)) {
            ++m0->completes;
            m0->response.Add(e.time - t0->job_release);
            t0->job_open = false;
          } else if (complete_window || t0->have_release_number) {
            violate(InvariantKind::kCompleteWithoutRelease, i,
                    Describe("thread %lld completed job %lld with no matching release", e.arg0,
                             e.arg1));
          }
        }
        break;
      case TraceEventType::kDeadlineMiss:
        ++out.deadline_misses;
        if (m0 != nullptr) {
          ++m0->deadline_misses;
        }
        break;
      case TraceEventType::kSemAcquire:
        ++out.sem_acquires;
        if (m0 != nullptr) {
          ++m0->sem_acquires;
          if (t0->blocked) {
            if (t0->blocked_sem == e.arg1) {
              m0->blocking.Add(e.time - t0->block_start);
            } else {
              violate(InvariantKind::kBlockedThreadRan, i,
                      Describe("thread %lld acquired semaphore %lld while blocked on another",
                               e.arg0, e.arg1));
            }
            t0->blocked = false;
          }
        }
        break;
      case TraceEventType::kSemAcquireBlock:
        ++out.sem_blocks;
        if (m0 != nullptr) {
          ++m0->sem_blocks;
          if (t0->blocked) {
            violate(InvariantKind::kBlockedThreadRan, i,
                    Describe("thread %lld blocked on semaphore %lld while already blocked",
                             e.arg0, e.arg1));
          }
          t0->blocked = true;
          t0->blocked_sem = e.arg1;
          t0->block_start = e.time;
        }
        break;
      case TraceEventType::kSemRelease:
        break;
      case TraceEventType::kSemCseEarlyPi:
        ++out.cse_early_pi;
        if (m0 != nullptr) {
          ++m0->cse_early_pi;
        }
        break;
      case TraceEventType::kPiInherit: {
        // arg0 = holder (receives priority), arg1 = donor. track() may grow
        // the vectors and invalidate t0/m0, so establish both tracks first
        // and re-index instead of reusing the stale pointers.
        bool have_donor = track(e.arg1) != nullptr;
        ThreadTrack* holder = track(e.arg0);
        int donor_depth = have_donor ? tracks[e.arg1].pi_depth : 0;
        if (holder != nullptr) {
          TaskMetrics& hm = out.tasks[e.arg0];
          ++hm.pi_received;
          if (donor_depth + 1 > holder->pi_depth) {
            holder->pi_depth = donor_depth + 1;
          }
          if (holder->pi_depth > hm.max_pi_depth) {
            hm.max_pi_depth = holder->pi_depth;
          }
          if (holder->pi_depth > out.max_pi_chain_depth) {
            out.max_pi_chain_depth = holder->pi_depth;
          }
        }
        if (have_donor) {
          ++out.tasks[e.arg1].pi_donated;
        }
        break;
      }
      case TraceEventType::kPiRestore:
        if (t0 != nullptr) {
          t0->pi_depth = 0;
        }
        break;
      case TraceEventType::kIrq:
        break;
      case TraceEventType::kMsgSend:
        ++out.msg_sends;
        break;
      case TraceEventType::kMsgRecv:
        ++out.msg_recvs;
        break;
      case TraceEventType::kPiChainLimit:
        // A refused acquire: the thread did not block, so no track state
        // changes — only the stream-wide count for reconciliation.
        ++out.pi_chain_limit;
        break;
      case TraceEventType::kHeadroomLow:
        ++out.headroom_low;
        if (m0 != nullptr) {
          ++m0->headroom_low;
        }
        break;
      case TraceEventType::kChainEmit:
        ++out.chain_emits;
        break;
      case TraceEventType::kChainConsume:
        ++out.chain_consumes;
        break;
      case TraceEventType::kTraceEpoch:
        // A sink reset marker: everything before it in wall time was
        // discarded, but the retained window only ever starts at or after
        // the marker, so no per-track state needs resetting here.
        ++out.trace_epochs;
        break;
      case TraceEventType::kOverheadSpan:
        // Kernel-overhead attribution rider for the postmortem engine; the
        // replay state machine only counts it (the span retroactively covers
        // time that elapsed before this event's timestamp).
        ++out.overhead_spans;
        break;
      case TraceEventType::kThreadBlock:
        // Scheduler-level wait marker (kSemAcquireBlock already drives the
        // blocking histogram; this event also covers period waits, sleeps,
        // mailbox/condvar/IRQ waits). Counted only — the postmortem engine
        // is the consumer that classifies by reason.
        ++out.thread_blocks;
        break;
      case TraceEventType::kThreadReady:
        ++out.thread_readies;
        break;
      case TraceEventType::kThreadExit:
        if (t0 != nullptr) {
          const int32_t c = core_slot(e.arg2);
          if (c >= 0 && running_known[c] && running[c] == e.arg0) {
            m0->run_time += e.time - t0->run_start;
            // ExitThread clears the running thread without a switch event;
            // the next switch legitimately reports idle as outgoing.
            running[c] = -1;
          }
          t0->job_open = false;
          t0->blocked = false;
        }
        break;
    }
  }

  // Close the books at the window edge.
  for (size_t id = 0; id < tracks.size(); ++id) {
    if (tracks[id].blocked) {
      ++out.unresolved_blocks_at_end;
    }
  }
  for (size_t c = 0; c < running.size(); ++c) {
    if (running_known[c] && running[c] >= 0 && static_cast<size_t>(running[c]) < tracks.size()) {
      out.tasks[running[c]].run_time += last_time - tracks[running[c]].run_start;
    }
  }
  return out;
}

TraceAnalysis AnalyzeTrace(const TraceSink& sink) {
  std::vector<TraceEvent> events;
  events.reserve(sink.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    events.push_back(sink.at(i));
  }
  return AnalyzeTrace(events.data(), events.size(), sink.dropped());
}

}  // namespace obs
}  // namespace emeralds
