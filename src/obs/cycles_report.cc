#include "src/obs/cycles_report.h"

#include <cstdio>

#include "src/core/kernel.h"
#include "src/core/scheduler.h"
#include "src/core/taskset_runner.h"
#include "src/obs/json_writer.h"

namespace emeralds {
namespace obs {
namespace {

// Display label matching the paper's figures: EDF bands are DP1..DPk, the
// trailing fixed-priority band is FP.
std::string BandLabel(const Kernel& kernel, int band) {
  if (band >= kernel.scheduler().num_bands()) {
    return "?";
  }
  if (kernel.scheduler().band(band).kind() == QueueKind::kEdfList) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "DP%d", band + 1);
    return buf;
  }
  return "FP";
}

}  // namespace

void AppendCyclesSection(Json& j, const Kernel& kernel) {
  const KernelStats& s = kernel.stats();
  CycleConservation cons = CheckCycleConservation(s, kernel.now());
  const CycleLedger& clock_ledger = kernel.hardware().clock().ledger();

  j.Key("cycles");
  j.OpenObject();
  j.Int("epoch_ns", s.cycles_epoch.nanos());
  // On SMP, elapsed is exported as capacity (wall time x num_cores): the
  // global bucket ledger sums every core's attribution, so the exact
  // bucket-sum == elapsed invariant holds against capacity, not wall time.
  j.Int("num_cores", s.num_cores);
  j.Int("elapsed_ns", cons.elapsed.nanos());
  j.Int("ledger_total_ns", cons.ledger_total.nanos());
  j.Int("residual_ns", cons.residual.nanos());
  j.Bool("conserved", cons.exact());
  // The clock's cumulative ledger holds by construction; its unattributed
  // bucket must stay zero inside a kernel run (anything else means a clock
  // advance bypassed the kernel's charging paths).
  j.Bool("clock_conserved",
         clock_ledger.total().nanos() == (kernel.now() - Instant()).nanos());
  j.Int("clock_unattributed_ns", clock_ledger.at(CycleBucket::kUnattributed).nanos());
  j.Int("headroom_low_events", static_cast<int64_t>(s.headroom_low_events));

  j.Key("buckets_ns");
  j.OpenObject();
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    j.Int(CycleBucketToString(static_cast<CycleBucket>(b)), s.cycles.buckets[b].nanos());
  }
  j.CloseObject();

  // Per-core ledgers: each core's buckets must sum to plain wall time.
  j.Key("cores");
  j.OpenArray();
  for (int c = 0; c < s.num_cores; ++c) {
    CycleConservation cc = CheckCoreCycleConservation(s, c, kernel.now());
    j.OpenObject();
    j.Int("core", c);
    j.Int("elapsed_ns", cc.elapsed.nanos());
    j.Int("ledger_total_ns", cc.ledger_total.nanos());
    j.Int("residual_ns", cc.residual.nanos());
    j.Bool("conserved", cc.exact());
    j.CloseObject();
  }
  j.CloseArray();

  // Per-band scheduler split (DP1/DP2/.../FP); only bands that did work.
  j.Key("sched_bands");
  j.OpenArray();
  for (int band = 0; band < kMaxStatBands; ++band) {
    Duration block = s.sched_band_cycles[band][static_cast<int>(QueueOp::kBlock)];
    Duration unblock = s.sched_band_cycles[band][static_cast<int>(QueueOp::kUnblock)];
    Duration select = s.sched_band_cycles[band][static_cast<int>(QueueOp::kSelect)];
    if (!block.is_positive() && !unblock.is_positive() && !select.is_positive()) {
      continue;
    }
    j.OpenObject();
    j.Int("band", band);
    j.String("label", BandLabel(kernel, band));
    j.Int("block_ns", block.nanos());
    j.Int("unblock_ns", unblock.nanos());
    j.Int("select_ns", select.nanos());
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

std::string BuildCyclesReport(const std::string& label, const std::string& scheduler,
                              const Kernel& kernel, const std::vector<ThreadId>& task_ids) {
  Json j;
  j.OpenObject();
  j.String("schema", kObsCyclesSchema);
  j.String("label", label);
  j.String("scheduler", scheduler);
  AppendCyclesSection(j, kernel);

  j.Key("tasks");
  j.OpenArray();
  for (const TaskRunRow& r : CollectPerTaskStats(kernel, task_ids)) {
    j.OpenObject();
    j.Int("id", r.id.value);
    j.String("name", r.name);
    j.Int("jobs_completed", static_cast<int64_t>(r.jobs_completed));
    j.Int("deadline_misses", static_cast<int64_t>(r.deadline_misses));
    j.Int("user_ns", r.user_cycles.nanos());
    j.Int("overhead_ns", r.overhead_cycles.nanos());
    j.Int("cost_ewma_ns", r.job_cost_ewma.nanos());
    j.Bool("headroom_seen", r.headroom_seen);
    j.Int("headroom_min_ns", r.headroom_seen ? r.headroom_min.nanos() : 0);
    j.Int("headroom_low_events", static_cast<int64_t>(r.headroom_low_events));
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
  return j.str() + "\n";
}

bool WriteCyclesReportFile(const std::string& path, const std::string& label,
                           const std::string& scheduler, const Kernel& kernel,
                           const std::vector<ThreadId>& task_ids) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string text = BuildCyclesReport(label, scheduler, kernel, task_ids);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace emeralds
