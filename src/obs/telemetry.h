// Fleet telemetry plane: schema "emeralds.fleet.telemetry/1".
//
// Per-node, the kernel already produces everything a production operator
// wants — chain e2e/per-hop latency histograms, deadline headroom minima,
// SLO overrun counts, the per-CycleBucket attribution ledger, trace-ring
// drop counts. What was missing is the *mergeable* form: NodeTelemetry is
// the compact host-side block one node contributes, and FleetTelemetry is
// the lossless merge of thousands of them. Because Log2Histogram::Merge is
// a bucket-wise sum, the merged percentile tables are bucket-exact — the
// fleet p99 is computed over the union of every node's samples, not an
// average of per-node percentiles.
//
// Collection is zero-virtual-cost by construction: CollectNodeTelemetry
// only *reads* kernel state after the run has reached its horizon (it never
// advances the virtual clock or records events), so fleet digests are
// bit-identical with telemetry on or off. Tests enforce this.

#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/core/stats.h"
#include "src/hal/cycles.h"
#include "src/obs/chains.h"
#include "src/obs/histogram.h"
#include "src/obs/trace_analyzer.h"

namespace emeralds {

class Kernel;

namespace obs {

class Json;

inline constexpr const char* kFleetTelemetrySchema = "emeralds.fleet.telemetry/1";

// One declared chain's mergeable latency record. Nodes declare the same
// chain names but may carry node-specific SLO deadlines, so the merge keeps
// the deadline range instead of a single value.
struct ChainTelemetry {
  std::string name;
  Duration deadline_min;
  Duration deadline_max;
  uint64_t completed = 0;
  uint64_t overruns = 0;
  // Instances still in flight at the node's virtual horizon (started but
  // unfinished) — previously silently absent from every surface.
  uint64_t incomplete = 0;
  Log2Histogram e2e;
  struct Hop {
    Log2Histogram queue;
    Log2Histogram exec;
  };
  std::vector<Hop> hops;  // positional per declared stage
};

// The compact block one node contributes to the fleet plane. Everything in
// it merges losslessly: counters add, histograms bucket-sum, minima take
// the min.
struct NodeTelemetry {
  bool collected = false;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t chain_overruns = 0;
  uint64_t headroom_low_events = 0;
  uint64_t trace_dropped = 0;
  // Snapshot-ring evictions before the host drained them: the time-series
  // windows spanning these are lower bounds, so the loss is owned up to here.
  uint64_t stats_snapshot_drops = 0;
  // Deepest the headroom monitor saw any job cut into its slack.
  bool headroom_seen = false;
  Duration headroom_min;
  // Per-CycleBucket virtual-time shares (the node's attribution ledger).
  Duration cycles[kNumCycleBuckets] = {};
  Duration cycles_total;
  // Per-core ledger totals (SMP): core c's total charged virtual time.
  int num_cores = 1;
  Duration core_cycles[kMaxStatCores] = {};
  // Job response times across every task on the node.
  Log2Histogram response;
  std::vector<ChainTelemetry> chains;
};

// Fleet-wide merge of NodeTelemetry blocks plus the worst-offender indices
// the triage layer and the report surface.
struct FleetTelemetry {
  int nodes_collected = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t chain_overruns = 0;
  uint64_t headroom_low_total = 0;
  bool headroom_seen = false;
  Duration headroom_min;
  int headroom_min_node = -1;
  uint64_t trace_dropped_total = 0;
  int trace_dropped_worst_node = -1;
  uint64_t trace_dropped_worst = 0;
  uint64_t stats_snapshot_drops_total = 0;
  Duration cycles[kNumCycleBuckets] = {};
  Duration cycles_total;
  // Widest node and the positional per-core sums across the fleet.
  int max_cores = 0;
  Duration core_cycles[kMaxStatCores] = {};
  Log2Histogram response;
  std::vector<ChainTelemetry> chains;  // merged by chain name
};

// Reads the finished kernel (plus the analyses the caller already ran for
// its oracles) into a NodeTelemetry block. Pure read: no virtual-time
// perturbation, no trace writes.
NodeTelemetry CollectNodeTelemetry(const Kernel& kernel, const TraceAnalysis& analysis,
                                   const ChainAnalysis& chains);

// Merges `node` (identified by `node_index` for worst-offender tracking)
// into `fleet`. Chains merge by name; hops merge positionally.
void MergeNodeTelemetry(FleetTelemetry* fleet, const NodeTelemetry& node, int node_index);

// Histogram JSON: count/min_us/max_us/mean_us/p50_us/p90_us/p99_us/p999_us/
// total_us (a superset of what bench_json_check's RequireHistogram needs).
void AppendTelemetryHistogram(Json& j, const char* key, const Log2Histogram& h);

// Renders a NodeTelemetry body (used inside black-box bundles) or the
// fleet-wide "telemetry" section of emeralds.fleet.run/1 (schema-tagged
// emeralds.fleet.telemetry/1).
void AppendNodeTelemetrySection(Json& j, const NodeTelemetry& t);
void AppendFleetTelemetrySection(Json& j, const FleetTelemetry& t);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_TELEMETRY_H_
