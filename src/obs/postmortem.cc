#include "src/obs/postmortem.h"

#include <algorithm>
#include <cstdio>

#include "src/core/tcb.h"
#include "src/hal/cycles.h"
#include "src/obs/json_writer.h"
#include "src/obs/perfetto_export.h"

namespace emeralds {
namespace obs {
namespace {

constexpr int kMaxThreadId = 65535;
constexpr int32_t kMaxCoreId = 255;

// A job currently between release and completion, with its attribution
// cursor and accumulating ledger.
struct OpenJob {
  bool open = false;
  uint64_t number = 0;
  Instant release;           // nominal (retroactive) release instant
  bool has_deadline = false;
  int64_t budget_ns = 0;     // relative deadline
  bool missed_early = false; // kDeadlineMiss arrived while still open
  Instant jc;                // attribution cursor: time before jc is classified
  int64_t own_exec_ns = 0;   // scheduled time, split at finalize vs the EWMA
  int64_t measured_cost_ns = 0;  // own_exec + overhead billed while running
  LatenessLedger ledger;
};

struct PmThread {
  int core = 0;
  bool blocked = false;
  BlockReason reason = BlockReason::kNone;
  int32_t blocked_obj = -1;
  bool have_last_complete = false;
  Instant last_complete;
  uint64_t last_number = 0;
  bool last_has_deadline = false;
  bool last_counted = false;  // the finalized job was already counted missed
  bool ewma_seeded = false;
  int64_t ewma_ns = 0;  // analyzer-side replay of the kernel's cost EWMA
  OpenJob job;
};

void AddOverhead(LatenessLedger& ledger, int bucket, int64_t ns) {
  switch (static_cast<CycleBucket>(bucket)) {
    case CycleBucket::kIrq:
      ledger.irq_ns += ns;
      break;
    case CycleBucket::kIpi:
      ledger.ipi_ns += ns;
      break;
    case CycleBucket::kTimerSvc:
      ledger.timer_svc_ns += ns;
      break;
    case CycleBucket::kSchedSelect:
    case CycleBucket::kSchedBlock:
    case CycleBucket::kSchedUnblock:
    case CycleBucket::kSchedParse:
    case CycleBucket::kContextSwitch:
      ledger.sched_ns += ns;
      break;
    default:
      // Traps, semaphore/PI/IPC bookkeeping, stats sampling.
      ledger.syscall_ns += ns;
      break;
  }
}

// Largest single ledger component, named. Per-preemptor and per-lock shares
// compete individually so "preempted by t3" can win over a bulk category.
std::string TopBlame(const LatenessLedger& l) {
  const char* label = "none";
  char buf[48];
  int64_t best = 0;
  auto consider = [&](const char* name, int64_t v) {
    if (v > best) {
      best = v;
      label = name;
    }
  };
  consider("carry_in", l.carry_in_ns);
  consider("release_latency", l.release_latency_ns);
  consider("self_suspend", l.self_suspend_ns);
  consider("irq", l.irq_ns);
  consider("ipi", l.ipi_ns);
  consider("timer_svc", l.timer_svc_ns);
  consider("sched", l.sched_ns);
  consider("syscall", l.syscall_ns);
  consider("own_overrun", l.own_overrun_ns);
  consider("own_expected", l.own_expected_ns);
  consider("unattributed", l.unattributed_ns);
  for (const auto& [tid, ns] : l.preemptor_ns) {
    if (ns > best) {
      best = ns;
      std::snprintf(buf, sizeof(buf), "preempted_by:t%d", tid);
      label = buf;
    }
  }
  for (const auto& [sem, ns] : l.lock_ns) {
    if (ns > best) {
      best = ns;
      std::snprintf(buf, sizeof(buf), "blocked_on:S%d", sem);
      label = buf;
    }
  }
  return label;
}

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void BlameTotals::Merge(const BlameTotals& other) {
  misses_analyzed += other.misses_analyzed;
  conservation_failures += other.conservation_failures;
  tardiness_ns += other.tardiness_ns;
  unattributed_ns += other.unattributed_ns;
  for (const auto& [k, v] : other.victim_misses) {
    victim_misses[k] += v;
  }
  for (const auto& [k, v] : other.victim_tardiness_ns) {
    victim_tardiness_ns[k] += v;
  }
  for (const auto& [k, v] : other.preemptor_ns) {
    preemptor_ns[k] += v;
  }
  for (const auto& [k, v] : other.lock_ns) {
    lock_ns[k] += v;
  }
}

uint64_t BlameTotals::Digest() const {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  h = FnvMix(h, misses_analyzed);
  h = FnvMix(h, conservation_failures);
  h = FnvMix(h, static_cast<uint64_t>(tardiness_ns));
  h = FnvMix(h, static_cast<uint64_t>(unattributed_ns));
  auto mix_map = [&](const auto& m) {
    h = FnvMix(h, m.size());
    for (const auto& [k, v] : m) {
      h = FnvMix(h, static_cast<uint64_t>(k));
      h = FnvMix(h, static_cast<uint64_t>(v));
    }
  };
  mix_map(victim_misses);
  mix_map(victim_tardiness_ns);
  mix_map(preemptor_ns);
  mix_map(lock_ns);
  return h;
}

PostmortemAnalysis AnalyzePostmortem(const TraceEvent* events, size_t count,
                                     uint64_t dropped_events) {
  PostmortemAnalysis out;
  bool truncated = dropped_events > 0;
  out.window_truncated = truncated;

  std::vector<PmThread> threads;
  std::vector<int32_t> open_tids;
  auto track = [&](int32_t id) -> PmThread* {
    if (id < 0 || id > kMaxThreadId) {
      return nullptr;
    }
    if (static_cast<size_t>(id) >= threads.size()) {
      threads.resize(id + 1);
    }
    return &threads[id];
  };

  std::vector<int32_t> running;
  std::vector<char> running_known;
  auto core_slot = [&](int32_t core) -> int32_t {
    if (core < 0 || core > kMaxCoreId) {
      return -1;
    }
    if (static_cast<size_t>(core) >= running.size()) {
      // A complete trace starts idle on every core.
      running.resize(core + 1, -1);
      running_known.resize(core + 1, dropped_events == 0 ? 1 : 0);
    }
    return core;
  };

  Instant cursor;       // max non-release event time processed so far
  bool have_cursor = false;
  Instant last_time;

  // Classifies the gap (job.jc, T] for one open job; exact partition of the
  // gap, so per-job sums telescope by construction.
  auto attribute = [&](int32_t tid, PmThread& th, Instant t, bool is_span, int span_core,
                       int span_bucket, int64_t span_ns) {
    OpenJob& job = th.job;
    int64_t g = (t - job.jc).nanos();
    if (g <= 0) {
      return;
    }
    LatenessLedger& l = job.ledger;
    if (th.blocked) {
      switch (th.reason) {
        case BlockReason::kWaitSem:
        case BlockReason::kPreAcquire:
          l.lock_blocked_ns += g;
          if (th.blocked_obj >= 0) {
            l.lock_ns[th.blocked_obj] += g;
          }
          break;
        case BlockReason::kWaitPeriod:
          // Released but the wake has not landed yet (timer service / CSE
          // release window): still latency of getting the job going.
          l.release_latency_ns += g;
          break;
        default:
          l.self_suspend_ns += g;
          break;
      }
    } else {
      // The min() clamp keeps microsecond-truncated CSV replays exact: a
      // span can only shrink to the gap, never overdraw it.
      int64_t span_part =
          (is_span && span_core == th.core) ? std::min(g, span_ns) : 0;
      if (span_part > 0) {
        AddOverhead(l, span_bucket, span_part);
      }
      int64_t residue = g - span_part;
      if (residue > 0) {
        int32_t c = core_slot(th.core);
        bool known = c >= 0 && running_known[c];
        int32_t runner = c >= 0 ? running[c] : -1;
        if (known && runner == tid) {
          job.own_exec_ns += residue;
          job.measured_cost_ns += residue;
        } else if (known && runner >= 0) {
          l.preemption_ns += residue;
          l.preemptor_ns[runner] += residue;
        } else if (known) {
          // Ready with an idle core: the scheduler is in transit.
          l.sched_ns += residue;
        } else {
          l.unattributed_ns += residue;
        }
      }
      if (span_part > 0) {
        int32_t c = core_slot(th.core);
        if (c >= 0 && running_known[c] && running[c] == tid) {
          // Overhead billed while scheduled counts toward the measured job
          // cost, matching the kernel's bill-to-current EWMA semantics.
          job.measured_cost_ns += span_part;
        }
      }
    }
    job.jc = t;
  };

  auto close_open_job = [&](int32_t tid, PmThread& th, bool count_incomplete_miss) {
    if (!th.job.open) {
      return;
    }
    if (count_incomplete_miss) {
      bool missed = th.job.missed_early;
      if (!missed && th.job.has_deadline && have_cursor) {
        missed = (cursor - th.job.release).nanos() > th.job.budget_ns;
      }
      if (missed) {
        ++out.incomplete_misses;
      }
    }
    th.job = OpenJob();
    open_tids.erase(std::find(open_tids.begin(), open_tids.end(), tid));
  };

  auto finalize_job = [&](int32_t tid, PmThread& th, Instant completion) {
    OpenJob& job = th.job;
    LatenessLedger& l = job.ledger;
    int64_t response = (completion - job.release).nanos();
    // Split scheduled execution against the replayed EWMA. The split
    // partitions own_exec exactly, so conservation never depends on the
    // predictor's accuracy.
    int64_t expected = th.ewma_seeded ? th.ewma_ns : job.measured_cost_ns;
    l.own_expected_ns = std::min(job.own_exec_ns, std::max<int64_t>(0, expected));
    l.own_overrun_ns = job.own_exec_ns - l.own_expected_ns;
    if (th.ewma_seeded) {
      th.ewma_ns += (job.measured_cost_ns - th.ewma_ns) / 4;
    } else {
      th.ewma_ns = job.measured_cost_ns;
      th.ewma_seeded = true;
    }

    bool missed = job.missed_early ||
                  (job.has_deadline && response > job.budget_ns);
    th.have_last_complete = true;
    th.last_complete = completion;
    th.last_number = job.number;
    th.last_has_deadline = job.has_deadline;
    th.last_counted = missed;
    if (missed) {
      if (!job.has_deadline) {
        // Legacy trace (no encoded deadline): the miss is real but the
        // tardiness target is unknown, so it is counted, not attributed.
        ++out.deadline_unknown;
      } else {
        int64_t sum = l.sum_ns();
        bool conserved = sum == response;
        if (!conserved) {
          ++out.conservation_failures;
          ++out.blame.conservation_failures;
        }
        ++out.misses_analyzed;
        ++out.blame.misses_analyzed;
        int64_t tardiness = response - job.budget_ns;
        out.blame.tardiness_ns += tardiness;
        out.blame.unattributed_ns += l.unattributed_ns;
        ++out.blame.victim_misses[tid];
        out.blame.victim_tardiness_ns[tid] += tardiness;
        for (const auto& [k, v] : l.preemptor_ns) {
          out.blame.preemptor_ns[k] += v;
        }
        for (const auto& [k, v] : l.lock_ns) {
          out.blame.lock_ns[k] += v;
        }
        if (out.misses.size() < kMaxJobPostmortems) {
          JobPostmortem rec;
          rec.thread_id = tid;
          rec.job_number = job.number;
          rec.release = job.release;
          rec.completion = completion;
          rec.has_deadline = true;
          rec.deadline_budget_ns = job.budget_ns;
          rec.response_ns = response;
          rec.tardiness_ns = tardiness;
          rec.conserved = conserved;
          rec.ledger = l;
          rec.top_blame = TopBlame(rec.ledger);
          out.misses.push_back(std::move(rec));
        } else {
          ++out.records_dropped;
        }
      }
    }
    th.job = OpenJob();
    open_tids.erase(std::find(open_tids.begin(), open_tids.end(), tid));
  };

  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    last_time = e.time;
    if (e.type != TraceEventType::kJobRelease) {
      // Gap attribution for every open job up to this event's time.
      // kJobRelease is exempt: it carries the retroactive nominal release.
      bool is_span = e.type == TraceEventType::kOverheadSpan;
      int span_core = is_span ? OverheadSpanCore(e.arg0) : -1;
      int span_bucket = is_span ? OverheadSpanBucket(e.arg0) : -1;
      int64_t span_ns = is_span ? e.arg1 : 0;
      for (int32_t tid : open_tids) {
        attribute(tid, threads[tid], e.time, is_span, span_core, span_bucket, span_ns);
      }
      if (!have_cursor || e.time > cursor) {
        cursor = e.time;
        have_cursor = true;
      }
    }

    switch (e.type) {
      case TraceEventType::kContextSwitch: {
        int32_t c = core_slot(e.arg2);
        if (c >= 0) {
          running[c] = e.arg1;
          running_known[c] = 1;
        }
        PmThread* in = track(e.arg1);
        if (in != nullptr) {
          if (e.arg2 >= 0 && e.arg2 <= kMaxCoreId) {
            in->core = e.arg2;
          }
          in->blocked = false;  // a blocked thread cannot be switched in
        }
        PmThread* outg = track(e.arg0);
        if (outg != nullptr && e.arg2 >= 0 && e.arg2 <= kMaxCoreId) {
          outg->core = e.arg2;
        }
        break;
      }
      case TraceEventType::kJobRelease: {
        PmThread* th = track(e.arg0);
        if (th == nullptr) {
          break;
        }
        // A release over a still-open job only happens on corrupted or
        // truncated streams; discard the stale job.
        close_open_job(e.arg0, *th, true);
        OpenJob& job = th->job;
        job.open = true;
        job.number = static_cast<uint64_t>(e.arg1);
        job.release = e.time;
        if (e.arg2 > 0) {
          job.has_deadline = true;
          job.budget_ns = e.arg2;
        } else if (e.arg2 < 0) {
          job.has_deadline = true;
          job.budget_ns = -static_cast<int64_t>(e.arg2) * 1000;
        }
        Instant prev = th->have_last_complete ? th->last_complete : e.time;
        Instant base = std::max(e.time, prev);
        Instant jc0 = base;
        if (have_cursor && cursor > jc0) {
          jc0 = cursor;
        }
        job.jc = jc0;
        LatenessLedger& l = job.ledger;
        if (prev > e.time) {
          l.carry_in_ns = (prev - e.time).nanos();
        }
        int64_t latency = (jc0 - base).nanos();
        if (!th->have_last_complete && truncated) {
          // Pre-window history is unknown: the lump between the retroactive
          // release and the stream cursor cannot be attributed honestly.
          l.unattributed_ns += latency;
        } else {
          l.release_latency_ns += latency;
        }
        open_tids.push_back(e.arg0);
        break;
      }
      case TraceEventType::kJobComplete: {
        PmThread* th = track(e.arg0);
        if (th == nullptr) {
          break;
        }
        if (th->job.open && th->job.number == static_cast<uint64_t>(e.arg1)) {
          finalize_job(e.arg0, *th, e.time);
        } else {
          // Complete with no visible release (truncated window): remember
          // the completion so the next release's carry-in is still exact.
          close_open_job(e.arg0, *th, true);
          th->have_last_complete = true;
          th->last_complete = e.time;
          th->last_number = static_cast<uint64_t>(e.arg1);
          th->last_has_deadline = false;
          th->last_counted = false;
        }
        break;
      }
      case TraceEventType::kDeadlineMiss: {
        PmThread* th = track(e.arg0);
        if (th == nullptr) {
          break;
        }
        if (th->job.open && th->job.number == static_cast<uint64_t>(e.arg1)) {
          th->job.missed_early = true;
        } else if (th->have_last_complete &&
                   th->last_number == static_cast<uint64_t>(e.arg1)) {
          // The completion-path miss lands just after kJobComplete. Already
          // counted via the deadline check at finalize — unless the trace
          // carried no deadline, where the event is the only miss signal.
          if (!th->last_counted && !th->last_has_deadline) {
            ++out.deadline_unknown;
            th->last_counted = true;
          }
        } else {
          ++out.unmatched_misses;
        }
        break;
      }
      case TraceEventType::kThreadBlock: {
        PmThread* th = track(e.arg0);
        if (th != nullptr) {
          th->blocked = true;
          th->reason = static_cast<BlockReason>(e.arg1);
          th->blocked_obj = e.arg2;
        }
        break;
      }
      case TraceEventType::kThreadReady: {
        PmThread* th = track(e.arg0);
        if (th != nullptr) {
          th->blocked = false;
          th->reason = BlockReason::kNone;
          th->blocked_obj = -1;
          if (e.arg2 >= 0 && e.arg2 <= kMaxCoreId) {
            th->core = e.arg2;
          }
        }
        break;
      }
      case TraceEventType::kSemCseEarlyPi: {
        // The woken thread stays blocked, but its wait flips from the period
        // grid to the contended lock — from here the time is PI blocking.
        PmThread* th = track(e.arg0);
        if (th != nullptr) {
          th->blocked = true;
          th->reason = BlockReason::kWaitSem;
          th->blocked_obj = e.arg1;
        }
        break;
      }
      case TraceEventType::kThreadExit: {
        PmThread* th = track(e.arg0);
        if (th != nullptr) {
          close_open_job(e.arg0, *th, true);
          th->blocked = false;
          int32_t c = core_slot(e.arg2);
          if (c >= 0 && running_known[c] && running[c] == e.arg0) {
            running[c] = -1;
          }
        }
        break;
      }
      case TraceEventType::kTraceEpoch:
        // Mid-run sink reset: every open job and scheduler state predates a
        // discarded window. Start over, truncated.
        truncated = true;
        out.window_truncated = true;
        for (int32_t tid : std::vector<int32_t>(open_tids)) {
          close_open_job(tid, threads[tid], true);
        }
        for (PmThread& th : threads) {
          th.blocked = false;
        }
        for (size_t c = 0; c < running.size(); ++c) {
          running_known[c] = 0;
        }
        break;
      default:
        break;
    }
  }

  // Horizon: jobs still open are incomplete; a passed deadline among them is
  // a known miss without a completion to attribute.
  for (int32_t tid : std::vector<int32_t>(open_tids)) {
    PmThread& th = threads[tid];
    bool missed = th.job.missed_early;
    if (!missed && th.job.has_deadline) {
      missed = (last_time - th.job.release).nanos() > th.job.budget_ns;
    }
    if (missed) {
      ++out.incomplete_misses;
    }
    th.job = OpenJob();
  }
  return out;
}

PostmortemAnalysis AnalyzePostmortem(const TraceSink& sink) {
  std::vector<TraceEvent> events;
  events.reserve(sink.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    events.push_back(sink.at(i));
  }
  return AnalyzePostmortem(events.data(), events.size(), sink.dropped());
}

namespace {

void AppendLedger(Json& j, const LatenessLedger& l) {
  j.OpenObject();
  j.Int("carry_in_ns", l.carry_in_ns);
  j.Int("release_latency_ns", l.release_latency_ns);
  j.Int("preemption_ns", l.preemption_ns);
  j.Int("lock_blocked_ns", l.lock_blocked_ns);
  j.Int("self_suspend_ns", l.self_suspend_ns);
  j.Int("irq_ns", l.irq_ns);
  j.Int("ipi_ns", l.ipi_ns);
  j.Int("timer_svc_ns", l.timer_svc_ns);
  j.Int("sched_ns", l.sched_ns);
  j.Int("syscall_ns", l.syscall_ns);
  j.Int("own_expected_ns", l.own_expected_ns);
  j.Int("own_overrun_ns", l.own_overrun_ns);
  j.Int("unattributed_ns", l.unattributed_ns);
  j.Int("sum_ns", l.sum_ns());
  j.Key("preemptors");
  j.OpenArray();
  for (const auto& [tid, ns] : l.preemptor_ns) {
    j.OpenObject();
    j.Int("thread", tid);
    j.Int("ns", ns);
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("locks");
  j.OpenArray();
  for (const auto& [sem, ns] : l.lock_ns) {
    j.OpenObject();
    j.Int("sem", sem);
    j.Int("ns", ns);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

}  // namespace

void AppendBlameTotals(Json& j, const BlameTotals& b) {
  j.OpenObject();
  j.Int("misses_analyzed", static_cast<int64_t>(b.misses_analyzed));
  j.Int("conservation_failures", static_cast<int64_t>(b.conservation_failures));
  j.Int("tardiness_ns", b.tardiness_ns);
  j.Int("unattributed_ns", b.unattributed_ns);
  j.Key("victims");
  j.OpenArray();
  for (const auto& [tid, n] : b.victim_misses) {
    j.OpenObject();
    j.Int("thread", tid);
    j.Int("misses", static_cast<int64_t>(n));
    auto it = b.victim_tardiness_ns.find(tid);
    j.Int("tardiness_ns", it != b.victim_tardiness_ns.end() ? it->second : 0);
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("preemptors");
  j.OpenArray();
  for (const auto& [tid, ns] : b.preemptor_ns) {
    j.OpenObject();
    j.Int("thread", tid);
    j.Int("blamed_ns", ns);
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("locks");
  j.OpenArray();
  for (const auto& [sem, ns] : b.lock_ns) {
    j.OpenObject();
    j.Int("sem", sem);
    j.Int("blamed_ns", ns);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

void AppendPostmortemSection(Json& j, const PostmortemAnalysis& a, const ChainAnalysis* chains) {
  j.OpenObject();
  j.Bool("window_truncated", a.window_truncated);
  j.Int("misses_analyzed", static_cast<int64_t>(a.misses_analyzed));
  j.Int("records_dropped", static_cast<int64_t>(a.records_dropped));
  j.Int("incomplete_misses", static_cast<int64_t>(a.incomplete_misses));
  j.Int("unmatched_misses", static_cast<int64_t>(a.unmatched_misses));
  j.Int("deadline_unknown", static_cast<int64_t>(a.deadline_unknown));
  j.Int("conservation_failures", static_cast<int64_t>(a.conservation_failures));
  j.Key("blame");
  AppendBlameTotals(j, a.blame);
  j.Key("misses");
  j.OpenArray();
  for (const JobPostmortem& m : a.misses) {
    j.OpenObject();
    j.Int("thread", m.thread_id);
    j.Int("job", static_cast<int64_t>(m.job_number));
    j.Number("release_us", static_cast<double>(m.release.nanos()) / 1e3);
    j.Number("completion_us", static_cast<double>(m.completion.nanos()) / 1e3);
    j.Int("deadline_budget_ns", m.deadline_budget_ns);
    j.Int("response_ns", m.response_ns);
    j.Int("tardiness_ns", m.tardiness_ns);
    j.Bool("conserved", m.conserved);
    j.String("top_blame", m.top_blame);
    j.Key("ledger");
    AppendLedger(j, m.ledger);
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("chain_overruns");
  j.OpenArray();
  if (chains != nullptr) {
    for (const ChainReport& c : chains->chains) {
      for (const ChainOverrunRecord& r : c.overrun_records) {
        j.OpenObject();
        j.String("chain", c.name);
        j.Int("origin", static_cast<int64_t>(r.origin));
        j.Number("start_us", static_cast<double>(r.start.nanos()) / 1e3);
        j.Int("e2e_ns", r.e2e.nanos());
        j.Int("deadline_ns", c.deadline.nanos());
        j.Int("overrun_ns", r.e2e.nanos() - c.deadline.nanos());
        j.Key("hop_queue_ns");
        j.OpenArray();
        for (int64_t q : r.hop_queue_ns) {
          j.IntElem(q);
        }
        j.CloseArray();
        j.Key("hop_exec_ns");
        j.OpenArray();
        for (int64_t x : r.hop_exec_ns) {
          j.IntElem(x);
        }
        j.CloseArray();
        j.CloseObject();
      }
    }
  }
  j.CloseArray();
  int64_t chain_records_dropped = 0;
  if (chains != nullptr) {
    for (const ChainReport& c : chains->chains) {
      chain_records_dropped += static_cast<int64_t>(c.overrun_records_dropped);
    }
  }
  j.Int("chain_overrun_records_dropped", chain_records_dropped);
  j.CloseObject();
}

std::string BuildPostmortemReport(const std::string& label, const PostmortemAnalysis& analysis,
                                  const ChainAnalysis* chains) {
  Json j;
  j.OpenObject();
  j.String("schema", kObsPostmortemSchema);
  j.String("label", label);
  j.Key("report");
  AppendPostmortemSection(j, analysis, chains);
  j.CloseObject();
  return j.str() + "\n";
}

void PrintPostmortem(std::FILE* out, const PostmortemAnalysis& a, const ChainAnalysis* chains) {
  std::fprintf(out, "postmortem: %llu miss(es) analyzed%s",
               static_cast<unsigned long long>(a.misses_analyzed),
               a.window_truncated ? " (window truncated)" : "");
  if (a.incomplete_misses > 0 || a.unmatched_misses > 0 || a.deadline_unknown > 0) {
    std::fprintf(out, ", %llu incomplete, %llu unmatched, %llu without deadline",
                 static_cast<unsigned long long>(a.incomplete_misses),
                 static_cast<unsigned long long>(a.unmatched_misses),
                 static_cast<unsigned long long>(a.deadline_unknown));
  }
  std::fprintf(out, "\n");
  if (a.conservation_failures > 0) {
    std::fprintf(out, "  CONSERVATION FAILURES: %llu ledger(s) did not telescope\n",
                 static_cast<unsigned long long>(a.conservation_failures));
  }
  for (const JobPostmortem& m : a.misses) {
    std::fprintf(out, "  t%d job %llu: late by %.3f us (response %.3f us, budget %.3f us)%s\n",
                 m.thread_id, static_cast<unsigned long long>(m.job_number),
                 static_cast<double>(m.tardiness_ns) / 1e3,
                 static_cast<double>(m.response_ns) / 1e3,
                 static_cast<double>(m.deadline_budget_ns) / 1e3,
                 m.conserved ? "" : "  [NOT CONSERVED]");
    const LatenessLedger& l = m.ledger;
    auto line = [&](const char* name, int64_t ns) {
      if (ns > 0) {
        std::fprintf(out, "    %-16s %12.3f us  (%5.1f%%)\n", name,
                     static_cast<double>(ns) / 1e3,
                     m.response_ns > 0 ? 100.0 * static_cast<double>(ns) /
                                             static_cast<double>(m.response_ns)
                                       : 0.0);
      }
    };
    line("carry_in", l.carry_in_ns);
    line("release_latency", l.release_latency_ns);
    for (const auto& [tid, ns] : l.preemptor_ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "preempt by t%d", tid);
      line(buf, ns);
    }
    for (const auto& [sem, ns] : l.lock_ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "blocked on S%d", sem);
      line(buf, ns);
    }
    line("self_suspend", l.self_suspend_ns);
    line("irq", l.irq_ns);
    line("ipi", l.ipi_ns);
    line("timer_svc", l.timer_svc_ns);
    line("sched", l.sched_ns);
    line("syscall", l.syscall_ns);
    line("own_expected", l.own_expected_ns);
    line("own_overrun", l.own_overrun_ns);
    line("unattributed", l.unattributed_ns);
    std::fprintf(out, "    top blame: %s\n", m.top_blame.c_str());
  }
  if (a.records_dropped > 0) {
    std::fprintf(out, "  (%llu further miss record(s) past the cap)\n",
                 static_cast<unsigned long long>(a.records_dropped));
  }
  if (chains != nullptr) {
    for (const ChainReport& c : chains->chains) {
      for (const ChainOverrunRecord& r : c.overrun_records) {
        std::fprintf(out, "  chain '%s' origin %u: e2e %.3f us over %.3f us deadline\n",
                     c.name.c_str(), r.origin, r.e2e.micros_f(), c.deadline.micros_f());
        for (size_t k = 0; k < r.hop_queue_ns.size(); ++k) {
          std::fprintf(out, "    hop %zu: queue %.3f us%s\n", k,
                       static_cast<double>(r.hop_queue_ns[k]) / 1e3, "");
          if (k < r.hop_exec_ns.size()) {
            std::fprintf(out, "    hop %zu: exec  %.3f us\n", k,
                         static_cast<double>(r.hop_exec_ns[k]) / 1e3);
          }
        }
      }
      if (c.overrun_records_dropped > 0) {
        std::fprintf(out, "  chain '%s': %llu overrun record(s) past the cap\n", c.name.c_str(),
                     static_cast<unsigned long long>(c.overrun_records_dropped));
      }
    }
  }
}

std::vector<PerfettoAnnotationSlice> PostmortemAnnotations(const PostmortemAnalysis& a) {
  std::vector<PerfettoAnnotationSlice> slices;
  slices.reserve(a.misses.size());
  for (const JobPostmortem& m : a.misses) {
    PerfettoAnnotationSlice s;
    s.begin = m.release;
    s.duration = Duration::FromNanos(m.response_ns);
    s.thread_id = m.thread_id;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "LATE job %llu: +%.1f us, top: %s",
                  static_cast<unsigned long long>(m.job_number),
                  static_cast<double>(m.tardiness_ns) / 1e3, m.top_blame.c_str());
    s.name = buf;
    slices.push_back(std::move(s));
  }
  return slices;
}

}  // namespace obs
}  // namespace emeralds
