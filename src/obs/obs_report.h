// The observability run report: schema "emeralds.obs.run/1".
//
// One JSON document per run tying the three observability sources together:
// the kernel's own KernelStats counters, the per-task rows from
// CollectPerTaskStats, the trace-derived TraceAnalysis (histograms, invariant
// violations), the periodic StatsSampler time series, and a reconciliation
// block stating whether the analyzer's replay agrees with the kernel's
// counters. bench_json_check validates the schema; trace_inspect consumes the
// report to cross-check an exported trace against it.

#ifndef SRC_OBS_OBS_REPORT_H_
#define SRC_OBS_OBS_REPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/taskset_runner.h"
#include "src/obs/trace_analyzer.h"

namespace emeralds {

class Kernel;

namespace obs {

inline constexpr const char* kObsRunSchema = "emeralds.obs.run/1";

struct ObsRunInfo {
  std::string label;      // e.g. "fig2_rm"
  std::string scheduler;  // e.g. "RM", "EDF", "CSD"
  Duration run_duration;  // simulated time covered by the run
};

// Replay-vs-kernel agreement: does the analyzer's replay of the trace arrive
// at the same counters the kernel incremented live? Only meaningful for an
// untruncated trace — a suffix window legitimately undercounts — so `checked`
// records whether the equalities were actually enforced. The torture harness
// uses this as its second oracle (the first is zero invariant violations).
struct Reconciliation {
  bool checked = false;
  bool context_switches_match = true;
  bool deadline_misses_match = true;
  bool jobs_completed_match = true;
  bool cse_early_pi_match = true;
  bool msg_sends_match = true;
  bool msg_recvs_match = true;
  bool pi_chain_limit_match = true;
  bool headroom_low_match = true;
  bool chain_events_match = true;  // analyzer's chain emit/consume counts vs kernel's

  bool ok() const {
    return context_switches_match && deadline_misses_match && jobs_completed_match &&
           cse_early_pi_match && msg_sends_match && msg_recvs_match && pi_chain_limit_match &&
           headroom_low_match && chain_events_match;
  }
};

Reconciliation ComputeReconciliation(const TraceAnalysis& analysis, const KernelStats& stats);

// Renders the full report as a JSON string. `task_ids` selects the taskset
// threads for the per-task rows (pass {} to skip them). The trace analysis is
// recomputed here from the kernel's retained trace window.
std::string BuildObsRunReport(const ObsRunInfo& info, const Kernel& kernel,
                              const std::vector<ThreadId>& task_ids);

// Same, written to an open stream / a path. The path variant returns false
// when the file cannot be created.
void WriteObsRunReport(std::FILE* out, const ObsRunInfo& info, const Kernel& kernel,
                       const std::vector<ThreadId>& task_ids);
bool WriteObsRunReportFile(const std::string& path, const ObsRunInfo& info,
                           const Kernel& kernel, const std::vector<ThreadId>& task_ids);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_OBS_REPORT_H_
