// Causal event-chain reconstruction: schema "emeralds.obs.chains/1".
//
// The kernel stamps every producing operation (IRQ dispatch, job release,
// counting-sem handoff, condvar wake, mailbox send, state-message write) with
// a causal token — an origin id plus a hop count — and carries it through
// blocking and wakeup into the consumer's next work, emitting paired
// kChainEmit/kChainConsume trace events. This analyzer replays those events
// to (a) enforce token conservation (every consume matches a visible emit,
// hop counts advance by exactly one, origins are minted once) and (b)
// reconstruct instances of user-declared chains (KernelConfig::chains,
// resolved by the kernel into endpoint ids), producing end-to-end latency and
// per-hop queueing/execution breakdowns plus chain-deadline overrun counts.
//
// Truncation-aware like the trace analyzer: with a suffix window (dropped
// events, or a sink Reset whose epoch marker shows pre-window state was
// discarded) a consume whose emit fell outside the window is counted as an
// orphan hop, never reported as a violation.

#ifndef SRC_OBS_CHAINS_H_
#define SRC_OBS_CHAINS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/hal/trace.h"
#include "src/obs/histogram.h"

namespace emeralds {

class TraceSink;

namespace obs {

inline constexpr const char* kObsChainsSchema = "emeralds.obs.chains/1";

enum class ChainViolationKind {
  // A kChainConsume with no matching kChainEmit (same origin and endpoint,
  // hop exactly one less) in a complete window. In a truncated window this
  // degrades to the orphan_hops counter instead.
  kOrphanConsume,
  // A second hop-0 emit for an origin already minted inside the window:
  // origins are mint-once, so this is cross-chain token leakage.
  kOriginReuse,
  // A chain event carrying a hop count past kMaxChainHops, or a consume at
  // hop 0 / an event with the invalid origin 0 — states the kernel never
  // records, so the stream is corrupted.
  kMalformedToken,
};

const char* ChainViolationKindToString(ChainViolationKind kind);

struct ChainViolation {
  ChainViolationKind kind;
  size_t event_index;  // position in the analyzed window
  std::string detail;
};

// Per-stage latency breakdown of one declared chain. `queue` is the time a
// token waited at this stage (emit -> consume); `exec` is the consumer's
// processing time before it produced at the next stage (consume here -> emit
// there), empty for the final stage. By construction the end-to-end latency
// of every completed instance equals the sum of its per-stage queue and exec
// samples exactly (the intervals telescope).
struct ChainHopStats {
  int32_t endpoint = 0;   // ChainEndpointPack value for this stage
  int consumer_tid = -1;  // declared consumer (-1 = any)
  Log2Histogram queue;
  Log2Histogram exec;
};

// One SLO-overrunning instance, retained verbatim for the postmortem report.
// The per-hop queue/exec intervals telescope: their sum equals e2e exactly,
// so every overrun carries its own exact lateness decomposition.
struct ChainOverrunRecord {
  uint32_t origin = 0;  // token origin of the overrunning instance
  Instant start;        // first emit
  Duration e2e;         // first emit -> final consume
  std::vector<int64_t> hop_queue_ns;  // one per stage
  std::vector<int64_t> hop_exec_ns;   // one per stage boundary (stages - 1)
};

// Per-chain cap on retained overrun records; overflow only bumps the
// dropped counter (the histograms still see every instance).
inline constexpr size_t kMaxChainOverrunRecords = 32;

struct ChainReport {
  std::string name;
  Duration deadline;       // zero = no SLO declared
  bool resolved = false;   // spec resolved against live kernel objects
  uint64_t completed = 0;  // instances that traversed every stage in-window
  uint64_t incomplete = 0; // instances started but unfinished at window end
  uint64_t overruns = 0;   // completed instances with e2e > deadline
  Log2Histogram e2e;       // first emit -> final consume
  std::vector<ChainHopStats> hops;
  std::vector<ChainOverrunRecord> overrun_records;  // first kMax... overruns
  uint64_t overrun_records_dropped = 0;             // overruns past the cap
};

struct ChainAnalysis {
  // True when the window is the whole run: no ring overflow and no sink
  // Reset marker. Only then are orphan consumes violations.
  bool complete_window = false;
  uint64_t chain_emits = 0;
  uint64_t chain_consumes = 0;
  uint64_t origins_minted = 0;    // hop-0 emits observed in-window
  uint64_t orphan_hops = 0;       // consumes whose emit fell outside the window
  uint64_t saturated_hops = 0;    // consumes at the kMaxChainHops cap with no
                                  // visible emit: the producer's token hit the
                                  // hop ceiling and was dropped, so the hop is
                                  // counted, never a conservation violation
  uint64_t unconsumed_emits = 0;  // emits never picked up (banked/overwritten
                                  // tokens, unread slots) — informational
  std::vector<ChainReport> chains;  // one per spec, same order
  std::vector<ChainViolation> violations;

  bool ok() const { return violations.empty(); }
};

// Replays `events[0..count)` (oldest first). `dropped_events` is
// TraceSink::dropped(); `specs` is Kernel::resolved_chains() (or a
// hand-built list when replaying a CSV offline). Unresolved specs still get
// a ChainReport row (resolved = false, no instances).
ChainAnalysis AnalyzeChains(const TraceEvent* events, size_t count, uint64_t dropped_events,
                            const std::vector<ResolvedChain>& specs);

// Convenience overload over a live sink's retained window.
ChainAnalysis AnalyzeChains(const TraceSink& sink, const std::vector<ResolvedChain>& specs);

// Renders the analysis as a JSON object body (no surrounding document):
// used both embedded as the "chains" section of emeralds.obs.run/1 and in
// the standalone report below.
void AppendChainsSection(class Json& j, const ChainAnalysis& analysis);

// Standalone report document with schema "emeralds.obs.chains/1".
std::string BuildChainsReport(const std::string& label, const ChainAnalysis& analysis);
bool WriteChainsReportFile(const std::string& path, const std::string& label,
                           const ChainAnalysis& analysis);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_CHAINS_H_
