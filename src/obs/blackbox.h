// Black-box flight recorder: schema "emeralds.obs.blackbox/1".
//
// When a node misbehaves — an oracle fails, a chain blows its SLO, the
// headroom monitor fires, a deadline is missed — the forensic context an
// operator needs is exactly what the kernel already keeps in RAM: the
// TraceSink ring (the last N events before the anomaly), the stats-sampler
// deltas, the chain analysis, and the cycle-attribution ledger.
// CaptureBlackBox snapshots all of it from a live kernel into one value,
// and WriteBlackBoxBundle lays it out as an inspectable artifact directory:
//
//   <dir>/repro.txt       one-line repro command + the anomaly reason
//   <dir>/trace.csv       the trace window, TraceSink::ExportCsv format
//                         (re-importable by obs::ImportTraceCsv and every
//                         CSV-consuming tool: trace_inspect, fleet_inspect)
//   <dir>/blackbox.json   machine-readable snapshot: stats counters, the
//                         node telemetry block, the chain analysis
//
// The same bundle shape is used by the fleet runner's anomaly capture and
// by the torture harness's first-failure artifacts, so a sick fleet node
// and a failing fuzz seed are inspected with the same tools.

#ifndef SRC_OBS_BLACKBOX_H_
#define SRC_OBS_BLACKBOX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/stats.h"
#include "src/hal/trace.h"
#include "src/obs/chains.h"
#include "src/obs/postmortem.h"
#include "src/obs/telemetry.h"

namespace emeralds {

class Kernel;

namespace obs {

inline constexpr const char* kObsBlackBoxSchema = "emeralds.obs.blackbox/1";

struct BlackBoxSnapshot {
  std::string label;   // e.g. "node-17" or "torture-seed-9"
  std::string reason;  // why the box was pulled (anomaly / failure text)
  std::string repro;   // one-line command reproducing the run
  Instant now;         // virtual clock at capture
  std::vector<TraceEvent> window;  // retained trace, oldest first
  uint64_t dropped = 0;
  uint64_t total_recorded = 0;
  std::vector<std::string> thread_names;  // "name/id" per thread id
  KernelStats stats;
  ChainAnalysis chains;
  std::vector<StatsDelta> deltas;  // stats-sampler ring, oldest first
  uint64_t deltas_dropped = 0;
  NodeTelemetry telemetry;
  // Deadline-miss postmortem over the same window: every miss's blame
  // ledger, so the bundle answers "why was it late" without a replay.
  PostmortemAnalysis postmortem;
};

// Snapshots a live kernel. Pure read — never perturbs virtual time — so
// capturing at the end of a deterministic run cannot change its digest.
BlackBoxSnapshot CaptureBlackBox(const Kernel& kernel, std::string label,
                                 std::string reason, std::string repro);

// Writes an event window in TraceSink::ExportCsv format (header, rows,
// "# dropped=N" trailer when dropped > 0).
bool WriteTraceCsvFile(const std::string& path, const TraceEvent* events, size_t count,
                       uint64_t dropped);

// The blackbox.json document.
std::string BuildBlackBoxReport(const BlackBoxSnapshot& box);

// Creates `dir` (and parents) and writes repro.txt, trace.csv, and
// blackbox.json into it. Returns false if any file cannot be written.
bool WriteBlackBoxBundle(const BlackBoxSnapshot& box, const std::string& dir);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_BLACKBOX_H_
