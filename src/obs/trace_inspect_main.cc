// trace_inspect: offline replay of an exported kernel trace.
//
//   trace_inspect <trace.csv> [--run <run.json>] [--perfetto <out.json>] [--chains]
//                 [--postmortem] [--postmortem-json <out.json>]
//
// Reads a TraceSink CSV export, replays it through the trace analyzer, and
// prints per-task response/blocking histograms plus preemption / PI / CSE
// counters. With --run it cross-checks the analyzer's counters against the
// kernel counters recorded in an emeralds.obs.run/1 report produced by the
// same run, and renders the report's cycle-attribution section as a
// Table 1 / Figure 3-style per-bucket breakdown (re-verifying the
// conservation invariant from the JSON integers); with --perfetto it
// additionally re-emits the window as Chrome/Perfetto trace JSON; with
// --chains it replays the causal-token stream and enforces token
// conservation (every consume matched to a visible emit, origins minted
// once) with a per-endpoint traffic summary; with --postmortem it replays
// every missed deadline through the lateness-attribution engine and prints
// each miss's telescoping blame ledger (a conservation failure on a
// complete window is an error); --postmortem-json writes the same analysis
// as a standalone emeralds.obs.postmortem/1 report (the CI artifact).
//
// Exit status: 0 clean; 1 usage / I/O / parse failure; 2 invariant
// violations or a postmortem conservation failure; 3 reconciliation
// mismatch or cycle-conservation failure against the run report.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include <map>

#include "src/base/json.h"
#include "src/obs/chains.h"
#include "src/obs/obs_report.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/postmortem.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/trace_csv.h"

namespace emeralds {
namespace obs {
namespace {

void PrintHistogram(const char* title, const Log2Histogram& h) {
  std::printf("    %s: n=%" PRIu64, title, h.count());
  if (h.count() == 0) {
    std::printf("\n");
    return;
  }
  std::printf("  min=%.1fus  mean=%.1fus  p99<=%.1fus  max=%.1fus\n", h.min().micros_f(),
              h.mean().micros_f(), h.ApproxPercentile(0.99).micros_f(), h.max().micros_f());
  uint64_t peak = 0;
  for (int b = 0; b <= h.HighestBucket(); ++b) {
    if (h.bucket(b) > peak) {
      peak = h.bucket(b);
    }
  }
  for (int b = 0; b <= h.HighestBucket(); ++b) {
    if (h.bucket(b) == 0) {
      continue;
    }
    int bar = static_cast<int>(h.bucket(b) * 40 / peak);
    std::printf("      [%8lldus, %8lldus) %-40.*s %" PRIu64 "\n",
                static_cast<long long>(Log2Histogram::BucketFloorUs(b)),
                static_cast<long long>(Log2Histogram::BucketFloorUs(b + 1)), bar,
                "########################################", h.bucket(b));
  }
}

void PrintAnalysis(const TraceAnalysis& a) {
  std::printf("trace window: %" PRIu64 " switches, %" PRIu64 "/%" PRIu64
              " jobs released/completed, %" PRIu64 " deadline misses\n",
              a.context_switches, a.jobs_released, a.jobs_completed, a.deadline_misses);
  std::printf("semaphores: %" PRIu64 " acquires, %" PRIu64 " blocks, %" PRIu64
              " CSE early-PI, max PI chain depth %d\n",
              a.sem_acquires, a.sem_blocks, a.cse_early_pi, a.max_pi_chain_depth);
  if (a.dropped_events > 0) {
    std::printf("note: %" PRIu64 " events dropped before this window; counters cover the "
                "retained suffix only\n",
                a.dropped_events);
  }
  for (const TaskMetrics& t : a.tasks) {
    if (!t.seen) {
      continue;
    }
    std::printf("  thread %d: %" PRIu64 " releases, %" PRIu64 " completes, %" PRIu64
                " misses, %" PRIu64 " preemptions, run %.1fus\n",
                t.thread_id, t.releases, t.completes, t.deadline_misses, t.preemptions,
                t.run_time.micros_f());
    if (t.sem_acquires + t.sem_blocks + t.pi_received + t.pi_donated + t.cse_early_pi > 0) {
      std::printf("    sem: %" PRIu64 " acquires, %" PRIu64 " blocks | PI: %" PRIu64
                  " received, %" PRIu64 " donated, depth %d | CSE early-PI %" PRIu64 "\n",
                  t.sem_acquires, t.sem_blocks, t.pi_received, t.pi_donated, t.max_pi_depth,
                  t.cse_early_pi);
    }
    PrintHistogram("response", t.response);
    PrintHistogram("blocking", t.blocking);
  }
  if (a.unresolved_blocks_at_end > 0) {
    std::printf("  (%" PRIu64 " thread(s) still blocked at end of window)\n",
                a.unresolved_blocks_at_end);
  }
}

int64_t RunReportInt(const JsonValue& root, const char* section, const char* key,
                     bool* found) {
  const JsonValue* s = root.Find(section);
  const JsonValue* v = s != nullptr ? s->Find(key) : nullptr;
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    *found = false;
    return 0;
  }
  *found = true;
  return static_cast<int64_t>(v->number);
}

// Compares one analyzer counter against the kernel counter in the report.
bool CheckCounter(const JsonValue& root, const char* key, uint64_t analyzer_value) {
  bool found = false;
  int64_t kernel_value = RunReportInt(root, "kernel_stats", key, &found);
  if (!found) {
    std::printf("reconcile %-18s: MISSING in run report\n", key);
    return false;
  }
  bool match = kernel_value == static_cast<int64_t>(analyzer_value);
  std::printf("reconcile %-18s: kernel=%" PRId64 " analyzer=%" PRIu64 " %s\n", key,
              kernel_value, analyzer_value, match ? "ok" : "MISMATCH");
  return match;
}

int64_t ObjInt(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->type == JsonValue::Type::kNumber ? static_cast<int64_t>(v->number)
                                                             : 0;
}

// Renders the run report's cycle-attribution section as the Table 1 /
// Figure 3-style breakdown and re-checks the conservation invariant from
// the JSON integers (bucket sum == elapsed, exact to the tick). Returns
// false when the section is missing, the recomputed sum disagrees with
// elapsed, or the report's own verdict is false.
bool PrintCyclesBreakdown(const JsonValue& root) {
  const JsonValue* c = root.Find("cycles");
  if (c == nullptr || c->type != JsonValue::Type::kObject) {
    std::printf("cycles: section MISSING from run report\n");
    return false;
  }
  const JsonValue* buckets = c->Find("buckets_ns");
  if (buckets == nullptr || buckets->type != JsonValue::Type::kObject) {
    std::printf("cycles: buckets_ns MISSING from run report\n");
    return false;
  }
  int64_t elapsed = ObjInt(*c, "elapsed_ns");
  std::printf("cycle attribution (%.1f us elapsed since epoch %.1f us):\n", elapsed / 1e3,
              ObjInt(*c, "epoch_ns") / 1e3);
  int64_t sum = 0;
  for (const auto& kv : buckets->object) {
    int64_t ns =
        kv.second.type == JsonValue::Type::kNumber ? static_cast<int64_t>(kv.second.number) : 0;
    sum += ns;
    if (ns == 0) {
      continue;
    }
    double pct = elapsed > 0 ? 100.0 * static_cast<double>(ns) / static_cast<double>(elapsed)
                             : 0.0;
    std::printf("  %-16s %12.1f us  %5.1f%%\n", kv.first.c_str(), ns / 1e3, pct);
  }
  const JsonValue* bands = c->Find("sched_bands");
  if (bands != nullptr && bands->type == JsonValue::Type::kArray && !bands->array.empty()) {
    std::printf("  scheduler cost by band:\n");
    for (const JsonValue& b : bands->array) {
      const JsonValue* label = b.Find("label");
      std::printf("    %-4s (band %lld): block %.1fus  unblock %.1fus  select %.1fus\n",
                  label != nullptr ? label->string.c_str() : "?",
                  static_cast<long long>(ObjInt(b, "band")), ObjInt(b, "block_ns") / 1e3,
                  ObjInt(b, "unblock_ns") / 1e3, ObjInt(b, "select_ns") / 1e3);
    }
  }
  const JsonValue* verdict = c->Find("conserved");
  bool reported = verdict != nullptr && verdict->type == JsonValue::Type::kBool &&
                  verdict->boolean;
  bool recomputed = sum == elapsed;
  std::printf("  conservation: ledger %.1f us vs elapsed %.1f us -> %s (report: %s)\n",
              sum / 1e3, elapsed / 1e3, recomputed ? "exact" : "VIOLATED",
              reported ? "conserved" : "NOT conserved");
  int64_t unattributed = ObjInt(*c, "clock_unattributed_ns");
  if (unattributed != 0) {
    std::printf("  WARNING: %.1f us advanced outside the kernel's charging paths\n",
                unattributed / 1e3);
  }
  return recomputed && reported;
}

// The --chains view: a spec-free replay of the causal-token stream. Without
// a ChainSpec registry (a raw CSV carries none) it still checks token
// conservation and summarizes traffic per endpoint, so a corrupted or
// kernel-buggy stream fails here exactly like it does under the in-process
// analyzer. Returns false on any chain violation.
bool PrintChains(const TraceCsvImport& import) {
  ChainAnalysis chains =
      AnalyzeChains(import.events.data(), import.events.size(), import.dropped, {});
  std::printf("chains: %" PRIu64 " emits, %" PRIu64 " consumes, %" PRIu64
              " origins minted%s\n",
              chains.chain_emits, chains.chain_consumes, chains.origins_minted,
              chains.complete_window ? "" : " (truncated window)");
  if (chains.orphan_hops > 0) {
    std::printf("  %" PRIu64 " orphan hop(s): emits fell outside the retained window\n",
                chains.orphan_hops);
  }
  if (chains.unconsumed_emits > 0) {
    std::printf("  %" PRIu64 " unconsumed emit(s) (banked/overwritten tokens, unread slots)\n",
                chains.unconsumed_emits);
  }
  std::map<int32_t, std::pair<uint64_t, uint64_t>> per_endpoint;  // emits, consumes
  for (const TraceEvent& e : import.events) {
    if (e.type == TraceEventType::kChainEmit) {
      ++per_endpoint[e.arg1].first;
    } else if (e.type == TraceEventType::kChainConsume) {
      ++per_endpoint[e.arg1].second;
    }
  }
  for (const auto& kv : per_endpoint) {
    std::printf("  %s:%d  %" PRIu64 " emits, %" PRIu64 " consumes\n",
                ChainEndpointKindToString(ChainEndpointKindOf(kv.first)),
                ChainEndpointChannel(kv.first), kv.second.first, kv.second.second);
  }
  if (!chains.ok()) {
    std::printf("CHAIN VIOLATIONS: %zu\n", chains.violations.size());
    for (const ChainViolation& v : chains.violations) {
      std::printf("  [%s] event %zu: %s\n", ChainViolationKindToString(v.kind), v.event_index,
                  v.detail.c_str());
    }
    return false;
  }
  std::printf("chain conservation: ok\n");
  return true;
}

constexpr const char* kUsage =
    "usage: trace_inspect <trace.csv> [--run run.json] [--perfetto out.json] [--chains]\n"
    "                     [--postmortem] [--postmortem-json out.json]\n";

int Main(int argc, char** argv) {
  const char* csv_path = nullptr;
  const char* run_path = nullptr;
  const char* perfetto_path = nullptr;
  const char* postmortem_json_path = nullptr;
  bool show_chains = false;
  bool show_postmortem = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      run_path = argv[++i];
    } else if (std::strcmp(argv[i], "--perfetto") == 0 && i + 1 < argc) {
      perfetto_path = argv[++i];
    } else if (std::strcmp(argv[i], "--postmortem-json") == 0 && i + 1 < argc) {
      postmortem_json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chains") == 0) {
      show_chains = true;
    } else if (std::strcmp(argv[i], "--postmortem") == 0) {
      show_postmortem = true;
    } else if (csv_path == nullptr && argv[i][0] != '-') {
      csv_path = argv[i];
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 1;
    }
  }
  if (csv_path == nullptr) {
    std::fprintf(stderr, "%s", kUsage);
    return 1;
  }

  std::FILE* f = std::fopen(csv_path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_inspect: cannot open %s\n", csv_path);
    return 1;
  }
  TraceCsvImport import;
  std::string error;
  bool ok = ImportTraceCsv(f, &import, &error);
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "trace_inspect: %s: %s\n", csv_path, error.c_str());
    return 1;
  }

  TraceAnalysis analysis =
      AnalyzeTrace(import.events.data(), import.events.size(), import.dropped);
  std::printf("%s: %zu events (%" PRIu64 " dropped before window)\n", csv_path,
              import.events.size(), import.dropped);
  PrintAnalysis(analysis);

  int status = 0;
  if (!analysis.ok()) {
    std::printf("INVARIANT VIOLATIONS: %zu\n", analysis.violations.size());
    for (const TraceViolation& v : analysis.violations) {
      std::printf("  [%s] event %zu: %s\n", InvariantKindToString(v.kind), v.event_index,
                  v.detail.c_str());
    }
    status = 2;
  } else {
    std::printf("invariants: ok\n");
  }

  if (show_chains && !PrintChains(import) && status == 0) {
    status = 2;
  }

  // Computed for --postmortem and for --perfetto (late jobs become annotation
  // slices on the victims' tracks either way).
  PostmortemAnalysis postmortem;
  if (show_postmortem || perfetto_path != nullptr || postmortem_json_path != nullptr) {
    postmortem = AnalyzePostmortem(import.events.data(), import.events.size(), import.dropped);
  }
  if (show_postmortem) {
    ChainAnalysis chains =
        AnalyzeChains(import.events.data(), import.events.size(), import.dropped, {});
    PrintPostmortem(stdout, postmortem, &chains);
    if (!postmortem.ok() && status == 0) {
      status = 2;  // a ledger failed to telescope: the engine's hard invariant
    }
  }
  if (postmortem_json_path != nullptr) {
    std::FILE* jf = std::fopen(postmortem_json_path, "w");
    if (jf == nullptr) {
      std::fprintf(stderr, "trace_inspect: cannot open %s\n", postmortem_json_path);
      return 1;
    }
    ChainAnalysis chains =
        AnalyzeChains(import.events.data(), import.events.size(), import.dropped, {});
    std::string doc = BuildPostmortemReport(csv_path, postmortem, &chains);
    std::fwrite(doc.data(), 1, doc.size(), jf);
    std::fclose(jf);
    std::printf("postmortem: wrote %" PRIu64 " analyzed miss(es) to %s\n",
                postmortem.misses_analyzed, postmortem_json_path);
    if (!postmortem.ok() && status == 0) {
      status = 2;
    }
  }

  if (run_path != nullptr) {
    std::FILE* rf = std::fopen(run_path, "r");
    if (rf == nullptr) {
      std::fprintf(stderr, "trace_inspect: cannot open %s\n", run_path);
      return 1;
    }
    std::string text;
    char buf[4096];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), rf)) > 0) {
      text.append(buf, n);
    }
    std::fclose(rf);
    JsonValue root;
    if (!JsonParse(text, &root, &error)) {
      std::fprintf(stderr, "trace_inspect: %s: %s\n", run_path, error.c_str());
      return 1;
    }
    const JsonValue* schema = root.Find("schema");
    if (schema == nullptr || schema->string != kObsRunSchema) {
      std::fprintf(stderr, "trace_inspect: %s is not an %s report\n", run_path, kObsRunSchema);
      return 1;
    }
    if (import.dropped > 0) {
      std::printf("reconcile: skipped (truncated window; kernel counters cover the full run)\n");
    } else {
      bool all = true;
      all &= CheckCounter(root, "context_switches", analysis.context_switches);
      all &= CheckCounter(root, "deadline_misses", analysis.deadline_misses);
      all &= CheckCounter(root, "jobs_completed", analysis.jobs_completed);
      all &= CheckCounter(root, "cse_early_pi", analysis.cse_early_pi);
      if (!all && status == 0) {
        status = 3;
      }
    }
    // The cycle breakdown and its conservation invariant hold regardless of
    // trace truncation: they come from the kernel's own counters.
    if (!PrintCyclesBreakdown(root) && status == 0) {
      status = 3;
    }
  }

  if (perfetto_path != nullptr) {
    std::FILE* pf = std::fopen(perfetto_path, "w");
    if (pf == nullptr) {
      std::fprintf(stderr, "trace_inspect: cannot open %s\n", perfetto_path);
      return 1;
    }
    PerfettoExportOptions options;
    options.dropped_events = import.dropped;
    options.annotations = PostmortemAnnotations(postmortem);
    size_t entries =
        ExportPerfettoJson(import.events.data(), import.events.size(), options, pf);
    std::fclose(pf);
    std::printf("perfetto: wrote %zu entries to %s\n", entries, perfetto_path);
  }
  return status;
}

}  // namespace
}  // namespace obs
}  // namespace emeralds

int main(int argc, char** argv) { return emeralds::obs::Main(argc, argv); }
