#include "src/obs/blackbox.h"

#include <filesystem>

#include "src/core/kernel.h"
#include "src/obs/json_writer.h"
#include "src/obs/perfetto_export.h"
#include "src/obs/trace_analyzer.h"

namespace emeralds {
namespace obs {

BlackBoxSnapshot CaptureBlackBox(const Kernel& kernel, std::string label,
                                 std::string reason, std::string repro) {
  BlackBoxSnapshot box;
  box.label = std::move(label);
  box.reason = std::move(reason);
  box.repro = std::move(repro);
  box.now = kernel.now();

  const TraceSink& sink = kernel.trace();
  box.window.reserve(sink.size());
  for (size_t i = 0; i < sink.size(); ++i) {
    box.window.push_back(sink.at(i));
  }
  box.dropped = sink.dropped();
  box.total_recorded = sink.total_recorded();
  box.thread_names = KernelThreadNames(kernel);
  box.stats = kernel.stats();

  TraceAnalysis analysis = AnalyzeTrace(sink);
  box.chains = AnalyzeChains(sink, kernel.resolved_chains());
  box.telemetry = CollectNodeTelemetry(kernel, analysis, box.chains);
  box.postmortem = AnalyzePostmortem(sink);

  if (const StatsSampler* sampler = kernel.stats_sampler()) {
    box.deltas.reserve(sampler->size());
    for (size_t i = 0; i < sampler->size(); ++i) {
      box.deltas.push_back(sampler->at(i));
    }
    box.deltas_dropped = sampler->dropped();
  }
  return box;
}

bool WriteTraceCsvFile(const std::string& path, const TraceEvent* events, size_t count,
                       uint64_t dropped) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    return false;
  }
  std::fprintf(out, "time_us,event,arg0,arg1,arg2\n");
  for (size_t i = 0; i < count; ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(out, "%lld,%s,%d,%d,%d\n", static_cast<long long>(e.time.micros()),
                 TraceEventTypeToString(e.type), e.arg0, e.arg1, e.arg2);
  }
  if (dropped > 0) {
    std::fprintf(out, "# dropped=%llu\n", static_cast<unsigned long long>(dropped));
  }
  std::fclose(out);
  return true;
}

std::string BuildBlackBoxReport(const BlackBoxSnapshot& box) {
  Json j;
  j.OpenObject();
  j.String("schema", kObsBlackBoxSchema);
  j.String("label", box.label);
  j.String("reason", box.reason);
  j.String("repro", box.repro);
  j.Number("virtual_time_us", static_cast<double>(box.now.nanos()) / 1e3);

  j.Key("trace");
  j.OpenObject();
  j.Int("retained", static_cast<int64_t>(box.window.size()));
  j.Int("dropped", static_cast<int64_t>(box.dropped));
  j.Int("total_recorded", static_cast<int64_t>(box.total_recorded));
  j.CloseObject();

  j.Key("threads");
  j.OpenArray();
  for (const std::string& name : box.thread_names) {
    j.StringElem(name);
  }
  j.CloseArray();

  j.Key("stats");
  j.OpenObject();
  j.Int("context_switches", static_cast<int64_t>(box.stats.context_switches));
  j.Int("syscalls", static_cast<int64_t>(box.stats.syscalls));
  j.Int("jobs_released", static_cast<int64_t>(box.stats.jobs_released));
  j.Int("jobs_completed", static_cast<int64_t>(box.stats.jobs_completed));
  j.Int("deadline_misses", static_cast<int64_t>(box.stats.deadline_misses));
  j.Int("sem_acquires", static_cast<int64_t>(box.stats.sem_acquires));
  j.Int("mailbox_sends", static_cast<int64_t>(box.stats.mailbox_sends));
  j.Int("mailbox_receives", static_cast<int64_t>(box.stats.mailbox_receives));
  j.Int("interrupts", static_cast<int64_t>(box.stats.interrupts));
  j.Int("timer_dispatches", static_cast<int64_t>(box.stats.timer_dispatches));
  j.Int("headroom_low_events", static_cast<int64_t>(box.stats.headroom_low_events));
  j.CloseObject();

  j.Key("telemetry");
  AppendNodeTelemetrySection(j, box.telemetry);

  j.Key("chains");
  AppendChainsSection(j, box.chains);

  j.Key("postmortem");
  AppendPostmortemSection(j, box.postmortem, &box.chains);

  j.Key("snapshots");
  j.OpenObject();
  j.Int("count", static_cast<int64_t>(box.deltas.size()));
  j.Int("dropped", static_cast<int64_t>(box.deltas_dropped));
  j.CloseObject();

  j.CloseObject();
  return j.str() + "\n";
}

bool WriteBlackBoxBundle(const BlackBoxSnapshot& box, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  {
    std::FILE* out = std::fopen((dir + "/repro.txt").c_str(), "w");
    if (out == nullptr) {
      return false;
    }
    std::fprintf(out, "%s\nlabel: %s\nreason: %s\n", box.repro.c_str(), box.label.c_str(),
                 box.reason.c_str());
    std::fclose(out);
  }
  if (!WriteTraceCsvFile(dir + "/trace.csv", box.window.data(), box.window.size(),
                         box.dropped)) {
    return false;
  }
  {
    std::FILE* out = std::fopen((dir + "/blackbox.json").c_str(), "w");
    if (out == nullptr) {
      return false;
    }
    std::string report = BuildBlackBoxReport(box);
    std::fwrite(report.data(), 1, report.size(), out);
    std::fclose(out);
  }
  return true;
}

}  // namespace obs
}  // namespace emeralds
