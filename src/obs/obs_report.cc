#include "src/obs/obs_report.h"

#include "src/base/json.h"
#include "src/core/kernel.h"
#include "src/obs/chains.h"
#include "src/obs/cycles_report.h"
#include "src/obs/json_writer.h"
#include "src/obs/postmortem.h"

namespace emeralds {
namespace obs {
namespace {

void AppendHistogram(Json& j, const char* name, const Log2Histogram& h) {
  j.Key(name);
  j.OpenObject();
  j.Int("count", static_cast<int64_t>(h.count()));
  j.Number("min_us", h.count() > 0 ? h.min().micros_f() : 0.0);
  j.Number("max_us", h.count() > 0 ? h.max().micros_f() : 0.0);
  j.Number("mean_us", h.mean().micros_f());
  j.Number("p50_us", h.ApproxPercentile(0.50).micros_f());
  j.Number("p99_us", h.ApproxPercentile(0.99).micros_f());
  // Sparse bucket list: [floor_us, count] pairs up to the highest used one.
  j.Key("buckets");
  j.OpenArray();
  for (int b = 0; b <= h.HighestBucket(); ++b) {
    if (h.bucket(b) == 0) {
      continue;
    }
    j.OpenArray();
    j.IntElem(Log2Histogram::BucketFloorUs(b));
    j.IntElem(static_cast<int64_t>(h.bucket(b)));
    j.CloseArray();
  }
  j.CloseArray();
  j.CloseObject();
}

void AppendChargedUs(Json& j, const Duration (&charged)[kNumChargeCategories]) {
  j.Key("charged_us");
  j.OpenObject();
  for (int c = 0; c < kNumChargeCategories; ++c) {
    j.Number(ChargeCategoryToString(static_cast<ChargeCategory>(c)), charged[c].micros_f());
  }
  j.CloseObject();
}

void AppendKernelStats(Json& j, const KernelStats& s) {
  j.Key("kernel_stats");
  j.OpenObject();
  j.Int("context_switches", static_cast<int64_t>(s.context_switches));
  j.Int("jobs_released", static_cast<int64_t>(s.jobs_released));
  j.Int("jobs_completed", static_cast<int64_t>(s.jobs_completed));
  j.Int("deadline_misses", static_cast<int64_t>(s.deadline_misses));
  j.Int("sem_acquires", static_cast<int64_t>(s.sem_acquires));
  j.Int("sem_contended", static_cast<int64_t>(s.sem_contended));
  j.Int("sem_handoffs", static_cast<int64_t>(s.sem_handoffs));
  j.Int("pi_inherits", static_cast<int64_t>(s.pi_inherits));
  j.Int("cse_early_pi", static_cast<int64_t>(s.cse_early_pi));
  j.Int("cse_grants", static_cast<int64_t>(s.cse_grants));
  j.Int("cse_switches_saved", static_cast<int64_t>(s.cse_switches_saved));
  j.Int("interrupts", static_cast<int64_t>(s.interrupts));
  j.Int("timer_dispatches", static_cast<int64_t>(s.timer_dispatches));
  j.Int("chain_emits", static_cast<int64_t>(s.chain_emits));
  j.Int("chain_consumes", static_cast<int64_t>(s.chain_consumes));
  j.Int("chain_origins", static_cast<int64_t>(s.chain_origins));
  j.Int("chain_hop_saturations", static_cast<int64_t>(s.chain_hop_saturations));
  j.Int("ipis", static_cast<int64_t>(s.ipis));
  j.Number("compute_time_us", s.compute_time.micros_f());
  j.Number("idle_time_us", s.idle_time.micros_f());
  j.Number("sem_path_time_us", s.sem_path_time.micros_f());
  j.Number("total_charged_us", s.total_charged().micros_f());
  AppendChargedUs(j, s.charged);
  j.CloseObject();
}

void AppendTaskRows(Json& j, const std::vector<TaskRunRow>& rows) {
  j.Key("tasks");
  j.OpenArray();
  for (const TaskRunRow& r : rows) {
    j.OpenObject();
    j.Int("id", r.id.value);
    j.String("name", r.name);
    j.Number("period_us", r.period.micros_f());
    j.Int("jobs_completed", static_cast<int64_t>(r.jobs_completed));
    j.Int("deadline_misses", static_cast<int64_t>(r.deadline_misses));
    j.Number("max_response_us", r.max_response.micros_f());
    j.Number("avg_response_us", r.avg_response.micros_f());
    j.Number("cpu_time_us", r.cpu_time.micros_f());
    j.Number("user_cycles_us", r.user_cycles.micros_f());
    j.Number("overhead_cycles_us", r.overhead_cycles.micros_f());
    j.Number("cost_ewma_us", r.job_cost_ewma.micros_f());
    j.Bool("headroom_seen", r.headroom_seen);
    j.Number("headroom_min_us", r.headroom_seen ? r.headroom_min.micros_f() : 0.0);
    j.Int("headroom_low_events", static_cast<int64_t>(r.headroom_low_events));
    j.CloseObject();
  }
  j.CloseArray();
}

void AppendAnalysis(Json& j, const TraceAnalysis& a) {
  j.Key("analysis");
  j.OpenObject();
  j.Int("context_switches", static_cast<int64_t>(a.context_switches));
  j.Int("deadline_misses", static_cast<int64_t>(a.deadline_misses));
  j.Int("jobs_released", static_cast<int64_t>(a.jobs_released));
  j.Int("jobs_completed", static_cast<int64_t>(a.jobs_completed));
  j.Int("sem_acquires", static_cast<int64_t>(a.sem_acquires));
  j.Int("sem_blocks", static_cast<int64_t>(a.sem_blocks));
  j.Int("cse_early_pi", static_cast<int64_t>(a.cse_early_pi));
  j.Int("chain_emits", static_cast<int64_t>(a.chain_emits));
  j.Int("chain_consumes", static_cast<int64_t>(a.chain_consumes));
  j.Int("max_pi_chain_depth", a.max_pi_chain_depth);
  j.Int("unresolved_blocks_at_end", static_cast<int64_t>(a.unresolved_blocks_at_end));
  j.Key("violations");
  j.OpenArray();
  for (const TraceViolation& v : a.violations) {
    j.OpenObject();
    j.String("kind", InvariantKindToString(v.kind));
    j.Int("event_index", static_cast<int64_t>(v.event_index));
    j.String("detail", v.detail);
    j.CloseObject();
  }
  j.CloseArray();
  j.Key("tasks");
  j.OpenArray();
  for (const TaskMetrics& t : a.tasks) {
    if (!t.seen) {
      continue;
    }
    j.OpenObject();
    j.Int("thread_id", t.thread_id);
    j.Int("releases", static_cast<int64_t>(t.releases));
    j.Int("completes", static_cast<int64_t>(t.completes));
    j.Int("deadline_misses", static_cast<int64_t>(t.deadline_misses));
    j.Int("switches_in", static_cast<int64_t>(t.switches_in));
    j.Int("preemptions", static_cast<int64_t>(t.preemptions));
    j.Int("sem_acquires", static_cast<int64_t>(t.sem_acquires));
    j.Int("sem_blocks", static_cast<int64_t>(t.sem_blocks));
    j.Int("cse_early_pi", static_cast<int64_t>(t.cse_early_pi));
    j.Int("pi_donated", static_cast<int64_t>(t.pi_donated));
    j.Int("pi_received", static_cast<int64_t>(t.pi_received));
    j.Int("max_pi_depth", t.max_pi_depth);
    j.Number("run_time_us", t.run_time.micros_f());
    AppendHistogram(j, "response", t.response);
    AppendHistogram(j, "blocking", t.blocking);
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

void AppendReconciliation(Json& j, const TraceAnalysis& a, const KernelStats& s) {
  Reconciliation r = ComputeReconciliation(a, s);
  j.Key("reconciliation");
  j.OpenObject();
  j.Bool("checked", r.checked);
  j.Bool("context_switches_match", r.context_switches_match);
  j.Bool("deadline_misses_match", r.deadline_misses_match);
  j.Bool("jobs_completed_match", r.jobs_completed_match);
  j.Bool("cse_early_pi_match", r.cse_early_pi_match);
  j.Bool("msg_sends_match", r.msg_sends_match);
  j.Bool("msg_recvs_match", r.msg_recvs_match);
  j.Bool("pi_chain_limit_match", r.pi_chain_limit_match);
  j.Bool("headroom_low_match", r.headroom_low_match);
  j.Bool("chain_events_match", r.chain_events_match);
  j.Int("kernel_context_switches", static_cast<int64_t>(s.context_switches));
  j.Int("analyzer_context_switches", static_cast<int64_t>(a.context_switches));
  j.Int("kernel_deadline_misses", static_cast<int64_t>(s.deadline_misses));
  j.Int("analyzer_deadline_misses", static_cast<int64_t>(a.deadline_misses));
  j.CloseObject();
}

void AppendSnapshots(Json& j, const StatsSampler* sampler, const KernelStats& stats) {
  j.Key("snapshots");
  if (sampler == nullptr) {
    j.OpenObject();
    j.Bool("enabled", false);
    j.Key("samples");
    j.OpenArray();
    j.CloseArray();
    j.CloseObject();
    return;
  }
  j.OpenObject();
  j.Bool("enabled", true);
  j.Int("dropped", static_cast<int64_t>(sampler->dropped()));
  // Ring evictions the kernel itself counted (satellite fix: overwrites of
  // unread snapshots used to be silent). Tracks sampler->dropped() unless a
  // reader drained between overwrites.
  j.Int("snapshot_drops", static_cast<int64_t>(stats.stats_snapshot_drops));
  j.Key("samples");
  j.OpenArray();
  for (size_t i = 0; i < sampler->size(); ++i) {
    const StatsDelta& d = sampler->at(i);
    j.OpenObject();
    j.Number("time_us", static_cast<double>(d.time.nanos()) / 1e3);
    j.Int("context_switches", static_cast<int64_t>(d.context_switches));
    j.Int("jobs_released", static_cast<int64_t>(d.jobs_released));
    j.Int("jobs_completed", static_cast<int64_t>(d.jobs_completed));
    j.Int("deadline_misses", static_cast<int64_t>(d.deadline_misses));
    j.Int("sem_acquires", static_cast<int64_t>(d.sem_acquires));
    j.Int("sem_contended", static_cast<int64_t>(d.sem_contended));
    j.Int("pi_inherits", static_cast<int64_t>(d.pi_inherits));
    j.Int("cse_switches_saved", static_cast<int64_t>(d.cse_switches_saved));
    j.Int("interrupts", static_cast<int64_t>(d.interrupts));
    j.Int("timer_dispatches", static_cast<int64_t>(d.timer_dispatches));
    j.Int("headroom_low_events", static_cast<int64_t>(d.headroom_low_events));
    j.Number("compute_time_us", d.compute_time.micros_f());
    j.Number("idle_time_us", d.idle_time.micros_f());
    j.Number("sem_path_time_us", d.sem_path_time.micros_f());
    AppendChargedUs(j, d.charged);
    j.Key("cycles_ns");
    j.OpenObject();
    for (int b = 0; b < kNumCycleBuckets; ++b) {
      j.Int(CycleBucketToString(static_cast<CycleBucket>(b)), d.cycles.buckets[b].nanos());
    }
    j.CloseObject();
    j.CloseObject();
  }
  j.CloseArray();
  j.CloseObject();
}

}  // namespace

Reconciliation ComputeReconciliation(const TraceAnalysis& a, const KernelStats& s) {
  Reconciliation r;
  r.checked = a.dropped_events == 0;
  if (!r.checked) {
    return r;  // suffix window: equalities would legitimately fail
  }
  r.context_switches_match = a.context_switches == s.context_switches;
  r.deadline_misses_match = a.deadline_misses == s.deadline_misses;
  r.jobs_completed_match = a.jobs_completed == s.jobs_completed;
  r.cse_early_pi_match = a.cse_early_pi == s.cse_early_pi;
  r.msg_sends_match = a.msg_sends == s.mailbox_sends + s.smsg_writes;
  r.msg_recvs_match = a.msg_recvs == s.mailbox_receives + s.smsg_reads;
  r.pi_chain_limit_match = a.pi_chain_limit == s.pi_chain_limit_hits;
  r.headroom_low_match = a.headroom_low == s.headroom_low_events;
  r.chain_events_match = a.chain_emits == s.chain_emits && a.chain_consumes == s.chain_consumes;
  return r;
}

std::string BuildObsRunReport(const ObsRunInfo& info, const Kernel& kernel,
                              const std::vector<ThreadId>& task_ids) {
  const TraceSink& trace = kernel.trace();
  TraceAnalysis analysis = AnalyzeTrace(trace);

  Json j;
  j.OpenObject();
  j.String("schema", kObsRunSchema);
  j.String("label", info.label);
  j.String("scheduler", info.scheduler);
  j.Number("run_duration_us", info.run_duration.micros_f());

  j.Key("trace");
  j.OpenObject();
  j.Int("total_recorded", static_cast<int64_t>(trace.total_recorded()));
  j.Int("retained", static_cast<int64_t>(trace.size()));
  j.Int("dropped", static_cast<int64_t>(trace.dropped()));
  j.CloseObject();

  AppendKernelStats(j, kernel.stats());
  AppendCyclesSection(j, kernel);
  AppendTaskRows(j, CollectPerTaskStats(kernel, task_ids));
  AppendAnalysis(j, analysis);
  AppendReconciliation(j, analysis, kernel.stats());
  ChainAnalysis chains = AnalyzeChains(trace, kernel.resolved_chains());
  j.Key("chains");
  AppendChainsSection(j, chains);
  j.Key("postmortem");
  AppendPostmortemSection(j, AnalyzePostmortem(trace), &chains);
  AppendSnapshots(j, kernel.stats_sampler(), kernel.stats());
  j.CloseObject();
  return j.str() + "\n";
}

void WriteObsRunReport(std::FILE* out, const ObsRunInfo& info, const Kernel& kernel,
                       const std::vector<ThreadId>& task_ids) {
  std::string text = BuildObsRunReport(info, kernel, task_ids);
  std::fwrite(text.data(), 1, text.size(), out);
}

bool WriteObsRunReportFile(const std::string& path, const ObsRunInfo& info,
                           const Kernel& kernel, const std::vector<ThreadId>& task_ids) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  WriteObsRunReport(f, info, kernel, task_ids);
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace emeralds
