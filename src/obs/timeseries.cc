#include "src/obs/timeseries.h"

#include <algorithm>
#include <map>

#include "src/core/kernel.h"
#include "src/obs/json_writer.h"
#include "src/obs/telemetry.h"

namespace emeralds {
namespace obs {

void TelemetryWindow::MergeFrom(const TelemetryWindow& other) {
  gap = gap || other.gap;
  samples += other.samples;
  jobs_released += other.jobs_released;
  jobs_completed += other.jobs_completed;
  deadline_misses += other.deadline_misses;
  context_switches += other.context_switches;
  interrupts += other.interrupts;
  timer_dispatches += other.timer_dispatches;
  sem_acquires += other.sem_acquires;
  ipis += other.ipis;
  headroom_low_events += other.headroom_low_events;
  chain_e2e_completed += other.chain_e2e_completed;
  chain_e2e_overruns += other.chain_e2e_overruns;
  chain_origins += other.chain_origins;
  trace_dropped += other.trace_dropped;
  stats_snapshot_drops += other.stats_snapshot_drops;
  compute_time += other.compute_time;
  idle_time += other.idle_time;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    cycles.buckets[b] += other.cycles.buckets[b];
  }
  response.Merge(other.response);
  chain_e2e.Merge(other.chain_e2e);
  headroom.Merge(other.headroom);
}

TimeseriesCollector::TimeseriesCollector(const TimeseriesOptions& options)
    : options_(options), windows_(options.capacity > 0 ? options.capacity : 1) {
  if (!options_.window.is_positive()) {
    options_.window = Milliseconds(10);
  }
}

int64_t TimeseriesCollector::IndexOf(Instant t) const {
  int64_t ns = t.nanos();
  if (ns <= 0) {
    return 0;
  }
  return (ns - 1) / options_.window.nanos();
}

void TimeseriesCollector::StartWindow(int64_t index) {
  cur_ = TelemetryWindow();
  cur_.index = index;
  cur_.start = Instant() + Nanoseconds(index * options_.window.nanos());
  cur_.end = cur_.start + options_.window;
  have_cur_ = true;
}

void TimeseriesCollector::CloseWindow() {
  if (cur_.index <= gap_through_) {
    cur_.gap = true;
  }
  for (auto it = pending_trace_drops_.begin(); it != pending_trace_drops_.end();) {
    if (it->first <= cur_.index) {
      cur_.trace_dropped += it->second;
      it = pending_trace_drops_.erase(it);
    } else {
      ++it;
    }
  }
  if (windows_.push_overwrite(cur_)) {
    ++windows_dropped_;
  }
}

void TimeseriesCollector::FoldDelta(const StatsDelta& d) {
  ++cur_.samples;
  cur_.jobs_released += d.jobs_released;
  cur_.jobs_completed += d.jobs_completed;
  cur_.deadline_misses += d.deadline_misses;
  cur_.context_switches += d.context_switches;
  cur_.interrupts += d.interrupts;
  cur_.timer_dispatches += d.timer_dispatches;
  cur_.sem_acquires += d.sem_acquires;
  cur_.ipis += d.ipis;
  cur_.headroom_low_events += d.headroom_low_events;
  cur_.chain_e2e_completed += d.chain_e2e_hist.count();
  cur_.chain_e2e_overruns += d.chain_e2e_overruns;
  cur_.chain_origins += d.chain_origins;
  cur_.stats_snapshot_drops += d.stats_snapshot_drops;
  cur_.compute_time += d.compute_time;
  cur_.idle_time += d.idle_time;
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    cur_.cycles.buckets[b] += d.cycles.buckets[b];
  }
  cur_.response.Merge(d.response_hist);
  cur_.chain_e2e.Merge(d.chain_e2e_hist);
  cur_.headroom.Merge(d.headroom_hist);
}

void TimeseriesCollector::ProcessDelta(const StatsDelta& d) {
  int64_t w = IndexOf(d.time);
  if (!have_cur_) {
    StartWindow(0);  // the grid is anchored at virtual zero
  }
  if (gap_pending_) {
    // The loss ran from the previous sample to this (first retained) one:
    // every window from the current one through w is a lower bound.
    if (w > gap_through_) {
      gap_through_ = w;
    }
    if (cur_.index <= gap_through_) {
      cur_.gap = true;
    }
    gap_pending_ = false;
  }
  while (cur_.index < w) {
    int64_t next = cur_.index + 1;
    CloseWindow();
    StartWindow(next);  // empty windows keep the burn-rate grid regular
  }
  FoldDelta(d);
  last_sample_time_ = d.time;
}

void TimeseriesCollector::Collect(const Kernel& kernel) {
  if (finished_) {
    return;
  }
  // Attribute trace evictions since the last drain to the window containing
  // this drain instant. Drains happen on the deterministic slice schedule,
  // so replays reproduce the attribution exactly.
  uint64_t td = kernel.trace().dropped();
  if (td > last_trace_dropped_) {
    pending_trace_drops_.emplace_back(IndexOf(kernel.now()), td - last_trace_dropped_);
    last_trace_dropped_ = td;
  }
  const StatsSampler* sampler = kernel.stats_sampler();
  if (sampler == nullptr) {
    return;
  }
  uint64_t begin = sampler->dropped();  // global index of the oldest retained
  if (consumed_ < begin) {
    lost_samples_ += begin - consumed_;
    gap_pending_ = true;
    if (have_cur_) {
      cur_.gap = true;
    }
    consumed_ = begin;
  }
  for (size_t i = static_cast<size_t>(consumed_ - begin); i < sampler->size(); ++i) {
    ProcessDelta(sampler->at(i));
    ++consumed_;
  }
}

void TimeseriesCollector::Finish(const Kernel& kernel) {
  if (finished_) {
    return;
  }
  Collect(kernel);
  Instant now = kernel.now();
  const StatsSampler* sampler = kernel.stats_sampler();
  if (now > last_sample_time_) {
    // Tail interval (last snapshot, horizon]: delta of the live cumulative
    // counters against the sampler's base — or against zero when sampling
    // was never enabled, which makes the whole run one synthetic interval.
    static const KernelStats kZero;
    const KernelStats& base = sampler != nullptr ? sampler->last_sample_base() : kZero;
    ProcessDelta(MakeStatsDelta(now, kernel.stats(), base));
  }
  if (!have_cur_) {
    StartWindow(0);
  }
  int64_t last = IndexOf(now);
  while (cur_.index < last) {
    int64_t next = cur_.index + 1;
    CloseWindow();
    StartWindow(next);
  }
  CloseWindow();
  have_cur_ = false;
  finished_ = true;
}

std::vector<TelemetryWindow> TimeseriesCollector::Snapshot() const {
  std::vector<TelemetryWindow> out;
  out.reserve(windows_.size());
  for (size_t i = 0; i < windows_.size(); ++i) {
    out.push_back(windows_.at(i));
  }
  return out;
}

std::vector<TelemetryWindow> MergeWindowSeries(
    const std::vector<const std::vector<TelemetryWindow>*>& series) {
  std::map<int64_t, TelemetryWindow> merged;
  for (const std::vector<TelemetryWindow>* s : series) {
    if (s == nullptr) {
      continue;
    }
    for (const TelemetryWindow& w : *s) {
      auto it = merged.find(w.index);
      if (it == merged.end()) {
        merged.emplace(w.index, w);
      } else {
        it->second.MergeFrom(w);
      }
    }
  }
  std::vector<TelemetryWindow> out;
  out.reserve(merged.size());
  for (auto& kv : merged) {
    out.push_back(kv.second);
  }
  return out;
}

void AppendTelemetryWindow(Json& j, const TelemetryWindow& w) {
  j.OpenObject();
  j.Int("index", w.index);
  j.Int("start_us", w.start.micros());
  j.Int("end_us", w.end.micros());
  j.Bool("gap", w.gap);
  j.Int("samples", static_cast<int64_t>(w.samples));
  j.Int("jobs_released", static_cast<int64_t>(w.jobs_released));
  j.Int("jobs_completed", static_cast<int64_t>(w.jobs_completed));
  j.Int("deadline_misses", static_cast<int64_t>(w.deadline_misses));
  j.Int("context_switches", static_cast<int64_t>(w.context_switches));
  j.Int("interrupts", static_cast<int64_t>(w.interrupts));
  j.Int("timer_dispatches", static_cast<int64_t>(w.timer_dispatches));
  j.Int("sem_acquires", static_cast<int64_t>(w.sem_acquires));
  j.Int("ipis", static_cast<int64_t>(w.ipis));
  j.Int("headroom_low_events", static_cast<int64_t>(w.headroom_low_events));
  j.Int("chain_e2e_completed", static_cast<int64_t>(w.chain_e2e_completed));
  j.Int("chain_e2e_overruns", static_cast<int64_t>(w.chain_e2e_overruns));
  j.Int("chain_origins", static_cast<int64_t>(w.chain_origins));
  j.Int("trace_dropped", static_cast<int64_t>(w.trace_dropped));
  j.Int("stats_snapshot_drops", static_cast<int64_t>(w.stats_snapshot_drops));
  j.Number("compute_ms", w.compute_time.micros_f() / 1e3);
  j.Number("idle_ms", w.idle_time.micros_f() / 1e3);
  j.Key("cycles_us");
  j.OpenObject();
  for (int b = 0; b < kNumCycleBuckets; ++b) {
    if (w.cycles.buckets[b].is_positive()) {
      j.Number(CycleBucketToString(static_cast<CycleBucket>(b)),
               w.cycles.buckets[b].micros_f());
    }
  }
  j.CloseObject();
  AppendTelemetryHistogram(j, "response", w.response);
  AppendTelemetryHistogram(j, "chain_e2e", w.chain_e2e);
  AppendTelemetryHistogram(j, "headroom", w.headroom);
  j.CloseObject();
}

void AppendTimeseriesSection(Json& j, const std::vector<TelemetryWindow>& windows,
                             Duration window_width, uint64_t lost_samples,
                             uint64_t windows_dropped) {
  j.Key("timeseries");
  j.OpenObject();
  j.String("schema", "emeralds.obs.timeseries/1");
  j.Int("window_us", window_width.micros());
  j.Int("windows", static_cast<int64_t>(windows.size()));
  j.Int("lost_samples", static_cast<int64_t>(lost_samples));
  j.Int("windows_dropped", static_cast<int64_t>(windows_dropped));
  uint64_t gaps = 0;
  for (const TelemetryWindow& w : windows) {
    if (w.gap) {
      ++gaps;
    }
  }
  j.Int("gap_windows", static_cast<int64_t>(gaps));
  j.Key("series");
  j.OpenArray();
  for (const TelemetryWindow& w : windows) {
    AppendTelemetryWindow(j, w);
  }
  j.CloseArray();
  j.CloseObject();
}

}  // namespace obs
}  // namespace emeralds
