// Streaming time-series telemetry: fixed-width virtual-time windows.
//
// The StatsSampler ring (PR 2/4) gives each kernel a delta-encoded snapshot
// stream; this layer folds that stream into a bounded ring of
// `TelemetryWindow` points on a fixed window grid anchored at virtual zero.
// The fleet runner drains the ring at slice boundaries (Collect), so the
// windows exist *while the fleet runs* — zero virtual cost, because Collect
// only reads kernel state and the snapshots were already paid for by the
// kStatsSample timer. Windows merge losslessly across nodes via
// Log2Histogram::Merge, and the per-window histogram deltas telescope:
// merging every window of a run reproduces the whole-run cumulative
// histogram bit-identically (tests/obs/timeseries_test.cc).
//
// Degradation is explicit, never silent: when sampling outpaced the drain
// and snapshots were evicted, the windows spanning the loss are gap-marked
// and the lost-sample count is surfaced alongside the series.

#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/log2_histogram.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/hal/cycles.h"

namespace emeralds {

class Kernel;
struct StatsDelta;

namespace obs {

class Json;

struct TimeseriesOptions {
  // Window width on the virtual-time grid; window k covers
  // (k*window, (k+1)*window]. Must be positive.
  Duration window = Milliseconds(10);
  // Retained windows per node; older windows are evicted (and counted).
  size_t capacity = 64;
};

// One fixed-width window of kernel activity. Counters are exact deltas over
// the window; histograms are merged StatsDelta interval deltas (min/max
// carry cumulative extremes — conservative per-window bounds that make the
// fleet/whole-run merge exact; see Log2Histogram::Delta).
struct TelemetryWindow {
  int64_t index = 0;
  Instant start;  // exclusive lower edge (index * window)
  Instant end;    // inclusive upper edge
  // True when snapshot loss (ring eviction before drain) overlapped this
  // window: its counters are a lower bound, not an exact delta.
  bool gap = false;
  uint64_t samples = 0;  // StatsDelta intervals folded in (incl. synthetic tail)

  uint64_t jobs_released = 0;
  uint64_t jobs_completed = 0;
  uint64_t deadline_misses = 0;
  uint64_t context_switches = 0;
  uint64_t interrupts = 0;
  uint64_t timer_dispatches = 0;
  uint64_t sem_acquires = 0;
  uint64_t ipis = 0;
  uint64_t headroom_low_events = 0;
  uint64_t chain_e2e_completed = 0;
  uint64_t chain_e2e_overruns = 0;
  // Chain instances begun (origin emits) in this window; together with
  // chain_e2e_completed the series shows in-flight growth — the streaming
  // analog of AnalyzeChains' per-chain incomplete_instances count.
  uint64_t chain_origins = 0;
  uint64_t trace_dropped = 0;        // trace evictions observed at drains in this window
  uint64_t stats_snapshot_drops = 0;
  Duration compute_time;
  Duration idle_time;
  CycleLedger cycles;
  Log2Histogram response;
  Log2Histogram chain_e2e;
  Log2Histogram headroom;

  // Fleet merge of same-index windows from different nodes: counter sums,
  // histogram Merge, gap OR.
  void MergeFrom(const TelemetryWindow& other);
};

// Folds a kernel's StatsSampler ring into the window grid. Drive Collect()
// periodically on the host (the fleet runner does it at every slice
// boundary) and Finish() once at the horizon; both are read-only on the
// kernel and never perturb virtual time.
class TimeseriesCollector {
 public:
  explicit TimeseriesCollector(const TimeseriesOptions& options);

  // Drains snapshots that arrived since the last drain. Also attributes any
  // new TraceSink evictions to the window containing the drain instant (the
  // drain schedule is part of the deterministic replay contract).
  void Collect(const Kernel& kernel);

  // Final drain + synthesizes the tail interval (last snapshot, horizon]
  // from the sampler's cumulative base, then closes every window through
  // the horizon. Call exactly once; Collect() is a no-op afterwards.
  void Finish(const Kernel& kernel);

  size_t size() const { return windows_.size(); }
  const TelemetryWindow& at(size_t i) const { return windows_.at(i); }
  uint64_t windows_dropped() const { return windows_dropped_; }
  uint64_t lost_samples() const { return lost_samples_; }
  const TimeseriesOptions& options() const { return options_; }

  // Copy of the retained windows, oldest first.
  std::vector<TelemetryWindow> Snapshot() const;

  // Window index containing instant t (t > 0 maps to (t-1ns)/window; t <= 0
  // maps to window 0).
  int64_t IndexOf(Instant t) const;

 private:
  void ProcessDelta(const StatsDelta& d);
  void FoldDelta(const StatsDelta& d);
  void StartWindow(int64_t index);
  void CloseWindow();

  TimeseriesOptions options_;
  RingBuffer<TelemetryWindow> windows_;
  uint64_t windows_dropped_ = 0;

  TelemetryWindow cur_;
  bool have_cur_ = false;
  bool finished_ = false;

  uint64_t consumed_ = 0;  // global snapshot index consumed so far
  Instant last_sample_time_;
  uint64_t lost_samples_ = 0;
  bool gap_pending_ = false;
  int64_t gap_through_ = -1;  // windows up to this index are gap-marked

  uint64_t last_trace_dropped_ = 0;
  std::vector<std::pair<int64_t, uint64_t>> pending_trace_drops_;
};

// Merges per-node window series by index: the result holds one window per
// index present in any input, counters summed and histograms merged.
// Order- and worker-count-invariant (all inputs commute).
std::vector<TelemetryWindow> MergeWindowSeries(
    const std::vector<const std::vector<TelemetryWindow>*>& series);

// JSON: one window object (schema emeralds.obs.timeseries/1 window entry).
void AppendTelemetryWindow(Json& j, const TelemetryWindow& w);

// JSON: "timeseries" section — window grid config, the window array, and the
// explicit-degradation counters.
void AppendTimeseriesSection(Json& j, const std::vector<TelemetryWindow>& windows,
                             Duration window_width, uint64_t lost_samples,
                             uint64_t windows_dropped);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_TIMESERIES_H_
