#include "src/obs/trace_csv.h"

#include <cstdlib>
#include <cstring>

namespace emeralds {
namespace obs {
namespace {

bool Fail(std::string* error, size_t line, const char* what) {
  if (error != nullptr) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "line %zu: %s", line, what);
    *error = buf;
  }
  return false;
}

// Splits `row` on commas into 4 or 5 fields, in place. Returns the field
// count (0 on malformed rows). Four-field rows are the legacy pre-arg2
// format and import with arg2 = 0.
int SplitRow(char* row, char* fields[5]) {
  int n = 0;
  char* p = row;
  fields[n++] = p;
  while (*p != '\0') {
    if (*p == ',') {
      *p = '\0';
      if (n == 5) {
        return 0;  // too many fields
      }
      fields[n++] = p + 1;
    }
    ++p;
  }
  return n >= 4 ? n : 0;
}

bool ParseInt(const char* s, long long* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

bool ImportTraceCsv(const std::string& text, TraceCsvImport* out, std::string* error) {
  out->events.clear();
  out->dropped = 0;

  size_t pos = 0;
  size_t line_no = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    size_t len = (eol == std::string::npos ? text.size() : eol) - pos;
    std::string line = text.substr(pos, len);
    pos += len + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      unsigned long long dropped = 0;
      if (std::sscanf(line.c_str(), "# dropped=%llu", &dropped) == 1) {
        out->dropped = dropped;
      }
      continue;  // unknown comments are ignored
    }
    if (!saw_header) {
      if (line != "time_us,event,arg0,arg1,arg2" && line != "time_us,event,arg0,arg1") {
        return Fail(error, line_no, "expected header \"time_us,event,arg0,arg1,arg2\"");
      }
      saw_header = true;
      continue;
    }

    char row[160];
    if (line.size() >= sizeof(row)) {
      return Fail(error, line_no, "row too long");
    }
    std::memcpy(row, line.c_str(), line.size() + 1);
    char* fields[5];
    int num_fields = SplitRow(row, fields);
    if (num_fields == 0) {
      return Fail(error, line_no, "expected 4 or 5 comma-separated fields");
    }
    long long time_us = 0;
    long long arg0 = 0;
    long long arg1 = 0;
    long long arg2 = 0;
    if (!ParseInt(fields[0], &time_us)) {
      return Fail(error, line_no, "bad time_us");
    }
    TraceEvent e;
    if (!TraceEventTypeFromString(fields[1], &e.type)) {
      return Fail(error, line_no, "unknown event type");
    }
    if (!ParseInt(fields[2], &arg0) || !ParseInt(fields[3], &arg1) ||
        (num_fields == 5 && !ParseInt(fields[4], &arg2))) {
      return Fail(error, line_no, "bad arg");
    }
    e.time = Instant::FromNanos(time_us * 1000);
    e.arg0 = static_cast<int32_t>(arg0);
    e.arg1 = static_cast<int32_t>(arg1);
    e.arg2 = static_cast<int32_t>(arg2);
    out->events.push_back(e);
  }
  if (!saw_header) {
    return Fail(error, line_no, "missing header");
  }
  return true;
}

bool ImportTraceCsv(std::FILE* in, TraceCsvImport* out, std::string* error) {
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  return ImportTraceCsv(text, out, error);
}

}  // namespace obs
}  // namespace emeralds
