// Fixed-size log2 latency histogram.
//
// The trace analyzer accumulates response-time and blocking-time
// distributions per task. Consistent with the kernel's small-memory ethos the
// histogram is a fixed array of power-of-two buckets — no heap, O(1) insert —
// sized so bucket 0 holds sub-microsecond samples and the last bucket
// everything from ~2.3 minutes up.

#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <bit>
#include <cstdint>

#include "src/base/time.h"

namespace emeralds {
namespace obs {

class Log2Histogram {
 public:
  // Bucket i covers [2^i us, 2^(i+1) us); bucket 0 additionally absorbs
  // everything below 1 us, the last bucket everything above its floor.
  static constexpr int kNumBuckets = 28;

  void Add(Duration value) {
    ++count_;
    total_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
    ++buckets_[BucketIndex(value)];
  }

  static int BucketIndex(Duration value) {
    int64_t us = value.micros();
    if (us <= 0) {
      return 0;
    }
    int index = std::bit_width(static_cast<uint64_t>(us)) - 1;
    return index < kNumBuckets ? index : kNumBuckets - 1;
  }

  // Inclusive lower edge of bucket `index` in microseconds.
  static int64_t BucketFloorUs(int index) { return index == 0 ? 0 : int64_t{1} << index; }

  uint64_t count() const { return count_; }
  uint64_t bucket(int index) const { return buckets_[index]; }
  Duration min() const { return min_; }
  Duration max() const { return max_; }
  Duration total() const { return total_; }
  Duration mean() const {
    return count_ > 0 ? total_ / static_cast<int64_t>(count_) : Duration();
  }

  // Lossless merge: bucket-wise sum plus exact min/max/count/total. A merge
  // of sketches is bucket-identical to the sketch of the concatenated sample
  // streams (the property test in tests/obs/telemetry_test.cc), which is what
  // makes per-node histograms aggregable into exact fleet-wide tables.
  void Merge(const Log2Histogram& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
    total_ += other.total_;
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  // Upper bound on the `fraction` percentile: the upper edge of the first
  // bucket at which the running count reaches `fraction` of the samples,
  // clamped by the exact max. Every true percentile is <= this bound, and the
  // bound is tight at bucket granularity — it survives Merge() exactly, so
  // fleet-wide percentile tables over merged histograms are bucket-exact.
  // `fraction` in (0, 1]; zero duration when empty.
  Duration PercentileBound(double fraction) const {
    if (count_ == 0) {
      return Duration();
    }
    uint64_t target = static_cast<uint64_t>(fraction * static_cast<double>(count_));
    if (target < 1) {
      target = 1;
    }
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        if (i == kNumBuckets - 1) {
          return max_;  // the overflow bucket is unbounded above
        }
        Duration upper = Microseconds(int64_t{1} << (i + 1));
        return upper < max_ ? upper : max_;
      }
    }
    return max_;
  }

  // Historical name for PercentileBound (the single-node reports use it).
  Duration ApproxPercentile(double fraction) const { return PercentileBound(fraction); }

  // Index of the last non-empty bucket (-1 when empty); printers use it to
  // bound their loops.
  int HighestBucket() const {
    for (int i = kNumBuckets - 1; i >= 0; --i) {
      if (buckets_[i] > 0) {
        return i;
      }
    }
    return -1;
  }

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  Duration min_;
  Duration max_;
  Duration total_;
};

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_HISTOGRAM_H_
