// Forwarding header: Log2Histogram moved to src/base/log2_histogram.h so the
// kernel's KernelStats can embed histograms without a core -> obs layering
// inversion. Observability code keeps spelling it obs::Log2Histogram.

#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include "src/base/log2_histogram.h"

namespace emeralds {
namespace obs {

using ::emeralds::Log2Histogram;

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_HISTOGRAM_H_
