// Tiny structural JSON writer over the shared JsonAppend* helpers: tracks
// whether a separator comma is due so sections can be emitted linearly.
// Shared by the obs run report and the cycles report.

#ifndef SRC_OBS_JSON_WRITER_H_
#define SRC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>

#include "src/base/json.h"

namespace emeralds {
namespace obs {

class Json {
 public:
  void OpenObject() { Punct('{'); }
  void CloseObject() { Raw('}'); }
  void OpenArray() { Punct('['); }
  void CloseArray() { Raw(']'); }

  void Key(const char* name) {
    Sep();
    JsonAppendEscaped(&out_, name);
    out_ += ':';
    need_comma_ = false;  // the value follows with no comma
  }

  void String(const char* name, const std::string& value) {
    Key(name);
    JsonAppendEscaped(&out_, value);
    need_comma_ = true;
  }
  void Int(const char* name, int64_t value) {
    Key(name);
    JsonAppendInt(&out_, value);
    need_comma_ = true;
  }
  void Number(const char* name, double value) {
    Key(name);
    JsonAppendNumber(&out_, value);
    need_comma_ = true;
  }
  void Bool(const char* name, bool value) {
    Key(name);
    out_ += value ? "true" : "false";
    need_comma_ = true;
  }
  void IntElem(int64_t value) {
    Sep();
    JsonAppendInt(&out_, value);
  }
  void NumberElem(double value) {
    Sep();
    JsonAppendNumber(&out_, value);
  }
  void StringElem(const std::string& value) {
    Sep();
    JsonAppendEscaped(&out_, value);
  }

  const std::string& str() const { return out_; }

 private:
  void Punct(char c) {
    Sep();
    out_ += c;
    need_comma_ = false;
  }
  void Raw(char c) {
    out_ += c;
    need_comma_ = true;
  }
  void Sep() {
    if (need_comma_) {
      out_ += ',';
    }
    need_comma_ = true;
  }

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_JSON_WRITER_H_
