// Perfetto / Chrome trace-event JSON export.
//
// Turns the TraceSink event ring into a JSON file loadable at
// ui.perfetto.dev (or chrome://tracing): per-thread "running" slices built
// from context switches, async spans for jobs (release -> complete) and
// semaphore holds/blocks, flow arrows for priority inheritance, and instant
// markers for deadline misses, CSE saved switches, low-headroom jobs, and
// IRQs. When counter samples are supplied (the kernel overload pulls them
// from the StatsSampler ring), per-bucket cycle-attribution counter tracks
// are emitted alongside the events.

#ifndef SRC_OBS_PERFETTO_EXPORT_H_
#define SRC_OBS_PERFETTO_EXPORT_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/hal/cycles.h"
#include "src/hal/trace.h"

namespace emeralds {

class Kernel;

namespace obs {

// One sampling interval of the cycle-attribution ledger, rendered as a
// stacked "C" (counter) event: each bucket becomes a series on the
// "cycles (us/interval)" track.
struct PerfettoCounterSample {
  Instant time;  // sample instant; the values cover (prev sample, time]
  CycleLedger cycles;
  uint64_t headroom_low_events = 0;  // events inside this interval
};

// A named instant marker rendered on the process track — fleet_inspect uses
// these to overlay alert fire/resolve instants on a node replay.
struct PerfettoInstantMarker {
  Instant time;
  std::string name;
  const char* category = "alert";
};

// An annotation slice rendered on a thread's track as a complete ("X")
// event — the postmortem engine overlays one per late job spanning release
// to completion, named with the ledger's top blame component.
struct PerfettoAnnotationSlice {
  Instant begin;
  Duration duration;
  int thread_id = 0;
  std::string name;
  const char* category = "postmortem";
};

struct PerfettoExportOptions {
  std::string process_name = "emeralds";
  // Process id the window renders under. The default (1) keeps single-node
  // exports byte-stable; multi-node merges give each node its own pid, and
  // every async-span / flow id is then prefixed "p<pid>." so spans from
  // different nodes can never pair with each other.
  int pid = 1;
  // Display name per thread id; ids without an entry render as "t<id>".
  std::vector<std::string> thread_names;
  // Events lost ahead of the retained window (TraceSink::dropped());
  // surfaced as a marker slice so truncation is visible in the UI.
  uint64_t dropped_events = 0;
  // Cycle-ledger counter samples (typically the StatsSampler ring); empty
  // means no counter tracks.
  std::vector<PerfettoCounterSample> counter_samples;
  // Instant markers (alert fire/resolve overlays).
  std::vector<PerfettoInstantMarker> instants;
  // Annotation slices (postmortem late-job overlays).
  std::vector<PerfettoAnnotationSlice> annotations;
  // Render kOverheadSpan events as per-thread kernel-overhead slices. Off by
  // default: span volume is several times the rest of the stream and most
  // viewers only need them when chasing a specific postmortem.
  bool overhead_slices = false;
};

// Writes the event window as Chrome trace-event JSON to `out`. Returns the
// number of traceEvents entries emitted (0 only for an empty window).
size_t ExportPerfettoJson(const TraceEvent* events, size_t count,
                          const PerfettoExportOptions& options, std::FILE* out);

// Convenience: exports a kernel's retained trace with its thread names.
size_t ExportPerfettoJson(const Kernel& kernel, std::FILE* out);

// One node's window of a multi-node merge. The events pointer must stay
// valid for the duration of the export call.
struct PerfettoWindow {
  const TraceEvent* events = nullptr;
  size_t count = 0;
  PerfettoExportOptions options;
};

// Merges several node windows into one timeline document: each window
// renders as its own process (options.pid / options.process_name), with
// node-scoped span ids. fleet_inspect --merge is built on this.
size_t ExportPerfettoJsonMulti(const std::vector<PerfettoWindow>& windows, std::FILE* out);

// Thread display names ("<name>/<id>") in thread-id order, for options.
std::vector<std::string> KernelThreadNames(const Kernel& kernel);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_PERFETTO_EXPORT_H_
