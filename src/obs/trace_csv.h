// Importer for TraceSink::ExportCsv output.
//
// The CSV export (time_us,event,arg0,arg1,arg2 plus an optional trailing
// "# dropped=N" comment; legacy 4-field rows import with arg2 = 0) is the
// trace interchange format: benches write it
// next to their JSON reports, and trace_inspect re-imports it here to replay
// the run through the analyzer offline.

#ifndef SRC_OBS_TRACE_CSV_H_
#define SRC_OBS_TRACE_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/hal/trace.h"

namespace emeralds {
namespace obs {

struct TraceCsvImport {
  std::vector<TraceEvent> events;  // oldest first, as exported
  uint64_t dropped = 0;            // from the "# dropped=N" trailer, if any
};

// Parses ExportCsv output from `text`. Returns false on malformed input with
// a line-numbered message in *error (out is left partially filled).
bool ImportTraceCsv(const std::string& text, TraceCsvImport* out, std::string* error);

// Reads the whole stream, then parses. `in` is consumed to EOF.
bool ImportTraceCsv(std::FILE* in, TraceCsvImport* out, std::string* error);

}  // namespace obs
}  // namespace emeralds

#endif  // SRC_OBS_TRACE_CSV_H_
